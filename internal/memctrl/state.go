package memctrl

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// This file provides the snapshot surface of the memory system: the
// controllers' DRAM-jitter random stream and read/write totals, and the
// mapper's full page-table, deduplication and TLB state. Map contents
// are exported as slices sorted by key so a captured state serializes
// deterministically.

// ControllersState is the serializable state of the memory controllers.
type ControllersState struct {
	Rand   sim.RandState
	Reads  uint64
	Writes uint64
}

// State captures the controllers' counters and random stream.
func (c *Controllers) State() ControllersState {
	return ControllersState{Rand: c.rng.State(), Reads: c.Reads, Writes: c.Writes}
}

// RestoreState overwrites the controllers' counters and random stream.
func (c *Controllers) RestoreState(st ControllersState) {
	c.rng.SetState(st.Rand)
	c.Reads = st.Reads
	c.Writes = st.Writes
}

// PageEntry is one (vm, vpage) -> phys mapping of the private or
// copy-on-write tables.
type PageEntry struct {
	VM    int
	VPage uint64
	Phys  uint64
}

// SharedEntry is one content-id -> phys mapping of the dedup table.
type SharedEntry struct {
	Content uint64
	Phys    uint64
}

// SeenEntry is one (vm, vpage) pair counted toward dedup savings.
type SeenEntry struct {
	VM    int
	VPage uint64
}

// TLBSlot is one valid entry of the direct-mapped translation cache,
// tagged with its slot index (invalid slots are omitted).
type TLBSlot struct {
	Index     int
	VM        int32
	Class     int8
	WriteSafe bool
	VPage     uint64
	Phys      uint64
}

// MapperState is the serializable state of the Mapper.
type MapperState struct {
	Dedup    bool
	NextPhys uint64
	Private  []PageEntry
	CoW      []PageEntry
	Shared   []SharedEntry
	Seen     []SeenEntry
	TLB      []TLBSlot

	PrivatePages uint64
	SharedPages  uint64
	DedupRefs    uint64
	CoWBreaks    uint64
}

func sortPages(s []PageEntry) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].VM != s[j].VM {
			return s[i].VM < s[j].VM
		}
		return s[i].VPage < s[j].VPage
	})
}

// State returns a deep copy of the mapper's page tables, dedup
// bookkeeping and TLB contents.
func (m *Mapper) State() *MapperState {
	st := &MapperState{
		Dedup:        m.dedup,
		NextPhys:     m.nextPhys,
		PrivatePages: m.PrivatePages,
		SharedPages:  m.SharedPages,
		DedupRefs:    m.DedupRefs,
		CoWBreaks:    m.CoWBreaks,
	}
	for k, v := range m.private {
		st.Private = append(st.Private, PageEntry{VM: k.vm, VPage: k.vpage, Phys: v})
	}
	for k, v := range m.cow {
		st.CoW = append(st.CoW, PageEntry{VM: k.vm, VPage: k.vpage, Phys: v})
	}
	for k, v := range m.shared {
		st.Shared = append(st.Shared, SharedEntry{Content: k, Phys: v})
	}
	for k := range m.sharedSeen {
		st.Seen = append(st.Seen, SeenEntry{VM: k.vm, VPage: k.vpage})
	}
	sortPages(st.Private)
	sortPages(st.CoW)
	sort.Slice(st.Shared, func(i, j int) bool { return st.Shared[i].Content < st.Shared[j].Content })
	sort.Slice(st.Seen, func(i, j int) bool {
		if st.Seen[i].VM != st.Seen[j].VM {
			return st.Seen[i].VM < st.Seen[j].VM
		}
		return st.Seen[i].VPage < st.Seen[j].VPage
	})
	for i := range m.tlb {
		e := &m.tlb[i]
		if e.vm < 0 {
			continue
		}
		st.TLB = append(st.TLB, TLBSlot{
			Index: i, VM: e.vm, Class: e.class, WriteSafe: e.writeSafe,
			VPage: e.vpage, Phys: e.phys,
		})
	}
	return st
}

// RestoreState replaces the mapper's page tables, dedup bookkeeping and
// TLB contents with a captured state. The dedup setting must match the
// mapper's construction (it is config-derived, not run state).
func (m *Mapper) RestoreState(st *MapperState) error {
	if st.Dedup != m.dedup {
		return fmt.Errorf("memctrl: snapshot dedup=%v, mapper dedup=%v", st.Dedup, m.dedup)
	}
	m.nextPhys = st.NextPhys
	m.private = make(map[pageKey]uint64, len(st.Private))
	for _, e := range st.Private {
		m.private[pageKey{e.VM, e.VPage}] = e.Phys
	}
	m.cow = make(map[pageKey]uint64, len(st.CoW))
	for _, e := range st.CoW {
		m.cow[pageKey{e.VM, e.VPage}] = e.Phys
	}
	m.shared = make(map[uint64]uint64, len(st.Shared))
	for _, e := range st.Shared {
		m.shared[e.Content] = e.Phys
	}
	m.sharedSeen = make(map[pageKey]bool, len(st.Seen))
	for _, e := range st.Seen {
		m.sharedSeen[pageKey{e.VM, e.VPage}] = true
	}
	for i := range m.tlb {
		m.tlb[i] = tlbEntry{vm: -1}
	}
	for _, s := range st.TLB {
		if s.Index < 0 || s.Index >= len(m.tlb) {
			return fmt.Errorf("memctrl: snapshot TLB slot %d out of range", s.Index)
		}
		m.tlb[s.Index] = tlbEntry{
			vm: s.VM, class: s.Class, writeSafe: s.WriteSafe,
			vpage: s.VPage, phys: s.Phys,
		}
	}
	m.PrivatePages = st.PrivatePages
	m.SharedPages = st.SharedPages
	m.DedupRefs = st.DedupRefs
	m.CoWBreaks = st.CoWBreaks
	return nil
}
