package memctrl

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// This file provides the snapshot surface of the memory system: the
// controllers' DRAM-jitter random stream and read/write totals, and the
// mapper's full page-table, deduplication and TLB state. Map contents
// are exported as slices sorted by key so a captured state serializes
// deterministically.

// ControllersState is the serializable state of the memory controllers.
type ControllersState struct {
	Rand   sim.RandState
	Reads  uint64
	Writes uint64
}

// State captures the controllers' counters and random stream.
func (c *Controllers) State() ControllersState {
	return ControllersState{Rand: c.rng.State(), Reads: c.Reads, Writes: c.Writes}
}

// RestoreState overwrites the controllers' counters and random stream.
func (c *Controllers) RestoreState(st ControllersState) {
	c.rng.SetState(st.Rand)
	c.Reads = st.Reads
	c.Writes = st.Writes
}

// PageEntry is one (vm, vpage) -> phys mapping of the private or
// copy-on-write tables.
type PageEntry struct {
	VM    int
	VPage uint64
	Phys  uint64
}

// SharedEntry is one content-id -> phys mapping of the dedup table.
type SharedEntry struct {
	Content uint64
	Phys    uint64
}

// SeenEntry is one (vm, vpage) pair counted toward dedup savings.
type SeenEntry struct {
	VM    int
	VPage uint64
}

// CoWEntry is one broken deduplicated pair: its reserved frame and the
// cycle the break became (or becomes) visible to readers.
type CoWEntry struct {
	VM        int
	VPage     uint64
	Phys      uint64
	VisibleAt sim.Time
}

// MapperState is the serializable state of the Mapper. The CoW frame
// reservations and the TLB contents are omitted: reservations are
// reconstructed deterministically when the page table is rebuilt at
// construction, and the TLBs are a pure performance cache with no
// counters, so a restored mapper simply starts them cold.
type MapperState struct {
	Dedup    bool
	NextPhys uint64
	Private  []PageEntry
	CoW      []CoWEntry
	Shared   []SharedEntry
	Seen     []SeenEntry

	PrivatePages uint64
	SharedPages  uint64
	DedupRefs    uint64
	CoWBreaks    uint64
}

func sortPages(s []PageEntry) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].VM != s[j].VM {
			return s[i].VM < s[j].VM
		}
		return s[i].VPage < s[j].VPage
	})
}

// State returns a deep copy of the mapper's page tables, dedup
// bookkeeping and TLB contents.
func (m *Mapper) State() *MapperState {
	st := &MapperState{
		Dedup:        m.dedup,
		NextPhys:     m.nextPhys,
		PrivatePages: m.PrivatePages,
		SharedPages:  m.SharedPages,
		DedupRefs:    m.DedupRefs,
		CoWBreaks:    m.CoWBreaks,
	}
	for k, v := range m.private {
		st.Private = append(st.Private, PageEntry{VM: k.vm, VPage: k.vpage, Phys: v})
	}
	for k, v := range m.cowAt {
		st.CoW = append(st.CoW, CoWEntry{VM: k.vm, VPage: k.vpage, Phys: m.cowRes[k], VisibleAt: v})
	}
	for k, v := range m.shared {
		st.Shared = append(st.Shared, SharedEntry{Content: k, Phys: v})
	}
	for k := range m.sharedSeen {
		st.Seen = append(st.Seen, SeenEntry{VM: k.vm, VPage: k.vpage})
	}
	sortPages(st.Private)
	sort.Slice(st.CoW, func(i, j int) bool {
		if st.CoW[i].VM != st.CoW[j].VM {
			return st.CoW[i].VM < st.CoW[j].VM
		}
		return st.CoW[i].VPage < st.CoW[j].VPage
	})
	sort.Slice(st.Shared, func(i, j int) bool { return st.Shared[i].Content < st.Shared[j].Content })
	sort.Slice(st.Seen, func(i, j int) bool {
		if st.Seen[i].VM != st.Seen[j].VM {
			return st.Seen[i].VM < st.Seen[j].VM
		}
		return st.Seen[i].VPage < st.Seen[j].VPage
	})
	return st
}

// RestoreState replaces the mapper's page tables, dedup bookkeeping and
// TLB contents with a captured state. The dedup setting must match the
// mapper's construction (it is config-derived, not run state).
func (m *Mapper) RestoreState(st *MapperState) error {
	if st.Dedup != m.dedup {
		return fmt.Errorf("memctrl: snapshot dedup=%v, mapper dedup=%v", st.Dedup, m.dedup)
	}
	m.nextPhys = st.NextPhys
	m.private = make(map[pageKey]uint64, len(st.Private))
	for _, e := range st.Private {
		m.private[pageKey{e.VM, e.VPage}] = e.Phys
	}
	m.cowAt = make(map[pageKey]sim.Time, len(st.CoW))
	for _, e := range st.CoW {
		k := pageKey{e.VM, e.VPage}
		if res, ok := m.cowRes[k]; !ok || res != e.Phys {
			return fmt.Errorf("memctrl: snapshot CoW frame %d for (vm %d, page %#x) does not match the reservation (%d); workload mismatch?", e.Phys, e.VM, e.VPage, res)
		}
		m.cowAt[k] = e.VisibleAt
	}
	m.shared = make(map[uint64]uint64, len(st.Shared))
	for _, e := range st.Shared {
		m.shared[e.Content] = e.Phys
	}
	m.sharedSeen = make(map[pageKey]bool, len(st.Seen))
	for _, e := range st.Seen {
		m.sharedSeen[pageKey{e.VM, e.VPage}] = true
	}
	for _, t := range m.tlbs {
		for i := range t {
			t[i] = tlbEntry{vm: -1}
		}
	}
	m.PrivatePages = st.PrivatePages
	m.SharedPages = st.SharedPages
	m.DedupRefs = st.DedupRefs
	m.CoWBreaks = st.CoWBreaks
	return nil
}
