// Package memctrl models the off-chip memory system: the eight memory
// controllers on the chip borders (Table III: 300-cycle latency plus a
// small random delay) and the hypervisor's content-based page
// deduplication with copy-on-write.
package memctrl

import (
	"sync"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/topo"
)

// BlocksPerPage is the number of 64-byte blocks in a 4 KB page.
const BlocksPerPage = 64

// Controllers places and times the chip's memory controllers.
type Controllers struct {
	tiles   []topo.Tile
	latency sim.Time
	jitter  int
	rng     *sim.Rand

	Reads  uint64
	Writes uint64
}

// BorderTiles returns n controller positions spread along the top and
// bottom borders of the grid (the paper places 8 along the borders of
// the 8x8 chip).
func BorderTiles(grid topo.Grid, n int) []topo.Tile {
	if n <= 0 {
		panic("memctrl: need at least one controller")
	}
	tiles := make([]topo.Tile, 0, n)
	half := (n + 1) / 2
	for i := 0; i < half; i++ {
		x := i * grid.Cols / half
		tiles = append(tiles, grid.At(x, 0))
	}
	for i := 0; i < n-half; i++ {
		x := i*grid.Cols/(n-half) + grid.Cols/(2*(n-half))
		tiles = append(tiles, grid.At(x, grid.Rows-1))
	}
	return tiles
}

// New returns controllers at the given tiles with base latency and a
// uniform random extra delay in [0, jitter].
func New(tiles []topo.Tile, latency sim.Time, jitter int, rng *sim.Rand) *Controllers {
	if len(tiles) == 0 {
		panic("memctrl: no controller tiles")
	}
	return &Controllers{tiles: tiles, latency: latency, jitter: jitter, rng: rng}
}

// Default returns the paper's configuration: 8 border controllers,
// 300 cycles plus up to 16 cycles of jitter.
func Default(grid topo.Grid, rng *sim.Rand) *Controllers {
	return New(BorderTiles(grid, 8), 300, 16, rng)
}

// For returns the controller tile responsible for block address a
// (address-interleaved).
func (c *Controllers) For(a cache.Addr) topo.Tile {
	return c.tiles[uint64(a)%uint64(len(c.tiles))]
}

// Tiles returns the controller positions (shared slice; do not mutate).
func (c *Controllers) Tiles() []topo.Tile { return c.tiles }

// ReadLatency samples the DRAM access time for a read and counts it.
func (c *Controllers) ReadLatency() sim.Time {
	c.Reads++
	return c.sample()
}

// WriteLatency samples the DRAM access time for a writeback and counts
// it.
func (c *Controllers) WriteLatency() sim.Time {
	c.Writes++
	return c.sample()
}

func (c *Controllers) sample() sim.Time {
	d := c.latency
	if c.jitter > 0 {
		d += sim.Time(c.rng.Intn(c.jitter + 1))
	}
	return d
}

// PageClass classifies a virtual page for the deduplication model.
type PageClass int

// Page classes: private to one thread, shared within one VM, or
// deduplicated read-only content identical across VMs.
const (
	PagePrivate PageClass = iota
	PageVMShared
	PageDedup
)

type pageKey struct {
	vm    int
	vpage uint64
}

// tlbSize is the size of the mapper's direct-mapped translation cache
// (power of two). Collisions simply fall back to the map-based path.
const tlbSize = 8192

// cowFrameBase is the physical page number of the first reserved
// copy-on-write frame. CoW frames are reserved at page-table
// construction (one per deduplicated (vm, vpage) pair, in construction
// order) so a break at run time activates a predetermined frame instead
// of drawing from the shared allocator — the frame number is then
// independent of break order, which is what lets concurrent lanes break
// pages without serializing on an allocation counter. Regular frames
// stay far below this base, and block addresses stay under 2^40.
const cowFrameBase = 1 << 30

// tlbEntry caches one established (vm, vpage, class) -> phys mapping.
// writeSafe is false for a deduplicated page still resolved to the
// shared frame: a write to it must take the slow path to break the
// sharing (copy-on-write). until bounds the entry's validity: zero
// means forever; a nonzero value marks a pending copy-on-write break
// whose new frame becomes visible at that cycle, so lookups at or past
// it must re-resolve through the maps.
type tlbEntry struct {
	vm        int32
	class     int8
	writeSafe bool
	vpage     uint64
	phys      uint64
	until     sim.Time
}

// Mapper is the hypervisor page table: it maps (vm, virtual page) to
// physical pages, merging identical read-only pages across VMs when
// deduplication is enabled, and breaking the sharing with copy-on-write
// when a deduplicated page is written.
//
// Lane safety: the page tables are fully populated at construction
// (the generator pre-maps every page), so run-time translations are
// lookups except for copy-on-write breaks. A sync.RWMutex guards the
// slow path; each executor lane gets its own direct-mapped TLB slot
// (SetLanes) read without locks; and a break's new frame becomes
// visible to *readers* only delay cycles later (SetCoWDelay — the
// parallel executor sets the kernel lookahead, within which no lane
// can observe another's same-window break anyway), which makes the
// outcome of every translation a pure function of its timestamp,
// independent of how concurrent lanes interleave.
type Mapper struct {
	dedup      bool
	nextPhys   uint64
	private    map[pageKey]uint64
	shared     map[uint64]uint64    // content id (vpage) -> phys page
	cowRes     map[pageKey]uint64   // reserved CoW frame per dedup pair
	cowAt      map[pageKey]sim.Time // break visibility time; presence = broken
	cowNext    uint64
	sharedSeen map[pageKey]bool // (vm, vpage) pairs already counted
	delay      sim.Time         // read visibility delay of a CoW break
	mu         sync.RWMutex     // guards the maps above
	tlbs       [][]tlbEntry     // per-lane direct-mapped front caches
	lanes      []*sim.Kernel    // per-lane kernels for deferred TLB shootdowns

	// Statistics.
	PrivatePages uint64
	SharedPages  uint64 // deduplicated physical pages
	DedupRefs    uint64 // (vm, vpage) pairs resolved to a shared page
	CoWBreaks    uint64
}

// NewMapper returns a mapper with deduplication enabled or disabled.
func NewMapper(dedup bool) *Mapper {
	m := &Mapper{
		dedup:      dedup,
		private:    make(map[pageKey]uint64),
		shared:     make(map[uint64]uint64),
		cowRes:     make(map[pageKey]uint64),
		cowAt:      make(map[pageKey]sim.Time),
		sharedSeen: make(map[pageKey]bool),
		tlbs:       [][]tlbEntry{newTLB()},
	}
	return m
}

func newTLB() []tlbEntry {
	t := make([]tlbEntry, tlbSize)
	for i := range t {
		t[i].vm = -1
	}
	return t
}

// DedupEnabled reports whether deduplication is on.
func (m *Mapper) DedupEnabled() bool { return m.dedup }

// SetCoWDelay sets the visibility delay of copy-on-write breaks: a
// break at cycle t resolves readers to the old shared frame until t +
// delay. Zero (the default) is immediate visibility. The system sets
// the kernel lookahead here for every executor, so serial, merged and
// parallel runs share one timing model.
func (m *Mapper) SetCoWDelay(d sim.Time) { m.delay = d }

// SetLanes gives each executor lane a private TLB and the kernel whose
// barrier a break's TLB shootdown defers to. Translations then pass
// their lane as slot. All TLBs start cold.
func (m *Mapper) SetLanes(kernels []*sim.Kernel) {
	if len(kernels) == 0 {
		panic("memctrl: SetLanes with no lanes")
	}
	m.lanes = kernels
	m.tlbs = make([][]tlbEntry, len(kernels))
	for i := range m.tlbs {
		m.tlbs[i] = newTLB()
	}
}

func (m *Mapper) allocPhys() uint64 {
	p := m.nextPhys
	m.nextPhys++
	return p
}

// reserveCoW assigns the pair its predetermined copy-on-write frame.
// Caller holds the write lock; pairs are first seen at construction
// (single-threaded), so the reservation order is deterministic.
func (m *Mapper) reserveCoW(key pageKey) {
	m.cowRes[key] = cowFrameBase + m.cowNext
	m.cowNext++
}

// Translate maps a virtual page of a VM to a physical page through
// lane 0 at cycle 0: the construction-time and single-executor form of
// TranslateAt.
func (m *Mapper) Translate(vm int, vpage uint64, class PageClass, write bool) (phys uint64, cow bool) {
	return m.TranslateAt(vm, vpage, class, write, 0, 0)
}

// TranslateAt maps a virtual page of a VM to a physical page, as seen
// by executor lane slot at cycle now. write triggers copy-on-write on
// deduplicated pages. The returned cow flag reports that this call
// broke a sharing (the caller may account a page-copy cost).
//
// A direct-mapped cache per lane sits in front of the page-table maps:
// once a mapping is established (and, for deduplicated pages, once any
// copy-on-write has resolved and become visible) the maps are never
// consulted again for it. First touches and CoW-breaking writes always
// reach the slow path, so the mapper's statistics and allocation order
// are unchanged.
func (m *Mapper) TranslateAt(vm int, vpage uint64, class PageClass, write bool, slot int, now sim.Time) (phys uint64, cow bool) {
	h := (vpage ^ uint64(vm)<<59) * 0x9E3779B97F4A7C15 >> 32 & (tlbSize - 1)
	e := &m.tlbs[slot][h]
	if e.vpage == vpage && e.vm == int32(vm) && e.class == int8(class) &&
		(e.writeSafe || !write) && (e.until == 0 || now < e.until) {
		return e.phys, false
	}
	phys, cow, writeSafe, until, cache := m.translateSlow(vm, vpage, class, write, slot, now)
	if cache {
		// Writes inside a pending break are not cached: their frame is
		// not readable until the visibility time, and the shootdown a
		// break issued would be undone by the refill.
		*e = tlbEntry{vm: int32(vm), class: int8(class), writeSafe: writeSafe,
			vpage: vpage, phys: phys, until: until}
	}
	return phys, cow
}

func (m *Mapper) translateSlow(vm int, vpage uint64, class PageClass, write bool, slot int, now sim.Time) (phys uint64, cow, writeSafe bool, until sim.Time, cache bool) {
	key := pageKey{vm, vpage}
	if class != PageDedup || !m.dedup {
		m.mu.RLock()
		p, ok := m.private[key]
		m.mu.RUnlock()
		if ok {
			return p, false, true, 0, true
		}
		m.mu.Lock()
		defer m.mu.Unlock()
		if p, ok := m.private[key]; ok {
			return p, false, true, 0, true
		}
		p = m.allocPhys()
		m.private[key] = p
		m.PrivatePages++
		return p, false, true, 0, true
	}
	// Deduplicated page: one physical copy per content id unless this
	// VM broke it with a (visible) write.
	m.mu.RLock()
	vAt, broken := m.cowAt[key]
	if broken && now >= vAt {
		p := m.cowRes[key]
		m.mu.RUnlock()
		return p, false, true, 0, true
	}
	sp, known := m.shared[vpage]
	seen := m.sharedSeen[key]
	m.mu.RUnlock()
	if !write && known && seen {
		if broken {
			// Pending break: readers resolve to the shared frame until
			// the new copy becomes visible.
			return sp, false, false, vAt, true
		}
		return sp, false, false, 0, true
	}
	// First touch of the pair, or a write: mutate under the write lock.
	m.mu.Lock()
	defer m.mu.Unlock()
	sp, known = m.shared[vpage]
	if !known {
		sp = m.allocPhys()
		m.shared[vpage] = sp
		m.SharedPages++
		m.sharedSeen[key] = true
		m.reserveCoW(key)
	} else if !m.sharedSeen[key] {
		// A new VM maps an already-deduplicated page: one page saved.
		m.sharedSeen[key] = true
		m.DedupRefs++
		m.reserveCoW(key)
	}
	if !write {
		return sp, false, false, 0, true
	}
	frame := m.cowRes[key]
	vAt, broken = m.cowAt[key]
	if broken && now >= vAt {
		return frame, false, true, 0, true
	}
	nv := now + m.delay
	if broken {
		// A second writer inside the visibility window: the break
		// already counted; keep the earliest visibility time (min is
		// order-independent, so concurrent lanes converge on the same
		// value the serial executor computes).
		if nv < vAt {
			m.cowAt[key] = nv
			m.shootdown(key, slot)
		}
		return frame, false, true, 0, false
	}
	m.cowAt[key] = nv
	m.CoWBreaks++
	m.shootdown(key, slot)
	return frame, true, true, 0, false
}

// shootdown invalidates every lane's TLB slot for a broken pair. In a
// parallel window the clear is deferred to the barrier — stale entries
// resolve readers to the old shared frame meanwhile, which is exactly
// the pending-break semantics, and the barrier runs before any lane's
// clock can reach the visibility time. Outside a window (serial or
// merged executor, single-threaded) the clear is immediate.
func (m *Mapper) shootdown(key pageKey, slot int) {
	if m.lanes != nil {
		if k := m.lanes[slot]; k.Deferring() {
			k.Defer(0, m.deferredShootdown, key)
			return
		}
	}
	m.clearKey(key)
}

func (m *Mapper) deferredShootdown(arg any, _ uint64) {
	m.clearKey(arg.(pageKey))
}

func (m *Mapper) clearKey(key pageKey) {
	h := (key.vpage ^ uint64(key.vm)<<59) * 0x9E3779B97F4A7C15 >> 32 & (tlbSize - 1)
	for _, t := range m.tlbs {
		t[h] = tlbEntry{vm: -1}
	}
}

// BlockAddr converts a physical page and block offset into a block
// address.
func BlockAddr(physPage uint64, block int) cache.Addr {
	return cache.Addr(physPage*BlocksPerPage + uint64(block))
}

// SavedFraction returns the fraction of physical memory saved by
// deduplication: pages that would have been allocated without dedup
// versus pages actually allocated.
func (m *Mapper) SavedFraction() float64 {
	without := m.PrivatePages + m.SharedPages + m.DedupRefs + m.CoWBreaks
	with := m.nextPhys
	if without == 0 {
		return 0
	}
	return 1 - float64(with)/float64(without)
}
