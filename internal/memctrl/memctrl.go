// Package memctrl models the off-chip memory system: the eight memory
// controllers on the chip borders (Table III: 300-cycle latency plus a
// small random delay) and the hypervisor's content-based page
// deduplication with copy-on-write.
package memctrl

import (
	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/topo"
)

// BlocksPerPage is the number of 64-byte blocks in a 4 KB page.
const BlocksPerPage = 64

// Controllers places and times the chip's memory controllers.
type Controllers struct {
	tiles   []topo.Tile
	latency sim.Time
	jitter  int
	rng     *sim.Rand

	Reads  uint64
	Writes uint64
}

// BorderTiles returns n controller positions spread along the top and
// bottom borders of the grid (the paper places 8 along the borders of
// the 8x8 chip).
func BorderTiles(grid topo.Grid, n int) []topo.Tile {
	if n <= 0 {
		panic("memctrl: need at least one controller")
	}
	tiles := make([]topo.Tile, 0, n)
	half := (n + 1) / 2
	for i := 0; i < half; i++ {
		x := i * grid.Cols / half
		tiles = append(tiles, grid.At(x, 0))
	}
	for i := 0; i < n-half; i++ {
		x := i*grid.Cols/(n-half) + grid.Cols/(2*(n-half))
		tiles = append(tiles, grid.At(x, grid.Rows-1))
	}
	return tiles
}

// New returns controllers at the given tiles with base latency and a
// uniform random extra delay in [0, jitter].
func New(tiles []topo.Tile, latency sim.Time, jitter int, rng *sim.Rand) *Controllers {
	if len(tiles) == 0 {
		panic("memctrl: no controller tiles")
	}
	return &Controllers{tiles: tiles, latency: latency, jitter: jitter, rng: rng}
}

// Default returns the paper's configuration: 8 border controllers,
// 300 cycles plus up to 16 cycles of jitter.
func Default(grid topo.Grid, rng *sim.Rand) *Controllers {
	return New(BorderTiles(grid, 8), 300, 16, rng)
}

// For returns the controller tile responsible for block address a
// (address-interleaved).
func (c *Controllers) For(a cache.Addr) topo.Tile {
	return c.tiles[uint64(a)%uint64(len(c.tiles))]
}

// Tiles returns the controller positions (shared slice; do not mutate).
func (c *Controllers) Tiles() []topo.Tile { return c.tiles }

// ReadLatency samples the DRAM access time for a read and counts it.
func (c *Controllers) ReadLatency() sim.Time {
	c.Reads++
	return c.sample()
}

// WriteLatency samples the DRAM access time for a writeback and counts
// it.
func (c *Controllers) WriteLatency() sim.Time {
	c.Writes++
	return c.sample()
}

func (c *Controllers) sample() sim.Time {
	d := c.latency
	if c.jitter > 0 {
		d += sim.Time(c.rng.Intn(c.jitter + 1))
	}
	return d
}

// PageClass classifies a virtual page for the deduplication model.
type PageClass int

// Page classes: private to one thread, shared within one VM, or
// deduplicated read-only content identical across VMs.
const (
	PagePrivate PageClass = iota
	PageVMShared
	PageDedup
)

type pageKey struct {
	vm    int
	vpage uint64
}

// tlbSize is the size of the mapper's direct-mapped translation cache
// (power of two). Collisions simply fall back to the map-based path.
const tlbSize = 8192

// tlbEntry caches one established (vm, vpage, class) -> phys mapping.
// writeSafe is false for a deduplicated page still resolved to the
// shared frame: a write to it must take the slow path to break the
// sharing (copy-on-write), which refills the entry with the new frame.
type tlbEntry struct {
	vm        int32
	class     int8
	writeSafe bool
	vpage     uint64
	phys      uint64
}

// Mapper is the hypervisor page table: it maps (vm, virtual page) to
// physical pages, merging identical read-only pages across VMs when
// deduplication is enabled, and breaking the sharing with copy-on-write
// when a deduplicated page is written.
type Mapper struct {
	dedup      bool
	nextPhys   uint64
	private    map[pageKey]uint64
	shared     map[uint64]uint64 // content id (vpage) -> phys page
	cow        map[pageKey]uint64
	sharedSeen map[pageKey]bool // (vm, vpage) pairs already counted
	tlb        []tlbEntry       // direct-mapped front cache

	// Statistics.
	PrivatePages uint64
	SharedPages  uint64 // deduplicated physical pages
	DedupRefs    uint64 // (vm, vpage) pairs resolved to a shared page
	CoWBreaks    uint64
}

// NewMapper returns a mapper with deduplication enabled or disabled.
func NewMapper(dedup bool) *Mapper {
	m := &Mapper{
		dedup:      dedup,
		private:    make(map[pageKey]uint64),
		shared:     make(map[uint64]uint64),
		cow:        make(map[pageKey]uint64),
		sharedSeen: make(map[pageKey]bool),
		tlb:        make([]tlbEntry, tlbSize),
	}
	for i := range m.tlb {
		m.tlb[i].vm = -1
	}
	return m
}

// DedupEnabled reports whether deduplication is on.
func (m *Mapper) DedupEnabled() bool { return m.dedup }

func (m *Mapper) allocPhys() uint64 {
	p := m.nextPhys
	m.nextPhys++
	return p
}

// Translate maps a virtual page of a VM to a physical page. write
// triggers copy-on-write on deduplicated pages. The returned cow flag
// reports that this call broke a sharing (the caller may account a
// page-copy cost).
//
// A direct-mapped cache sits in front of the page-table maps: once a
// mapping is established (and, for deduplicated pages, once any
// copy-on-write has resolved) the maps are never consulted again for
// it. First touches and CoW-breaking writes always reach the slow
// path, so the mapper's statistics and allocation order are unchanged.
func (m *Mapper) Translate(vm int, vpage uint64, class PageClass, write bool) (phys uint64, cow bool) {
	h := (vpage ^ uint64(vm)<<59) * 0x9E3779B97F4A7C15 >> 32 & (tlbSize - 1)
	e := &m.tlb[h]
	if e.vpage == vpage && e.vm == int32(vm) && e.class == int8(class) && (e.writeSafe || !write) {
		return e.phys, false
	}
	phys, cow, writeSafe := m.translateSlow(vm, vpage, class, write)
	*e = tlbEntry{vm: int32(vm), class: int8(class), writeSafe: writeSafe, vpage: vpage, phys: phys}
	return phys, cow
}

func (m *Mapper) translateSlow(vm int, vpage uint64, class PageClass, write bool) (phys uint64, cow, writeSafe bool) {
	key := pageKey{vm, vpage}
	if class != PageDedup || !m.dedup {
		if p, ok := m.private[key]; ok {
			return p, false, true
		}
		p := m.allocPhys()
		m.private[key] = p
		m.PrivatePages++
		return p, false, true
	}
	// Deduplicated page: one physical copy per content id unless this
	// VM broke it with a write.
	if p, ok := m.cow[key]; ok {
		return p, false, true
	}
	sp, ok := m.shared[vpage]
	if !ok {
		sp = m.allocPhys()
		m.shared[vpage] = sp
		m.SharedPages++
		m.sharedSeen[key] = true
	} else if !m.sharedSeen[key] {
		// A new VM maps an already-deduplicated page: one page saved.
		m.sharedSeen[key] = true
		m.DedupRefs++
	}
	if write {
		p := m.allocPhys()
		m.cow[key] = p
		m.CoWBreaks++
		return p, true, true
	}
	return sp, false, false
}

// BlockAddr converts a physical page and block offset into a block
// address.
func BlockAddr(physPage uint64, block int) cache.Addr {
	return cache.Addr(physPage*BlocksPerPage + uint64(block))
}

// SavedFraction returns the fraction of physical memory saved by
// deduplication: pages that would have been allocated without dedup
// versus pages actually allocated.
func (m *Mapper) SavedFraction() float64 {
	without := m.PrivatePages + m.SharedPages + m.DedupRefs + m.CoWBreaks
	with := m.nextPhys
	if without == 0 {
		return 0
	}
	return 1 - float64(with)/float64(without)
}
