package memctrl

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/topo"
)

func TestBorderTilesOnBorders(t *testing.T) {
	g := topo.NewGrid(8, 8)
	tiles := BorderTiles(g, 8)
	if len(tiles) != 8 {
		t.Fatalf("got %d tiles, want 8", len(tiles))
	}
	seen := make(map[topo.Tile]bool)
	for _, tile := range tiles {
		_, y := g.Coord(tile)
		if y != 0 && y != 7 {
			t.Errorf("controller at tile %d not on a border row", tile)
		}
		if seen[tile] {
			t.Errorf("duplicate controller tile %d", tile)
		}
		seen[tile] = true
	}
}

func TestControllersInterleave(t *testing.T) {
	g := topo.NewGrid(8, 8)
	c := Default(g, sim.NewRand(1))
	counts := make(map[topo.Tile]int)
	for a := cache.Addr(0); a < 8000; a++ {
		counts[c.For(a)]++
	}
	if len(counts) != 8 {
		t.Fatalf("addresses map to %d controllers, want 8", len(counts))
	}
	for tile, n := range counts {
		if n != 1000 {
			t.Errorf("controller %d got %d addresses, want 1000", tile, n)
		}
	}
}

func TestLatencyRange(t *testing.T) {
	c := New([]topo.Tile{0}, 300, 16, sim.NewRand(2))
	sawJitter := false
	for i := 0; i < 200; i++ {
		l := c.ReadLatency()
		if l < 300 || l > 316 {
			t.Fatalf("latency %d outside [300,316]", l)
		}
		if l != 300 {
			sawJitter = true
		}
	}
	if !sawJitter {
		t.Error("jitter never applied")
	}
	if c.Reads != 200 {
		t.Errorf("Reads = %d, want 200", c.Reads)
	}
	c.WriteLatency()
	if c.Writes != 1 {
		t.Errorf("Writes = %d, want 1", c.Writes)
	}
}

func TestMapperPrivateIsolation(t *testing.T) {
	m := NewMapper(true)
	p0, _ := m.Translate(0, 100, PagePrivate, false)
	p1, _ := m.Translate(1, 100, PagePrivate, false)
	if p0 == p1 {
		t.Error("private pages of different VMs share a frame")
	}
	again, _ := m.Translate(0, 100, PagePrivate, true)
	if again != p0 {
		t.Error("private translation not stable")
	}
}

func TestMapperDedupMerges(t *testing.T) {
	m := NewMapper(true)
	p0, _ := m.Translate(0, 7, PageDedup, false)
	p1, _ := m.Translate(1, 7, PageDedup, false)
	p2, _ := m.Translate(2, 7, PageDedup, false)
	if p0 != p1 || p1 != p2 {
		t.Error("dedup pages not merged across VMs")
	}
	if m.DedupRefs != 2 {
		t.Errorf("DedupRefs = %d, want 2", m.DedupRefs)
	}
}

func TestMapperDedupOff(t *testing.T) {
	m := NewMapper(false)
	p0, _ := m.Translate(0, 7, PageDedup, false)
	p1, _ := m.Translate(1, 7, PageDedup, false)
	if p0 == p1 {
		t.Error("dedup off but pages merged")
	}
}

func TestMapperCopyOnWrite(t *testing.T) {
	m := NewMapper(true)
	shared, _ := m.Translate(0, 7, PageDedup, false)
	other, _ := m.Translate(1, 7, PageDedup, false)
	if shared != other {
		t.Fatal("precondition: pages merged")
	}
	broken, cow := m.Translate(1, 7, PageDedup, true)
	if !cow {
		t.Fatal("write to dedup page did not report CoW")
	}
	if broken == shared {
		t.Fatal("CoW did not allocate a new frame")
	}
	// VM 1 now sticks to its copy; VM 0 keeps the shared frame.
	p1, cow2 := m.Translate(1, 7, PageDedup, false)
	if cow2 || p1 != broken {
		t.Error("post-CoW translation unstable")
	}
	p0, _ := m.Translate(0, 7, PageDedup, false)
	if p0 != shared {
		t.Error("CoW disturbed the other VM's mapping")
	}
	if m.CoWBreaks != 1 {
		t.Errorf("CoWBreaks = %d, want 1", m.CoWBreaks)
	}
}

func TestMapperSavedFraction(t *testing.T) {
	m := NewMapper(true)
	// 4 VMs x 100 private pages + 4 VMs sharing 25 dedup pages.
	for vm := 0; vm < 4; vm++ {
		for p := uint64(0); p < 100; p++ {
			m.Translate(vm, 1000+uint64(vm)*10000+p, PagePrivate, false)
		}
		for p := uint64(0); p < 25; p++ {
			m.Translate(vm, p, PageDedup, false)
		}
	}
	// Without dedup: 4*125 = 500 pages; with: 400 + 25 = 425.
	got := m.SavedFraction()
	want := 1 - 425.0/500.0
	if got < want-0.001 || got > want+0.001 {
		t.Errorf("SavedFraction = %v, want %v", got, want)
	}
}

func TestBlockAddrProperty(t *testing.T) {
	if err := quick.Check(func(page uint32, blk uint8) bool {
		b := int(blk) % BlocksPerPage
		a := BlockAddr(uint64(page), b)
		return uint64(a)/BlocksPerPage == uint64(page) && int(uint64(a)%BlocksPerPage) == b
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestMapperDistinctContentDistinctFrames(t *testing.T) {
	m := NewMapper(true)
	p0, _ := m.Translate(0, 1, PageDedup, false)
	p1, _ := m.Translate(0, 2, PageDedup, false)
	if p0 == p1 {
		t.Error("different content ids share a frame")
	}
}

// tlbSlot mirrors the hash in Mapper.Translate; the collision tests
// below construct keys that provably share a slot, and this keeps them
// honest if the hash ever changes.
func tlbSlot(vm int, vpage uint64) uint64 {
	return (vpage ^ uint64(vm)<<59) * 0x9E3779B97F4A7C15 >> 32 & (tlbSize - 1)
}

// TestTLBCollisionCorrectness forces two distinct (vm, vpage) keys
// into the same direct-mapped TLB slot and checks that each always
// translates to its own established physical page. The TLB hash folds
// the VM id into bits the vpage also occupies, so a slot match alone
// says nothing — only the full-key compare in the entry makes a hit
// valid, and this is the regression test for it.
func TestTLBCollisionCorrectness(t *testing.T) {
	vm1, vm2 := 1, 2
	vpage1 := uint64(0x12345)
	// XOR-cancel the folded vm bits: both keys hash identically.
	vpage2 := vpage1 ^ uint64(vm1)<<59 ^ uint64(vm2)<<59
	if tlbSlot(vm1, vpage1) != tlbSlot(vm2, vpage2) {
		t.Fatalf("test premise broken: keys do not collide (slots %d, %d)",
			tlbSlot(vm1, vpage1), tlbSlot(vm2, vpage2))
	}
	for _, class := range []PageClass{PagePrivate, PageDedup} {
		m := NewMapper(true)
		p1, _ := m.Translate(vm1, vpage1, class, false)
		p2, _ := m.Translate(vm2, vpage2, class, false)
		if class == PagePrivate && p1 == p2 {
			t.Fatalf("class %v: distinct private pages share a frame", class)
		}
		// Alternate: every access evicts the other's entry, so a
		// hash-only match would hand back the wrong frame.
		for i := 0; i < 4; i++ {
			if got, _ := m.Translate(vm1, vpage1, class, false); got != p1 {
				t.Fatalf("class %v: (vm%d, %#x) moved from frame %d to %d after collision",
					class, vm1, vpage1, p1, got)
			}
			if got, _ := m.Translate(vm2, vpage2, class, false); got != p2 {
				t.Fatalf("class %v: (vm%d, %#x) moved from frame %d to %d after collision",
					class, vm2, vpage2, p2, got)
			}
		}
	}
}

// TestTLBCollisionCoW: a copy-on-write break on one of two colliding
// deduplicated keys must not leak its private frame to the other.
func TestTLBCollisionCoW(t *testing.T) {
	vm1, vm2 := 3, 5
	vpage1 := uint64(0xBEEF)
	vpage2 := vpage1 ^ uint64(vm1)<<59 ^ uint64(vm2)<<59
	if tlbSlot(vm1, vpage1) != tlbSlot(vm2, vpage2) {
		t.Fatal("test premise broken: keys do not collide")
	}
	m := NewMapper(true)
	shared1, _ := m.Translate(vm1, vpage1, PageDedup, false)
	// vm1 writes: breaks sharing, gets a private frame.
	broken, cow := m.Translate(vm1, vpage1, PageDedup, true)
	if !cow || broken == shared1 {
		t.Fatalf("write did not break sharing: cow=%v frame %d -> %d", cow, shared1, broken)
	}
	// vm2 reads its own (colliding, different content id) page: must
	// see its own shared frame, never vm1's private copy.
	p2, _ := m.Translate(vm2, vpage2, PageDedup, false)
	if p2 == broken {
		t.Fatal("colliding key resolved to another VM's CoW frame")
	}
	if got, _ := m.Translate(vm1, vpage1, PageDedup, false); got != broken {
		t.Fatalf("vm1 lost its CoW frame after collision: %d vs %d", got, broken)
	}
}
