// Package power models the chip's power consumption the way the paper
// does: CACTI-style leakage and per-access energies for the cache
// structures (Section V-A, 32 nm), and the Barrow-Williams model for
// the network (routing a message costs as much as reading an L1 block
// and four times as much as transmitting a flit over a link).
//
// All figures in the paper are *normalized* (to the directory
// protocol's cache dynamic power), so the absolute calibration matters
// only for the leakage table (Table VI), which reports milliwatts. The
// leakage model is therefore fit to the directory row of Table VI and
// applied unchanged to the other protocols.
package power

import (
	"math"

	"repro/internal/storage"
)

// Event counter names shared between the protocol engines (which
// increment them) and the dynamic power model (which weighs them).
// The breakdown classes follow Figure 8a.
const (
	EvL1TagRead   = "l1.tag.read"   // L1 tag lookup (incl. coherence info)
	EvL1TagWrite  = "l1.tag.write"  // L1 state/coherence-info update
	EvL1DataRead  = "l1.data.read"  // L1 block read (hit or supplying data)
	EvL1DataWrite = "l1.data.write" // L1 block fill or store
	EvL2TagRead   = "l2.tag.read"
	EvL2TagWrite  = "l2.tag.write"
	EvL2DataRead  = "l2.data.read"
	EvL2DataWrite = "l2.data.write"
	EvDirRead     = "dir.read"  // directory-cache lookup (directory protocol)
	EvDirWrite    = "dir.write" // directory-cache update
	EvL1CAccess   = "l1c.access"
	EvL1CUpdate   = "l1c.update"
	EvL2CAccess   = "l2c.access"
	EvL2CUpdate   = "l2c.update"
)

// LeakageModel is a linear bits-to-milliwatts model with separate
// coefficients for tag arrays (associative, more ports) and data
// arrays.
type LeakageModel struct {
	TagNanoWattPerBit  float64
	DataNanoWattPerBit float64
}

// DefaultLeakage returns the model fit to Table VI's directory row:
// 37 mW of tag leakage over the directory's 1,556,480 tag-array bits
// and 202 mW (= 239-37) over the 9,437,184 data-array bits of a tile.
func DefaultLeakage() LeakageModel {
	dirCfg := storage.DefaultConfig(64, 4)
	tagBits := float64(storage.TagArrayBits(storage.Directory, dirCfg))
	dataBits := float64(storage.DataArrayBits(dirCfg))
	return LeakageModel{
		TagNanoWattPerBit:  37.0 * 1e6 / tagBits, // mW -> nW
		DataNanoWattPerBit: 202.0 * 1e6 / dataBits,
	}
}

// TileLeakage returns the leakage power of one tile's caches in
// milliwatts: total and the tag-array share (the two columns of
// Table VI).
func (m LeakageModel) TileLeakage(p storage.Protocol, c storage.Config) (totalMW, tagMW float64) {
	tagMW = m.TagNanoWattPerBit * float64(storage.TagArrayBits(p, c)) / 1e6
	dataMW := m.DataNanoWattPerBit * float64(storage.DataArrayBits(c)) / 1e6
	return tagMW + dataMW, tagMW
}

// EnergyModel produces per-access energies for the storage arrays.
// Energy grows linearly with the bits moved per access and with the
// square root of the array size (bitline/wordline length), which is
// the dominant CACTI trend.
type EnergyModel struct {
	// PJPerBit is the energy to read one bit from a 1 KB array.
	PJPerBit float64
	// SizeExponent scales energy with (arrayKB)^SizeExponent.
	SizeExponent float64
}

// DefaultEnergy returns the calibration used throughout: 0.02 pJ/bit
// at 1 KB with sqrt size scaling. Absolute values cancel in the
// paper's normalized figures; the ratios (L2 read > L1 read, wider
// tags cost more) are what matter.
func DefaultEnergy() EnergyModel {
	return EnergyModel{PJPerBit: 0.02, SizeExponent: 0.5}
}

// AccessEnergy returns the energy in pJ of moving bitsAccessed bits
// in/out of an array of arrayKB kilobytes.
func (m EnergyModel) AccessEnergy(arrayKB float64, bitsAccessed int) float64 {
	if arrayKB < 0.25 {
		arrayKB = 0.25
	}
	return m.PJPerBit * float64(bitsAccessed) * math.Pow(arrayKB, m.SizeExponent)
}

// Associativities of the lookup structures (not specified by the
// paper; fixed here for all protocols so comparisons are fair).
const (
	l1Ways    = 4
	l2Ways    = 8
	ccWays    = 4 // L1C$, L2C$, directory cache
	blockBits = 512
)

// TileEnergies holds the per-event energies (pJ) of one tile under a
// given protocol. Tag energies depend on the protocol because the
// coherence information lives in the tag arrays.
type TileEnergies struct {
	L1TagRead, L1TagWrite   float64
	L1DataRead, L1DataWrite float64
	L2TagRead, L2TagWrite   float64
	L2DataRead, L2DataWrite float64
	DirRead, DirWrite       float64
	L1CAccess, L1CUpdate    float64
	L2CAccess, L2CUpdate    float64
	Router, Flit            float64
}

// Energies computes the event energy table for protocol p on geometry
// c. Network energies follow [22]: Router == L1 block read, Flit ==
// Router / 4.
func Energies(p storage.Protocol, c storage.Config, m EnergyModel) TileEnergies {
	coh := make(map[string]storage.Structure)
	for _, s := range storage.CoherenceStructures(p, c) {
		coh[s.Name] = s
	}
	// Per-entry coherence bits co-located with the L1 and L2 tags.
	l1CohBits, l2CohBits := 0, 0
	if s, ok := coh["L1 dir. inf."]; ok {
		l1CohBits = s.EntryBits
	}
	if s, ok := coh["L2 dir. inf."]; ok && p != storage.Directory {
		l2CohBits = s.EntryBits
	}
	if p == storage.Directory {
		// The directory's full-map vector lives with the L2 tags too.
		l2CohBits = coh["L2 dir. inf."].EntryBits
	}

	l1TagEntry := c.L1TagBits + l1CohBits
	l2TagEntry := c.L2TagBits + l2CohBits
	l1TagKB := float64(l1TagEntry*c.L1Entries) / 8 / 1024
	l2TagKB := float64(l2TagEntry*c.L2Entries) / 8 / 1024
	l1DataKB := float64(blockBits*c.L1Entries) / 8 / 1024
	l2DataKB := float64(blockBits*c.L2Entries) / 8 / 1024

	e := TileEnergies{
		// A tag lookup matches every way of the set against the
		// address tag (plus state bits) and then reads the matching
		// way's co-located coherence information once; an update
		// rewrites one full entry. The array size (and hence bitline
		// length) still includes the coherence information, which is
		// how the wider DiCo-family tags cost more per access.
		L1TagRead:   m.AccessEnergy(l1TagKB, l1Ways*(c.L1TagBits+2)+l1CohBits),
		L1TagWrite:  m.AccessEnergy(l1TagKB, l1TagEntry),
		L1DataRead:  m.AccessEnergy(l1DataKB, blockBits),
		L1DataWrite: m.AccessEnergy(l1DataKB, blockBits),
		L2TagRead:   m.AccessEnergy(l2TagKB, l2Ways*(c.L2TagBits+2)+l2CohBits),
		L2TagWrite:  m.AccessEnergy(l2TagKB, l2TagEntry),
		L2DataRead:  m.AccessEnergy(l2DataKB, blockBits),
		L2DataWrite: m.AccessEnergy(l2DataKB, blockBits),
	}
	if s, ok := coh["Dir. cache"]; ok {
		kb := s.KB()
		e.DirRead = m.AccessEnergy(kb, ccWays*s.EntryBits)
		e.DirWrite = m.AccessEnergy(kb, s.EntryBits)
	}
	if s, ok := coh["L1C$"]; ok {
		kb := s.KB()
		e.L1CAccess = m.AccessEnergy(kb, ccWays*s.EntryBits)
		e.L1CUpdate = m.AccessEnergy(kb, s.EntryBits)
	}
	if s, ok := coh["L2C$"]; ok {
		kb := s.KB()
		e.L2CAccess = m.AccessEnergy(kb, ccWays*s.EntryBits)
		e.L2CUpdate = m.AccessEnergy(kb, s.EntryBits)
	}
	// Barrow-Williams: routing == L1 block read; flit == routing / 4.
	e.Router = e.L1DataRead
	e.Flit = e.Router / 4
	return e
}
