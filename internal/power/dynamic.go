package power

import (
	"repro/internal/mesh"
	"repro/internal/stats"
)

// Breakdown classes used by the Figure 8a cache-power decomposition.
const (
	ClassL1Tag  = "L1 tag"
	ClassL1Data = "L1 data"
	ClassL2Tag  = "L2 tag"
	ClassL2Data = "L2 data"
	ClassDir    = "dir cache"
	ClassCC     = "coherence caches"
)

// CacheClasses lists the Figure 8a classes in presentation order.
var CacheClasses = []string{ClassL1Tag, ClassL1Data, ClassL2Tag, ClassL2Data, ClassDir, ClassCC}

// DynamicBreakdown is the chip's dynamic energy split the way Figures
// 7, 8a and 8b report it. All values are picojoules; callers normalize.
type DynamicBreakdown struct {
	Cache   map[string]float64 // by CacheClasses
	Link    float64            // flit transmissions (Figure 8b "links")
	Routing float64            // router traversals (Figure 8b "routing")
}

// CacheTotal returns the summed cache energy. The sum runs in
// CacheClasses order, not map order: float addition is not
// associative, so summing in map iteration order would make the last
// ulp — and occasionally a rounded digit in the figures — vary from
// call to call.
func (d DynamicBreakdown) CacheTotal() float64 {
	t := 0.0
	for _, cls := range CacheClasses {
		t += d.Cache[cls]
	}
	return t
}

// NetworkTotal returns link + routing energy.
func (d DynamicBreakdown) NetworkTotal() float64 { return d.Link + d.Routing }

// Total returns the full dynamic energy (Figure 7's bar height before
// normalization).
func (d DynamicBreakdown) Total() float64 { return d.CacheTotal() + d.NetworkTotal() }

// Dynamic converts the protocol's event counts and the network's
// activity counters into the energy breakdown.
func Dynamic(counts *stats.Set, net mesh.Stats, e TileEnergies) DynamicBreakdown {
	d := DynamicBreakdown{Cache: make(map[string]float64, len(CacheClasses))}
	add := func(class, ev string, pj float64) {
		d.Cache[class] += float64(counts.Value(ev)) * pj
	}
	add(ClassL1Tag, EvL1TagRead, e.L1TagRead)
	add(ClassL1Tag, EvL1TagWrite, e.L1TagWrite)
	add(ClassL1Data, EvL1DataRead, e.L1DataRead)
	add(ClassL1Data, EvL1DataWrite, e.L1DataWrite)
	add(ClassL2Tag, EvL2TagRead, e.L2TagRead)
	add(ClassL2Tag, EvL2TagWrite, e.L2TagWrite)
	add(ClassL2Data, EvL2DataRead, e.L2DataRead)
	add(ClassL2Data, EvL2DataWrite, e.L2DataWrite)
	add(ClassDir, EvDirRead, e.DirRead)
	add(ClassDir, EvDirWrite, e.DirWrite)
	add(ClassCC, EvL1CAccess, e.L1CAccess)
	add(ClassCC, EvL1CUpdate, e.L1CUpdate)
	add(ClassCC, EvL2CAccess, e.L2CAccess)
	add(ClassCC, EvL2CUpdate, e.L2CUpdate)
	d.Link = float64(net.FlitLinkCrossing) * e.Flit
	d.Routing = float64(net.RouterTraversals) * e.Router
	return d
}
