package power

import (
	"math"
	"testing"

	"repro/internal/mesh"
	"repro/internal/stats"
	"repro/internal/storage"
)

func cfg() storage.Config { return storage.DefaultConfig(64, 4) }

// TestTableVILeakage checks the fitted leakage model against every row
// of Table VI. The paper's CACTI numbers are mildly sub-linear for the
// smallest arrays, so DiCo-Arin is allowed ~1.5 mW of slack.
func TestTableVILeakage(t *testing.T) {
	m := DefaultLeakage()
	cases := []struct {
		p          storage.Protocol
		total, tag float64
		tolT, tolG float64
	}{
		{storage.Directory, 239, 37, 0.5, 0.1},
		{storage.DiCo, 241, 39, 1.0, 0.6},
		{storage.DiCoProviders, 222, 20, 1.0, 0.5},
		{storage.DiCoArin, 219, 17, 2.0, 1.5},
	}
	for _, c := range cases {
		total, tag := m.TileLeakage(c.p, cfg())
		if math.Abs(total-c.total) > c.tolT {
			t.Errorf("%v total leakage = %.1f mW, paper %v", c.p, total, c.total)
		}
		if math.Abs(tag-c.tag) > c.tolG {
			t.Errorf("%v tag leakage = %.1f mW, paper %v", c.p, tag, c.tag)
		}
	}
}

// TestTableVIDeltas checks the percentage columns: DiCo +1%/+5%,
// Providers -7%/-45%, Arin -8%/-54% versus the directory.
func TestTableVIDeltas(t *testing.T) {
	m := DefaultLeakage()
	dTotal, dTag := m.TileLeakage(storage.Directory, cfg())
	check := func(p storage.Protocol, wantTotal, wantTag, tol float64) {
		total, tag := m.TileLeakage(p, cfg())
		gotTotal := (total - dTotal) / dTotal * 100
		gotTag := (tag - dTag) / dTag * 100
		if math.Abs(gotTotal-wantTotal) > tol {
			t.Errorf("%v total delta = %.1f%%, paper %v%%", p, gotTotal, wantTotal)
		}
		if math.Abs(gotTag-wantTag) > 5 {
			t.Errorf("%v tag delta = %.1f%%, paper %v%%", p, gotTag, wantTag)
		}
	}
	check(storage.DiCo, 1, 5, 1)
	check(storage.DiCoProviders, -7, -45, 1.5)
	check(storage.DiCoArin, -8, -54, 1.5)
}

func TestAccessEnergyMonotonic(t *testing.T) {
	m := DefaultEnergy()
	if m.AccessEnergy(128, 512) <= m.AccessEnergy(16, 512) {
		t.Error("bigger array not more expensive")
	}
	if m.AccessEnergy(64, 1024) <= m.AccessEnergy(64, 512) {
		t.Error("more bits not more expensive")
	}
	if m.AccessEnergy(0.1, 8) <= 0 {
		t.Error("tiny array energy not positive")
	}
}

// TestEnergiesProtocolOrdering verifies the qualitative energy
// relations the paper relies on.
func TestEnergiesProtocolOrdering(t *testing.T) {
	m := DefaultEnergy()
	dir := Energies(storage.Directory, cfg(), m)
	dico := Energies(storage.DiCo, cfg(), m)
	prov := Energies(storage.DiCoProviders, cfg(), m)
	arin := Energies(storage.DiCoArin, cfg(), m)

	// "tag accesses are more power consuming in DiCo-based protocols
	// than in the flat directory" (L1 tags carry the sharing vector).
	if dico.L1TagRead <= dir.L1TagRead {
		t.Error("DiCo L1 tag access should cost more than directory's")
	}
	if prov.L1TagRead <= dir.L1TagRead || arin.L1TagRead <= dir.L1TagRead {
		t.Error("provider protocols' L1 tag access should cost more than directory's")
	}
	// But less than original DiCo (narrower vectors).
	if prov.L1TagRead >= dico.L1TagRead || arin.L1TagRead >= dico.L1TagRead {
		t.Error("provider protocols' L1 tag should cost less than DiCo's")
	}
	// "L2 tags are smaller in DiCo-Providers and even smaller in
	// DiCo-Arin."
	if !(arin.L2TagRead < prov.L2TagRead && prov.L2TagRead < dir.L2TagRead) {
		t.Errorf("L2 tag energy ordering broken: arin=%v prov=%v dir=%v",
			arin.L2TagRead, prov.L2TagRead, dir.L2TagRead)
	}
	// "L2 block reads are more power consuming than L1 block reads."
	if dir.L2DataRead <= dir.L1DataRead {
		t.Error("L2 data read should cost more than L1 data read")
	}
	// Barrow-Williams: router == L1 read, flit == router/4.
	if dir.Router != dir.L1DataRead {
		t.Error("router energy != L1 block read energy")
	}
	if math.Abs(dir.Flit-dir.Router/4) > 1e-12 {
		t.Error("flit energy != router/4")
	}
	// Directory has no coherence caches; DiCo protocols no dir cache.
	if dir.L1CAccess != 0 || dico.DirRead != 0 {
		t.Error("structure energies leaked across protocols")
	}
}

func TestDynamicBreakdown(t *testing.T) {
	m := DefaultEnergy()
	e := Energies(storage.DiCo, cfg(), m)
	var s stats.Set
	s.Add(EvL1TagRead, 100)
	s.Add(EvL1DataRead, 50)
	s.Add(EvL2DataRead, 10)
	s.Add(EvL1CAccess, 5)
	net := mesh.Stats{FlitLinkCrossing: 1000, RouterTraversals: 200}
	d := Dynamic(&s, net, e)

	wantL1Tag := 100 * e.L1TagRead
	if math.Abs(d.Cache[ClassL1Tag]-wantL1Tag) > 1e-9 {
		t.Errorf("L1 tag energy = %v, want %v", d.Cache[ClassL1Tag], wantL1Tag)
	}
	if d.Cache[ClassDir] != 0 {
		t.Error("DiCo charged directory-cache energy")
	}
	if d.Link != 1000*e.Flit || d.Routing != 200*e.Router {
		t.Error("network energy wrong")
	}
	total := d.Total()
	want := wantL1Tag + 50*e.L1DataRead + 10*e.L2DataRead + 5*e.L1CAccess +
		1000*e.Flit + 200*e.Router
	if math.Abs(total-want) > 1e-9 {
		t.Errorf("Total = %v, want %v", total, want)
	}
	if math.Abs(d.CacheTotal()+d.NetworkTotal()-total) > 1e-9 {
		t.Error("subtotals do not add up")
	}
}

func TestDynamicEmpty(t *testing.T) {
	var s stats.Set
	d := Dynamic(&s, mesh.Stats{}, Energies(storage.Directory, cfg(), DefaultEnergy()))
	if d.Total() != 0 {
		t.Error("empty counts produced energy")
	}
}

func BenchmarkTable6Leakage(b *testing.B) {
	m := DefaultLeakage()
	c := cfg()
	for i := 0; i < b.N; i++ {
		for _, p := range storage.All {
			m.TileLeakage(p, c)
		}
	}
}
