package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/telemetry"
)

// runFingerprint builds and runs cfg and reduces the result to its
// deterministic counters.
func runFingerprint(t *testing.T, cfg Config) (protoFingerprint, *Result) {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("shards=%d: %v", cfg.Shards, err)
	}
	return fingerprintRun(res), res
}

// TestShardedMatchesSerialAllProtocols is the tentpole acceptance
// gate: for every engine, a sharded run (any shard count, including
// one lane per tile) must be bit-identical to the serial run — same
// cycles, same events, same value in every architectural counter.
func TestShardedMatchesSerialAllProtocols(t *testing.T) {
	shardCounts := []int{1, 2, 4, 8}
	if testing.Short() {
		shardCounts = []int{2}
	}
	for _, p := range ProtocolNames {
		p := p
		t.Run(p, func(t *testing.T) {
			cfg := smallCfg(p, "apache4x16p")
			cfg.WarmupRefs = 100
			want, _ := runFingerprint(t, cfg)
			for _, n := range shardCounts {
				cfg.Shards = n
				got, _ := runFingerprint(t, cfg)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("shards=%d fingerprint diverges from serial", n)
					diffMaps(t, fmt.Sprintf("shards=%d counter", n), got.Counters, want.Counters)
					diffMaps(t, fmt.Sprintf("shards=%d net", n), got.Net, want.Net)
					diffMaps(t, fmt.Sprintf("shards=%d miss_profile", n), got.Profile, want.Profile)
					if got.Cycles != want.Cycles || got.Events != want.Events {
						t.Errorf("shards=%d: cycles/events = %d/%d, want %d/%d",
							n, got.Cycles, got.Events, want.Cycles, want.Events)
					}
				}
			}
		})
	}
}

// TestShardedMatchesSerialWithObservers repeats the gate with every
// observer armed — coherence checker, kernel/latency profiling,
// telemetry sampling, causal tracing — in all on/off combinations.
// The observers read global state (chip-wide queue depth, shadow
// memory), so they are the part most likely to see a difference
// between the executors.
func TestShardedMatchesSerialWithObservers(t *testing.T) {
	if testing.Short() {
		t.Skip("many full runs")
	}
	combos := []struct {
		name                  string
		check, profile, trace bool
		sample                bool
		census, pervm         bool
	}{
		{name: "check", check: true},
		{name: "profile", profile: true},
		{name: "sample", sample: true},
		{name: "trace", trace: true},
		{name: "census", census: true},
		{name: "pervm", pervm: true},
		{name: "all", check: true, profile: true, sample: true, trace: true, census: true, pervm: true},
	}
	for _, c := range combos {
		c := c
		t.Run(c.name, func(t *testing.T) {
			mk := func(shards int) Config {
				cfg := smallCfg("providers", "apache4x16p")
				cfg.WarmupRefs = 100
				cfg.Shards = shards
				cfg.Check = c.check
				cfg.Profile = c.profile
				cfg.Trace = c.trace
				cfg.Census = c.census
				cfg.PerVM = c.pervm
				if c.sample {
					cfg.SampleEvery = 500
				}
				return cfg
			}
			want, wres := runFingerprint(t, mk(0))
			got, gres := runFingerprint(t, mk(3))
			if !reflect.DeepEqual(got, want) {
				t.Errorf("sharded fingerprint diverges from serial")
				diffMaps(t, "counter", got.Counters, want.Counters)
				diffMaps(t, "net", got.Net, want.Net)
			}
			if c.profile {
				// The profile itself must match too: dispatch counts and
				// the queue-depth histogram (observed chip-wide in both
				// modes) are part of the deterministic surface.
				if !reflect.DeepEqual(gres.Prof.Kernel, wres.Prof.Kernel) {
					t.Errorf("kernel profile diverges:\nsharded %+v\nserial  %+v",
						gres.Prof.Kernel, wres.Prof.Kernel)
				}
				if !reflect.DeepEqual(gres.Prof.MissLatency, wres.Prof.MissLatency) {
					t.Errorf("miss-latency histogram diverges")
				}
				for i := range wres.Prof.Phases {
					g, w := gres.Prof.Phases[i], wres.Prof.Phases[i]
					if g.Cycles != w.Cycles || g.Events != w.Events || g.Refs != w.Refs {
						t.Errorf("phase %s: cycles/events/refs = %d/%d/%d, want %d/%d/%d",
							w.Name, g.Cycles, g.Events, g.Refs, w.Cycles, w.Events, w.Refs)
					}
				}
			}
			if c.sample {
				gs, ws := gres.Series, wres.Series
				if gs == nil || ws == nil {
					t.Fatalf("missing series: sharded=%v serial=%v", gs != nil, ws != nil)
				}
				if !reflect.DeepEqual(gs, ws) {
					t.Errorf("telemetry series diverges")
				}
			}
			if c.census {
				if !reflect.DeepEqual(maskCrossShard(gres.Census), maskCrossShard(wres.Census)) {
					t.Errorf("touch census diverges (CrossShard masked):\nsharded %+v\nserial  %+v",
						gres.Census, wres.Census)
				}
			}
			if c.pervm {
				requireSamePerVM(t, gres.PerVM, wres.PerVM)
			}
		})
	}
}

// maskCrossShard copies census records with the partition-dependent
// CrossShard column zeroed: the tile-granular counts, remote subset
// and estimated message cost are invariant across executors and shard
// counts; only the shard classification legitimately depends on the
// recording run's partition.
func maskCrossShard(recs []telemetry.CensusRecord) []telemetry.CensusRecord {
	out := append([]telemetry.CensusRecord(nil), recs...)
	for i := range out {
		out[i].CrossShard = 0
	}
	return out
}

// requireSamePerVM compares two per-VM attributions field by field
// (counter banks by name, so a registration-order artifact cannot hide
// a value difference).
func requireSamePerVM(t *testing.T, got, want []VMStat) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("per-VM: %d VMs vs %d", len(got), len(want))
		return
	}
	for v := range want {
		g, w := &got[v], &want[v]
		if g.VM != w.VM || g.Tiles != w.Tiles || g.Refs != w.Refs ||
			g.Flits != w.Flits || g.Routers != w.Routers {
			t.Errorf("VM %d: identity/refs/net = %d/%d/%d/%d/%d, want %d/%d/%d/%d/%d",
				w.VM, g.VM, g.Tiles, g.Refs, g.Flits, g.Routers, w.VM, w.Tiles, w.Refs, w.Flits, w.Routers)
		}
		gn, wn := g.Counters.Names(), w.Counters.Names()
		if !reflect.DeepEqual(gn, wn) {
			t.Errorf("VM %d: counter name sets differ: %v vs %v", w.VM, gn, wn)
			continue
		}
		for _, name := range wn {
			if gv, wv := g.Counters.Value(name), w.Counters.Value(name); gv != wv {
				t.Errorf("VM %d: counter %s = %d, want %d", w.VM, name, gv, wv)
			}
		}
		if !reflect.DeepEqual(g.Breakdown, w.Breakdown) {
			t.Errorf("VM %d: energy breakdown diverges", w.VM)
		}
		if g.MissLatency != w.MissLatency {
			t.Errorf("VM %d: miss-latency histogram diverges", w.VM)
		}
		if g.P50 != w.P50 || g.P99 != w.P99 || g.P999 != w.P999 {
			t.Errorf("VM %d: percentiles %d/%d/%d, want %d/%d/%d",
				w.VM, g.P50, g.P99, g.P999, w.P50, w.P99, w.P999)
		}
	}
}

// TestShardedCensusInvariant pins the telemetry invariance claims
// across shard counts 1, 2, 4 and 8 (and the serial executor) for
// every engine: the touch census is recorded tile-granular and
// classified only at export, so Count, Remote and EstCycles are
// identical; the span trace and the epoch series observe only
// simulation state, so both are deep-equal too.
func TestShardedCensusInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("many full runs")
	}
	run := func(cfg Config) (*Result, *System, error) {
		s, err := NewSystem(cfg)
		if err != nil {
			return nil, nil, err
		}
		res, err := s.Run()
		return res, s, err
	}
	for _, p := range ProtocolNames {
		p := p
		t.Run(p, func(t *testing.T) {
			cfg := smallCfg(p, "apache4x16p")
			cfg.WarmupRefs = 100
			cfg.Census = true
			cfg.Trace = true
			cfg.SampleEvery = 500
			res, sys, err := run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := maskCrossShard(res.Census)
			if len(want) == 0 {
				t.Fatalf("%s: serial census recorded no touch sites", p)
			}
			wantSpans := sys.Tracer.Spans()
			if len(wantSpans) == 0 {
				t.Fatalf("%s: serial run traced no spans", p)
			}
			wantSeries := res.Series
			if wantSeries == nil || len(wantSeries.Samples) == 0 {
				t.Fatalf("%s: serial run sampled no series", p)
			}
			for _, n := range []int{1, 2, 4, 8} {
				cfg.Shards = n
				res, sys, err := run(cfg)
				if err != nil {
					t.Fatalf("shards=%d: %v", n, err)
				}
				if got := maskCrossShard(res.Census); !reflect.DeepEqual(got, want) {
					t.Errorf("shards=%d: census diverges from serial (CrossShard masked)", n)
				}
				if got := sys.Tracer.Spans(); !reflect.DeepEqual(got, wantSpans) {
					t.Errorf("shards=%d: span trace diverges from serial (%d spans vs %d)",
						n, len(got), len(wantSpans))
				}
				if !reflect.DeepEqual(res.Series, wantSeries) {
					t.Errorf("shards=%d: epoch series diverges from serial", n)
				}
			}
		})
	}
}

// TestShardedOtherWorkloadsAndPlacement spot-checks the gate off the
// default workload: alternative placement, dedup off, a second trace.
func TestShardedOtherWorkloadsAndPlacement(t *testing.T) {
	if testing.Short() {
		t.Skip("full runs")
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"alt-placement", func(c *Config) { c.AltPlacement = true }},
		{"dedup-off", func(c *Config) { c.Dedup = false }},
		{"other-seed", func(c *Config) { c.Seed = 99 }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallCfg("arin", "apache4x16p")
			tc.mut(&cfg)
			want, _ := runFingerprint(t, cfg)
			cfg.Shards = 4
			got, _ := runFingerprint(t, cfg)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("sharded fingerprint diverges from serial")
				diffMaps(t, "counter", got.Counters, want.Counters)
			}
		})
	}
}

// TestShardedValidate pins the Shards bounds check.
func TestShardedValidate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = -1
	if err := cfg.Validate(); err == nil {
		t.Error("Shards=-1 validated")
	}
	cfg.Shards = cfg.Tiles + 1
	if err := cfg.Validate(); err == nil {
		t.Error("Shards=Tiles+1 validated")
	}
	cfg.Shards = cfg.Tiles
	if err := cfg.Validate(); err != nil {
		t.Errorf("Shards=Tiles rejected: %v", err)
	}
}
