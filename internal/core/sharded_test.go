package core

import (
	"fmt"
	"reflect"
	"testing"
)

// runFingerprint builds and runs cfg and reduces the result to its
// deterministic counters.
func runFingerprint(t *testing.T, cfg Config) (protoFingerprint, *Result) {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("shards=%d: %v", cfg.Shards, err)
	}
	return fingerprintRun(res), res
}

// TestShardedMatchesSerialAllProtocols is the tentpole acceptance
// gate: for every engine, a sharded run (any shard count, including
// one lane per tile) must be bit-identical to the serial run — same
// cycles, same events, same value in every architectural counter.
func TestShardedMatchesSerialAllProtocols(t *testing.T) {
	shardCounts := []int{1, 2, 4, 8}
	if testing.Short() {
		shardCounts = []int{2}
	}
	for _, p := range ProtocolNames {
		p := p
		t.Run(p, func(t *testing.T) {
			cfg := smallCfg(p, "apache4x16p")
			cfg.WarmupRefs = 100
			want, _ := runFingerprint(t, cfg)
			for _, n := range shardCounts {
				cfg.Shards = n
				got, _ := runFingerprint(t, cfg)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("shards=%d fingerprint diverges from serial", n)
					diffMaps(t, fmt.Sprintf("shards=%d counter", n), got.Counters, want.Counters)
					diffMaps(t, fmt.Sprintf("shards=%d net", n), got.Net, want.Net)
					diffMaps(t, fmt.Sprintf("shards=%d miss_profile", n), got.Profile, want.Profile)
					if got.Cycles != want.Cycles || got.Events != want.Events {
						t.Errorf("shards=%d: cycles/events = %d/%d, want %d/%d",
							n, got.Cycles, got.Events, want.Cycles, want.Events)
					}
				}
			}
		})
	}
}

// TestShardedMatchesSerialWithObservers repeats the gate with every
// observer armed — coherence checker, kernel/latency profiling,
// telemetry sampling, causal tracing — in all on/off combinations.
// The observers read global state (chip-wide queue depth, shadow
// memory), so they are the part most likely to see a difference
// between the executors.
func TestShardedMatchesSerialWithObservers(t *testing.T) {
	if testing.Short() {
		t.Skip("many full runs")
	}
	combos := []struct {
		name                  string
		check, profile, trace bool
		sample                bool
	}{
		{name: "check", check: true},
		{name: "profile", profile: true},
		{name: "sample", sample: true},
		{name: "trace", trace: true},
		{name: "all", check: true, profile: true, sample: true, trace: true},
	}
	for _, c := range combos {
		c := c
		t.Run(c.name, func(t *testing.T) {
			mk := func(shards int) Config {
				cfg := smallCfg("providers", "apache4x16p")
				cfg.WarmupRefs = 100
				cfg.Shards = shards
				cfg.Check = c.check
				cfg.Profile = c.profile
				cfg.Trace = c.trace
				if c.sample {
					cfg.SampleEvery = 500
				}
				return cfg
			}
			want, wres := runFingerprint(t, mk(0))
			got, gres := runFingerprint(t, mk(3))
			if !reflect.DeepEqual(got, want) {
				t.Errorf("sharded fingerprint diverges from serial")
				diffMaps(t, "counter", got.Counters, want.Counters)
				diffMaps(t, "net", got.Net, want.Net)
			}
			if c.profile {
				// The profile itself must match too: dispatch counts and
				// the queue-depth histogram (observed chip-wide in both
				// modes) are part of the deterministic surface.
				if !reflect.DeepEqual(gres.Prof.Kernel, wres.Prof.Kernel) {
					t.Errorf("kernel profile diverges:\nsharded %+v\nserial  %+v",
						gres.Prof.Kernel, wres.Prof.Kernel)
				}
				if !reflect.DeepEqual(gres.Prof.MissLatency, wres.Prof.MissLatency) {
					t.Errorf("miss-latency histogram diverges")
				}
				for i := range wres.Prof.Phases {
					g, w := gres.Prof.Phases[i], wres.Prof.Phases[i]
					if g.Cycles != w.Cycles || g.Events != w.Events || g.Refs != w.Refs {
						t.Errorf("phase %s: cycles/events/refs = %d/%d/%d, want %d/%d/%d",
							w.Name, g.Cycles, g.Events, g.Refs, w.Cycles, w.Events, w.Refs)
					}
				}
			}
			if c.sample {
				gs, ws := gres.Series, wres.Series
				if gs == nil || ws == nil {
					t.Fatalf("missing series: sharded=%v serial=%v", gs != nil, ws != nil)
				}
				if !reflect.DeepEqual(gs, ws) {
					t.Errorf("telemetry series diverges")
				}
			}
		})
	}
}

// TestShardedOtherWorkloadsAndPlacement spot-checks the gate off the
// default workload: alternative placement, dedup off, a second trace.
func TestShardedOtherWorkloadsAndPlacement(t *testing.T) {
	if testing.Short() {
		t.Skip("full runs")
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"alt-placement", func(c *Config) { c.AltPlacement = true }},
		{"dedup-off", func(c *Config) { c.Dedup = false }},
		{"other-seed", func(c *Config) { c.Seed = 99 }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallCfg("arin", "apache4x16p")
			tc.mut(&cfg)
			want, _ := runFingerprint(t, cfg)
			cfg.Shards = 4
			got, _ := runFingerprint(t, cfg)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("sharded fingerprint diverges from serial")
				diffMaps(t, "counter", got.Counters, want.Counters)
			}
		})
	}
}

// TestShardedValidate pins the Shards bounds check.
func TestShardedValidate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = -1
	if err := cfg.Validate(); err == nil {
		t.Error("Shards=-1 validated")
	}
	cfg.Shards = cfg.Tiles + 1
	if err := cfg.Validate(); err == nil {
		t.Error("Shards=Tiles+1 validated")
	}
	cfg.Shards = cfg.Tiles
	if err := cfg.Validate(); err != nil {
		t.Errorf("Shards=Tiles rejected: %v", err)
	}
}
