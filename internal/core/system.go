// Package core assembles the full chip-multiprocessor simulation: the
// tiled chip (cores, caches, coherence engine), the mesh network, the
// memory system with deduplication, the workload generators, and the
// power models — and runs consolidated-server experiments end to end.
package core

import (
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/check"
	"repro/internal/memctrl"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/topo"
	"repro/internal/workload"
)

// ProtocolNames lists the four engines in the paper's order.
var ProtocolNames = []string{"directory", "dico", "providers", "arin"}

// Config selects one simulation run.
type Config struct {
	Tiles        int
	Areas        int
	Protocol     string // directory | dico | providers | arin
	Workload     string // a workload.Names entry
	AltPlacement bool   // Figure 6's "-alt" configuration
	Dedup        bool   // memory deduplication on (paper default)
	RefsPerCore  int    // references each core retires (measured)
	WarmupRefs   int    // references per core before measurement starts
	Seed         uint64
	Proto        proto.Config
	Net          mesh.Config

	// Shards partitions the mesh into that many contiguous tile bands,
	// each owning its tiles' reference drivers and mesh deliveries on
	// its own sim.Kernel lane, coordinated by a sim.ShardedKernel
	// (conservative PDES with the mesh hop latency as lookahead; see
	// DESIGN.md §13). 0 runs the classic single kernel. Any value
	// produces bit-identical results — sharding is an execution
	// strategy, not a model change — which the crosscheck fingerprint
	// gate enforces.
	Shards int

	// Parallel runs the phases on the sharded group's parallel window
	// executor (sim.ShardedKernel.RunParallel) instead of its
	// sequential merge. Requires Shards > 0. The engines' messageized
	// handlers are shard-affine, so the executor is bit-identical to
	// the merge (and thus to a serial run) — the crosscheck fingerprint
	// gate enforces it. Runs that arm hub-resident observability
	// (Check, Profile, Trace, PerVM, SampleEvery) fall back to the
	// sequential merge transparently; Result.Executor reports which
	// executor actually ran. Census is lane-safe (diagonal-only
	// recording) and stays available.
	Parallel bool

	// Check attaches the shadow-memory coherence checker and the
	// stalled-transaction watchdog (internal/check) to the run. Off by
	// default: with Check false the kernel event stream is bit-identical
	// to a build without the checker.
	Check bool
	// Profile attaches the observability hooks: kernel dispatch
	// counts and queue-depth sampling (sim.Profile), a miss-latency
	// histogram, and per-phase wall-clock/cycle timers, collected into
	// Result.Prof. Pure observation, off by default: the kernel event
	// stream and every result counter are bit-identical with Profile
	// on or off (same discipline as Check).
	Profile bool
	// StallBound is the watchdog's max age of an in-flight miss before
	// the run is declared stalled (0 = 500k cycles). Only used with
	// Check.
	StallBound sim.Time

	// Trace arms the causal transaction tracer (internal/telemetry):
	// every L1 miss opens a span that follows the transaction through
	// the mesh. Observation-only: the event stream is bit-identical with
	// tracing on or off. TraceCap bounds retained spans
	// (0 = telemetry.DefaultSpanCap, drop-oldest past the cap).
	Trace    bool
	TraceCap int
	// SampleEvery, when > 0, arms the epoch time-series sampler: every
	// SampleEvery cycles a snapshot of all counters, link occupancy,
	// queue depths and the energy split is recorded into Result.Series.
	// The sampler schedules its own tick events but touches no protocol
	// state, so results are identical with sampling on or off.
	// SampleCap bounds retained samples (0 = telemetry.DefaultSampleCap).
	SampleEvery sim.Time
	SampleCap   int

	// Census arms the cross-shard touch census: every place a protocol
	// handler synchronously reaches into another tile's structures is
	// recorded as a (engine, handler, src-tile, dst-tile) count and
	// aggregated into Result.Census — the ranked inventory of the
	// accesses that must become scheduled messages before RunParallel
	// can drive full-system runs (ROADMAP item 1). Observation-only:
	// recording is tile-granular, so the counts are identical for any
	// shard count and any executor, and every simulation result is
	// bit-identical with the census on or off.
	Census bool
	// PerVM splits the power-event counters, the attributed mesh
	// traffic and the miss-latency histogram by consolidated VM,
	// collected into Result.PerVM. The split uses private per-VM
	// counter banks that are folded back into the global set when the
	// measured phase ends, so every global counter, and the whole event
	// stream, is bit-identical with PerVM on or off.
	PerVM bool
}

// DefaultConfig is the paper's evaluated system: 64 tiles, 4 areas,
// deduplication on, matched VM placement.
func DefaultConfig() Config {
	return Config{
		Tiles:       64,
		Areas:       4,
		Protocol:    "directory",
		Workload:    "apache4x16p",
		Dedup:       true,
		RefsPerCore: 20000,
		Seed:        1,
		Proto:       proto.DefaultConfig(),
		Net:         mesh.DefaultConfig(),
	}
}

// PhaseStat times one run phase (warmup or measure): host wall clock,
// simulated cycles, kernel events dispatched and references retired.
type PhaseStat struct {
	Name   string
	WallNS int64
	Cycles sim.Time
	Events uint64
	Refs   uint64
}

// RunProfile aggregates the optional observability data of one run
// (collected only when Config.Profile is set).
type RunProfile struct {
	// Kernel holds dispatch counts and the queue-depth histogram for
	// the whole run (warmup included).
	Kernel sim.Profile
	// MissLatency is the issue-to-retire latency histogram (cycles) of
	// references that missed in the L1.
	MissLatency sim.Hist
	// Phases times each executed phase in order.
	Phases []PhaseStat
}

// Result carries everything the evaluation figures need from one run.
type Result struct {
	Config Config
	// Executor names the event loop that drove the run: "serial"
	// (single kernel), "merge" (sharded sequential merge) or
	// "parallel" (sharded conservative windows). All three produce
	// bit-identical simulation results; the name matters only for
	// host-performance comparisons.
	Executor     string
	Cycles       sim.Time
	Refs         uint64
	Events       uint64 // kernel events dispatched by the measured phase
	Counters     *stats.Set
	Net          mesh.Stats
	Profile      proto.MissProfile
	MemReads     uint64
	DedupSavings float64

	Energies  power.TileEnergies
	Breakdown power.DynamicBreakdown

	// Prof is non-nil only when Config.Profile was set.
	Prof *RunProfile

	// Series is non-nil only when Config.SampleEvery was set: the epoch
	// time series of the run (warmup and measured phases).
	Series *telemetry.Series

	// Census is non-nil only when Config.Census was set: the ranked
	// cross-shard touch inventory of the measured phase.
	Census []telemetry.CensusRecord

	// LaneProf is non-nil only when the run executed on RunParallel:
	// the per-window lane utilization profile (events per lane per
	// window, outbox depths, barrier waits).
	LaneProf *sim.LaneProfile

	// PerVM is non-nil only when Config.PerVM was set: one entry per
	// consolidated VM, in VM order.
	PerVM []VMStat
}

// VMStat is one VM's slice of the measured phase (Config.PerVM).
type VMStat struct {
	VM    int
	Tiles int
	Refs  uint64
	// Counters is the VM's private power-event bank. Its values are
	// folded into the global Result.Counters at measure end, so summing
	// a name across banks plus any unattributed global remainder equals
	// the off-mode value exactly.
	Counters *stats.Set
	// Flits and Routers are the VM's attributed mesh activity
	// (flit-link crossings and router traversals of its unicasts;
	// broadcasts stay unattributed).
	Flits   uint64
	Routers uint64
	// Breakdown prices the bank and the attributed mesh activity with
	// the run's energy model.
	Breakdown power.DynamicBreakdown
	// MissLatency is the VM's issue-to-retire latency histogram with
	// its bucket-derived percentiles (cycles).
	MissLatency    sim.Hist
	P50, P99, P999 uint64
}

// Performance returns the work rate (references per cycle), the
// quantity Figure 9a normalizes: for the server benchmarks it is
// proportional to transactions per 500M cycles, for the scientific
// ones to the inverse of execution time.
func (r *Result) Performance() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Refs) / float64(r.Cycles)
}

// PowerPerCycle returns the dynamic energy spent per cycle (the height
// of a Figure 7 bar before normalization).
func (r *Result) PowerPerCycle() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return r.Breakdown.Total() / float64(r.Cycles)
}

// CachePowerPerCycle returns the cache share of dynamic power.
func (r *Result) CachePowerPerCycle() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return r.Breakdown.CacheTotal() / float64(r.Cycles)
}

// NetworkPowerPerCycle returns the network share of dynamic power.
func (r *Result) NetworkPowerPerCycle() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return r.Breakdown.NetworkTotal() / float64(r.Cycles)
}

// L2MissRatio approximates the L2 miss rate as the fraction of L1
// misses that had to go to memory.
func (r *Result) L2MissRatio() float64 {
	m := r.Profile.TotalMisses()
	if m == 0 {
		return 0
	}
	return float64(r.MemReads) / float64(m)
}

// storageProtocol maps an engine name to the analytic model's enum.
func storageProtocol(name string) (storage.Protocol, error) {
	switch name {
	case "directory":
		return storage.Directory, nil
	case "dico":
		return storage.DiCo, nil
	case "providers":
		return storage.DiCoProviders, nil
	case "arin":
		return storage.DiCoArin, nil
	}
	return 0, fmt.Errorf("core: unknown protocol %q", name)
}

// newEngine instantiates the coherence engine.
func newEngine(name string, ctx *proto.Context) (proto.Engine, error) {
	switch name {
	case "directory":
		return proto.NewDirectory(ctx), nil
	case "dico":
		return proto.NewDiCo(ctx), nil
	case "providers":
		return proto.NewProviders(ctx), nil
	case "arin":
		return proto.NewArin(ctx), nil
	}
	return nil, fmt.Errorf("core: unknown protocol %q", name)
}

// runner abstracts the executor driving a run: the single kernel, or
// the sharded group's deterministic merge. Both dispatch the exact
// same event order, so everything above this interface is
// executor-agnostic.
type runner interface {
	Run(limit sim.Time) uint64
	RunUntil(cond func() bool) uint64
	Pending() int
	Now() sim.Time
	EventsRun() uint64
}

// System is a fully built chip ready to run.
type System struct {
	Cfg       Config
	Kernel    *sim.Kernel
	Net       *mesh.Network
	Areas     *topo.Areas
	Placement *topo.Placement
	Mem       *memctrl.Controllers
	Mapper    *memctrl.Mapper
	Gen       *workload.Generator
	Engine    proto.Engine
	Ctx       *proto.Context

	// Shadow and Dog are non-nil only when Cfg.Check is set.
	Shadow *check.Shadow
	Dog    *sim.Watchdog

	// Tracer is non-nil only when Cfg.Trace is set; Sampler only when
	// Cfg.SampleEvery > 0.
	Tracer  *telemetry.Tracer
	Sampler *telemetry.Sampler

	// SK is non-nil only when Cfg.Shards > 0: the sharded executor.
	// Kernel is then its hub lane (lane 0), which hosts the chip-global
	// machinery (watchdog, sampler, tracer) and the run's primary
	// random stream.
	SK      *sim.ShardedKernel
	shardOf []int // tile -> shard (Cfg.Shards > 0 only)

	// run drives the event loop: Kernel when serial, SK when sharded.
	run runner

	// parallel is true when the phases execute on RunParallel: the
	// config asked for it, the run is sharded, and no hub-resident
	// observability is armed (see Config.Parallel). Drivers consult it
	// to keep phase bookkeeping per-tile — concurrent lanes must not
	// share counters.
	parallel bool
	// laneProf collects per-window lane utilization (parallel only).
	laneProf *sim.LaneProfile

	// prof is non-nil only when Cfg.Profile is set.
	prof *RunProfile

	// vmOf and vmHist are non-nil only when Cfg.PerVM is set: the
	// tile-to-VM map and the per-VM miss-latency histograms.
	vmOf   []int
	vmHist []sim.Hist

	retired   []int
	refsTotal uint64

	// Per-tile reference drivers. Each holds the tile's in-flight
	// access and three persistent continuation closures, so driving a
	// reference through issue → retire → next allocates nothing (the
	// old per-reference closures were ~80% of all simulation-phase
	// heap objects).
	drivers []tileDriver

	// Phase-loop state shared by the drivers (reset by runPhase).
	phaseRefs       int
	phaseDone       int
	phaseTotal      uint64
	phaseLastRetire sim.Time
}

// tileDriver issues one core's references back to back, Gap cycles
// apart, reusing itself as the completion continuation. Its events
// live on k — the tile's shard lane when sharded, the single kernel
// otherwise — so driver work is owned by the tile's shard.
type tileDriver struct {
	s      *System
	k      *sim.Kernel
	tile   topo.Tile
	addr   cache.Addr
	write  bool
	issued sim.Time // issue timestamp (profiled runs only)
	// lastRetire is this tile's most recent retirement time. Parallel
	// phases derive the phase-global last-retire as the max over tiles
	// after the queues drain, because concurrent lanes cannot share
	// the serial path's phaseLastRetire cell.
	lastRetire sim.Time

	stepC  func() // allocated once; schedule the next reference
	issueC func() // allocated once; issue the stored access
	doneC  func() // allocated once; retire the stored access
}

// assertShard is the driver-level ownership assert of a sharded run:
// the dispatching lane must be the tile's shard. It guards the two
// driver events (step and issue). Under the sequential merge the
// coordinator's ActiveShard names the dispatching lane; inside a
// RunParallel window events run on the lane they were scheduled on by
// construction, so the assert degrades to checking the lane kernel is
// actually mid-window.
func (d *tileDriver) assertShard() {
	s := d.s
	if s.SK == nil {
		return
	}
	got, want := s.SK.ActiveShard(), s.shardOf[d.tile]
	if got >= 0 && got != want {
		panic(fmt.Sprintf("core: tile %d driver event dispatched on shard %d, owner is %d",
			d.tile, got, want))
	}
	if got < 0 && !d.k.Deferring() {
		panic(fmt.Sprintf("core: tile %d driver event dispatched outside merge and parallel window",
			d.tile))
	}
}

// stepWake and issueWake are the event entry points (the targets of
// stepC/issueC): they dispatch on the tile's lane, so they carry the
// ownership assert. step/issue themselves stay assert-free because
// they are also reached inline from done(), which rides hub-lane
// engine events.
func (d *tileDriver) stepWake() {
	d.assertShard()
	d.step()
}

func (d *tileDriver) issueWake() {
	d.assertShard()
	d.issue()
}

func (d *tileDriver) step() {
	s := d.s
	if s.retired[d.tile] >= s.phaseRefs {
		// phaseDone is serial-only bookkeeping; parallel phases derive
		// completion from retired[] between windows.
		if !s.parallel {
			s.phaseDone++
		}
		return
	}
	acc := s.Gen.Next(d.tile)
	d.addr, d.write = acc.Addr, acc.Write
	if acc.Gap > 0 {
		d.k.After(acc.Gap, d.issueC)
	} else {
		d.issue()
	}
}

func (d *tileDriver) issue() {
	s := d.s
	if s.prof != nil || s.vmHist != nil {
		// Profiled variant: time issue-to-retire and histogram
		// everything slower than an L1 hit. Reading the clock never
		// schedules, so the event stream is unchanged.
		d.issued = d.k.Now()
	}
	s.Engine.Access(d.tile, d.addr, d.write, d.doneC)
}

func (d *tileDriver) done() {
	s := d.s
	if s.prof != nil || s.vmHist != nil {
		if lat := d.k.Now() - d.issued; lat > s.Cfg.Proto.L1HitLatency {
			if s.prof != nil {
				s.prof.MissLatency.Observe(uint64(lat))
			}
			if s.vmHist != nil {
				s.vmHist[s.vmOf[d.tile]].Observe(uint64(lat))
			}
		}
	}
	s.retired[d.tile]++
	d.lastRetire = d.k.Now()
	if !s.parallel {
		// Shared phase counters stay serial-only: under RunParallel
		// every lane retires concurrently, so the phase totals are
		// derived from the per-tile state at window boundaries instead.
		s.phaseTotal++
		s.refsTotal++
		s.phaseLastRetire = d.lastRetire
	}
	d.step()
}

// NewSystem builds a chip from cfg.
func NewSystem(cfg Config) (*System, error) {
	w, err := workload.Named(cfg.Workload)
	if err != nil {
		return nil, err
	}
	// The sharded executor's hub lane is constructed exactly like the
	// single kernel (same seed, same Fork order below), so every random
	// stream the model draws is identical in both modes.
	var sk *sim.ShardedKernel
	var kernel *sim.Kernel
	if cfg.Shards > 0 {
		sk = sim.NewSharded(cfg.Seed, cfg.Shards, cfg.Net.HopLatency())
		kernel = sk.Hub()
	} else {
		kernel = sim.NewKernel(cfg.Seed)
	}
	grid := topo.SquareGrid(cfg.Tiles)
	areas, err := topo.NewAreas(grid, cfg.Areas)
	if err != nil {
		return nil, err
	}
	// VMs are placed independently of the hard-wired coherence areas:
	// the paper always runs 4 VMs while Table VII sweeps the area
	// count. With the default 4 areas the two divisions coincide and
	// the matched placement puts one VM per area.
	vmAreas, err := topo.NewAreas(grid, len(w.VMs))
	if err != nil {
		return nil, err
	}
	placement := topo.MatchedPlacement(vmAreas)
	if cfg.AltPlacement {
		placement = topo.AlternativePlacement(vmAreas)
	}
	net := mesh.New(kernel, grid, cfg.Net)
	var shardOf []int
	var laneKernels []*sim.Kernel
	if sk != nil {
		shardOf = topo.Partition(grid, cfg.Shards)
		laneKernels = make([]*sim.Kernel, cfg.Shards)
		for i := range laneKernels {
			laneKernels[i] = sk.Shard(i)
		}
		net.SetSharding(laneKernels, shardOf)
	}
	mem := memctrl.Default(grid, kernel.Rand().Fork())
	mapper := memctrl.NewMapper(cfg.Dedup)
	gen := workload.NewGenerator(w, placement, mapper, kernel.Rand().Fork())
	// Every executor shares one timing model: copy-on-write breaks
	// become visible to readers one mesh hop later, which is the
	// parallel executor's lookahead — within it no lane can observe
	// another lane's same-window break anyway. Lane bindings follow:
	// serial runs are a single lane on the only kernel.
	mapper.SetCoWDelay(cfg.Net.HopLatency())
	if sk != nil {
		gen.SetLanes(shardOf, laneKernels)
	} else {
		gen.SetLanes(make([]int, grid.Tiles()), []*sim.Kernel{kernel})
	}
	ctx := &proto.Context{Kernel: kernel, Net: net, Areas: areas, Mem: mem, Cfg: cfg.Proto}
	if sk != nil {
		ctx.SetLanes(shardOf, laneKernels)
	}
	// Census and per-VM attribution must be armed before the engine is
	// built: the engines register their touch sites and resolve their
	// power handles at construction.
	if cfg.Census {
		ctx.Census = telemetry.NewCensus(cfg.Tiles)
	}
	var vmOf []int
	if cfg.PerVM {
		vmOf = make([]int, cfg.Tiles)
		for t := range vmOf {
			vmOf[t] = placement.VMOf(topo.Tile(t))
		}
		ctx.EnablePerVM(vmOf, placement.NumVMs)
	}
	eng, err := newEngine(cfg.Protocol, ctx)
	if err != nil {
		return nil, err
	}
	var prof *RunProfile
	if cfg.Profile {
		prof = &RunProfile{}
		if sk != nil {
			sk.SetProfile(&prof.Kernel)
		} else {
			kernel.SetProfile(&prof.Kernel)
		}
	}
	var sh *check.Shadow
	var dog *sim.Watchdog
	if cfg.Check {
		sh = check.NewShadow(eng, kernel)
		ctx.Observer = sh
		bound := cfg.StallBound
		if bound == 0 {
			bound = 500_000
		}
		dog = sim.NewWatchdog(kernel, bound/4, proto.StallProbe(eng, kernel, bound))
	}
	s := &System{
		Cfg:       cfg,
		Kernel:    kernel,
		Net:       net,
		Areas:     areas,
		Placement: placement,
		Mem:       mem,
		Mapper:    mapper,
		Gen:       gen,
		Engine:    eng,
		Ctx:       ctx,
		Shadow:    sh,
		Dog:       dog,
		SK:        sk,
		shardOf:   shardOf,
		prof:      prof,
		vmOf:      vmOf,
		retired:   make([]int, cfg.Tiles),
	}
	if cfg.PerVM {
		s.vmHist = make([]sim.Hist, placement.NumVMs)
	}
	if sk != nil {
		s.run = sk
	} else {
		s.run = kernel
	}
	// RunParallel eligibility: asked for, sharded, and no hub-resident
	// observability. Check, Profile, Trace, PerVM and the sampler all
	// run chip-global hooks on the hub lane (shared counters, span
	// tables, tick chains), so they force the sequential merge; the
	// census records diagonal-only and stays lane-safe.
	s.parallel = cfg.Parallel && sk != nil && !cfg.Check && !cfg.Profile &&
		!cfg.Trace && !cfg.PerVM && cfg.SampleEvery == 0
	if s.parallel {
		s.laneProf = &sim.LaneProfile{}
		sk.SetLaneProfile(s.laneProf)
	}
	if cfg.Trace {
		s.Tracer = telemetry.NewTracer(kernel, cfg.Protocol, cfg.Tiles, cfg.TraceCap)
		ctx.Spans = s.Tracer
		net.SetObserver(s.Tracer)
	}
	if cfg.SampleEvery > 0 {
		sp, err := storageProtocol(cfg.Protocol)
		if err != nil {
			return nil, err
		}
		energies := power.Energies(sp, storage.DefaultConfig(cfg.Tiles, cfg.Areas), power.DefaultEnergy())
		s.Sampler = telemetry.NewSampler(kernel, cfg.SampleEvery, cfg.SampleCap,
			eng.Stats(), net, energies,
			func() uint64 { return s.refsTotal }, s.pendingMisses)
		if cfg.PerVM {
			// Mid-run counter reads must fold the per-VM banks back in to
			// stay bit-identical to an unattributed run.
			s.Sampler.SetBanks(s.Ctx.PerVMBanks(), s.Ctx.PerVMNet)
		}
	}
	return s, nil
}

// pendingMisses counts the chip-wide outstanding MSHR entries (the
// sampler's queue-depth signal).
func (s *System) pendingMisses() int {
	n := 0
	s.Engine.ForEachPending(func(topo.Tile, *cache.MSHREntry) { n++ })
	return n
}

// Executor names the event loop driving this system's phases (see
// Result.Executor).
func (s *System) Executor() string {
	switch {
	case s.parallel:
		return "parallel"
	case s.SK != nil:
		return "merge"
	default:
		return "serial"
	}
}

// seedPhase resets the per-phase state, builds the drivers on first
// use, and schedules every tile's first step event on its lane.
func (s *System) seedPhase(refs int) {
	cfg := s.Cfg
	for t := range s.retired {
		s.retired[t] = 0
	}
	s.phaseRefs = refs
	s.phaseDone = 0
	s.phaseTotal = 0
	s.phaseLastRetire = 0
	if s.drivers == nil {
		s.drivers = make([]tileDriver, cfg.Tiles)
		for t := range s.drivers {
			d := &s.drivers[t]
			d.s = s
			d.k = s.Kernel
			if s.SK != nil {
				d.k = s.SK.Shard(s.shardOf[t])
			}
			d.tile = topo.Tile(t)
			d.stepC = d.stepWake
			d.issueC = d.issueWake
			d.doneC = d.done
		}
	}
	for t := 0; t < cfg.Tiles; t++ {
		s.drivers[t].lastRetire = 0
		s.drivers[t].k.After(sim.Time(t%7), s.drivers[t].stepC)
	}
}

// runPhase drives every core through refs references, starting each
// reference Gap cycles after the previous one retires. It returns the
// simulation time of the last retirement.
func (s *System) runPhase(refs int) (sim.Time, uint64, error) {
	if s.parallel {
		return s.runPhaseParallel(refs)
	}
	cfg := s.Cfg
	s.seedPhase(refs)
	// Watchdog: if no reference retires for a long stretch, the
	// protocol has livelocked — fail loudly instead of spinning. With
	// Check set, the per-transaction watchdog additionally pinpoints the
	// stalled block and dumps its global state.
	if s.Dog != nil {
		s.Dog.Arm()
	}
	// The sampler's tick chain stops itself when the queue drains at
	// phase end; re-arm it for this phase.
	if s.Sampler != nil {
		s.Sampler.Start()
	}
	const watchdogWindow sim.Time = 2_000_000
	lastProgress := uint64(0)
	for s.phaseDone < cfg.Tiles {
		deadline := s.run.Now() + watchdogWindow
		s.run.RunUntil(func() bool {
			return s.phaseDone == cfg.Tiles || s.run.Now() >= deadline ||
				(s.Dog != nil && s.Dog.Err() != nil)
		})
		if s.Dog != nil && s.Dog.Err() != nil {
			return 0, 0, s.Dog.Err()
		}
		if s.phaseDone == cfg.Tiles {
			break
		}
		if s.run.Pending() == 0 || s.phaseTotal == lastProgress {
			return 0, 0, fmt.Errorf("core: simulation stalled at t=%d with %d/%d cores done (%d refs retired)",
				s.run.Now(), s.phaseDone, cfg.Tiles, s.phaseTotal)
		}
		lastProgress = s.phaseTotal
	}
	if s.Dog != nil {
		s.Dog.Disarm()
	}
	// Drain residual traffic (writebacks, acks) so counters are final.
	s.run.Run(0)
	// Fencepost sample: the phase's final state, so warmup-vs-steady
	// curves always include the phase boundary.
	if s.Sampler != nil {
		s.Sampler.Snapshot()
	}
	return s.phaseLastRetire, s.phaseTotal, nil
}

// runPhaseParallel is runPhase on the conservative window executor.
// The phase loop runs RunParallel in watchdog-window chunks and reads
// only per-tile state between chunks (retired counts, per-driver
// retire times): the lanes retire concurrently, so there is no shared
// phase counter to consult. Lane counter views are armed for the
// duration and folded back before anything reads the root set.
func (s *System) runPhaseParallel(refs int) (sim.Time, uint64, error) {
	cfg := s.Cfg
	s.seedPhase(refs)
	s.Ctx.ArmLanes()
	defer s.Ctx.FoldLanes()
	const watchdogWindow sim.Time = 2_000_000
	lastProgress := uint64(0)
	target := uint64(refs) * uint64(cfg.Tiles)
	for {
		s.SK.RunParallel(s.SK.Now() + watchdogWindow)
		if s.SK.Pending() == 0 {
			break
		}
		total := uint64(0)
		for t := range s.retired {
			total += uint64(s.retired[t])
		}
		if total == lastProgress {
			return 0, 0, fmt.Errorf("core: parallel run stalled at t=%d with %d/%d refs retired",
				s.SK.Now(), total, target)
		}
		lastProgress = total
	}
	var lastRetire sim.Time
	total := uint64(0)
	for t := range s.drivers {
		if lr := s.drivers[t].lastRetire; lr > lastRetire {
			lastRetire = lr
		}
		total += uint64(s.retired[t])
	}
	if total != target {
		return 0, 0, fmt.Errorf("core: parallel run drained with %d/%d refs retired", total, target)
	}
	s.phaseTotal = total
	s.phaseLastRetire = lastRetire
	s.refsTotal += total
	return lastRetire, total, nil
}

// timedPhase wraps runPhase with the optional per-phase timers.
func (s *System) timedPhase(name string, refs int) (sim.Time, uint64, error) {
	if s.prof == nil {
		return s.runPhase(refs)
	}
	wall := time.Now()
	cycles0, events0 := s.run.Now(), s.run.EventsRun()
	lastRetire, totalRefs, err := s.runPhase(refs)
	s.prof.Phases = append(s.prof.Phases, PhaseStat{
		Name:   name,
		WallNS: time.Since(wall).Nanoseconds(),
		Cycles: s.run.Now() - cycles0,
		Events: s.run.EventsRun() - events0,
		Refs:   totalRefs,
	})
	return lastRetire, totalRefs, err
}

// RunWarmup executes the optional warmup phase and discards its
// activity from every counter, leaving the system at the quiescent
// warmup/measure boundary: the kernel queue is drained, no misses are
// in flight, and all transient protocol state is gone. This is the
// point where internal/snapshot captures the system so one warmup can
// fork into many measure phases.
func (s *System) RunWarmup() error {
	cfg := s.Cfg
	if cfg.WarmupRefs == 0 {
		return nil
	}
	if s.Sampler != nil {
		s.Sampler.SetPhase("warmup")
	}
	if _, _, err := s.timedPhase("warmup", cfg.WarmupRefs); err != nil {
		return err
	}
	s.Engine.Stats().Reset()
	s.Ctx.Profile = proto.MissProfile{}
	s.Net.ResetStats()
	s.Mem.Reads, s.Mem.Writes = 0, 0
	if s.Ctx.Census != nil {
		s.Ctx.Census.Reset()
	}
	s.Ctx.ResetPerVM()
	for i := range s.vmHist {
		s.vmHist[i] = sim.Hist{}
	}
	return nil
}

// RunMeasure executes the measured phase from the current (post-warmup
// or restored) state and returns the collected result.
func (s *System) RunMeasure() (*Result, error) {
	cfg := s.Cfg
	start := s.run.Now()
	events0 := s.run.EventsRun()
	if s.Sampler != nil {
		s.Sampler.SetPhase("measure")
	}
	lastRetire, totalRefs, err := s.timedPhase("measure", cfg.RefsPerCore)
	if err != nil {
		return nil, err
	}
	lastRetire -= start
	if cfg.Check {
		if err := s.Shadow.Err(); err != nil {
			return nil, err
		}
		s.Engine.CheckInvariants()
	}

	sp, err := storageProtocol(cfg.Protocol)
	if err != nil {
		return nil, err
	}
	// Fold the per-VM banks into the global counters before anything
	// reads them: Result.Counters and the energy breakdown below then
	// hold exactly the off-mode values. The banks keep the split.
	s.Ctx.FoldPerVM()

	energies := power.Energies(sp, storage.DefaultConfig(cfg.Tiles, cfg.Areas), power.DefaultEnergy())
	res := &Result{
		Config:       cfg,
		Executor:     s.Executor(),
		Cycles:       lastRetire,
		Refs:         totalRefs,
		Events:       s.run.EventsRun() - events0,
		Counters:     s.Engine.Stats(),
		Net:          s.Net.Stats(),
		Profile:      s.Engine.MissProfile(),
		MemReads:     s.Mem.Reads,
		DedupSavings: s.Mapper.SavedFraction(),
		Energies:     energies,
		Prof:         s.prof,
	}
	if s.Sampler != nil {
		res.Series = s.Sampler.Series()
	}
	res.LaneProf = s.laneProf
	res.Breakdown = power.Dynamic(res.Counters, res.Net, energies)
	if s.Ctx.Census != nil {
		res.Census = s.CensusRecords()
	}
	if banks := s.Ctx.PerVMBanks(); banks != nil {
		res.PerVM = make([]VMStat, len(banks))
		for v := range banks {
			flits, routers := s.Ctx.PerVMNet(v)
			vs := &res.PerVM[v]
			vs.VM = v
			vs.Counters = banks[v]
			vs.Flits, vs.Routers = flits, routers
			// Price the VM's bank plus its attributed mesh traffic with
			// the same model that prices the global breakdown.
			vs.Breakdown = power.Dynamic(banks[v],
				mesh.Stats{FlitLinkCrossing: flits, RouterTraversals: routers}, energies)
			vs.MissLatency = s.vmHist[v]
			vs.P50 = vs.MissLatency.Percentile(0.50)
			vs.P99 = vs.MissLatency.Percentile(0.99)
			vs.P999 = vs.MissLatency.Percentile(0.999)
		}
		for t, n := range s.retired {
			vs := &res.PerVM[s.vmOf[t]]
			vs.Refs += uint64(n)
			vs.Tiles++
		}
	}
	return res, nil
}

// CensusRecords exports the armed census as ranked records, classified
// against this run's shard partition (serial runs have a single band,
// so their cross-shard column is zero) and priced with the mesh hop
// latency. Nil when Cfg.Census is off.
func (s *System) CensusRecords() []telemetry.CensusRecord {
	if s.Ctx.Census == nil {
		return nil
	}
	grid := s.Net.Grid()
	return s.Ctx.Census.Records(s.shardOf, func(src, dst int) int {
		return grid.Hops(topo.Tile(src), topo.Tile(dst))
	}, int(s.Cfg.Net.HopLatency()))
}

// Run executes the optional warmup phase followed by the measured
// phase, and returns the collected result.
func (s *System) Run() (*Result, error) {
	if err := s.RunWarmup(); err != nil {
		return nil, err
	}
	return s.RunMeasure()
}

// RefsRetired returns the cumulative reference count across phases
// (the value the telemetry sampler reads).
func (s *System) RefsRetired() uint64 { return s.refsTotal }

// SetRefsRetired overwrites the cumulative reference count; snapshot
// restore uses it so a forked system's telemetry continues seamlessly.
func (s *System) SetRefsRetired(n uint64) { s.refsTotal = n }

// Run validates cfg, then builds and runs a system in one call.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// CheckInvariants re-exports the engine's quiescent checker.
func (s *System) CheckInvariants() { s.Engine.CheckInvariants() }

// KernelState captures the executor's quiescent scheduler state
// (clock, sequence, tag, event count, rand), dispatching to whichever
// executor drives this system. Snapshots taken in one mode restore
// into the other: the state is executor-agnostic.
func (s *System) KernelState() (sim.KernelState, error) {
	if s.SK != nil {
		return s.SK.State()
	}
	return s.Kernel.State()
}

// RestoreKernelState is the inverse of KernelState.
func (s *System) RestoreKernelState(st sim.KernelState) error {
	if s.SK != nil {
		return s.SK.RestoreState(st)
	}
	return s.Kernel.RestoreState(st)
}
