package core

import (
	"testing"

	"repro/internal/power"
)

func smallCfg(protocol, wl string) Config {
	cfg := DefaultConfig()
	cfg.Protocol = protocol
	cfg.Workload = wl
	cfg.RefsPerCore = 300
	return cfg
}

func TestRunAllProtocolsSmoke(t *testing.T) {
	for _, p := range ProtocolNames {
		p := p
		t.Run(p, func(t *testing.T) {
			s, err := NewSystem(smallCfg(p, "apache4x16p"))
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			s.CheckInvariants()
			if res.Refs != 64*300 {
				t.Errorf("retired %d refs, want %d", res.Refs, 64*300)
			}
			if res.Cycles == 0 {
				t.Error("zero cycles")
			}
			if res.Profile.TotalMisses() == 0 {
				t.Error("no misses recorded")
			}
			if res.Breakdown.Total() <= 0 {
				t.Error("no dynamic energy accounted")
			}
			if res.Counters.Value(power.EvL1TagRead) == 0 {
				t.Error("no L1 tag activity")
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(smallCfg("providers", "lu4x16p"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallCfg("providers", "lu4x16p"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Refs != b.Refs {
		t.Errorf("same seed diverged: %d/%d vs %d/%d cycles/refs", a.Cycles, a.Refs, b.Cycles, b.Refs)
	}
	if a.Net.FlitLinkCrossing != b.Net.FlitLinkCrossing {
		t.Error("network traffic diverged across identical runs")
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	cfg := smallCfg("dico", "radix4x16p")
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles == b.Cycles && a.Net.FlitLinkCrossing == b.Net.FlitLinkCrossing {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestAltPlacementRuns(t *testing.T) {
	cfg := smallCfg("arin", "apache4x16p")
	cfg.AltPlacement = true
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Placement.SpansAreas(s.Areas, 0) {
		t.Fatal("alt placement does not span areas")
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.CheckInvariants()
}

func TestDedupOffRuns(t *testing.T) {
	cfg := smallCfg("providers", "apache4x16p")
	cfg.Dedup = false
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DedupSavings != 0 {
		t.Errorf("dedup off but savings %.3f", res.DedupSavings)
	}
}

func TestBadConfigs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Protocol = "mosi"
	if _, err := NewSystem(cfg); err == nil {
		t.Error("unknown protocol accepted")
	}
	cfg = DefaultConfig()
	cfg.Workload = "quake"
	if _, err := NewSystem(cfg); err == nil {
		t.Error("unknown workload accepted")
	}
	cfg = DefaultConfig()
	cfg.Areas = 3
	if _, err := NewSystem(cfg); err == nil {
		t.Error("non-dividing area count accepted")
	}
}

func TestPerformanceAndPowerAccessors(t *testing.T) {
	res, err := Run(smallCfg("directory", "tomcatv4x16p"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Performance() <= 0 {
		t.Error("non-positive performance")
	}
	if res.PowerPerCycle() <= 0 {
		t.Error("non-positive power")
	}
	if diff := res.CachePowerPerCycle() + res.NetworkPowerPerCycle() - res.PowerPerCycle(); diff > 1e-9 || diff < -1e-9 {
		t.Error("power shares do not sum")
	}
	if res.L2MissRatio() < 0 || res.L2MissRatio() > 1 {
		t.Errorf("L2MissRatio = %v out of range", res.L2MissRatio())
	}
}

// TestPredictionWorks: the DiCo-family engines must resolve a healthy
// share of misses through prediction on a workload with reuse.
func TestPredictionWorks(t *testing.T) {
	for _, p := range []string{"dico", "providers", "arin"} {
		cfg := smallCfg(p, "apache4x16p")
		cfg.WarmupRefs = 4000
		cfg.RefsPerCore = 1500
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pr := res.Profile
		predicted := pr.Count[0] + pr.Count[1] + pr.Count[2] // pred-owner/provider/fail
		if predicted == 0 {
			t.Errorf("%s: no predicted misses at all", p)
		}
	}
}

// TestNoPredictionAblation: with the L1C$ disabled, the DiCo engines
// must record zero predicted misses but still run correctly.
func TestNoPredictionAblation(t *testing.T) {
	cfg := smallCfg("dico", "apache4x16p")
	cfg.WarmupRefs = 3000
	cfg.RefsPerCore = 1500
	cfg.Proto.NoPrediction = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pr := res.Profile
	// Owner-local write upgrades are classified pred-owner with zero
	// links; true L1C$ predictions would show pred-fail events and
	// links on the pred classes.
	if pr.Count[2] != 0 {
		t.Errorf("prediction disabled but %d mispredictions recorded", pr.Count[2])
	}
	if pr.Links[0]+pr.Links[1] != 0 {
		t.Errorf("prediction disabled but predicted misses traversed links")
	}
	if pr.TotalMisses() == 0 {
		t.Error("no misses at all")
	}
}
