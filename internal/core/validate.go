package core

import (
	"fmt"
	"strings"

	"repro/internal/topo"
	"repro/internal/workload"
)

// Validate checks cfg for the configuration errors that would
// otherwise surface deep inside system construction (or not at all),
// and returns actionable messages naming the valid choices. core.Run
// calls it before building anything; commands can call it early to
// reject bad flags with a usable message.
func (c Config) Validate() error {
	valid := false
	for _, p := range ProtocolNames {
		if c.Protocol == p {
			valid = true
			break
		}
	}
	if !valid {
		return fmt.Errorf("core: unknown protocol %q (valid: %s)",
			c.Protocol, strings.Join(ProtocolNames, ", "))
	}
	w, err := workload.Named(c.Workload)
	if err != nil {
		return fmt.Errorf("core: unknown workload %q (valid: %s)",
			c.Workload, strings.Join(workload.Names, ", "))
	}
	if c.Tiles <= 0 {
		return fmt.Errorf("core: Tiles = %d must be positive", c.Tiles)
	}
	if r := intSqrt(c.Tiles); r*r != c.Tiles {
		return fmt.Errorf("core: Tiles = %d is not a square; the chip is an RxR mesh (valid: 4, 16, 64, 256, ...)", c.Tiles)
	}
	if c.Areas <= 0 {
		return fmt.Errorf("core: Areas = %d must be positive", c.Areas)
	}
	if c.Tiles%c.Areas != 0 {
		return fmt.Errorf("core: Areas = %d does not divide Tiles = %d evenly (valid for %d tiles: %s)",
			c.Areas, c.Tiles, c.Tiles, divisorList(c.Tiles))
	}
	// Re-run the exact area constructions NewSystem performs, so a
	// config that validates is guaranteed to build: the hard-wired
	// coherence areas and the per-VM placement areas must both tile
	// the mesh in rectangles.
	grid := topo.SquareGrid(c.Tiles)
	if _, err := topo.NewAreas(grid, c.Areas); err != nil {
		return fmt.Errorf("core: Areas = %d cannot tile the %dx%d mesh: %w", c.Areas, grid.Cols, grid.Rows, err)
	}
	if _, err := topo.NewAreas(grid, len(w.VMs)); err != nil {
		return fmt.Errorf("core: workload %q runs %d VMs, which cannot be placed on %d tiles: %w",
			c.Workload, len(w.VMs), c.Tiles, err)
	}
	if c.Shards < 0 || c.Shards > c.Tiles {
		return fmt.Errorf("core: Shards = %d must be in [0, Tiles=%d] (0 = single kernel)", c.Shards, c.Tiles)
	}
	if c.Parallel && c.Shards <= 0 {
		return fmt.Errorf("core: Parallel requires Shards > 0 (the window executor runs the sharded lanes concurrently)")
	}
	if c.RefsPerCore <= 0 {
		return fmt.Errorf("core: RefsPerCore = %d must be positive", c.RefsPerCore)
	}
	if c.WarmupRefs < 0 {
		return fmt.Errorf("core: WarmupRefs = %d must not be negative", c.WarmupRefs)
	}
	if c.TraceCap < 0 {
		return fmt.Errorf("core: TraceCap = %d must not be negative (0 = default cap)", c.TraceCap)
	}
	if c.SampleEvery < 0 {
		return fmt.Errorf("core: SampleEvery = %d must not be negative (0 = sampling off)", c.SampleEvery)
	}
	if c.SampleCap < 0 {
		return fmt.Errorf("core: SampleCap = %d must not be negative (0 = default cap)", c.SampleCap)
	}
	return nil
}

// intSqrt returns the integer square root of n.
func intSqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// divisorList renders the divisors of n for error messages.
func divisorList(n int) string {
	var out []string
	for d := 1; d <= n; d++ {
		if n%d == 0 {
			out = append(out, fmt.Sprint(d))
		}
	}
	return strings.Join(out, ", ")
}
