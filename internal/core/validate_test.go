package core

import (
	"strings"
	"testing"
)

// TestValidateCatchesBadConfigs drives every Validate check and
// requires each error to name the offending value and the valid
// choices — the errors are user-facing via cmd/cmpsim.
func TestValidateCatchesBadConfigs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   []string // substrings the error must contain
	}{
		{"unknown protocol", func(c *Config) { c.Protocol = "mesi" },
			[]string{`"mesi"`, "directory", "dico", "providers", "arin"}},
		{"unknown workload", func(c *Config) { c.Workload = "nginx" },
			[]string{`"nginx"`, "apache4x16p", "mixed-sci"}},
		{"non-square tiles", func(c *Config) { c.Tiles = 32 },
			[]string{"32", "square"}},
		{"negative tiles", func(c *Config) { c.Tiles = -4 },
			[]string{"positive"}},
		{"areas do not divide", func(c *Config) { c.Areas = 3 },
			[]string{"3", "64", "divide"}},
		{"zero areas", func(c *Config) { c.Areas = 0 },
			[]string{"positive"}},
		{"zero refs", func(c *Config) { c.RefsPerCore = 0 },
			[]string{"RefsPerCore"}},
		{"negative warmup", func(c *Config) { c.WarmupRefs = -1 },
			[]string{"WarmupRefs"}},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, cfg)
			continue
		}
		for _, want := range tc.want {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: error %q does not mention %q", tc.name, err, want)
			}
		}
	}
}

// TestValidateAcceptsDefaults checks the paper configurations pass.
func TestValidateAcceptsDefaults(t *testing.T) {
	for _, p := range ProtocolNames {
		cfg := DefaultConfig()
		cfg.Protocol = p
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: default config rejected: %v", p, err)
		}
	}
	cfg := DefaultConfig()
	cfg.Tiles, cfg.Areas = 16, 4
	if err := cfg.Validate(); err != nil {
		t.Errorf("16-tile config rejected: %v", err)
	}
}

// TestRunValidates requires core.Run to fail fast on a bad config
// instead of dying inside construction.
func TestRunValidates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Protocol = "token"
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "valid:") {
		t.Errorf("Run did not surface the validation error, got: %v", err)
	}
}
