package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// protoFingerprint is the bit-exact signature of one protocol run:
// every architectural counter the simulation produces, but nothing
// wall-clock dependent.
type protoFingerprint struct {
	Cycles   uint64            `json:"cycles"`
	Refs     uint64            `json:"refs"`
	Events   uint64            `json:"events"`
	MemReads uint64            `json:"mem_reads"`
	Counters map[string]uint64 `json:"counters"`
	Net      map[string]uint64 `json:"net"`
	Profile  map[string]uint64 `json:"miss_profile"`
}

const crosscheckGolden = "testdata/crosscheck_seed.json"

// fingerprintRun reduces a Result to its deterministic counters.
func fingerprintRun(res *Result) protoFingerprint {
	fp := protoFingerprint{
		Cycles:   uint64(res.Cycles),
		Refs:     res.Refs,
		Events:   res.Events,
		MemReads: res.MemReads,
		Counters: map[string]uint64{},
		Net:      map[string]uint64{},
		Profile:  map[string]uint64{},
	}
	for _, name := range res.Counters.Names() {
		fp.Counters[name] = res.Counters.Value(name)
	}
	// mesh.Stats and proto.MissProfile are flat uint64 structs; walk
	// them by field name so new fields fail loudly instead of silently
	// widening the fingerprint.
	rv := reflect.ValueOf(res.Net)
	for i := 0; i < rv.NumField(); i++ {
		fp.Net[rv.Type().Field(i).Name] = rv.Field(i).Uint()
	}
	pv := reflect.ValueOf(res.Profile)
	for i := 0; i < pv.NumField(); i++ {
		f := pv.Field(i)
		name := pv.Type().Field(i).Name
		if f.Kind() == reflect.Array {
			for j := 0; j < f.Len(); j++ {
				fp.Profile[fmt.Sprintf("%s[%d]", name, j)] = f.Index(j).Uint()
			}
			continue
		}
		fp.Profile[name] = f.Uint()
	}
	return fp
}

// TestCrossCheckSeedFingerprint replays the default workload on all
// four protocols and compares every architectural counter against the
// fingerprint captured from the tree *before* the pooled
// transaction-table rewrite (run with CROSSCHECK_UPDATE=1 to
// regenerate after an intentional behaviour change). This is the
// old-vs-new cross-check: the table refactor must be bit-identical,
// not just test-passing.
func TestCrossCheckSeedFingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("four full protocol runs")
	}
	got := map[string]protoFingerprint{}
	for _, p := range ProtocolNames {
		cfg := DefaultConfig()
		cfg.Protocol = p
		cfg.RefsPerCore = 400
		cfg.WarmupRefs = 800
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		got[p] = fingerprintRun(res)
	}

	if os.Getenv("CROSSCHECK_UPDATE") != "" {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(crosscheckGolden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(crosscheckGolden, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", crosscheckGolden)
		return
	}

	data, err := os.ReadFile(crosscheckGolden)
	if err != nil {
		t.Fatalf("missing golden (run with CROSSCHECK_UPDATE=1 to capture): %v", err)
	}
	var want map[string]protoFingerprint
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for _, p := range ProtocolNames {
		w, ok := want[p]
		if !ok {
			t.Errorf("%s: missing from golden", p)
			continue
		}
		g := got[p]
		if g.Cycles != w.Cycles || g.Refs != w.Refs || g.Events != w.Events || g.MemReads != w.MemReads {
			t.Errorf("%s: cycles/refs/events/mem_reads = %d/%d/%d/%d, want %d/%d/%d/%d",
				p, g.Cycles, g.Refs, g.Events, g.MemReads, w.Cycles, w.Refs, w.Events, w.MemReads)
		}
		diffMaps(t, p+" counter", g.Counters, w.Counters)
		diffMaps(t, p+" net", g.Net, w.Net)
		diffMaps(t, p+" miss_profile", g.Profile, w.Profile)
	}

	// The shard-aware observability instrumentation (touch census,
	// per-VM attribution) is observation-only: replayed with both armed,
	// every run must still match the pre-instrumentation golden
	// bit-exactly (the per-VM banks fold back into the globals at
	// measure end).
	for _, p := range ProtocolNames {
		cfg := DefaultConfig()
		cfg.Protocol = p
		cfg.RefsPerCore = 400
		cfg.WarmupRefs = 800
		cfg.Census = true
		cfg.PerVM = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s instrumented: %v", p, err)
		}
		if len(res.Census) == 0 || len(res.PerVM) == 0 {
			t.Fatalf("%s instrumented: census=%d per-VM=%d records — instrumentation did not arm",
				p, len(res.Census), len(res.PerVM))
		}
		g, w := fingerprintRun(res), want[p]
		if g.Cycles != w.Cycles || g.Refs != w.Refs || g.Events != w.Events || g.MemReads != w.MemReads {
			t.Errorf("%s instrumented: cycles/refs/events/mem_reads = %d/%d/%d/%d, want %d/%d/%d/%d",
				p, g.Cycles, g.Refs, g.Events, g.MemReads, w.Cycles, w.Refs, w.Events, w.MemReads)
		}
		diffMaps(t, p+" instrumented counter", g.Counters, w.Counters)
		diffMaps(t, p+" instrumented net", g.Net, w.Net)
		diffMaps(t, p+" instrumented miss_profile", g.Profile, w.Profile)
	}
}

func diffMaps(t *testing.T, label string, got, want map[string]uint64) {
	t.Helper()
	for k, wv := range want {
		if gv, ok := got[k]; !ok {
			t.Errorf("%s %q: missing (want %d)", label, k, wv)
		} else if gv != wv {
			t.Errorf("%s %q = %d, want %d", label, k, gv, wv)
		}
	}
	for k, gv := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s %q = %d: not in golden", label, k, gv)
		}
	}
}
