// Package telemetry is the simulator's production-grade observability
// layer: causal coherence-transaction tracing, epoch time-series
// sampling, and a live HTTP telemetry endpoint.
//
// Tracing is distributed-tracing for the on-chip world: every L1 miss
// opens a span, and the span's ID rides the event kernel's causal tag
// (sim.Kernel.Tag) through every message the transaction sends — mesh
// deliveries, stall wakeups and NACK retries all inherit the tag at
// scheduling time, so the full request → home/ordering point →
// owner/provider → ack → unblock chain lands in one span with cycle
// timestamps, with zero per-message plumbing in the protocol engines.
// Spans export as Chrome/Perfetto trace-event JSON (browsable in
// ui.perfetto.dev) and feed an in-process analyzer that reports the
// hop-count, indirection and retry distributions the paper's 2-hop vs
// 3-hop argument is about.
//
// Everything here is observation-only: the tracer never schedules an
// event, so a traced run's event stream is bit-identical to an
// untraced one. The epoch sampler does schedule its own tick events,
// but they touch no protocol state, so results are still identical.
package telemetry

import (
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Hop is one network message recorded into a span.
type Hop struct {
	Src    topo.Tile `json:"src"`
	Dst    topo.Tile `json:"dst"`
	Flits  int       `json:"flits"`
	Depart sim.Time  `json:"depart"`
	Arrive sim.Time  `json:"arrive"`
	Links  int       `json:"links"` // mesh links traversed (0 = same tile)
	// Bcast marks a spanning-tree broadcast (Links = tree edges,
	// Arrive = farthest destination).
	Bcast bool `json:"bcast,omitempty"`
	// Late marks traffic recorded after the span's reference retired
	// (trailing writebacks, directory updates, unblocks).
	Late bool `json:"late,omitempty"`
}

// Event is a named protocol-level annotation within a span (ordering
// point reached, owner supplies, retry, ...).
type Event struct {
	At   sim.Time  `json:"at"`
	Name string    `json:"name"`
	Tile topo.Tile `json:"tile"`
}

// Span is the full causal record of one L1 miss.
type Span struct {
	ID    uint64    `json:"id"`
	Tile  topo.Tile `json:"tile"`
	Addr  uint64    `json:"addr"`
	Write bool      `json:"write"`
	Start sim.Time  `json:"start"`
	End   sim.Time  `json:"end"`
	Class string    `json:"class"` // miss class name, set at close
	// Dropped marks a miss whose fill raced an invalidation and was
	// discarded at retire (the reference still completed).
	Dropped bool    `json:"dropped,omitempty"`
	Retries int     `json:"retries,omitempty"`
	Hops    []Hop   `json:"hops"`
	Events  []Event `json:"events,omitempty"`
	closed  bool
}

// Closed reports whether the span's reference has retired.
func (s *Span) Closed() bool { return s.closed }

// Messages returns the number of network messages the transaction
// sent before retiring (late traffic excluded).
func (s *Span) Messages() int {
	n := 0
	for i := range s.Hops {
		if !s.Hops[i].Late {
			n++
		}
	}
	return n
}

// ChainHops returns the length of the causal message chain from the
// requestor to the first data-carrying message arriving back at the
// requestor — the quantity behind the paper's "2-hop vs 3-hop"
// indirection argument. A directory miss served through the home and
// an owner is a 3-chain (request → forward → data); a DiCo miss whose
// prediction hit the supplier is a 2-chain (request → data). The chain
// is reconstructed causally: a hop extends the deepest earlier hop
// that ends where it starts. Misses completed without a data return
// (e.g. upgrade resolved by acks) report the chain to the last
// pre-retire message arriving at the requestor, and 0 when the span
// recorded no such hop.
func (s *Span) ChainHops(dataFlits int) int {
	// depth[i] = chain length ending with hop i.
	depth := make([]int, len(s.Hops))
	chain := func(i int) int {
		h := &s.Hops[i]
		best := 0
		for j := range s.Hops {
			if j == i || s.Hops[j].Late {
				continue
			}
			if s.Hops[j].Dst == h.Src && s.Hops[j].Arrive <= h.Depart && depth[j] > best {
				best = depth[j]
			}
		}
		return best + 1
	}
	// Hops are recorded in departure order, so one forward pass fixes
	// every depth (a hop's predecessors all departed earlier).
	for i := range s.Hops {
		if s.Hops[i].Late {
			continue
		}
		depth[i] = chain(i)
	}
	result, fallback := 0, 0
	for i := range s.Hops {
		h := &s.Hops[i]
		if h.Late || h.Dst != s.Tile {
			continue
		}
		if h.Flits >= dataFlits && result == 0 {
			result = depth[i]
		}
		fallback = depth[i]
	}
	if result != 0 {
		return result
	}
	return fallback
}

// DefaultSpanCap bounds the tracer's span ring buffer: past the cap
// the oldest retained span is dropped (and counted), so week-long
// runs trace at bounded memory. 1<<17 spans of a few hundred bytes
// keep the tracer well under 100 MB even on pathological workloads.
const DefaultSpanCap = 1 << 17

// Tracer assigns span IDs, follows the kernel's causal tags, and
// retains a bounded ring of finished and in-flight spans. It
// implements mesh.Observer so every injected message lands in the
// span whose tag is current at injection time.
type Tracer struct {
	Protocol string

	k       *sim.Kernel
	cap     int
	nextID  uint64
	ring    []*Span          // drop-oldest window, in open order
	ringOff int              // index of the oldest retained span
	live    map[uint64]*Span // every span still in the ring, by ID
	open    []*Span          // per-tile open span (one outstanding ref/tile)
	dropped uint64           // spans evicted from the ring
	stray   uint64           // messages whose tag matched no live span
}

// NewTracer builds a tracer over the kernel for a chip with tiles
// tiles. cap bounds retained spans (0 = DefaultSpanCap).
func NewTracer(k *sim.Kernel, protocol string, tiles, cap int) *Tracer {
	if cap <= 0 {
		cap = DefaultSpanCap
	}
	return &Tracer{
		Protocol: protocol,
		k:        k,
		cap:      cap,
		live:     make(map[uint64]*Span),
		open:     make([]*Span, tiles),
	}
}

// BeginMiss opens a span for a miss issued at tile and makes it the
// kernel's current causal tag, so everything the transaction schedules
// from here on is attributed to it.
func (t *Tracer) BeginMiss(tile topo.Tile, addr uint64, write bool) {
	t.nextID++
	s := &Span{ID: t.nextID, Tile: tile, Addr: addr, Write: write, Start: t.k.Now()}
	t.live[s.ID] = s
	t.open[tile] = s
	t.ring = append(t.ring, s)
	if len(t.ring)-t.ringOff > t.cap {
		old := t.ring[t.ringOff]
		t.ring[t.ringOff] = nil
		t.ringOff++
		delete(t.live, old.ID)
		if t.open[old.Tile] == old {
			t.open[old.Tile] = nil
		}
		t.dropped++
		// Compact once the dead prefix dominates, so the ring's memory
		// stays proportional to cap.
		if t.ringOff > t.cap {
			t.ring = append(t.ring[:0], t.ring[t.ringOff:]...)
			t.ringOff = 0
		}
	}
	t.k.SetTag(s.ID)
}

// EndMiss closes the tile's open span at the current cycle. Retried
// misses reuse their single span (retries are annotations, not new
// spans), and dropped fills (invalidated while pending) close cleanly
// with the Dropped mark.
func (t *Tracer) EndMiss(tile topo.Tile, class string, dropped bool) {
	s := t.open[tile]
	if s == nil {
		return // span evicted from the ring mid-flight
	}
	t.open[tile] = nil
	s.End = t.k.Now()
	s.Class = class
	s.Dropped = dropped
	s.closed = true
}

// Retry annotates the current transaction's span with one NACK-and-
// retry round trip.
func (t *Tracer) Retry(tile topo.Tile) {
	if s := t.current(); s != nil {
		s.Retries++
		s.Events = append(s.Events, Event{At: t.k.Now(), Name: "retry", Tile: tile})
	}
}

// Annotate appends a named protocol event to the current span.
func (t *Tracer) Annotate(name string, tile topo.Tile) {
	if s := t.current(); s != nil {
		s.Events = append(s.Events, Event{At: t.k.Now(), Name: name, Tile: tile})
	}
}

// current resolves the kernel's causal tag to a live span (open or
// recently closed — trailing traffic still attributes).
func (t *Tracer) current() *Span {
	if tag := t.k.Tag(); tag != 0 {
		return t.live[tag]
	}
	return nil
}

// Message implements mesh.Observer.
func (t *Tracer) Message(src, dst topo.Tile, flits int, depart, arrive sim.Time, hops int) {
	s := t.current()
	if s == nil {
		t.stray++
		return
	}
	s.Hops = append(s.Hops, Hop{
		Src: src, Dst: dst, Flits: flits,
		Depart: depart, Arrive: arrive, Links: hops,
		Late: s.closed,
	})
}

// BroadcastDone implements mesh.Observer.
func (t *Tracer) BroadcastDone(src topo.Tile, flits, links int, maxLat sim.Time) {
	s := t.current()
	if s == nil {
		t.stray++
		return
	}
	now := t.k.Now()
	s.Hops = append(s.Hops, Hop{
		Src: src, Dst: src, Flits: flits,
		Depart: now, Arrive: now + maxLat, Links: links,
		Bcast: true, Late: s.closed,
	})
}

var _ mesh.Observer = (*Tracer)(nil)

// Spans returns the retained spans in open order. The slice aliases
// the tracer's ring; treat it as read-only.
func (t *Tracer) Spans() []*Span { return t.ring[t.ringOff:] }

// Dropped returns how many spans the ring evicted to stay under cap.
func (t *Tracer) Dropped() uint64 { return t.dropped }

// Stray returns how many messages carried a tag matching no live span
// (traffic of evicted spans, or untagged bookkeeping).
func (t *Tracer) Stray() uint64 { return t.stray }

// OpenSpans counts spans whose reference has not retired yet.
func (t *Tracer) OpenSpans() int {
	n := 0
	for _, s := range t.open {
		if s != nil {
			n++
		}
	}
	return n
}
