package telemetry

import (
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Sample is one epoch snapshot of the running chip. Counter values
// are cumulative (the live counters are monotonic within a phase), so
// consecutive samples subtract into per-epoch rates.
type Sample struct {
	Cycle sim.Time `json:"cycle"`
	Phase string   `json:"phase"` // "warmup" or "measure"
	// Events and Refs are the kernel dispatch and retirement totals at
	// the snapshot.
	Events uint64 `json:"events"`
	Refs   uint64 `json:"refs"`
	// QueueDepth is the kernel's pending-event count; MSHRPending the
	// chip-wide outstanding-miss count — the two live queue-depth
	// signals.
	QueueDepth  int `json:"queue_depth"`
	MSHRPending int `json:"mshr_pending"`
	// Counters holds every stats counter in registration order at
	// snapshot time. Counters register lazily, so an early sample may
	// be a strict prefix of Series.CounterNames; missing tail values
	// are zero.
	Counters []uint64 `json:"counters"`
	// LinkFlits is the cumulative per-directed-link flit occupancy
	// (index layout tile*4+direction, see mesh.Network.LinkFlits).
	LinkFlits []uint64 `json:"link_flits"`
	// Energy split recomputed from the counters at snapshot time, in
	// pJ: the paper's cache-vs-network decomposition as a time series.
	EnergyCachePJ   float64 `json:"energy_cache_pj"`
	EnergyLinkPJ    float64 `json:"energy_link_pj"`
	EnergyRoutingPJ float64 `json:"energy_routing_pj"`
	// Per-VM cumulative energy split at the snapshot, indexed by VM id.
	// Nil unless per-VM attribution is armed. Derived from the per-VM
	// counter banks — pure simulation state, so the series stays
	// bit-identical serial vs sharded.
	PerVMCachePJ []float64 `json:"per_vm_cache_pj,omitempty"`
	PerVMNetPJ   []float64 `json:"per_vm_net_pj,omitempty"`
}

// Series is a bounded ring of epoch samples plus the metadata needed
// to interpret them. It is the manifest-facing (schema v2) form.
type Series struct {
	Interval sim.Time `json:"interval"`
	// CounterNames is the final counter namespace; each sample's
	// Counters vector aligns to a prefix of it.
	CounterNames []string `json:"counter_names"`
	Samples      []Sample `json:"samples"`
	// Dropped counts samples evicted to keep the ring under its cap.
	Dropped uint64 `json:"dropped,omitempty"`
}

// DefaultSampleCap bounds the sample ring: at the default interval a
// week-long run keeps the newest 64k epochs and drops the oldest.
const DefaultSampleCap = 1 << 16

// Sampler drives cycle-periodic snapshots through the event kernel.
// Its tick events carry no protocol state, so an armed sampler leaves
// simulation results identical (the event *stream* gains tick events;
// arm only when sampling is wanted). The tick chain stops itself when
// the queue drains (end of a phase) and is re-armed per phase.
type Sampler struct {
	Every sim.Time

	k        *sim.Kernel
	net      *mesh.Network
	counters *stats.Set
	energies power.TileEnergies
	refs     func() uint64
	pending  func() int
	// OnSample, when set, observes every accepted sample (the live
	// HTTP endpoint's refresh hook).
	OnSample func(*Sample)

	cap     int
	series  Series
	phase   string
	armed   bool
	tickFn  func()
	ringOff int

	banks []*stats.Set
	vmNet func(vm int) (flits, routers uint64)
}

// NewSampler builds a sampler snapshotting counters, net occupancy
// and queue depths every `every` cycles, keeping at most cap samples
// (0 = DefaultSampleCap). refs and pending provide the retirement
// total and the chip-wide MSHR depth; energies parameterize the
// energy split.
func NewSampler(k *sim.Kernel, every sim.Time, cap int, counters *stats.Set,
	net *mesh.Network, energies power.TileEnergies, refs func() uint64, pending func() int) *Sampler {
	if cap <= 0 {
		cap = DefaultSampleCap
	}
	s := &Sampler{
		Every: every, k: k, net: net, counters: counters, energies: energies,
		refs: refs, pending: pending, cap: cap,
		series: Series{Interval: every},
	}
	s.tickFn = s.tick
	return s
}

// SetBanks attaches the per-VM counter banks (and a per-VM network
// reader) of a per-VM-attributed run. Mid-run the global counters
// lack the hot-path charges — those accumulate in the banks until the
// measure-end fold — so every snapshot reconciles each counter as
// global + Σ banks, keeping Sample.Counters and the energy split
// bit-identical to an unattributed run. The banks also feed the
// optional per-VM energy columns of each sample.
func (s *Sampler) SetBanks(banks []*stats.Set, vmNet func(vm int) (flits, routers uint64)) {
	s.banks, s.vmNet = banks, vmNet
}

// SetPhase labels subsequent samples ("warmup", "measure").
func (s *Sampler) SetPhase(p string) { s.phase = p }

// Start arms the tick chain. Idempotent; called at the start of each
// run phase (the chain stops itself when the phase's queue drains).
func (s *Sampler) Start() {
	if s.armed || s.Every == 0 {
		return
	}
	s.armed = true
	// Ticks are bookkeeping, not part of any transaction: clear the
	// causal tag so the chain never attributes to a span.
	s.k.SetTag(0)
	s.k.After(s.Every, s.tickFn)
}

func (s *Sampler) tick() {
	s.armed = false
	s.Snapshot()
	// Reschedule only while simulation work remains; otherwise the
	// tick chain would keep an otherwise-drained queue alive forever.
	if s.k.Pending() > 0 {
		s.armed = true
		s.k.After(s.Every, s.tickFn)
	}
}

// Snapshot records one sample immediately (ticks call it; phase ends
// may call it for a final fencepost sample).
func (s *Sampler) Snapshot() {
	counters := s.counters
	if len(s.banks) > 0 {
		// Reconcile per-VM banks into a scratch set so the sample sees
		// exactly the totals an unattributed run would (the scratch
		// mirrors the global set's name order; bank names are a subset).
		scratch := &stats.Set{}
		scratch.Merge(s.counters)
		for _, b := range s.banks {
			scratch.Merge(b)
		}
		counters = scratch
	}
	names := counters.Names()
	smp := Sample{
		Cycle:       s.k.Now(),
		Phase:       s.phase,
		Events:      s.k.EventsRun(),
		Refs:        s.refs(),
		QueueDepth:  s.k.Pending(),
		MSHRPending: s.pending(),
		Counters:    make([]uint64, len(names)),
		LinkFlits:   s.net.LinkFlits(nil),
	}
	for i, n := range names {
		smp.Counters[i] = counters.Value(n)
	}
	bd := power.Dynamic(counters, s.net.Stats(), s.energies)
	smp.EnergyCachePJ = bd.CacheTotal()
	smp.EnergyLinkPJ = bd.Link
	smp.EnergyRoutingPJ = bd.Routing
	if len(s.banks) > 0 {
		smp.PerVMCachePJ = make([]float64, len(s.banks))
		smp.PerVMNetPJ = make([]float64, len(s.banks))
		for v, b := range s.banks {
			var flits, routers uint64
			if s.vmNet != nil {
				flits, routers = s.vmNet(v)
			}
			vbd := power.Dynamic(b, mesh.Stats{FlitLinkCrossing: flits, RouterTraversals: routers}, s.energies)
			smp.PerVMCachePJ[v] = vbd.CacheTotal()
			smp.PerVMNetPJ[v] = vbd.Link + vbd.Routing
		}
	}
	if len(names) > len(s.series.CounterNames) {
		s.series.CounterNames = names
	}
	s.series.Samples = append(s.series.Samples, smp)
	if len(s.series.Samples)-s.ringOff > s.cap {
		s.ringOff++
		s.series.Dropped++
		if s.ringOff > s.cap {
			s.series.Samples = append(s.series.Samples[:0], s.series.Samples[s.ringOff:]...)
			s.ringOff = 0
		}
	}
	if s.OnSample != nil {
		s.OnSample(&s.series.Samples[len(s.series.Samples)-1])
	}
}

// Series returns the collected time series (samples in record order,
// oldest retained first).
func (s *Sampler) Series() *Series {
	out := s.series
	out.Samples = s.series.Samples[s.ringOff:]
	return &out
}
