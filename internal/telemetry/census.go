package telemetry

import (
	"sort"

	"repro/internal/stats"
)

// TouchSite counts the synchronous remote-tile accesses of one
// protocol call site as a src x dst tile matrix. The engines register
// one site per (handler, structure) pair at construction and call
// Touch on the hot path; a nil site (census disarmed) costs one
// pointer test. Recording is tile-granular — which shard a tile maps
// to is resolved only at export — so the counts are identical for any
// shard count and any executor by construction.
type TouchSite struct {
	Engine    string
	Handler   string
	Structure string

	tiles  int
	counts []uint64 // src*tiles + dst
}

// Touch records one access: the handler logically executing at tile
// src read or wrote a structure owned by tile dst.
func (s *TouchSite) Touch(src, dst int) {
	if s == nil {
		return
	}
	s.counts[src*s.tiles+dst]++
}

// Census is the cross-shard touch inventory of one run: every
// registered call site where a protocol handler synchronously reaches
// into another tile's structures — exactly the accesses that must
// become scheduled messages before RunParallel can drive full-system
// runs (ROADMAP item 1, DESIGN.md §13/§14).
type Census struct {
	tiles int
	sites []*TouchSite
}

// NewCensus builds an empty census for a chip with the given tile
// count.
func NewCensus(tiles int) *Census {
	return &Census{tiles: tiles}
}

// Site registers (or returns the existing) touch site for one
// (engine, handler, structure) triple. Registration order is the
// engine construction order, which is deterministic.
func (c *Census) Site(engine, handler, structure string) *TouchSite {
	for _, s := range c.sites {
		if s.Engine == engine && s.Handler == handler && s.Structure == structure {
			return s
		}
	}
	s := &TouchSite{
		Engine: engine, Handler: handler, Structure: structure,
		tiles:  c.tiles,
		counts: make([]uint64, c.tiles*c.tiles),
	}
	c.sites = append(c.sites, s)
	return s
}

// Reset zeroes every site's counts but keeps the sites registered
// (the warmup/measure boundary discards warmup touches the same way
// it discards warmup counters).
func (c *Census) Reset() {
	for _, s := range c.sites {
		for i := range s.counts {
			s.counts[i] = 0
		}
	}
}

// CensusRecord is the manifest-facing aggregate of one touch site
// (schema v3). Count, Remote and EstCycles depend only on the tile
// matrix, so they are invariant across shard counts; CrossShard is
// classified against the partition of the recording run (shards=0 or
// 1 puts every tile in one band, so CrossShard is then zero).
type CensusRecord struct {
	Engine    string `json:"engine"`
	Handler   string `json:"handler"`
	Structure string `json:"structure"`
	// Count is all recorded touches; Remote the subset where the acting
	// tile differs from the touched tile; CrossShard the subset whose
	// endpoints land in different shard bands.
	Count      uint64 `json:"count"`
	Remote     uint64 `json:"remote"`
	CrossShard uint64 `json:"cross_shard"`
	// EstCycles is the one-way mesh latency the remote touches would
	// cost as scheduled messages: sum over remote touches of
	// manhattan-hops(src, dst) x the per-hop latency. It is the ranking
	// signal for the messageization work.
	EstCycles uint64 `json:"est_cycles"`
}

// Records aggregates every site into ranked records: EstCycles
// descending, then Count, then the (engine, handler, structure) name
// — a deterministic total order. shardOf maps tile to shard band (nil
// = single band) and hops gives the mesh distance between two tiles.
func (c *Census) Records(shardOf []int, hops func(src, dst int) int, hopLatency int) []CensusRecord {
	recs := make([]CensusRecord, 0, len(c.sites))
	for _, s := range c.sites {
		r := CensusRecord{Engine: s.Engine, Handler: s.Handler, Structure: s.Structure}
		for src := 0; src < c.tiles; src++ {
			row := s.counts[src*c.tiles : (src+1)*c.tiles]
			for dst, n := range row {
				if n == 0 {
					continue
				}
				r.Count += n
				if src != dst {
					r.Remote += n
					r.EstCycles += n * uint64(hops(src, dst)*hopLatency)
				}
				if shardOf != nil && shardOf[src] != shardOf[dst] {
					r.CrossShard += n
				}
			}
		}
		if r.Count > 0 {
			recs = append(recs, r)
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := &recs[i], &recs[j]
		if a.EstCycles != b.EstCycles {
			return a.EstCycles > b.EstCycles
		}
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.Engine != b.Engine {
			return a.Engine < b.Engine
		}
		if a.Handler != b.Handler {
			return a.Handler < b.Handler
		}
		return a.Structure < b.Structure
	})
	return recs
}

// CensusTable renders ranked census records as the standard aligned
// table (shared by cmpsim's report and tables' manifest view).
func CensusTable(title string, recs []CensusRecord) *stats.Table {
	t := stats.NewTable(title,
		"engine", "handler", "structure", "touches", "remote", "cross-shard", "est cycles")
	for _, r := range recs {
		t.AddRowf(r.Engine, r.Handler, r.Structure, r.Count, r.Remote, r.CrossShard, r.EstCycles)
	}
	return t
}
