package telemetry

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/topo"
)

// TestTracerSpanLifecycle walks one traced transaction end to end:
// open, annotated, retried, message-attributed, closed — and checks
// that trailing traffic after the close lands as Late hops.
func TestTracerSpanLifecycle(t *testing.T) {
	k := sim.NewKernel(1)
	tr := NewTracer(k, "directory", 16, 0)

	tr.BeginMiss(3, 0x1000, true)
	if k.Tag() == 0 {
		t.Fatal("BeginMiss did not set the kernel tag")
	}
	tr.Message(3, 5, 1, k.Now(), k.Now()+10, 2)
	tr.Annotate("dir-forward-owner", 5)
	tr.Retry(3)
	tr.Message(5, 3, 5, k.Now()+10, k.Now()+25, 2)
	if tr.OpenSpans() != 1 {
		t.Fatalf("OpenSpans = %d, want 1", tr.OpenSpans())
	}
	tr.EndMiss(3, "remote-l1", false)
	// Trailing traffic (unblock, writeback) still carries the tag.
	tr.Message(3, 5, 1, k.Now()+25, k.Now()+35, 2)

	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("retained %d spans, want 1", len(spans))
	}
	s := spans[0]
	if !s.Closed() || s.Class != "remote-l1" || s.Dropped {
		t.Errorf("span closed=%v class=%q dropped=%v, want true/remote-l1/false", s.Closed(), s.Class, s.Dropped)
	}
	if s.Retries != 1 {
		t.Errorf("retries = %d, want 1", s.Retries)
	}
	if len(s.Hops) != 3 || len(s.Events) != 2 {
		t.Fatalf("hops/events = %d/%d, want 3/2", len(s.Hops), len(s.Events))
	}
	if s.Hops[0].Late || s.Hops[1].Late || !s.Hops[2].Late {
		t.Error("only the post-retire hop should be marked Late")
	}
	if s.Messages() != 2 {
		t.Errorf("Messages() = %d, want 2 (late excluded)", s.Messages())
	}
	if tr.OpenSpans() != 0 || tr.Stray() != 0 || tr.Dropped() != 0 {
		t.Errorf("open/stray/dropped = %d/%d/%d, want 0/0/0", tr.OpenSpans(), tr.Stray(), tr.Dropped())
	}
}

// TestTracerDroppedFill requires a miss whose fill was invalidated
// while pending to close cleanly with the Dropped mark.
func TestTracerDroppedFill(t *testing.T) {
	k := sim.NewKernel(1)
	tr := NewTracer(k, "dico", 4, 0)
	tr.BeginMiss(1, 0x40, false)
	tr.EndMiss(1, "remote-l1", true)
	s := tr.Spans()[0]
	if !s.Closed() || !s.Dropped {
		t.Errorf("closed=%v dropped=%v, want true/true", s.Closed(), s.Dropped)
	}
}

// TestTracerStray requires untagged traffic (tag 0) and traffic of
// evicted spans to count as stray rather than mis-attribute.
func TestTracerStray(t *testing.T) {
	k := sim.NewKernel(1)
	tr := NewTracer(k, "arin", 4, 0)
	k.SetTag(0)
	tr.Message(0, 1, 1, 0, 5, 1)
	k.SetTag(999) // never issued by this tracer
	tr.Message(0, 1, 1, 0, 5, 1)
	tr.BroadcastDone(0, 1, 3, 9)
	if tr.Stray() != 3 {
		t.Errorf("stray = %d, want 3", tr.Stray())
	}
	if len(tr.Spans()) != 0 {
		t.Errorf("stray traffic created spans: %d", len(tr.Spans()))
	}
}

// TestTracerRingEviction requires the span ring to stay under its cap
// by dropping the oldest span, counting each eviction, and keeping the
// backing array's dead prefix bounded.
func TestTracerRingEviction(t *testing.T) {
	k := sim.NewKernel(1)
	const cap = 8
	tr := NewTracer(k, "directory", 1, cap)
	const n = 10 * cap
	for i := 0; i < n; i++ {
		tr.BeginMiss(0, uint64(i), false)
		tr.Message(0, 0, 1, k.Now(), k.Now()+3, 0)
		tr.EndMiss(0, "cold", false)
	}
	spans := tr.Spans()
	if len(spans) != cap {
		t.Fatalf("retained %d spans, want cap %d", len(spans), cap)
	}
	if tr.Dropped() != n-cap {
		t.Errorf("dropped = %d, want %d", tr.Dropped(), n-cap)
	}
	// The newest cap spans survive, in order.
	for i, s := range spans {
		if want := uint64(n - cap + i); s.Addr != want {
			t.Errorf("span %d addr = %#x, want %#x", i, s.Addr, want)
		}
	}
	// Traffic tagged with an evicted span is stray, not a crash.
	k.SetTag(1)
	tr.Message(0, 0, 1, 0, 1, 0)
	if tr.Stray() != 1 {
		t.Errorf("evicted-span traffic stray = %d, want 1", tr.Stray())
	}
}

// TestTracerEvictedOpenSpan requires EndMiss after the open span was
// evicted from the ring to be a clean no-op.
func TestTracerEvictedOpenSpan(t *testing.T) {
	k := sim.NewKernel(1)
	tr := NewTracer(k, "directory", 2, 2)
	tr.BeginMiss(0, 0x1, false) // will be evicted while still open
	tr.BeginMiss(1, 0x2, false)
	tr.EndMiss(1, "cold", false)
	tr.BeginMiss(1, 0x3, false) // evicts span 1 (tile 0, still open)
	if tr.OpenSpans() != 1 {
		t.Fatalf("OpenSpans = %d, want 1 (evicted open span forgotten)", tr.OpenSpans())
	}
	tr.EndMiss(0, "cold", false) // no-op: its span is gone
	if tr.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", tr.Dropped())
	}
}

// chainSpan builds a span from (src, dst, flits) message triples laid
// out 20 cycles apart, for ChainHops tests.
func chainSpan(tile topo.Tile, hops ...[3]int) *Span {
	s := &Span{Tile: tile, closed: true}
	for i, h := range hops {
		at := sim.Time(20 * i)
		s.Hops = append(s.Hops, Hop{
			Src: topo.Tile(h[0]), Dst: topo.Tile(h[1]), Flits: h[2],
			Depart: at, Arrive: at + 10, Links: 1,
		})
	}
	return s
}

// TestChainHops pins the causal chain-depth computation on the shapes
// the paper's argument is made of.
func TestChainHops(t *testing.T) {
	const data = 5
	cases := []struct {
		name string
		s    *Span
		want int
	}{
		// DiCo prediction hit: request straight to supplier, data back.
		{"2-hop", chainSpan(0, [3]int{0, 4, 1}, [3]int{4, 0, data}), 2},
		// Directory: request → home → forward → owner, data back.
		{"3-hop", chainSpan(0, [3]int{0, 8, 1}, [3]int{8, 4, 1}, [3]int{4, 0, data}), 3},
		// Memory fetch: req → home → mem-read modeled as home round trip → data.
		{"4-hop", chainSpan(0, [3]int{0, 8, 1}, [3]int{8, 15, 1}, [3]int{15, 8, data}, [3]int{8, 0, data}), 4},
		// Parallel side traffic (invalidations) must not deepen the data chain.
		{"side-traffic", chainSpan(0,
			[3]int{0, 8, 1}, // request to home
			[3]int{8, 2, 1}, // inv to a sharer (parallel)
			[3]int{8, 3, 1}, // inv to a sharer (parallel)
			[3]int{8, 0, data}), 2},
		// No data return: fall back to the last control message to the requestor.
		{"ack-only", chainSpan(0, [3]int{0, 8, 1}, [3]int{8, 0, 1}), 2},
		// No message back at all: 0.
		{"no-return", chainSpan(0, [3]int{0, 8, 1}), 0},
	}
	for _, c := range cases {
		if got := c.s.ChainHops(data); got != c.want {
			t.Errorf("%s: ChainHops = %d, want %d", c.name, got, c.want)
		}
	}
	// Late hops are excluded even when they would otherwise extend the chain.
	s := chainSpan(0, [3]int{0, 4, 1}, [3]int{4, 0, data}, [3]int{4, 0, data})
	s.Hops[2].Late = true
	if got := s.ChainHops(data); got != 2 {
		t.Errorf("late hop changed chain: %d, want 2", got)
	}
}

// TestAnalyze checks the per-protocol hop report over a synthetic
// tracer: chain histogram, indirection share, retries, messages.
func TestAnalyze(t *testing.T) {
	k := sim.NewKernel(1)
	tr := NewTracer(k, "directory", 16, 0)
	// Two 2-chains, one 3-chain, one retried.
	mk := func(tile topo.Tile, threeHop, retry bool) {
		tr.BeginMiss(tile, 0x100, false)
		tr.Message(tile, 8, 1, k.Now(), k.Now()+10, 2)
		if threeHop {
			tr.Message(8, 4, 1, k.Now()+10, k.Now()+20, 2)
			tr.Message(4, tile, 5, k.Now()+20, k.Now()+30, 2)
		} else {
			tr.Message(8, tile, 5, k.Now()+10, k.Now()+20, 2)
		}
		if retry {
			tr.Retry(tile)
		}
		tr.EndMiss(tile, "remote-l1", false)
	}
	mk(0, false, false)
	mk(1, false, true)
	mk(2, true, false)
	r := Analyze(tr, 5)
	if r.Spans != 3 || r.Chain[2] != 2 || r.Chain[3] != 1 {
		t.Fatalf("spans=%d chain2=%d chain3=%d, want 3/2/1", r.Spans, r.Chain[2], r.Chain[3])
	}
	if got := r.TwoHopShare(); got < 0.66 || got > 0.67 {
		t.Errorf("TwoHopShare = %v, want 2/3", got)
	}
	if got := r.IndirectionShare(); got < 0.33 || got > 0.34 {
		t.Errorf("IndirectionShare = %v, want 1/3", got)
	}
	if r.Retries != 1 || r.RetriedSpans != 1 {
		t.Errorf("retries = %d/%d, want 1/1", r.Retries, r.RetriedSpans)
	}
	if want := (2.0*2 + 3) / 3; r.MeanChain() != want {
		t.Errorf("MeanChain = %v, want %v", r.MeanChain(), want)
	}
	out := r.String()
	for _, needle := range []string{"directory", "2-hop", "3-hop"} {
		if !strings.Contains(out, needle) {
			t.Errorf("report missing %q:\n%s", needle, out)
		}
	}
	if ct := CompareTable(r, r).String(); !strings.Contains(ct, "indirection") {
		t.Errorf("compare table missing indirection column:\n%s", ct)
	}
}

// TestPerfettoRoundTrip exports a synthetic tracer and requires the
// validator to accept it and to see every span and hop.
func TestPerfettoRoundTrip(t *testing.T) {
	k := sim.NewKernel(1)
	tr := NewTracer(k, "dico", 4, 0)
	tr.BeginMiss(0, 0x80, true)
	tr.Message(0, 2, 1, 0, 9, 2)
	tr.Annotate("predict-supplier", 0)
	tr.Message(2, 0, 5, 9, 22, 2)
	tr.EndMiss(0, "remote-l1", false)
	tr.BeginMiss(1, 0x90, false) // left open: must NOT be exported

	var buf bytes.Buffer
	if err := WritePerfetto(&buf, tr); err != nil {
		t.Fatal(err)
	}
	sum, err := ValidatePerfetto(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exported trace failed validation: %v\n%s", err, buf.String())
	}
	if sum.Spans != 1 || sum.Hops != 2 {
		t.Errorf("summary spans/hops = %d/%d, want 1/2", sum.Spans, sum.Hops)
	}
	if sum.ByPID[1] != "dico" {
		t.Errorf("pid 1 = %q, want dico", sum.ByPID[1])
	}
}

// TestPerfettoLaneTracks exports a lane profile (no span tracers at
// all — the lane-only case bench -lanetrace produces) and requires the
// validator to accept it, count the lane slices, and name the sharded-
// kernel process; spans and lanes must also compose in one file.
func TestPerfettoLaneTracks(t *testing.T) {
	lp := &sim.LaneProfile{Lanes: 2, Lookahead: 5, TotalWindows: 3, Cap: sim.DefaultLaneWindowCap}
	for w := 0; w < 3; w++ {
		for lane := 0; lane < 2; lane++ {
			ev := uint64(w + lane)
			lp.Windows = append(lp.Windows, sim.LaneWindow{
				Lane: lane, Start: sim.Time(w * 5), End: sim.Time(w*5 + 4),
				Events: ev, Out: lane, WaitNS: int64(100 * w),
			})
		}
	}
	var buf bytes.Buffer
	if err := WritePerfettoLanes(&buf, lp); err != nil {
		t.Fatal(err)
	}
	sum, err := ValidatePerfetto(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("lane-only trace failed validation: %v\n%s", err, buf.String())
	}
	if sum.LaneSlices != 6 || sum.Spans != 0 {
		t.Errorf("summary lanes/spans = %d/%d, want 6/0", sum.LaneSlices, sum.Spans)
	}
	if sum.ByPID[1] != "sharded kernel (2 lanes)" {
		t.Errorf("pid 1 = %q, want the sharded-kernel process", sum.ByPID[1])
	}
	if !strings.Contains(buf.String(), `"stall"`) {
		t.Error("zero-event window not exported as a stall slice")
	}

	// Spans and lane tracks in the same file: distinct PIDs, both counted.
	k := sim.NewKernel(1)
	tr := NewTracer(k, "arin", 4, 0)
	tr.BeginMiss(0, 0x80, false)
	tr.EndMiss(0, "local", false)
	buf.Reset()
	if err := WritePerfettoLanes(&buf, lp, tr); err != nil {
		t.Fatal(err)
	}
	sum, err = ValidatePerfetto(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("combined trace failed validation: %v", err)
	}
	if sum.Spans != 1 || sum.LaneSlices != 6 {
		t.Errorf("combined spans/lanes = %d/%d, want 1/6", sum.Spans, sum.LaneSlices)
	}
	if sum.ByPID[1] != "arin" || sum.ByPID[2] != "sharded kernel (2 lanes)" {
		t.Errorf("pids = %v, want arin then the sharded kernel", sum.ByPID)
	}
}

// TestPerfettoValidatorRejects feeds the validator traces violating
// each invariant and requires a loud failure naming the problem.
func TestPerfettoValidatorRejects(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"malformed", `{"traceEvents": [`, "malformed"},
		{"empty", `{"traceEvents": []}`, "no events"},
		{"no-spans", `{"traceEvents": [{"name":"x","ph":"i","ts":1,"pid":1,"tid":0,"s":"t"}]}`, "no miss spans"},
		{"unknown-phase", `{"traceEvents": [{"name":"x","ph":"Q","ts":1,"pid":1,"tid":0}]}`, "unknown phase"},
		{"non-monotonic", `{"traceEvents": [
			{"name":"a","ph":"i","ts":10,"pid":1,"tid":0,"s":"t"},
			{"name":"b","ph":"i","ts":5,"pid":1,"tid":0,"s":"t"}]}`, "not monotonic"},
		{"unbalanced-async", `{"traceEvents": [
			{"name":"h","cat":"hop","ph":"b","ts":1,"pid":1,"tid":0,"id":"s1.h0"}]}`, "unbalanced"},
		{"end-without-begin", `{"traceEvents": [
			{"name":"h","cat":"hop","ph":"e","ts":1,"pid":1,"tid":0,"id":"s1.h0"}]}`, "without begin"},
		{"open-miss", `{"traceEvents": [
			{"name":"R miss","cat":"miss","ph":"X","ts":1,"pid":1,"tid":0}]}`, "no duration"},
		{"classless-miss", `{"traceEvents": [
			{"name":"R miss","cat":"miss","ph":"X","ts":1,"dur":5,"pid":1,"tid":0,"args":{}}]}`, "no class"},
	}
	for _, c := range cases {
		_, err := ValidatePerfetto(strings.NewReader(c.body))
		if err == nil {
			t.Errorf("%s: validator accepted a broken trace", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// samplerFixture builds a kernel + mesh + counters sampler with a
// driving workload of n dummy events spread over cycles.
func samplerFixture(every sim.Time, cap int) (*sim.Kernel, *Sampler, *stats.Set) {
	k := sim.NewKernel(1)
	grid := topo.NewGrid(2, 2)
	net := mesh.New(k, grid, mesh.DefaultConfig())
	counters := &stats.Set{}
	energies := power.Energies(storage.Directory, storage.DefaultConfig(4, 1), power.DefaultEnergy())
	s := NewSampler(k, every, cap, counters, net, energies,
		func() uint64 { return k.EventsRun() }, k.Pending)
	return k, s, counters
}

// TestSamplerTicks requires the tick chain to sample at the configured
// interval, stop when the queue drains, and re-arm for a second phase.
func TestSamplerTicks(t *testing.T) {
	k, s, counters := samplerFixture(100, 0)
	counters.Inc("refs")
	// Phase 1: work until cycle 1000.
	for c := sim.Time(1); c <= 1000; c += 7 {
		k.At(c, func() { counters.Inc("refs") })
	}
	s.SetPhase("warmup")
	s.Start()
	k.Run(0)
	s.Snapshot() // fencepost
	n1 := len(s.Series().Samples)
	if n1 < 10 {
		t.Fatalf("phase 1 took %d samples, want >= 10", n1)
	}
	if k.Pending() != 0 {
		t.Fatal("tick chain kept the queue alive after the work drained")
	}
	// Phase 2 re-arms.
	for c := k.Now() + 1; c <= k.Now()+500; c += 7 {
		k.At(c, func() { counters.Inc("refs") })
	}
	s.SetPhase("measure")
	s.Start()
	k.Run(0)
	s.Snapshot()
	series := s.Series()
	if len(series.Samples) <= n1+1 {
		t.Fatalf("phase 2 added %d samples, want several", len(series.Samples)-n1)
	}
	if series.Interval != 100 {
		t.Errorf("interval = %d, want 100", series.Interval)
	}
	sawMeasure := false
	for i, smp := range series.Samples {
		if i > 0 && smp.Cycle < series.Samples[i-1].Cycle {
			t.Fatalf("sample %d cycle %d before %d", i, smp.Cycle, series.Samples[i-1].Cycle)
		}
		if smp.Phase == "measure" {
			sawMeasure = true
		}
		if len(smp.Counters) > len(series.CounterNames) {
			t.Fatalf("sample %d has %d counters, names only %d", i, len(smp.Counters), len(series.CounterNames))
		}
	}
	if !sawMeasure {
		t.Error("no sample labeled measure")
	}
	last := series.Samples[len(series.Samples)-1]
	if last.Counters[0] == 0 || last.Events == 0 {
		t.Errorf("final sample empty: counters[0]=%d events=%d", last.Counters[0], last.Events)
	}
}

// TestSamplerRingCap requires the sample ring to drop oldest past its
// cap and count the drops.
func TestSamplerRingCap(t *testing.T) {
	_, s, _ := samplerFixture(10, 4)
	for i := 0; i < 20; i++ {
		s.Snapshot()
	}
	series := s.Series()
	if len(series.Samples) != 4 {
		t.Fatalf("retained %d samples, want 4", len(series.Samples))
	}
	if series.Dropped != 16 {
		t.Errorf("dropped = %d, want 16", series.Dropped)
	}
}

// TestSamplerIdempotentStart requires double Start to arm one chain,
// not two.
func TestSamplerIdempotentStart(t *testing.T) {
	k, s, _ := samplerFixture(50, 0)
	k.At(500, func() {})
	s.Start()
	s.Start()
	k.Run(0)
	series := s.Series()
	for i := 1; i < len(series.Samples); i++ {
		if series.Samples[i].Cycle == series.Samples[i-1].Cycle {
			t.Fatalf("duplicate sample at cycle %d: double-armed tick chain", series.Samples[i].Cycle)
		}
	}
}

// TestLiveEndpoint boots the HTTP endpoint on an ephemeral port and
// checks the Prometheus, heatmap and expvar surfaces.
func TestLiveEndpoint(t *testing.T) {
	k, s, counters := samplerFixture(10, 0)
	counters.Add("l1.tag.read", 42)
	live := NewLive()
	grid := topo.NewGrid(2, 2)
	live.Attach(s, "directory", "apache4x16p", grid)
	s.SetPhase("measure")
	k.At(25, func() {})
	s.Start()
	k.Run(0)
	s.Snapshot()

	addr, err := Serve("127.0.0.1:0", live)
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	metrics := get("/metrics")
	for _, needle := range []string{
		`cmpsim_cycle{protocol="directory"}`,
		`cmpsim_counter_total{protocol="directory",counter="l1.tag.read"} 42`,
		"cmpsim_energy_pj",
		"cmpsim_link_flits_total",
	} {
		if !strings.Contains(metrics, needle) {
			t.Errorf("/metrics missing %q:\n%s", needle, metrics)
		}
	}
	heat := get("/")
	for _, needle := range []string{"directory", "apache4x16p", "cmpsim live telemetry", "<table>"} {
		if !strings.Contains(strings.ToLower(heat), strings.ToLower(needle)) {
			t.Errorf("heatmap missing %q", needle)
		}
	}
	vars := get("/debug/vars")
	if !strings.Contains(vars, "cmpsim") {
		t.Error("/debug/vars missing the cmpsim expvar")
	}
}

// TestServeBindsLocalhost requires a bare ":port" to resolve to a
// loopback listener, since the endpoint exposes pprof.
func TestServeBindsLocalhost(t *testing.T) {
	addr, err := Serve(":0", NewLive())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(addr, "127.0.0.1:") {
		t.Errorf("bare :0 bound %s, want 127.0.0.1:*", addr)
	}
}
