package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// traceEvent is one Chrome/Perfetto trace-event record. Timestamps
// are simulation cycles written into the "ts"/"dur" microsecond
// fields: the absolute unit is meaningless for a cycle-accurate
// simulator, and Perfetto renders relative durations regardless.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    uint64         `json:"ts"`
	Dur   *uint64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// perfettoFile is the JSON-object trace container format.
type perfettoFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WritePerfetto exports the retained spans of one or more tracers
// (one process per tracer/protocol, one thread per tile) as
// trace-event JSON loadable in ui.perfetto.dev or chrome://tracing.
//
// Each closed span becomes a complete ("X") slice on its requestor
// tile's thread; every message becomes an async begin/end pair with
// its own ID, so overlapping traffic (parallel invalidations) renders
// without nesting violations; protocol annotations become thread-
// scoped instant events. Events are sorted by timestamp, so the
// output passes a monotonicity check. Open (unretired) spans are not
// exported — after a completed run there are none, and a partial
// export must not contain unclosed slices.
func WritePerfetto(w io.Writer, tracers ...*Tracer) error {
	return WritePerfettoLanes(w, nil, tracers...)
}

// WritePerfettoLanes is WritePerfetto plus per-lane execution tracks:
// when lp is non-nil, every retained RunParallel window becomes one
// complete ("X") slice per lane on a dedicated "sharded kernel"
// process, one thread per lane, annotated with the lane's events
// dispatched, outbox depth and barrier wait. Lane tracks render next
// to the span tracks, aligned on the same cycle axis.
func WritePerfettoLanes(w io.Writer, lp *sim.LaneProfile, tracers ...*Tracer) error {
	f := perfettoFile{
		DisplayTimeUnit: "ns",
		OtherData:       map[string]any{"tool": "cmpsim", "unit": "cycles"},
	}
	var meta, events []traceEvent
	for pi, t := range tracers {
		pid := pi + 1
		meta = append(meta, traceEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": t.Protocol},
		})
		tilesSeen := map[int]bool{}
		for _, s := range t.Spans() {
			if !s.Closed() {
				continue
			}
			tid := int(s.Tile)
			tilesSeen[tid] = true
			op := "R"
			if s.Write {
				op = "W"
			}
			dur := uint64(s.End - s.Start)
			events = append(events, traceEvent{
				Name: fmt.Sprintf("%s miss %#x", op, s.Addr),
				Cat:  "miss", Ph: "X", TS: uint64(s.Start), Dur: &dur,
				PID: pid, TID: tid,
				Args: map[string]any{
					"class":   s.Class,
					"retries": s.Retries,
					"dropped": s.Dropped,
					"hops":    len(s.Hops),
					"span":    s.ID,
				},
			})
			for hi := range s.Hops {
				h := &s.Hops[hi]
				kind := "ctl"
				if h.Flits > 1 {
					kind = "data"
				}
				if h.Bcast {
					kind = "bcast"
				}
				name := fmt.Sprintf("%d→%d %s", h.Src, h.Dst, kind)
				id := fmt.Sprintf("s%d.h%d", s.ID, hi)
				args := map[string]any{"flits": h.Flits, "links": h.Links, "span": s.ID}
				if h.Late {
					args["late"] = true
				}
				events = append(events,
					traceEvent{Name: name, Cat: "hop", Ph: "b", TS: uint64(h.Depart), PID: pid, TID: int(h.Src), ID: id, Args: args},
					traceEvent{Name: name, Cat: "hop", Ph: "e", TS: uint64(h.Arrive), PID: pid, TID: int(h.Src), ID: id},
				)
			}
			for _, ev := range s.Events {
				events = append(events, traceEvent{
					Name: ev.Name, Cat: "proto", Ph: "i", TS: uint64(ev.At),
					PID: pid, TID: int(ev.Tile), Scope: "t",
					Args: map[string]any{"span": s.ID},
				})
			}
		}
		tids := make([]int, 0, len(tilesSeen))
		for tid := range tilesSeen {
			tids = append(tids, tid)
		}
		sort.Ints(tids)
		for _, tid := range tids {
			meta = append(meta, traceEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: tid,
				Args: map[string]any{"name": fmt.Sprintf("tile %d", tid)},
			})
		}
		f.OtherData[t.Protocol+"_spans_dropped"] = t.Dropped()
	}
	if lp != nil {
		pid := len(tracers) + 1
		meta = append(meta, traceEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": fmt.Sprintf("sharded kernel (%d lanes)", lp.Lanes)},
		})
		for lane := 0; lane < lp.Lanes; lane++ {
			meta = append(meta, traceEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: lane,
				Args: map[string]any{"name": fmt.Sprintf("lane %d", lane)},
			})
		}
		for i := range lp.Windows {
			lw := &lp.Windows[i]
			dur := uint64(lw.End-lw.Start) + 1
			name := "window"
			if lw.Events == 0 {
				name = "stall" // lookahead stall: the lane only waited
			}
			events = append(events, traceEvent{
				Name: name, Cat: "lane", Ph: "X",
				TS: uint64(lw.Start), Dur: &dur, PID: pid, TID: lw.Lane,
				Args: map[string]any{
					"events":  lw.Events,
					"outbox":  lw.Out,
					"wait_ns": lw.WaitNS,
				},
			})
		}
		f.OtherData["lane_windows_total"] = lp.TotalWindows
		f.OtherData["lane_lookahead_cycles"] = uint64(lp.Lookahead)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	f.TraceEvents = append(meta, events...)
	enc := json.NewEncoder(w)
	return enc.Encode(&f)
}

// TraceSummary is what ValidatePerfetto learned about a trace file.
type TraceSummary struct {
	Events     int
	Spans      int
	Hops       int
	LaneSlices int            // per-lane window slices (cat "lane")
	ByPID      map[int]string // pid -> process (protocol) name
}

// ValidatePerfetto decodes a trace-event JSON file and verifies the
// invariants CI enforces on exported traces: well-formed JSON with a
// non-empty traceEvents array, known phase types, non-decreasing
// timestamps, every async begin matched by exactly one end of the
// same (cat, id), and every miss slice closed (a duration and a miss
// class recorded). It returns a summary of what it saw.
func ValidatePerfetto(r io.Reader) (TraceSummary, error) {
	sum := TraceSummary{ByPID: map[int]string{}}
	var f perfettoFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return sum, fmt.Errorf("telemetry: malformed trace JSON: %w", err)
	}
	if len(f.TraceEvents) == 0 {
		return sum, fmt.Errorf("telemetry: trace has no events")
	}
	sum.Events = len(f.TraceEvents)
	var lastTS uint64
	sawNonMeta := false
	openAsync := map[string]int{}
	for i := range f.TraceEvents {
		e := &f.TraceEvents[i]
		switch e.Ph {
		case "M":
			if e.Name == "process_name" {
				if name, ok := e.Args["name"].(string); ok {
					sum.ByPID[e.PID] = name
				}
			}
			continue
		case "X":
			if e.Cat == "miss" {
				sum.Spans++
				if e.Dur == nil {
					return sum, fmt.Errorf("telemetry: event %d: miss slice %q has no duration (span not closed)", i, e.Name)
				}
				if cls, ok := e.Args["class"].(string); !ok || cls == "" {
					return sum, fmt.Errorf("telemetry: event %d: miss slice %q has no class (span not closed)", i, e.Name)
				}
			}
			if e.Cat == "lane" {
				sum.LaneSlices++
				if e.Dur == nil {
					return sum, fmt.Errorf("telemetry: event %d: lane slice %q has no duration", i, e.Name)
				}
			}
		case "b":
			openAsync[e.Cat+"\x00"+e.ID]++
			if e.Cat == "hop" {
				sum.Hops++
			}
		case "e":
			key := e.Cat + "\x00" + e.ID
			openAsync[key]--
			if openAsync[key] < 0 {
				return sum, fmt.Errorf("telemetry: event %d: async end %q (id %s) without begin", i, e.Name, e.ID)
			}
		case "i":
			// instant events need no pairing
		default:
			return sum, fmt.Errorf("telemetry: event %d: unknown phase %q", i, e.Ph)
		}
		if sawNonMeta && e.TS < lastTS {
			return sum, fmt.Errorf("telemetry: event %d (%q): timestamp %d before %d — not monotonic", i, e.Name, e.TS, lastTS)
		}
		lastTS, sawNonMeta = e.TS, true
	}
	for key, n := range openAsync {
		if n != 0 {
			return sum, fmt.Errorf("telemetry: async pair %q unbalanced by %d", key, n)
		}
	}
	if sum.Spans == 0 && sum.LaneSlices == 0 {
		return sum, fmt.Errorf("telemetry: trace contains no miss spans and no lane slices")
	}
	return sum, nil
}
