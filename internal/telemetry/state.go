package telemetry

// SamplerState is the serializable state of a Sampler: the accumulated
// series, the current phase label, and the ring cursor. The tick chain
// itself is not state — it stops when a phase's queue drains and is
// re-armed per phase by the run loop.
type SamplerState struct {
	Series  Series
	Phase   string
	RingOff int
}

// State returns a deep copy of the sampler's accumulated series.
func (s *Sampler) State() *SamplerState {
	st := &SamplerState{Series: s.series, Phase: s.phase, RingOff: s.ringOff}
	st.Series.Samples = append([]Sample(nil), s.series.Samples...)
	st.Series.CounterNames = append([]string(nil), s.series.CounterNames...)
	return st
}

// RestoreState overwrites the sampler's series and cursor.
func (s *Sampler) RestoreState(st *SamplerState) {
	s.series = st.Series
	s.series.Samples = append([]Sample(nil), st.Series.Samples...)
	s.series.CounterNames = append([]string(nil), st.Series.CounterNames...)
	s.phase = st.Phase
	s.ringOff = st.RingOff
}
