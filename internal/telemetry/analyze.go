package telemetry

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// MaxChain is the last distinct chain-length bucket of a HopReport;
// longer chains (retry storms) fold into it.
const MaxChain = 7

// HopReport aggregates the causal-chain statistics of one tracer —
// the data form of the paper's ordering-point-indirection argument:
// directory misses that bounce through home and owner are 3-chains,
// DiCo misses that reach the owner or a provider directly are
// 2-chains.
type HopReport struct {
	Protocol string
	Spans    int    // closed spans analyzed
	Open     int    // spans never closed (0 after a completed run)
	Dropped  uint64 // spans evicted from the ring buffer
	// Chain[n] counts misses whose causal chain to the returning data
	// was n messages long (bucket MaxChain holds >= MaxChain; bucket 0
	// holds spans with no recorded message back to the requestor).
	Chain        [MaxChain + 1]int
	Retries      int // retry round trips across all spans
	RetriedSpans int // spans with at least one retry
	DroppedFills int // fills invalidated while pending
	Messages     int // pre-retire messages across all spans
	LateMessages int // post-retire messages (writebacks, unblocks)
	Broadcasts   int
}

// Analyze builds the hop report for a tracer's retained spans.
// dataFlits is the data-packet size distinguishing data from control
// messages (mesh.Config.DataFlits).
func Analyze(t *Tracer, dataFlits int) *HopReport {
	r := &HopReport{Protocol: t.Protocol, Dropped: t.Dropped()}
	for _, s := range t.Spans() {
		if !s.Closed() {
			r.Open++
			continue
		}
		r.Spans++
		n := s.ChainHops(dataFlits)
		if n > MaxChain {
			n = MaxChain
		}
		r.Chain[n]++
		r.Retries += s.Retries
		if s.Retries > 0 {
			r.RetriedSpans++
		}
		if s.Dropped {
			r.DroppedFills++
		}
		for i := range s.Hops {
			if s.Hops[i].Late {
				r.LateMessages++
			} else {
				r.Messages++
			}
			if s.Hops[i].Bcast {
				r.Broadcasts++
			}
		}
	}
	return r
}

// TwoHopShare returns the fraction of misses resolved in a 2-message
// chain or shorter (request → data, no indirection).
func (r *HopReport) TwoHopShare() float64 {
	if r.Spans == 0 {
		return 0
	}
	n := r.Chain[0] + r.Chain[1] + r.Chain[2]
	return float64(n) / float64(r.Spans)
}

// IndirectionShare returns the fraction of misses needing a chain of
// 3+ messages (an ordering-point or forwarding indirection).
func (r *HopReport) IndirectionShare() float64 {
	if r.Spans == 0 {
		return 0
	}
	n := 0
	for c := 3; c <= MaxChain; c++ {
		n += r.Chain[c]
	}
	return float64(n) / float64(r.Spans)
}

// MeanChain returns the mean causal chain length.
func (r *HopReport) MeanChain() float64 {
	if r.Spans == 0 {
		return 0
	}
	sum := 0
	for c, n := range r.Chain {
		sum += c * n
	}
	return float64(sum) / float64(r.Spans)
}

// MeanMessages returns the mean pre-retire messages per miss.
func (r *HopReport) MeanMessages() float64 {
	if r.Spans == 0 {
		return 0
	}
	return float64(r.Messages) / float64(r.Spans)
}

// String renders the single-protocol report.
func (r *HopReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "span analysis: %s (%d misses traced", r.Protocol, r.Spans)
	if r.Dropped > 0 {
		fmt.Fprintf(&b, ", %d dropped by ring cap", r.Dropped)
	}
	if r.Open > 0 {
		fmt.Fprintf(&b, ", %d still open", r.Open)
	}
	b.WriteString(")\n")
	for c := 0; c <= MaxChain; c++ {
		if r.Chain[c] == 0 {
			continue
		}
		label := fmt.Sprintf("%d-hop chain", c)
		if c == MaxChain {
			label = fmt.Sprintf("%d+-hop chain", c)
		}
		fmt.Fprintf(&b, "  %-14s %8d (%5.1f%%)\n", label, r.Chain[c],
			float64(r.Chain[c])/float64(max(r.Spans, 1))*100)
	}
	fmt.Fprintf(&b, "  2-hop share    %6.1f%%   indirection (3+ hops) %5.1f%%   mean chain %.2f\n",
		r.TwoHopShare()*100, r.IndirectionShare()*100, r.MeanChain())
	fmt.Fprintf(&b, "  retries        %8d in %d misses (%.2f%%)\n",
		r.Retries, r.RetriedSpans, float64(r.RetriedSpans)/float64(max(r.Spans, 1))*100)
	fmt.Fprintf(&b, "  messages/miss  %8.2f (+%d late: writebacks, unblocks)   dropped fills %d   broadcasts %d\n",
		r.MeanMessages(), r.LateMessages, r.DroppedFills, r.Broadcasts)
	return b.String()
}

// CompareTable renders several protocols' hop reports side by side —
// the Figure 5 argument (ordering-point indirection vs direct
// coherence) as measured data.
func CompareTable(reports ...*HopReport) *stats.Table {
	t := stats.NewTable("span hop-count comparison",
		"protocol", "misses", "2-hop", "3-hop", "4+hop", "indirection", "mean chain", "retries", "msgs/miss")
	for _, r := range reports {
		four := 0
		for c := 4; c <= MaxChain; c++ {
			four += r.Chain[c]
		}
		t.AddRowf(
			r.Protocol,
			fmt.Sprint(r.Spans),
			fmt.Sprintf("%.1f%%", float64(r.Chain[2])/float64(max(r.Spans, 1))*100),
			fmt.Sprintf("%.1f%%", float64(r.Chain[3])/float64(max(r.Spans, 1))*100),
			fmt.Sprintf("%.1f%%", float64(four)/float64(max(r.Spans, 1))*100),
			fmt.Sprintf("%.1f%%", r.IndirectionShare()*100),
			fmt.Sprintf("%.2f", r.MeanChain()),
			fmt.Sprint(r.Retries),
			fmt.Sprintf("%.2f", r.MeanMessages()),
		)
	}
	return t
}
