package telemetry

import (
	"expvar"
	"fmt"
	"html"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"

	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/topo"
)

// runView is the latest epoch snapshot of one live run, deep-copied
// out of the simulation goroutine.
type runView struct {
	Workload string
	Grid     topo.Grid
	Names    []string
	Sample   Sample
	// PrevLinkFlits is the previous epoch's cumulative link counters,
	// kept so the heatmap can show per-epoch occupancy deltas.
	PrevLinkFlits []uint64
}

// Live is the thread-safe bridge between running simulations and the
// HTTP endpoint: each sampler pushes its epoch snapshots in (from the
// simulation goroutines), HTTP handlers read the latest one out. It
// supports several concurrent runs (cmpsim -protocols) keyed by
// protocol name.
// laneView is the aggregated per-lane execution profile of one
// RunParallel workload, published once per run (or per refresh).
type laneView struct {
	Lanes        int
	Lookahead    sim.Time
	TotalWindows int
	// Per-lane aggregates over the retained windows.
	Windows []int
	Events  []uint64
	Stalls  []int
	WaitNS  []int64
}

// Live is the thread-safe bridge between running simulations and the
// HTTP endpoint: each sampler pushes its epoch snapshots in (from the
// simulation goroutines), HTTP handlers read the latest one out. It
// supports several concurrent runs (cmpsim -protocols) keyed by
// protocol name.
type Live struct {
	mu    sync.Mutex
	runs  map[string]*runView
	lanes map[string]*laneView
}

// NewLive returns an empty live-state registry.
func NewLive() *Live {
	return &Live{runs: map[string]*runView{}, lanes: map[string]*laneView{}}
}

// Update publishes one run's newest sample. It deep-copies everything
// it keeps, so the caller's buffers stay private to the simulation.
func (l *Live) Update(protocol, workload string, grid topo.Grid, names []string, s *Sample) {
	l.mu.Lock()
	defer l.mu.Unlock()
	v := l.runs[protocol]
	if v == nil {
		v = &runView{}
		l.runs[protocol] = v
	} else {
		v.PrevLinkFlits = v.Sample.LinkFlits
	}
	v.Workload = workload
	v.Grid = grid
	v.Names = append([]string(nil), names...)
	v.Sample = *s
	v.Sample.Counters = append([]uint64(nil), s.Counters...)
	v.Sample.LinkFlits = append([]uint64(nil), s.LinkFlits...)
	v.Sample.PerVMCachePJ = append([]float64(nil), s.PerVMCachePJ...)
	v.Sample.PerVMNetPJ = append([]float64(nil), s.PerVMNetPJ...)
}

// UpdateLanes publishes the per-lane aggregate of a RunParallel lane
// profile under name. Call it between windows is not supported — the
// profile is read whole, so publish after RunParallel returns (or from
// the coordinating goroutine only).
func (l *Live) UpdateLanes(name string, lp *sim.LaneProfile) {
	v := &laneView{
		Lanes: lp.Lanes, Lookahead: lp.Lookahead, TotalWindows: lp.TotalWindows,
		Windows: make([]int, lp.Lanes),
		Events:  make([]uint64, lp.Lanes),
		Stalls:  make([]int, lp.Lanes),
		WaitNS:  make([]int64, lp.Lanes),
	}
	for i := range lp.Windows {
		w := &lp.Windows[i]
		if w.Lane < 0 || w.Lane >= lp.Lanes {
			continue
		}
		v.Windows[w.Lane]++
		v.Events[w.Lane] += w.Events
		if w.Events == 0 {
			v.Stalls[w.Lane]++
		}
		v.WaitNS[w.Lane] += w.WaitNS
	}
	l.mu.Lock()
	l.lanes[name] = v
	l.mu.Unlock()
}

// Attach wires a sampler's epoch hook to this registry.
func (l *Live) Attach(s *Sampler, protocol, workload string, grid topo.Grid) {
	s.OnSample = func(smp *Sample) {
		l.Update(protocol, workload, grid, s.counters.Names(), smp)
	}
}

// protocols returns the live run names, sorted for stable output.
func (l *Live) protocols() []string {
	names := make([]string, 0, len(l.runs))
	for p := range l.runs {
		names = append(names, p)
	}
	sort.Strings(names)
	return names
}

// metrics serves the Prometheus text exposition of every live run.
func (l *Live) metrics(w http.ResponseWriter, _ *http.Request) {
	l.mu.Lock()
	defer l.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	b.WriteString("# HELP cmpsim_cycle Current simulation cycle of the newest epoch sample.\n# TYPE cmpsim_cycle gauge\n")
	for _, p := range l.protocols() {
		fmt.Fprintf(&b, "cmpsim_cycle{protocol=%q} %d\n", p, l.runs[p].Sample.Cycle)
	}
	b.WriteString("# HELP cmpsim_refs_total References retired.\n# TYPE cmpsim_refs_total counter\n")
	for _, p := range l.protocols() {
		fmt.Fprintf(&b, "cmpsim_refs_total{protocol=%q} %d\n", p, l.runs[p].Sample.Refs)
	}
	b.WriteString("# HELP cmpsim_kernel_events_total Kernel events dispatched.\n# TYPE cmpsim_kernel_events_total counter\n")
	for _, p := range l.protocols() {
		fmt.Fprintf(&b, "cmpsim_kernel_events_total{protocol=%q} %d\n", p, l.runs[p].Sample.Events)
	}
	b.WriteString("# HELP cmpsim_queue_depth Kernel pending-event count.\n# TYPE cmpsim_queue_depth gauge\n")
	for _, p := range l.protocols() {
		fmt.Fprintf(&b, "cmpsim_queue_depth{protocol=%q} %d\n", p, l.runs[p].Sample.QueueDepth)
	}
	b.WriteString("# HELP cmpsim_mshr_pending Outstanding L1 misses chip-wide.\n# TYPE cmpsim_mshr_pending gauge\n")
	for _, p := range l.protocols() {
		fmt.Fprintf(&b, "cmpsim_mshr_pending{protocol=%q} %d\n", p, l.runs[p].Sample.MSHRPending)
	}
	b.WriteString("# HELP cmpsim_energy_pj Dynamic energy split since phase start.\n# TYPE cmpsim_energy_pj gauge\n")
	for _, p := range l.protocols() {
		s := &l.runs[p].Sample
		fmt.Fprintf(&b, "cmpsim_energy_pj{protocol=%q,component=\"cache\"} %g\n", p, s.EnergyCachePJ)
		fmt.Fprintf(&b, "cmpsim_energy_pj{protocol=%q,component=\"link\"} %g\n", p, s.EnergyLinkPJ)
		fmt.Fprintf(&b, "cmpsim_energy_pj{protocol=%q,component=\"routing\"} %g\n", p, s.EnergyRoutingPJ)
	}
	perVM := false
	for _, p := range l.protocols() {
		if len(l.runs[p].Sample.PerVMCachePJ) > 0 {
			perVM = true
		}
	}
	if perVM {
		b.WriteString("# HELP cmpsim_vm_energy_pj Dynamic energy attributed to each consolidated VM since phase start.\n# TYPE cmpsim_vm_energy_pj gauge\n")
		for _, p := range l.protocols() {
			s := &l.runs[p].Sample
			for vm := range s.PerVMCachePJ {
				fmt.Fprintf(&b, "cmpsim_vm_energy_pj{protocol=%q,vm=\"%d\",component=\"cache\"} %g\n", p, vm, s.PerVMCachePJ[vm])
				fmt.Fprintf(&b, "cmpsim_vm_energy_pj{protocol=%q,vm=\"%d\",component=\"network\"} %g\n", p, vm, s.PerVMNetPJ[vm])
			}
		}
	}
	if len(l.lanes) > 0 {
		names := make([]string, 0, len(l.lanes))
		for n := range l.lanes {
			names = append(names, n)
		}
		sort.Strings(names)
		b.WriteString("# HELP cmpsim_lane_windows_total Lookahead windows a lane participated in (retained rows).\n# TYPE cmpsim_lane_windows_total counter\n")
		b.WriteString("# HELP cmpsim_lane_events_total Events a lane dispatched inside its windows.\n# TYPE cmpsim_lane_events_total counter\n")
		b.WriteString("# HELP cmpsim_lane_stalls_total Windows a lane sat out (lookahead stalls).\n# TYPE cmpsim_lane_stalls_total counter\n")
		b.WriteString("# HELP cmpsim_lane_wait_ns_total Wall-clock nanoseconds a lane spent waiting at window barriers.\n# TYPE cmpsim_lane_wait_ns_total counter\n")
		for _, n := range names {
			v := l.lanes[n]
			for lane := 0; lane < v.Lanes; lane++ {
				fmt.Fprintf(&b, "cmpsim_lane_windows_total{run=%q,lane=\"%d\"} %d\n", n, lane, v.Windows[lane])
				fmt.Fprintf(&b, "cmpsim_lane_events_total{run=%q,lane=\"%d\"} %d\n", n, lane, v.Events[lane])
				fmt.Fprintf(&b, "cmpsim_lane_stalls_total{run=%q,lane=\"%d\"} %d\n", n, lane, v.Stalls[lane])
				fmt.Fprintf(&b, "cmpsim_lane_wait_ns_total{run=%q,lane=\"%d\"} %d\n", n, lane, v.WaitNS[lane])
			}
		}
	}
	b.WriteString("# HELP cmpsim_counter_total Simulation event counters (power + protocol events).\n# TYPE cmpsim_counter_total counter\n")
	for _, p := range l.protocols() {
		v := l.runs[p]
		for i, name := range v.Names {
			if i >= len(v.Sample.Counters) {
				break
			}
			fmt.Fprintf(&b, "cmpsim_counter_total{protocol=%q,counter=%q} %d\n", p, name, v.Sample.Counters[i])
		}
	}
	b.WriteString("# HELP cmpsim_link_flits_total Flits carried per directed mesh link.\n# TYPE cmpsim_link_flits_total counter\n")
	for _, p := range l.protocols() {
		v := l.runs[p]
		for idx, n := range v.Sample.LinkFlits {
			if n == 0 {
				continue
			}
			tile, dir := idx/4, mesh.Direction(idx%4)
			fmt.Fprintf(&b, "cmpsim_link_flits_total{protocol=%q,tile=\"%d\",dir=%q} %d\n",
				p, tile, mesh.DirectionName(dir), n)
		}
	}
	w.Write([]byte(b.String()))
}

// heatmap serves the HTML mesh-occupancy view, refreshed per epoch.
func (l *Live) heatmap(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	b.WriteString(`<!doctype html><html><head><meta http-equiv="refresh" content="2"><title>cmpsim telemetry</title>
<style>body{font-family:monospace;background:#111;color:#ddd;margin:20px}
table{border-collapse:collapse;margin:8px 0 24px}td{width:42px;height:42px;text-align:center;border:1px solid #333;font-size:11px}
h2{margin-bottom:2px}.meta{color:#8a8;font-size:13px}a{color:#9cf}</style></head><body>
<h1>cmpsim live telemetry</h1>
<p class="meta"><a href="/metrics">/metrics</a> · <a href="/debug/vars">/debug/vars</a> · <a href="/debug/pprof/">/debug/pprof</a> · mesh cells show flits crossing each tile's outgoing links in the last epoch</p>`)
	if len(l.runs) == 0 && len(l.lanes) == 0 {
		b.WriteString("<p>no samples yet — the first epoch has not completed.</p>")
	}
	for _, p := range l.protocols() {
		v := l.runs[p]
		s := &v.Sample
		fmt.Fprintf(&b, "<h2>%s / %s</h2><p class=\"meta\">cycle %d · phase %s · %d refs · queue %d · mshr %d · energy cache %.3g pJ, net %.3g pJ</p>",
			html.EscapeString(p), html.EscapeString(v.Workload), s.Cycle, html.EscapeString(s.Phase),
			s.Refs, s.QueueDepth, s.MSHRPending, s.EnergyCachePJ, s.EnergyLinkPJ+s.EnergyRoutingPJ)
		// Per-tile epoch occupancy: sum the tile's four outgoing links,
		// minus the previous epoch's cumulative totals.
		tiles := v.Grid.Tiles()
		occ := make([]uint64, tiles)
		var maxOcc uint64 = 1
		for idx, n := range s.LinkFlits {
			if idx < len(v.PrevLinkFlits) {
				n -= v.PrevLinkFlits[idx]
			}
			if t := idx / 4; t < tiles {
				occ[t] += n
			}
		}
		for _, n := range occ {
			if n > maxOcc {
				maxOcc = n
			}
		}
		b.WriteString("<table>")
		for y := 0; y < v.Grid.Rows; y++ {
			b.WriteString("<tr>")
			for x := 0; x < v.Grid.Cols; x++ {
				t := v.Grid.At(x, y)
				heat := float64(occ[t]) / float64(maxOcc)
				fmt.Fprintf(&b, `<td style="background:rgba(220,80,40,%.2f)" title="tile %d: %d flits/epoch">%d</td>`,
					heat, int(t), occ[t], occ[t])
			}
			b.WriteString("</tr>")
		}
		b.WriteString("</table>")
		if len(s.PerVMCachePJ) > 0 {
			b.WriteString(`<table style="margin-top:-16px"><tr><td style="width:auto;padding:0 8px">VM</td>`)
			for vm := range s.PerVMCachePJ {
				fmt.Fprintf(&b, `<td style="width:auto;padding:0 8px">%d</td>`, vm)
			}
			b.WriteString(`</tr><tr><td style="width:auto;padding:0 8px">cache pJ</td>`)
			for _, pj := range s.PerVMCachePJ {
				fmt.Fprintf(&b, `<td style="width:auto;padding:0 8px">%.3g</td>`, pj)
			}
			b.WriteString(`</tr><tr><td style="width:auto;padding:0 8px">net pJ</td>`)
			for _, pj := range s.PerVMNetPJ {
				fmt.Fprintf(&b, `<td style="width:auto;padding:0 8px">%.3g</td>`, pj)
			}
			b.WriteString("</tr></table>")
		}
	}
	if len(l.lanes) > 0 {
		laneNames := make([]string, 0, len(l.lanes))
		for n := range l.lanes {
			laneNames = append(laneNames, n)
		}
		sort.Strings(laneNames)
		for _, n := range laneNames {
			v := l.lanes[n]
			fmt.Fprintf(&b, "<h2>lanes / %s</h2><p class=\"meta\">%d lanes · lookahead %d cycles · %d windows total</p><table>",
				html.EscapeString(n), v.Lanes, v.Lookahead, v.TotalWindows)
			b.WriteString(`<tr><td style="width:auto;padding:0 8px">lane</td><td style="width:auto;padding:0 8px">windows</td><td style="width:auto;padding:0 8px">events</td><td style="width:auto;padding:0 8px">stalls</td><td style="width:auto;padding:0 8px">barrier wait</td></tr>`)
			for lane := 0; lane < v.Lanes; lane++ {
				fmt.Fprintf(&b, `<tr><td style="width:auto;padding:0 8px">%d</td><td style="width:auto;padding:0 8px">%d</td><td style="width:auto;padding:0 8px">%d</td><td style="width:auto;padding:0 8px">%d</td><td style="width:auto;padding:0 8px">%.2fms</td></tr>`,
					lane, v.Windows[lane], v.Events[lane], v.Stalls[lane], float64(v.WaitNS[lane])/1e6)
			}
			b.WriteString("</table>")
		}
	}
	b.WriteString("</body></html>")
	w.Write([]byte(b.String()))
}

// expvarOnce guards the process-global expvar publication (tests may
// start several servers).
var expvarOnce sync.Once

// Serve starts the telemetry endpoint on addr and returns the
// listener's actual address (useful with ":0"). A bare ":port" addr
// binds localhost only — the endpoint exposes pprof, so exposing it
// beyond the local machine must be an explicit "0.0.0.0:port" choice.
// The server runs until the process exits.
func Serve(addr string, live *Live) (string, error) {
	if strings.HasPrefix(addr, ":") {
		addr = "127.0.0.1" + addr
	}
	expvarOnce.Do(func() {
		expvar.Publish("cmpsim", expvar.Func(func() any {
			live.mu.Lock()
			defer live.mu.Unlock()
			out := map[string]any{}
			for p, v := range live.runs {
				out[p] = map[string]any{
					"workload": v.Workload, "cycle": v.Sample.Cycle, "phase": v.Sample.Phase,
					"refs": v.Sample.Refs, "events": v.Sample.Events,
					"queue_depth": v.Sample.QueueDepth, "mshr_pending": v.Sample.MSHRPending,
				}
			}
			return out
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/", live.heatmap)
	mux.HandleFunc("/metrics", live.metrics)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
