// Package mesh models the on-chip interconnection network: a 2D mesh
// with XY (dimension-order) routing, per-link contention, and the
// spanning-tree broadcast support the paper adds to Garnet.
//
// The model is contention-aware but message-granular: when a message is
// sent, its whole path is walked immediately, reserving each directed
// link for the message's flit count and accumulating per-hop latency
// (2 cycles/link + 2 cycles/switch + 1 cycle/router in Table III).
// Because the simulation kernel executes same-cycle events in FIFO
// order, reservations serialize deterministically.
package mesh

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topo"
)

// Direction of a mesh link leaving a router.
type Direction int

// Mesh link directions.
const (
	East Direction = iota
	West
	North
	South
	numDirections
)

// Config holds the network timing and packet geometry (Table III).
type Config struct {
	LinkCycles   int  // cycles to traverse one link
	SwitchCycles int  // cycles through the crossbar/switch
	RouterCycles int  // cycles of router pipeline
	ControlFlits int  // flits in a control packet
	DataFlits    int  // flits in a data packet
	Contention   bool // model per-link occupancy
}

// DefaultConfig is the paper's Table III network: 2 cycles/link,
// 2 cycles/switch, 1 cycle/router, 16-byte flits, 1-flit control and
// 5-flit data packets, contention on.
func DefaultConfig() Config {
	return Config{
		LinkCycles:   2,
		SwitchCycles: 2,
		RouterCycles: 1,
		ControlFlits: 1,
		DataFlits:    5,
		Contention:   true,
	}
}

// Stats aggregates the network activity counters the power model needs.
type Stats struct {
	Messages         uint64 // unicast messages sent
	Broadcasts       uint64 // broadcast operations
	FlitLinkCrossing uint64 // flit x link traversals (link energy unit)
	RouterTraversals uint64 // message x router traversals (routing energy unit)
	TotalHops        uint64 // link hops summed over unicast messages
	TotalLatency     uint64 // head latency summed over unicast messages
	QueueingCycles   uint64 // cycles spent waiting on busy links
}

// Observer receives one callback per injected message or broadcast,
// at injection time (when the whole path has been walked and the
// arrival scheduled). It is the telemetry tap for causal transaction
// tracing: because it fires synchronously inside Send, the kernel's
// causal tag at call time identifies the transaction the message
// belongs to. Observers must be pure — they may not send messages or
// schedule events.
type Observer interface {
	// Message reports one unicast: its endpoints, flit count, the
	// injection and arrival cycles, and the link hops traversed. The
	// route itself is not passed because XY routing makes it a pure
	// function of (src, dst).
	Message(src, dst topo.Tile, flits int, depart, arrive sim.Time, hops int)
	// BroadcastDone reports one spanning-tree (or emulated unicast)
	// broadcast: the source, flit count, tree links used and the
	// latency to the farthest destination.
	BroadcastDone(src topo.Tile, flits, links int, maxLat sim.Time)
}

// Network is the mesh interconnect for one chip.
type Network struct {
	kernel *sim.Kernel
	grid   topo.Grid
	cfg    Config

	linkFree  []sim.Time // [tile*numDirections + dir] next free cycle
	linkFlits []uint64   // [tile*numDirections + dir] flits carried, ever
	stats     Stats
	obs       Observer // nil = no tap

	// Sharded delivery (SetSharding): each tile's arrivals are scheduled
	// on its shard's kernel lane, and cross-shard deliveries are checked
	// against the conservative lookahead. nil = all deliveries on kernel.
	deliver []*sim.Kernel // [tile] delivery kernel
	shardOf []int         // [tile] shard index

	// Parallel-window state (only used while a lane kernel reports
	// Deferring). Cross-tile sends mutate link reservations and the
	// shared counters, so inside a window they are logged as pooled
	// barrier-deferred ops and replayed at the barrier in exact merged
	// serial order. Same-tile sends touch no links; their counters go to
	// the sender lane's private bank, folded in by Stats(). The pools
	// are per sender lane: a lane's goroutine pops during its window,
	// the single-threaded barrier pushes back.
	laneStats []Stats      // [lane] same-tile counter bank
	sendPool  [][]*sendOp  // [lane] free deferred-unicast ops
	bcastPool [][]*bcastOp // [lane] free deferred-broadcast ops

	// Scratch buffer reused across calls to keep the broadcast hot
	// path allocation-free. Fully rewritten before use and never live
	// past the call that fills it (deliveries are scheduled through
	// the kernel, so Broadcast never re-enters).
	arrival []sim.Time // per-tile broadcast arrival, indexed by tile id
}

// sendOp is one cross-tile unicast deferred to the window barrier.
type sendOp struct {
	n        *Network
	src, dst topo.Tile
	lane     int32
	flits    int32
	sendAt   sim.Time
	tag      uint64
	run      func()    // closure delivery form (nil when argFn used)
	argFn    func(any) // argument delivery form
	arg      any
}

// bcastOp is one spanning-tree broadcast deferred to the window barrier.
type bcastOp struct {
	n       *Network
	src     topo.Tile
	lane    int32
	flits   int32
	sendAt  sim.Time
	tag     uint64
	deliver func(dst topo.Tile)
}

// New returns a network over grid driven by kernel.
func New(kernel *sim.Kernel, grid topo.Grid, cfg Config) *Network {
	return &Network{
		kernel:    kernel,
		grid:      grid,
		cfg:       cfg,
		linkFree:  make([]sim.Time, grid.Tiles()*int(numDirections)),
		linkFlits: make([]uint64, grid.Tiles()*int(numDirections)),
		arrival:   make([]sim.Time, grid.Tiles()),
	}
}

// SetObserver attaches (or with nil detaches) the message tap.
func (n *Network) SetObserver(o Observer) { n.obs = o }

// SetSharding routes each tile's deliveries to its shard's kernel lane:
// deliver[shardOf[t]] is the kernel that dispatches arrivals at tile t.
// The mesh is the only cross-shard channel in the system, so this is
// the single place conservative sharding touches message flow; the
// per-delivery lookahead assert below is the ownership guarantee the
// executors rely on. Pass (nil, nil) to revert to single-kernel mode.
func (n *Network) SetSharding(deliver []*sim.Kernel, shardOf []int) {
	if deliver == nil {
		n.deliver, n.shardOf = nil, nil
		n.laneStats, n.sendPool, n.bcastPool = nil, nil, nil
		return
	}
	lanes := 0
	for _, s := range shardOf {
		if s+1 > lanes {
			lanes = s + 1
		}
	}
	n.laneStats = make([]Stats, lanes)
	n.sendPool = make([][]*sendOp, lanes)
	n.bcastPool = make([][]*bcastOp, lanes)
	if len(shardOf) != n.grid.Tiles() {
		panic(fmt.Sprintf("mesh: shard map covers %d tiles, grid has %d", len(shardOf), n.grid.Tiles()))
	}
	kernels := make([]*sim.Kernel, n.grid.Tiles())
	for t, s := range shardOf {
		if s < 0 || s >= len(deliver) {
			panic(fmt.Sprintf("mesh: tile %d mapped to shard %d of %d", t, s, len(deliver)))
		}
		kernels[t] = deliver[s]
	}
	n.deliver, n.shardOf = kernels, shardOf
}

// Lookahead returns the conservative synchronization horizon the mesh
// guarantees: any message between distinct tiles takes at least one
// full hop (link + switch + router), so a shard never receives work
// less than Lookahead cycles in the future from another shard.
func (n *Network) Lookahead() sim.Time { return n.hopLatency() }

// BoundaryLinks counts the directed mesh links whose endpoints lie in
// different shards under the tile->shard map — the communication
// surface a partition exposes (fewer boundary links means less
// cross-shard traffic to synchronize).
func BoundaryLinks(grid topo.Grid, shardOf []int) int {
	if len(shardOf) != grid.Tiles() {
		panic("mesh: shard map does not cover the grid")
	}
	cross := 0
	for t := 0; t < grid.Tiles(); t++ {
		x, y := grid.Coord(topo.Tile(t))
		if x+1 < grid.Cols && shardOf[t] != shardOf[grid.At(x+1, y)] {
			cross += 2 // east + west
		}
		if y+1 < grid.Rows && shardOf[t] != shardOf[grid.At(x, y+1)] {
			cross += 2 // south + north
		}
	}
	return cross
}

// deliverKernel returns the kernel that dispatches arrivals at dst.
func (n *Network) deliverKernel(dst topo.Tile) *sim.Kernel {
	if n.deliver == nil {
		return n.kernel
	}
	return n.deliver[dst]
}

// checkLookahead asserts the conservative-PDES ownership contract on a
// cross-shard delivery: the arrival must lie at least one hop latency
// past injection time. Unreachable for a correctly routed message (a
// cross-shard message crosses >= 1 boundary link by construction), so
// a hit means the partition or the timing model was broken.
func (n *Network) checkLookahead(src, dst topo.Tile, now, at sim.Time) {
	if n.shardOf == nil || n.shardOf[src] == n.shardOf[dst] {
		return
	}
	if at < now+n.hopLatency() {
		panic(fmt.Sprintf("mesh: cross-shard delivery %d->%d at +%d cycles, below lookahead %d",
			src, dst, at-now, n.hopLatency()))
	}
}

// LinkFlits copies the per-directed-link flit counters into dst
// (allocating when dst is too small) and returns it. Index layout is
// int(tile)*4 + int(dir); use DirectionName for labels. The counters
// are monotonic over the whole run (never reset), so epoch deltas
// give per-link occupancy.
func (n *Network) LinkFlits(dst []uint64) []uint64 {
	if cap(dst) < len(n.linkFlits) {
		dst = make([]uint64, len(n.linkFlits))
	}
	dst = dst[:len(n.linkFlits)]
	copy(dst, n.linkFlits)
	return dst
}

// NumLinkSlots returns the length of the per-link counter vector
// (tiles x 4 directions; edge slots exist but never carry flits).
func (n *Network) NumLinkSlots() int { return len(n.linkFlits) }

// DirectionName returns the lowercase name of a link direction.
func DirectionName(d Direction) string {
	switch d {
	case East:
		return "east"
	case West:
		return "west"
	case North:
		return "north"
	case South:
		return "south"
	}
	return "?"
}

// Stats returns a copy of the accumulated counters, with any per-lane
// same-tile banks folded in. The banks hold plain sums, so the merged
// value is identical to what a serial run accumulates in one struct.
func (n *Network) Stats() Stats {
	s := n.stats
	for i := range n.laneStats {
		b := &n.laneStats[i]
		s.Messages += b.Messages
		s.Broadcasts += b.Broadcasts
		s.FlitLinkCrossing += b.FlitLinkCrossing
		s.RouterTraversals += b.RouterTraversals
		s.TotalHops += b.TotalHops
		s.TotalLatency += b.TotalLatency
		s.QueueingCycles += b.QueueingCycles
	}
	return s
}

// ResetStats zeroes the activity counters (used to discard a warmup
// phase); link reservations are left intact.
func (n *Network) ResetStats() {
	n.stats = Stats{}
	for i := range n.laneStats {
		n.laneStats[i] = Stats{}
	}
}

// Grid returns the mesh dimensions.
func (n *Network) Grid() topo.Grid { return n.grid }

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// HopLatency returns the head latency of one full mesh hop (link +
// switch + router). It doubles as the conservative sharding lookahead:
// no message between distinct tiles can arrive sooner.
func (c Config) HopLatency() sim.Time {
	return sim.Time(c.LinkCycles + c.SwitchCycles + c.RouterCycles)
}

func (n *Network) hopLatency() sim.Time { return n.cfg.HopLatency() }

// reserveLink reserves the directed link (tile, dir) for flits cycles
// starting no earlier than at; it returns the actual start time.
func (n *Network) reserveLink(tile topo.Tile, dir Direction, at sim.Time, flits int) sim.Time {
	idx := int(tile)*int(numDirections) + int(dir)
	n.linkFlits[idx] += uint64(flits)
	start := at
	if n.cfg.Contention && n.linkFree[idx] > start {
		n.stats.QueueingCycles += uint64(n.linkFree[idx] - start)
		start = n.linkFree[idx]
	}
	if n.cfg.Contention {
		n.linkFree[idx] = start + sim.Time(flits)
	}
	return start
}

// Delivery describes the outcome of a Send: when the message arrives
// and how much network it consumed.
type Delivery struct {
	Latency sim.Time // head-flit latency plus serialization
	Hops    int      // links traversed
	Routers int      // routers traversed (hops + 1)
}

// Send injects a message of flits flits from src to dst and schedules
// deliver to run at its arrival time. It returns the computed delivery
// metadata immediately (the model walks the path at injection time).
func (n *Network) Send(src, dst topo.Tile, flits int, deliver func()) Delivery {
	return n.send(src, dst, flits, deliver, nil, nil)
}

// SendArg is Send through the kernel's non-capturing fast path:
// deliver(arg) runs at arrival. Hot senders that would otherwise
// build a fresh closure per message pass a long-lived function plus a
// small argument instead.
func (n *Network) SendArg(src, dst topo.Tile, flits int, deliver func(any), arg any) Delivery {
	return n.send(src, dst, flits, nil, deliver, arg)
}

func (n *Network) send(src, dst topo.Tile, flits int, run func(), argFn func(any), arg any) Delivery {
	if !n.grid.Contains(src) || !n.grid.Contains(dst) {
		panic(fmt.Sprintf("mesh: Send between invalid tiles %d -> %d", src, dst))
	}
	if flits <= 0 {
		panic("mesh: message must have at least one flit")
	}
	// The clock is read from the sender tile's lane: every Send executes
	// on the lane owning src (the engines schedule their handlers on the
	// executing tile's kernel). Under the sequential executors all lane
	// clocks agree at dispatch, so this equals the old hub read; inside
	// a parallel window it is the only clock that exists.
	k := n.deliverKernel(src)
	now := k.Now()
	if src == dst {
		// Same-tile delivery through the local router/crossbar only. No
		// link is touched, so this path stays in-window under the parallel
		// executor; its counters go to the sender lane's bank there.
		st := &n.stats
		if k.Deferring() {
			st = &n.laneStats[n.shardOf[src]]
		}
		lat := sim.Time(n.cfg.SwitchCycles + n.cfg.RouterCycles)
		st.Messages++
		st.RouterTraversals++
		st.TotalLatency += uint64(lat)
		n.schedule(dst, now+lat, run, argFn, arg)
		if n.obs != nil {
			n.obs.Message(src, dst, flits, now, now+lat, 0)
		}
		return Delivery{Latency: lat, Hops: 0, Routers: 1}
	}
	if k.Deferring() {
		return n.deferSend(k, src, dst, flits, run, argFn, arg, now)
	}
	n.stats.Messages++
	t, hops := n.walkXY(src, dst, now, flits)
	// Tail flit serialization at the destination.
	lat := t - now + sim.Time(flits-1)
	n.stats.FlitLinkCrossing += uint64(hops * flits)
	n.stats.RouterTraversals += uint64(hops + 1)
	n.stats.TotalHops += uint64(hops)
	n.stats.TotalLatency += uint64(lat)
	n.checkLookahead(src, dst, now, now+lat)
	n.schedule(dst, now+lat, run, argFn, arg)
	if n.obs != nil {
		n.obs.Message(src, dst, flits, now, now+lat, hops)
	}
	return Delivery{Latency: lat, Hops: hops, Routers: hops + 1}
}

// walkXY walks the XY route from src to dst starting at cycle at,
// reserving each link crossing as the head flit reaches it (no
// materialized path). It returns the head arrival time and hop count.
func (n *Network) walkXY(src, dst topo.Tile, at sim.Time, flits int) (sim.Time, int) {
	x, y := n.grid.Coord(src)
	dx, dy := n.grid.Coord(dst)
	t := at
	hops := 0
	for x != dx {
		dir := East
		nx := x + 1
		if dx < x {
			dir = West
			nx = x - 1
		}
		start := n.reserveLink(n.grid.At(x, y), dir, t, flits)
		t = start + n.hopLatency()
		hops++
		x = nx
	}
	for y != dy {
		dir := South
		ny := y + 1
		if dy < y {
			dir = North
			ny = y - 1
		}
		start := n.reserveLink(n.grid.At(x, y), dir, t, flits)
		t = start + n.hopLatency()
		hops++
		y = ny
	}
	return t, hops
}

// deferSend logs a cross-tile unicast as a barrier-deferred op: link
// reservations and the shared counters mutate only at the barrier, in
// exact merged serial order. The returned Delivery carries the exact
// hop count (a pure function of src/dst under XY routing — the only
// field the engines read); Latency is not computable before the link
// walk and reports zero.
func (n *Network) deferSend(k *sim.Kernel, src, dst topo.Tile, flits int, run func(), argFn func(any), arg any, now sim.Time) Delivery {
	if n.obs != nil {
		panic("mesh: observer attached during a parallel window")
	}
	lane := n.shardOf[src]
	var op *sendOp
	if pool := n.sendPool[lane]; len(pool) > 0 {
		op = pool[len(pool)-1]
		n.sendPool[lane] = pool[:len(pool)-1]
	} else {
		op = &sendOp{}
	}
	*op = sendOp{
		n: n, src: src, dst: dst, lane: int32(lane), flits: int32(flits),
		sendAt: now, tag: k.Tag(), run: run, argFn: argFn, arg: arg,
	}
	k.Defer(1, resolveSend, op)
	hops := n.grid.Hops(src, dst)
	return Delivery{Latency: 0, Hops: hops, Routers: hops + 1}
}

// runClosure adapts the closure delivery form to InjectResolved's
// argument form.
func runClosure(a any) { a.(func())() }

// resolveSend replays a deferred unicast at the window barrier: the
// link walk, the counters, and the delivery injection with the op's
// reserved final stamp.
func resolveSend(a any, seqBase uint64) {
	op := a.(*sendOp)
	n := op.n
	flits := int(op.flits)
	n.stats.Messages++
	t, hops := n.walkXY(op.src, op.dst, op.sendAt, flits)
	lat := t - op.sendAt + sim.Time(flits-1)
	n.stats.FlitLinkCrossing += uint64(hops * flits)
	n.stats.RouterTraversals += uint64(hops + 1)
	n.stats.TotalHops += uint64(hops)
	n.stats.TotalLatency += uint64(lat)
	n.checkLookahead(op.src, op.dst, op.sendAt, op.sendAt+lat)
	dk := n.deliverKernel(op.dst)
	if op.argFn != nil {
		dk.InjectResolved(op.sendAt+lat, seqBase, op.tag, op.argFn, op.arg)
	} else {
		dk.InjectResolved(op.sendAt+lat, seqBase, op.tag, runClosure, op.run)
	}
	lane := op.lane
	*op = sendOp{} // do not retain payloads in the pool
	n.sendPool[lane] = append(n.sendPool[lane], op)
}

// schedule dispatches to the destination tile's kernel, through the
// closure or argument form.
func (n *Network) schedule(dst topo.Tile, at sim.Time, run func(), argFn func(any), arg any) {
	k := n.deliverKernel(dst)
	if argFn != nil {
		k.AtArg(at, argFn, arg)
	} else {
		k.At(at, run)
	}
}

// BroadcastDelivery describes the network usage of one broadcast.
type BroadcastDelivery struct {
	Links        int      // spanning-tree edges used
	Routers      int      // routers traversed
	Destinations int      // tiles reached (excluding source)
	MaxLatency   sim.Time // latency to the farthest tile
}

// Broadcast delivers a flits-flit message from src to every other tile
// using a dimension-order spanning tree: the message first spreads
// east/west along src's row, then each row tile spreads north/south
// along its column. Each tree edge carries the message exactly once,
// which is the point of hardware broadcast support versus 63 unicasts.
// deliver runs once per destination tile at its arrival time.
func (n *Network) Broadcast(src topo.Tile, flits int, deliver func(dst topo.Tile)) BroadcastDelivery {
	if !n.grid.Contains(src) {
		panic("mesh: Broadcast from invalid tile")
	}
	k := n.deliverKernel(src)
	now := k.Now()
	if k.Deferring() {
		return n.deferBroadcast(k, src, flits, deliver, now)
	}
	n.stats.Broadcasts++
	links := n.walkTree(src, flits, now)

	var maxLat sim.Time
	dests := 0
	// One adapter closure serves all destinations; each delivery is
	// scheduled through the AtArg fast path with the tile id as the
	// argument, so a 64-tile broadcast costs one allocation instead of
	// 63 per-destination closures.
	deliverTo := func(a any) { deliver(a.(topo.Tile)) }
	// Deliveries are scheduled in tile order: same-cycle events run in
	// scheduling order, so iterating tiles in arbitrary order would
	// make runs nondeterministic.
	arrival := n.arrival
	for i := 0; i < n.grid.Tiles(); i++ {
		t := topo.Tile(i)
		if t == src {
			continue
		}
		at := arrival[t]
		dests++
		lat := at - now + sim.Time(flits-1)
		if lat > maxLat {
			maxLat = lat
		}
		n.checkLookahead(src, t, now, at+sim.Time(flits-1))
		n.deliverKernel(t).AtArg(at+sim.Time(flits-1), deliverTo, t)
	}
	routers := n.grid.Tiles() // every router forwards/ejects the message
	n.stats.FlitLinkCrossing += uint64(links * flits)
	n.stats.RouterTraversals += uint64(routers)
	if n.obs != nil {
		n.obs.BroadcastDone(src, flits, links, maxLat)
	}
	return BroadcastDelivery{
		Links:        links,
		Routers:      routers,
		Destinations: dests,
		MaxLatency:   maxLat,
	}
}

// walkTree reserves the dimension-order spanning tree for a broadcast
// issued from src at the given cycle, filling n.arrival with each
// tile's head arrival time. The spanning tree reaches every tile, and
// each tile's arrival is written before any dependent read, so the
// scratch slice needs no clearing between broadcasts. Returns the edge
// count (always Tiles-1 on a full mesh).
func (n *Network) walkTree(src topo.Tile, flits int, at sim.Time) int {
	sx, sy := n.grid.Coord(src)
	arrival := n.arrival
	arrival[src] = at

	links := 0
	crossLink := func(from topo.Tile, dir Direction, to topo.Tile) {
		start := n.reserveLink(from, dir, arrival[from], flits)
		arrival[to] = start + n.hopLatency()
		links++
	}
	// Phase 1: spread along the source row.
	for x := sx + 1; x < n.grid.Cols; x++ {
		crossLink(n.grid.At(x-1, sy), East, n.grid.At(x, sy))
	}
	for x := sx - 1; x >= 0; x-- {
		crossLink(n.grid.At(x+1, sy), West, n.grid.At(x, sy))
	}
	// Phase 2: from every tile of the source row, spread along columns.
	for x := 0; x < n.grid.Cols; x++ {
		for y := sy + 1; y < n.grid.Rows; y++ {
			crossLink(n.grid.At(x, y-1), South, n.grid.At(x, y))
		}
		for y := sy - 1; y >= 0; y-- {
			crossLink(n.grid.At(x, y+1), North, n.grid.At(x, y))
		}
	}
	return links
}

// deferBroadcast logs a broadcast as a single barrier-deferred op that
// reserves Tiles-1 final stamps, one per destination in tile order —
// the same order the in-window path schedules deliveries in. Tree
// shape facts are reported exactly; MaxLatency is contention-dependent
// and reports zero (no engine reads it).
func (n *Network) deferBroadcast(k *sim.Kernel, src topo.Tile, flits int, deliver func(dst topo.Tile), now sim.Time) BroadcastDelivery {
	if n.obs != nil {
		panic("mesh: observer attached during a parallel window")
	}
	lane := n.shardOf[src]
	var op *bcastOp
	if pool := n.bcastPool[lane]; len(pool) > 0 {
		op = pool[len(pool)-1]
		n.bcastPool[lane] = pool[:len(pool)-1]
	} else {
		op = &bcastOp{}
	}
	*op = bcastOp{
		n: n, src: src, lane: int32(lane), flits: int32(flits),
		sendAt: now, tag: k.Tag(), deliver: deliver,
	}
	k.Defer(n.grid.Tiles()-1, resolveBroadcast, op)
	return BroadcastDelivery{
		Links:        n.grid.Tiles() - 1,
		Routers:      n.grid.Tiles(),
		Destinations: n.grid.Tiles() - 1,
	}
}

// resolveBroadcast replays a deferred broadcast at the window barrier:
// the spanning-tree walk, the counters, and one delivery injection per
// destination in tile order consuming seqBase..seqBase+Tiles-2.
func resolveBroadcast(a any, seqBase uint64) {
	op := a.(*bcastOp)
	n := op.n
	flits := int(op.flits)
	n.stats.Broadcasts++
	links := n.walkTree(op.src, flits, op.sendAt)
	deliver := op.deliver
	deliverTo := func(a any) { deliver(a.(topo.Tile)) }
	arrival := n.arrival
	seq := seqBase
	for i := 0; i < n.grid.Tiles(); i++ {
		t := topo.Tile(i)
		if t == op.src {
			continue
		}
		at := arrival[t] + sim.Time(flits-1)
		n.checkLookahead(op.src, t, op.sendAt, at)
		n.deliverKernel(t).InjectResolved(at, seq, op.tag, deliverTo, t)
		seq++
	}
	n.stats.FlitLinkCrossing += uint64(links * flits)
	n.stats.RouterTraversals += uint64(n.grid.Tiles())
	lane := op.lane
	*op = bcastOp{}
	n.bcastPool[lane] = append(n.bcastPool[lane], op)
}

// UnicastBroadcast emulates a chip without hardware broadcast support:
// the message is sent as an independent unicast to every other tile.
// Used by the ablation benchmarks.
func (n *Network) UnicastBroadcast(src topo.Tile, flits int, deliver func(dst topo.Tile)) BroadcastDelivery {
	var bd BroadcastDelivery
	deliverTo := func(a any) { deliver(a.(topo.Tile)) }
	for t := topo.Tile(0); int(t) < n.grid.Tiles(); t++ {
		if t == src {
			continue
		}
		d := n.SendArg(src, t, flits, deliverTo, t)
		bd.Links += d.Hops
		bd.Routers += d.Routers
		bd.Destinations++
		if d.Latency > bd.MaxLatency {
			bd.MaxLatency = d.Latency
		}
	}
	return bd
}

// MeanDistance returns the theoretical average Manhattan distance
// between two uniformly random distinct tiles of an n-tile square
// mesh, which the paper approximates as (2/3)*sqrt(ntc) per dimension
// pair (Section V-D uses 2/3*sqrt(ntc) links per leg... the exact
// value is computed here by enumeration).
func MeanDistance(grid topo.Grid) float64 {
	total, pairs := 0, 0
	for a := 0; a < grid.Tiles(); a++ {
		for b := 0; b < grid.Tiles(); b++ {
			if a == b {
				continue
			}
			total += grid.Hops(topo.Tile(a), topo.Tile(b))
			pairs++
		}
	}
	return float64(total) / float64(pairs)
}
