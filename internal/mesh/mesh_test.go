package mesh

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/topo"
)

func newNet(contention bool) (*sim.Kernel, *Network) {
	k := sim.NewKernel(1)
	cfg := DefaultConfig()
	cfg.Contention = contention
	return k, New(k, topo.NewGrid(8, 8), cfg)
}

func TestSendLatencyUncontended(t *testing.T) {
	k, n := newNet(false)
	g := n.Grid()
	delivered := false
	d := n.Send(g.At(0, 0), g.At(3, 0), 1, func() { delivered = true })
	// 3 hops x (2+2+1) + 0 serialization = 15 cycles.
	if d.Latency != 15 {
		t.Errorf("latency = %d, want 15", d.Latency)
	}
	if d.Hops != 3 || d.Routers != 4 {
		t.Errorf("hops/routers = %d/%d, want 3/4", d.Hops, d.Routers)
	}
	k.Run(0)
	if !delivered || k.Now() != 15 {
		t.Errorf("delivered=%v at %d, want true at 15", delivered, k.Now())
	}
}

func TestSendDataSerialization(t *testing.T) {
	_, n := newNet(false)
	g := n.Grid()
	d := n.Send(g.At(0, 0), g.At(1, 0), 5, func() {})
	// 1 hop x 5 + (5-1) tail = 9 cycles.
	if d.Latency != 9 {
		t.Errorf("latency = %d, want 9", d.Latency)
	}
}

func TestSendSameTile(t *testing.T) {
	k, n := newNet(true)
	g := n.Grid()
	d := n.Send(g.At(2, 2), g.At(2, 2), 1, func() {})
	if d.Hops != 0 || d.Routers != 1 {
		t.Errorf("same-tile hops/routers = %d/%d, want 0/1", d.Hops, d.Routers)
	}
	if d.Latency != 3 { // switch 2 + router 1
		t.Errorf("same-tile latency = %d, want 3", d.Latency)
	}
	k.Run(0)
	if n.Stats().FlitLinkCrossing != 0 {
		t.Error("same-tile send crossed a link")
	}
}

func TestXYRoutingHops(t *testing.T) {
	_, n := newNet(false)
	g := n.Grid()
	if err := quick.Check(func(a, b uint8) bool {
		src, dst := topo.Tile(int(a)%64), topo.Tile(int(b)%64)
		d := n.Send(src, dst, 1, func() {})
		return d.Hops == g.Hops(src, dst)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestContentionSerializesLink(t *testing.T) {
	k, n := newNet(true)
	g := n.Grid()
	var first, second sim.Time
	n.Send(g.At(0, 0), g.At(1, 0), 5, func() { first = k.Now() })
	n.Send(g.At(0, 0), g.At(1, 0), 5, func() { second = k.Now() })
	k.Run(0)
	if second <= first {
		t.Errorf("contended messages not serialized: first=%d second=%d", first, second)
	}
	if n.Stats().QueueingCycles == 0 {
		t.Error("no queueing cycles recorded under contention")
	}
}

func TestNoContentionIgnoresOccupancy(t *testing.T) {
	k, n := newNet(false)
	g := n.Grid()
	var times []sim.Time
	for i := 0; i < 3; i++ {
		n.Send(g.At(0, 0), g.At(1, 0), 5, func() { times = append(times, k.Now()) })
	}
	k.Run(0)
	if times[0] != times[1] || times[1] != times[2] {
		t.Errorf("contention off should deliver simultaneously: %v", times)
	}
}

func TestDifferentLinksNoInterference(t *testing.T) {
	k, n := newNet(true)
	g := n.Grid()
	var aAt, bAt sim.Time
	n.Send(g.At(0, 0), g.At(1, 0), 5, func() { aAt = k.Now() })
	n.Send(g.At(0, 1), g.At(1, 1), 5, func() { bAt = k.Now() })
	k.Run(0)
	if aAt != bAt {
		t.Errorf("disjoint paths interfered: %d vs %d", aAt, bAt)
	}
}

func TestStatsAccumulation(t *testing.T) {
	k, n := newNet(false)
	g := n.Grid()
	n.Send(g.At(0, 0), g.At(2, 0), 5, func() {}) // 2 hops, 10 flit-links
	n.Send(g.At(0, 0), g.At(0, 1), 1, func() {}) // 1 hop, 1 flit-link
	k.Run(0)
	s := n.Stats()
	if s.Messages != 2 {
		t.Errorf("Messages = %d, want 2", s.Messages)
	}
	if s.FlitLinkCrossing != 11 {
		t.Errorf("FlitLinkCrossing = %d, want 11", s.FlitLinkCrossing)
	}
	if s.RouterTraversals != 3+2 {
		t.Errorf("RouterTraversals = %d, want 5", s.RouterTraversals)
	}
	if s.TotalHops != 3 {
		t.Errorf("TotalHops = %d, want 3", s.TotalHops)
	}
}

func TestBroadcastReachesAll(t *testing.T) {
	k, n := newNet(false)
	g := n.Grid()
	got := make(map[topo.Tile]bool)
	src := g.At(3, 4)
	bd := n.Broadcast(src, 1, func(dst topo.Tile) { got[dst] = true })
	k.Run(0)
	if len(got) != 63 {
		t.Fatalf("broadcast reached %d tiles, want 63", len(got))
	}
	if got[src] {
		t.Error("broadcast delivered to source")
	}
	if bd.Destinations != 63 {
		t.Errorf("Destinations = %d, want 63", bd.Destinations)
	}
	// Spanning tree on 64 nodes has exactly 63 edges.
	if bd.Links != 63 {
		t.Errorf("tree links = %d, want 63", bd.Links)
	}
}

func TestBroadcastCheaperThanUnicasts(t *testing.T) {
	k, n := newNet(false)
	g := n.Grid()
	tree := n.Broadcast(g.At(0, 0), 1, func(topo.Tile) {})
	k.Run(0)
	k2, n2 := newNet(false)
	uni := n2.UnicastBroadcast(g.At(0, 0), 1, func(topo.Tile) {})
	k2.Run(0)
	if tree.Links >= uni.Links {
		t.Errorf("tree broadcast (%d links) not cheaper than unicasts (%d links)",
			tree.Links, uni.Links)
	}
}

func TestBroadcastFromEveryCorner(t *testing.T) {
	g := topo.NewGrid(8, 8)
	for _, src := range []topo.Tile{g.At(0, 0), g.At(7, 0), g.At(0, 7), g.At(7, 7), g.At(4, 4)} {
		k := sim.NewKernel(1)
		n := New(k, g, DefaultConfig())
		count := 0
		n.Broadcast(src, 5, func(topo.Tile) { count++ })
		k.Run(0)
		if count != 63 {
			t.Errorf("broadcast from %d reached %d, want 63", src, count)
		}
	}
}

func TestMeanDistance8x8(t *testing.T) {
	// Exact mean for an 8x8 mesh: 2 * (64*8*8/... ) -- by symmetry each
	// dimension contributes mean |xi-xj| over distinct pairs; just
	// sanity-bound near the paper's 2/3*sqrt(64) ~ 5.33 per... the
	// paper's "10.6 links" is for a 2-leg round trip; one leg averages
	// ~5.33 links. Enumerated mean over distinct pairs is 5.3978...
	m := MeanDistance(topo.NewGrid(8, 8))
	if m < 5.0 || m < 5.33-0.5 || m > 5.8 {
		t.Errorf("MeanDistance = %v, want ~5.33-5.4", m)
	}
}

func TestSendPanicsOnBadArgs(t *testing.T) {
	_, n := newNet(false)
	for _, fn := range []func(){
		func() { n.Send(-1, 0, 1, func() {}) },
		func() { n.Send(0, 200, 1, func() {}) },
		func() { n.Send(0, 1, 0, func() {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad Send did not panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkSend(b *testing.B) {
	k, n := newNet(true)
	g := n.Grid()
	nop := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(topo.Tile(i%64), g.At(7, 7), 5, nop)
		if k.Pending() > 4096 {
			k.Run(0)
		}
	}
	k.Run(0)
}

func BenchmarkBroadcastTree(b *testing.B) {
	k, n := newNet(true)
	nop := func(topo.Tile) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Broadcast(topo.Tile(i%64), 1, nop)
		if k.Pending() > 4096 {
			k.Run(0)
		}
	}
	k.Run(0)
}

func TestUnicastBroadcastReachesAll(t *testing.T) {
	k, n := newNet(false)
	count := 0
	n.UnicastBroadcast(5, 1, func(dst topo.Tile) { count++ })
	k.Run(0)
	if count != 63 {
		t.Errorf("unicast broadcast reached %d tiles, want 63", count)
	}
}

func TestResetStats(t *testing.T) {
	k, n := newNet(false)
	n.Send(0, 5, 5, func() {})
	k.Run(0)
	if n.Stats().Messages == 0 {
		t.Fatal("no traffic before reset")
	}
	n.ResetStats()
	s := n.Stats()
	if s.Messages != 0 || s.FlitLinkCrossing != 0 || s.RouterTraversals != 0 {
		t.Errorf("ResetStats left counters: %+v", s)
	}
}

func TestBroadcastDeterministicOrder(t *testing.T) {
	// Two identical kernels must deliver broadcast events in the same
	// order (the delivery scheduling is tile-ordered, not map-ordered).
	run := func() []topo.Tile {
		k := sim.NewKernel(3)
		n := New(k, topo.NewGrid(8, 8), DefaultConfig())
		var order []topo.Tile
		n.Broadcast(9, 1, func(dst topo.Tile) { order = append(order, dst) })
		k.Run(0)
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("broadcast delivery order diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// tapObs records every observer callback for the observer tests.
type tapObs struct {
	msgs  []string
	bcast int
}

func (o *tapObs) Message(src, dst topo.Tile, flits int, depart, arrive sim.Time, hops int) {
	o.msgs = append(o.msgs, fmt.Sprintf("%d->%d f%d %d..%d h%d", src, dst, flits, depart, arrive, hops))
}

func (o *tapObs) BroadcastDone(src topo.Tile, flits, links int, maxLat sim.Time) {
	o.bcast++
	if links <= 0 || maxLat <= 0 {
		o.msgs = append(o.msgs, "bad broadcast")
	}
}

// TestObserverTap requires the observer to see every unicast with the
// exact endpoints, flit count, injection/arrival cycles and hop count
// the router computed — and to see nothing once detached.
func TestObserverTap(t *testing.T) {
	k, n := newNet(false)
	g := n.Grid()
	tap := &tapObs{}
	n.SetObserver(tap)

	d := n.Send(g.At(0, 0), g.At(3, 0), 1, func() {})
	n.Send(g.At(2, 2), g.At(2, 2), 5, func() {}) // same-tile: 0 hops
	k.Run(0)
	want := []string{
		fmt.Sprintf("0->3 f1 0..%d h3", d.Latency),
		fmt.Sprintf("18->18 f5 0..3 h0"),
	}
	if len(tap.msgs) != len(want) {
		t.Fatalf("observer saw %d messages, want %d: %v", len(tap.msgs), len(want), tap.msgs)
	}
	for i := range want {
		if tap.msgs[i] != want[i] {
			t.Errorf("message %d = %q, want %q", i, tap.msgs[i], want[i])
		}
	}

	n.SetObserver(nil)
	n.Send(g.At(0, 0), g.At(1, 0), 1, func() {})
	if len(tap.msgs) != len(want) {
		t.Error("detached observer still saw traffic")
	}
}

// TestObserverBroadcast requires one BroadcastDone per broadcast.
func TestObserverBroadcast(t *testing.T) {
	k, n := newNet(false)
	g := n.Grid()
	tap := &tapObs{}
	n.SetObserver(tap)
	n.Broadcast(g.At(1, 1), 1, func(topo.Tile) {})
	k.Run(0)
	if tap.bcast != 1 {
		t.Errorf("observer saw %d broadcasts, want 1", tap.bcast)
	}
	for _, m := range tap.msgs {
		if m == "bad broadcast" {
			t.Error("broadcast reported non-positive links or latency")
		}
	}
}

// TestLinkFlits requires the per-directed-link counters to account for
// every flit the unicast path carried, on exactly the XY-route links.
func TestLinkFlits(t *testing.T) {
	_, n := newNet(false)
	g := n.Grid()
	const flits = 5
	d := n.Send(g.At(0, 0), g.At(2, 1), flits, func() {}) // 2 east, 1 south
	var total uint64
	lf := n.LinkFlits(nil)
	if len(lf) != n.NumLinkSlots() {
		t.Fatalf("LinkFlits returned %d slots, want %d", len(lf), n.NumLinkSlots())
	}
	used := 0
	for _, v := range lf {
		total += v
		if v > 0 {
			used++
		}
	}
	if total != uint64(d.Hops*flits) {
		t.Errorf("link flits total %d, want hops*flits = %d", total, d.Hops*flits)
	}
	if used != d.Hops {
		t.Errorf("%d directed links carried flits, want %d", used, d.Hops)
	}
	// Reusing the destination slice must not allocate a fresh one.
	lf2 := n.LinkFlits(lf)
	if &lf2[0] != &lf[0] {
		t.Error("LinkFlits reallocated a sufficiently large destination slice")
	}
}

// TestDirectionName requires stable lowercase labels for the link
// direction axis of the exported per-link counters.
func TestDirectionName(t *testing.T) {
	want := map[Direction]string{East: "east", West: "west", North: "north", South: "south"}
	for d, name := range want {
		if got := DirectionName(d); got != name {
			t.Errorf("DirectionName(%d) = %q, want %q", d, got, name)
		}
	}
}

// TestSendNoAllocs gates the unicast hot path: Send plus the kernel
// dispatch of its delivery must not allocate once the kernel's node
// arena and the path scratch buffer have warmed up.
func TestSendNoAllocs(t *testing.T) {
	k, n := newNet(true)
	nop := func() {}
	cycle := func() {
		n.Send(3, 60, 5, nop)
		k.Run(0)
	}
	for i := 0; i < 32; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(500, cycle); avg != 0 {
		t.Errorf("Send+deliver allocates %.2f/op, want 0", avg)
	}
}
