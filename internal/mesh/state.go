package mesh

import (
	"fmt"

	"repro/internal/sim"
)

// NetworkState is the serializable state of the mesh: per-directed-link
// reservations and flit totals plus the activity counters. Messages in
// flight live in the kernel queue, not here, so a quiescent kernel
// implies the network itself carries only this data.
type NetworkState struct {
	LinkFree  []sim.Time
	LinkFlits []uint64
	Stats     Stats
}

// State returns a deep copy of the network's link and counter state.
func (n *Network) State() *NetworkState {
	st := &NetworkState{
		LinkFree:  make([]sim.Time, len(n.linkFree)),
		LinkFlits: make([]uint64, len(n.linkFlits)),
		Stats:     n.Stats(), // merged view: folds any per-lane banks in
	}
	copy(st.LinkFree, n.linkFree)
	copy(st.LinkFlits, n.linkFlits)
	return st
}

// RestoreState overwrites the network's link and counter state. The
// grid must match the network's construction.
func (n *Network) RestoreState(st *NetworkState) error {
	if len(st.LinkFree) != len(n.linkFree) || len(st.LinkFlits) != len(n.linkFlits) {
		return fmt.Errorf("mesh: snapshot has %d link slots, network has %d", len(st.LinkFree), len(n.linkFree))
	}
	copy(n.linkFree, st.LinkFree)
	copy(n.linkFlits, st.LinkFlits)
	n.stats = st.Stats
	for i := range n.laneStats {
		n.laneStats[i] = Stats{}
	}
	return nil
}
