package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
)

// RunCache is a content-addressed store of finished simulation runs.
// The address of a run is the SHA-256 of its full canonical
// configuration plus the git revision of the producing binary, so a
// repeated sweep resolves every already-computed cell to a disk read
// and any code change (a new revision) silently invalidates the whole
// cache — no staleness heuristics, no manual flushing. Entries are one
// JSON file each, written atomically, so concurrent writers and a
// killed sweep both leave the cache consistent.
//
// Test binaries and unstamped builds report revision "unknown", and
// builds from a modified tree report "<rev>-dirty"; entries written by
// those are only trustworthy within the same build, which is exactly
// how the tests use them.
type RunCache struct {
	dir string
	rev string
}

// cacheEntry is the on-disk format of one cached run.
type cacheEntry struct {
	Schema   int       `json:"schema"`
	Revision string    `json:"revision"`
	Run      RunRecord `json:"run"`
}

// OpenRunCache opens (creating if needed) a run cache rooted at dir.
func OpenRunCache(dir string) (*RunCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: run cache: %w", err)
	}
	return &RunCache{dir: dir, rev: Revision()}, nil
}

// Key returns the content address of cfg under this binary: the
// hex SHA-256 of the canonical (JSON) configuration and the revision.
// Every field of core.Config participates — two configs differing in
// any knob, including observation-only ones, are distinct entries.
func (c *RunCache) Key(cfg core.Config) string {
	data, err := json.Marshal(cfg)
	if err != nil {
		// core.Config is a flat struct of scalars; Marshal cannot fail.
		panic(err)
	}
	h := sha256.New()
	h.Write(data)
	h.Write([]byte{0})
	h.Write([]byte(c.rev))
	return hex.EncodeToString(h.Sum(nil))
}

func (c *RunCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Load looks cfg up. A missing entry is (nil, false, nil); a present
// entry is decoded through RunRecord.Result, so every integrity check
// a manifest decode performs (counter/breakdown consistency, known
// miss classes) also gates a cache hit. A corrupt or mismatched entry
// is a loud error, not a silent miss — delete the cache directory to
// recover.
func (c *RunCache) Load(cfg core.Config) (*core.Result, bool, error) {
	key := c.Key(cfg)
	data, err := os.ReadFile(c.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("obs: run cache: %w", err)
	}
	var ent cacheEntry
	if err := json.Unmarshal(data, &ent); err != nil {
		return nil, false, fmt.Errorf("obs: run cache: entry %s is malformed: %w", key, err)
	}
	if ent.Schema != SchemaVersion {
		// A schema change without a revision change can only happen in
		// unstamped builds; treat the stale entry as a miss so the run
		// is simply recomputed and overwritten.
		return nil, false, nil
	}
	if ent.Run.Config != cfg {
		return nil, false, fmt.Errorf("obs: run cache: entry %s was stored for a different config (hash collision or tampering)", key)
	}
	res, err := ent.Run.Result()
	if err != nil {
		return nil, false, fmt.Errorf("obs: run cache: entry %s: %w", key, err)
	}
	return res, true, nil
}

// Store writes a finished run into the cache, atomically (write to a
// temp file in the same directory, then rename), so readers never see
// a partial entry and the last of two concurrent writers of the same
// key wins with identical content.
func (c *RunCache) Store(res *core.Result) error {
	ent := cacheEntry{Schema: SchemaVersion, Revision: c.rev, Run: FromResult(res)}
	data, err := json.MarshalIndent(&ent, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: run cache: %w", err)
	}
	data = append(data, '\n')
	key := c.Key(res.Config)
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("obs: run cache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("obs: run cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("obs: run cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("obs: run cache: %w", err)
	}
	return nil
}

// Len reports how many entries the cache currently holds (any
// revision). It exists for tests and the -resume summary line.
func (c *RunCache) Len() (int, error) {
	names, err := filepath.Glob(filepath.Join(c.dir, "*.json"))
	if err != nil {
		return 0, err
	}
	return len(names), nil
}
