package obs

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
)

// smallConfig is a fast-but-representative run for round-trip tests.
func smallConfig(protocol string) core.Config {
	cfg := core.DefaultConfig()
	cfg.Protocol = protocol
	cfg.RefsPerCore = 400
	cfg.WarmupRefs = 800
	return cfg
}

// requireSameResult asserts that a decoded result is bit-identical to
// the live one in every field the figures consume.
func requireSameResult(t *testing.T, label string, live, decoded *core.Result) {
	t.Helper()
	if live.Cycles != decoded.Cycles || live.Refs != decoded.Refs || live.Events != decoded.Events {
		t.Errorf("%s: cycles/refs/events differ: %d/%d/%d vs %d/%d/%d",
			label, live.Cycles, live.Refs, live.Events, decoded.Cycles, decoded.Refs, decoded.Events)
	}
	ln, dn := live.Counters.Names(), decoded.Counters.Names()
	if !reflect.DeepEqual(ln, dn) {
		t.Fatalf("%s: counter names differ:\n%v\n%v", label, ln, dn)
	}
	for _, name := range ln {
		if lv, dv := live.Counters.Value(name), decoded.Counters.Value(name); lv != dv {
			t.Errorf("%s: counter %s = %d vs %d", label, name, lv, dv)
		}
	}
	if live.Net != decoded.Net {
		t.Errorf("%s: network stats differ", label)
	}
	if live.Profile != decoded.Profile {
		t.Errorf("%s: miss profiles differ", label)
	}
	if live.Energies != decoded.Energies {
		t.Errorf("%s: energies differ:\n%+v\n%+v", label, live.Energies, decoded.Energies)
	}
	if !reflect.DeepEqual(live.Breakdown, decoded.Breakdown) {
		t.Errorf("%s: breakdowns differ:\n%+v\n%+v", label, live.Breakdown, decoded.Breakdown)
	}
	if live.MemReads != decoded.MemReads || live.DedupSavings != decoded.DedupSavings {
		t.Errorf("%s: memory stats differ", label)
	}
	if live.Performance() != decoded.Performance() {
		t.Errorf("%s: performance %v vs %v", label, live.Performance(), decoded.Performance())
	}
	if live.Config != decoded.Config {
		t.Errorf("%s: configs differ:\n%+v\n%+v", label, live.Config, decoded.Config)
	}
}

// TestManifestRoundTrip encodes one run per protocol and requires the
// decoded result to be bit-identical.
func TestManifestRoundTrip(t *testing.T) {
	for _, p := range core.ProtocolNames {
		cfg := smallConfig(p)
		if p == "directory" {
			cfg.Profile = true // one profiled run exercises Prof round-trip
		}
		live, err := core.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		m := New("test")
		m.Add(live)
		var buf bytes.Buffer
		if err := m.Encode(&buf); err != nil {
			t.Fatalf("%s: encode: %v", p, err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", p, err)
		}
		if back.Schema != SchemaVersion || len(back.Runs) != 1 {
			t.Fatalf("%s: decoded header wrong: schema %d, %d runs", p, back.Schema, len(back.Runs))
		}
		decoded, err := back.Runs[0].Result()
		if err != nil {
			t.Fatalf("%s: reconstruct: %v", p, err)
		}
		requireSameResult(t, p, live, decoded)
		if cfg.Profile {
			if decoded.Prof == nil {
				t.Fatalf("%s: profile lost in round trip", p)
			}
			if !reflect.DeepEqual(live.Prof, decoded.Prof) {
				t.Errorf("%s: run profile differs after round trip", p)
			}
		}
	}
}

// TestManifestSchemaMismatch requires decoding to reject unknown
// schema versions before interpreting the rest of the file.
func TestManifestSchemaMismatch(t *testing.T) {
	m := New("test")
	m.Schema = SchemaVersion + 1
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := Decode(&buf)
	if err == nil {
		t.Fatalf("decoding a v%d manifest succeeded; want schema rejection", SchemaVersion+1)
	}
	want := fmt.Sprintf("schema v%d", SchemaVersion+1)
	if !strings.Contains(err.Error(), want) || !strings.Contains(err.Error(), fmt.Sprintf("v%d", SchemaVersion)) {
		t.Errorf("unhelpful schema error: %v", err)
	}
	if err := m.Verify(); err == nil {
		t.Error("Verify accepted a mismatched schema version")
	}
}

// TestManifestReadsV1 requires this build to keep decoding schema-v1
// manifests: v2 only added the optional "series" field, so a v1 file
// must read as a v2 manifest with no series data.
func TestManifestReadsV1(t *testing.T) {
	cfg := smallConfig("dico")
	live, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := New("test")
	m.Add(live)
	m.Schema = 1 // what a previous-generation binary would have written
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatalf("v1 manifest no longer decodes: %v", err)
	}
	if err := back.Verify(); err != nil {
		t.Fatalf("v1 manifest fails verification: %v", err)
	}
	decoded, err := back.Runs[0].Result()
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "v1", live, decoded)
	if decoded.Series != nil {
		t.Error("v1 manifest produced series data out of nowhere")
	}
}

// TestManifestSeriesRoundTrip requires the v2 series field to survive
// the encode/decode round trip exactly.
func TestManifestSeriesRoundTrip(t *testing.T) {
	cfg := smallConfig("directory")
	cfg.SampleEvery = 500
	live, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if live.Series == nil || len(live.Series.Samples) == 0 {
		t.Fatal("sampling produced no series")
	}
	m := New("test")
	m.Add(live)
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := back.Runs[0].Result()
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "series", live, decoded)
	if !reflect.DeepEqual(live.Series, decoded.Series) {
		t.Errorf("series differs after round trip:\nlive    %+v\ndecoded %+v", live.Series, decoded.Series)
	}
}

// TestManifestIntegrity requires a tampered counter to fail decoding:
// the breakdown cross-check must catch a manifest whose counters and
// serialized energies disagree.
func TestManifestIntegrity(t *testing.T) {
	res, err := core.Run(smallConfig("dico"))
	if err != nil {
		t.Fatal(err)
	}
	m := New("test")
	m.Add(res)
	for i, c := range m.Runs[0].Counters {
		if c.Name == "l1.tag.read" {
			m.Runs[0].Counters[i].Value += 1000
		}
	}
	if _, err := m.Runs[0].Result(); err == nil {
		t.Fatal("reconstructing a tampered run succeeded; want breakdown mismatch error")
	}
	if err := m.Verify(); err == nil {
		t.Fatal("Verify accepted a tampered run")
	}
}

// TestMatrixRoundTripFigures runs a small sweep, exports it, decodes
// it, and requires every rendered figure to match the live matrix byte
// for byte — the zero-re-simulation guarantee cmd/tables -from relies
// on.
func TestMatrixRoundTripFigures(t *testing.T) {
	opt := exp.DefaultOptions()
	opt.Workloads = []string{"apache4x16p"}
	opt.Base.RefsPerCore = 400
	opt.Base.WarmupRefs = 800
	live, err := exp.Run(opt, nil)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := FromMatrix("test", live).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Verify(); err != nil {
		t.Fatal(err)
	}
	decoded, err := back.Matrix()
	if err != nil {
		t.Fatal(err)
	}

	for name, render := range map[string]func(*exp.Matrix) string{
		"figure7":  func(m *exp.Matrix) string { return m.Figure7().String() },
		"figure8a": func(m *exp.Matrix) string { return m.Figure8a().String() },
		"figure8b": func(m *exp.Matrix) string { return m.Figure8b().String() },
		"figure9a": func(m *exp.Matrix) string { return m.Figure9a().String() },
		"figure9b": func(m *exp.Matrix) string { return m.Figure9b().String() },
		"hops":     func(m *exp.Matrix) string { return m.LinkAnalysis().String() },
	} {
		if l, d := render(live), render(decoded); l != d {
			t.Errorf("%s differs between live and decoded matrix:\n--- live\n%s\n--- decoded\n%s", name, l, d)
		}
	}
}

// TestMatrixMissingCell requires Matrix() to reject a manifest that
// does not cover the full workload x protocol grid.
func TestMatrixMissingCell(t *testing.T) {
	res, err := core.Run(smallConfig("arin"))
	if err != nil {
		t.Fatal(err)
	}
	m := New("test")
	m.Add(res)
	if _, err := m.Matrix(); err == nil {
		t.Fatal("Matrix() accepted a single-run manifest; want missing-cell error")
	} else if !strings.Contains(err.Error(), "missing") {
		t.Errorf("unhelpful missing-cell error: %v", err)
	}
}
