package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// SchemaVersion is the manifest format this build writes. Any
// structural change to the JSON layout must bump it.
//
// v2 added the optional per-run "series" field (epoch time-series
// samples, see internal/telemetry). v3 added the optional "census"
// (ranked remote-touch inventory) and "per_vm" (per-VM attribution:
// counters, energy breakdown, miss-latency histogram and percentiles)
// run fields. Older manifests are still decodable: every field kept
// its name and meaning, so a v1/v2 file reads as a v3 manifest with
// the newer data absent.
const SchemaVersion = 3

// minSchema is the oldest manifest format this build still reads.
const minSchema = 1

// CounterRecord is one named event counter. Counters are stored as an
// ordered list, not a map, so the registration order of the live
// stats.Set survives the round trip exactly.
type CounterRecord struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// MissClassRecord is one Figure 9b miss class.
type MissClassRecord struct {
	Class string `json:"class"`
	Count uint64 `json:"count"`
	Links uint64 `json:"links"`
}

// MissProfileRecord serializes proto.MissProfile with class names
// attached, so the JSON is self-describing.
type MissProfileRecord struct {
	Hits    uint64            `json:"hits"`
	Classes []MissClassRecord `json:"classes"`
}

// ClassEnergyRecord is one cache class of the Figure 8a breakdown.
type ClassEnergyRecord struct {
	Class string  `json:"class"`
	PJ    float64 `json:"pj"`
}

// BreakdownRecord serializes power.DynamicBreakdown in the fixed
// power.CacheClasses order. It is stored for downstream consumers and
// cross-checked on decode against a recomputation from the counters,
// so a hand-edited manifest cannot silently desynchronize the two.
type BreakdownRecord struct {
	Cache   []ClassEnergyRecord `json:"cache"`
	Link    float64             `json:"link_pj"`
	Routing float64             `json:"routing_pj"`
}

// VMRecord is one VM's attribution slice of a run (schema v3): the
// counters, network activity and energy charged to transactions whose
// requestor tile belonged to the VM, plus its miss-latency histogram
// and percentiles. Summed across VMs the counters are bounded by the
// run's global counters (unattributed cold paths make up the rest) —
// Result enforces that bound on decode.
type VMRecord struct {
	VM          int             `json:"vm"`
	Tiles       int             `json:"tiles"`
	Refs        uint64          `json:"refs"`
	Counters    []CounterRecord `json:"counters"`
	Flits       uint64          `json:"flits"`
	Routers     uint64          `json:"routers"`
	Breakdown   BreakdownRecord `json:"breakdown"`
	MissLatency sim.Hist        `json:"miss_latency"`
	P50         uint64          `json:"p50"`
	P99         uint64          `json:"p99"`
	P999        uint64          `json:"p999"`
}

// RunRecord is everything one simulation run produced: the full input
// configuration and every output counter, in a form that decodes back
// to a bit-identical core.Result.
type RunRecord struct {
	Workload     string             `json:"workload"`
	Protocol     string             `json:"protocol"`
	Config       core.Config        `json:"config"`
	Cycles       sim.Time           `json:"cycles"`
	Refs         uint64             `json:"refs"`
	Events       uint64             `json:"events"`
	Counters     []CounterRecord    `json:"counters"`
	Net          mesh.Stats         `json:"net"`
	MissProfile  MissProfileRecord  `json:"miss_profile"`
	MemReads     uint64             `json:"mem_reads"`
	DedupSavings float64            `json:"dedup_savings"`
	Energies     power.TileEnergies `json:"energies"`
	Breakdown    BreakdownRecord    `json:"breakdown"`
	// Prof is present only for runs with core.Config.Profile set.
	Prof *core.RunProfile `json:"run_profile,omitempty"`
	// Series is present only for runs with core.Config.SampleEvery set
	// (schema v2+).
	Series *telemetry.Series `json:"series,omitempty"`
	// Census is present only for runs with core.Config.Census set
	// (schema v3+): the ranked cross-shard remote-touch inventory.
	Census []telemetry.CensusRecord `json:"census,omitempty"`
	// PerVM is present only for runs with core.Config.PerVM set
	// (schema v3+), one record per consolidated VM.
	PerVM []VMRecord `json:"per_vm,omitempty"`
}

// Manifest is the versioned top-level export: a header identifying the
// producing binary plus one RunRecord per simulation.
type Manifest struct {
	Schema   int    `json:"schema"`
	Tool     string `json:"tool"`
	Revision string `json:"revision"`
	Go       string `json:"go"`
	// Workloads preserves the sweep's workload order so a decoded
	// matrix renders figures with identical row order.
	Workloads []string    `json:"workloads"`
	Runs      []RunRecord `json:"runs"`
}

// New returns an empty manifest stamped with the schema version, the
// producing tool's name and the binary's git revision.
func New(tool string) *Manifest {
	return &Manifest{
		Schema:   SchemaVersion,
		Tool:     tool,
		Revision: Revision(),
		Go:       goVersion(),
	}
}

// FromResult converts one finished run into its record.
func FromResult(res *core.Result) RunRecord {
	r := RunRecord{
		Workload:     res.Config.Workload,
		Protocol:     res.Config.Protocol,
		Config:       res.Config,
		Cycles:       res.Cycles,
		Refs:         res.Refs,
		Events:       res.Events,
		Net:          res.Net,
		MemReads:     res.MemReads,
		DedupSavings: res.DedupSavings,
		Energies:     res.Energies,
		Prof:         res.Prof,
		Series:       res.Series,
	}
	for _, name := range res.Counters.Names() {
		r.Counters = append(r.Counters, CounterRecord{Name: name, Value: res.Counters.Value(name)})
	}
	r.MissProfile.Hits = res.Profile.Hits
	for c := 0; c < int(proto.NumMissClasses); c++ {
		r.MissProfile.Classes = append(r.MissProfile.Classes, MissClassRecord{
			Class: proto.MissClassNames[c],
			Count: res.Profile.Count[c],
			Links: res.Profile.Links[c],
		})
	}
	for _, cls := range power.CacheClasses {
		r.Breakdown.Cache = append(r.Breakdown.Cache, ClassEnergyRecord{Class: cls, PJ: res.Breakdown.Cache[cls]})
	}
	r.Breakdown.Link = res.Breakdown.Link
	r.Breakdown.Routing = res.Breakdown.Routing
	r.Census = res.Census
	for i := range res.PerVM {
		v := &res.PerVM[i]
		vr := VMRecord{
			VM: v.VM, Tiles: v.Tiles, Refs: v.Refs,
			Flits: v.Flits, Routers: v.Routers,
			MissLatency: v.MissLatency,
			P50:         v.P50, P99: v.P99, P999: v.P999,
		}
		for _, name := range v.Counters.Names() {
			vr.Counters = append(vr.Counters, CounterRecord{Name: name, Value: v.Counters.Value(name)})
		}
		for _, cls := range power.CacheClasses {
			vr.Breakdown.Cache = append(vr.Breakdown.Cache, ClassEnergyRecord{Class: cls, PJ: v.Breakdown.Cache[cls]})
		}
		vr.Breakdown.Link = v.Breakdown.Link
		vr.Breakdown.Routing = v.Breakdown.Routing
		r.PerVM = append(r.PerVM, vr)
	}
	return r
}

// Add appends a run to the manifest, registering its workload in
// sweep order on first sight.
func (m *Manifest) Add(res *core.Result) {
	seen := false
	for _, wl := range m.Workloads {
		if wl == res.Config.Workload {
			seen = true
			break
		}
	}
	if !seen {
		m.Workloads = append(m.Workloads, res.Config.Workload)
	}
	m.Runs = append(m.Runs, FromResult(res))
}

// FromMatrix converts a whole evaluation sweep, in workload-major,
// paper-protocol order.
func FromMatrix(tool string, mx *exp.Matrix) *Manifest {
	m := New(tool)
	for _, wl := range mx.Workloads {
		for _, p := range core.ProtocolNames {
			if res := mx.Results[wl][p]; res != nil {
				m.Add(res)
			}
		}
	}
	return m
}

// Result reconstructs the core.Result this record was made from. The
// counters, network stats, miss profile and energies are restored
// exactly; the dynamic-energy breakdown is recomputed from them
// through the same power.Dynamic path a live run uses and verified
// against the serialized breakdown, so decoded figures are
// bit-identical to live ones — or the decode fails loudly.
func (r *RunRecord) Result() (*core.Result, error) {
	res := &core.Result{
		Config:       r.Config,
		Cycles:       r.Cycles,
		Refs:         r.Refs,
		Events:       r.Events,
		Counters:     &stats.Set{},
		Net:          r.Net,
		MemReads:     r.MemReads,
		DedupSavings: r.DedupSavings,
		Energies:     r.Energies,
		Prof:         r.Prof,
		Series:       r.Series,
	}
	for _, c := range r.Counters {
		res.Counters.Add(c.Name, c.Value)
	}
	res.Profile.Hits = r.MissProfile.Hits
	for _, mc := range r.MissProfile.Classes {
		idx := -1
		for c := 0; c < int(proto.NumMissClasses); c++ {
			if proto.MissClassNames[c] == mc.Class {
				idx = c
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("obs: %s/%s: unknown miss class %q", r.Workload, r.Protocol, mc.Class)
		}
		res.Profile.Count[idx] = mc.Count
		res.Profile.Links[idx] = mc.Links
	}
	res.Breakdown = power.Dynamic(res.Counters, res.Net, res.Energies)
	for _, ce := range r.Breakdown.Cache {
		if got := res.Breakdown.Cache[ce.Class]; got != ce.PJ {
			return nil, fmt.Errorf("obs: %s/%s: breakdown class %q = %g pJ does not match the counters (recomputed %g pJ)",
				r.Workload, r.Protocol, ce.Class, ce.PJ, got)
		}
	}
	if res.Breakdown.Link != r.Breakdown.Link || res.Breakdown.Routing != r.Breakdown.Routing {
		return nil, fmt.Errorf("obs: %s/%s: network breakdown does not match the counters", r.Workload, r.Protocol)
	}
	res.Census = r.Census
	vmSum := map[string]uint64{}
	for i := range r.PerVM {
		vr := &r.PerVM[i]
		v := core.VMStat{
			VM: vr.VM, Tiles: vr.Tiles, Refs: vr.Refs,
			Counters: &stats.Set{},
			Flits:    vr.Flits, Routers: vr.Routers,
			MissLatency: vr.MissLatency,
			P50:         vr.P50, P99: vr.P99, P999: vr.P999,
		}
		for _, c := range vr.Counters {
			v.Counters.Add(c.Name, c.Value)
			vmSum[c.Name] += c.Value
		}
		v.Breakdown = power.Dynamic(v.Counters,
			mesh.Stats{FlitLinkCrossing: vr.Flits, RouterTraversals: vr.Routers}, r.Energies)
		for _, ce := range vr.Breakdown.Cache {
			if got := v.Breakdown.Cache[ce.Class]; got != ce.PJ {
				return nil, fmt.Errorf("obs: %s/%s: VM %d breakdown class %q = %g pJ does not match its counters (recomputed %g pJ)",
					r.Workload, r.Protocol, vr.VM, ce.Class, ce.PJ, got)
			}
		}
		if v.Breakdown.Link != vr.Breakdown.Link || v.Breakdown.Routing != vr.Breakdown.Routing {
			return nil, fmt.Errorf("obs: %s/%s: VM %d network breakdown does not match its counters", r.Workload, r.Protocol, vr.VM)
		}
		if vr.MissLatency.Percentile(0.99) != vr.P99 {
			return nil, fmt.Errorf("obs: %s/%s: VM %d p99 = %d does not match its histogram (recomputed %d)",
				r.Workload, r.Protocol, vr.VM, vr.P99, vr.MissLatency.Percentile(0.99))
		}
		res.PerVM = append(res.PerVM, v)
	}
	// The attribution is a partition of a slice of the globals: summed
	// across VMs no counter may exceed what the whole run counted (the
	// remainder is the unattributed cold-path share).
	for name, sum := range vmSum {
		if sum > res.Counters.Value(name) {
			return nil, fmt.Errorf("obs: %s/%s: per-VM counter %q sums to %d, exceeding the run total %d",
				r.Workload, r.Protocol, name, sum, res.Counters.Value(name))
		}
	}
	return res, nil
}

// Matrix reconstructs the full exp.Matrix. It fails if any
// (workload, protocol) cell of the declared workload set is missing,
// because every figure renderer iterates the complete matrix.
func (m *Manifest) Matrix() (*exp.Matrix, error) {
	mx := &exp.Matrix{
		Workloads: append([]string(nil), m.Workloads...),
		Results:   map[string]map[string]*core.Result{},
	}
	for i := range m.Runs {
		r := &m.Runs[i]
		res, err := r.Result()
		if err != nil {
			return nil, err
		}
		if mx.Results[r.Workload] == nil {
			mx.Results[r.Workload] = map[string]*core.Result{}
		}
		if mx.Results[r.Workload][r.Protocol] != nil {
			return nil, fmt.Errorf("obs: duplicate run for %s/%s", r.Workload, r.Protocol)
		}
		mx.Results[r.Workload][r.Protocol] = res
	}
	for _, wl := range mx.Workloads {
		for _, p := range core.ProtocolNames {
			if mx.Results[wl] == nil || mx.Results[wl][p] == nil {
				return nil, fmt.Errorf("obs: manifest is not a full matrix: missing %s/%s", wl, p)
			}
		}
	}
	return mx, nil
}

// Verify decodes every run record back into a result, exercising all
// integrity checks (counter/breakdown consistency, known miss
// classes). It is the cheap "is this manifest usable" gate CI runs on
// exported files.
func (m *Manifest) Verify() error {
	if m.Schema < minSchema || m.Schema > SchemaVersion {
		return fmt.Errorf("obs: manifest schema v%d not supported (this build reads v%d..v%d)", m.Schema, minSchema, SchemaVersion)
	}
	for i := range m.Runs {
		if _, err := m.Runs[i].Result(); err != nil {
			return fmt.Errorf("obs: run %d: %w", i, err)
		}
	}
	return nil
}

// Encode writes the manifest as indented JSON.
func (m *Manifest) Encode(w io.Writer) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteFile encodes the manifest to path.
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Decode reads a manifest, rejecting unknown schema versions before
// interpreting anything else.
func Decode(r io.Reader) (*Manifest, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var head struct {
		Schema int `json:"schema"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return nil, fmt.Errorf("obs: not a manifest: %w", err)
	}
	if head.Schema < minSchema || head.Schema > SchemaVersion {
		return nil, fmt.Errorf("obs: manifest schema v%d not supported (this build reads v%d..v%d)", head.Schema, minSchema, SchemaVersion)
	}
	m := &Manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("obs: malformed manifest: %w", err)
	}
	return m, nil
}

// ReadFile decodes the manifest at path.
func ReadFile(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
