package obs

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
)

func cacheConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.RefsPerCore = 300
	cfg.WarmupRefs = 600
	return cfg
}

// TestRunCacheRoundTrip: a stored run loads back bit-identical, and a
// config differing in any field misses.
func TestRunCacheRoundTrip(t *testing.T) {
	cache, err := OpenRunCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := cacheConfig()
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := cache.Load(cfg); err != nil || ok {
		t.Fatalf("empty cache returned ok=%v err=%v", ok, err)
	}
	if err := cache.Store(res); err != nil {
		t.Fatal(err)
	}
	got, ok, err := cache.Load(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("stored entry missed")
	}
	requireEqualRecords(t, FromResult(res), FromResult(got))

	other := cfg
	other.Seed++
	if _, ok, _ := cache.Load(other); ok {
		t.Error("config with a different seed hit the cache")
	}
	other = cfg
	other.SampleEvery = 100
	if _, ok, _ := cache.Load(other); ok {
		t.Error("config with different sampling hit the cache")
	}
}

// requireEqualRecords compares two runs through their manifest
// records, which cover every serialized output field.
func requireEqualRecords(t *testing.T, a, b RunRecord) {
	t.Helper()
	if a.Cycles != b.Cycles || a.Refs != b.Refs || a.Events != b.Events || a.MemReads != b.MemReads {
		t.Errorf("headline counters differ: %+v vs %+v", a, b)
	}
	if len(a.Counters) != len(b.Counters) {
		t.Fatalf("counter count %d vs %d", len(a.Counters), len(b.Counters))
	}
	for i := range a.Counters {
		if a.Counters[i] != b.Counters[i] {
			t.Errorf("counter %d: %+v vs %+v", i, a.Counters[i], b.Counters[i])
		}
	}
	if a.Net != b.Net {
		t.Errorf("net stats differ: %+v vs %+v", a.Net, b.Net)
	}
	if a.Energies != b.Energies {
		t.Errorf("energies differ")
	}
}

// TestRunCacheCorruptEntryLoud: a damaged entry must fail the load,
// not silently recompute — silent repair would mask cache bugs.
func TestRunCacheCorruptEntryLoud(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenRunCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cacheConfig()
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.Store(res); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, cache.Key(cfg)+".json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cache.Load(cfg); err == nil {
		t.Fatal("corrupt cache entry loaded without error")
	}
}

// TestRunCacheSweepResume: the experiment runner's incremental mode.
// A sweep against an empty cache computes everything; the identical
// sweep against the warm cache computes nothing, and both produce the
// same matrix.
func TestRunCacheSweepResume(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep twice")
	}
	cache, err := OpenRunCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := exp.Options{
		Workloads: []string{"apache4x16p"},
		Base:      cacheConfig(),
		Cache:     cache,
	}
	cold, err := exp.Run(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cache.Hits != 0 || cold.Cache.Misses != len(core.ProtocolNames) {
		t.Fatalf("cold sweep: %+v, want 0 hits / %d misses", cold.Cache, len(core.ProtocolNames))
	}
	ran := 0
	warm, err := exp.Run(opt, func(wl, p string) { ran++ })
	if err != nil {
		t.Fatal(err)
	}
	if ran != 0 {
		t.Errorf("warm sweep simulated %d cells", ran)
	}
	if warm.Cache.Hits != len(core.ProtocolNames) || warm.Cache.Misses != 0 {
		t.Fatalf("warm sweep: %+v, want %d hits / 0 misses", warm.Cache, len(core.ProtocolNames))
	}
	for _, p := range core.ProtocolNames {
		a := FromResult(cold.Results["apache4x16p"][p])
		b := FromResult(warm.Results["apache4x16p"][p])
		requireEqualRecords(t, a, b)
	}
}
