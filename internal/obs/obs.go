// Package obs is the simulator's observability layer: a versioned,
// machine-readable description of what a run (or a whole evaluation
// matrix) computed.
//
// The paper's evaluation is a pipeline from raw event counters to
// normalized cross-protocol figures; obs makes every stage of that
// pipeline inspectable after the fact. A Manifest (schema v1) records
// the full core.Config, the git revision of the binary, every counter,
// the network activity, the per-class miss profile, the energy
// breakdown and — when profiling was enabled — the kernel dispatch
// statistics, queue-depth and miss-latency histograms, and per-phase
// timers. The encoder and decoder round-trip exactly: a decoded run
// reproduces bit-identical counters, energies and derived figures, so
// cmd/tables can regenerate any figure from a saved JSON file with
// zero re-simulation.
package obs

import (
	"runtime"
	"runtime/debug"
)

// Revision returns the git revision baked into the binary by the Go
// toolchain ("unknown" for test binaries and unstamped builds), with a
// "-dirty" suffix when the working tree was modified.
func Revision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}

// goVersion is split out so the manifest header stays testable.
func goVersion() string { return runtime.Version() }
