// Package snapshot serializes the complete simulator state at the
// quiescent warmup/measure boundary, so one warmup phase can fork into
// many measure phases (or be persisted and resumed later).
//
// Capture is only defined where core.System.RunWarmup leaves the
// system: the kernel queue drained, every MSHR empty, every protocol
// transaction table empty, the watchdog and sampler tick chains
// self-stopped. At that point the simulator holds only pure data —
// cache arrays, directory state, page tables, RNG cursors, counters —
// and no closures, so the whole machine serializes. Any transient
// state found during capture is an error by design: a record that
// survives a drained kernel is a hidden-state bug, and the snapshot
// layer is its detector.
package snapshot

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/memctrl"
	"repro/internal/mesh"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// State is the serializable whole-system state at a phase boundary.
type State struct {
	// Config is the warmup-normalized configuration the snapshot was
	// taken under (see WarmupConfig). A fork's own config must
	// normalize to the same value.
	Config core.Config

	Kernel   sim.KernelState
	Net      *mesh.NetworkState
	Mem      memctrl.ControllersState
	Mapper   *memctrl.MapperState
	Gen      *workload.GeneratorState
	Engine   *proto.EngineState
	Counters []stats.CounterState
	Profile  proto.MissProfile

	RefsTotal uint64

	// Shadow is non-nil only when the source run had Check set.
	Shadow *check.ShadowState
	// Sampler is non-nil only when the source run sampled telemetry.
	Sampler *telemetry.SamplerState
}

// WarmupConfig normalizes a configuration to the fields that shape the
// warmup phase. Two configs with equal WarmupConfig produce
// bit-identical state at the warmup/measure boundary, so their runs
// may share one captured snapshot; the zeroed fields (measured-phase
// length, checkers, telemetry) only affect the measure phase.
func WarmupConfig(cfg core.Config) core.Config {
	cfg.RefsPerCore = 0
	cfg.Check = false
	cfg.Profile = false
	cfg.StallBound = 0
	cfg.Trace = false
	cfg.TraceCap = 0
	cfg.SampleEvery = 0
	cfg.SampleCap = 0
	// Census and per-VM attribution are observation-only and reset at
	// the warmup/measure boundary, so a plain warmup serves instrumented
	// forks (the fork's own config arms them at construction).
	cfg.Census = false
	cfg.PerVM = false
	// Sharding is an execution strategy, not a model change: any shard
	// count — and either window executor — produces bit-identical
	// state, so a serial warmup may fork into sharded or RunParallel
	// measure phases and vice versa.
	cfg.Shards = 0
	cfg.Parallel = false
	return cfg
}

// Capture serializes the system's state. The system must be quiescent
// (between phases); any in-flight work is a capture error.
func Capture(s *core.System) (*State, error) {
	kst, err := s.KernelState()
	if err != nil {
		return nil, fmt.Errorf("snapshot: %v", err)
	}
	est, err := proto.EngineStateOf(s.Engine)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %v", err)
	}
	st := &State{
		Config:    WarmupConfig(s.Cfg),
		Kernel:    kst,
		Net:       s.Net.State(),
		Mem:       s.Mem.State(),
		Mapper:    s.Mapper.State(),
		Gen:       s.Gen.State(),
		Engine:    est,
		Counters:  s.Engine.Stats().State(),
		Profile:   s.Ctx.Profile,
		RefsTotal: s.RefsRetired(),
	}
	if s.Shadow != nil {
		st.Shadow = s.Shadow.State()
	}
	if s.Sampler != nil {
		st.Sampler = s.Sampler.State()
	}
	return st, nil
}

// Restore overwrites a freshly built system's state with a captured
// one. The system's configuration must warmup-normalize to the
// snapshot's config; measure-phase knobs (RefsPerCore, Check, Trace,
// sampling) are free to differ — that is the point of forking. All
// snapshot data is deep-copied in, so one State may be restored into
// any number of systems.
func Restore(s *core.System, st *State) error {
	if got := WarmupConfig(s.Cfg); got != st.Config {
		return fmt.Errorf("snapshot: config mismatch: snapshot warmed up as %+v, system is %+v", st.Config, got)
	}
	if err := s.RestoreKernelState(st.Kernel); err != nil {
		return fmt.Errorf("snapshot: %v", err)
	}
	if err := s.Net.RestoreState(st.Net); err != nil {
		return fmt.Errorf("snapshot: %v", err)
	}
	s.Mem.RestoreState(st.Mem)
	if err := s.Mapper.RestoreState(st.Mapper); err != nil {
		return fmt.Errorf("snapshot: %v", err)
	}
	if err := s.Gen.RestoreState(st.Gen); err != nil {
		return fmt.Errorf("snapshot: %v", err)
	}
	if err := proto.RestoreEngineState(s.Engine, st.Engine); err != nil {
		return fmt.Errorf("snapshot: %v", err)
	}
	s.Engine.Stats().RestoreState(st.Counters)
	s.Ctx.Profile = st.Profile
	s.SetRefsRetired(st.RefsTotal)
	// A snapshot taken without Check restores into a checking system
	// with an empty shadow: the checker then verifies the measure phase
	// only, which is exactly what a straight-through Check run reports
	// (warmup resets discard pre-measure state anyway). A snapshot WITH
	// shadow state restores it when the target checks too.
	if st.Shadow != nil && s.Shadow != nil {
		if err := s.Shadow.RestoreState(st.Shadow); err != nil {
			return fmt.Errorf("snapshot: %v", err)
		}
	}
	if st.Sampler != nil && s.Sampler != nil {
		s.Sampler.RestoreState(st.Sampler)
	}
	return nil
}

// Fork builds a new system under cfg and restores the snapshot into
// it. cfg must warmup-normalize to the snapshot's config; its
// measure-phase knobs select what the fork will do. The returned
// system stands exactly at the warmup/measure boundary: call
// RunMeasure on it.
func Fork(st *State, cfg core.Config) (*core.System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	if err := Restore(s, st); err != nil {
		return nil, err
	}
	return s, nil
}

// Encode writes the state as a gob stream.
func Encode(w io.Writer, st *State) error {
	return gob.NewEncoder(w).Encode(st)
}

// Decode reads a state previously written by Encode.
func Decode(r io.Reader) (*State, error) {
	var st State
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Bytes serializes the state to a byte slice.
func Bytes(st *State) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
