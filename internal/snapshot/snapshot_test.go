package snapshot

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
)

// testConfig is the crosscheck-scale configuration: big enough to
// exercise evictions, recalls and dedup, small enough for CI.
func testConfig(protocol string) core.Config {
	cfg := core.DefaultConfig()
	cfg.Protocol = protocol
	cfg.RefsPerCore = 400
	cfg.WarmupRefs = 800
	return cfg
}

// fingerprint reduces a Result to its deterministic architectural
// content (wall-clock data excluded).
func fingerprint(res *core.Result) map[string]uint64 {
	fp := map[string]uint64{
		"cycles":    uint64(res.Cycles),
		"refs":      res.Refs,
		"events":    res.Events,
		"mem_reads": res.MemReads,
	}
	for _, name := range res.Counters.Names() {
		fp["counter:"+name] = res.Counters.Value(name)
	}
	rv := reflect.ValueOf(res.Net)
	for i := 0; i < rv.NumField(); i++ {
		fp["net:"+rv.Type().Field(i).Name] = rv.Field(i).Uint()
	}
	pv := reflect.ValueOf(res.Profile)
	for i := 0; i < pv.NumField(); i++ {
		f := pv.Field(i)
		name := pv.Type().Field(i).Name
		if f.Kind() == reflect.Array {
			for j := 0; j < f.Len(); j++ {
				fp[fmt.Sprintf("profile:%s[%d]", name, j)] = f.Index(j).Uint()
			}
			continue
		}
		fp["profile:"+name] = f.Uint()
	}
	return fp
}

// runFork executes the warmup under the warmup-normalized config,
// captures, round-trips the snapshot through gob, forks under the full
// config and measures.
func runFork(t *testing.T, cfg core.Config) *core.Result {
	t.Helper()
	warmCfg := WarmupConfig(cfg)
	warmCfg.RefsPerCore = cfg.RefsPerCore // irrelevant to warmup, required by Validate
	ws, err := core.NewSystem(warmCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.RunWarmup(); err != nil {
		t.Fatal(err)
	}
	st, err := Capture(ws)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip through the wire format so serialization fidelity is
	// part of every differential, not a separate hope.
	raw, err := Bytes(st)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Fork(st2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fs.RunMeasure()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func diffFingerprints(t *testing.T, label string, straight, forked map[string]uint64) {
	t.Helper()
	for k, v := range straight {
		if fv, ok := forked[k]; !ok || fv != v {
			t.Errorf("%s: %s = %d straight, %d forked", label, k, v, forked[k])
		}
	}
	for k := range forked {
		if _, ok := straight[k]; !ok {
			t.Errorf("%s: forked-only key %s", label, k)
		}
	}
}

// TestForkMatchesStraight is the non-negotiable invariant of the
// snapshot subsystem: a measure phase forked from a captured warmup
// must be bit-identical to a straight-through run, for every engine.
// Any divergence is a latent hidden-state bug.
func TestForkMatchesStraight(t *testing.T) {
	if testing.Short() {
		t.Skip("eight full protocol runs")
	}
	for _, p := range core.ProtocolNames {
		p := p
		t.Run(p, func(t *testing.T) {
			cfg := testConfig(p)
			straight, err := core.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			forked := runFork(t, cfg)
			diffFingerprints(t, p, fingerprint(straight), fingerprint(forked))
		})
	}
}

// TestForkMatchesStraightObserved repeats the differential with the
// observation subsystems on: the shadow checker + stall watchdog, the
// telemetry sampler, and the transaction tracer. All are documented as
// bit-identical observers, and a fork must preserve that.
func TestForkMatchesStraightObserved(t *testing.T) {
	if testing.Short() {
		t.Skip("full protocol runs")
	}
	for _, p := range core.ProtocolNames {
		p := p
		t.Run(p, func(t *testing.T) {
			cfg := testConfig(p)
			cfg.Check = true
			cfg.Profile = true
			cfg.Trace = true
			cfg.SampleEvery = 500
			straight, err := core.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			forked := runFork(t, cfg)
			diffFingerprints(t, p, fingerprint(straight), fingerprint(forked))
			if forked.Series == nil || len(forked.Series.Samples) == 0 {
				t.Error("forked run with SampleEvery produced no telemetry series")
			}
		})
	}
}

// TestOneWarmupManyForks shares one captured warmup across several
// measure configurations, as the experiment runner does, and checks
// each against its straight-through twin. Restoring must deep-copy:
// an earlier fork's measure phase must not perturb a later fork.
func TestOneWarmupManyForks(t *testing.T) {
	if testing.Short() {
		t.Skip("full protocol runs")
	}
	base := testConfig("providers")
	warmCfg := WarmupConfig(base)
	warmCfg.RefsPerCore = base.RefsPerCore
	ws, err := core.NewSystem(warmCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.RunWarmup(); err != nil {
		t.Fatal(err)
	}
	st, err := Capture(ws)
	if err != nil {
		t.Fatal(err)
	}
	variants := []func(*core.Config){
		func(c *core.Config) {},
		func(c *core.Config) { c.RefsPerCore = 200 },
		func(c *core.Config) { c.Check = true },
	}
	for i, mutate := range variants {
		cfg := base
		mutate(&cfg)
		straight, err := core.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fs, err := Fork(st, cfg)
		if err != nil {
			t.Fatal(err)
		}
		forked, err := fs.RunMeasure()
		if err != nil {
			t.Fatal(err)
		}
		diffFingerprints(t, fmt.Sprintf("variant %d", i), fingerprint(straight), fingerprint(forked))
	}
}

// TestCaptureRequiresQuiescence: capturing a system with events still
// queued must fail, not silently drop them.
func TestCaptureRequiresQuiescence(t *testing.T) {
	cfg := testConfig("directory")
	s, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Kernel.After(5, func() {})
	if _, err := Capture(s); err == nil {
		t.Fatal("capture of a non-quiescent kernel succeeded")
	}
}

// TestForkRejectsForeignConfig: a fork whose warmup-relevant config
// differs from the snapshot's must be refused.
func TestForkRejectsForeignConfig(t *testing.T) {
	cfg := testConfig("directory")
	cfg.WarmupRefs = 50
	cfg.RefsPerCore = 50
	ws, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.RunWarmup(); err != nil {
		t.Fatal(err)
	}
	st, err := Capture(ws)
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Seed = cfg.Seed + 1
	if _, err := Fork(st, bad); err == nil {
		t.Fatal("fork under a different seed succeeded")
	}
	bad = cfg
	bad.Protocol = "dico"
	if _, err := Fork(st, bad); err == nil {
		t.Fatal("fork under a different protocol succeeded")
	}
	// Measure-phase knobs may differ.
	ok := cfg
	ok.RefsPerCore = 25
	ok.Check = true
	if _, err := Fork(st, ok); err != nil {
		t.Fatalf("fork with different measure knobs failed: %v", err)
	}
}

// TestWatchdogRearmsAfterFork: the stall watchdog must re-arm inside a
// forked measure phase — a fork that silently lost its watchdog would
// hang instead of failing loudly on a livelock.
func TestWatchdogRearmsAfterFork(t *testing.T) {
	cfg := testConfig("directory")
	cfg.WarmupRefs = 50
	cfg.RefsPerCore = 50
	cfg.Check = true
	ws, err := core.NewSystem(WarmupConfig(cfg))
	if err == nil && ws.Dog != nil {
		t.Fatal("warmup-normalized config unexpectedly built a watchdog")
	}
	ws, err = core.NewSystem(func() core.Config { c := WarmupConfig(cfg); c.RefsPerCore = cfg.RefsPerCore; return c }())
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.RunWarmup(); err != nil {
		t.Fatal(err)
	}
	st, err := Capture(ws)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Fork(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Dog == nil {
		t.Fatal("forked system with Check has no watchdog")
	}
	if _, err := fs.RunMeasure(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Dog.Err(); err != nil {
		t.Fatalf("watchdog tripped on a healthy forked run: %v", err)
	}
}

// TestForkAcrossExecutors pins the executor-agnosticism of the
// snapshot surface: one warmup forks into serial AND sharded measure
// phases (and a sharded warmup forks into a serial measure), all
// bit-identical to the straight-through serial run. WarmupConfig
// normalizes Shards away, so the snapshots are interchangeable by
// construction — this test proves the captured state really is.
func TestForkAcrossExecutors(t *testing.T) {
	if testing.Short() {
		t.Skip("full protocol runs")
	}
	cfg := testConfig("dico")
	straight, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(straight)

	// Serial warmup -> sharded measure (runFork warms up under the
	// normalized config, which is serial; the fork config shards).
	shardedCfg := cfg
	shardedCfg.Shards = 3
	diffFingerprints(t, "serial-warmup/sharded-measure", want, fingerprint(runFork(t, shardedCfg)))

	// Serial warmup -> RunParallel measure (the fork config asks for
	// the concurrent window executor; the snapshot must not care).
	parCfg := cfg
	parCfg.Shards = 4
	parCfg.Parallel = true
	parRes := runFork(t, parCfg)
	if parRes.Executor != "parallel" {
		t.Fatalf("serial-warmup/parallel-measure: executor = %q, want parallel", parRes.Executor)
	}
	diffFingerprints(t, "serial-warmup/parallel-measure", want, fingerprint(parRes))

	// Sharded (and RunParallel) warmup -> serial measure: capture from
	// a warmed-up system on the named executor, round-trip the wire
	// format, fork into a plain serial measure phase.
	warmInto := func(label string, warmMut func(*core.Config)) {
		warmCfg := WarmupConfig(cfg)
		warmCfg.RefsPerCore = cfg.RefsPerCore
		warmMut(&warmCfg)
		ws, err := core.NewSystem(warmCfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := ws.RunWarmup(); err != nil {
			t.Fatal(err)
		}
		st, err := Capture(ws)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := Bytes(st)
		if err != nil {
			t.Fatal(err)
		}
		st2, err := Decode(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		fs, err := Fork(st2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fs.RunMeasure()
		if err != nil {
			t.Fatal(err)
		}
		diffFingerprints(t, label, want, fingerprint(res))
	}
	warmInto("sharded-warmup/serial-measure", func(c *core.Config) { c.Shards = 2 })
	warmInto("parallel-warmup/serial-measure", func(c *core.Config) {
		c.Shards = 4
		c.Parallel = true
	})
}
