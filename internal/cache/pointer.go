package cache

// PointerCache implements the L1 Coherence Cache (L1C$) and L2
// Coherence Cache (L2C$) of Direct Coherence protocols: a small
// set-associative array mapping block addresses to a GenPo (a tile
// number). In the L1C$ the pointer is a *prediction* of the block's
// supplier; in the L2C$ it is the *precise* identity of the L1 cache
// holding ownership.
type PointerCache struct {
	name  string
	sets  int
	ways  int
	shift uint
	addrs []Addr
	ptrs  []int16
	valid []bool
	lru   []uint64
	stamp uint64

	Accesses uint64
	Hits     uint64
	Updates  uint64
}

// NewPointerCache returns a pointer cache with numSets (power of two)
// sets of ways ways.
func NewPointerCache(name string, numSets, ways int) *PointerCache {
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic("cache: pointer cache sets not a power of two")
	}
	if ways <= 0 {
		panic("cache: pointer cache ways must be positive")
	}
	n := numSets * ways
	return &PointerCache{
		name:  name,
		sets:  numSets,
		ways:  ways,
		addrs: make([]Addr, n),
		ptrs:  make([]int16, n),
		valid: make([]bool, n),
		lru:   make([]uint64, n),
	}
}

// Name returns the structure's configured name.
func (p *PointerCache) Name() string { return p.name }

// Capacity returns the number of entries.
func (p *PointerCache) Capacity() int { return p.sets * p.ways }

func (p *PointerCache) setOf(a Addr) int { return int((uint64(a) >> p.shift) & uint64(p.sets-1)) }

// SetIndexShift makes the set index skip the low shift bits (the bank
// selector) of the address; see Cache.SetIndexShift.
func (p *PointerCache) SetIndexShift(shift uint) { p.shift = shift }

// Lookup returns the pointer stored for a, if any.
func (p *PointerCache) Lookup(a Addr) (ptr int16, ok bool) {
	p.Accesses++
	base := p.setOf(a) * p.ways
	for w := 0; w < p.ways; w++ {
		i := base + w
		if p.valid[i] && p.addrs[i] == a {
			p.stamp++
			p.lru[i] = p.stamp
			p.Hits++
			return p.ptrs[i], true
		}
	}
	return 0, false
}

// Update stores ptr for a, inserting (and possibly evicting LRU) if a
// is absent. It returns the evicted address and its stored pointer if
// an insertion displaced a valid entry — the pointer identifies the
// displaced block's owner, so the homes can send recalls directly
// instead of scanning every tile's L1.
func (p *PointerCache) Update(a Addr, ptr int16) (evicted Addr, evictedPtr int16, displaced bool) {
	p.Updates++
	base := p.setOf(a) * p.ways
	freeIdx, victimIdx := -1, base
	var victimStamp uint64 = ^uint64(0)
	for w := 0; w < p.ways; w++ {
		i := base + w
		if p.valid[i] && p.addrs[i] == a {
			p.ptrs[i] = ptr
			p.stamp++
			p.lru[i] = p.stamp
			return 0, 0, false
		}
		if !p.valid[i] {
			if freeIdx < 0 {
				freeIdx = i
			}
		} else if p.lru[i] < victimStamp {
			victimStamp = p.lru[i]
			victimIdx = i
		}
	}
	idx := freeIdx
	if idx < 0 {
		idx = victimIdx
		evicted = p.addrs[idx]
		evictedPtr = p.ptrs[idx]
		displaced = true
	}
	p.addrs[idx] = a
	p.ptrs[idx] = ptr
	p.valid[idx] = true
	p.stamp++
	p.lru[idx] = p.stamp
	return evicted, evictedPtr, displaced
}

// Invalidate removes a's entry, reporting whether it existed.
func (p *PointerCache) Invalidate(a Addr) bool {
	base := p.setOf(a) * p.ways
	for w := 0; w < p.ways; w++ {
		i := base + w
		if p.valid[i] && p.addrs[i] == a {
			p.valid[i] = false
			return true
		}
	}
	return false
}

// CountValid returns the number of valid entries.
func (p *PointerCache) CountValid() int {
	n := 0
	for _, v := range p.valid {
		if v {
			n++
		}
	}
	return n
}

// HitRate returns Hits/Accesses (0 when never accessed).
func (p *PointerCache) HitRate() float64 {
	if p.Accesses == 0 {
		return 0
	}
	return float64(p.Hits) / float64(p.Accesses)
}
