// Package cache provides the storage structures of a tile: generic
// set-associative arrays with protocol metadata (L1, L2, and the
// NCID-style directory cache), MSHRs, and the pointer caches (L1C$,
// L2C$) that Direct Coherence protocols add.
package cache

import "fmt"

// Addr is a block-aligned physical address: the 40-bit physical address
// of the paper shifted right by 6 (64-byte blocks).
type Addr uint64

// State is a protocol-defined line state. Zero is always Invalid.
type State uint8

// Invalid marks an unused line; all protocols share it.
const Invalid State = 0

// Line is one cache entry. The metadata fields are interpreted by the
// owning protocol:
//
//   - Sharers: a full-map bit vector (flat directory, DiCo) or an
//     area-local bit vector (DiCo-Providers, DiCo-Arin).
//   - Owner: a GenPo — the tile currently holding ownership (-1 none).
//   - ProPos: one provider pointer per area (index within the area,
//     -1 none); only the provider-based protocols use it.
//   - AreaTag: for DiCo-Arin's home entries, the area the sharer vector
//     refers to (-1 when the block is shared between areas).
type Line struct {
	Addr    Addr
	State   State
	Dirty   bool
	Sharers uint64
	Owner   int16
	ProPos  [MaxSimAreas]int8
	AreaTag int8

	// slot is the line's fixed position in its cache's backing array,
	// assigned once at construction; it makes LRU refresh O(1) instead
	// of a way scan. Value-copied snapshots of a Line keep the slot but
	// are never Touched, so the stale index is harmless there.
	slot int32
}

// MaxSimAreas bounds the number of areas the cycle simulator supports
// per chip (the analytic storage model in internal/storage has no such
// bound).
const MaxSimAreas = 8

// ResetMeta clears the protocol metadata, leaving Addr/State alone.
func (l *Line) ResetMeta() {
	l.Dirty = false
	l.Sharers = 0
	l.Owner = -1
	for i := range l.ProPos {
		l.ProPos[i] = -1
	}
	l.AreaTag = -1
}

// Valid reports whether the line holds a block.
func (l *Line) Valid() bool { return l.State != Invalid }

// Cache is a set-associative array with true-LRU replacement.
type Cache struct {
	name  string
	sets  int
	ways  int
	shift uint
	lines []Line
	lru   []uint64
	stamp uint64

	// Accesses counts lookups; the power model charges tag energy per
	// lookup and data energy separately (callers report data accesses
	// through their own event counters).
	Accesses uint64
	Misses   uint64
}

// New returns a cache with numSets sets of ways ways. numSets must be a
// power of two so the index can be masked from the address.
func New(name string, numSets, ways int) *Cache {
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache %s: numSets %d not a power of two", name, numSets))
	}
	if ways <= 0 {
		panic(fmt.Sprintf("cache %s: ways must be positive", name))
	}
	c := &Cache{
		name:  name,
		sets:  numSets,
		ways:  ways,
		lines: make([]Line, numSets*ways),
		lru:   make([]uint64, numSets*ways),
	}
	for i := range c.lines {
		c.lines[i].Owner = -1
		c.lines[i].AreaTag = -1
		c.lines[i].slot = int32(i)
		for j := range c.lines[i].ProPos {
			c.lines[i].ProPos[j] = -1
		}
	}
	return c
}

// Name returns the cache's configured name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Capacity returns the number of lines.
func (c *Cache) Capacity() int { return c.sets * c.ways }

func (c *Cache) setOf(a Addr) int { return int((uint64(a) >> c.shift) & uint64(c.sets-1)) }

// SetIndexShift makes the set index use address bits above the given
// shift. Structures private to one home bank must skip the bank-select
// bits: those are constant within the bank, and indexing with them
// would leave all but 1/2^shift of the sets unused.
func (c *Cache) SetIndexShift(shift uint) { c.shift = shift }

// Lookup returns the line holding a, or nil. It counts an access and
// refreshes LRU on hit.
func (c *Cache) Lookup(a Addr) *Line {
	c.Accesses++
	base := c.setOf(a) * c.ways
	for w := 0; w < c.ways; w++ {
		l := &c.lines[base+w]
		if l.Valid() && l.Addr == a {
			c.stamp++
			c.lru[base+w] = c.stamp
			return l
		}
	}
	c.Misses++
	return nil
}

// Peek is Lookup without access accounting or LRU update; for
// invariant checks and statistics.
func (c *Cache) Peek(a Addr) *Line {
	base := c.setOf(a) * c.ways
	for w := 0; w < c.ways; w++ {
		l := &c.lines[base+w]
		if l.Valid() && l.Addr == a {
			return l
		}
	}
	return nil
}

// Victim returns the line that would be replaced to make room for a:
// an invalid way if one exists, else the LRU way. The returned line
// still holds its old contents; the caller handles the eviction
// protocol before calling Fill.
func (c *Cache) Victim(a Addr) *Line {
	base := c.setOf(a) * c.ways
	var victim *Line
	var victimStamp uint64 = ^uint64(0)
	for w := 0; w < c.ways; w++ {
		l := &c.lines[base+w]
		if !l.Valid() {
			return l
		}
		if c.lru[base+w] < victimStamp {
			victimStamp = c.lru[base+w]
			victim = l
		}
	}
	return victim
}

// Fill installs block a into line l (previously obtained from Victim)
// with the given state, resetting metadata and refreshing LRU.
func (c *Cache) Fill(l *Line, a Addr, s State) {
	l.Addr = a
	l.State = s
	l.ResetMeta()
	c.touchLine(l)
}

// Touch refreshes the LRU position of l.
func (c *Cache) Touch(l *Line) { c.touchLine(l) }

func (c *Cache) touchLine(l *Line) {
	idx := c.indexOf(l)
	c.stamp++
	c.lru[idx] = c.stamp
}

func (c *Cache) indexOf(l *Line) int {
	idx := int(l.slot)
	if idx < 0 || idx >= len(c.lines) || &c.lines[idx] != l {
		panic("cache: Touch on foreign line")
	}
	return idx
}

// Invalidate removes block a if present, returning the prior line
// contents and whether it was present.
func (c *Cache) Invalidate(a Addr) (Line, bool) {
	base := c.setOf(a) * c.ways
	for w := 0; w < c.ways; w++ {
		l := &c.lines[base+w]
		if l.Valid() && l.Addr == a {
			old := *l
			l.State = Invalid
			l.ResetMeta()
			return old, true
		}
	}
	return Line{}, false
}

// CountValid returns the number of valid lines (for occupancy stats).
func (c *Cache) CountValid() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].Valid() {
			n++
		}
	}
	return n
}

// ForEachValid calls fn for every valid line. fn must not insert or
// invalidate lines.
func (c *Cache) ForEachValid(fn func(*Line)) {
	for i := range c.lines {
		if c.lines[i].Valid() {
			fn(&c.lines[i])
		}
	}
}
