// Package cache provides the storage structures of a tile: generic
// set-associative arrays with protocol metadata (L1, L2, and the
// NCID-style directory cache), MSHRs, and the pointer caches (L1C$,
// L2C$) that Direct Coherence protocols add.
package cache

import (
	"fmt"
	"unsafe"
)

// Addr is a block-aligned physical address: the 40-bit physical address
// of the paper shifted right by 6 (64-byte blocks).
type Addr uint64

// State is a protocol-defined line state. Zero is always Invalid.
type State uint8

// Invalid marks an unused line; all protocols share it.
const Invalid State = 0

// Line is one cache entry. The metadata fields are interpreted by the
// owning protocol:
//
//   - Sharers: a full-map bit vector (flat directory, DiCo) or an
//     area-local bit vector (DiCo-Providers, DiCo-Arin).
//   - Owner: a GenPo — the tile currently holding ownership (-1 none).
//   - ProPos: one provider pointer per area (index within the area,
//     -1 none); only the provider-based protocols use it.
//   - AreaTag: for DiCo-Arin's home entries, the area the sharer vector
//     refers to (-1 when the block is shared between areas).
//
// Field order packs the struct into 32 bytes (wide fields first), so
// two lines share a CPU cache line and the backing arrays stay as
// small as possible — the simulator's footprint is dominated by them.
type Line struct {
	Addr    Addr
	Sharers uint64
	ProPos  [MaxSimAreas]int8
	Owner   int16
	State   State
	Dirty   bool
	AreaTag int8
}

// MaxSimAreas bounds the number of areas the cycle simulator supports
// per chip (the analytic storage model in internal/storage has no such
// bound).
const MaxSimAreas = 8

// ResetMeta clears the protocol metadata, leaving Addr/State alone.
func (l *Line) ResetMeta() {
	l.Dirty = false
	l.Sharers = 0
	l.Owner = -1
	l.ProPos = [MaxSimAreas]int8{-1, -1, -1, -1, -1, -1, -1, -1}
	l.AreaTag = -1
}

// Valid reports whether the line holds a block.
func (l *Line) Valid() bool { return l.State != Invalid }

// Cache is a set-associative array with true-LRU replacement. The
// (valid, address) pair of every way is mirrored in a compact tag
// array so a probe reads 8 bytes per way — an 8-way set is one cache
// line of tag traffic — instead of a whole Line; the LRU stamps live
// in a parallel array touched only on a hit, a fill or a full-set
// victim scan. The tag stores the block address plus one (the zero
// value means empty), so freshly allocated arrays need no
// initialization pass. Only Fill and Invalidate change a way's
// identity, so the mirror has exactly two writers. Invalid lines get
// their metadata defaults from ResetMeta at Fill time, never earlier —
// the big backing arrays of directory-grade structures are faulted in
// on demand, not up front.
type Cache struct {
	name  string
	sets  int
	ways  int
	shift uint
	lines []Line
	tags  []Addr
	lru   []uint64
	stamp uint64

	// Accesses counts lookups; the power model charges tag energy per
	// lookup and data energy separately (callers report data accesses
	// through their own event counters).
	Accesses uint64
	Misses   uint64
}

// New returns a cache with numSets sets of ways ways. numSets must be a
// power of two so the index can be masked from the address.
func New(name string, numSets, ways int) *Cache {
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache %s: numSets %d not a power of two", name, numSets))
	}
	if ways <= 0 {
		panic(fmt.Sprintf("cache %s: ways must be positive", name))
	}
	return &Cache{
		name:  name,
		sets:  numSets,
		ways:  ways,
		lines: make([]Line, numSets*ways),
		tags:  make([]Addr, numSets*ways),
		lru:   make([]uint64, numSets*ways),
	}
}

// Name returns the cache's configured name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Capacity returns the number of lines.
func (c *Cache) Capacity() int { return c.sets * c.ways }

func (c *Cache) setOf(a Addr) int { return int((uint64(a) >> c.shift) & uint64(c.sets-1)) }

// SetIndexShift makes the set index use address bits above the given
// shift. Structures private to one home bank must skip the bank-select
// bits: those are constant within the bank, and indexing with them
// would leave all but 1/2^shift of the sets unused.
func (c *Cache) SetIndexShift(shift uint) { c.shift = shift }

// Lookup returns the line holding a, or nil. It counts an access and
// refreshes LRU on hit.
func (c *Cache) Lookup(a Addr) *Line {
	c.Accesses++
	base := c.setOf(a) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == a+1 {
			c.stamp++
			c.lru[base+w] = c.stamp
			return &c.lines[base+w]
		}
	}
	c.Misses++
	return nil
}

// Peek is Lookup without access accounting or LRU update; for
// invariant checks and statistics.
func (c *Cache) Peek(a Addr) *Line {
	base := c.setOf(a) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == a+1 {
			return &c.lines[base+w]
		}
	}
	return nil
}

// Probe is Peek and Victim fused into one scan of the set, for the
// lookup-then-fill pattern: hit=true means a is present and l is its
// line (untouched: the caller decides on accounting). On a miss l is
// the way Victim would pick — the first empty way (valid=false) or the
// LRU way (valid=true) — so Probe is bit-identical to Peek followed by
// Victim at half the probe traffic.
func (c *Cache) Probe(a Addr) (l *Line, hit, valid bool) {
	base := c.setOf(a) * c.ways
	empty := -1
	for w := 0; w < c.ways; w++ {
		t := c.tags[base+w]
		if t == a+1 {
			return &c.lines[base+w], true, true
		}
		if t == 0 && empty < 0 {
			empty = base + w
		}
	}
	if empty >= 0 {
		return &c.lines[empty], false, false
	}
	victimIdx := base
	victimStamp := c.lru[base]
	for w := 1; w < c.ways; w++ {
		if s := c.lru[base+w]; s < victimStamp {
			victimStamp = s
			victimIdx = base + w
		}
	}
	return &c.lines[victimIdx], false, true
}

// Victim returns the line that would be replaced to make room for a —
// an invalid way if one exists (valid=false), else the LRU way
// (valid=true). The validity comes from the tag scan so callers of an
// empty way never read the (possibly never-touched) Line itself. A
// valid victim still holds its old contents; the caller handles the
// eviction protocol before calling Fill.
func (c *Cache) Victim(a Addr) (victim *Line, valid bool) {
	base := c.setOf(a) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == 0 {
			return &c.lines[base+w], false
		}
	}
	victimIdx := base
	victimStamp := c.lru[base]
	for w := 1; w < c.ways; w++ {
		if s := c.lru[base+w]; s < victimStamp {
			victimStamp = s
			victimIdx = base + w
		}
	}
	return &c.lines[victimIdx], true
}

// Fill installs block a into line l (previously obtained from Victim)
// with the given state, resetting metadata and refreshing LRU.
func (c *Cache) Fill(l *Line, a Addr, s State) {
	l.Addr = a
	l.State = s
	l.ResetMeta()
	idx := c.indexOf(l)
	c.tags[idx] = a + 1
	c.stamp++
	c.lru[idx] = c.stamp
}

// Touch refreshes the LRU position of l.
func (c *Cache) Touch(l *Line) { c.touchLine(l) }

func (c *Cache) touchLine(l *Line) {
	idx := c.indexOf(l)
	c.stamp++
	c.lru[idx] = c.stamp
}

// indexOf recovers the backing-array position of a line returned by
// Lookup/Peek/Victim. Pointer arithmetic instead of a stored index
// keeps Line free of positional state, which lets New skip touching
// the (potentially tens of MB) line array entirely.
func (c *Cache) indexOf(l *Line) int {
	off := uintptr(unsafe.Pointer(l)) - uintptr(unsafe.Pointer(unsafe.SliceData(c.lines)))
	idx := int(off / unsafe.Sizeof(Line{}))
	if idx < 0 || idx >= len(c.lines) || &c.lines[idx] != l {
		panic("cache: Touch on foreign line")
	}
	return idx
}

// Invalidate removes block a if present, returning the prior line
// contents and whether it was present.
func (c *Cache) Invalidate(a Addr) (Line, bool) {
	base := c.setOf(a) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == a+1 {
			l := &c.lines[base+w]
			old := *l
			l.State = Invalid
			l.ResetMeta()
			c.tags[base+w] = 0
			return old, true
		}
	}
	return Line{}, false
}

// InvalidateLine removes a valid line previously located by
// Lookup/Peek/Probe, returning its prior contents. It is Invalidate
// without the set scan — the caller already paid for the probe.
func (c *Cache) InvalidateLine(l *Line) Line {
	old := *l
	l.State = Invalid
	l.ResetMeta()
	c.tags[c.indexOf(l)] = 0
	return old
}

// CountValid returns the number of valid lines (for occupancy stats).
func (c *Cache) CountValid() int {
	n := 0
	for i := range c.tags {
		if c.tags[i] != 0 {
			n++
		}
	}
	return n
}

// ForEachValid calls fn for every valid line. fn must not insert or
// invalidate lines.
func (c *Cache) ForEachValid(fn func(*Line)) {
	for i := range c.tags {
		if c.tags[i] != 0 {
			fn(&c.lines[i])
		}
	}
}
