package cache

import (
	"testing"
	"testing/quick"
)

// fillBlock installs a block through the Victim/Fill pair, as the
// protocol engines do.
func fillBlock(c *Cache, a Addr, s State) {
	v, _ := c.Victim(a)
	c.Fill(v, a, s)
}

func TestCacheLookupMissThenHit(t *testing.T) {
	c := New("l1", 4, 2)
	if c.Lookup(0x100) != nil {
		t.Fatal("hit in empty cache")
	}
	v, valid := c.Victim(0x100)
	if v == nil || valid {
		t.Fatal("no invalid victim in empty cache")
	}
	c.Fill(v, 0x100, State(1))
	l := c.Lookup(0x100)
	if l == nil || l.Addr != 0x100 || l.State != State(1) {
		t.Fatal("fill then lookup failed")
	}
	if c.Accesses != 2 || c.Misses != 1 {
		t.Errorf("accesses/misses = %d/%d, want 2/1", c.Accesses, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New("l1", 1, 2) // one set, two ways
	a, b, d := Addr(1), Addr(2), Addr(3)
	fillBlock(c, a, 1)
	fillBlock(c, b, 1)
	c.Lookup(a) // a is now MRU
	v, _ := c.Victim(d)
	if v.Addr != b {
		t.Errorf("victim = %#x, want %#x (LRU)", v.Addr, b)
	}
	c.Fill(v, d, 1)
	if c.Peek(b) != nil {
		t.Error("evicted block still present")
	}
	if c.Peek(a) == nil || c.Peek(d) == nil {
		t.Error("resident blocks lost")
	}
}

func TestCacheSetIsolation(t *testing.T) {
	c := New("l1", 4, 1)
	// Addresses mapping to different sets must not evict each other.
	for i := Addr(0); i < 4; i++ {
		fillBlock(c, i, 1)
	}
	for i := Addr(0); i < 4; i++ {
		if c.Peek(i) == nil {
			t.Fatalf("block %d evicted despite distinct sets", i)
		}
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := New("l1", 2, 2)
	fillBlock(c, 5, 2)
	old, ok := c.Invalidate(5)
	if !ok || old.Addr != 5 || old.State != 2 {
		t.Fatal("invalidate did not return prior contents")
	}
	if c.Peek(5) != nil {
		t.Fatal("block present after invalidate")
	}
	if _, ok := c.Invalidate(5); ok {
		t.Fatal("double invalidate reported success")
	}
}

func TestCacheMetaReset(t *testing.T) {
	c := New("l1", 2, 1)
	v, _ := c.Victim(1)
	c.Fill(v, 1, 1)
	v.Sharers = 0xff
	v.Owner = 3
	v.ProPos[0] = 2
	v.Dirty = true
	c.Invalidate(1)
	v2, _ := c.Victim(1)
	c.Fill(v2, 1, 1)
	if v2.Sharers != 0 || v2.Owner != -1 || v2.ProPos[0] != -1 || v2.Dirty {
		t.Error("Fill did not reset metadata")
	}
}

func TestCacheCountValidAndForEach(t *testing.T) {
	c := New("l2", 8, 2)
	for i := Addr(0); i < 5; i++ {
		fillBlock(c, i, 1)
	}
	if got := c.CountValid(); got != 5 {
		t.Errorf("CountValid = %d, want 5", got)
	}
	seen := 0
	c.ForEachValid(func(l *Line) { seen++ })
	if seen != 5 {
		t.Errorf("ForEachValid visited %d, want 5", seen)
	}
}

func TestCachePropertyNoDuplicates(t *testing.T) {
	c := New("p", 8, 4)
	if err := quick.Check(func(addrs []uint16) bool {
		for _, a := range addrs {
			addr := Addr(a % 256)
			if c.Lookup(addr) == nil {
				fillBlock(c, addr, 1)
			}
		}
		// No address may appear twice.
		seen := make(map[Addr]int)
		c.ForEachValid(func(l *Line) { seen[l.Addr]++ })
		for _, n := range seen {
			if n > 1 {
				return false
			}
		}
		return c.CountValid() <= c.Capacity()
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCacheBadGeometry(t *testing.T) {
	for _, fn := range []func(){
		func() { New("x", 3, 2) },
		func() { New("x", 0, 2) },
		func() { New("x", 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestPointerCacheBasics(t *testing.T) {
	p := NewPointerCache("l1c", 4, 2)
	if _, ok := p.Lookup(9); ok {
		t.Fatal("hit in empty pointer cache")
	}
	p.Update(9, 42)
	ptr, ok := p.Lookup(9)
	if !ok || ptr != 42 {
		t.Fatalf("lookup = %d,%v want 42,true", ptr, ok)
	}
	p.Update(9, 7) // overwrite
	if ptr, _ := p.Lookup(9); ptr != 7 {
		t.Errorf("overwrite failed: %d", ptr)
	}
	if p.HitRate() <= 0 {
		t.Error("hit rate not tracked")
	}
}

func TestPointerCacheEviction(t *testing.T) {
	p := NewPointerCache("l1c", 1, 2)
	p.Update(1, 10)
	p.Update(2, 20)
	p.Lookup(1) // 1 MRU
	ev, evPtr, disp := p.Update(3, 30)
	if !disp || ev != 2 || evPtr != 20 {
		t.Errorf("evicted %d ptr %d (displaced %v), want 2 20 true", ev, evPtr, disp)
	}
	if _, ok := p.Lookup(2); ok {
		t.Error("evicted entry still present")
	}
}

func TestPointerCacheInvalidate(t *testing.T) {
	p := NewPointerCache("l2c", 2, 1)
	p.Update(4, 1)
	if !p.Invalidate(4) {
		t.Fatal("invalidate missed present entry")
	}
	if p.Invalidate(4) {
		t.Fatal("double invalidate succeeded")
	}
	if p.CountValid() != 0 {
		t.Fatal("entries remain after invalidate")
	}
}

func TestMSHRLifecycle(t *testing.T) {
	m := NewMSHR(2)
	e := m.Allocate(0x10, false, 100)
	if e.Addr != 0x10 || e.Write {
		t.Fatal("entry fields wrong")
	}
	if got, ok := m.Lookup(0x10); !ok || got != e {
		t.Fatal("lookup after allocate failed")
	}
	if m.Outstanding() != 1 {
		t.Fatal("outstanding wrong")
	}
	m.Allocate(0x20, true, 101)
	if !m.Full() {
		t.Fatal("MSHR should be full at capacity 2")
	}
	m.Release(0x10)
	if m.Full() || m.Outstanding() != 1 {
		t.Fatal("release did not free capacity")
	}
}

func TestMSHRDone(t *testing.T) {
	e := &MSHREntry{}
	if e.Done() {
		t.Fatal("entry done before data")
	}
	e.DataReceived = true
	if !e.Done() {
		t.Fatal("entry with data and no pending acks should be done")
	}
	e.SharerAcks = 2
	if e.Done() {
		t.Fatal("done with pending sharer acks")
	}
	e.SharerAcks = 0
	e.ProviderAcks = 1
	if e.Done() {
		t.Fatal("done with pending provider acks")
	}
	e.ProviderAcks = 0
	e.HomeAck = 1
	if e.Done() {
		t.Fatal("done with pending home ack")
	}
}

func TestMSHRPanics(t *testing.T) {
	m := NewMSHR(1)
	m.Allocate(1, false, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double allocation did not panic")
			}
		}()
		m.Allocate(1, false, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("overflow did not panic")
			}
		}()
		m.Allocate(2, false, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("release of absent entry did not panic")
			}
		}()
		m.Release(99)
	}()
}

func TestMSHRUnlimited(t *testing.T) {
	m := NewMSHR(0)
	for i := Addr(0); i < 100; i++ {
		m.Allocate(i, false, 0)
	}
	if m.Full() {
		t.Error("unlimited MSHR reported full")
	}
}

func BenchmarkCacheLookupHit(b *testing.B) {
	c := New("l2", 1024, 8)
	for i := Addr(0); i < 8192; i++ {
		fillBlock(c, i, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(Addr(i) % 8192)
	}
}

func BenchmarkPointerCacheUpdate(b *testing.B) {
	p := NewPointerCache("l1c", 512, 4)
	for i := 0; i < b.N; i++ {
		p.Update(Addr(i%4096), int16(i%64))
	}
}

func TestSetIndexShift(t *testing.T) {
	// With a 6-bit shift, addresses that differ only in the low 6 bits
	// (the bank-select bits) must map to the same set, and addresses
	// differing in bit 6 must map to different sets.
	c := New("l2", 4, 1)
	c.SetIndexShift(6)
	base := Addr(0x1000)
	fillBlock(c, base, 1)
	// Same set: fills with a low-bit variant must evict (1-way).
	variant := base | 0x3f
	fillBlock(c, variant, 1)
	if c.Peek(base) != nil {
		t.Error("low-bit variant did not share the set (shift ignored)")
	}
	// Different set: bit 6 set.
	other := base | 0x40
	fillBlock(c, other, 1)
	if c.Peek(variant) == nil {
		t.Error("bit-6 variant evicted the other set's line")
	}
}

func TestPointerCacheSetIndexShift(t *testing.T) {
	p := NewPointerCache("l2c", 2, 1)
	p.SetIndexShift(6)
	p.Update(0x1000, 1)
	if ev, _, disp := p.Update(0x103f, 2); !disp || ev != 0x1000 {
		t.Errorf("same-set update did not displace: %v %v", ev, disp)
	}
}
