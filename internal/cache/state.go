package cache

import "fmt"

// This file provides the snapshot surface of the storage structures:
// pure-data state types captured at the warmup/measure boundary and
// restored into freshly built structures of identical geometry. The
// compact tag mirror is derived state, so restore rebuilds it from the
// copied lines rather than serializing it.

// CacheState is the serializable state of a Cache.
type CacheState struct {
	Sets, Ways int
	Lines      []Line
	LRU        []uint64
	Stamp      uint64
	Accesses   uint64
	Misses     uint64
}

// State returns a deep copy of the cache's contents and counters.
func (c *Cache) State() *CacheState {
	st := &CacheState{
		Sets:     c.sets,
		Ways:     c.ways,
		Lines:    make([]Line, len(c.lines)),
		LRU:      make([]uint64, len(c.tags)),
		Stamp:    c.stamp,
		Accesses: c.Accesses,
		Misses:   c.Misses,
	}
	copy(st.Lines, c.lines)
	for i := range c.tags {
		st.LRU[i] = c.lru[i]
	}
	return st
}

// RestoreState overwrites the cache's contents and counters with a
// captured state. The geometry must match the cache's construction.
func (c *Cache) RestoreState(st *CacheState) error {
	if st.Sets != c.sets || st.Ways != c.ways {
		return fmt.Errorf("cache %s: geometry mismatch: snapshot %dx%d, cache %dx%d",
			c.name, st.Sets, st.Ways, c.sets, c.ways)
	}
	if len(st.Lines) != len(c.lines) || len(st.LRU) != len(c.tags) {
		return fmt.Errorf("cache %s: snapshot size mismatch", c.name)
	}
	copy(c.lines, st.Lines)
	for i := range c.lines {
		if c.lines[i].Valid() {
			c.tags[i] = c.lines[i].Addr + 1
		} else {
			c.tags[i] = 0
		}
		c.lru[i] = st.LRU[i]
	}
	c.stamp = st.Stamp
	c.Accesses = st.Accesses
	c.Misses = st.Misses
	return nil
}

// PointerCacheState is the serializable state of a PointerCache.
type PointerCacheState struct {
	Sets, Ways int
	Addrs      []Addr
	Ptrs       []int16
	Valid      []bool
	LRU        []uint64
	Stamp      uint64
	Accesses   uint64
	Hits       uint64
	Updates    uint64
}

// State returns a deep copy of the pointer cache's contents.
func (p *PointerCache) State() *PointerCacheState {
	st := &PointerCacheState{
		Sets: p.sets, Ways: p.ways,
		Addrs:    make([]Addr, len(p.addrs)),
		Ptrs:     make([]int16, len(p.ptrs)),
		Valid:    make([]bool, len(p.valid)),
		LRU:      make([]uint64, len(p.lru)),
		Stamp:    p.stamp,
		Accesses: p.Accesses,
		Hits:     p.Hits,
		Updates:  p.Updates,
	}
	copy(st.Addrs, p.addrs)
	copy(st.Ptrs, p.ptrs)
	copy(st.Valid, p.valid)
	copy(st.LRU, p.lru)
	return st
}

// RestoreState overwrites the pointer cache's contents with a captured
// state of identical geometry.
func (p *PointerCache) RestoreState(st *PointerCacheState) error {
	if st.Sets != p.sets || st.Ways != p.ways {
		return fmt.Errorf("cache %s: geometry mismatch: snapshot %dx%d, cache %dx%d",
			p.name, st.Sets, st.Ways, p.sets, p.ways)
	}
	if len(st.Addrs) != len(p.addrs) {
		return fmt.Errorf("cache %s: snapshot size mismatch", p.name)
	}
	copy(p.addrs, st.Addrs)
	copy(p.ptrs, st.Ptrs)
	copy(p.valid, st.Valid)
	copy(p.lru, st.LRU)
	p.stamp = st.Stamp
	p.Accesses = st.Accesses
	p.Hits = st.Hits
	p.Updates = st.Updates
	return nil
}

// MSHRState carries the MSHR's cumulative counters. In-flight entries
// hold completion closures and cannot be serialized, so capture
// requires an empty MSHR (the warmup/measure boundary guarantees it).
type MSHRState struct {
	Allocations uint64
	FullStalls  uint64
}

// State captures the MSHR counters; it fails if misses are in flight.
func (m *MSHR) State() (MSHRState, error) {
	if n := m.Outstanding(); n > 0 {
		return MSHRState{}, fmt.Errorf("cache: MSHR not quiescent: %d misses in flight", n)
	}
	return MSHRState{Allocations: m.Allocations, FullStalls: m.FullStalls}, nil
}

// RestoreState overwrites the MSHR counters; the MSHR must be empty.
func (m *MSHR) RestoreState(st MSHRState) error {
	if n := m.Outstanding(); n > 0 {
		return fmt.Errorf("cache: cannot restore into an MSHR with %d misses in flight", n)
	}
	m.Allocations = st.Allocations
	m.FullStalls = st.FullStalls
	return nil
}
