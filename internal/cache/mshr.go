package cache

// MSHR tracks the outstanding misses of one L1 controller. Each entry
// carries the two acknowledgement counters DiCo-Providers requires
// (Section IV-A: one for provider acks, one for sharer acks) — the
// other protocols simply leave ProviderAcks at zero.
type MSHR struct {
	capacity int
	entries  map[Addr]*MSHREntry

	Allocations uint64
	FullStalls  uint64
}

// MSHREntry is one in-flight miss.
type MSHREntry struct {
	Addr         Addr
	Write        bool
	IssuedAt     uint64 // kernel time at allocation, for latency stats
	SharerAcks   int    // pending acknowledgements from sharers
	ProviderAcks int    // pending acknowledgements from providers
	DataReceived bool
	HomeAck      bool // Change_Owner acknowledgement pending (false = received/not needed)

	// Deferred work to run when the miss completes.
	OnComplete func()

	// Tag describes how the miss was routed, for the Figure 9b
	// breakdown; the protocol sets it.
	Tag int
	// Links accumulates the mesh links traversed by the miss's
	// messages (request legs + data response), for Section V-D's
	// shortened-miss analysis.
	Links int
	// NeedsData distinguishes a full miss from an ownership upgrade.
	NeedsData bool
	// InvalidatedWhilePending is set when an invalidation for this
	// block arrives while the miss is in flight; the fill then
	// completes the access but immediately drops the line (the racing
	// write serialized after this access).
	InvalidatedWhilePending bool
}

// NewMSHR returns an MSHR with the given capacity (0 = unlimited).
func NewMSHR(capacity int) *MSHR {
	return &MSHR{capacity: capacity, entries: make(map[Addr]*MSHREntry)}
}

// Lookup returns the entry for a, if any.
func (m *MSHR) Lookup(a Addr) (*MSHREntry, bool) {
	e, ok := m.entries[a]
	return e, ok
}

// Full reports whether a new allocation would exceed capacity.
func (m *MSHR) Full() bool {
	return m.capacity > 0 && len(m.entries) >= m.capacity
}

// Allocate creates an entry for a. It panics if a is already in flight
// (the controller must merge or stall first) or if the MSHR is full.
func (m *MSHR) Allocate(a Addr, write bool, now uint64) *MSHREntry {
	if _, ok := m.entries[a]; ok {
		panic("cache: MSHR double allocation")
	}
	if m.Full() {
		panic("cache: MSHR overflow; caller must check Full")
	}
	e := &MSHREntry{Addr: a, Write: write, IssuedAt: now}
	m.entries[a] = e
	m.Allocations++
	return e
}

// Release removes the entry for a. It panics if absent.
func (m *MSHR) Release(a Addr) {
	if _, ok := m.entries[a]; !ok {
		panic("cache: MSHR release of absent entry")
	}
	delete(m.entries, a)
}

// Outstanding returns the number of in-flight misses.
func (m *MSHR) Outstanding() int { return len(m.entries) }

// ForEach visits every in-flight entry (map order; callers that need
// determinism must sort).
func (m *MSHR) ForEach(fn func(*MSHREntry)) {
	for _, e := range m.entries {
		fn(e)
	}
}

// Done reports whether the entry's completion conditions are all met:
// data arrived and no acknowledgement of any kind is pending.
func (e *MSHREntry) Done() bool {
	return e.DataReceived && e.SharerAcks == 0 && e.ProviderAcks == 0 && !e.HomeAck
}
