package cache

// MSHR tracks the outstanding misses of one L1 controller. Each entry
// carries the two acknowledgement counters DiCo-Providers requires
// (Section IV-A: one for provider acks, one for sharer acks) — the
// other protocols simply leave ProviderAcks at zero.
//
// Entries live in a small insertion-ordered slice backed by a free
// list rather than a map: a blocking in-order core keeps at most a
// handful of misses in flight per tile, and the protocols consult the
// MSHR a dozen-plus times per miss, so a linear scan over one or two
// pooled entries beats hashing the address every time and allocates
// nothing in steady state.
type MSHR struct {
	capacity int
	active   []*MSHREntry // in-flight, insertion order
	free     *MSHREntry   // recycled entries, linked through next

	Allocations uint64
	FullStalls  uint64
}

// MSHREntry is one in-flight miss.
type MSHREntry struct {
	Addr         Addr
	Write        bool
	IssuedAt     uint64 // kernel time at allocation, for latency stats
	SharerAcks   int    // pending acknowledgements from sharers
	ProviderAcks int    // pending acknowledgements from providers
	DataReceived bool
	// HomeAck counts pending Change_Owner acknowledgements. It is a
	// counter, not a flag: the expectation (+1) rides to the requestor
	// with the data message while the ack itself travels directly, so
	// an early ack legitimately drives it to -1 until the data arrives.
	HomeAck int

	// Deferred work to run when the miss completes.
	OnComplete func()

	// Tag describes how the miss was routed, for the Figure 9b
	// breakdown; the protocol sets it.
	Tag int
	// Links accumulates the mesh links traversed by the miss's
	// messages (request legs + data response), for Section V-D's
	// shortened-miss analysis.
	Links int
	// NeedsData distinguishes a full miss from an ownership upgrade.
	NeedsData bool
	// InvalidatedWhilePending is set when an invalidation for this
	// block arrives while the miss is in flight; the fill then
	// completes the access but immediately drops the line (the racing
	// write serialized after this access).
	InvalidatedWhilePending bool

	next *MSHREntry // free-list link; nil while in flight
}

// NewMSHR returns an MSHR with the given capacity (0 = unlimited).
func NewMSHR(capacity int) *MSHR {
	return &MSHR{capacity: capacity}
}

// Lookup returns the entry for a, if any.
func (m *MSHR) Lookup(a Addr) (*MSHREntry, bool) {
	for _, e := range m.active {
		if e.Addr == a {
			return e, true
		}
	}
	return nil, false
}

// Full reports whether a new allocation would exceed capacity.
func (m *MSHR) Full() bool {
	return m.capacity > 0 && len(m.active) >= m.capacity
}

// Allocate creates an entry for a. It panics if a is already in flight
// (the controller must merge or stall first) or if the MSHR is full.
func (m *MSHR) Allocate(a Addr, write bool, now uint64) *MSHREntry {
	if _, ok := m.Lookup(a); ok {
		panic("cache: MSHR double allocation")
	}
	if m.Full() {
		panic("cache: MSHR overflow; caller must check Full")
	}
	e := m.free
	if e != nil {
		m.free = e.next
		*e = MSHREntry{Addr: a, Write: write, IssuedAt: now}
	} else {
		e = &MSHREntry{Addr: a, Write: write, IssuedAt: now}
	}
	m.active = append(m.active, e)
	m.Allocations++
	return e
}

// Release removes the entry for a and recycles it. It panics if
// absent.
func (m *MSHR) Release(a Addr) {
	for i, e := range m.active {
		if e.Addr == a {
			copy(m.active[i:], m.active[i+1:])
			m.active[len(m.active)-1] = nil
			m.active = m.active[:len(m.active)-1]
			e.OnComplete = nil // drop the closure before pooling
			e.next = m.free
			m.free = e
			return
		}
	}
	panic("cache: MSHR release of absent entry")
}

// Outstanding returns the number of in-flight misses.
func (m *MSHR) Outstanding() int { return len(m.active) }

// ForEach visits every in-flight entry in allocation order.
func (m *MSHR) ForEach(fn func(*MSHREntry)) {
	for _, e := range m.active {
		fn(e)
	}
}

// Done reports whether the entry's completion conditions are all met:
// data arrived and no acknowledgement of any kind is pending.
func (e *MSHREntry) Done() bool {
	return e.DataReceived && e.SharerAcks == 0 && e.ProviderAcks == 0 && e.HomeAck == 0
}
