package cache

import (
	"fmt"
	"unsafe"
)

// DirEntry is the payload of one directory-cache way: the tracked
// block's sharer vector and owner pointer, with the way's LRU stamp
// interleaved. The flat directory touches sharers or owner on nearly
// every probe that touches the LRU stamp, so keeping the three in one
// 24-byte record means a home-side directory operation dirties a
// single cache line of metadata where the generic Cache — whose Line
// carries DiCo provider state the directory never uses — spreads the
// same traffic over three arrays.
type DirEntry struct {
	lru     uint64
	Sharers uint64
	Owner   int16
}

// DirCache is the NCID directory cache: a set-associative array with
// true-LRU replacement, bit-identical in lookup, victim choice and
// accounting to a generic Cache of the same geometry, but storing only
// the directory's working fields. The block identity lives in the
// compact tag mirror (address plus one; zero means empty), exactly as
// in Cache, so probes scan 8 bytes per way.
type DirCache struct {
	name  string
	sets  int
	ways  int
	shift uint
	tags  []Addr
	ents  []DirEntry
	stamp uint64

	Accesses uint64
	Misses   uint64
}

// NewDirCache returns a directory cache with numSets sets of ways
// ways. numSets must be a power of two.
func NewDirCache(name string, numSets, ways int) *DirCache {
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache %s: numSets %d not a power of two", name, numSets))
	}
	if ways <= 0 {
		panic(fmt.Sprintf("cache %s: ways must be positive", name))
	}
	return &DirCache{
		name: name,
		sets: numSets,
		ways: ways,
		tags: make([]Addr, numSets*ways),
		ents: make([]DirEntry, numSets*ways),
	}
}

// SetIndexShift makes the set index use address bits above the given
// shift (see Cache.SetIndexShift).
func (c *DirCache) SetIndexShift(shift uint) { c.shift = shift }

func (c *DirCache) setOf(a Addr) int { return int((uint64(a) >> c.shift) & uint64(c.sets-1)) }

// Peek returns the entry tracking a, or nil. No accounting, no LRU
// update.
func (c *DirCache) Peek(a Addr) *DirEntry {
	base := c.setOf(a) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == a+1 {
			return &c.ents[base+w]
		}
	}
	return nil
}

// Probe scans the set once for the lookup-then-allocate pattern:
// hit=true means a is tracked and e is its entry (untouched — the
// caller decides on accounting). On a miss e is the way a fill should
// use — the first empty way (valid=false) or the LRU way (valid=true,
// with victimAddr the block it still tracks). The choice is
// bit-identical to Cache.Probe on the same geometry and history.
func (c *DirCache) Probe(a Addr) (e *DirEntry, victimAddr Addr, hit, valid bool) {
	base := c.setOf(a) * c.ways
	empty := -1
	for w := 0; w < c.ways; w++ {
		t := c.tags[base+w]
		if t == a+1 {
			return &c.ents[base+w], 0, true, true
		}
		if t == 0 && empty < 0 {
			empty = base + w
		}
	}
	if empty >= 0 {
		return &c.ents[empty], 0, false, false
	}
	victimIdx := base
	victimStamp := c.ents[base].lru
	for w := 1; w < c.ways; w++ {
		if s := c.ents[base+w].lru; s < victimStamp {
			victimStamp = s
			victimIdx = base + w
		}
	}
	return &c.ents[victimIdx], c.tags[victimIdx] - 1, false, true
}

// Touch refreshes the LRU position of e.
func (c *DirCache) Touch(e *DirEntry) {
	c.stamp++
	e.lru = c.stamp
}

// Fill installs block a into entry e (previously obtained from Probe),
// refreshing LRU. Sharers and Owner are left for the caller to set —
// every allocation site overwrites both immediately.
func (c *DirCache) Fill(e *DirEntry, a Addr) {
	c.tags[c.indexOf(e)] = a + 1
	c.stamp++
	e.lru = c.stamp
}

// indexOf recovers the backing-array position of an entry returned by
// Peek/Probe.
func (c *DirCache) indexOf(e *DirEntry) int {
	off := uintptr(unsafe.Pointer(e)) - uintptr(unsafe.Pointer(unsafe.SliceData(c.ents)))
	idx := int(off / unsafe.Sizeof(DirEntry{}))
	if idx < 0 || idx >= len(c.ents) || &c.ents[idx] != e {
		panic("cache: foreign directory entry")
	}
	return idx
}

// State returns the directory cache's contents as a generic
// CacheState, reconstructing the Line form a generic Cache of the same
// geometry would have held: filled ways carry the tracked address,
// state 1 and ResetMeta defaults; empty ways are zero Lines (the
// directory never invalidates entries, so no third shape exists).
func (c *DirCache) State() *CacheState {
	st := &CacheState{
		Sets:     c.sets,
		Ways:     c.ways,
		Lines:    make([]Line, len(c.ents)),
		LRU:      make([]uint64, len(c.ents)),
		Stamp:    c.stamp,
		Accesses: c.Accesses,
		Misses:   c.Misses,
	}
	for i := range c.ents {
		st.LRU[i] = c.ents[i].lru
		if c.tags[i] == 0 {
			continue
		}
		l := &st.Lines[i]
		l.Addr = c.tags[i] - 1
		l.State = 1
		l.ResetMeta()
		l.Sharers = c.ents[i].Sharers
		l.Owner = c.ents[i].Owner
	}
	return st
}

// RestoreState overwrites the directory cache's contents with a
// captured state of matching geometry.
func (c *DirCache) RestoreState(st *CacheState) error {
	if st.Sets != c.sets || st.Ways != c.ways {
		return fmt.Errorf("cache %s: geometry mismatch: snapshot %dx%d, cache %dx%d",
			c.name, st.Sets, st.Ways, c.sets, c.ways)
	}
	if len(st.Lines) != len(c.ents) || len(st.LRU) != len(c.ents) {
		return fmt.Errorf("cache %s: snapshot size mismatch", c.name)
	}
	for i := range c.ents {
		l := &st.Lines[i]
		if l.Valid() {
			c.tags[i] = l.Addr + 1
		} else {
			c.tags[i] = 0
		}
		c.ents[i] = DirEntry{lru: st.LRU[i], Sharers: l.Sharers, Owner: l.Owner}
	}
	c.stamp = st.Stamp
	c.Accesses = st.Accesses
	c.Misses = st.Misses
	return nil
}
