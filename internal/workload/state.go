package workload

import (
	"fmt"

	"repro/internal/sim"
)

// This file provides the snapshot surface of the reference generator:
// the per-core random streams and locality cursors. Everything else in
// a Generator (zipf tables, thread indices, window sizes) is a pure
// function of the workload and placement, so a freshly built generator
// only needs the cursors restored to reproduce the stream exactly.

// CoreCursor is the serializable locality cursor of one core.
type CoreCursor struct {
	Page   uint64
	Class  int
	Block  int
	Burst  int
	Repeat int
	Write  bool
}

// GeneratorState is the serializable state of a Generator.
type GeneratorState struct {
	Rands []sim.RandState
	Cores []CoreCursor
}

// State returns a deep copy of the generator's per-core cursors and
// random streams.
func (g *Generator) State() *GeneratorState {
	st := &GeneratorState{
		Rands: make([]sim.RandState, len(g.rng)),
		Cores: make([]CoreCursor, len(g.cores)),
	}
	for i, r := range g.rng {
		st.Rands[i] = r.State()
	}
	for i := range g.cores {
		cs := &g.cores[i]
		st.Cores[i] = CoreCursor{
			Page: cs.page, Class: int(cs.class), Block: cs.block,
			Burst: cs.burst, Repeat: cs.repeat, Write: cs.write,
		}
	}
	return st
}

// RestoreState overwrites the generator's cursors and random streams.
// The core count must match the generator's construction.
func (g *Generator) RestoreState(st *GeneratorState) error {
	if len(st.Rands) != len(g.rng) || len(st.Cores) != len(g.cores) {
		return fmt.Errorf("workload: snapshot has %d cores, generator has %d", len(st.Cores), len(g.cores))
	}
	for i, rs := range st.Rands {
		g.rng[i].SetState(rs)
	}
	for i, c := range st.Cores {
		g.cores[i] = coreState{
			page: c.Page, class: pageClass(c.Class), block: c.Block,
			burst: c.Burst, repeat: c.Repeat, write: c.Write,
		}
	}
	return nil
}
