// Package workload generates the synthetic memory reference streams
// that stand in for the paper's consolidated benchmarks (Table IV):
// apache, jbb, radix, lu, volrend, tomcatv and the two mixed
// configurations, each run as 4 VMs of 16 cores.
//
// Each per-VM profile is calibrated on three axes that drive every
// result in the paper's evaluation:
//
//   - Working-set size: apache and jbb have working sets much larger
//     than the L1 (L2-power-dominated); the scientific kernels mostly
//     fit in the L1 (L1-power-dominated). jbb's working set also
//     exceeds its share of the L2, giving the >40% L2 miss rate the
//     paper reports.
//   - Sharing: thread-private, VM-shared, and inter-VM deduplicated
//     (read-only) pages, with the dedup page count solved from the
//     memory savings column of Table IV.
//   - Locality: Zipf-distributed page popularity plus sequential
//     bursts within a page.
package workload

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/memctrl"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Access is one memory reference of a core.
type Access struct {
	Addr  cache.Addr
	Write bool
	Gap   sim.Time // non-memory cycles preceding this reference
}

// VMProfile describes the memory behaviour of one VM's application.
type VMProfile struct {
	Name       string
	ContentKey uint64 // VMs with equal keys deduplicate against each other

	PrivatePagesPerThread int
	VMSharedPages         int
	DedupPages            int

	WriteFrac         float64 // writes among private-page block visits
	VMSharedWriteFrac float64 // writes among VM-shared visits (read-mostly)
	DedupWriteFrac    float64 // writes among dedup accesses (CoW; near zero)
	DedupFrac         float64 // accesses hitting dedup pages
	VMSharedFrac      float64 // accesses hitting VM-shared pages

	// Dedup accesses split between a small chip-hot set (libc-style
	// pages every thread touches) and a per-thread window of the
	// full deduplicated image (so each core's active footprint stays
	// bounded while the VM as a whole touches — and deduplicates —
	// the entire set).
	HotDedupPages int
	HotShare      float64

	ZipfS        float64 // page-popularity skew (0 = uniform)
	BurstBlocks  int     // sequential blocks touched per page visit
	RefsPerBlock int     // mean references per block touch (word-level reuse)
	MeanGap      int     // mean non-memory cycles between references
	RefsPerTx    int     // references per "transaction" (server metric)
	ServerMetric bool    // true: transactions/cycles; false: runtime
}

// dedupPagesFor solves Table IV's memory-savings column for the number
// of deduplicated pages: with nVM VMs sharing D pages and P private
// pages each, saved = (nVM-1)*D / (nVM*(P+D)).
func dedupPagesFor(saved float64, privatePages, nVM int) int {
	if saved <= 0 {
		return 0
	}
	num := saved * float64(nVM) * float64(privatePages)
	den := float64(nVM-1) - saved*float64(nVM)
	if den <= 0 {
		panic("workload: infeasible dedup savings target")
	}
	return int(math.Round(num / den))
}

func key(name string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

const vmsPerChip = 4

// windowGroup is the number of threads sharing one dedup window, so
// that in-area providers get reused by neighbours.
const windowGroup = 4

func profile(name string) VMProfile {
	p := VMProfile{
		Name:              name,
		ContentKey:        key(name),
		WriteFrac:         0.25,
		VMSharedWriteFrac: 0.08,
		DedupWriteFrac:    0.002,
		ZipfS:             0.85,
		BurstBlocks:       4,
		RefsPerBlock:      8,
		MeanGap:           3,
		RefsPerTx:         400,
		HotDedupPages:     16,
		HotShare:          0.4,
	}
	switch name {
	case "apache":
		// Web server: large working set, hot shared content, lots of
		// deduplicated binaries/libraries. L2-power-dominated.
		// Per-worker state is small (fits the L1); the shared content
		// (site data, php/apache binaries) is large and thrashes, so
		// most misses go to blocks held by other L1s — the pattern
		// Direct Coherence exploits.
		p.PrivatePagesPerThread = 24
		p.VMSharedPages = 1024
		p.WriteFrac = 0.20
		p.DedupFrac = 0.34
		p.VMSharedFrac = 0.36
		p.VMSharedWriteFrac = 0.18
		p.ServerMetric = true
		p.ZipfS = 0.8
		p.HotDedupPages = 128
		p.HotShare = 0.5
		total := 16*p.PrivatePagesPerThread + p.VMSharedPages
		p.DedupPages = dedupPagesFor(0.2172, total, vmsPerChip)
	case "jbb":
		// Java server: huge heap, >40% L2 miss rate, weak locality.
		// Huge heap with weak locality: the working set exceeds even
		// the L2 share, giving the >40% L2 miss rate of Section V-C.
		p.PrivatePagesPerThread = 96
		p.VMSharedPages = 6144
		p.WriteFrac = 0.30
		p.VMSharedWriteFrac = 0.15
		p.DedupFrac = 0.24
		p.VMSharedFrac = 0.40
		p.ServerMetric = true
		p.ZipfS = 0.3
		p.HotDedupPages = 64
		p.HotShare = 0.25
		p.RefsPerBlock = 6
		total := 16*p.PrivatePagesPerThread + p.VMSharedPages
		p.DedupPages = dedupPagesFor(0.2388, total, vmsPerChip)
	case "radix":
		// Integer sort over partitioned keys: small per-thread set.
		p.PrivatePagesPerThread = 12
		p.VMSharedPages = 8
		p.WriteFrac = 0.35
		p.DedupFrac = 0.28
		p.VMSharedFrac = 0.08
		p.BurstBlocks = 8
		p.ZipfS = 0.9
		p.RefsPerBlock = 12
		p.HotShare = 0.75
		p.HotDedupPages = 12
		total := 16*p.PrivatePagesPerThread + p.VMSharedPages
		p.DedupPages = dedupPagesFor(0.2418, total, vmsPerChip)
	case "lu":
		// Dense factorization: blocked matrix mostly in L1.
		p.PrivatePagesPerThread = 14
		p.VMSharedPages = 12
		p.WriteFrac = 0.30
		p.DedupFrac = 0.30
		p.VMSharedFrac = 0.10
		p.BurstBlocks = 8
		p.ZipfS = 0.9
		p.RefsPerBlock = 12
		p.HotShare = 0.75
		p.HotDedupPages = 12
		total := 16*p.PrivatePagesPerThread + p.VMSharedPages
		p.DedupPages = dedupPagesFor(0.3271, total, vmsPerChip)
	case "volrend":
		// Ray casting: read-mostly shared volume.
		p.PrivatePagesPerThread = 10
		p.VMSharedPages = 16
		p.WriteFrac = 0.12
		p.DedupFrac = 0.28
		p.VMSharedFrac = 0.20
		p.ZipfS = 0.95
		p.RefsPerBlock = 14
		p.HotShare = 0.75
		p.HotDedupPages = 12
		total := 16*p.PrivatePagesPerThread + p.VMSharedPages
		p.DedupPages = dedupPagesFor(0.30, total, vmsPerChip)
	case "tomcatv":
		// Vectorized mesh generation: strided private arrays.
		p.PrivatePagesPerThread = 13
		p.VMSharedPages = 8
		p.WriteFrac = 0.33
		p.DedupFrac = 0.30
		p.VMSharedFrac = 0.06
		p.BurstBlocks = 12
		p.ZipfS = 0.9
		p.RefsPerBlock = 12
		p.HotShare = 0.75
		p.HotDedupPages = 12
		total := 16*p.PrivatePagesPerThread + p.VMSharedPages
		p.DedupPages = dedupPagesFor(0.3682, total, vmsPerChip)
	default:
		panic(fmt.Sprintf("workload: unknown profile %q", name))
	}
	if p.HotDedupPages > p.DedupPages {
		p.HotDedupPages = p.DedupPages
	}
	return p
}

// Workload is a consolidated configuration: one profile per VM.
type Workload struct {
	Name string
	VMs  []VMProfile
}

// Names lists the benchmark configurations of Table IV.
var Names = []string{
	"apache4x16p", "jbb4x16p", "radix4x16p", "lu4x16p",
	"volrend4x16p", "tomcatv4x16p", "mixed-com", "mixed-sci",
}

// Named returns the Table IV workload with the given name.
func Named(name string) (Workload, error) {
	single := func(p string) Workload {
		w := Workload{Name: name}
		for i := 0; i < vmsPerChip; i++ {
			w.VMs = append(w.VMs, profile(p))
		}
		return w
	}
	switch name {
	case "apache4x16p":
		return single("apache"), nil
	case "jbb4x16p":
		return single("jbb"), nil
	case "radix4x16p":
		return single("radix"), nil
	case "lu4x16p":
		return single("lu"), nil
	case "volrend4x16p":
		return single("volrend"), nil
	case "tomcatv4x16p":
		return single("tomcatv"), nil
	case "mixed-com":
		return Workload{Name: name, VMs: []VMProfile{
			profile("apache"), profile("apache"), profile("jbb"), profile("jbb"),
		}}, nil
	case "mixed-sci":
		return Workload{Name: name, VMs: []VMProfile{
			profile("radix"), profile("lu"), profile("volrend"), profile("tomcatv"),
		}}, nil
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q", name)
}

// MustNamed is Named but panics on error.
func MustNamed(name string) Workload {
	w, err := Named(name)
	if err != nil {
		panic(err)
	}
	return w
}

// zipf is a precomputed inverse-CDF sampler for Zipf(s) over [0, n).
type zipf struct {
	cdf []float64
}

func newZipf(n int, s float64) *zipf {
	z := &zipf{cdf: make([]float64, n)}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

func (z *zipf) sample(r *sim.Rand) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// pageClass identifies the three sharing classes.
type pageClass int

const (
	classPrivate pageClass = iota
	classVMShared
	classDedup
)

// coreState is the per-core spatial/temporal-locality cursor.
type coreState struct {
	page   uint64
	class  pageClass
	block  int
	burst  int
	repeat int // remaining references to the current block
	write  bool
}

// Generator produces the reference stream of every core of the chip.
type Generator struct {
	workload  Workload
	placement *topo.Placement
	mapper    *memctrl.Mapper
	rng       []*sim.Rand
	cores     []coreState
	threadIdx []int // core -> thread index within its VM

	zipfPriv []*zipf // per VM
	zipfVM   []*zipf
	zipfHot  []*zipf // chip-hot dedup pages
	zipfWin  []*zipf // per-thread dedup window
	winSize  []int

	laneOf []int         // tile -> executor lane (nil: single lane)
	lanes  []*sim.Kernel // lane -> its kernel (clock source)
}

// SetLanes binds the generator and its mapper to the executor lanes:
// laneOf maps each tile to the lane whose kernel runs it, and kernels
// holds each lane's clock. Next then translates pages as seen by the
// calling tile's lane at its current cycle, which is what makes
// translation lane-safe under the parallel executor.
func (g *Generator) SetLanes(laneOf []int, kernels []*sim.Kernel) {
	g.laneOf = laneOf
	g.lanes = kernels
	g.mapper.SetLanes(kernels)
}

// NewGenerator builds a generator for workload w on the given VM
// placement, translating pages through mapper (which applies
// deduplication).
func NewGenerator(w Workload, placement *topo.Placement, mapper *memctrl.Mapper, rng *sim.Rand) *Generator {
	if len(w.VMs) != placement.NumVMs {
		panic(fmt.Sprintf("workload: %d VM profiles for %d placed VMs", len(w.VMs), placement.NumVMs))
	}
	nCores := 0
	for vm := 0; vm < placement.NumVMs; vm++ {
		nCores += len(placement.TilesOf(vm))
	}
	g := &Generator{
		workload:  w,
		placement: placement,
		mapper:    mapper,
		rng:       make([]*sim.Rand, nCores),
		cores:     make([]coreState, nCores),
		threadIdx: make([]int, nCores),
		zipfPriv:  make([]*zipf, len(w.VMs)),
		zipfVM:    make([]*zipf, len(w.VMs)),
		zipfHot:   make([]*zipf, len(w.VMs)),
		zipfWin:   make([]*zipf, len(w.VMs)),
		winSize:   make([]int, len(w.VMs)),
	}
	for i := range g.rng {
		g.rng[i] = rng.Fork()
	}
	for vm := 0; vm < placement.NumVMs; vm++ {
		for i, tile := range placement.TilesOf(vm) {
			g.threadIdx[tile] = i
		}
		p := w.VMs[vm]
		// The hypervisor maps every page of the VM image up front, so
		// the deduplication savings reflect allocated memory (Table
		// IV's metric) rather than the access order.
		threads := len(placement.TilesOf(vm))
		for th := 0; th < threads; th++ {
			for pg := 0; pg < p.PrivatePagesPerThread; pg++ {
				mapper.Translate(vm, 1<<57|uint64(th)<<32|uint64(pg), memctrl.PagePrivate, false)
			}
		}
		for pg := 0; pg < p.VMSharedPages; pg++ {
			mapper.Translate(vm, 1<<56|uint64(pg), memctrl.PageVMShared, false)
		}
		for pg := 0; pg < p.DedupPages; pg++ {
			mapper.Translate(vm, p.ContentKey<<20|uint64(pg), memctrl.PageDedup, false)
		}
		if p.PrivatePagesPerThread > 0 {
			g.zipfPriv[vm] = newZipf(p.PrivatePagesPerThread, p.ZipfS)
		}
		if p.VMSharedPages > 0 {
			g.zipfVM[vm] = newZipf(p.VMSharedPages, p.ZipfS)
		}
		if p.DedupPages > 0 {
			// Windows are shared by groups of threads: cores of the
			// same group (and the matching groups of the other VMs)
			// touch the same slice of the deduplicated image, so
			// in-area providers get reused.
			threads := len(placement.TilesOf(vm))
			groups := (threads + windowGroup - 1) / windowGroup
			win := (p.DedupPages + groups - 1) / groups
			if win < 1 {
				win = 1
			}
			g.winSize[vm] = win
			g.zipfWin[vm] = newZipf(win, p.ZipfS)
			hot := p.HotDedupPages
			if hot < 1 {
				hot = 1
			}
			g.zipfHot[vm] = newZipf(hot, p.ZipfS)
		}
	}
	return g
}

// Profile returns the profile of the VM running on tile.
func (g *Generator) Profile(tile topo.Tile) VMProfile {
	return g.workload.VMs[g.placement.VMOf(tile)]
}

// Next produces the next reference of core tile.
func (g *Generator) Next(tile topo.Tile) Access {
	vm := g.placement.VMOf(tile)
	p := &g.workload.VMs[vm]
	r := g.rng[tile]
	cs := &g.cores[tile]

	if cs.repeat <= 0 {
		if cs.burst <= 0 {
			// Pick a new page.
			u := r.Float64()
			switch {
			case u < p.DedupFrac && p.DedupPages > 0:
				cs.class = classDedup
				if r.Float64() < p.HotShare {
					cs.page = uint64(g.zipfHot[vm].sample(r))
				} else {
					base := g.threadIdx[tile] / windowGroup * g.winSize[vm]
					cs.page = uint64((base + g.zipfWin[vm].sample(r)) % p.DedupPages)
				}
			case u < p.DedupFrac+p.VMSharedFrac && p.VMSharedPages > 0:
				cs.class = classVMShared
				cs.page = uint64(g.zipfVM[vm].sample(r))
			default:
				cs.class = classPrivate
				cs.page = uint64(g.zipfPriv[vm].sample(r))
			}
			cs.block = r.Intn(memctrl.BlocksPerPage)
			cs.burst = 1 + r.Intn(2*p.BurstBlocks)
		}
		cs.burst--
		cs.block = (cs.block + 1) % memctrl.BlocksPerPage
		// Word-level reuse: a 64-byte line is touched many times while
		// the code works on it.
		cs.repeat = 1 + r.Intn(2*p.RefsPerBlock)
		// The write/read decision is per block visit (a written line
		// is usually written several times, but classifying per
		// reference would turn every block into a write miss).
		switch cs.class {
		case classDedup:
			cs.write = r.Float64() < p.DedupWriteFrac
		case classVMShared:
			cs.write = r.Float64() < p.VMSharedWriteFrac
		default:
			cs.write = r.Float64() < p.WriteFrac
		}
	}
	cs.repeat--
	// Within a block visit, most references read; a writing visit
	// issues a store about a third of the time.
	write := cs.write && r.Intn(3) == 0
	if cs.write && cs.repeat == 0 {
		write = true // ensure a writing visit stores at least once
	}

	vpage, mclass := g.virtualPage(vm, tile, cs.class, cs.page, p)
	slot, now := 0, sim.Time(0)
	if g.laneOf != nil {
		slot = g.laneOf[tile]
		now = g.lanes[slot].Now()
	}
	phys, _ := g.mapper.TranslateAt(vm, vpage, mclass, write, slot, now)
	gap := sim.Time(r.Intn(2*p.MeanGap + 1))
	return Access{Addr: memctrl.BlockAddr(phys, cs.block), Write: write, Gap: gap}
}

// virtualPage lays the three classes out in disjoint regions of the
// VM's virtual space. Dedup pages use the profile's content key so
// only VMs running the same application share frames.
func (g *Generator) virtualPage(vm int, tile topo.Tile, class pageClass, page uint64, p *VMProfile) (uint64, memctrl.PageClass) {
	switch class {
	case classDedup:
		return p.ContentKey<<20 | page, memctrl.PageDedup
	case classVMShared:
		return 1<<56 | page, memctrl.PageVMShared
	default:
		thread := uint64(g.threadIdx[tile])
		return 1<<57 | thread<<32 | page, memctrl.PagePrivate
	}
}
