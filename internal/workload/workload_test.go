package workload

import (
	"math"
	"sort"
	"testing"

	"repro/internal/memctrl"
	"repro/internal/sim"
	"repro/internal/topo"
)

func testGen(t *testing.T, name string, dedup bool) (*Generator, *memctrl.Mapper) {
	t.Helper()
	w := MustNamed(name)
	areas := topo.MustAreas(topo.NewGrid(8, 8), 4)
	placement := topo.MatchedPlacement(areas)
	mapper := memctrl.NewMapper(dedup)
	return NewGenerator(w, placement, mapper, sim.NewRand(11)), mapper
}

func TestNamedAll(t *testing.T) {
	for _, n := range Names {
		w, err := Named(n)
		if err != nil {
			t.Fatalf("Named(%q): %v", n, err)
		}
		if len(w.VMs) != 4 {
			t.Errorf("%s: %d VMs, want 4", n, len(w.VMs))
		}
		for _, p := range w.VMs {
			if p.DedupFrac+p.VMSharedFrac >= 1 {
				t.Errorf("%s/%s: class fractions exceed 1", n, p.Name)
			}
			if p.DedupPages <= 0 {
				t.Errorf("%s/%s: no dedup pages", n, p.Name)
			}
		}
	}
	if _, err := Named("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestMixedComposition(t *testing.T) {
	w := MustNamed("mixed-com")
	if w.VMs[0].Name != "apache" || w.VMs[2].Name != "jbb" {
		t.Errorf("mixed-com VMs = %v", []string{w.VMs[0].Name, w.VMs[1].Name, w.VMs[2].Name, w.VMs[3].Name})
	}
	w = MustNamed("mixed-sci")
	names := map[string]bool{}
	for _, p := range w.VMs {
		names[p.Name] = true
	}
	for _, want := range []string{"radix", "lu", "volrend", "tomcatv"} {
		if !names[want] {
			t.Errorf("mixed-sci missing %s", want)
		}
	}
}

// TestDedupSavingsMatchTableIV drives the generator and checks the
// mapper's realized memory savings land near Table IV's column.
func TestDedupSavingsMatchTableIV(t *testing.T) {
	targets := map[string]float64{
		"apache4x16p":  0.2172,
		"jbb4x16p":     0.2388,
		"radix4x16p":   0.2418,
		"lu4x16p":      0.3271,
		"tomcatv4x16p": 0.3682,
	}
	for name, want := range targets {
		g, mapper := testGen(t, name, true)
		// Touch enough of the working set that most pages get mapped
		// (jbb's weak locality needs a long warmup to cover its heap).
		refs := 400000
		if name == "jbb4x16p" {
			refs = 4000000
		}
		for i := 0; i < refs; i++ {
			g.Next(topo.Tile(i % 64))
		}
		got := mapper.SavedFraction()
		if math.Abs(got-want) > 0.08 {
			t.Errorf("%s: realized dedup savings %.3f, Table IV %.3f", name, got, want)
		}
	}
}

// TestWorkingSetDichotomy checks the L1- vs L2-dominated split: the
// blocks covering 90% of a core's accesses fit a 128 KB L1 (2048
// blocks) for the scientific kernels but far exceed it for the server
// workloads.
func TestWorkingSetDichotomy(t *testing.T) {
	const l1Blocks = 2048
	hotFootprint := func(name string) int {
		g, _ := testGen(t, name, true)
		counts := make(map[uint64]int)
		const refs = 60000
		for i := 0; i < refs; i++ {
			a := g.Next(0)
			counts[uint64(a.Addr)]++
		}
		// Blocks needed to cover 90% of accesses.
		freqs := make([]int, 0, len(counts))
		for _, c := range counts {
			freqs = append(freqs, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
		covered, n := 0, 0
		for _, c := range freqs {
			covered += c
			n++
			if float64(covered) >= 0.9*refs {
				break
			}
		}
		return n
	}
	for _, small := range []string{"radix4x16p", "lu4x16p", "volrend4x16p", "tomcatv4x16p"} {
		if n := hotFootprint(small); n > l1Blocks {
			t.Errorf("%s: 90%% footprint %d blocks; want L1-resident (<=%d)", small, n, l1Blocks)
		}
	}
	for _, big := range []string{"apache4x16p", "jbb4x16p"} {
		if n := hotFootprint(big); n < l1Blocks*3/2 {
			t.Errorf("%s: 90%% footprint %d blocks; want > L1 (%d)", big, n, l1Blocks)
		}
	}
}

// TestDedupPagesSharedAcrossVMs: with dedup on, cores of different VMs
// running the same app touch common physical blocks; with dedup off
// they never do.
func TestDedupPagesSharedAcrossVMs(t *testing.T) {
	overlap := func(dedup bool) int {
		g, _ := testGen(t, "apache4x16p", dedup)
		seen0 := make(map[uint64]bool)
		for i := 0; i < 30000; i++ {
			a := g.Next(0) // VM 0
			seen0[uint64(a.Addr)] = true
		}
		n := 0
		for i := 0; i < 30000; i++ {
			a := g.Next(48) // VM 3 (matched placement: area 3)
			if seen0[uint64(a.Addr)] {
				n++
			}
		}
		return n
	}
	if n := overlap(true); n == 0 {
		t.Error("dedup on: no physical overlap between VMs")
	}
	if n := overlap(false); n != 0 {
		t.Errorf("dedup off: %d overlapping accesses between VMs", n)
	}
}

// TestWritesNeverHitDedupFramesOften: dedup pages are read-only in
// practice; CoW breaks must be very rare.
func TestWritesRarelyBreakCoW(t *testing.T) {
	g, mapper := testGen(t, "apache4x16p", true)
	for i := 0; i < 200000; i++ {
		g.Next(topo.Tile(i % 64))
	}
	if mapper.CoWBreaks > mapper.SharedPages/2 {
		t.Errorf("CoW breaks %d vs %d shared pages: dedup writes not rare",
			mapper.CoWBreaks, mapper.SharedPages)
	}
}

// TestThreadPrivateIsolation: private pages of different threads map
// to different frames.
func TestThreadPrivateIsolation(t *testing.T) {
	g, _ := testGen(t, "tomcatv4x16p", true)
	// tomcatv is mostly private accesses; collect per-core private
	// footprints for two threads of the same VM.
	a0 := make(map[uint64]bool)
	for i := 0; i < 20000; i++ {
		a := g.Next(0)
		a0[uint64(a.Addr)/memctrl.BlocksPerPage] = true
	}
	common := 0
	total := 0
	for i := 0; i < 20000; i++ {
		a := g.Next(1)
		total++
		if a0[uint64(a.Addr)/memctrl.BlocksPerPage] {
			common++
		}
	}
	// Some overlap via VM-shared and dedup pages is expected, but it
	// must be bounded by those fractions (~0.40 of accesses).
	if frac := float64(common) / float64(total); frac > 0.6 {
		t.Errorf("threads overlap on %.2f of pages; private pages leak", frac)
	}
}

func TestZipfSkew(t *testing.T) {
	z := newZipf(1000, 0.99)
	r := sim.NewRand(3)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.sample(r)]++
	}
	if counts[0] < counts[500]*5 {
		t.Errorf("zipf head %d not much hotter than tail %d", counts[0], counts[500])
	}
	// Uniform-ish when s is tiny.
	z2 := newZipf(100, 0.01)
	c2 := make([]int, 100)
	for i := 0; i < 100000; i++ {
		c2[z2.sample(r)]++
	}
	if c2[0] > c2[50]*3 {
		t.Errorf("near-uniform zipf too skewed: %d vs %d", c2[0], c2[50])
	}
}

func TestGapBounds(t *testing.T) {
	g, _ := testGen(t, "apache4x16p", true)
	p := g.Profile(0)
	for i := 0; i < 1000; i++ {
		a := g.Next(0)
		if int(a.Gap) > 2*p.MeanGap {
			t.Fatalf("gap %d exceeds 2x mean %d", a.Gap, p.MeanGap)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g1, _ := testGen(t, "jbb4x16p", true)
	g2, _ := testGen(t, "jbb4x16p", true)
	for i := 0; i < 5000; i++ {
		tile := topo.Tile(i % 64)
		a1, a2 := g1.Next(tile), g2.Next(tile)
		if a1 != a2 {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestDedupPagesForInverts(t *testing.T) {
	for _, s := range []float64{0.15, 0.2172, 0.3682} {
		priv := 2432
		d := dedupPagesFor(s, priv, 4)
		got := float64(3*d) / float64(4*(priv+d))
		if math.Abs(got-s) > 0.01 {
			t.Errorf("dedupPagesFor(%v) = %d gives savings %.4f", s, d, got)
		}
	}
}
