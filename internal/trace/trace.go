// Package trace records and replays *reference traces*: memory-
// reference streams captured from a workload generator. A recorded
// reference trace makes a simulation run exactly reproducible across
// code changes (the synthetic generators' streams shift whenever their
// tuning changes), lets external traces drive the simulator, and
// supports trimming/filtering for focused protocol debugging.
//
// Not to be confused with coherence-transaction tracing: that is
// internal/telemetry's span tracer (cmpsim -trace-out), which records
// what the protocols *did*; a reference trace records what the cores
// *asked for*.
//
// The format is a line-oriented text file, one reference per line:
//
//	<tile> <r|w> <block-address-hex> <gap>
//
// with '#' comment lines allowed.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/workload"
)

// Record is one memory reference of one core.
type Record struct {
	Tile  topo.Tile
	Addr  cache.Addr
	Write bool
	Gap   sim.Time
}

// Trace is an in-memory reference trace (one stream of core memory
// references, not a coherence-transaction trace).
type Trace struct {
	Records []Record
}

// Append adds one reference.
func (t *Trace) Append(r Record) { t.Records = append(t.Records, r) }

// Len returns the number of references.
func (t *Trace) Len() int { return len(t.Records) }

// Write serializes the trace.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# cmp reference trace: %d records\n", len(t.Records)); err != nil {
		return err
	}
	for _, r := range t.Records {
		op := "r"
		if r.Write {
			op = "w"
		}
		if _, err := fmt.Fprintf(bw, "%d %s %x %d\n", r.Tile, op, uint64(r.Addr), r.Gap); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		tile, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad tile: %v", lineNo, err)
		}
		var write bool
		switch fields[1] {
		case "r":
		case "w":
			write = true
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", lineNo, fields[1])
		}
		addr, err := strconv.ParseUint(fields[2], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address: %v", lineNo, err)
		}
		gap, err := strconv.ParseUint(fields[3], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad gap: %v", lineNo, err)
		}
		t.Append(Record{Tile: topo.Tile(tile), Addr: cache.Addr(addr), Write: write, Gap: sim.Time(gap)})
	}
	return t, sc.Err()
}

// Capture drives a workload generator for refsPerTile references on
// each of the given tiles (round-robin) and records the stream.
func Capture(gen *workload.Generator, tiles []topo.Tile, refsPerTile int) *Trace {
	t := &Trace{Records: make([]Record, 0, len(tiles)*refsPerTile)}
	for i := 0; i < refsPerTile; i++ {
		for _, tile := range tiles {
			a := gen.Next(tile)
			t.Append(Record{Tile: tile, Addr: a.Addr, Write: a.Write, Gap: a.Gap})
		}
	}
	return t
}

// FilterTile returns the sub-trace of one tile.
func (t *Trace) FilterTile(tile topo.Tile) *Trace {
	out := &Trace{}
	for _, r := range t.Records {
		if r.Tile == tile {
			out.Append(r)
		}
	}
	return out
}

// FilterAddr returns the sub-trace touching one block, preserving the
// issuing tiles — the tool of choice when bisecting a protocol bug to
// a minimal reproducer.
func (t *Trace) FilterAddr(addr cache.Addr) *Trace {
	out := &Trace{}
	for _, r := range t.Records {
		if r.Addr == addr {
			out.Append(r)
		}
	}
	return out
}

// Stats summarizes a trace.
type Stats struct {
	Records      int
	Writes       int
	UniqueBlocks int
	UniqueTiles  int
}

// Summarize computes trace statistics.
func (t *Trace) Summarize() Stats {
	blocks := make(map[cache.Addr]struct{})
	tiles := make(map[topo.Tile]struct{})
	s := Stats{Records: len(t.Records)}
	for _, r := range t.Records {
		if r.Write {
			s.Writes++
		}
		blocks[r.Addr] = struct{}{}
		tiles[r.Tile] = struct{}{}
	}
	s.UniqueBlocks = len(blocks)
	s.UniqueTiles = len(tiles)
	return s
}

// Player replays a trace through a per-tile cursor, mimicking the
// workload.Generator interface shape (Next per tile).
type Player struct {
	perTile map[topo.Tile][]Record
	cursor  map[topo.Tile]int
}

// NewPlayer indexes a trace for replay.
func NewPlayer(t *Trace) *Player {
	p := &Player{perTile: map[topo.Tile][]Record{}, cursor: map[topo.Tile]int{}}
	for _, r := range t.Records {
		p.perTile[r.Tile] = append(p.perTile[r.Tile], r)
	}
	return p
}

// Next returns the tile's next reference and whether one remained.
func (p *Player) Next(tile topo.Tile) (Record, bool) {
	rs := p.perTile[tile]
	i := p.cursor[tile]
	if i >= len(rs) {
		return Record{}, false
	}
	p.cursor[tile] = i + 1
	return rs[i], true
}

// Remaining returns how many references the tile still has.
func (p *Player) Remaining(tile topo.Tile) int {
	return len(p.perTile[tile]) - p.cursor[tile]
}
