// Full-stack round-trip: a captured workload stream, serialized and
// parsed back, must drive every protocol engine to bit-identical
// statistics — proving the trace format loses nothing a simulation
// depends on (external test package so it can build chips via
// internal/check without an import cycle).
package trace_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/check"
	"repro/internal/memctrl"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/workload"
)

// runStream runs recs on a freshly built checked chip and returns the
// engine's counter map, miss profile and final kernel time.
func runStream(t *testing.T, protocol string, recs []trace.Record) (map[string]uint64, any, sim.Time) {
	t.Helper()
	c, err := check.NewChip(check.ChipConfig{Protocol: protocol, Tiles: 16, Areas: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunConcurrent(recs); err != nil {
		t.Fatalf("%s: %v", protocol, err)
	}
	s := c.Engine.Stats()
	snap := make(map[string]uint64)
	for _, n := range s.Names() {
		snap[n] = s.Value(n)
	}
	return snap, c.Engine.MissProfile(), c.Kernel.Now()
}

// TestReplayBitIdentical captures a real workload stream, round-trips
// it through the text format, and checks that replaying the parsed
// trace is indistinguishable from replaying the original on all four
// protocols.
func TestReplayBitIdentical(t *testing.T) {
	w := workload.MustNamed("apache4x16p")
	areas := topo.MustAreas(topo.NewGrid(4, 4), 4)
	placement := topo.MatchedPlacement(areas)
	mapper := memctrl.NewMapper(true)
	gen := workload.NewGenerator(w, placement, mapper, sim.NewRand(11))
	tiles := make([]topo.Tile, 16)
	for i := range tiles {
		tiles[i] = topo.Tile(i)
	}
	tr := trace.Capture(gen, tiles, 60)

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Records, parsed.Records) {
		t.Fatal("records changed across write/read")
	}

	for _, p := range []string{"directory", "dico", "providers", "arin"} {
		gotStats, gotProf, gotNow := runStream(t, p, tr.Records)
		repStats, repProf, repNow := runStream(t, p, parsed.Records)
		if gotNow != repNow {
			t.Errorf("%s: cycles diverge: %d vs %d", p, gotNow, repNow)
		}
		if !reflect.DeepEqual(gotStats, repStats) {
			t.Errorf("%s: counters diverge:\n%v\nvs\n%v", p, gotStats, repStats)
		}
		if !reflect.DeepEqual(gotProf, repProf) {
			t.Errorf("%s: miss profile diverges:\n%+v\nvs\n%+v", p, gotProf, repProf)
		}
	}
}
