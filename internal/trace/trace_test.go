package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/memctrl"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/workload"
)

func sample() *Trace {
	t := &Trace{}
	t.Append(Record{Tile: 3, Addr: 0x1234, Write: false, Gap: 2})
	t.Append(Record{Tile: 7, Addr: 0xBEEF, Write: true, Gap: 0})
	t.Append(Record{Tile: 3, Addr: 0x1234, Write: true, Gap: 5})
	return t
}

func TestRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip length %d, want %d", got.Len(), tr.Len())
	}
	for i := range tr.Records {
		if got.Records[i] != tr.Records[i] {
			t.Errorf("record %d = %+v, want %+v", i, got.Records[i], tr.Records[i])
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"3 r\n",          // too few fields
		"x r 10 0\n",     // bad tile
		"3 q 10 0\n",     // bad op
		"3 r zz 0\n",     // bad address
		"3 r 10 minus\n", // bad gap
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("malformed line %q accepted", strings.TrimSpace(c))
		}
	}
	// Comments and blanks are fine.
	tr, err := Read(strings.NewReader("# hi\n\n3 r 10 0\n"))
	if err != nil || tr.Len() != 1 {
		t.Errorf("comment handling broken: %v len=%d", err, tr.Len())
	}
}

func TestFilters(t *testing.T) {
	tr := sample()
	byTile := tr.FilterTile(3)
	if byTile.Len() != 2 {
		t.Errorf("FilterTile(3) = %d records, want 2", byTile.Len())
	}
	byAddr := tr.FilterAddr(0xBEEF)
	if byAddr.Len() != 1 || byAddr.Records[0].Tile != 7 {
		t.Errorf("FilterAddr wrong: %+v", byAddr.Records)
	}
}

func TestSummarize(t *testing.T) {
	s := sample().Summarize()
	if s.Records != 3 || s.Writes != 2 || s.UniqueBlocks != 2 || s.UniqueTiles != 2 {
		t.Errorf("Summarize = %+v", s)
	}
}

func TestCaptureAndReplay(t *testing.T) {
	w := workload.MustNamed("tomcatv4x16p")
	areas := topo.MustAreas(topo.NewGrid(8, 8), 4)
	placement := topo.MatchedPlacement(areas)
	mapper := memctrl.NewMapper(true)
	gen := workload.NewGenerator(w, placement, mapper, sim.NewRand(4))
	tiles := []topo.Tile{0, 1, 2}
	tr := Capture(gen, tiles, 50)
	if tr.Len() != 150 {
		t.Fatalf("captured %d records, want 150", tr.Len())
	}
	p := NewPlayer(tr)
	for _, tile := range tiles {
		if p.Remaining(tile) != 50 {
			t.Errorf("tile %d has %d records, want 50", tile, p.Remaining(tile))
		}
	}
	n := 0
	for {
		r, ok := p.Next(0)
		if !ok {
			break
		}
		if r.Tile != 0 {
			t.Fatal("player returned another tile's record")
		}
		n++
	}
	if n != 50 {
		t.Errorf("replayed %d records for tile 0, want 50", n)
	}
	if _, ok := p.Next(0); ok {
		t.Error("player returned a record past the end")
	}
}

func TestPlayerPreservesOrder(t *testing.T) {
	tr := sample()
	p := NewPlayer(tr)
	r1, _ := p.Next(3)
	r2, _ := p.Next(3)
	if r1.Write || !r2.Write {
		t.Error("player reordered a tile's records")
	}
}

// TestFilterAddrRoundTrip requires a filtered sub-trace to survive the
// write/read round trip exactly — the bisection workflow is "filter to
// one block, save, replay", so the saved file must reproduce the
// records (tiles and gaps included) byte for byte.
func TestFilterAddrRoundTrip(t *testing.T) {
	tr := sample()
	sub := tr.FilterAddr(0x1234)
	if sub.Len() != 2 {
		t.Fatalf("FilterAddr(0x1234) = %d records, want 2", sub.Len())
	}
	var buf bytes.Buffer
	if err := sub.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "reference trace") {
		t.Errorf("trace header does not say %q:\n%s", "reference trace", buf.String())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != sub.Len() {
		t.Fatalf("round trip length %d, want %d", got.Len(), sub.Len())
	}
	for i := range sub.Records {
		if got.Records[i] != sub.Records[i] {
			t.Errorf("record %d = %+v, want %+v", i, got.Records[i], sub.Records[i])
		}
	}
	// Filtering must not disturb the source trace.
	if tr.Len() != 3 {
		t.Errorf("FilterAddr mutated the source trace: %d records", tr.Len())
	}
}

// TestPlayerExhaustion requires the replay cursor to drain each tile
// independently, report exhaustion cleanly (including for tiles the
// trace never mentions), and stay exhausted.
func TestPlayerExhaustion(t *testing.T) {
	p := NewPlayer(sample())
	if p.Remaining(3) != 2 || p.Remaining(7) != 1 {
		t.Fatalf("Remaining = %d/%d, want 2/1", p.Remaining(3), p.Remaining(7))
	}
	// A tile absent from the trace is born exhausted.
	if n := p.Remaining(42); n != 0 {
		t.Errorf("unknown tile Remaining = %d, want 0", n)
	}
	if _, ok := p.Next(42); ok {
		t.Error("unknown tile produced a record")
	}
	// Draining tile 3 leaves tile 7 untouched.
	for i := 0; i < 2; i++ {
		if _, ok := p.Next(3); !ok {
			t.Fatalf("tile 3 exhausted after %d records, want 2", i)
		}
	}
	if _, ok := p.Next(3); ok {
		t.Error("tile 3 produced a record past its end")
	}
	if p.Remaining(3) != 0 || p.Remaining(7) != 1 {
		t.Errorf("Remaining after drain = %d/%d, want 0/1", p.Remaining(3), p.Remaining(7))
	}
	// Exhaustion is stable: repeated Next stays empty and Remaining
	// never goes negative.
	p.Next(3)
	if n := p.Remaining(3); n != 0 {
		t.Errorf("Remaining after over-drain = %d, want 0", n)
	}
	if r, ok := p.Next(7); !ok || r.Addr != 0xBEEF {
		t.Errorf("tile 7 disturbed by tile 3's drain: %+v ok=%v", r, ok)
	}
}
