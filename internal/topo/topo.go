// Package topo describes the spatial organization of the chip: the tile
// grid, the static division of the chip into areas (Section III of the
// paper), and the placement of virtual machines onto tiles (Figure 6).
package topo

import "fmt"

// Tile identifies one tile of the chip, numbered row-major on the mesh.
type Tile int

// Grid is a rectangular tile arrangement.
type Grid struct {
	Cols, Rows int
}

// NewGrid returns a grid of the given dimensions.
func NewGrid(cols, rows int) Grid {
	if cols <= 0 || rows <= 0 {
		panic("topo: grid dimensions must be positive")
	}
	return Grid{Cols: cols, Rows: rows}
}

// SquareGrid returns the most square grid with n tiles: cols*rows == n
// with cols >= rows and cols/rows minimal. It panics if n has no such
// factorization with both sides > 0 (never, for n >= 1).
func SquareGrid(n int) Grid {
	if n <= 0 {
		panic("topo: grid size must be positive")
	}
	best := Grid{Cols: n, Rows: 1}
	for r := 1; r*r <= n; r++ {
		if n%r == 0 {
			best = Grid{Cols: n / r, Rows: r}
		}
	}
	return best
}

// Tiles returns the number of tiles in the grid.
func (g Grid) Tiles() int { return g.Cols * g.Rows }

// Coord returns the (x, y) mesh coordinates of t.
func (g Grid) Coord(t Tile) (x, y int) {
	return int(t) % g.Cols, int(t) / g.Cols
}

// At returns the tile at mesh coordinates (x, y).
func (g Grid) At(x, y int) Tile {
	return Tile(y*g.Cols + x)
}

// Contains reports whether t is a valid tile of the grid.
func (g Grid) Contains(t Tile) bool {
	return t >= 0 && int(t) < g.Tiles()
}

// Hops returns the Manhattan distance between two tiles: the number of
// mesh links a message traverses between them under XY routing.
func (g Grid) Hops(a, b Tile) int {
	ax, ay := g.Coord(a)
	bx, by := g.Coord(b)
	return abs(ax-bx) + abs(ay-by)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Partition divides the grid's tiles into n contiguous row-major
// bands for conservative-PDES sharding: shard i owns tiles
// [i*T/n, (i+1)*T/n). Contiguous row-major ranges keep each shard a
// horizontal band (exact rows when n divides Rows), which minimizes
// the number of mesh links crossing shard boundaries — every boundary
// crossing costs a conservative synchronization, so fewer is faster.
// The returned slice maps tile -> shard. n must be in [1, Tiles()].
func Partition(grid Grid, n int) []int {
	if n < 1 || n > grid.Tiles() {
		panic(fmt.Sprintf("topo: cannot partition %d tiles into %d shards", grid.Tiles(), n))
	}
	shardOf := make([]int, grid.Tiles())
	for t := range shardOf {
		shardOf[t] = t * n / grid.Tiles()
	}
	return shardOf
}

// Areas is the static, hard-wired division of the chip into equal
// areas. Areas are as square as possible (the paper uses four 4x4
// areas on the 8x8 chip).
type Areas struct {
	Grid     Grid
	Count    int
	areaOf   []int // tile -> area
	tiles    [][]Tile
	areaCols int // areas per grid row of areas
	areaRows int
	tileCols int // tiles per area, horizontally
	tileRows int
}

// NewAreas divides grid into count areas. count must divide the tile
// count and admit a rectangular tiling of the grid.
func NewAreas(grid Grid, count int) (*Areas, error) {
	if count <= 0 {
		return nil, fmt.Errorf("topo: area count %d must be positive", count)
	}
	if grid.Tiles()%count != 0 {
		return nil, fmt.Errorf("topo: %d areas do not divide %d tiles", count, grid.Tiles())
	}
	per := grid.Tiles() / count
	// Choose the most square per-area tile block that tiles the grid.
	bestW, bestH := 0, 0
	bestAspect := 1 << 30
	for h := 1; h <= per; h++ {
		if per%h != 0 {
			continue
		}
		w := per / h
		if grid.Cols%w != 0 || grid.Rows%h != 0 {
			continue
		}
		aspect := abs(w - h)
		if aspect < bestAspect {
			bestAspect, bestW, bestH = aspect, w, h
		}
	}
	if bestW == 0 {
		return nil, fmt.Errorf("topo: cannot tile %dx%d grid into %d rectangular areas",
			grid.Cols, grid.Rows, count)
	}
	a := &Areas{
		Grid:     grid,
		Count:    count,
		areaOf:   make([]int, grid.Tiles()),
		tiles:    make([][]Tile, count),
		areaCols: grid.Cols / bestW,
		areaRows: grid.Rows / bestH,
		tileCols: bestW,
		tileRows: bestH,
	}
	for t := Tile(0); int(t) < grid.Tiles(); t++ {
		x, y := grid.Coord(t)
		area := (y/bestH)*a.areaCols + x/bestW
		a.areaOf[t] = area
		a.tiles[area] = append(a.tiles[area], t)
	}
	return a, nil
}

// MustAreas is NewAreas but panics on error; for configurations known
// to be valid at compile time.
func MustAreas(grid Grid, count int) *Areas {
	a, err := NewAreas(grid, count)
	if err != nil {
		panic(err)
	}
	return a
}

// Of returns the area index of tile t.
func (a *Areas) Of(t Tile) int { return a.areaOf[t] }

// TilesIn returns the tiles belonging to area (shared slice; do not
// mutate).
func (a *Areas) TilesIn(area int) []Tile { return a.tiles[area] }

// TilesPerArea returns the number of tiles in each area.
func (a *Areas) TilesPerArea() int { return a.Grid.Tiles() / a.Count }

// SameArea reports whether two tiles belong to the same area.
func (a *Areas) SameArea(x, y Tile) bool { return a.areaOf[x] == a.areaOf[y] }

// IndexInArea returns the position of t within its area's tile list,
// i.e. the value a ProPo pointer would store.
func (a *Areas) IndexInArea(t Tile) int {
	for i, tt := range a.tiles[a.areaOf[t]] {
		if tt == t {
			return i
		}
	}
	panic("topo: tile missing from its own area")
}

// Placement maps virtual machines to tiles.
type Placement struct {
	NumVMs int
	vmOf   []int // tile -> VM
	tiles  [][]Tile
}

// VMOf returns the VM running on tile t.
func (p *Placement) VMOf(t Tile) int { return p.vmOf[t] }

// TilesOf returns the tiles assigned to vm (shared slice; do not
// mutate).
func (p *Placement) TilesOf(vm int) []Tile { return p.tiles[vm] }

// MatchedPlacement assigns VM i exactly the tiles of area i: the
// paper's default configuration in which the OS/hypervisor schedules
// each VM into its own area.
func MatchedPlacement(a *Areas) *Placement {
	p := &Placement{
		NumVMs: a.Count,
		vmOf:   make([]int, a.Grid.Tiles()),
		tiles:  make([][]Tile, a.Count),
	}
	for area := 0; area < a.Count; area++ {
		for _, t := range a.TilesIn(area) {
			p.vmOf[t] = area
			p.tiles[area] = append(p.tiles[area], t)
		}
	}
	return p
}

// AlternativePlacement is the Figure 6 "-alt" configuration: each VM's
// tiles straddle area boundaries. We realize it by assigning VMs in
// horizontal bands of rows, which (with square areas) guarantees every
// VM spans at least two areas.
func AlternativePlacement(a *Areas) *Placement {
	g := a.Grid
	p := &Placement{
		NumVMs: a.Count,
		vmOf:   make([]int, g.Tiles()),
		tiles:  make([][]Tile, a.Count),
	}
	perVM := g.Tiles() / a.Count
	// Row-major bands, shifted by half an area width so bands cross
	// vertical area boundaries as in Figure 6.
	shift := a.tileCols / 2
	for t := Tile(0); int(t) < g.Tiles(); t++ {
		x, y := g.Coord(t)
		x = (x + shift) % g.Cols
		linear := y*g.Cols + x
		vm := linear / perVM
		if vm >= a.Count {
			vm = a.Count - 1
		}
		p.vmOf[t] = vm
		p.tiles[vm] = append(p.tiles[vm], t)
	}
	return p
}

// SpansAreas reports whether vm occupies tiles in more than one area.
func (p *Placement) SpansAreas(a *Areas, vm int) bool {
	seen := -1
	for _, t := range p.tiles[vm] {
		ar := a.Of(t)
		if seen == -1 {
			seen = ar
		} else if ar != seen {
			return true
		}
	}
	return false
}
