package topo

import (
	"testing"
	"testing/quick"
)

func grid8x8() Grid { return NewGrid(8, 8) }

func TestGridCoordRoundTrip(t *testing.T) {
	g := grid8x8()
	for i := 0; i < g.Tiles(); i++ {
		x, y := g.Coord(Tile(i))
		if g.At(x, y) != Tile(i) {
			t.Fatalf("round trip failed for tile %d", i)
		}
		if x < 0 || x >= 8 || y < 0 || y >= 8 {
			t.Fatalf("coord out of range for tile %d: (%d,%d)", i, x, y)
		}
	}
}

func TestSquareGrid(t *testing.T) {
	cases := []struct{ n, cols, rows int }{
		{64, 8, 8}, {128, 16, 8}, {256, 16, 16}, {512, 32, 16}, {1024, 32, 32},
		{16, 4, 4}, {1, 1, 1}, {2, 2, 1},
	}
	for _, c := range cases {
		g := SquareGrid(c.n)
		if g.Cols != c.cols || g.Rows != c.rows {
			t.Errorf("SquareGrid(%d) = %dx%d, want %dx%d", c.n, g.Cols, g.Rows, c.cols, c.rows)
		}
	}
}

func TestHopsManhattan(t *testing.T) {
	g := grid8x8()
	if got := g.Hops(g.At(0, 0), g.At(7, 7)); got != 14 {
		t.Errorf("corner-to-corner hops = %d, want 14", got)
	}
	if got := g.Hops(g.At(3, 3), g.At(3, 3)); got != 0 {
		t.Errorf("self hops = %d, want 0", got)
	}
	if got := g.Hops(g.At(2, 5), g.At(4, 1)); got != 6 {
		t.Errorf("hops = %d, want 6", got)
	}
}

func TestHopsSymmetric(t *testing.T) {
	g := grid8x8()
	if err := quick.Check(func(a, b uint8) bool {
		ta, tb := Tile(int(a)%64), Tile(int(b)%64)
		return g.Hops(ta, tb) == g.Hops(tb, ta)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestAreasFourOn8x8(t *testing.T) {
	a := MustAreas(grid8x8(), 4)
	if a.TilesPerArea() != 16 {
		t.Fatalf("TilesPerArea = %d, want 16", a.TilesPerArea())
	}
	// Paper: four square 4x4 areas. Tile (0,0) area 0; (7,0) area 1;
	// (0,7) area 2; (7,7) area 3.
	g := a.Grid
	cases := []struct {
		x, y, area int
	}{{0, 0, 0}, {3, 3, 0}, {4, 0, 1}, {7, 3, 1}, {0, 4, 2}, {3, 7, 2}, {4, 4, 3}, {7, 7, 3}}
	for _, c := range cases {
		if got := a.Of(g.At(c.x, c.y)); got != c.area {
			t.Errorf("area of (%d,%d) = %d, want %d", c.x, c.y, got, c.area)
		}
	}
}

func TestAreasPartition(t *testing.T) {
	for _, count := range []int{1, 2, 4, 8, 16, 32, 64} {
		a := MustAreas(grid8x8(), count)
		seen := make(map[Tile]bool)
		for area := 0; area < count; area++ {
			for _, tile := range a.TilesIn(area) {
				if seen[tile] {
					t.Fatalf("%d areas: tile %d in two areas", count, tile)
				}
				seen[tile] = true
				if a.Of(tile) != area {
					t.Fatalf("%d areas: Of(%d) = %d, want %d", count, tile, a.Of(tile), area)
				}
			}
			if got := len(a.TilesIn(area)); got != a.TilesPerArea() {
				t.Fatalf("%d areas: area %d has %d tiles, want %d", count, area, got, a.TilesPerArea())
			}
		}
		if len(seen) != 64 {
			t.Fatalf("%d areas: covered %d tiles, want 64", count, len(seen))
		}
	}
}

func TestAreasContiguity(t *testing.T) {
	// Every area must be a contiguous rectangle: max pairwise hop
	// distance inside a 16-tile square area is 6 (3+3).
	a := MustAreas(grid8x8(), 4)
	for area := 0; area < 4; area++ {
		tiles := a.TilesIn(area)
		for _, s := range tiles {
			for _, d := range tiles {
				if a.Grid.Hops(s, d) > 6 {
					t.Fatalf("area %d not compact: hops(%d,%d) = %d", area, s, d, a.Grid.Hops(s, d))
				}
			}
		}
	}
}

func TestIndexInArea(t *testing.T) {
	a := MustAreas(grid8x8(), 4)
	for tile := Tile(0); tile < 64; tile++ {
		idx := a.IndexInArea(tile)
		if idx < 0 || idx >= 16 {
			t.Fatalf("IndexInArea(%d) = %d out of range", tile, idx)
		}
		if a.TilesIn(a.Of(tile))[idx] != tile {
			t.Fatalf("IndexInArea(%d) does not invert", tile)
		}
	}
}

func TestAreasErrors(t *testing.T) {
	if _, err := NewAreas(grid8x8(), 3); err == nil {
		t.Error("3 areas on 64 tiles should fail")
	}
	if _, err := NewAreas(grid8x8(), 0); err == nil {
		t.Error("0 areas should fail")
	}
	if _, err := NewAreas(grid8x8(), 128); err == nil {
		t.Error("128 areas on 64 tiles should fail")
	}
}

func TestMatchedPlacement(t *testing.T) {
	a := MustAreas(grid8x8(), 4)
	p := MatchedPlacement(a)
	if p.NumVMs != 4 {
		t.Fatalf("NumVMs = %d, want 4", p.NumVMs)
	}
	for vm := 0; vm < 4; vm++ {
		if p.SpansAreas(a, vm) {
			t.Errorf("matched placement: VM %d spans areas", vm)
		}
		if len(p.TilesOf(vm)) != 16 {
			t.Errorf("VM %d has %d tiles, want 16", vm, len(p.TilesOf(vm)))
		}
		for _, tile := range p.TilesOf(vm) {
			if a.Of(tile) != vm {
				t.Errorf("matched placement: VM %d tile %d in area %d", vm, tile, a.Of(tile))
			}
		}
	}
}

func TestAlternativePlacement(t *testing.T) {
	a := MustAreas(grid8x8(), 4)
	p := AlternativePlacement(a)
	counts := make(map[int]int)
	spanning := 0
	for tile := Tile(0); tile < 64; tile++ {
		counts[p.VMOf(tile)]++
	}
	for vm := 0; vm < 4; vm++ {
		if counts[vm] != 16 {
			t.Errorf("alt placement: VM %d has %d tiles, want 16", vm, counts[vm])
		}
		if p.SpansAreas(a, vm) {
			spanning++
		}
	}
	if spanning == 0 {
		t.Error("alt placement: no VM spans areas; defeats the point of Figure 6")
	}
}

func TestPlacementConsistency(t *testing.T) {
	a := MustAreas(grid8x8(), 4)
	for _, p := range []*Placement{MatchedPlacement(a), AlternativePlacement(a)} {
		for vm := 0; vm < p.NumVMs; vm++ {
			for _, tile := range p.TilesOf(vm) {
				if p.VMOf(tile) != vm {
					t.Fatalf("TilesOf/VMOf inconsistent for vm %d tile %d", vm, tile)
				}
			}
		}
	}
}
