package exp

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// sharingVariants builds eight configurations that differ only in
// measure-phase knobs, so all eight normalize to one warmup group.
func sharingVariants(warmup, refs int) []core.Config {
	base := core.DefaultConfig()
	base.WarmupRefs = warmup
	base.RefsPerCore = refs
	var cfgs []core.Config
	for _, extraRefs := range []int{0, 100} {
		for _, check := range []bool{false, true} {
			for _, sample := range []sim.Time{0, 1000} {
				cfg := base
				cfg.RefsPerCore += extraRefs
				cfg.Check = check
				cfg.SampleEvery = sample
				cfgs = append(cfgs, cfg)
			}
		}
	}
	return cfgs
}

// TestSharedWarmupMatchesStraight: RunConfigs folds the eight variants
// into one warmup group; every forked result must match its
// individually-run twin exactly.
func TestSharedWarmupMatchesStraight(t *testing.T) {
	if testing.Short() {
		t.Skip("several full runs")
	}
	cfgs := sharingVariants(800, 300)
	shared, err := RunConfigs(cfgs, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		straight, err := core.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, sharedLabel(i, cfg), straight, shared[i])
	}
}

func sharedLabel(i int, cfg core.Config) string {
	return cfg.Protocol + "/" + cfg.Workload + " variant " + string(rune('0'+i))
}

// TestSharedWarmupSpeedup: the point of the snapshot layer. Eight
// configurations sharing one warmup must beat eight straight-through
// runs by a wide margin when the warmup dominates; the acceptance
// floor is 1.5x, far under the ~8x the phase arithmetic predicts, so
// machine noise cannot flake this.
func TestSharedWarmupSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test with warmup-heavy runs")
	}
	cfgs := sharingVariants(20000, 400)

	start := time.Now()
	for _, cfg := range cfgs {
		if _, err := core.Run(cfg); err != nil {
			t.Fatal(err)
		}
	}
	straight := time.Since(start)

	start = time.Now()
	if _, err := RunConfigs(cfgs, 1, nil); err != nil {
		t.Fatal(err)
	}
	shared := time.Since(start)

	t.Logf("straight %v, shared %v (%.1fx)", straight, shared, float64(straight)/float64(shared))
	if shared*3 > straight*2 {
		t.Errorf("shared warmup only %.2fx faster than straight (need >= 1.5x): straight %v, shared %v",
			float64(straight)/float64(shared), straight, shared)
	}
}

// memCache is an in-memory ResultCache for exercising the cache path
// without the obs package (which imports exp).
type memCache struct {
	entries map[core.Config]*core.Result
}

func (m *memCache) Load(cfg core.Config) (*core.Result, bool, error) {
	res, ok := m.entries[cfg]
	return res, ok, nil
}

func (m *memCache) Store(res *core.Result) error {
	m.entries[res.Config] = res
	return nil
}

// TestRunConfigsCachedStats: the first pass misses everything and
// populates the cache; the second hits everything and simulates
// nothing.
func TestRunConfigsCachedStats(t *testing.T) {
	cfgs := sharingVariants(400, 200)[:3]
	cache := &memCache{entries: map[core.Config]*core.Result{}}
	ran := 0
	_, cs, err := RunConfigsCached(cfgs, cache, 1, func(i int) { ran++ })
	if err != nil {
		t.Fatal(err)
	}
	if ran != 3 || cs.Hits != 0 || cs.Misses != 3 {
		t.Fatalf("cold pass: ran %d, stats %+v", ran, cs)
	}
	ran = 0
	results, cs, err := RunConfigsCached(cfgs, cache, 1, func(i int) { ran++ })
	if err != nil {
		t.Fatal(err)
	}
	if ran != 0 || cs.Hits != 3 || cs.Misses != 0 {
		t.Fatalf("warm pass: ran %d, stats %+v", ran, cs)
	}
	for i, res := range results {
		if res != cache.entries[cfgs[i]] {
			t.Errorf("result %d did not come from the cache", i)
		}
	}
}
