package exp

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// detConfig is a reduced-but-representative run used by the
// determinism tests: small enough to repeat several times, large
// enough to exercise misses, broadcasts and retries.
func detConfig(protocol string) core.Config {
	cfg := core.DefaultConfig()
	cfg.Protocol = protocol
	cfg.Workload = "apache4x16p"
	cfg.RefsPerCore = 1500
	cfg.WarmupRefs = 3000
	return cfg
}

// requireSameResult fails the test if two runs of the same
// configuration diverged in any observable counter.
func requireSameResult(t *testing.T, label string, a, b *core.Result) {
	t.Helper()
	if a.Cycles != b.Cycles {
		t.Errorf("%s: cycles %d vs %d", label, a.Cycles, b.Cycles)
	}
	if a.Refs != b.Refs {
		t.Errorf("%s: refs %d vs %d", label, a.Refs, b.Refs)
	}
	if a.Events != b.Events {
		t.Errorf("%s: kernel events %d vs %d", label, a.Events, b.Events)
	}
	if a.Profile != b.Profile {
		t.Errorf("%s: miss profiles differ:\n%+v\n%+v", label, a.Profile, b.Profile)
	}
	if a.Net != b.Net {
		t.Errorf("%s: network stats differ:\n%+v\n%+v", label, a.Net, b.Net)
	}
	if a.MemReads != b.MemReads {
		t.Errorf("%s: memory reads %d vs %d", label, a.MemReads, b.MemReads)
	}
	if a.DedupSavings != b.DedupSavings {
		t.Errorf("%s: dedup savings %v vs %v", label, a.DedupSavings, b.DedupSavings)
	}
	an, bn := a.Counters.Names(), b.Counters.Names()
	if !reflect.DeepEqual(an, bn) {
		t.Errorf("%s: counter name sets differ: %v vs %v", label, an, bn)
		return
	}
	for _, name := range an {
		if av, bv := a.Counters.Value(name), b.Counters.Value(name); av != bv {
			t.Errorf("%s: counter %s = %d vs %d", label, name, av, bv)
		}
	}
}

// TestRunDeterminism runs the same configuration twice per protocol
// and requires every observable counter to match: the event kernel's
// (time, sequence) ordering makes whole runs bit-for-bit reproducible.
func TestRunDeterminism(t *testing.T) {
	for _, p := range core.ProtocolNames {
		cfg := detConfig(p)
		a, err := core.Run(cfg)
		if err != nil {
			t.Fatalf("%s: first run: %v", p, err)
		}
		b, err := core.Run(cfg)
		if err != nil {
			t.Fatalf("%s: second run: %v", p, err)
		}
		requireSameResult(t, p, a, b)
	}
}

// TestProfilingNonPerturbing runs each protocol with the obs hooks off
// and on and requires every observable — the measured phase's kernel
// event count included — to be bit-identical: profiling is pure
// observation and must not move a single event.
func TestProfilingNonPerturbing(t *testing.T) {
	for _, p := range core.ProtocolNames {
		plain, err := core.Run(detConfig(p))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		cfg := detConfig(p)
		cfg.Profile = true
		profiled, err := core.Run(cfg)
		if err != nil {
			t.Fatalf("%s profiled: %v", p, err)
		}
		// Mask the config difference; everything else must match.
		profiled.Config.Profile = false
		requireSameResult(t, p+" profiled-vs-plain", plain, profiled)
		if profiled.Prof == nil {
			t.Fatalf("%s: profiled run carries no profile", p)
		}
		if got := profiled.Prof.Kernel.Dispatched(); got == 0 {
			t.Errorf("%s: kernel profile empty", p)
		}
		if len(profiled.Prof.Phases) != 2 {
			t.Errorf("%s: want warmup+measure phase stats, got %d", p, len(profiled.Prof.Phases))
		}
		if profiled.Prof.MissLatency.Count == 0 {
			t.Errorf("%s: no miss latencies recorded", p)
		}
		if plain.Prof != nil {
			t.Errorf("%s: unprofiled run unexpectedly carries a profile", p)
		}
	}
}

// TestSerialParallelEquivalence runs the same small sweep serially and
// with the bounded worker pool and requires identical results and
// byte-identical rendered figures: parallelism must not change a
// single counter.
func TestSerialParallelEquivalence(t *testing.T) {
	opt := DefaultOptions()
	opt.Workloads = []string{"apache4x16p", "tomcatv4x16p"}
	opt.Base.RefsPerCore = 1500
	opt.Base.WarmupRefs = 3000

	opt.Workers = 1
	var serialOrder []string
	serial, err := Run(opt, func(wl, p string) { serialOrder = append(serialOrder, wl+"/"+p) })
	if err != nil {
		t.Fatal(err)
	}

	opt.Workers = 4
	var parallelOrder []string
	parallel, err := Run(opt, func(wl, p string) { parallelOrder = append(parallelOrder, wl+"/"+p) })
	if err != nil {
		t.Fatal(err)
	}

	// The progress callback fires in matrix order in both modes.
	if !reflect.DeepEqual(serialOrder, parallelOrder) {
		t.Errorf("progress order differs:\nserial:   %v\nparallel: %v", serialOrder, parallelOrder)
	}
	for _, wl := range opt.Workloads {
		for _, p := range core.ProtocolNames {
			requireSameResult(t, wl+"/"+p, serial.Results[wl][p], parallel.Results[wl][p])
		}
	}
	for name, render := range map[string]func(*Matrix) string{
		"figure7":  func(m *Matrix) string { return m.Figure7().String() },
		"figure8a": func(m *Matrix) string { return m.Figure8a().String() },
		"figure8b": func(m *Matrix) string { return m.Figure8b().String() },
		"figure9a": func(m *Matrix) string { return m.Figure9a().String() },
		"figure9b": func(m *Matrix) string { return m.Figure9b().String() },
		"hops":     func(m *Matrix) string { return m.LinkAnalysis().String() },
	} {
		if s, p := render(serial), render(parallel); s != p {
			t.Errorf("%s differs between serial and parallel sweep:\n--- serial\n%s\n--- parallel\n%s", name, s, p)
		}
	}
}

// TestRunConfigsMatchesRun checks the generic pool against individual
// serial runs.
func TestRunConfigsMatchesRun(t *testing.T) {
	var cfgs []core.Config
	for _, p := range core.ProtocolNames {
		cfgs = append(cfgs, detConfig(p))
	}
	pooled, err := RunConfigs(cfgs, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		solo, err := core.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, cfg.Protocol, solo, pooled[i])
	}
}

// TestTelemetryNonPerturbing runs each protocol with causal tracing
// and epoch sampling off and on and requires every observable to be
// bit-identical. Tracing never schedules an event, so the traced event
// stream is identical down to the kernel event count; sampling adds
// its own tick events to the stream but touches no protocol state, so
// every simulation result still matches exactly (only the event count
// may differ — it includes the ticks).
func TestTelemetryNonPerturbing(t *testing.T) {
	for _, p := range core.ProtocolNames {
		plain, err := core.Run(detConfig(p))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}

		cfg := detConfig(p)
		cfg.Trace = true
		traced, err := core.Run(cfg)
		if err != nil {
			t.Fatalf("%s traced: %v", p, err)
		}
		traced.Config.Trace = false
		requireSameResult(t, p+" traced-vs-plain", plain, traced)

		cfg = detConfig(p)
		cfg.SampleEvery = 2000
		sampled, err := core.Run(cfg)
		if err != nil {
			t.Fatalf("%s sampled: %v", p, err)
		}
		if sampled.Series == nil || len(sampled.Series.Samples) == 0 {
			t.Fatalf("%s: sampling produced no series", p)
		}
		// Mask the config difference and the sampler's own tick events;
		// every simulation observable must match.
		sampled.Config.SampleEvery = 0
		sampled.Events = plain.Events
		sampled.Series = nil
		requireSameResult(t, p+" sampled-vs-plain", plain, sampled)
		if plain.Series != nil {
			t.Errorf("%s: unsampled run unexpectedly carries a series", p)
		}

		// The touch census schedules no events and touches no counters,
		// so even the kernel event count must match the plain run.
		cfg = detConfig(p)
		cfg.Census = true
		censused, err := core.Run(cfg)
		if err != nil {
			t.Fatalf("%s census: %v", p, err)
		}
		if len(censused.Census) == 0 {
			t.Fatalf("%s: census run recorded no touch sites", p)
		}
		requireSameResult(t, p+" census-vs-plain", plain, censused)

		// Per-VM attribution routes hot-path charges through per-VM
		// banks and folds them back at measure end: the globals — and
		// every other observable, events included — must be bit-identical
		// to the unattributed run.
		cfg = detConfig(p)
		cfg.PerVM = true
		attributed, err := core.Run(cfg)
		if err != nil {
			t.Fatalf("%s pervm: %v", p, err)
		}
		if len(attributed.PerVM) == 0 {
			t.Fatalf("%s: per-VM run carries no attribution", p)
		}
		requireSameResult(t, p+" pervm-vs-plain", plain, attributed)
		var vmRefs uint64
		for i := range attributed.PerVM {
			v := &attributed.PerVM[i]
			vmRefs += v.Refs
			// The attribution is a slice of the globals: no per-VM bank
			// may exceed what the whole run counted.
			for _, name := range v.Counters.Names() {
				if bv, gv := v.Counters.Value(name), attributed.Counters.Value(name); bv > gv {
					t.Errorf("%s: VM %d counter %s = %d exceeds run total %d", p, v.VM, name, bv, gv)
				}
			}
		}
		if vmRefs != attributed.Refs {
			t.Errorf("%s: per-VM refs sum to %d, want %d (every tile belongs to a VM)", p, vmRefs, attributed.Refs)
		}
		if plain.Census != nil || plain.PerVM != nil {
			t.Errorf("%s: plain run unexpectedly carries census/per-VM data", p)
		}
	}
}
