package exp

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/proto"
)

// smallMatrix runs a reduced two-workload matrix shared by the tests.
func smallMatrix(t *testing.T) *Matrix {
	t.Helper()
	opt := DefaultOptions()
	opt.Workloads = []string{"apache4x16p", "tomcatv4x16p"}
	opt.Base.RefsPerCore = 5000
	opt.Base.WarmupRefs = 15000
	m, err := Run(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

var cached *Matrix

func matrix(t *testing.T) *Matrix {
	if cached == nil {
		cached = smallMatrix(t)
	}
	return cached
}

func TestTablesRender(t *testing.T) {
	if s := Table5().String(); !strings.Contains(s, "DiCo-Arin") || !strings.Contains(s, "L2C$") {
		t.Errorf("Table V incomplete:\n%s", s)
	}
	if s := Table6().String(); !strings.Contains(s, "-5") { // -54%-ish tag column
		t.Errorf("Table VI missing reductions:\n%s", s)
	}
	tabs := Table7()
	if len(tabs) != 5 {
		t.Fatalf("Table VII has %d core counts, want 5", len(tabs))
	}
	if !strings.Contains(tabs[0].String(), "64 cores") {
		t.Error("Table VII missing 64-core block")
	}
}

func TestFiguresRender(t *testing.T) {
	m := matrix(t)
	for name, s := range map[string]string{
		"fig7":  m.Figure7().String(),
		"fig8a": m.Figure8a().String(),
		"fig8b": m.Figure8b().String(),
		"fig9a": m.Figure9a().String(),
		"fig9b": m.Figure9b().String(),
		"hops":  m.LinkAnalysis().String(),
	} {
		if !strings.Contains(s, "apache4x16p") || !strings.Contains(s, "arin") {
			t.Errorf("%s incomplete:\n%s", name, s)
		}
	}
}

// TestClaimNoPerformanceDegradation checks the paper's headline
// performance claim: the proposed protocols show no significant
// degradation versus the directory (Figure 9a).
func TestClaimNoPerformanceDegradation(t *testing.T) {
	m := matrix(t)
	for _, wl := range m.Workloads {
		base := m.Results[wl]["directory"].Performance()
		for _, p := range []string{"providers", "arin"} {
			rel := m.Results[wl][p].Performance() / base
			if rel < 0.90 {
				t.Errorf("%s/%s performance %.3f of directory; paper promises no significant degradation", wl, p, rel)
			}
		}
	}
}

// TestClaimProvidersShortenMisses checks Section V-D: provider-served
// misses stay inside the area — far fewer links than the chip-wide
// average two-hop miss.
func TestClaimProvidersShortenMisses(t *testing.T) {
	m := matrix(t)
	r := m.Results["apache4x16p"]["providers"]
	short := r.Profile.MeanLinks(proto.MissPredProvider)
	if r.Profile.Count[proto.MissPredProvider] == 0 {
		t.Skip("no predicted provider hits in this reduced run")
	}
	if short > 7 {
		t.Errorf("predicted provider misses average %.1f links; in-area misses should stay under ~6 (paper: 5.4)", short)
	}
}

// TestClaimProvidersServeDedup: DiCo-Providers resolves a noticeable
// share of apache's misses via providers (paper: 21% predicted +
// provider-resolved for apache).
func TestClaimProvidersServeDedup(t *testing.T) {
	m := matrix(t)
	r := m.Results["apache4x16p"]["providers"]
	served := r.Profile.Count[proto.MissPredProvider] + r.Profile.Count[proto.MissUnpredProvider]
	frac := float64(served) / float64(r.Profile.TotalMisses())
	if frac < 0.03 {
		t.Errorf("providers served only %.1f%% of apache misses; expected a noticeable share", frac*100)
	}
}

// TestClaimProvidersImproveDiCoPower: in L1-power-dominated workloads,
// both proposals beat the original DiCo's total dynamic power
// (Section V-C: "by at least 10% in every L1-power-dominated
// workload"; we require an improvement, allowing slack at this run
// scale).
func TestClaimProvidersImproveDiCoPower(t *testing.T) {
	m := matrix(t)
	dico := m.Results["tomcatv4x16p"]["dico"].PowerPerCycle()
	for _, p := range []string{"providers", "arin"} {
		got := m.Results["tomcatv4x16p"][p].PowerPerCycle()
		if got > dico*1.02 {
			t.Errorf("%s tomcatv dynamic power %.3g vs dico %.3g; paper says the proposals improve on DiCo", p, got, dico)
		}
	}
}

// TestTheoreticalDistances checks the Section V-D projections: on 64
// tiles / 4 areas a direct miss averages ~10.6 links and a shortened
// miss ~5.4; on 256 tiles / 64 areas: ~21.3 and ~2.6.
func TestTheoreticalDistances(t *testing.T) {
	ind, dir, short := TheoreticalDistances(64, 4)
	if dir < 10 || dir > 11.2 {
		t.Errorf("64-tile direct = %.1f links, paper ~10.6", dir)
	}
	if short < 4.8 || short > 6 {
		t.Errorf("64-tile shortened = %.1f links, paper ~5.4", short)
	}
	if ind < 15 || ind > 17 {
		t.Errorf("64-tile indirect = %.1f links, paper ~16", ind)
	}
	_, dir256, short256 := TheoreticalDistances(256, 64)
	if dir256 < 20 || dir256 > 22.5 {
		t.Errorf("256-tile direct = %.1f links, paper ~21.3", dir256)
	}
	if short256 < 2.2 || short256 > 3 {
		t.Errorf("256-tile shortened = %.1f links, paper ~2.6", short256)
	}
}

// TestDedupSavingsSurfaceInResults: the realized memory savings land
// near Table IV's column for apache.
func TestDedupSavingsSurfaceInResults(t *testing.T) {
	m := matrix(t)
	got := m.Results["apache4x16p"]["directory"].DedupSavings
	if got < 0.10 || got > 0.32 {
		t.Errorf("apache dedup savings %.3f, Table IV says 0.217", got)
	}
}

// TestOptionsBaseDerivation checks the Base contract of
// Options.config: cells derive from Base verbatim (only workload and
// protocol are overwritten), and a zero Base falls back to
// core.DefaultConfig.
func TestOptionsBaseDerivation(t *testing.T) {
	// Base alone drives the cell.
	opt := DefaultOptions()
	opt.Base.RefsPerCore = 1111
	opt.Base.WarmupRefs = 2222
	opt.Base.Seed = 9
	opt.Base.Dedup = false
	opt.Base.AltPlacement = true
	opt.Base.Areas = 16
	opt.Base.Shards = 2
	cfg := opt.config("jbb4x16p", "arin")
	if cfg.Workload != "jbb4x16p" || cfg.Protocol != "arin" {
		t.Errorf("cell identity wrong: %s/%s", cfg.Workload, cfg.Protocol)
	}
	if cfg.RefsPerCore != 1111 || cfg.WarmupRefs != 2222 || cfg.Seed != 9 ||
		cfg.Dedup || !cfg.AltPlacement || cfg.Areas != 16 || cfg.Shards != 2 {
		t.Errorf("Base not honored: %+v", cfg)
	}

	// Zero-value Options still produce a runnable default config.
	cfg = Options{}.config("apache4x16p", "directory")
	def := core.DefaultConfig()
	if cfg.Tiles != def.Tiles || cfg.RefsPerCore != def.RefsPerCore || !cfg.Dedup {
		t.Errorf("zero Base did not fall back to defaults: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("zero-Base cell invalid: %v", err)
	}
}
