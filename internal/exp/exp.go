// Package exp regenerates the paper's evaluation artifacts: Tables V,
// VI and VII (analytic) and Figures 7, 8a, 8b, 9a and 9b plus the
// Section V-D link analysis (simulation).
package exp

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/proto"
	"repro/internal/snapshot"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/topo"
	"repro/internal/workload"
)

// ResultCache stores finished runs keyed by their full configuration.
// obs.RunCache implements it (the interface lives here because obs
// imports exp for the manifest converters). Load returns (nil, false,
// nil) on a miss.
type ResultCache interface {
	Load(cfg core.Config) (*core.Result, bool, error)
	Store(res *core.Result) error
}

// CacheStats counts how a sweep's runs were satisfied. Without a
// cache every run is a miss.
type CacheStats struct {
	Hits   int
	Misses int
}

// Options parameterize a full evaluation sweep. Base carries the
// shared simulation configuration; the sweep only varies Workload and
// Protocol across it.
type Options struct {
	Workloads []string
	// Base is the configuration every matrix cell derives from
	// (protocol and workload are overwritten per cell). Zero-value
	// Base (Tiles == 0) falls back to core.DefaultConfig. Base is the
	// single source of simulation parameters: the old top-level
	// pass-through fields (RefsPerCore, WarmupRefs, Seed, AltPlacement,
	// Dedup) are gone, along with their override-precedence rules.
	Base core.Config

	// Workers bounds how many simulations run concurrently. Every
	// (workload, protocol) run owns its kernel, chip and RNG, so the
	// sweep parallelizes without sharing; results are identical to a
	// serial sweep for a given seed. 0 means runtime.GOMAXPROCS(0);
	// 1 forces the serial path.
	Workers int

	// Cache, when non-nil, resolves already-computed cells to disk
	// reads and stores every freshly computed one, making repeated
	// sweeps incremental (see obs.RunCache). Results are bit-identical
	// either way: a hit decodes through the same integrity-checked
	// path as a saved manifest.
	Cache ResultCache

	// OnSystem, when non-nil, observes every freshly built system
	// before its measure phase starts (cache hits build no system and
	// get no call). Calls are serialized, so live telemetry hooks
	// (sampler attachment) need no synchronization of their own. The
	// system's own Cfg identifies the cell.
	OnSystem func(s *core.System)
}

// DefaultOptions runs every Table IV workload at a laptop-scale budget.
func DefaultOptions() Options {
	base := core.DefaultConfig()
	base.RefsPerCore = 25000
	base.WarmupRefs = 60000
	return Options{
		Workloads: workload.Names,
		Base:      base,
	}
}

// config builds the core.Config for one cell of the sweep matrix:
// Base (or core.DefaultConfig when Base is zero) with the cell's
// workload and protocol.
func (opt Options) config(wl, protocol string) core.Config {
	cfg := opt.Base
	if cfg.Tiles == 0 {
		cfg = core.DefaultConfig()
	}
	cfg.Protocol = protocol
	cfg.Workload = wl
	return cfg
}

// Matrix holds one result per (workload, protocol).
type Matrix struct {
	Workloads []string
	Results   map[string]map[string]*core.Result // workload -> protocol
	// Cache reports how the sweep's runs were satisfied when
	// Options.Cache was set (all misses otherwise).
	Cache CacheStats
}

// Run executes the full sweep, fanning the (workload, protocol) matrix
// out over opt.Workers goroutines. progress (optional) is called
// before each run, in matrix order, never concurrently; cache hits are
// resolved up front and get no progress call. Result assembly is
// deterministic: each run writes only its own matrix cell, and on
// error the first failure in matrix order is reported.
func Run(opt Options, progress func(workload, protocol string)) (*Matrix, error) {
	type job struct{ wl, protocol string }
	jobs := make([]job, 0, len(opt.Workloads)*len(core.ProtocolNames))
	cfgs := make([]core.Config, 0, cap(jobs))
	for _, wl := range opt.Workloads {
		for _, p := range core.ProtocolNames {
			jobs = append(jobs, job{wl, p})
			cfgs = append(cfgs, opt.config(wl, p))
		}
	}
	var onStart func(i int)
	if progress != nil {
		onStart = func(i int) { progress(jobs[i].wl, jobs[i].protocol) }
	}
	results, cs, err := runShared(cfgs, opt.Cache, opt.Workers, onStart, opt.OnSystem)
	if err != nil {
		return nil, err
	}
	m := &Matrix{Workloads: opt.Workloads, Results: map[string]map[string]*core.Result{}, Cache: cs}
	for i, j := range jobs {
		if m.Results[j.wl] == nil {
			m.Results[j.wl] = map[string]*core.Result{}
		}
		m.Results[j.wl][j.protocol] = results[i]
	}
	return m, nil
}

// warmupKey groups configurations that provably reach bit-identical
// state at the warmup/measure boundary: equal snapshot.WarmupConfig
// normalizations. The JSON encoding of the normalized config is the
// key.
func warmupKey(cfg core.Config) string {
	data, err := json.Marshal(snapshot.WarmupConfig(cfg))
	if err != nil {
		panic(err) // flat struct of scalars; cannot fail
	}
	return string(data)
}

// runShared is the execution engine behind Run and RunConfigs: it
// resolves cache hits, groups the remaining configurations by
// warmupKey, and runs each group as one warmup phase forked into that
// group's measure phases (internal/snapshot guarantees the fork is
// bit-identical to a straight-through run, so sharing is purely a
// wall-clock optimization). Singleton groups and warmup-free configs
// take the plain core.Run path. Groups are claimed by a worker pool in
// first-appearance order; within a group, members run in input order.
// Freshly computed results are stored back into the cache.
func runShared(cfgs []core.Config, cache ResultCache, workers int, progress func(i int), onSystem func(s *core.System)) ([]*core.Result, CacheStats, error) {
	results := make([]*core.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var cs CacheStats

	// Validate everything first, then resolve cache hits, so a sweep
	// with a bad cell fails before any simulation or disk write.
	for i, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return nil, cs, fmt.Errorf("config %d (%s/%s): %w", i, cfg.Workload, cfg.Protocol, err)
		}
	}
	var pending []int
	for i, cfg := range cfgs {
		if cache != nil {
			res, ok, err := cache.Load(cfg)
			if err != nil {
				return nil, cs, fmt.Errorf("config %d (%s/%s): %w", i, cfg.Workload, cfg.Protocol, err)
			}
			if ok {
				results[i] = res
				cs.Hits++
				continue
			}
		}
		cs.Misses++
		pending = append(pending, i)
	}

	// Group the misses by warmup equivalence, preserving first-seen
	// order so the progress callback stays deterministic.
	groupOf := map[string]int{}
	var groups [][]int
	for _, i := range pending {
		k := warmupKey(cfgs[i])
		g, ok := groupOf[k]
		if !ok {
			g = len(groups)
			groupOf[k] = g
			groups = append(groups, nil)
		}
		groups[g] = append(groups[g], i)
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(groups) {
		workers = len(groups)
	}

	var mu sync.Mutex
	runGroup := func(members []int) {
		start := func(i int) {
			if progress != nil {
				mu.Lock()
				progress(i)
				mu.Unlock()
			}
		}
		// built serializes the OnSystem hook across worker goroutines.
		built := func(s *core.System) {
			if onSystem != nil {
				mu.Lock()
				onSystem(s)
				mu.Unlock()
			}
		}
		if len(members) == 1 || cfgs[members[0]].WarmupRefs == 0 {
			for _, i := range members {
				start(i)
				s, err := core.NewSystem(cfgs[i])
				if err != nil {
					errs[i] = err
					continue
				}
				built(s)
				results[i], errs[i] = s.Run()
			}
			return
		}
		// One warmup, many measures. The warmup runs under the
		// normalized config (with a legal RefsPerCore — the measure
		// length is irrelevant to the warmup phase and overridden by
		// each fork's own config).
		warmCfg := snapshot.WarmupConfig(cfgs[members[0]])
		warmCfg.RefsPerCore = cfgs[members[0]].RefsPerCore
		fail := func(err error) {
			for _, i := range members {
				errs[i] = err
			}
		}
		ws, err := core.NewSystem(warmCfg)
		if err != nil {
			fail(err)
			return
		}
		if err := ws.RunWarmup(); err != nil {
			fail(err)
			return
		}
		st, err := snapshot.Capture(ws)
		if err != nil {
			fail(err)
			return
		}
		for _, i := range members {
			start(i)
			fs, err := snapshot.Fork(st, cfgs[i])
			if err != nil {
				errs[i] = err
				continue
			}
			built(fs)
			results[i], errs[i] = fs.RunMeasure()
		}
	}

	if workers <= 1 {
		for _, g := range groups {
			runGroup(g)
		}
	} else {
		var (
			next int
			wg   sync.WaitGroup
		)
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					mu.Lock()
					if next >= len(groups) {
						mu.Unlock()
						return
					}
					g := next
					next++
					mu.Unlock()
					runGroup(groups[g])
				}
			}()
		}
		wg.Wait()
	}

	for _, i := range pending {
		if errs[i] != nil {
			return nil, cs, fmt.Errorf("config %d (%s/%s): %w", i, cfgs[i].Workload, cfgs[i].Protocol, errs[i])
		}
		if cache != nil {
			if err := cache.Store(results[i]); err != nil {
				return nil, cs, fmt.Errorf("config %d (%s/%s): %w", i, cfgs[i].Workload, cfgs[i].Protocol, err)
			}
		}
	}
	return results, cs, nil
}

// RunSystems is RunConfigs for callers that also need each run's built
// System — the telemetry consumers (tracer, sampler, live endpoint)
// hang off the System, not the Result. onBuild (optional) is called
// with each system after construction and before its run starts, never
// concurrently, so callers can attach live hooks without their own
// synchronization. Systems land in slot i like results do.
func RunSystems(cfgs []core.Config, workers int, onBuild func(i int, s *core.System)) ([]*core.Result, []*core.System, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	results := make([]*core.Result, len(cfgs))
	systems := make([]*core.System, len(cfgs))
	errs := make([]error, len(cfgs))
	var (
		mu   sync.Mutex
		next int
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= len(cfgs) {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if err := cfgs[i].Validate(); err != nil {
					errs[i] = err
					continue
				}
				sys, err := core.NewSystem(cfgs[i])
				if err != nil {
					errs[i] = err
					continue
				}
				systems[i] = sys
				if onBuild != nil {
					mu.Lock()
					onBuild(i, sys)
					mu.Unlock()
				}
				results[i], errs[i] = sys.Run()
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("config %d (%s/%s): %w", i, cfgs[i].Workload, cfgs[i].Protocol, err)
		}
	}
	return results, systems, nil
}

// RunConfigs executes arbitrary configurations through the same
// engine as Run: configuration i's result lands in slot i, and
// configurations whose warmups are provably identical (equal
// snapshot.WarmupConfig) share one warmup phase via checkpoint/fork —
// results stay bit-identical to individual core.Run calls. progress
// (optional) is called with the index of each run as it starts, never
// concurrently. The first error in slice order wins.
func RunConfigs(cfgs []core.Config, workers int, progress func(i int)) ([]*core.Result, error) {
	results, _, err := runShared(cfgs, nil, workers, progress, nil)
	return results, err
}

// RunConfigsCached is RunConfigs with a result cache: hits resolve to
// disk reads, misses are computed (sharing warmups where possible) and
// stored back.
func RunConfigsCached(cfgs []core.Config, cache ResultCache, workers int, progress func(i int)) ([]*core.Result, CacheStats, error) {
	return runShared(cfgs, cache, workers, progress, nil)
}

// Table5 renders the per-tile storage breakdown (Table V).
func Table5() *stats.Table {
	cfg := storage.DefaultConfig(64, 4)
	t := stats.NewTable("Table V: per-tile coherence storage (64 tiles, 4 areas)",
		"protocol", "structure", "entry bits", "entries", "KB", "overhead")
	for _, s := range storage.DataStructures(cfg) {
		t.AddRow("(data)", s.Name, fmt.Sprint(s.EntryBits), fmt.Sprint(s.Entries),
			fmt.Sprintf("%.2f", s.KB()), "")
	}
	for _, p := range storage.All {
		oh := storage.Overhead(p, cfg)
		for i, s := range storage.CoherenceStructures(p, cfg) {
			ohCell := ""
			if i == 0 {
				ohCell = fmt.Sprintf("%.2f%%", oh*100)
			}
			t.AddRow(p.String(), s.Name, fmt.Sprint(s.EntryBits), fmt.Sprint(s.Entries),
				fmt.Sprintf("%.2f", s.KB()), ohCell)
		}
	}
	return t
}

// Table6 renders the per-tile leakage power (Table VI).
func Table6() *stats.Table {
	cfg := storage.DefaultConfig(64, 4)
	m := power.DefaultLeakage()
	dirTotal, dirTag := m.TileLeakage(storage.Directory, cfg)
	t := stats.NewTable("Table VI: leakage power of the caches per tile",
		"protocol", "total mW", "vs directory", "tag mW", "vs directory")
	for _, p := range storage.All {
		total, tag := m.TileLeakage(p, cfg)
		t.AddRow(p.String(),
			fmt.Sprintf("%.0f", total),
			fmt.Sprintf("%+.0f%%", (total-dirTotal)/dirTotal*100),
			fmt.Sprintf("%.0f", tag),
			fmt.Sprintf("%+.0f%%", (tag-dirTag)/dirTag*100))
	}
	return t
}

// Table7 renders the storage-overhead sweep (Table VII).
func Table7() []*stats.Table {
	var tables []*stats.Table
	for _, cores := range []int{64, 128, 256, 512, 1024} {
		sweep, areas := storage.OverheadSweep(cores)
		headers := []string{"protocol"}
		for _, a := range areas {
			headers = append(headers, fmt.Sprintf("%d areas", a))
		}
		t := stats.NewTable(fmt.Sprintf("Table VII: storage overhead, %d cores", cores), headers...)
		for _, p := range storage.All {
			row := []string{p.String()}
			for _, v := range sweep[p] {
				row = append(row, fmt.Sprintf("%.1f%%", v*100))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables
}

// Figure7 renders total dynamic power per workload and protocol,
// normalized to the directory's cache dynamic power (the paper's
// normalization), broken into cache, network links and routing.
func (m *Matrix) Figure7() *stats.Table {
	t := stats.NewTable("Figure 7: normalized dynamic power (cache + links + routing)",
		"workload", "protocol", "cache", "links", "routing", "total", "vs directory")
	for _, wl := range m.Workloads {
		base := m.Results[wl]["directory"]
		den := base.CachePowerPerCycle()
		for _, p := range core.ProtocolNames {
			r := m.Results[wl][p]
			cyc := float64(r.Cycles)
			cache := r.Breakdown.CacheTotal() / cyc / den
			links := r.Breakdown.Link / cyc / den
			routing := r.Breakdown.Routing / cyc / den
			total := cache + links + routing
			baseTotal := base.PowerPerCycle() / den
			t.AddRow(wl, p,
				fmt.Sprintf("%.3f", cache),
				fmt.Sprintf("%.3f", links),
				fmt.Sprintf("%.3f", routing),
				fmt.Sprintf("%.3f", total),
				fmt.Sprintf("%+.1f%%", (total-baseTotal)/baseTotal*100))
		}
	}
	return t
}

// Figure8a renders the cache dynamic power breakdown by event class,
// normalized per workload to the directory's cache power.
func (m *Matrix) Figure8a() *stats.Table {
	headers := append([]string{"workload", "protocol"}, power.CacheClasses...)
	t := stats.NewTable("Figure 8a: normalized cache dynamic power by event class", headers...)
	for _, wl := range m.Workloads {
		den := m.Results[wl]["directory"].CachePowerPerCycle()
		for _, p := range core.ProtocolNames {
			r := m.Results[wl][p]
			row := []string{wl, p}
			for _, cls := range power.CacheClasses {
				row = append(row, fmt.Sprintf("%.3f", r.Breakdown.Cache[cls]/float64(r.Cycles)/den))
			}
			t.AddRow(row...)
		}
	}
	return t
}

// Figure8b renders the network dynamic power (links vs routing),
// normalized per workload to the directory's network power.
func (m *Matrix) Figure8b() *stats.Table {
	t := stats.NewTable("Figure 8b: normalized network dynamic power",
		"workload", "protocol", "links", "routing", "total", "vs directory")
	for _, wl := range m.Workloads {
		den := m.Results[wl]["directory"].NetworkPowerPerCycle()
		for _, p := range core.ProtocolNames {
			r := m.Results[wl][p]
			cyc := float64(r.Cycles)
			links := r.Breakdown.Link / cyc / den
			routing := r.Breakdown.Routing / cyc / den
			t.AddRow(wl, p,
				fmt.Sprintf("%.3f", links),
				fmt.Sprintf("%.3f", routing),
				fmt.Sprintf("%.3f", links+routing),
				fmt.Sprintf("%+.1f%%", (links+routing-1)*100))
		}
	}
	return t
}

// Figure9a renders performance normalized to the directory (bigger is
// better).
func (m *Matrix) Figure9a() *stats.Table {
	t := stats.NewTable("Figure 9a: performance normalized to directory (bigger is better)",
		"workload", "directory", "dico", "providers", "arin")
	for _, wl := range m.Workloads {
		base := m.Results[wl]["directory"].Performance()
		row := []string{wl}
		for _, p := range core.ProtocolNames {
			row = append(row, fmt.Sprintf("%.3f", m.Results[wl][p].Performance()/base))
		}
		t.AddRow(row...)
	}
	return t
}

// Figure9b renders the L1-miss breakdown into the six prediction
// categories (fractions of all misses).
func (m *Matrix) Figure9b() *stats.Table {
	headers := []string{"workload", "protocol"}
	for _, n := range proto.MissClassNames {
		headers = append(headers, n)
	}
	t := stats.NewTable("Figure 9b: L1 miss breakdown by prediction category", headers...)
	for _, wl := range m.Workloads {
		for _, p := range core.ProtocolNames {
			r := m.Results[wl][p]
			total := float64(r.Profile.TotalMisses())
			row := []string{wl, p}
			for c := 0; c < int(proto.NumMissClasses); c++ {
				row = append(row, fmt.Sprintf("%.3f", float64(r.Profile.Count[c])/total))
			}
			t.AddRow(row...)
		}
	}
	return t
}

// LinkAnalysis reproduces Section V-D's shortened-miss numbers: the
// mean links traversed per miss class, against the theoretical mesh
// distances.
func (m *Matrix) LinkAnalysis() *stats.Table {
	t := stats.NewTable("Section V-D: links traversed per miss (measured)",
		"workload", "protocol", "pred-owner", "pred-provider", "all misses")
	for _, wl := range m.Workloads {
		for _, p := range core.ProtocolNames {
			r := m.Results[wl][p]
			var totLinks, totCnt uint64
			for c := 0; c < int(proto.NumMissClasses); c++ {
				totLinks += r.Profile.Links[c]
				totCnt += r.Profile.Count[c]
			}
			all := 0.0
			if totCnt > 0 {
				all = float64(totLinks) / float64(totCnt)
			}
			t.AddRow(wl, p,
				fmt.Sprintf("%.1f", r.Profile.MeanLinks(proto.MissPredOwner)),
				fmt.Sprintf("%.1f", r.Profile.MeanLinks(proto.MissPredProvider)),
				fmt.Sprintf("%.1f", all))
		}
	}
	return t
}

// TheoreticalDistances reproduces the paper's closing projection of
// Section V-D: mean link counts for indirect, direct and in-area
// shortened misses on n-tile chips with the given area sizes.
func TheoreticalDistances(tiles, areas int) (indirect, direct, shortened float64) {
	grid := topo.SquareGrid(tiles)
	mean := mesh.MeanDistance(grid)
	ar := topo.MustAreas(grid, areas)
	// Mean distance within one area.
	areaTiles := ar.TilesIn(0)
	tot, n := 0, 0
	for _, a := range areaTiles {
		for _, b := range areaTiles {
			if a != b {
				tot += grid.Hops(a, b)
				n++
			}
		}
	}
	inArea := float64(tot) / float64(n)
	return 3 * mean, 2 * mean, 2 * inArea
}

// SortedWorkloads returns the matrix workloads sorted for stable
// output.
func (m *Matrix) SortedWorkloads() []string {
	out := append([]string(nil), m.Workloads...)
	sort.Strings(out)
	return out
}
