package proto

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/topo"
)

// engineInternals exposes the shared per-tile state of the four
// engines to the debug formatters. All transient per-block state
// (stall queues, busy/blocked flags, recall marks) lives in each
// tile's transaction table.
func engineInternals(e Engine) (tiles []*tileState, ctx *Context) {
	switch eng := e.(type) {
	case *Directory:
		tiles, ctx = eng.tiles, eng.ctx
	case *DiCo:
		tiles, ctx = eng.tiles, eng.ctx
	case *Providers:
		tiles, ctx = eng.tiles, eng.ctx
	case *Arin:
		tiles, ctx = eng.tiles, eng.ctx
	}
	return
}

// FormatBlockState returns the global state of one block: every L1
// copy, the home L2 line and pointer caches, and the per-tile stall
// state (debug aid).
func FormatBlockState(e Engine, addr cache.Addr) string {
	tiles, ctx := engineInternals(e)
	if tiles == nil {
		return fmt.Sprintf("block %#x: unknown engine %T", addr, e)
	}
	home := ctx.HomeOf(addr)
	var b strings.Builder
	fmt.Fprintf(&b, "block %#x home=%d\n", addr, home)
	for i, t := range tiles {
		if l := t.l1.Peek(addr); l != nil {
			fmt.Fprintf(&b, "  L1[%d]: state=%d dirty=%v sharers=%#x owner=%d\n", i, l.State, l.Dirty, l.Sharers, l.Owner)
		}
		if me, ok := t.mshr.Lookup(addr); ok {
			fmt.Fprintf(&b, "  MSHR[%d]: %+v\n", i, *me)
		}
		if t.pendingL1Len(addr) > 0 || t.blocked(addr) {
			fmt.Fprintf(&b, "  tile %d: pendingL1=%d blocked=%v\n", i, t.pendingL1Len(addr), t.blocked(addr))
		}
	}
	th := tiles[home]
	if th.dir != nil {
		if dl := th.dir.Peek(addr); dl != nil {
			fmt.Fprintf(&b, "  dir[%d]: owner=%d sharers=%#x\n", home, dl.Owner, dl.Sharers)
		} else {
			fmt.Fprintf(&b, "  dir[%d]: no entry\n", home)
		}
	}
	if l := th.l2.Peek(addr); l != nil {
		fmt.Fprintf(&b, "  L2[%d]: state=%d dirty=%v sharers=%#x areatag=%d propos=%v\n", home, l.State, l.Dirty, l.Sharers, l.AreaTag, l.ProPos)
	} else {
		fmt.Fprintf(&b, "  L2[%d]: no line\n", home)
	}
	if ptr, ok := th.l2c.Lookup(addr); ok {
		fmt.Fprintf(&b, "  L2C$[%d] -> %d\n", home, ptr)
	}
	fmt.Fprintf(&b, "  homeBusy=%v pendingHome=%d recall=%v\n",
		th.homeBusy(addr), th.pendingHomeLen(addr), th.recallMarked(addr))
	return b.String()
}

// DumpBlockState prints FormatBlockState (debug aid).
func DumpBlockState(e Engine, addr cache.Addr) { fmt.Print(FormatBlockState(e, addr)) }

// FormatStalls returns every outstanding MSHR entry and stall queue of
// the engine (debug aid for hangs).
func FormatStalls(e Engine) string {
	tiles, _ := engineInternals(e)
	if tiles == nil {
		return fmt.Sprintf("unknown engine %T", e)
	}
	var b strings.Builder
	for i, t := range tiles {
		if n := t.mshr.Outstanding(); n > 0 {
			fmt.Fprintf(&b, "tile %d: %d outstanding\n", i, n)
			entries := make([]*cache.MSHREntry, 0, n)
			t.mshr.ForEach(func(me *cache.MSHREntry) { entries = append(entries, me) })
			sort.Slice(entries, func(a, c int) bool { return entries[a].Addr < entries[c].Addr })
			for _, me := range entries {
				fmt.Fprintf(&b, "  MSHR %#x: %+v\n", me.Addr, *me)
			}
		}
		t.tx.forEach(func(r *txRecord) {
			if n := t.pendingL1Len(r.addr); n > 0 {
				fmt.Fprintf(&b, "tile %d pendingL1[%#x]: %d (blocked=%v)\n", i, r.addr, n, r.flags&txBlocked != 0)
			}
			if n := t.pendingHomeLen(r.addr); n > 0 {
				fmt.Fprintf(&b, "tile %d pendingHome[%#x]: %d (busy=%v recall=%v)\n", i, r.addr, n,
					r.flags&txHomeBusy != 0, r.flags&txRecall != 0)
			}
			if r.flags&txHomeBusy != 0 {
				fmt.Fprintf(&b, "tile %d homeBusy[%#x]\n", i, r.addr)
			}
			if r.flags&txBlocked != 0 {
				fmt.Fprintf(&b, "tile %d blocked[%#x]\n", i, r.addr)
			}
			if r.flags&txRecall != 0 {
				fmt.Fprintf(&b, "tile %d recall[%#x]\n", i, r.addr)
			}
		})
	}
	return b.String()
}

// DumpStalls prints FormatStalls (debug aid for hangs).
func DumpStalls(e Engine) { fmt.Print(FormatStalls(e)) }

// StallProbe returns a sim.Watchdog probe that reports a stalled
// transaction: any MSHR entry older than bound cycles. The report
// names the oldest such entry and dumps the offending block's global
// state. Home-queued requests are covered transitively — every
// request stalled at a home belongs to some requestor's MSHR entry.
func StallProbe(e Engine, k *sim.Kernel, bound sim.Time) func() string {
	return func() string {
		now := uint64(k.Now())
		var worst *cache.MSHREntry
		var worstTile topo.Tile
		e.ForEachPending(func(tile topo.Tile, me *cache.MSHREntry) {
			if now-me.IssuedAt < uint64(bound) {
				return
			}
			// Deterministic choice under map iteration: oldest first,
			// ties by (tile, addr).
			if worst == nil || me.IssuedAt < worst.IssuedAt ||
				(me.IssuedAt == worst.IssuedAt &&
					(tile < worstTile || (tile == worstTile && me.Addr < worst.Addr))) {
				worst, worstTile = me, tile
			}
		})
		if worst == nil {
			return ""
		}
		return fmt.Sprintf("%s: transaction stalled: tile %d block %#x pending since t=%d (now %d, bound %d)\n%s",
			e.Name(), worstTile, worst.Addr, worst.IssuedAt, now, bound,
			FormatBlockState(e, worst.Addr))
	}
}
