package proto

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/topo"
)

// DumpBlockState prints the global state of one block (debug aid).
func DumpBlockState(e Engine, addr cache.Addr) {
	var tiles []*tileState
	var ctx *Context
	switch eng := e.(type) {
	case *Directory:
		tiles, ctx = eng.tiles, eng.ctx
	case *DiCo:
		tiles, ctx = eng.tiles, eng.ctx
	case *Providers:
		tiles, ctx = eng.tiles, eng.ctx
	case *Arin:
		tiles, ctx = eng.tiles, eng.ctx
	}
	home := ctx.HomeOf(addr)
	fmt.Printf("block %#x home=%d\n", addr, home)
	for i, t := range tiles {
		if l := t.l1.Peek(addr); l != nil {
			fmt.Printf("  L1[%d]: state=%d dirty=%v sharers=%#x owner=%d\n", i, l.State, l.Dirty, l.Sharers, l.Owner)
		}
		if _, ok := t.mshr.Lookup(addr); ok {
			fmt.Printf("  MSHR pending at %d\n", i)
		}
	}
	th := tiles[home]
	if l := th.l2.Peek(addr); l != nil {
		fmt.Printf("  L2[%d]: state=%d dirty=%v sharers=%#x areatag=%d propos=%v\n", home, l.State, l.Dirty, l.Sharers, l.AreaTag, l.ProPos)
	} else {
		fmt.Printf("  L2[%d]: no line\n", home)
	}
	if ptr, ok := th.l2c.Lookup(addr); ok {
		fmt.Printf("  L2C$[%d] -> %d\n", home, ptr)
	}
	fmt.Printf("  homeBusy=%v pendingHome=%d\n", th.homeBusy[addr], len(th.pendingHome[addr]))
	_ = topo.Tile(0)
}

// DumpStalls prints every outstanding MSHR entry and stall queue of the
// engine (debug aid for hangs).
func DumpStalls(e Engine) {
	var tiles []*tileState
	var recalls []map[cache.Addr]bool
	switch eng := e.(type) {
	case *Directory:
		tiles = eng.tiles
	case *DiCo:
		tiles, recalls = eng.tiles, eng.recalls
	case *Providers:
		tiles, recalls = eng.tiles, eng.recalls
	case *Arin:
		tiles, recalls = eng.tiles, eng.recalls
	}
	for i, t := range tiles {
		if n := t.mshr.Outstanding(); n > 0 {
			fmt.Printf("tile %d: %d outstanding\n", i, n)
			for a := cache.Addr(0); a < 1<<22; a++ {
				if e, ok := t.mshr.Lookup(a); ok {
					fmt.Printf("  MSHR %#x: %+v\n", a, e)
				}
			}
		}
		for a, q := range t.pendingL1 {
			fmt.Printf("tile %d pendingL1[%#x]: %d (blocked=%v)\n", i, a, len(q), t.blocked[a])
		}
		for a, q := range t.pendingHome {
			fmt.Printf("tile %d pendingHome[%#x]: %d (busy=%v recall=%v)\n", i, a, len(q),
				t.homeBusy[a], recalls != nil && recalls[i][a])
		}
		for a := range t.homeBusy {
			fmt.Printf("tile %d homeBusy[%#x]\n", i, a)
		}
		for a := range t.blocked {
			fmt.Printf("tile %d blocked[%#x]\n", i, a)
		}
		if recalls != nil {
			for a := range recalls[i] {
				fmt.Printf("tile %d recall[%#x]\n", i, a)
			}
		}
	}
}
