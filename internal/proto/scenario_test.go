package proto

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/topo"
)

// TestDiCoL2CRecall forces L2C$ displacement: with a tiny L2C$, taking
// ownership of many blocks homed at one bank recalls earlier owners'
// blocks to the home L2, and the system stays coherent and reachable.
func TestDiCoL2CRecall(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CCSets, cfg.CCWays = 1, 2 // 2-entry L2C$ per bank
	c := newTestChipSized(t, func(ctx *Context) Engine { return NewDiCo(ctx) }, 64, 4, cfg)
	home := topo.Tile(5)
	// Six blocks homed at tile 5, owned by six different tiles.
	var addrs []cache.Addr
	for i := 0; i < 6; i++ {
		addrs = append(addrs, pickBlock(c, home)+cache.Addr(64*i))
	}
	for i, a := range addrs {
		c.access(topo.Tile(10+i), a, true) // writers become L1 owners
	}
	// Every block must still be readable by a third party.
	for i, a := range addrs {
		c.access(topo.Tile(30+i), a, false)
	}
	// The L2C$ can hold at most 2 pointers; the rest must have been
	// recalled into the home's L2.
	eng := c.eng.(*DiCo)
	if got := eng.tiles[home].l2c.CountValid(); got > 2 {
		t.Errorf("L2C$ holds %d entries, capacity 2", got)
	}
}

// TestDiCoPredictionUpdatedByInvalidation: per Figure 5, an
// invalidation carries the new owner's identity, so the next miss by
// the invalidated sharer goes straight to the writer.
func TestDiCoPredictionUpdatedByInvalidation(t *testing.T) {
	c := newTestChip(t, func(ctx *Context) Engine { return NewDiCo(ctx) })
	g := c.ctx.Net.Grid()
	addr := pickBlock(c, g.At(0, 0))
	owner := g.At(1, 1)
	sharer := g.At(2, 2)
	writer := g.At(5, 5)
	c.access(owner, addr, false)
	c.access(sharer, addr, false)
	c.access(writer, addr, true) // invalidates sharer, hints = writer
	d := profileDelta(c, func() { c.access(sharer, addr, false) })
	if d.Count[MissPredOwner] != 1 {
		t.Fatalf("re-read after invalidation not predicted to the new owner: %+v", d.Count)
	}
	want := 2 * g.Hops(sharer, writer)
	if got := int(d.Links[MissPredOwner]); got != want {
		t.Errorf("predicted miss took %d links, want %d (straight to the writer)", got, want)
	}
}

// TestProvidersNoProvider: evicting a provider with no sharers in its
// area must clear the owner's ProPo for that area (Table II).
func TestProvidersNoProvider(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1Sets, cfg.L1Ways = 1, 2
	c := newTestChipSized(t, func(ctx *Context) Engine { return NewProviders(ctx) }, 64, 4, cfg)
	g := c.ctx.Net.Grid()
	home := g.At(0, 0)
	addr := pickBlock(c, home)
	owner := g.At(1, 1)    // area 0
	provider := g.At(6, 6) // area 3, alone in its area
	c.access(owner, addr, false)
	c.access(provider, addr, false)
	eng := c.eng.(*Providers)
	area := c.ctx.Areas.Of(provider)
	if ol := eng.tiles[owner].l1.Peek(addr); ol == nil || ol.ProPos[area] < 0 {
		t.Fatal("setup: owner has no ProPo for the provider's area")
	}
	// Evict the provider by conflict.
	c.access(provider, addr+64, false)
	c.access(provider, addr+128, false)
	c.drain()
	ol := eng.tiles[owner].l1.Peek(addr)
	if ol == nil || !pvIsOwner(ol.State) {
		t.Skip("owner line evicted by the same pressure")
	}
	if ol.ProPos[area] >= 0 {
		t.Errorf("owner ProPos[%d] = %d after No_Provider, want -1", area, ol.ProPos[area])
	}
}

// TestArinForwarderFixup: Section IV-B — when a stale provider
// forwards a request to the home, the home replaces the stale ProPo
// with the requestor.
func TestArinForwarderFixup(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1Sets, cfg.L1Ways = 1, 2
	c := newTestChipSized(t, func(ctx *Context) Engine { return NewArin(ctx) }, 64, 4, cfg)
	g := c.ctx.Net.Grid()
	home := g.At(4, 0)
	addr := pickBlock(c, home)
	owner := g.At(1, 1)             // area 0
	provider := g.At(6, 6)          // area 3
	reader := g.At(7, 7)            // area 3
	c.access(owner, addr, false)    // L1 owner
	c.access(provider, addr, false) // dissolves: inter-area, provider registered
	eng := c.eng.(*Arin)
	area := c.ctx.Areas.Of(provider)
	l2 := eng.tiles[home].l2.Peek(addr)
	if l2 == nil || l2.State != l2ArinInter || l2.ProPos[area] != int8(c.ctx.Areas.IndexInArea(provider)) {
		t.Fatalf("setup: home entry %+v", l2)
	}
	// Evict the provider silently (Arin providers leave silently) and
	// give the reader a prediction pointing at the dead provider.
	c.access(provider, addr+64, false)
	c.access(provider, addr+128, false)
	c.drain()
	eng.tiles[reader].l1c.Update(addr, int16(provider))
	c.access(reader, addr, false) // pred fails, forwards to home with forwarder id
	l2 = eng.tiles[home].l2.Peek(addr)
	if l2 == nil {
		t.Fatal("home entry vanished")
	}
	if l2.ProPos[area] != int8(c.ctx.Areas.IndexInArea(reader)) {
		t.Errorf("home ProPos[%d] = %d, want the requestor (fixup)", area, l2.ProPos[area])
	}
}

// TestArinL2InterEvictionBroadcast: evicting an inter-area block from
// the home L2 must broadcast (invalidate + unblock) and leave no copy.
func TestArinL2InterEvictionBroadcast(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2Sets, cfg.L2Ways = 1, 1 // one-line L2 banks: eviction on demand
	c := newTestChipSized(t, func(ctx *Context) Engine { return NewArin(ctx) }, 64, 4, cfg)
	g := c.ctx.Net.Grid()
	home := g.At(4, 0)
	addr := pickBlock(c, home)
	ownerA := g.At(1, 1)
	readerB := g.At(6, 6)
	c.access(ownerA, addr, false)
	c.access(readerB, addr, false) // inter-area: lives in home L2
	eng := c.eng.(*Arin)
	if l2 := eng.tiles[home].l2.Peek(addr); l2 == nil || l2.State != l2ArinInter {
		t.Fatal("setup: block not inter-area at home")
	}
	before := c.ctx.Net.Stats().Broadcasts
	// A second inter-area block at the same home evicts the first.
	addr2 := addr + 64*64 // same bank (addr mod 64), same single set
	c.access(g.At(2, 2), addr2, false)
	c.access(g.At(7, 7), addr2, false) // dissolve #2 -> insert at home -> evict #1
	c.drain()
	if got := c.ctx.Net.Stats().Broadcasts - before; got < 2 {
		t.Errorf("inter eviction used %d broadcasts, want >= 2", got)
	}
	for i := range eng.tiles {
		if l := eng.tiles[i].l1.Peek(addr); l != nil && eng.tiles[home].l2.Peek(addr) == nil {
			t.Errorf("tile %d still holds the evicted inter block", i)
		}
	}
}

// TestDirectoryDirEntryEviction: NCID — evicting a directory entry
// invalidates every cached copy chip-wide.
func TestDirectoryDirEntryEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2Sets, cfg.L2Ways = 1, 1
	cfg.CCSets, cfg.CCWays = 1, 1 // dir = 1 set x (1+1) ways
	c := newTestChipSized(t, func(ctx *Context) Engine { return NewDirectory(ctx) }, 64, 4, cfg)
	g := c.ctx.Net.Grid()
	home := g.At(3, 3)
	addr := pickBlock(c, home)
	readers := []topo.Tile{g.At(0, 0), g.At(7, 7)}
	for _, r := range readers {
		c.access(r, addr, false)
	}
	// Three more blocks at the same home overflow the 2-entry dir.
	for i := 1; i <= 3; i++ {
		c.access(g.At(2, 2), addr+cache.Addr(64*64*i), false)
	}
	c.drain()
	eng := c.eng.(*Directory)
	if eng.tiles[home].dir.Peek(addr) == nil {
		for _, r := range readers {
			if l := eng.tiles[r].l1.Peek(addr); l != nil {
				t.Errorf("tile %d holds a copy with no directory entry (NCID violated)", r)
			}
		}
	}
}

// TestCrossVMDedupSharing drives two same-area cores and two
// remote-area cores at one dedup-like block across all protocols and
// checks the final holder counts agree with each protocol's design.
func TestCrossVMDedupSharing(t *testing.T) {
	for _, e := range allEngines {
		t.Run(e.name, func(t *testing.T) {
			c := newTestChip(t, e.mk)
			g := c.ctx.Net.Grid()
			addr := pickBlock(c, g.At(0, 4))
			tiles := []topo.Tile{g.At(1, 1), g.At(2, 1), g.At(6, 6), g.At(7, 6)}
			for _, tile := range tiles {
				c.access(tile, addr, false)
			}
			// All four must now hit locally.
			before := c.eng.MissProfile().Hits
			for _, tile := range tiles {
				c.access(tile, addr, false)
			}
			if got := c.eng.MissProfile().Hits - before; got != 4 {
				t.Errorf("%d/4 re-reads hit", got)
			}
		})
	}
}
