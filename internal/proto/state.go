package proto

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/sim"
)

// This file provides the snapshot surface of the protocol engines. An
// engine is captured at the warmup/measure boundary, where the kernel
// has drained: no messages are in flight, no MSHR entries are
// outstanding, and no continuations are stalled, so every transaction
// table must be empty. Anything else is a capture error — by design,
// not leniency: a record that survives a drained kernel is hidden
// transient state that would silently diverge a forked run.

// StampState is one recorded ownership-update stamp of a tile.
type StampState struct {
	Addr  cache.Addr
	Stamp sim.Time
}

// TileSnap is the serializable state of one tile: the storage arrays,
// MSHR counters, and the persistent ownership stamps. Dir is non-nil
// only for the flat directory engine.
type TileSnap struct {
	L1     *cache.CacheState
	L2     *cache.CacheState
	Dir    *cache.CacheState
	L1C    *cache.PointerCacheState
	L2C    *cache.PointerCacheState
	MSHR   cache.MSHRState
	Stamps []StampState
}

// EngineState is the serializable state of a protocol engine.
type EngineState struct {
	Protocol string
	Tiles    []TileSnap
}

// EngineStateOf captures the engine's complete per-tile state. It
// fails if any tile still carries transient coherence state: capture
// is only defined at a quiescent phase boundary.
func EngineStateOf(e Engine) (*EngineState, error) {
	tiles, _ := engineInternals(e)
	if tiles == nil {
		return nil, fmt.Errorf("proto: engine %s does not expose snapshot state", e.Name())
	}
	st := &EngineState{Protocol: e.Name(), Tiles: make([]TileSnap, len(tiles))}
	for i, t := range tiles {
		if t.tx.count != 0 {
			var desc string
			t.tx.forEach(func(r *txRecord) {
				if desc == "" {
					desc = fmt.Sprintf("block %#x flags=%#x l1q=%d homeq=%d",
						r.addr, r.flags, waiterLen(r.l1Head), waiterLen(r.homeHead))
				}
			})
			return nil, fmt.Errorf("proto: tile %d not quiescent: %d live transaction records (first: %s)",
				i, t.tx.count, desc)
		}
		mshr, err := t.mshr.State()
		if err != nil {
			return nil, fmt.Errorf("proto: tile %d: %v", i, err)
		}
		snap := TileSnap{
			L1:   t.l1.State(),
			L2:   t.l2.State(),
			MSHR: mshr,
		}
		if t.dir != nil {
			snap.Dir = t.dir.State()
		}
		if t.l1c != nil {
			snap.L1C = t.l1c.State()
		}
		if t.l2c != nil {
			snap.L2C = t.l2c.State()
		}
		t.stamps.forEach(func(a cache.Addr, s sim.Time) {
			snap.Stamps = append(snap.Stamps, StampState{Addr: a, Stamp: s})
		})
		sort.Slice(snap.Stamps, func(x, y int) bool { return snap.Stamps[x].Addr < snap.Stamps[y].Addr })
		st.Tiles[i] = snap
	}
	return st, nil
}

func waiterLen(w *waiter) int {
	n := 0
	for ; w != nil; w = w.next {
		n++
	}
	return n
}

// RestoreEngineState overwrites a freshly built engine's per-tile
// state with a captured one. The engine must be of the same protocol
// and geometry, and must itself be quiescent.
func RestoreEngineState(e Engine, st *EngineState) error {
	if e.Name() != st.Protocol {
		return fmt.Errorf("proto: snapshot is for %s, engine is %s", st.Protocol, e.Name())
	}
	tiles, _ := engineInternals(e)
	if tiles == nil {
		return fmt.Errorf("proto: engine %s does not expose snapshot state", e.Name())
	}
	if len(st.Tiles) != len(tiles) {
		return fmt.Errorf("proto: snapshot has %d tiles, engine has %d", len(st.Tiles), len(tiles))
	}
	for i, t := range tiles {
		if t.tx.count != 0 {
			return fmt.Errorf("proto: cannot restore into tile %d with %d live transaction records", i, t.tx.count)
		}
		snap := &st.Tiles[i]
		if err := t.l1.RestoreState(snap.L1); err != nil {
			return fmt.Errorf("proto: tile %d: %v", i, err)
		}
		if err := t.l2.RestoreState(snap.L2); err != nil {
			return fmt.Errorf("proto: tile %d: %v", i, err)
		}
		if (snap.Dir != nil) != (t.dir != nil) {
			return fmt.Errorf("proto: tile %d: directory-cache mismatch between snapshot and engine", i)
		}
		if t.dir != nil {
			if err := t.dir.RestoreState(snap.Dir); err != nil {
				return fmt.Errorf("proto: tile %d: %v", i, err)
			}
		}
		if snap.L1C != nil && t.l1c != nil {
			if err := t.l1c.RestoreState(snap.L1C); err != nil {
				return fmt.Errorf("proto: tile %d: %v", i, err)
			}
		}
		if snap.L2C != nil && t.l2c != nil {
			if err := t.l2c.RestoreState(snap.L2C); err != nil {
				return fmt.Errorf("proto: tile %d: %v", i, err)
			}
		}
		if err := t.mshr.RestoreState(snap.MSHR); err != nil {
			return fmt.Errorf("proto: tile %d: %v", i, err)
		}
		t.stamps = newStampTable()
		for _, s := range snap.Stamps {
			t.stamps.set(s.Addr, s.Stamp)
		}
	}
	return nil
}
