package proto

import (
	"repro/internal/cache"
	"repro/internal/sim"
)

// This file implements the pooled per-block transaction table that
// replaces the per-tile hash maps (pendingL1/pendingHome/homeBusy/
// blocked) and the per-engine recalls/ownerStamp maps. One txRecord
// holds every piece of transient per-block state a tile tracks, so a
// miss transaction touches one cache line instead of hashing the
// address into up to six maps, and stalled continuations chain through
// pooled intrusive waiter nodes instead of freshly allocated []func()
// slices. Records and waiters recycle through free lists; steady-state
// operation allocates nothing.

// waiter is one stalled continuation. fn/arg use the kernel's
// non-capturing form so waking a waiter is a zero-allocation
// AfterArg; plain func() continuations are adapted through
// runClosure (a func value boxes into any without allocating).
type waiter struct {
	fn   func(any)
	arg  any
	next *waiter
}

// runClosure adapts a plain func() continuation to the AtArg shape.
func runClosure(a any) { a.(func())() }

// Per-block transient flags.
const (
	txHomeBusy uint8 = 1 << iota // home bank serialized on this block
	txBlocked                    // Arin broadcast invalidation in progress
	txRecall                     // ownership recall in flight (DiCo family)
)

// txRecord is the transient coherence state one tile tracks for one
// block: serialization flags and the FIFO waiter lists of stalled L1
// requests and stalled home requests. Ownership stamps live in the
// separate stampTable: they persist for the whole run, and keeping
// them here used to pin records forever, growing the bucket chains
// that the hot homeBusy/wake probes walk on every message.
type txRecord struct {
	addr  cache.Addr
	next  *txRecord // bucket chain / free-list link
	flags uint8

	l1Head, l1Tail     *waiter
	homeHead, homeTail *waiter
}

// idle reports whether the record carries no state and may be pooled.
// With stamps externalized, every record is transient: the table drains
// to empty whenever the tile has no transaction in flight, so the
// common-case probe of a quiet block hits an empty bucket.
func (r *txRecord) idle() bool {
	return r.flags == 0 && r.l1Head == nil && r.homeHead == nil
}

// txTable is an address-indexed table of txRecords with chained
// buckets, a multiplicative hash, and free lists for records and
// waiters. It grows (rehashes) when the load factor passes 4 so
// lookups stay O(1) even though stamped records persist.
type txTable struct {
	buckets  []*txRecord
	shift    uint // 64 - log2(len(buckets))
	count    int
	freeRec  *txRecord
	freeWait *waiter
}

const txInitialBuckets = 64

func newTxTable() txTable {
	return txTable{
		buckets: make([]*txRecord, txInitialBuckets),
		shift:   64 - log2(txInitialBuckets),
	}
}

func log2(n int) uint {
	var l uint
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// bucketOf hashes with the 64-bit golden ratio and keeps the upper
// bits, which a multiplicative hash mixes best.
func (t *txTable) bucketOf(a cache.Addr) int {
	return int((uint64(a) * 0x9E3779B97F4A7C15) >> t.shift)
}

// get returns the record for a, or nil.
func (t *txTable) get(a cache.Addr) *txRecord {
	for r := t.buckets[t.bucketOf(a)]; r != nil; r = r.next {
		if r.addr == a {
			return r
		}
	}
	return nil
}

// ensure returns the record for a, creating it from the pool if absent.
func (t *txTable) ensure(a cache.Addr) *txRecord {
	b := t.bucketOf(a)
	for r := t.buckets[b]; r != nil; r = r.next {
		if r.addr == a {
			return r
		}
	}
	r := t.freeRec
	if r != nil {
		t.freeRec = r.next
		r.next = nil
	} else {
		r = &txRecord{}
	}
	r.addr = a
	r.next = t.buckets[b]
	t.buckets[b] = r
	t.count++
	if t.count > 4*len(t.buckets) {
		t.grow()
	}
	return r
}

// maybeRelease unlinks and pools r if it no longer carries state.
func (t *txTable) maybeRelease(r *txRecord) {
	if !r.idle() {
		return
	}
	b := t.bucketOf(r.addr)
	for pp := &t.buckets[b]; *pp != nil; pp = &(*pp).next {
		if *pp == r {
			*pp = r.next
			r.next = t.freeRec
			t.freeRec = r
			t.count--
			return
		}
	}
	panic("proto: txRecord not in its bucket")
}

// grow doubles the bucket array and redistributes the chains.
func (t *txTable) grow() {
	old := t.buckets
	t.buckets = make([]*txRecord, 2*len(old))
	t.shift--
	for _, r := range old {
		for r != nil {
			next := r.next
			b := t.bucketOf(r.addr)
			r.next = t.buckets[b]
			t.buckets[b] = r
			r = next
		}
	}
}

// forEach visits every live record (table order; debug dumps only —
// simulation behaviour must never depend on it).
func (t *txTable) forEach(fn func(*txRecord)) {
	for _, r := range t.buckets {
		for ; r != nil; r = r.next {
			fn(r)
		}
	}
}

// getWaiter pops a pooled waiter node.
func (t *txTable) getWaiter(fn func(any), arg any) *waiter {
	w := t.freeWait
	if w != nil {
		t.freeWait = w.next
	} else {
		w = &waiter{}
	}
	w.fn = fn
	w.arg = arg
	w.next = nil
	return w
}

// putWaiter recycles a waiter node. The kernel copies fn/arg at
// scheduling time, so nodes recycle the moment their wake is enqueued.
func (t *txTable) putWaiter(w *waiter) {
	w.fn = nil
	w.arg = nil
	w.next = t.freeWait
	t.freeWait = w
}

// stampEmpty marks an unused stamp-table slot. Block addresses are
// 40-bit physical addresses shifted right by 6, so the all-ones value
// can never collide with a real block.
const stampEmpty = ^cache.Addr(0)

// stampTable records the last ownership-update stamp the home has
// applied per block — the stale-update guard. Entries are written for
// the lifetime of the run and never deleted (exactly like the
// ownerStamp maps it descends from), so the table is open-addressed
// with linear probing over two flat arrays: no per-entry allocation,
// no pointer chasing, and a probe of an absent block costs one load in
// the common case. Grown at 50% load so probe chains stay short.
type stampTable struct {
	addrs  []cache.Addr
	stamps []sim.Time
	count  int
	shift  uint // 64 - log2(len(addrs))
}

const stampInitialSlots = 256

func newStampTable() stampTable {
	t := stampTable{
		addrs:  make([]cache.Addr, stampInitialSlots),
		stamps: make([]sim.Time, stampInitialSlots),
		shift:  64 - log2(stampInitialSlots),
	}
	for i := range t.addrs {
		t.addrs[i] = stampEmpty
	}
	return t
}

func (t *stampTable) slotOf(a cache.Addr) int {
	return int((uint64(a) * 0x9E3779B97F4A7C15) >> t.shift)
}

// get returns the stamp recorded for a, if any.
func (t *stampTable) get(a cache.Addr) (sim.Time, bool) {
	mask := len(t.addrs) - 1
	for i := t.slotOf(a); ; i = (i + 1) & mask {
		switch t.addrs[i] {
		case a:
			return t.stamps[i], true
		case stampEmpty:
			return 0, false
		}
	}
}

// set records the stamp for a, inserting the entry if absent.
func (t *stampTable) set(a cache.Addr, s sim.Time) {
	mask := len(t.addrs) - 1
	i := t.slotOf(a)
	for t.addrs[i] != a && t.addrs[i] != stampEmpty {
		i = (i + 1) & mask
	}
	if t.addrs[i] == stampEmpty {
		t.addrs[i] = a
		t.stamps[i] = s
		t.count++
		if 2*t.count > len(t.addrs) {
			t.grow()
		}
		return
	}
	t.stamps[i] = s
}

// grow doubles the arrays and rehashes every live entry.
func (t *stampTable) grow() {
	oldAddrs, oldStamps := t.addrs, t.stamps
	n := 2 * len(oldAddrs)
	t.addrs = make([]cache.Addr, n)
	t.stamps = make([]sim.Time, n)
	t.shift--
	for i := range t.addrs {
		t.addrs[i] = stampEmpty
	}
	mask := n - 1
	for i, a := range oldAddrs {
		if a == stampEmpty {
			continue
		}
		j := t.slotOf(a)
		for t.addrs[j] != stampEmpty {
			j = (j + 1) & mask
		}
		t.addrs[j] = a
		t.stamps[j] = oldStamps[i]
	}
}

// forEach visits every recorded stamp (slot order; snapshot capture
// sorts, so simulation behaviour must never depend on it).
func (t *stampTable) forEach(fn func(a cache.Addr, s sim.Time)) {
	for i, a := range t.addrs {
		if a != stampEmpty {
			fn(a, t.stamps[i])
		}
	}
}
