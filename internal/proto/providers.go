package proto

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/topo"
)

// L1 states of DiCo-Providers. Owners track their area's sharers (an
// nta-bit vector) plus one provider pointer per remote area; providers
// track their own area's sharers.
const (
	pvShared cache.State = 1 + iota
	pvProvider
	pvOwnerShared
	pvOwnerExclusive
	pvOwnerModified
)

func pvIsOwner(s cache.State) bool {
	return s == pvOwnerShared || s == pvOwnerExclusive || s == pvOwnerModified
}

// Providers implements DiCo-Providers (Section III-A and Tables I/II):
// coherence information is kept per area, every area can have a
// provider able to supply deduplicated data without leaving the area,
// and a single ordering point (the owner) remains so the protocol has
// one level like a flat directory.
type Providers struct {
	ctx   *Context
	tiles []*tileState

	// Long-lived adapters for the kernel/mesh argument fast path:
	// protocol hops travel as (fn, *pvMsg) pairs instead of
	// per-message closures (see dirMsg for the pattern).
	atHomeFn  func(any)
	atL1Fn    func(any)
	invalShFn func(any)
	invalPvFn func(any)
	shAckFn   func(any)
	pvAckFn   func(any)
	deliverFn func(any)
	coFn      func(any)
	coAckFn   func(any)
	memReqFn  func(any)
	memRespFn func(any)
	memFillFn func(any)
	flushFn   func(any)

	// free holds one message pool per tile, indexed by the executing
	// tile (see Directory.free).
	free []*pvMsg

	cen pvCensus
}

// pvCensus holds DiCo-Providers' registered touch sites. After
// messageization every site records on the executing tile's diagonal
// (src == dst): the former cross-tile requestor-MSHR pokes now ride
// the messages, and the recall path reads the displaced pointer
// instead of scanning every tile's L1. All sites are nil when the
// census is disarmed.
type pvCensus struct {
	l1FwdHome, l1Class             *telemetry.TouchSite
	ownerReadClass, ownerReadFwd   *telemetry.TouchSite
	ownerWriteClass, ownerWriteAck *telemetry.TouchSite
	invalAcks                      *telemetry.TouchSite
	homeFwd, homeMemFetch          *telemetry.TouchSite
	homeSupplyFwd, homeSupplyClass *telemetry.TouchSite
	homeSupplyAcks                 *telemetry.TouchSite
	deliver, memResp               *telemetry.TouchSite
	recallScan                     *telemetry.TouchSite
}

// pvMsg is the pooled argument node for DiCo-Providers' non-capturing
// message path (see dirMsg).
type pvMsg struct {
	next     *pvMsg
	r        pvReq
	tile     topo.Tile
	state    cache.State
	dirty    bool
	supplier int16
	stamp    sim.Time
	count    int // sharer acks folded into a provider ack
	propos   [cache.MaxSimAreas]int8
	hasPro   bool // propos is meaningful (deliver's *propos != nil)
}

// msg takes a node from the executing lane's pool; at must be the
// tile whose lane is running the caller.
func (p *Providers) msg(at topo.Tile, r pvReq) *pvMsg {
	lane := p.ctx.Lane(at)
	m := p.free[lane]
	if m != nil {
		p.free[lane] = m.next
	} else {
		m = &pvMsg{}
	}
	m.r = r
	return m
}

// putMsg recycles a node into the executing lane's pool.
func (p *Providers) putMsg(at topo.Tile, m *pvMsg) {
	lane := p.ctx.Lane(at)
	m.next = p.free[lane]
	p.free[lane] = m
}

// bindHandlers builds the long-lived adapter funcs once.
func (p *Providers) bindHandlers() {
	p.atHomeFn = func(a any) {
		m := a.(*pvMsg)
		r := m.r
		p.putMsg(p.ctx.HomeOf(r.addr), m)
		p.atHome(r)
	}
	p.atL1Fn = func(a any) {
		m := a.(*pvMsg)
		r, tile := m.r, m.tile
		p.putMsg(tile, m)
		p.atL1(r, tile)
	}
	p.invalShFn = func(a any) {
		m := a.(*pvMsg)
		tile, addr, requestor := m.tile, m.r.addr, m.r.requestor
		p.putMsg(tile, m)
		ctx := p.ctx.At(tile)
		ctx.chargeVM(requestor)
		p.invalidateSharer(ctx, tile, addr, requestor)
	}
	p.invalPvFn = func(a any) {
		m := a.(*pvMsg)
		tile, addr, requestor := m.tile, m.r.addr, m.r.requestor
		p.putMsg(tile, m)
		ctx := p.ctx.At(tile)
		ctx.chargeVM(requestor)
		p.invalidateProvider(ctx, tile, addr, requestor)
	}
	p.shAckFn = func(a any) {
		m := a.(*pvMsg)
		requestor, addr := m.tile, m.r.addr
		p.putMsg(requestor, m)
		ctx := p.ctx.At(requestor)
		ctx.chargeVM(requestor)
		if e, ok := p.tiles[requestor].mshr.Lookup(addr); ok {
			e.SharerAcks--
			p.maybeComplete(ctx, requestor, addr)
		}
	}
	p.pvAckFn = func(a any) {
		m := a.(*pvMsg)
		requestor, addr, count := m.tile, m.r.addr, m.count
		p.putMsg(requestor, m)
		ctx := p.ctx.At(requestor)
		ctx.chargeVM(requestor)
		if e, ok := p.tiles[requestor].mshr.Lookup(addr); ok {
			e.ProviderAcks--
			e.SharerAcks += count
			p.maybeComplete(ctx, requestor, addr)
		}
	}
	p.deliverFn = func(a any) {
		m := a.(*pvMsg)
		r := m.r
		ctx := p.ctx.At(r.requestor)
		ctx.chargeVM(r.requestor)
		p.cen.deliver.Touch(int(r.requestor), int(r.requestor))
		var propos *[cache.MaxSimAreas]int8
		if m.hasPro {
			propos = &m.propos
		}
		// fillL1 may draw fresh nodes from the pool (self-sharer
		// invalidations), so m is recycled only after it returns.
		p.fillL1(ctx, r, m.state, m.dirty, m.supplier, propos)
		p.putMsg(r.requestor, m)
		if e, ok := p.tiles[r.requestor].mshr.Lookup(r.addr); ok {
			e.DataReceived = true
			e.Links += int(r.links)
			e.SharerAcks += int(r.acks)
			e.ProviderAcks += int(r.provAcks)
			e.HomeAck += int(r.homeAck)
			if r.clsPlus1 != 0 {
				e.Tag = int(r.clsPlus1 - 1)
			}
		}
		p.maybeComplete(ctx, r.requestor, r.addr)
	}
	// coFn lands a Change_Owner at the home; the node travels on to
	// carry the gating ack back to the new owner.
	p.coFn = func(a any) {
		m := a.(*pvMsg)
		addr, newOwner, stamp := m.r.addr, m.tile, m.stamp
		home := p.ctx.HomeOf(addr)
		ctx := p.ctx.At(home)
		ctx.chargeVM(newOwner)
		p.homeOwnerUpdate(ctx, home, addr, newOwner, stamp)
		ctx.SendCtlArg(home, newOwner, p.coAckFn, m)
	}
	p.coAckFn = func(a any) {
		m := a.(*pvMsg)
		requestor, addr := m.tile, m.r.addr
		p.putMsg(requestor, m)
		ctx := p.ctx.At(requestor)
		ctx.chargeVM(requestor)
		if e, ok := p.tiles[requestor].mshr.Lookup(addr); ok {
			e.HomeAck--
			p.maybeComplete(ctx, requestor, addr)
		}
	}
	// Memory fetch pipeline.
	p.memReqFn = func(a any) {
		m := a.(*pvMsg)
		ctx := p.ctx.At(p.ctx.Mem.For(m.r.addr))
		ctx.MemFetch(p.memRespFn, m)
	}
	p.memRespFn = func(a any) {
		m := a.(*pvMsg)
		mc := p.ctx.Mem.For(m.r.addr)
		ctx := p.ctx.At(mc)
		ctx.chargeVM(m.r.requestor)
		home := ctx.HomeOf(m.r.addr)
		p.cen.memResp.Touch(int(mc), int(mc))
		d2 := ctx.SendDataArg(mc, home, p.memFillFn, m)
		m.r.links += int16(d2.Hops)
	}
	p.memFillFn = func(a any) {
		m := a.(*pvMsg)
		r := m.r
		home := p.ctx.HomeOf(r.addr)
		p.putMsg(home, m)
		ctx := p.ctx.At(home)
		ctx.chargeVM(r.requestor)
		state, dirty := pvOwnerExclusive, false
		if r.write {
			state, dirty = pvOwnerModified, true
		}
		p.deliver(ctx, r, home, state, dirty, -1, nil)
	}
	// flushFn runs at the memory controller tile boxed in the argument.
	p.flushFn = func(a any) { p.ctx.At(a.(topo.Tile)).MemFlush() }
}

// NewProviders builds the DiCo-Providers engine on ctx.
func NewProviders(ctx *Context) *Providers {
	ctx.bindPower()
	if ctx.Areas.Count > cache.MaxSimAreas {
		panic(fmt.Sprintf("providers: %d areas exceed the simulator's limit of %d",
			ctx.Areas.Count, cache.MaxSimAreas))
	}
	n := ctx.NumTiles()
	p := &Providers{
		ctx:   ctx,
		tiles: make([]*tileState, n),
		free:  make([]*pvMsg, n),
	}
	p.bindHandlers()
	p.cen = pvCensus{
		l1FwdHome:       ctx.CensusSite("providers", "atL1.fwd-home", "mshr"),
		l1Class:         ctx.CensusSite("providers", "atL1.set-class", "mshr"),
		ownerReadClass:  ctx.CensusSite("providers", "ownerReadSupply.set-class", "mshr"),
		ownerReadFwd:    ctx.CensusSite("providers", "ownerReadSupply.fwd-provider", "mshr"),
		ownerWriteClass: ctx.CensusSite("providers", "ownerWriteSupply.set-class", "mshr"),
		ownerWriteAck:   ctx.CensusSite("providers", "ownerWriteSupply.home-ack", "mshr"),
		invalAcks:       ctx.CensusSite("providers", "startInvalidation.acks", "mshr"),
		homeFwd:         ctx.CensusSite("providers", "atHome.fwd-owner", "mshr"),
		homeMemFetch:    ctx.CensusSite("providers", "atHome.mem-fetch", "mshr"),
		homeSupplyFwd:   ctx.CensusSite("providers", "homeOwnerSupply.fwd-provider", "mshr"),
		homeSupplyClass: ctx.CensusSite("providers", "homeOwnerSupply.set-class", "mshr"),
		homeSupplyAcks:  ctx.CensusSite("providers", "homeOwnerSupply.acks", "mshr"),
		deliver:         ctx.CensusSite("providers", "deliver", "mshr"),
		memResp:         ctx.CensusSite("providers", "memResp", "mshr"),
		recallScan:      ctx.CensusSite("providers", "recallOwnership.owner-scan", "l1"),
	}
	for i := range p.tiles {
		p.tiles[i] = newTileState(ctx.Cfg, ctx.BankShift())
	}
	return p
}

// Name implements Engine.
func (p *Providers) Name() string { return "providers" }

// Stats implements Engine.
func (p *Providers) Stats() *stats.Set { return &p.ctx.Counters }

// MissProfile implements Engine.
func (p *Providers) MissProfile() MissProfile { return p.ctx.Profile }

func (p *Providers) areaOf(t topo.Tile) int   { return p.ctx.Areas.Of(t) }
func (p *Providers) areaIdx(t topo.Tile) int8 { return int8(p.ctx.Areas.IndexInArea(t)) }
func (p *Providers) tileAt(area int, idx int8) topo.Tile {
	return p.ctx.Areas.TilesIn(area)[idx]
}

// supplierKind classifies who supplied the data, for Figure 9b.
type supplierKind int

const (
	byOwner supplierKind = iota
	byProvider
	byHome
)

// classify returns the Figure 9b category of a miss at supply time;
// the supplier rides it to the requestor on the data message.
func classify(predicted bool, forwards int, kind supplierKind) MissClass {
	switch {
	case predicted && forwards == 0 && kind == byOwner:
		return MissPredOwner
	case predicted && forwards == 0 && kind == byProvider:
		return MissPredProvider
	case predicted:
		return MissPredFail
	case kind == byOwner:
		return MissUnpredOwner
	case kind == byProvider:
		return MissUnpredProvider
	default:
		return MissUnpredHome
	}
}

type pvReq struct {
	addr      cache.Addr
	requestor topo.Tile
	write     bool
	predicted bool
	forwards  int
	// fromOwner records the supplier that forwarded this request to a
	// provider, so a stale provider pointer can be repaired when the
	// target turns out not to be a provider (-1 otherwise).
	fromOwner topo.Tile
	// Ride-the-message fields (see dirReq): requestor-MSHR updates
	// accumulated along the miss and applied at delivery.
	links    int16 // mesh links traversed by the request legs
	acks     int16 // sharer acks the write must collect
	provAcks int16 // provider acks the write must collect
	homeAck  int8  // pending Change_Owner acks the write must collect
	clsPlus1 int8  // resolved MissClass + 1 (0 = not resolved yet)
}

// Access implements Engine.
func (p *Providers) Access(tile topo.Tile, addr cache.Addr, write bool, onDone func()) {
	ctx := p.ctx.At(tile)
	ctx.chargeVM(tile)
	t := p.tiles[tile]
	if _, pending := t.mshr.Lookup(addr); pending {
		t.stallL1(addr, func() { p.Access(tile, addr, write, onDone) })
		return
	}
	ctx.pw.L1TagRead.Inc()
	if line := t.l1.Lookup(addr); line != nil {
		if !write {
			ctx.pw.L1DataRead.Inc()
			ctx.Profile.Hits++
			ctx.observeRetired(tile, addr, false, true, false)
			ctx.Kernel.After(ctx.Cfg.L1HitLatency, onDone)
			return
		}
		switch line.State {
		case pvOwnerModified, pvOwnerExclusive:
			line.State = pvOwnerModified
			line.Dirty = true
			ctx.pw.L1DataWrite.Inc()
			ctx.Profile.Hits++
			ctx.observeRetired(tile, addr, true, true, false)
			ctx.Kernel.After(ctx.Cfg.L1HitLatency, onDone)
			return
		case pvOwnerShared:
			p.ownerWriteHit(tile, addr, line, onDone)
			return
		}
		// Shared or provider copy under a write: miss path. (A
		// provider-requestor invalidates its own sharers once it
		// receives the ownership — Section IV-A's special case,
		// handled at fill time.)
	}
	e := t.mshr.Allocate(addr, write, uint64(ctx.Kernel.Now()))
	e.OnComplete = onDone
	ctx.spanBegin(tile, addr, write)
	r := pvReq{addr: addr, requestor: tile, write: write, fromOwner: -1}
	ctx.pw.L1CAccess.Inc()
	if ptr, ok := t.l1c.Lookup(addr); ok && topo.Tile(ptr) != tile && !ctx.Cfg.NoPrediction {
		r.predicted = true
		e.Tag = int(MissPredFail) // upgraded at supply time
		ctx.spanEvent("predict-supplier", tile)
		pred := topo.Tile(ptr)
		m := p.msg(tile, r)
		m.tile = pred
		del := ctx.SendCtlArg(tile, pred, p.atL1Fn, m)
		e.Links += del.Hops
		return
	}
	e.Tag = int(MissUnpredHome)
	home := ctx.HomeOf(addr)
	del := ctx.SendCtlArg(tile, home, p.atHomeFn, p.msg(tile, r))
	e.Links += del.Hops
}

// ownerWriteHit: the owner writes while holding sharers/providers —
// invalidate them all from here.
func (p *Providers) ownerWriteHit(tile topo.Tile, addr cache.Addr, line *cache.Line, onDone func()) {
	ctx := p.ctx.At(tile)
	t := p.tiles[tile]
	localSharers := line.Sharers &^ areaBit(ctx.Areas, tile)
	nProviders := 0
	for a := 0; a < ctx.Areas.Count; a++ {
		if a != p.areaOf(tile) && line.ProPos[a] >= 0 {
			nProviders++
		}
	}
	if localSharers == 0 && nProviders == 0 {
		line.State = pvOwnerModified
		line.Dirty = true
		ctx.pw.L1DataWrite.Inc()
		ctx.Profile.Hits++
		ctx.observeRetired(tile, addr, true, true, false)
		ctx.Kernel.After(ctx.Cfg.L1HitLatency, onDone)
		return
	}
	e := t.mshr.Allocate(addr, true, uint64(ctx.Kernel.Now()))
	e.OnComplete = onDone
	e.Tag = int(MissPredOwner)
	ctx.spanBegin(tile, addr, true)
	ctx.spanEvent("owner-write-inv", tile)
	e.DataReceived = true
	shAcks, provAcks := p.startInvalidation(ctx, tile, addr, line, tile, localSharers)
	e.SharerAcks += shAcks
	e.ProviderAcks += provAcks
	line.State = pvOwnerModified
	line.Dirty = true
	line.Sharers = 0
	for a := range line.ProPos {
		line.ProPos[a] = -1
	}
	ctx.pw.L1DataWrite.Inc()
	ctx.pw.L1TagWrite.Inc()
}

// startInvalidation sends invalidations for an owner's local sharers
// and provider-invalidations for every provider, returning how many
// sharer and provider acknowledgements will flow to the requestor
// (two-counter scheme of Section IV-A). The caller applies the counts
// locally (ownerWriteHit) or rides them to the requestor with the
// data (ownerWriteSupply).
func (p *Providers) startInvalidation(ctx *Context, owner topo.Tile, addr cache.Addr, line *cache.Line,
	requestor topo.Tile, localSharers uint64) (shAcks, provAcks int) {
	p.cen.invalAcks.Touch(int(owner), int(owner))
	ownArea := p.areaOf(owner)
	// Local sharers (excluding the requestor if it is one of them).
	if p.areaOf(requestor) == ownArea {
		localSharers &^= areaBit(ctx.Areas, requestor)
	}
	shAcks = popcount(localSharers)
	for v := localSharers; v != 0; v &= v - 1 {
		sharer := p.tileAt(ownArea, int8(bits.TrailingZeros64(v)))
		m := p.msg(owner, pvReq{addr: addr, requestor: requestor})
		m.tile = sharer
		ctx.SendCtlArg(owner, sharer, p.invalShFn, m)
	}
	// Providers in remote areas.
	for a := 0; a < ctx.Areas.Count; a++ {
		if a == ownArea || line.ProPos[a] < 0 {
			continue
		}
		prov := p.tileAt(a, line.ProPos[a])
		if prov == requestor {
			// The requestor is itself a provider; it invalidates its
			// own sharers when the ownership arrives (fill time).
			continue
		}
		provAcks++
		m := p.msg(owner, pvReq{addr: addr, requestor: requestor})
		m.tile = prov
		ctx.SendCtlArg(owner, prov, p.invalPvFn, m)
	}
	return shAcks, provAcks
}

// invalidateSharer drops a plain sharer's copy and acks the requestor.
func (p *Providers) invalidateSharer(ctx *Context, tile topo.Tile, addr cache.Addr, requestor topo.Tile) {
	t := p.tiles[tile]
	ctx.pw.L1TagRead.Inc()
	if _, ok := t.l1.Invalidate(addr); ok {
		ctx.pw.L1TagWrite.Inc()
	}
	if e, ok := t.mshr.Lookup(addr); ok {
		e.InvalidatedWhilePending = true
	}
	t.l1c.Update(addr, int16(requestor))
	ctx.pw.L1CUpdate.Inc()
	m := p.msg(tile, pvReq{addr: addr})
	m.tile = requestor
	ctx.SendCtlArg(tile, requestor, p.shAckFn, m)
}

// invalidateProvider drops a provider and its area's sharers; the
// provider acks the requestor with its sharer count (incrementing the
// requestor's sharer-ack counter) and the sharers ack directly.
func (p *Providers) invalidateProvider(ctx *Context, tile topo.Tile, addr cache.Addr, requestor topo.Tile) {
	t := p.tiles[tile]
	ctx.pw.L1TagRead.Inc()
	area := p.areaOf(tile)
	var sharers uint64
	wasProvider := false
	if old, ok := t.l1.Invalidate(addr); ok {
		ctx.pw.L1TagWrite.Inc()
		if old.State == pvProvider {
			sharers = old.Sharers &^ areaBit(ctx.Areas, tile)
			wasProvider = true
		}
	}
	if !wasProvider {
		// Providership moved while the invalidation was in flight:
		// conservatively sweep the whole area so no sharer survives.
		for _, at := range ctx.Areas.TilesIn(area) {
			if at != tile {
				sharers |= areaBit(ctx.Areas, at)
			}
		}
	}
	if e, ok := t.mshr.Lookup(addr); ok {
		e.InvalidatedWhilePending = true
	}
	if p.areaOf(requestor) == area {
		sharers &^= areaBit(ctx.Areas, requestor)
	}
	count := popcount(sharers)
	for v := sharers; v != 0; v &= v - 1 {
		sharer := p.tileAt(area, int8(bits.TrailingZeros64(v)))
		m := p.msg(tile, pvReq{addr: addr, requestor: requestor})
		m.tile = sharer
		ctx.SendCtlArg(tile, sharer, p.invalShFn, m)
	}
	t.l1c.Update(addr, int16(requestor))
	ctx.pw.L1CUpdate.Inc()
	m := p.msg(tile, pvReq{addr: addr})
	m.tile = requestor
	m.count = count
	ctx.SendCtlArg(tile, requestor, p.pvAckFn, m)
}

// atL1 dispatches a request arriving at an L1 cache per Table I.
func (p *Providers) atL1(r pvReq, tile topo.Tile) {
	ctx := p.ctx.At(tile)
	ctx.chargeVM(r.requestor)
	t := p.tiles[tile]
	if _, pending := t.mshr.Lookup(r.addr); pending {
		// Pooled-arg stall: a closure here would capture r and force it
		// to the heap on every atL1 call, not just the stalled ones.
		m := p.msg(tile, r)
		m.tile = tile
		t.stallL1Arg(r.addr, p.atL1Fn, m)
		return
	}
	ctx.pw.L1TagRead.Inc()
	line := t.l1.Lookup(r.addr)
	switch {
	case line != nil && pvIsOwner(line.State):
		if r.write {
			p.ownerWriteSupply(ctx, r, tile, line)
			return
		}
		p.ownerReadSupply(ctx, r, tile, line)
	case line != nil && line.State == pvProvider && !r.write:
		if p.areaOf(r.requestor) == p.areaOf(tile) {
			// Provider supplies inside the area: the shortened miss.
			p.cen.l1Class.Touch(int(tile), int(tile))
			r.clsPlus1 = int8(classify(r.predicted, r.forwards, byProvider)) + 1
			line.Sharers |= areaBit(ctx.Areas, r.requestor)
			ctx.pw.L1TagWrite.Inc()
			ctx.pw.L1DataRead.Inc()
			p.deliver(ctx, r, tile, pvShared, false, int16(tile), nil)
			return
		}
		fallthrough
	default:
		// Not a supplier for this request: forward to the home. If an
		// owner sent us this request believing we were a provider, its
		// pointer is stale — repair it, or reads from this area would
		// loop owner -> stale provider -> home -> owner forever.
		if r.fromOwner >= 0 {
			p.repairStaleProPo(ctx, tile, r.addr, r.fromOwner)
		}
		r.fromOwner = -1
		r.forwards++
		home := ctx.HomeOf(r.addr)
		m := p.msg(tile, r)
		del := ctx.SendCtlArg(tile, home, p.atHomeFn, m)
		p.cen.l1FwdHome.Touch(int(tile), int(tile))
		m.r.links += int16(del.Hops)
	}
}

// ownerReadSupply implements the owner rows of Table I for reads.
func (p *Providers) ownerReadSupply(ctx *Context, r pvReq, owner topo.Tile, line *cache.Line) {
	reqArea := p.areaOf(r.requestor)
	if reqArea == p.areaOf(owner) {
		// Local request: requestor becomes a sharer.
		p.cen.ownerReadClass.Touch(int(owner), int(owner))
		r.clsPlus1 = int8(classify(r.predicted, r.forwards, byOwner)) + 1
		line.Sharers |= areaBit(ctx.Areas, r.requestor)
		if line.State != pvOwnerShared {
			line.State = pvOwnerShared
		}
		ctx.pw.L1TagWrite.Inc()
		ctx.pw.L1DataRead.Inc()
		p.deliver(ctx, r, owner, pvShared, false, int16(owner), nil)
		return
	}
	if line.ProPos[reqArea] >= 0 {
		// A provider exists in the requestor's area: forward.
		prov := p.tileAt(reqArea, line.ProPos[reqArea])
		r.forwards++
		r.fromOwner = owner
		m := p.msg(owner, r)
		m.tile = prov
		del := ctx.SendCtlArg(owner, prov, p.atL1Fn, m)
		p.cen.ownerReadFwd.Touch(int(owner), int(owner))
		m.r.links += int16(del.Hops)
		return
	}
	// No provider there: the requestor becomes its area's provider.
	p.cen.ownerReadClass.Touch(int(owner), int(owner))
	r.clsPlus1 = int8(classify(r.predicted, r.forwards, byOwner)) + 1
	line.ProPos[reqArea] = p.areaIdx(r.requestor)
	if line.State != pvOwnerShared {
		line.State = pvOwnerShared
	}
	ctx.pw.L1TagWrite.Inc()
	ctx.pw.L1DataRead.Inc()
	p.deliver(ctx, r, owner, pvProvider, false, int16(owner), nil)
}

// ownerWriteSupply transfers ownership to the writer per Table I.
func (p *Providers) ownerWriteSupply(ctx *Context, r pvReq, owner topo.Tile, line *cache.Line) {
	p.cen.ownerWriteClass.Touch(int(owner), int(owner))
	r.clsPlus1 = int8(classify(r.predicted, r.forwards, byOwner)) + 1
	// The ack expectations ride to the requestor with the data; an ack
	// arriving first drives its MSHR counter transiently negative,
	// which Done() tolerates.
	p.cen.ownerWriteAck.Touch(int(owner), int(owner))
	r.homeAck++
	localSharers := line.Sharers &^ areaBit(ctx.Areas, owner)
	shAcks, provAcks := p.startInvalidation(ctx, owner, r.addr, line, r.requestor, localSharers)
	r.acks += int16(shAcks)
	r.provAcks += int16(provAcks)
	ctx.pw.L1DataRead.Inc()
	ctx.pw.L1TagWrite.Inc()
	p.tiles[owner].l1.Invalidate(r.addr)
	p.tiles[owner].l1c.Update(r.addr, int16(r.requestor))
	ctx.pw.L1CUpdate.Inc()
	p.deliver(ctx, r, owner, pvOwnerModified, true, -1, nil)
	home := ctx.HomeOf(r.addr)
	m := p.msg(owner, pvReq{addr: r.addr})
	m.tile = r.requestor
	m.stamp = ctx.Kernel.Now()
	ctx.SendCtlArg(owner, home, p.coFn, m) // Change_Owner
}

// repairStaleProPo tells the node that forwarded a request (believing
// the receiver was a provider) to drop its stale pointer.
func (p *Providers) repairStaleProPo(ctx *Context, notProvider topo.Tile, addr cache.Addr, supplier topo.Tile) {
	area := p.areaOf(notProvider)
	idx := p.areaIdx(notProvider)
	ctx.SendCtl(notProvider, supplier, func() {
		sctx := p.ctx.At(supplier)
		st := p.tiles[supplier]
		if ol := st.l1.Peek(addr); ol != nil && pvIsOwner(ol.State) && ol.ProPos[area] == idx {
			ol.ProPos[area] = -1
			sctx.pw.L1TagWrite.Inc()
			return
		}
		if l2line := st.l2.Peek(addr); l2line != nil && l2line.ProPos[area] == idx {
			l2line.ProPos[area] = -1
			sctx.pw.L2TagWrite.Inc()
		}
	})
}

// atHome dispatches at the home bank per the L2 rows of Table I.
func (p *Providers) atHome(r pvReq) {
	home := p.ctx.HomeOf(r.addr)
	ctx := p.ctx.At(home)
	ctx.chargeVM(r.requestor)
	th := p.tiles[home]
	if th.homeBusy(r.addr) || th.recallMarked(r.addr) {
		th.stallHomeArg(r.addr, p.atHomeFn, p.msg(home, r))
		return
	}
	ctx.pw.L2TagRead.Inc()
	ctx.pw.L2CAccess.Inc()
	if ptr, ok := th.l2c.Lookup(r.addr); ok && th.l2.Peek(r.addr) == nil {
		ownerTile := topo.Tile(ptr)
		if ownerTile == r.requestor || r.forwards >= maxForwards {
			ctx.spanRetry(r.requestor)
			// The retry keeps the accumulated rides: those hops and ack
			// expectations really happened.
			nr := r
			nr.forwards = 0
			nr.fromOwner = -1
			ctx.Kernel.AfterArg(retryBackoff, p.atHomeFn, p.msg(home, nr))
			return
		}
		r.forwards++
		ctx.spanEvent("home-forward-owner", home)
		m := p.msg(home, r)
		m.tile = ownerTile
		del := ctx.SendCtlArg(home, ownerTile, p.atL1Fn, m)
		p.cen.homeFwd.Touch(int(home), int(home))
		m.r.links += int16(del.Hops)
		return
	}
	if l2line := th.l2.Lookup(r.addr); l2line != nil {
		// A stale Change_Owner may have re-installed an L2C$ pointer
		// after the ownership returned home; the L2 line wins.
		if th.l2c.Invalidate(r.addr) {
			ctx.pw.L2CUpdate.Inc()
		}
		p.homeOwnerSupply(ctx, r, home, l2line)
		return
	}
	// Not on chip: fetch memory; requestor becomes owner (exclusive
	// for reads, modified for writes). The pooled node rides the whole
	// request -> latency -> data pipeline (memReqFn/memRespFn/memFillFn).
	p.updateL2C(ctx, home, r.addr, r.requestor)
	mc := ctx.Mem.For(r.addr)
	m := p.msg(home, r)
	del := ctx.SendCtlArg(home, mc, p.memReqFn, m)
	p.cen.homeMemFetch.Touch(int(home), int(home))
	m.r.links += int16(del.Hops)
}

// homeOwnerSupply handles requests when the home L2 holds ownership.
func (p *Providers) homeOwnerSupply(ctx *Context, r pvReq, home topo.Tile, l2line *cache.Line) {
	th := p.tiles[home]
	reqArea := p.areaOf(r.requestor)
	if !r.write {
		if l2line.ProPos[reqArea] >= 0 {
			prov := p.tileAt(reqArea, l2line.ProPos[reqArea])
			if r.forwards >= maxForwards {
				ctx.spanRetry(r.requestor)
				nr := r
				nr.forwards = 0
				nr.fromOwner = -1
				ctx.Kernel.AfterArg(retryBackoff, p.atHomeFn, p.msg(home, nr))
				return
			}
			r.forwards++
			r.fromOwner = home
			ctx.spanEvent("home-forward-provider", home)
			m := p.msg(home, r)
			m.tile = prov
			del := ctx.SendCtlArg(home, prov, p.atL1Fn, m)
			p.cen.homeSupplyFwd.Touch(int(home), int(home))
			m.r.links += int16(del.Hops)
			return
		}
		// No supplier in the requestor's area: ownership moves to the
		// requestor (event (3) of Section III-A).
		p.cen.homeSupplyClass.Touch(int(home), int(home))
		r.clsPlus1 = int8(classify(r.predicted, r.forwards, byHome)) + 1
		var propos [cache.MaxSimAreas]int8
		copy(propos[:], l2line.ProPos[:])
		dirty := l2line.Dirty
		ctx.pw.L2DataRead.Inc()
		th.l2.Invalidate(r.addr)
		ctx.pw.L2TagWrite.Inc()
		p.updateL2C(ctx, home, r.addr, r.requestor)
		p.deliver(ctx, r, home, pvOwnerShared, dirty, -1, &propos)
		return
	}
	// Write with the L2 as owner: invalidate through the providers,
	// hand ownership to the writer. The provider-ack expectations ride
	// to the requestor on the data message.
	p.cen.homeSupplyClass.Touch(int(home), int(home))
	r.clsPlus1 = int8(classify(r.predicted, r.forwards, byHome)) + 1
	p.cen.homeSupplyAcks.Touch(int(home), int(home))
	for a := 0; a < ctx.Areas.Count; a++ {
		if l2line.ProPos[a] < 0 {
			continue
		}
		prov := p.tileAt(a, l2line.ProPos[a])
		if prov == r.requestor {
			continue // self-provider handled at fill time
		}
		r.provAcks++
		m := p.msg(home, pvReq{addr: r.addr, requestor: r.requestor})
		m.tile = prov
		ctx.SendCtlArg(home, prov, p.invalPvFn, m)
	}
	ctx.pw.L2DataRead.Inc()
	th.l2.Invalidate(r.addr)
	ctx.pw.L2TagWrite.Inc()
	p.updateL2C(ctx, home, r.addr, r.requestor)
	p.deliver(ctx, r, home, pvOwnerModified, true, -1, nil)
}

// deliver sends the data and installs it at the requestor; the census
// touch happens on the requestor's lane in deliverFn.
func (p *Providers) deliver(ctx *Context, r pvReq, from topo.Tile, state cache.State, dirty bool,
	supplier int16, propos *[cache.MaxSimAreas]int8) {
	m := p.msg(from, r)
	m.state, m.dirty, m.supplier = state, dirty, supplier
	if propos != nil {
		m.propos = *propos
		m.hasPro = true
	} else {
		m.hasPro = false
	}
	del := ctx.SendDataArg(from, r.requestor, p.deliverFn, m)
	m.r.links += int16(del.Hops)
}

// fillL1 installs the block. A provider-requestor that just received
// ownership invalidates its own area's sharers now (Section IV-A's
// special case).
func (p *Providers) fillL1(ctx *Context, r pvReq, state cache.State, dirty bool,
	supplier int16, propos *[cache.MaxSimAreas]int8) {
	t := p.tiles[r.requestor]
	ctx.pw.L1TagWrite.Inc()
	ctx.pw.L1DataWrite.Inc()
	var selfSharers uint64
	if line := t.l1.Peek(r.addr); line != nil {
		if r.write && line.State == pvProvider {
			selfSharers = line.Sharers &^ areaBit(ctx.Areas, r.requestor)
		}
		line.State = state
		line.Dirty = line.Dirty || dirty
		line.Sharers = 0
		if supplier >= 0 {
			line.Owner = supplier
		} else {
			line.Owner = -1
		}
		if propos != nil {
			copy(line.ProPos[:], propos[:])
		} else {
			for a := range line.ProPos {
				line.ProPos[a] = -1
			}
		}
		t.l1.Touch(line)
	} else {
		victim, valid := t.l1.Victim(r.addr)
		if valid {
			p.evictL1(ctx, r.requestor, *victim)
			t.l1.Invalidate(victim.Addr)
		}
		nl := victim
		t.l1.Fill(nl, r.addr, state)
		nl.Dirty = dirty
		if supplier >= 0 {
			nl.Owner = supplier
		}
		if propos != nil {
			copy(nl.ProPos[:], propos[:])
		}
		t.l1c.Invalidate(r.addr)
	}
	if selfSharers != 0 {
		// We were this area's provider; invalidate our old flock.
		if e, ok := t.mshr.Lookup(r.addr); ok {
			e.SharerAcks += popcount(selfSharers)
		}
		area := p.areaOf(r.requestor)
		for v := selfSharers; v != 0; v &= v - 1 {
			sharer := p.tileAt(area, int8(bits.TrailingZeros64(v)))
			m := p.msg(r.requestor, pvReq{addr: r.addr, requestor: r.requestor})
			m.tile = sharer
			ctx.SendCtlArg(r.requestor, sharer, p.invalShFn, m)
		}
	}
}

// evictL1 implements Table II.
func (p *Providers) evictL1(ctx *Context, tile topo.Tile, victim cache.Line) {
	t := p.tiles[tile]
	area := p.areaOf(tile)
	switch {
	case victim.State == pvShared:
		if victim.Owner >= 0 {
			t.l1c.Update(victim.Addr, victim.Owner)
			ctx.pw.L1CUpdate.Inc()
		}
	case victim.State == pvProvider:
		sharers := victim.Sharers &^ areaBit(ctx.Areas, tile)
		ownerHint := victim.Owner
		if sharers != 0 {
			p.transferProvidership(ctx, tile, victim.Addr, area, sharers, sharers, ownerHint)
		} else {
			// No_Provider to the owner. The callbacks receive the
			// context of the lane that finds the owner.
			p.notifyOwner(ctx, tile, victim.Addr, ownerHint, func(octx *Context, ownerTile topo.Tile, ol *cache.Line) {
				ol.ProPos[area] = -1
				octx.pw.L1TagWrite.Inc()
			}, func(hctx *Context, l2line *cache.Line) {
				l2line.ProPos[area] = -1
				hctx.pw.L2TagWrite.Inc()
			})
		}
	default: // owner states
		localSharers := victim.Sharers &^ areaBit(ctx.Areas, tile)
		if localSharers != 0 {
			p.transferOwnership(ctx, tile, victim.Addr, area, localSharers, localSharers, victim.Dirty, victim.ProPos)
		} else {
			p.writebackToHome(ctx, tile, victim.Addr, victim.Dirty, victim.ProPos, 0, area)
		}
	}
}

// transferProvidership offers providership to the area's sharers in
// turn; the acceptor notifies the owner with Change_Provider. ctx is
// the lane of from; every hop rebinds to the receiving tile's lane.
func (p *Providers) transferProvidership(ctx *Context, from topo.Tile, addr cache.Addr, area int,
	tryList, vector uint64, ownerHint int16) {
	idx := int8(-1)
	forEachBit(tryList, func(i int) {
		if idx < 0 {
			idx = int8(i)
		}
	})
	if idx < 0 {
		// Nobody left to take it: the area loses its provider. Any
		// skipped in-flight readers would be unreachable for later
		// invalidations, so they are conservatively dropped now.
		p.invalidateStragglers(ctx, from, addr, area, vector)
		p.notifyOwner(ctx, from, addr, ownerHint, func(octx *Context, ownerTile topo.Tile, ol *cache.Line) {
			ol.ProPos[area] = -1
			octx.pw.L1TagWrite.Inc()
		}, func(hctx *Context, l2line *cache.Line) {
			l2line.ProPos[area] = -1
			hctx.pw.L2TagWrite.Inc()
		})
		return
	}
	target := p.tileAt(area, idx)
	rest := tryList &^ (uint64(1) << uint(idx))
	ctx.SendCtl(from, target, func() {
		tctx := p.ctx.At(target)
		t := p.tiles[target]
		if _, pending := t.mshr.Lookup(addr); pending {
			p.transferProvidership(tctx, target, addr, area, rest, vector, ownerHint)
			return
		}
		tctx.pw.L1TagRead.Inc()
		line := t.l1.Peek(addr)
		if line == nil || line.State != pvShared {
			p.transferProvidership(tctx, target, addr, area, rest, vector&^(uint64(1)<<uint(idx)), ownerHint)
			return
		}
		line.State = pvProvider
		line.Sharers = vector &^ (uint64(1) << uint(idx))
		line.Owner = ownerHint
		// Hint the area's sharers about the new provider (Figure 5:
		// providership moves update predictions).
		forEachBit(line.Sharers, func(i int) {
			sharer := p.tileAt(area, int8(i))
			tctx.SendCtl(target, sharer, func() {
				sctx := p.ctx.At(sharer)
				st := p.tiles[sharer]
				if l := st.l1.Peek(addr); l != nil && l.State == pvShared {
					l.Owner = int16(target)
				} else {
					st.l1c.Update(addr, int16(target))
					sctx.pw.L1CUpdate.Inc()
				}
			})
		})
		tctx.pw.L1TagWrite.Inc()
		// Change_Provider to the owner (acked; the ack gates further
		// transfers, modelled by the ordering guard at the home).
		tIdx := p.areaIdx(target)
		p.notifyOwner(tctx, target, addr, ownerHint, func(octx *Context, ownerTile topo.Tile, ol *cache.Line) {
			ol.ProPos[area] = tIdx
			octx.pw.L1TagWrite.Inc()
		}, func(hctx *Context, l2line *cache.Line) {
			l2line.ProPos[area] = tIdx
			hctx.pw.L2TagWrite.Inc()
		})
	})
}

// notifyOwner routes a coherence-info update (Change_Provider /
// No_Provider) to the block's owner: first to the hinted L1 owner,
// falling back through the home's L2C$, and finally to the home's own
// L2 entry when the L2 is the owner. The callbacks run on the lane of
// the tile that holds the owner and receive that lane's context.
func (p *Providers) notifyOwner(ctx *Context, from topo.Tile, addr cache.Addr, ownerHint int16,
	onL1Owner func(*Context, topo.Tile, *cache.Line), onL2Owner func(*Context, *cache.Line)) {
	home := ctx.HomeOf(addr)
	// viaHome probes the home from at's lane. at is the tile whose lane
	// runs the caller — a failed hint probe falls back from the probed
	// tile, not from the original sender.
	var viaHome func(at topo.Tile, actx *Context)
	viaHome = func(at topo.Tile, actx *Context) {
		actx.SendCtl(at, home, func() {
			hctx := p.ctx.At(home)
			th := p.tiles[home]
			hctx.pw.L2CAccess.Inc()
			if ptr, ok := th.l2c.Lookup(addr); ok {
				ownerTile := topo.Tile(ptr)
				hctx.SendCtl(home, ownerTile, func() {
					octx := p.ctx.At(ownerTile)
					ot := p.tiles[ownerTile]
					octx.pw.L1TagRead.Inc()
					if ol := ot.l1.Peek(addr); ol != nil && pvIsOwner(ol.State) {
						onL1Owner(octx, ownerTile, ol)
						octx.SendCtl(ownerTile, from, func() {}) // ack
					}
					// Owner in motion: the update is dropped; stale
					// ProPos are tolerated (they miss and fall back
					// to the home).
				})
				return
			}
			if l2line := th.l2.Peek(addr); l2line != nil {
				onL2Owner(hctx, l2line)
				hctx.SendCtl(home, from, func() {}) // ack
			}
		})
	}
	if ownerHint >= 0 {
		ownerTile := topo.Tile(ownerHint)
		ctx.SendCtl(from, ownerTile, func() {
			octx := p.ctx.At(ownerTile)
			ot := p.tiles[ownerTile]
			octx.pw.L1TagRead.Inc()
			if ol := ot.l1.Peek(addr); ol != nil && pvIsOwner(ol.State) {
				onL1Owner(octx, ownerTile, ol)
				octx.SendCtl(ownerTile, from, func() {}) // ack
				return
			}
			viaHome(ownerTile, octx)
		})
		return
	}
	viaHome(from, ctx)
}

// transferOwnership moves ownership (sharing code + provider pointers)
// to a local sharer on replacement. The data rides the offer chain, so
// when every candidate declines it writes back from wherever the chain
// ends — each send's source is the tile whose lane is executing.
func (p *Providers) transferOwnership(ctx *Context, from topo.Tile, addr cache.Addr, area int,
	tryList, vector uint64, dirty bool, propos [cache.MaxSimAreas]int8) {
	idx := int8(-1)
	forEachBit(tryList, func(i int) {
		if idx < 0 {
			idx = int8(i)
		}
	})
	if idx < 0 {
		p.writebackToHome(ctx, from, addr, dirty, propos, vector, area)
		return
	}
	target := p.tileAt(area, idx)
	rest := tryList &^ (uint64(1) << uint(idx))
	ctx.SendCtl(from, target, func() {
		tctx := p.ctx.At(target)
		t := p.tiles[target]
		if _, pending := t.mshr.Lookup(addr); pending {
			// Skip (never stall behind) a candidate with a miss in
			// flight; it stays in the vector so the next owner's code
			// covers its fill.
			p.transferOwnership(tctx, target, addr, area, rest, vector, dirty, propos)
			return
		}
		tctx.pw.L1TagRead.Inc()
		line := t.l1.Peek(addr)
		if line == nil || line.State != pvShared {
			p.transferOwnership(tctx, target, addr, area, rest, vector&^(uint64(1)<<uint(idx)), dirty, propos)
			return
		}
		line.State = pvOwnerShared
		line.Dirty = dirty
		line.Sharers = vector &^ (uint64(1) << uint(idx))
		copy(line.ProPos[:], propos[:])
		line.Owner = -1
		tctx.pw.L1TagWrite.Inc()
		home := tctx.HomeOf(addr)
		stamp := tctx.Kernel.Now()
		tctx.SendCtl(target, home, func() { // Change_Owner
			hctx := p.ctx.At(home)
			p.homeOwnerUpdate(hctx, home, addr, target, stamp)
			hctx.SendCtl(home, target, func() {}) // ack
		})
		// Hint the remaining local sharers (Figure 5).
		forEachBit(vector&^(uint64(1)<<uint(idx)), func(i int) {
			sharer := p.tileAt(area, int8(i))
			tctx.SendCtl(target, sharer, func() {
				sctx := p.ctx.At(sharer)
				st := p.tiles[sharer]
				if l := st.l1.Peek(addr); l != nil && l.State == pvShared {
					l.Owner = int16(target)
				} else {
					st.l1c.Update(addr, int16(target))
					sctx.pw.L1CUpdate.Inc()
				}
			})
		})
	})
}

// writebackToHome returns ownership to the home L2 (no sharers remain
// in the owner's area, so no provider is needed there).
func (p *Providers) writebackToHome(ctx *Context, tile topo.Tile, addr cache.Addr, dirty bool,
	propos [cache.MaxSimAreas]int8, leftover uint64, leftoverArea int) {
	home := ctx.HomeOf(addr)
	propos[p.areaOf(tile)] = -1
	// The home L2-owner form keeps no sharer information (Table V), so
	// any leftover in-flight readers of the evicted owner's area are
	// conservatively invalidated: their fills drop on arrival and they
	// re-miss against the home.
	p.invalidateStragglers(ctx, tile, addr, leftoverArea, leftover)
	ctx.pw.L1DataRead.Inc()
	ctx.SendData(tile, home, func() {
		hctx := p.ctx.At(home)
		p.tiles[home].setStamp(addr, hctx.Kernel.Now())
		p.insertL2Owned(hctx, home, addr, dirty, propos, func() {
			if p.tiles[home].l2c.Invalidate(addr) {
				hctx.pw.L2CUpdate.Inc()
			}
			p.tiles[home].clearRecall(addr)
			p.tiles[home].wakeHome(hctx.Kernel, addr)
		})
	})
}

// invalidateStragglers fire-and-forget invalidates leftover area
// copies whose supplier went away before they could be handed over.
func (p *Providers) invalidateStragglers(ctx *Context, from topo.Tile, addr cache.Addr, area int, vector uint64) {
	if vector == 0 {
		return
	}
	forEachBit(vector, func(i int) {
		straggler := p.tileAt(area, int8(i))
		ctx.SendCtl(from, straggler, func() {
			sctx := p.ctx.At(straggler)
			t := p.tiles[straggler]
			sctx.pw.L1TagRead.Inc()
			if _, ok := t.l1.Invalidate(addr); ok {
				sctx.pw.L1TagWrite.Inc()
			}
			if e, ok := t.mshr.Lookup(addr); ok {
				e.InvalidatedWhilePending = true
			}
		})
	})
}

// homeOwnerUpdate guards the L2C$ against reordered Change_Owner
// messages, like DiCo.
func (p *Providers) homeOwnerUpdate(ctx *Context, home topo.Tile, addr cache.Addr, owner topo.Tile, stamp sim.Time) {
	th := p.tiles[home]
	if !th.stampIfNewer(addr, stamp) {
		return
	}
	p.updateL2C(ctx, home, addr, owner)
	th.clearRecall(addr)
	th.wakeHome(ctx.Kernel, addr)
}

// updateL2C installs an owner pointer, recalling the displaced entry's
// ownership when the insertion evicts one (Section IV-A1).
func (p *Providers) updateL2C(ctx *Context, home topo.Tile, addr cache.Addr, owner topo.Tile) {
	th := p.tiles[home]
	evicted, evictedPtr, displaced := th.l2c.Update(addr, int16(owner))
	ctx.pw.L2CUpdate.Inc()
	if displaced {
		p.recallOwnership(ctx, home, evicted, topo.Tile(evictedPtr))
	}
}

// recallOwnership brings a block's ownership back to the home because
// its L2C$ entry was evicted; the former owner becomes its area's
// provider. The evicted pointer names the owner directly, so the
// recall is a single message — no chip-wide L1 scan. The pointer may
// be stale (ownership in motion); relinquish's guards handle that: a
// pending miss stalls the recall behind it, a non-owner drops it and
// the in-flight Change_Owner clears the marker when it lands.
func (p *Providers) recallOwnership(ctx *Context, home topo.Tile, addr cache.Addr, owner topo.Tile) {
	p.tiles[home].markRecall(addr)
	p.cen.recallScan.Touch(int(home), int(home))
	ctx.SendCtl(home, owner, func() { p.relinquish(home, owner, addr) })
}

// relinquish converts an L1 owner into its area's provider, moving
// ownership (data + provider pointers) to the home L2.
func (p *Providers) relinquish(home, owner topo.Tile, addr cache.Addr) {
	ctx := p.ctx.At(owner)
	t := p.tiles[owner]
	if _, pending := t.mshr.Lookup(addr); pending {
		t.stallL1(addr, func() { p.relinquish(home, owner, addr) })
		return
	}
	ctx.pw.L1TagRead.Inc()
	line := t.l1.Peek(addr)
	if line == nil || !pvIsOwner(line.State) {
		// Stale recall: ownership moved on. The Change_Owner that moved
		// it clears the recall marker at the home.
		return
	}
	area := p.areaOf(owner)
	var propos [cache.MaxSimAreas]int8
	copy(propos[:], line.ProPos[:])
	propos[area] = p.areaIdx(owner)
	dirty := line.Dirty
	sharers := line.Sharers
	line.State = pvProvider
	line.Dirty = false
	line.Sharers = sharers // provider keeps tracking its area's sharers
	line.Owner = -1
	for a := range line.ProPos {
		line.ProPos[a] = -1
	}
	ctx.pw.L1TagWrite.Inc()
	ctx.pw.L1DataRead.Inc()
	ctx.SendData(owner, home, func() {
		hctx := p.ctx.At(home)
		p.tiles[home].setStamp(addr, hctx.Kernel.Now())
		p.insertL2Owned(hctx, home, addr, dirty, propos, func() {
			if p.tiles[home].l2c.Invalidate(addr) {
				hctx.pw.L2CUpdate.Inc()
			}
			p.tiles[home].clearRecall(addr)
			p.tiles[home].wakeHome(hctx.Kernel, addr)
		})
	})
}

// insertL2Owned installs a block in the home L2 as owner with the
// given provider pointers, evicting a victim (chip-wide invalidation
// through its providers) if needed.
func (p *Providers) insertL2Owned(ctx *Context, home topo.Tile, addr cache.Addr, dirty bool,
	propos [cache.MaxSimAreas]int8, then func()) {
	th := p.tiles[home]
	if line := th.l2.Peek(addr); line != nil {
		ctx.pw.L2TagWrite.Inc()
		ctx.pw.L2DataWrite.Inc()
		line.Dirty = line.Dirty || dirty
		for a := range propos {
			if propos[a] >= 0 {
				line.ProPos[a] = propos[a]
			}
		}
		th.l2.Touch(line)
		if then != nil {
			then()
		}
		return
	}
	victim, valid := th.l2.Victim(addr)
	if valid {
		// Remove the victim from the array immediately (so no
		// concurrent insertion picks the same way), invalidate its
		// copies through its providers, then retry the insertion.
		snapshot := *victim
		th.l2.Invalidate(snapshot.Addr)
		ctx.pw.L2TagWrite.Inc()
		p.evictL2Owned(ctx, home, snapshot, func() {
			p.insertL2Owned(ctx, home, addr, dirty, propos, then)
		})
		return
	}
	ctx.pw.L2TagWrite.Inc()
	ctx.pw.L2DataWrite.Inc()
	th.l2.Fill(victim, addr, l2Present)
	victim.Dirty = dirty
	copy(victim.ProPos[:], propos[:])
	if then != nil {
		then()
	}
}

// evictL2Owned invalidates an L2-owned victim block through its
// providers (two-counter scheme, with the home as both owner and
// requestor), writes dirty data to memory, then calls then. The
// pending counters live at the home and every mutation of them runs
// on the home's lane (the ack sends below); provider- and sharer-side
// work rebinds to the executing tile's lane.
func (p *Providers) evictL2Owned(ctx *Context, home topo.Tile, victim cache.Line, then func()) {
	th := p.tiles[home]
	victimAddr := victim.Addr
	th.setHomeBusy(victimAddr)
	pendingProv := 0
	pendingSharers := 0
	var finish func()
	checkDone := func() {
		if pendingProv == 0 && pendingSharers == 0 {
			finish()
		}
	}
	finish = func() {
		hctx := p.ctx.At(home)
		if victim.Dirty {
			mc := hctx.Mem.For(victimAddr)
			hctx.SendDataArg(home, mc, p.flushFn, mc)
		}
		th.clearHomeBusy(victimAddr)
		th.wakeHome(hctx.Kernel, victimAddr)
		then()
	}
	for a := 0; a < ctx.Areas.Count; a++ {
		if victim.ProPos[a] < 0 {
			continue
		}
		pendingProv++
		prov := p.tileAt(a, victim.ProPos[a])
		area := a
		ctx.SendCtl(home, prov, func() {
			pctx := p.ctx.At(prov)
			t := p.tiles[prov]
			pctx.pw.L1TagRead.Inc()
			var sharers uint64
			wasProvider := false
			if old, ok := t.l1.Invalidate(victimAddr); ok {
				pctx.pw.L1TagWrite.Inc()
				if old.State == pvProvider {
					sharers = old.Sharers &^ areaBit(pctx.Areas, prov)
					wasProvider = true
				}
			}
			if !wasProvider {
				for _, at := range pctx.Areas.TilesIn(area) {
					if at != prov {
						sharers |= areaBit(pctx.Areas, at)
					}
				}
			}
			if e, ok := t.mshr.Lookup(victimAddr); ok {
				e.InvalidatedWhilePending = true
			}
			count := popcount(sharers)
			forEachBit(sharers, func(i int) {
				sharer := p.tileAt(area, int8(i))
				pctx.SendCtl(prov, sharer, func() {
					sctx := p.ctx.At(sharer)
					st := p.tiles[sharer]
					sctx.pw.L1TagRead.Inc()
					if _, ok := st.l1.Invalidate(victimAddr); ok {
						sctx.pw.L1TagWrite.Inc()
					}
					if e, ok := st.mshr.Lookup(victimAddr); ok {
						e.InvalidatedWhilePending = true
					}
					sctx.SendCtl(sharer, home, func() {
						pendingSharers--
						checkDone()
					})
				})
			})
			pctx.SendCtl(prov, home, func() {
				pendingProv--
				pendingSharers += count
				checkDone()
			})
		})
	}
	if pendingProv == 0 {
		finish()
	}
}

func (p *Providers) maybeComplete(ctx *Context, tile topo.Tile, addr cache.Addr) {
	t := p.tiles[tile]
	e, ok := t.mshr.Lookup(addr)
	if !ok || !e.Done() {
		return
	}
	dropped := e.InvalidatedWhilePending && !e.Write
	if dropped {
		// The fill raced an invalidation. Dropping the line is the
		// safe resolution, but it must go through the regular
		// replacement protocol so any ownership or providership the
		// fill carried is handed back properly.
		if line := t.l1.Peek(addr); line != nil {
			snapshot := *line
			t.l1.Invalidate(addr)
			p.evictL1(ctx, tile, snapshot)
		}
	}
	cls := MissClass(e.Tag)
	ctx.Profile.Count[cls]++
	ctx.Profile.Links[cls] += uint64(e.Links)
	ctx.spanEnd(tile, cls, dropped)
	done := e.OnComplete
	t.mshr.Release(addr)
	ctx.observeRetired(tile, addr, e.Write, false, e.InvalidatedWhilePending)
	t.wakeL1(ctx.Kernel, addr)
	if done != nil {
		done()
	}
}

// ForEachCopy implements Engine.
func (p *Providers) ForEachCopy(addr cache.Addr, fn func(CopyInfo)) {
	forEachCopy(p.tiles, p.ctx.HomeOf(addr), addr, func(l *cache.Line) (bool, bool) {
		return pvIsOwner(l.State), l.State == pvOwnerModified || l.State == pvOwnerExclusive
	}, fn)
}

// ForEachPending implements Engine.
func (p *Providers) ForEachPending(fn func(topo.Tile, *cache.MSHREntry)) {
	forEachPending(p.tiles, fn)
}

// CheckInvariants implements Engine; call at quiescence. Checks the
// per-area invariants of DiCo-Providers: at most one owner chip-wide,
// at most one provider per area, the owner's ProPos point at the real
// providers, and every plain sharer is covered by its area's supplier.
func (p *Providers) CheckInvariants() {
	ctx := p.ctx
	type info struct {
		owner     topo.Tile
		providers map[int]topo.Tile
		holders   map[topo.Tile]cache.State
	}
	blocks := make(map[cache.Addr]*info)
	get := func(a cache.Addr) *info {
		bi := blocks[a]
		if bi == nil {
			bi = &info{owner: -1, providers: map[int]topo.Tile{}, holders: map[topo.Tile]cache.State{}}
			blocks[a] = bi
		}
		return bi
	}
	for i, t := range p.tiles {
		tile := topo.Tile(i)
		t.l1.ForEachValid(func(l *cache.Line) {
			bi := get(l.Addr)
			bi.holders[tile] = l.State
			switch {
			case pvIsOwner(l.State):
				if bi.owner >= 0 {
					panic(fmt.Sprintf("providers: block %#x has two owners (%d, %d)", l.Addr, bi.owner, tile))
				}
				bi.owner = tile
			case l.State == pvProvider:
				area := p.areaOf(tile)
				if prev, ok := bi.providers[area]; ok {
					panic(fmt.Sprintf("providers: block %#x has two providers in area %d (%d, %d)",
						l.Addr, area, prev, tile))
				}
				bi.providers[area] = tile
			}
		})
	}
	addrs := make([]cache.Addr, 0, len(blocks))
	for a := range blocks {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		bi := blocks[addr]
		home := ctx.HomeOf(addr)
		th := p.tiles[home]
		l2line := th.l2.Peek(addr)
		// Ownership must exist somewhere if any copy exists.
		if bi.owner < 0 && l2line == nil {
			panic(fmt.Sprintf("providers: block %#x cached with no owner (holders %v)", addr, bi.holders))
		}
		// Owner's provider pointers must match the real providers.
		var propos *[cache.MaxSimAreas]int8
		ownerArea := -1
		if bi.owner >= 0 {
			ol := p.tiles[bi.owner].l1.Peek(addr)
			propos = &ol.ProPos
			ownerArea = p.areaOf(bi.owner)
			if ol.State == pvOwnerExclusive || ol.State == pvOwnerModified {
				if len(bi.holders) > 1 {
					panic(fmt.Sprintf("providers: block %#x exclusive at %d with %d holders",
						addr, bi.owner, len(bi.holders)))
				}
			}
			if ptr, ok := th.l2c.Lookup(addr); ok && topo.Tile(ptr) != bi.owner {
				panic(fmt.Sprintf("providers: block %#x L2C$ %d != owner %d", addr, ptr, bi.owner))
			}
		} else if l2line != nil {
			propos = &l2line.ProPos
		}
		for area, prov := range bi.providers {
			if area == ownerArea {
				panic(fmt.Sprintf("providers: block %#x has provider %d in the owner's area", addr, prov))
			}
			if propos != nil && propos[area] >= 0 && p.tileAt(area, propos[area]) != prov {
				panic(fmt.Sprintf("providers: block %#x ProPos[%d]=%d but provider is %d",
					addr, area, propos[area], prov))
			}
		}
	}
}
