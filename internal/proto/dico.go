package proto

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/topo"
)

// L1 states of Direct Coherence. Owner states carry the block's
// directory information (the full-map sharing vector) in the L1.
const (
	dcShared cache.State = 1 + iota
	dcOwnerShared
	dcOwnerExclusive
	dcOwnerModified
)

func dcIsOwner(s cache.State) bool {
	return s == dcOwnerShared || s == dcOwnerExclusive || s == dcOwnerModified
}

// DiCo is the original Direct Coherence protocol [7]: ownership and
// coherence information live in the L1 caches, the L1C$ predicts the
// supplier so most misses resolve in two hops, and the home's L2C$
// tracks the precise owner for mispredictions.
type DiCo struct {
	ctx   *Context
	tiles []*tileState

	// Long-lived adapters for the kernel/mesh argument fast path:
	// protocol hops travel as (fn, *dcMsg) pairs instead of
	// per-message closures (see dirMsg for the pattern).
	atHomeFn  func(any)
	atL1Fn    func(any)
	invalFn   func(any)
	ackFn     func(any)
	deliverFn func(any)
	coFn      func(any)
	coAckFn   func(any)
	memReqFn  func(any)
	memRespFn func(any)
	memFillFn func(any)
	wbFn      func(any)
	flushFn   func(any)

	// free holds one message pool per tile, indexed by the executing
	// tile (see Directory.free).
	free []*dcMsg

	cen dcCensus

	// Recall marks and the Change_Owner ordering stamps live in the
	// home tile's transaction table (tileState.markRecall /
	// stampIfNewer): the paper gates transfers on the home's ack; the
	// stamp realizes the same ordering against reordered messages.
}

// dcCensus holds DiCo's registered touch sites. After messageization
// every site records on the executing tile's diagonal (src == dst):
// the former cross-tile requestor-MSHR pokes now ride the messages,
// and the recall path reads the displaced pointer instead of scanning
// every tile's L1. All sites are nil when the census is disarmed.
type dcCensus struct {
	l1PredFail, l1FwdHome, l1Class  *telemetry.TouchSite
	ownerClass, ownerAcks           *telemetry.TouchSite
	homeFwd, homeMemFetch           *telemetry.TouchSite
	homeSupplyClass, homeSupplyAcks *telemetry.TouchSite
	deliver, memResp                *telemetry.TouchSite
	recallScan                      *telemetry.TouchSite
}

// dcMsg is DiCo's pooled argument node for the non-capturing message
// path (see dirMsg).
type dcMsg struct {
	next     *dcMsg
	r        dcReq
	tile     topo.Tile   // hop-specific second tile
	state    cache.State // deliverData fill state
	dirty    bool
	supplier int16    // deliverData prediction hint / invalidation new owner
	stamp    sim.Time // Change_Owner ordering stamp
	vec      uint64   // sharer vector (writeback)
}

// msg takes a node from the executing lane's pool; at must be the
// tile whose lane is running the caller.
func (p *DiCo) msg(at topo.Tile, r dcReq) *dcMsg {
	lane := p.ctx.Lane(at)
	m := p.free[lane]
	if m != nil {
		p.free[lane] = m.next
	} else {
		m = &dcMsg{}
	}
	m.r = r
	return m
}

// putMsg recycles a node into the executing lane's pool.
func (p *DiCo) putMsg(at topo.Tile, m *dcMsg) {
	lane := p.ctx.Lane(at)
	m.next = p.free[lane]
	p.free[lane] = m
}

// bindHandlers builds the long-lived adapter funcs once.
func (p *DiCo) bindHandlers() {
	p.atHomeFn = func(a any) {
		m := a.(*dcMsg)
		r := m.r
		p.putMsg(p.ctx.HomeOf(r.addr), m)
		p.atHome(r)
	}
	p.atL1Fn = func(a any) {
		m := a.(*dcMsg)
		r, tile := m.r, m.tile
		p.putMsg(tile, m)
		p.atL1(r, tile)
	}
	p.invalFn = func(a any) {
		m := a.(*dcMsg)
		tile, addr, ackTo, newOwner := m.tile, m.r.addr, m.r.requestor, topo.Tile(m.supplier)
		p.putMsg(tile, m)
		ctx := p.ctx.At(tile)
		ctx.chargeVM(ackTo)
		p.invalidateAtL1(ctx, tile, addr, ackTo, newOwner)
	}
	p.ackFn = func(a any) {
		m := a.(*dcMsg)
		ackTo, addr := m.tile, m.r.addr
		p.putMsg(ackTo, m)
		ctx := p.ctx.At(ackTo)
		ctx.chargeVM(ackTo)
		e, ok := p.tiles[ackTo].mshr.Lookup(addr)
		if !ok {
			return
		}
		e.SharerAcks--
		p.maybeComplete(ctx, ackTo, addr)
	}
	p.deliverFn = func(a any) {
		m := a.(*dcMsg)
		r, state, dirty, supplier := m.r, m.state, m.dirty, m.supplier
		p.putMsg(r.requestor, m)
		ctx := p.ctx.At(r.requestor)
		ctx.chargeVM(r.requestor)
		p.cen.deliver.Touch(int(r.requestor), int(r.requestor))
		p.fillL1(ctx, r.requestor, r.addr, state, dirty, supplier)
		if e, ok := p.tiles[r.requestor].mshr.Lookup(r.addr); ok {
			e.DataReceived = true
			e.Links += int(r.links)
			e.SharerAcks += int(r.acks)
			e.HomeAck += int(r.homeAck)
			if r.clsPlus1 != 0 {
				e.Tag = int(r.clsPlus1 - 1)
			}
		}
		p.maybeComplete(ctx, r.requestor, r.addr)
	}
	// coFn lands a Change_Owner at the home; the node travels on to
	// carry the gating ack back to the new owner.
	p.coFn = func(a any) {
		m := a.(*dcMsg)
		addr, newOwner, stamp := m.r.addr, m.tile, m.stamp
		home := p.ctx.HomeOf(addr)
		ctx := p.ctx.At(home)
		ctx.chargeVM(newOwner)
		p.homeOwnerUpdate(ctx, home, addr, newOwner, stamp)
		ctx.SendCtlArg(home, newOwner, p.coAckFn, m)
	}
	p.coAckFn = func(a any) {
		m := a.(*dcMsg)
		requestor, addr := m.tile, m.r.addr
		p.putMsg(requestor, m)
		ctx := p.ctx.At(requestor)
		ctx.chargeVM(requestor)
		if e, ok := p.tiles[requestor].mshr.Lookup(addr); ok {
			e.HomeAck--
			p.maybeComplete(ctx, requestor, addr)
		}
	}
	// Memory fetch pipeline (no L2 copy is kept: the L1 owner holds
	// the block and its coherence information).
	p.memReqFn = func(a any) {
		m := a.(*dcMsg)
		ctx := p.ctx.At(p.ctx.Mem.For(m.r.addr))
		ctx.MemFetch(p.memRespFn, m)
	}
	p.memRespFn = func(a any) {
		m := a.(*dcMsg)
		mc := p.ctx.Mem.For(m.r.addr)
		ctx := p.ctx.At(mc)
		ctx.chargeVM(m.r.requestor)
		home := ctx.HomeOf(m.r.addr)
		p.cen.memResp.Touch(int(mc), int(mc))
		d2 := ctx.SendDataArg(mc, home, p.memFillFn, m)
		m.r.links += int16(d2.Hops)
	}
	p.memFillFn = func(a any) {
		m := a.(*dcMsg)
		r := m.r
		home := p.ctx.HomeOf(r.addr)
		p.putMsg(home, m)
		ctx := p.ctx.At(home)
		ctx.chargeVM(r.requestor)
		state, dirty := dcOwnerExclusive, false
		if r.write {
			state, dirty = dcOwnerModified, true
		}
		p.deliverData(ctx, r, home, state, dirty, -1)
	}
	// wbFn lands an ownership writeback (data + sharing code) at the
	// home L2.
	p.wbFn = func(a any) {
		m := a.(*dcMsg)
		addr, dirty, sharers := m.r.addr, m.dirty, m.vec
		home := p.ctx.HomeOf(addr)
		p.putMsg(home, m)
		ctx := p.ctx.At(home)
		// Stamp the return of ownership so a Change_Owner that was
		// sent earlier but arrives later cannot resurrect a stale
		// pointer.
		p.tiles[home].setStamp(addr, ctx.Kernel.Now())
		p.insertL2Owned(ctx, home, addr, dirty, sharers, nil)
		// The home's pointer to the old L1 owner is obsolete.
		if p.tiles[home].l2c.Invalidate(addr) {
			ctx.pw.L2CUpdate.Inc()
		}
		p.tiles[home].clearRecall(addr)
		p.tiles[home].wakeHome(ctx.Kernel, addr)
	}
	// flushFn runs at the memory controller tile boxed in the argument.
	p.flushFn = func(a any) { p.ctx.At(a.(topo.Tile)).MemFlush() }
}

// NewDiCo builds the DiCo engine on ctx.
func NewDiCo(ctx *Context) *DiCo {
	ctx.bindPower()
	n := ctx.NumTiles()
	p := &DiCo{
		ctx:   ctx,
		tiles: make([]*tileState, n),
		free:  make([]*dcMsg, n),
	}
	p.bindHandlers()
	p.cen = dcCensus{
		l1PredFail:      ctx.CensusSite("dico", "atL1.pred-fail", "mshr"),
		l1FwdHome:       ctx.CensusSite("dico", "atL1.fwd-home", "mshr"),
		l1Class:         ctx.CensusSite("dico", "atL1.set-class", "mshr"),
		ownerClass:      ctx.CensusSite("dico", "ownerWriteSupply.set-class", "mshr"),
		ownerAcks:       ctx.CensusSite("dico", "ownerWriteSupply.acks", "mshr"),
		homeFwd:         ctx.CensusSite("dico", "atHome.fwd-owner", "mshr"),
		homeMemFetch:    ctx.CensusSite("dico", "atHome.mem-fetch", "mshr"),
		homeSupplyClass: ctx.CensusSite("dico", "homeOwnerSupply.set-class", "mshr"),
		homeSupplyAcks:  ctx.CensusSite("dico", "homeOwnerSupply.acks", "mshr"),
		deliver:         ctx.CensusSite("dico", "deliverData", "mshr"),
		memResp:         ctx.CensusSite("dico", "memResp", "mshr"),
		recallScan:      ctx.CensusSite("dico", "recallOwnership.owner-scan", "l1"),
	}
	for i := range p.tiles {
		p.tiles[i] = newTileState(ctx.Cfg, ctx.BankShift())
	}
	return p
}

// Name implements Engine.
func (p *DiCo) Name() string { return "dico" }

// Stats implements Engine.
func (p *DiCo) Stats() *stats.Set { return &p.ctx.Counters }

// MissProfile implements Engine.
func (p *DiCo) MissProfile() MissProfile { return p.ctx.Profile }

type dcReq struct {
	addr      cache.Addr
	requestor topo.Tile
	write     bool
	predicted bool
	forwards  int
	// Ride-the-message fields (see dirReq): requestor-MSHR updates
	// accumulated along the miss and applied at delivery.
	links    int16 // mesh links traversed by the request legs
	acks     int16 // sharer acks the write must collect
	homeAck  int8  // pending Change_Owner acks the write must collect
	clsPlus1 int8  // resolved MissClass + 1 (0 = not resolved yet)
}

// Access implements Engine.
func (p *DiCo) Access(tile topo.Tile, addr cache.Addr, write bool, onDone func()) {
	ctx := p.ctx.At(tile)
	ctx.chargeVM(tile)
	t := p.tiles[tile]
	if _, pending := t.mshr.Lookup(addr); pending {
		t.stallL1(addr, func() { p.Access(tile, addr, write, onDone) })
		return
	}
	ctx.pw.L1TagRead.Inc()
	if line := t.l1.Lookup(addr); line != nil {
		if !write {
			ctx.pw.L1DataRead.Inc()
			ctx.Profile.Hits++
			ctx.observeRetired(tile, addr, false, true, false)
			ctx.Kernel.After(ctx.Cfg.L1HitLatency, onDone)
			return
		}
		switch {
		case line.State == dcOwnerModified || line.State == dcOwnerExclusive:
			line.State = dcOwnerModified
			line.Dirty = true
			ctx.pw.L1DataWrite.Inc()
			ctx.Profile.Hits++
			ctx.observeRetired(tile, addr, true, true, false)
			ctx.Kernel.After(ctx.Cfg.L1HitLatency, onDone)
			return
		case line.State == dcOwnerShared:
			// Owner writes: it invalidates its sharers itself — the
			// hallmark of Direct Coherence.
			p.ownerWriteHit(tile, addr, line, onDone)
			return
		}
		// Shared copy: upgrade via the regular miss path.
	}
	e := t.mshr.Allocate(addr, write, uint64(ctx.Kernel.Now()))
	e.OnComplete = onDone
	ctx.spanBegin(tile, addr, write)
	if ctx.tracing(addr) {
		ctx.Trace(addr, "miss at %d write=%v", tile, write)
	}
	r := dcReq{addr: addr, requestor: tile, write: write}
	// Predict the supplier via the L1C$ (Figure 5).
	ctx.pw.L1CAccess.Inc()
	if ptr, ok := t.l1c.Lookup(addr); ok && topo.Tile(ptr) != tile && !ctx.Cfg.NoPrediction {
		r.predicted = true
		e.Tag = int(MissPredOwner)
		ctx.spanEvent("predict-supplier", tile)
		pred := topo.Tile(ptr)
		m := p.msg(tile, r)
		m.tile = pred
		del := ctx.SendCtlArg(tile, pred, p.atL1Fn, m)
		e.Links += del.Hops
		return
	}
	e.Tag = int(MissUnpredHome)
	home := ctx.HomeOf(addr)
	del := ctx.SendCtlArg(tile, home, p.atHomeFn, p.msg(tile, r))
	e.Links += del.Hops
}

// ownerWriteHit invalidates the sharers from the owner itself (no home
// involvement) and upgrades the line to modified.
func (p *DiCo) ownerWriteHit(tile topo.Tile, addr cache.Addr, line *cache.Line, onDone func()) {
	ctx := p.ctx.At(tile)
	t := p.tiles[tile]
	sharers := line.Sharers &^ bit(tile)
	if sharers == 0 {
		line.State = dcOwnerModified
		line.Dirty = true
		line.Sharers = 0
		ctx.pw.L1DataWrite.Inc()
		ctx.Profile.Hits++
		ctx.observeRetired(tile, addr, true, true, false)
		ctx.Kernel.After(ctx.Cfg.L1HitLatency, onDone)
		return
	}
	e := t.mshr.Allocate(addr, true, uint64(ctx.Kernel.Now()))
	e.OnComplete = onDone
	e.Tag = int(MissPredOwner) // resolved locally; counted as a 0-link owner hit
	ctx.spanBegin(tile, addr, true)
	ctx.spanEvent("owner-write-inv", tile)
	e.DataReceived = true
	e.SharerAcks = popcount(sharers)
	for v := sharers; v != 0; v &= v - 1 {
		sharer := topo.Tile(bits.TrailingZeros64(v))
		m := p.msg(tile, dcReq{addr: addr, requestor: tile})
		m.tile = sharer
		m.supplier = int16(tile)
		ctx.SendCtlArg(tile, sharer, p.invalFn, m)
	}
	line.State = dcOwnerModified
	line.Dirty = true
	line.Sharers = 0
	ctx.pw.L1DataWrite.Inc()
	ctx.pw.L1TagWrite.Inc()
}

// atL1 handles a request arriving at an L1 (by prediction or forwarded
// from the home).
func (p *DiCo) atL1(r dcReq, tile topo.Tile) {
	ctx := p.ctx.At(tile)
	ctx.chargeVM(r.requestor)
	t := p.tiles[tile]
	if _, pending := t.mshr.Lookup(r.addr); pending {
		// Pooled-arg stall: a closure here would capture r and force it
		// to the heap on every atL1 call, not just the stalled ones.
		m := p.msg(tile, r)
		m.tile = tile
		t.stallL1Arg(r.addr, p.atL1Fn, m)
		return
	}
	ctx.pw.L1TagRead.Inc()
	line := t.l1.Lookup(r.addr)
	if line == nil || !dcIsOwner(line.State) {
		// Misprediction (or stale forward): to the home.
		if r.predicted && r.forwards == 0 {
			p.cen.l1PredFail.Touch(int(tile), int(tile))
			r.clsPlus1 = int8(MissPredFail) + 1
		}
		r.forwards++
		home := ctx.HomeOf(r.addr)
		m := p.msg(tile, r)
		del := ctx.SendCtlArg(tile, home, p.atHomeFn, m)
		p.cen.l1FwdHome.Touch(int(tile), int(tile))
		m.r.links += int16(del.Hops)
		return
	}
	if r.write {
		p.ownerWriteSupply(ctx, r, tile, line)
		return
	}
	// Owner read supply: requestor becomes a sharer; two-hop miss when
	// predicted.
	if r.predicted && r.forwards == 0 {
		p.cen.l1Class.Touch(int(tile), int(tile))
		r.clsPlus1 = int8(MissPredOwner) + 1
	} else if !r.predicted {
		p.cen.l1Class.Touch(int(tile), int(tile))
		r.clsPlus1 = int8(MissUnpredOwner) + 1
	}
	if ctx.tracing(r.addr) {
		ctx.Trace(r.addr, "owner %d supplies read to %d (sharers %#x)", tile, r.requestor, line.Sharers)
	}
	line.Sharers |= bit(r.requestor)
	if line.State != dcOwnerShared {
		line.State = dcOwnerShared
	}
	ctx.pw.L1TagWrite.Inc()
	ctx.pw.L1DataRead.Inc()
	p.deliverData(ctx, r, tile, dcShared, false, int16(tile))
}

// ownerWriteSupply transfers ownership to a writer: the owner
// invalidates the sharers itself, sends the data, and notifies the
// home with Change_Owner (acked before the transfer is final).
func (p *DiCo) ownerWriteSupply(ctx *Context, r dcReq, owner topo.Tile, line *cache.Line) {
	if r.predicted && r.forwards == 0 {
		p.cen.ownerClass.Touch(int(owner), int(owner))
		r.clsPlus1 = int8(MissPredOwner) + 1
	} else if !r.predicted {
		p.cen.ownerClass.Touch(int(owner), int(owner))
		r.clsPlus1 = int8(MissUnpredOwner) + 1
	}
	sharers := line.Sharers &^ bit(r.requestor) &^ bit(owner)
	if ctx.tracing(r.addr) {
		ctx.Trace(r.addr, "owner %d write-supplies %d, inv sharers %#x", owner, r.requestor, sharers)
	}
	// The sharer-ack and Change_Owner-ack expectations ride to the
	// requestor with the data; an ack arriving first drives its MSHR
	// counter transiently negative, which Done() tolerates.
	p.cen.ownerAcks.Touch(int(owner), int(owner))
	r.acks += int16(popcount(sharers))
	r.homeAck++
	for v := sharers; v != 0; v &= v - 1 {
		sharer := topo.Tile(bits.TrailingZeros64(v))
		m := p.msg(owner, dcReq{addr: r.addr, requestor: r.requestor})
		m.tile = sharer
		m.supplier = int16(r.requestor)
		ctx.SendCtlArg(owner, sharer, p.invalFn, m)
	}
	ctx.pw.L1DataRead.Inc()
	ctx.pw.L1TagWrite.Inc()
	p.tiles[owner].l1.Invalidate(r.addr)
	// The former owner's prediction now points at the new owner.
	p.tiles[owner].l1c.Update(r.addr, int16(r.requestor))
	ctx.pw.L1CUpdate.Inc()
	p.deliverData(ctx, r, owner, dcOwnerModified, true, -1)
	home := ctx.HomeOf(r.addr)
	m := p.msg(owner, dcReq{addr: r.addr})
	m.tile = r.requestor
	m.stamp = ctx.Kernel.Now()
	ctx.SendCtlArg(owner, home, p.coFn, m) // Change_Owner (+ gating ack)
}

// atHome handles a request at the home bank: consult the L2C$ for the
// precise owner, else serve from the L2 (home ownership), else fetch
// memory.
func (p *DiCo) atHome(r dcReq) {
	home := p.ctx.HomeOf(r.addr)
	ctx := p.ctx.At(home)
	ctx.chargeVM(r.requestor)
	th := p.tiles[home]
	if th.homeBusy(r.addr) || th.recallMarked(r.addr) {
		th.stallHomeArg(r.addr, p.atHomeFn, p.msg(home, r))
		return
	}
	ctx.pw.L2TagRead.Inc()
	ctx.pw.L2CAccess.Inc()
	if ptr, ok := th.l2c.Lookup(r.addr); ok && th.l2.Peek(r.addr) == nil {
		owner := topo.Tile(ptr)
		if owner == r.requestor || r.forwards >= maxForwards {
			// Our own transfer is settling, or forwarding keeps
			// bouncing: back off and retry, keeping the links already
			// ridden (those hops really happened).
			ctx.spanRetry(r.requestor)
			nr := r
			nr.forwards = 0
			ctx.Kernel.AfterArg(retryBackoff, p.atHomeFn, p.msg(home, nr))
			return
		}
		r.forwards++
		ctx.spanEvent("home-forward-owner", home)
		m := p.msg(home, r)
		m.tile = owner
		del := ctx.SendCtlArg(home, owner, p.atL1Fn, m)
		p.cen.homeFwd.Touch(int(home), int(home))
		m.r.links += int16(del.Hops)
		return
	}
	if l2line := th.l2.Lookup(r.addr); l2line != nil {
		// A stale Change_Owner may have re-installed an L2C$ pointer
		// after the ownership returned home; the L2 line wins.
		if th.l2c.Invalidate(r.addr) {
			ctx.pw.L2CUpdate.Inc()
		}
		p.homeOwnerSupply(ctx, r, home, l2line)
		return
	}
	// Not on chip: requestor becomes owner; memory supplies.
	p.updateL2C(ctx, home, r.addr, r.requestor)
	mc := ctx.Mem.For(r.addr)
	m := p.msg(home, r)
	del := ctx.SendCtlArg(home, mc, p.memReqFn, m)
	p.cen.homeMemFetch.Touch(int(home), int(home))
	m.r.links += int16(del.Hops)
}

// homeOwnerSupply serves a request when the home L2 holds ownership.
func (p *DiCo) homeOwnerSupply(ctx *Context, r dcReq, home topo.Tile, l2line *cache.Line) {
	if ctx.tracing(r.addr) {
		ctx.Trace(r.addr, "home %d supplies %d write=%v (l2 sharers %#x)", home, r.requestor, r.write, l2line.Sharers)
	}
	th := p.tiles[home]
	if !r.predicted || r.forwards > 0 {
		p.cen.homeSupplyClass.Touch(int(home), int(home))
		r.clsPlus1 = int8(MissUnpredHome) + 1
	}
	if r.write {
		sharers := l2line.Sharers &^ bit(r.requestor)
		p.cen.homeSupplyAcks.Touch(int(home), int(home))
		r.acks += int16(popcount(sharers))
		for v := sharers; v != 0; v &= v - 1 {
			sharer := topo.Tile(bits.TrailingZeros64(v))
			m := p.msg(home, dcReq{addr: r.addr, requestor: r.requestor})
			m.tile = sharer
			m.supplier = int16(r.requestor)
			ctx.SendCtlArg(home, sharer, p.invalFn, m)
		}
		dirty := l2line.Dirty
		th.l2.Invalidate(r.addr)
		ctx.pw.L2TagWrite.Inc()
		ctx.pw.L2DataRead.Inc()
		_ = dirty // the new owner is modified regardless of the L2 copy's state
		p.updateL2C(ctx, home, r.addr, r.requestor)
		p.deliverData(ctx, r, home, dcOwnerModified, true, -1)
		return
	}
	l2line.Sharers |= bit(r.requestor)
	ctx.pw.L2DataRead.Inc()
	p.deliverData(ctx, r, home, dcShared, false, -1)
}

// invalidateAtL1 drops a sharer's copy, updates its prediction to the
// new owner (Figure 5), and acks the requestor.
func (p *DiCo) invalidateAtL1(ctx *Context, tile topo.Tile, addr cache.Addr, ackTo, newOwner topo.Tile) {
	if ctx.tracing(addr) {
		ctx.Trace(addr, "invalidate at %d (ack to %d)", tile, ackTo)
	}
	t := p.tiles[tile]
	ctx.pw.L1TagRead.Inc()
	if _, ok := t.l1.Invalidate(addr); ok {
		ctx.pw.L1TagWrite.Inc()
	}
	if e, ok := t.mshr.Lookup(addr); ok {
		e.InvalidatedWhilePending = true
	}
	t.l1c.Update(addr, int16(newOwner))
	ctx.pw.L1CUpdate.Inc()
	m := p.msg(tile, dcReq{addr: addr})
	m.tile = ackTo
	ctx.SendCtlArg(tile, ackTo, p.ackFn, m)
}

// homeOwnerUpdate installs a new owner pointer in the home's L2C$,
// guarded against reordered Change_Owner messages.
func (p *DiCo) homeOwnerUpdate(ctx *Context, home topo.Tile, addr cache.Addr, owner topo.Tile, stamp sim.Time) {
	th := p.tiles[home]
	if !th.stampIfNewer(addr, stamp) {
		return // a newer transfer already registered
	}
	p.updateL2C(ctx, home, addr, owner)
	th.clearRecall(addr)
	th.wakeHome(ctx.Kernel, addr)
}

// updateL2C writes an owner pointer, running the L2C$ replacement
// protocol (ownership recall) when the insertion displaces a victim.
func (p *DiCo) updateL2C(ctx *Context, home topo.Tile, addr cache.Addr, owner topo.Tile) {
	th := p.tiles[home]
	evicted, evictedPtr, displaced := th.l2c.Update(addr, int16(owner))
	ctx.pw.L2CUpdate.Inc()
	if !displaced {
		return
	}
	// The displaced entry loses the home's only pointer to its owner:
	// recall that ownership to the home L2.
	p.recallOwnership(ctx, home, evicted, topo.Tile(evictedPtr))
}

// recallOwnership implements the L2C$ information replacement of
// Section IV-A1: the home asks the owner to relinquish ownership and
// return the sharing code and the data. The victim's pointer is read
// before the eviction overwrites it — as the hardware does — so the
// recall travels straight to the owner; no chip-wide L1 scan. If the
// pointer is stale (ownership moved or is still being granted), the
// relinquish handler's guards resolve it at the owner's tile.
func (p *DiCo) recallOwnership(ctx *Context, home topo.Tile, addr cache.Addr, owner topo.Tile) {
	p.tiles[home].markRecall(addr)
	p.cen.recallScan.Touch(int(home), int(home))
	ctx.SendCtl(home, owner, func() { p.relinquishOwnership(home, owner, addr) })
}

// relinquishOwnership moves ownership from an L1 back to the home L2.
// The former owner stays on as a sharer.
func (p *DiCo) relinquishOwnership(home, owner topo.Tile, addr cache.Addr) {
	ctx := p.ctx.At(owner)
	t := p.tiles[owner]
	if _, pending := t.mshr.Lookup(addr); pending {
		// The recalled grant has not filled yet: wait for it.
		t.stallL1(addr, func() { p.relinquishOwnership(home, owner, addr) })
		return
	}
	ctx.pw.L1TagRead.Inc()
	line := t.l1.Peek(addr)
	if line == nil || !dcIsOwner(line.State) {
		// Transfer raced the recall; the new owner's Change_Owner will
		// refresh the home and clear the recall marker.
		return
	}
	if ctx.tracing(addr) {
		ctx.Trace(addr, "relinquish at %d sharers=%#x", owner, line.Sharers)
	}
	sharers := line.Sharers | bit(owner)
	dirty := line.Dirty
	line.State = dcShared
	line.Dirty = false
	line.Sharers = 0
	line.Owner = -1
	ctx.pw.L1TagWrite.Inc()
	ctx.pw.L1DataRead.Inc()
	ctx.SendData(owner, home, func() {
		hctx := p.ctx.At(home)
		p.tiles[home].setStamp(addr, hctx.Kernel.Now())
		p.insertL2Owned(hctx, home, addr, dirty, sharers, func() {
			p.tiles[home].clearRecall(addr)
			p.tiles[home].wakeHome(hctx.Kernel, addr)
		})
	})
}

// deliverData sends the block to the requestor, carrying the miss's
// accumulated MSHR updates in r. supplier (when >= 0) is retained as
// the line's prediction hint.
func (p *DiCo) deliverData(ctx *Context, r dcReq, from topo.Tile, state cache.State, dirty bool, supplier int16) {
	m := p.msg(from, r)
	m.state = state
	m.dirty = dirty
	m.supplier = supplier
	del := ctx.SendDataArg(from, r.requestor, p.deliverFn, m)
	m.r.links += int16(del.Hops)
}

// fillL1 installs the block and runs the Table-II-style replacement
// protocol for the victim.
func (p *DiCo) fillL1(ctx *Context, tile topo.Tile, addr cache.Addr, state cache.State, dirty bool, supplier int16) {
	if ctx.tracing(addr) {
		ctx.Trace(addr, "fill at %d state=%d dirty=%v", tile, state, dirty)
	}
	t := p.tiles[tile]
	ctx.pw.L1TagWrite.Inc()
	ctx.pw.L1DataWrite.Inc()
	if line := t.l1.Peek(addr); line != nil {
		line.State = state
		line.Dirty = line.Dirty || dirty
		if supplier >= 0 {
			line.Owner = supplier
		}
		t.l1.Touch(line)
		return
	}
	victim, valid := t.l1.Victim(addr)
	if valid {
		p.evictL1(ctx, tile, *victim)
		t.l1.Invalidate(victim.Addr)
	}
	nl := victim
	t.l1.Fill(nl, addr, state)
	nl.Dirty = dirty
	if supplier >= 0 {
		nl.Owner = supplier
	}
	// The block is cached: its dedicated L1C$ entry is redundant.
	t.l1c.Invalidate(addr)
}

// evictL1 is the DiCo block replacement: shared lines leave silently
// (retaining the supplier hint in the L1C$); owned lines transfer
// ownership to a sharer, or write back to the home when alone.
func (p *DiCo) evictL1(ctx *Context, tile topo.Tile, victim cache.Line) {
	if ctx.tracing(victim.Addr) {
		ctx.Trace(victim.Addr, "evict at %d state=%d sharers=%#x", tile, victim.State, victim.Sharers)
	}
	t := p.tiles[tile]
	if victim.State == dcShared {
		if victim.Owner >= 0 {
			t.l1c.Update(victim.Addr, victim.Owner)
			ctx.pw.L1CUpdate.Inc()
		}
		return
	}
	sharers := victim.Sharers &^ bit(tile)
	if sharers != 0 {
		p.transferOwnership(tile, victim.Addr, sharers, sharers, victim.Dirty)
		return
	}
	p.writebackToHome(ctx, tile, victim.Addr, victim.Dirty, 0)
}

// transferOwnership offers ownership to the sharers in turn; whoever
// still holds the block accepts, becomes owner, and sends Change_Owner
// to the home. If nobody accepts, the data falls back to the home from
// the last tile probed: the data rides the offer chain, so a failed
// chain writes back from where it ends instead of returning to the
// evictor (which keeps every send's source on the executing tile).
//
// tryList shrinks as candidates are probed; vector keeps every tile
// that may still (or will soon) hold a copy. A candidate with a miss
// in flight is skipped — stalling the transfer behind the miss can
// deadlock, since the miss may itself be waiting for this ownership to
// settle — but stays in the vector so its eventual fill is covered by
// the next owner's sharing code (a superset is always safe).
func (p *DiCo) transferOwnership(from topo.Tile, addr cache.Addr, tryList, vector uint64, dirty bool) {
	ctx := p.ctx.At(from)
	target := topo.Tile(-1)
	forEachBit(tryList, func(i int) {
		if target < 0 {
			target = topo.Tile(i)
		}
	})
	if target < 0 {
		p.writebackToHome(ctx, from, addr, dirty, vector)
		return
	}
	rest := tryList &^ bit(target)
	ctx.SendCtl(from, target, func() {
		tctx := p.ctx.At(target)
		t := p.tiles[target]
		if _, pending := t.mshr.Lookup(addr); pending {
			p.transferOwnership(target, addr, rest, vector, dirty)
			return
		}
		tctx.pw.L1TagRead.Inc()
		line := t.l1.Peek(addr)
		if line == nil || line.State != dcShared {
			if tctx.tracing(addr) {
				tctx.Trace(addr, "transfer rejected at %d", target)
			}
			// No longer a sharer: pass it on (Table II).
			p.transferOwnership(target, addr, rest, vector&^bit(target), dirty)
			return
		}
		if tctx.tracing(addr) {
			tctx.Trace(addr, "transfer accepted at %d (vector %#x)", target, vector)
		}
		line.State = dcOwnerShared
		line.Dirty = dirty
		line.Sharers = vector &^ bit(target)
		line.Owner = -1
		tctx.pw.L1TagWrite.Inc()
		home := tctx.HomeOf(addr)
		stamp := tctx.Kernel.Now()
		tctx.SendCtl(target, home, func() { // Change_Owner
			hctx := p.ctx.At(home)
			p.homeOwnerUpdate(hctx, home, addr, target, stamp)
			hctx.SendCtl(home, target, func() {}) // ack (gating message)
		})
		// Hint the remaining sharers about the new owner (Figure 5).
		forEachBit(vector&^bit(target), func(i int) {
			sharer := topo.Tile(i)
			tctx.SendCtl(target, sharer, func() {
				sctx := p.ctx.At(sharer)
				st := p.tiles[sharer]
				if l := st.l1.Peek(addr); l != nil && l.State == dcShared {
					l.Owner = int16(target)
				} else {
					st.l1c.Update(addr, int16(target))
					sctx.pw.L1CUpdate.Inc()
				}
			})
		})
	})
}

// writebackToHome sends ownership (and the data) to the home L2, which
// becomes the owner. tile must be the executing tile.
func (p *DiCo) writebackToHome(ctx *Context, tile topo.Tile, addr cache.Addr, dirty bool, sharers uint64) {
	if ctx.tracing(addr) {
		ctx.Trace(addr, "writeback to home from %d sharers=%#x", tile, sharers)
	}
	home := ctx.HomeOf(addr)
	ctx.pw.L1DataRead.Inc()
	m := p.msg(tile, dcReq{addr: addr})
	m.dirty = dirty
	m.vec = sharers
	ctx.SendDataArg(tile, home, p.wbFn, m)
}

// insertL2Owned installs a block in the home L2 as owner, evicting an
// L2 victim first (which requires invalidating the victim's sharers —
// the same mechanism as a write, with the L2 as both owner and
// requestor).
func (p *DiCo) insertL2Owned(ctx *Context, home topo.Tile, addr cache.Addr, dirty bool, sharers uint64, then func()) {
	if ctx.tracing(addr) {
		ctx.Trace(addr, "insert L2-owned at %d sharers=%#x", home, sharers)
	}
	th := p.tiles[home]
	if line := th.l2.Peek(addr); line != nil {
		ctx.pw.L2TagWrite.Inc()
		ctx.pw.L2DataWrite.Inc()
		line.Dirty = line.Dirty || dirty
		line.Sharers |= sharers
		th.l2.Touch(line)
		if then != nil {
			then()
		}
		return
	}
	victim, valid := th.l2.Victim(addr)
	if valid {
		// Remove the victim from the array immediately (so no
		// concurrent insertion picks the same way), invalidate its
		// copies, then retry the insertion.
		snapshot := *victim
		th.l2.Invalidate(snapshot.Addr)
		ctx.pw.L2TagWrite.Inc()
		p.evictL2Owned(ctx, home, snapshot, func() {
			p.insertL2Owned(ctx, home, addr, dirty, sharers, then)
		})
		return
	}
	ctx.pw.L2TagWrite.Inc()
	ctx.pw.L2DataWrite.Inc()
	th.l2.Fill(victim, addr, l2Present)
	victim.Dirty = dirty
	victim.Sharers = sharers
	if then != nil {
		then()
	}
}

// evictL2Owned invalidates every sharer of an L2-owned victim block,
// writes dirty data back to memory, and then calls then.
func (p *DiCo) evictL2Owned(ctx *Context, home topo.Tile, victim cache.Line, then func()) {
	th := p.tiles[home]
	victimAddr := victim.Addr
	if ctx.tracing(victimAddr) {
		ctx.Trace(victimAddr, "L2 eviction at %d sharers=%#x", home, victim.Sharers)
	}
	sharers := victim.Sharers
	th.setHomeBusy(victimAddr)
	pending := popcount(sharers)
	finish := func() {
		if victim.Dirty {
			mc := ctx.Mem.For(victimAddr)
			ctx.SendDataArg(home, mc, p.flushFn, mc)
		}
		th.clearHomeBusy(victimAddr)
		th.wakeHome(ctx.Kernel, victimAddr)
		then()
	}
	if pending == 0 {
		finish()
		return
	}
	forEachBit(sharers, func(i int) {
		sharer := topo.Tile(i)
		ctx.SendCtl(home, sharer, func() {
			sctx := p.ctx.At(sharer)
			t := p.tiles[sharer]
			sctx.pw.L1TagRead.Inc()
			if _, ok := t.l1.Invalidate(victimAddr); ok {
				sctx.pw.L1TagWrite.Inc()
			}
			if e, ok := t.mshr.Lookup(victimAddr); ok {
				e.InvalidatedWhilePending = true
			}
			sctx.SendCtl(sharer, home, func() {
				pending--
				if pending == 0 {
					finish()
				}
			})
		})
	})
}

func (p *DiCo) maybeComplete(ctx *Context, tile topo.Tile, addr cache.Addr) {
	t := p.tiles[tile]
	e, ok := t.mshr.Lookup(addr)
	if !ok || !e.Done() {
		return
	}
	dropped := e.InvalidatedWhilePending && !e.Write
	if dropped {
		// The fill raced an invalidation. Dropping the line is the
		// safe resolution, but it must go through the regular
		// replacement protocol so any ownership or providership the
		// fill carried is handed back properly.
		if line := t.l1.Peek(addr); line != nil {
			snapshot := *line
			t.l1.Invalidate(addr)
			p.evictL1(ctx, tile, snapshot)
		}
	}
	cls := MissClass(e.Tag)
	ctx.Profile.Count[cls]++
	ctx.Profile.Links[cls] += uint64(e.Links)
	ctx.spanEnd(tile, cls, dropped)
	done := e.OnComplete
	t.mshr.Release(addr)
	ctx.observeRetired(tile, addr, e.Write, false, e.InvalidatedWhilePending)
	t.wakeL1(ctx.Kernel, addr)
	if done != nil {
		done()
	}
}

// ForEachCopy implements Engine.
func (p *DiCo) ForEachCopy(addr cache.Addr, fn func(CopyInfo)) {
	forEachCopy(p.tiles, p.ctx.HomeOf(addr), addr, func(l *cache.Line) (bool, bool) {
		return dcIsOwner(l.State), l.State == dcOwnerModified || l.State == dcOwnerExclusive
	}, fn)
}

// ForEachPending implements Engine.
func (p *DiCo) ForEachPending(fn func(topo.Tile, *cache.MSHREntry)) {
	forEachPending(p.tiles, fn)
}

// CheckInvariants implements Engine; call at quiescence. Verifies the
// DiCo invariants: at most one owner per block (an L1 owner XOR a home
// L2 copy), the owner's sharer vector covers every Shared copy, and
// the home L2C$ points at the actual L1 owner.
func (p *DiCo) CheckInvariants() {
	type info struct {
		owners  []topo.Tile
		holders uint64
		sharers uint64 // union of Shared-state holders
	}
	blocks := make(map[cache.Addr]*info)
	for i, t := range p.tiles {
		tile := topo.Tile(i)
		t.l1.ForEachValid(func(l *cache.Line) {
			bi := blocks[l.Addr]
			if bi == nil {
				bi = &info{}
				blocks[l.Addr] = bi
			}
			bi.holders |= bit(tile)
			if dcIsOwner(l.State) {
				bi.owners = append(bi.owners, tile)
			} else {
				bi.sharers |= bit(tile)
			}
		})
	}
	addrs := make([]cache.Addr, 0, len(blocks))
	for a := range blocks {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		bi := blocks[addr]
		home := p.ctx.HomeOf(addr)
		th := p.tiles[home]
		l2line := th.l2.Peek(addr)
		switch len(bi.owners) {
		case 0:
			// No L1 owner: the home L2 must own the block for the
			// shared copies to be reachable.
			if bi.sharers != 0 && l2line == nil {
				panic(fmt.Sprintf("dico: block %#x has sharers %#x but no owner anywhere", addr, bi.sharers))
			}
			if l2line != nil && l2line.Sharers&bi.sharers != bi.sharers {
				panic(fmt.Sprintf("dico: block %#x L2 sharers %#x miss holders %#x", addr, l2line.Sharers, bi.sharers))
			}
		case 1:
			owner := bi.owners[0]
			ol := p.tiles[owner].l1.Peek(addr)
			if others := bi.sharers &^ bit(owner); ol.Sharers&others != others {
				panic(fmt.Sprintf("dico: block %#x owner %d sharing code %#x misses sharers %#x",
					addr, owner, ol.Sharers, others))
			}
			if ptr, ok := th.l2c.Lookup(addr); ok && topo.Tile(ptr) != owner {
				panic(fmt.Sprintf("dico: block %#x L2C$ points to %d, owner is %d", addr, ptr, owner))
			}
			if ol.State == dcOwnerExclusive || ol.State == dcOwnerModified {
				if popcount(bi.holders) > 1 {
					panic(fmt.Sprintf("dico: block %#x exclusive at %d with holders %#x", addr, owner, bi.holders))
				}
			}
		default:
			panic(fmt.Sprintf("dico: block %#x has %d owners", addr, len(bi.owners)))
		}
	}
}
