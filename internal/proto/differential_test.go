package proto

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/topo"
)

// TestDifferentialPrivateStream: a single core walking private blocks
// involves no coherence, so all four protocols must agree exactly on
// the hit/miss counts (same L1 geometry, same LRU).
func TestDifferentialPrivateStream(t *testing.T) {
	type outcome struct {
		hits, misses uint64
	}
	results := map[string]outcome{}
	rng := sim.NewRand(42)
	// One fixed reference stream with reuse and conflict evictions.
	var stream []cache.Addr
	for i := 0; i < 400; i++ {
		stream = append(stream, cache.Addr(0x9000+uint64(rng.Intn(40))*64))
	}
	for _, e := range allEngines {
		cfg := DefaultConfig()
		cfg.L1Sets, cfg.L1Ways = 4, 2 // small L1: plenty of evictions
		c := newTestChipSized(t, e.mk, 64, 4, cfg)
		for _, a := range stream {
			c.access(3, a, false)
		}
		p := c.eng.MissProfile()
		results[e.name] = outcome{hits: p.Hits, misses: p.TotalMisses()}
	}
	base := results["directory"]
	if base.hits == 0 || base.misses == 0 {
		t.Fatalf("degenerate stream: %+v", base)
	}
	for name, got := range results {
		if got != base {
			t.Errorf("%s diverged on a coherence-free stream: %+v vs directory %+v",
				name, got, base)
		}
	}
}

// TestDifferentialReadSharing: N readers of one block must end with
// every protocol holding N valid copies (no spurious invalidations).
func TestDifferentialReadSharing(t *testing.T) {
	readers := []topo.Tile{0, 9, 18, 27, 36, 45, 54, 63}
	for _, e := range allEngines {
		t.Run(e.name, func(t *testing.T) {
			c := newTestChip(t, e.mk)
			const addr cache.Addr = 0x777
			for _, r := range readers {
				c.access(r, addr, false)
			}
			// Re-read: all must be L1 hits now.
			before := c.eng.MissProfile().Hits
			for _, r := range readers {
				c.access(r, addr, false)
			}
			after := c.eng.MissProfile().Hits
			if int(after-before) != len(readers) {
				t.Errorf("only %d/%d re-reads hit; copies were lost", after-before, len(readers))
			}
		})
	}
}

// TestDifferentialWriteLatency: an uncontended repeat write by the
// owner must be an L1 hit in every protocol.
func TestDifferentialWriteLatency(t *testing.T) {
	for _, e := range allEngines {
		t.Run(e.name, func(t *testing.T) {
			c := newTestChip(t, e.mk)
			const addr cache.Addr = 0x888
			c.access(7, addr, true)
			lat := c.access(7, addr, true)
			if lat != c.ctx.Cfg.L1HitLatency {
				t.Errorf("repeat write latency %d, want hit latency %d", lat, c.ctx.Cfg.L1HitLatency)
			}
		})
	}
}

// TestDifferentialTrafficOrdering: on a read-shared inter-area block
// that is re-missed after eviction, the provider protocols must not
// use more links for the re-miss than the flat directory's home round
// trip plus indirection.
func TestDifferentialFairAccounting(t *testing.T) {
	// All protocols must count every miss in exactly one class.
	for _, e := range allEngines {
		t.Run(e.name, func(t *testing.T) {
			c := newTestChip(t, e.mk)
			rng := sim.NewRand(5)
			issued := uint64(0)
			for i := 0; i < 200; i++ {
				tile := topo.Tile(rng.Intn(64))
				addr := cache.Addr(0xA000 + uint64(rng.Intn(50))*64)
				c.access(tile, addr, rng.Intn(5) == 0)
				issued++
			}
			p := c.eng.MissProfile()
			if p.Hits+p.TotalMisses() != issued {
				t.Errorf("accounting leak: hits %d + misses %d != %d accesses",
					p.Hits, p.TotalMisses(), issued)
			}
		})
	}
}
