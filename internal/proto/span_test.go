package proto

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/telemetry"
	"repro/internal/topo"
)

// attachTracer wires a span tracer into an already-built test chip:
// the engine attributes via ctx.Spans, the mesh via the observer tap.
func (c *testChip) attachTracer(name string) *telemetry.Tracer {
	tr := telemetry.NewTracer(c.kernel, name, c.ctx.Net.Grid().Tiles(), 0)
	c.ctx.Spans = tr
	c.ctx.Net.SetObserver(tr)
	return tr
}

// TestSpanPerMiss requires exactly one span per L1 miss on every
// protocol, all closed at quiescence with a miss class recorded, and
// hop timestamps inside the span window (late traffic excluded).
func TestSpanPerMiss(t *testing.T) {
	for _, e := range allEngines {
		t.Run(e.name, func(t *testing.T) {
			c := newTestChip(t, e.mk)
			tr := c.attachTracer(e.name)
			const addr cache.Addr = 0x2480
			c.access(5, addr, true)   // cold write miss
			c.access(60, addr, false) // remote read miss
			c.access(5, addr, false)  // read back (miss or hit depending on protocol)
			c.access(60, addr, false) // hit: must NOT open a span

			spans := tr.Spans()
			if len(spans) < 2 || len(spans) > 3 {
				t.Fatalf("%d spans for 2-3 misses + 1 hit", len(spans))
			}
			if tr.OpenSpans() != 0 {
				t.Fatalf("%d spans still open at quiescence", tr.OpenSpans())
			}
			for i, s := range spans {
				if !s.Closed() || s.Class == "" {
					t.Errorf("span %d: closed=%v class=%q", i, s.Closed(), s.Class)
				}
				if s.End < s.Start {
					t.Errorf("span %d: end %d before start %d", i, s.End, s.Start)
				}
				if len(s.Hops) == 0 {
					t.Errorf("span %d recorded no messages for a miss", i)
				}
				for _, h := range s.Hops {
					if !h.Late && (h.Depart < s.Start || h.Depart > s.End) {
						t.Errorf("span %d: pre-retire hop departs at %d outside [%d, %d]", i, h.Depart, s.Start, s.End)
					}
				}
			}
			if spans[0].Tile != 5 || !spans[0].Write || spans[1].Tile != 60 || spans[1].Write {
				t.Errorf("span attribution wrong: %+v / %+v", spans[0], spans[1])
			}
		})
	}
}

// TestSpanRetriesReuseSpan hammers one address from many tiles at
// once: transient-state NACKs force retries, and every retry must fold
// into its miss's single span as an annotation — the span count stays
// exactly one per access, no span leaks open, and dropped fills (read
// fills invalidated while pending) close with the Dropped mark.
func TestSpanRetriesReuseSpan(t *testing.T) {
	for _, e := range allEngines {
		t.Run(e.name, func(t *testing.T) {
			c := newTestChip(t, e.mk)
			tr := c.attachTracer(e.name)
			const addr cache.Addr = 0x91c0
			var reqs []struct {
				tile  topo.Tile
				addr  cache.Addr
				write bool
			}
			for i := 0; i < 24; i++ {
				reqs = append(reqs, struct {
					tile  topo.Tile
					addr  cache.Addr
					write bool
				}{topo.Tile(i * 2), addr, i%2 == 0})
			}
			c.parallelAccess(reqs)

			spans := tr.Spans()
			if len(spans) != len(reqs) {
				t.Fatalf("%d spans for %d conflicting accesses — retries must reuse spans, not open new ones", len(spans), len(reqs))
			}
			if tr.OpenSpans() != 0 {
				t.Fatalf("%d spans leaked open after NACK/retry storm", tr.OpenSpans())
			}
			retries := 0
			for i, s := range spans {
				if !s.Closed() || s.Class == "" {
					t.Errorf("span %d not cleanly closed (class %q)", i, s.Class)
				}
				retries += s.Retries
				// Retry annotations and the counter must agree.
				annotated := 0
				for _, ev := range s.Events {
					if ev.Name == "retry" {
						annotated++
					}
				}
				if annotated != s.Retries {
					t.Errorf("span %d: %d retry annotations vs Retries=%d", i, annotated, s.Retries)
				}
				if s.Dropped && s.Write {
					t.Errorf("span %d: write marked as dropped fill", i)
				}
			}
			if retries == 0 {
				t.Errorf("conflict storm produced no retries — test not exercising the NACK path")
			}
		})
	}
}

// TestSpanChainGoldens pins the causal chain-length distributions of
// all four protocols on a deterministic producer-consumer ping-pong —
// the sharing pattern behind the paper's 2-hop vs 3-hop argument. The
// producer's writes invalidate the consumer and train its L1C$ to
// point at the producer, so in the DiCo family the consumer's next
// read predicts its supplier directly (2-chain) while the directory
// protocol indirects every read through the home tile (3-chain). The
// acceptance bar: directory shows strictly more 3+-chain transactions
// than every DiCo variant.
func TestSpanChainGoldens(t *testing.T) {
	const (
		rounds            = 8
		addr   cache.Addr = 0x35c0
	)
	producer, consumer := topo.Tile(0), topo.Tile(12)
	reports := map[string]*telemetry.HopReport{}
	for _, e := range allEngines {
		c := newTestChipSized(t, e.mk, 16, 4, DefaultConfig())
		// Warm untraced: first touches are cold memory fetches in every
		// protocol and would swamp the steady-state sharing signal.
		for i := 0; i < 4; i++ {
			c.access(producer, addr, true)
			c.access(consumer, addr, false)
		}
		tr := c.attachTracer(e.name)
		for i := 0; i < rounds; i++ {
			c.access(producer, addr, true)
			c.access(consumer, addr, false)
		}
		rep := telemetry.Analyze(tr, c.ctx.Net.Config().DataFlits)
		if rep.Open != 0 || rep.Dropped != 0 {
			t.Fatalf("%s: open=%d dropped=%d after drained ping-pong", e.name, rep.Open, rep.Dropped)
		}
		reports[e.name] = rep
		t.Logf("%s: spans=%d chain=%v mean=%.2f 3+share=%.2f",
			e.name, rep.Spans, rep.Chain, rep.MeanChain(), rep.IndirectionShare())
	}

	threePlus := func(r *telemetry.HopReport) int {
		n := 0
		for c := 3; c < len(r.Chain); c++ {
			n += r.Chain[c]
		}
		return n
	}
	dir := reports["directory"]
	if threePlus(dir) == 0 {
		t.Fatalf("directory ping-pong shows no 3+-chain transactions: %v", dir.Chain)
	}
	for _, name := range []string{"dico", "providers", "arin"} {
		r := reports[name]
		if threePlus(dir) <= threePlus(r) {
			t.Errorf("directory 3+-chains (%d) not greater than %s (%d) — indirection signal lost (dir %v vs %v)",
				threePlus(dir), name, threePlus(r), dir.Chain, r.Chain)
		}
		if r.Chain[2] == 0 {
			t.Errorf("%s ping-pong shows no 2-chain transactions — prediction never hit (%v)", name, r.Chain)
		}
		if r.MeanChain() >= dir.MeanChain() {
			t.Errorf("%s mean chain %.2f not shorter than directory's %.2f",
				name, r.MeanChain(), dir.MeanChain())
		}
	}
}
