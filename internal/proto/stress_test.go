// Racy-workload stress fuzzing of the four coherence engines: high-
// conflict streams run under the shadow-memory checker with the
// stalled-transaction watchdog armed (external test package so it can
// use the internal/check harness without an import cycle).
package proto_test

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/check"
)

var stressProtocols = []string{"directory", "dico", "providers", "arin"}

// stressSeeds returns how many seeds to sweep: 12 by default, more
// when STRESS_SEEDS is set (long local bug hunts).
func stressSeeds() int {
	if s := os.Getenv("STRESS_SEEDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 12
}

// TestStress sweeps seeded high-conflict streams over all four
// protocols concurrently, with the checker attached and the watchdog
// armed. Stream shape varies with the seed so the sweep covers
// single-block hammering through eviction-heavy working sets.
func TestStress(t *testing.T) {
	seeds := stressSeeds()
	for seed := 1; seed <= seeds; seed++ {
		blocks := []int{1, 2, 4, 8, 16, 48}[seed%6]
		writePct := []int{40, 60, 75}[seed%3]
		recs := check.ConflictStream(uint64(seed), 16, blocks, 700, writePct)
		for _, p := range stressProtocols {
			name := fmt.Sprintf("s%d-b%d-w%d/%s", seed, blocks, writePct, p)
			if _, err := check.RunRecord(p, recs, 16, 4, uint64(seed), false); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}
	}
}

// TestStressParallel replays the seeded high-conflict streams on the
// sharded mini-chip under the concurrent RunParallel executor —
// shards 1/2/4/8, all four engines — and requires the replay
// fingerprint to match the sequential merge exactly. The shadow
// checker cannot follow onto the lanes (it is hub-resident), so this
// leg leans on the differential gate instead: TestStress has already
// checked these exact streams under the shadow checker, and the
// fingerprint ties the parallel execution back to that checked run.
// The CI race leg runs this test under -race, which is what actually
// exercises the messageized engine handlers across lane goroutines.
func TestStressParallel(t *testing.T) {
	seeds := stressSeeds()
	if seeds > 6 && testing.Short() {
		seeds = 6
	}
	for seed := 1; seed <= seeds; seed++ {
		blocks := []int{1, 2, 4, 8, 16, 48}[seed%6]
		writePct := []int{40, 60, 75}[seed%3]
		recs := check.ConflictStream(uint64(seed), 16, blocks, 700, writePct)
		for _, p := range stressProtocols {
			name := fmt.Sprintf("s%d-b%d-w%d/%s", seed, blocks, writePct, p)
			want, err := check.RunRecordSharded(p, recs, 16, 4, 4, uint64(seed), false)
			if err != nil {
				t.Errorf("%s merge: %v", name, err)
				continue
			}
			for _, shards := range []int{1, 2, 4, 8} {
				got, err := check.RunRecordSharded(p, recs, 16, 4, shards, uint64(seed), true)
				if err != nil {
					t.Errorf("%s parallel shards=%d: %v", name, shards, err)
					continue
				}
				if got != want {
					t.Errorf("%s parallel shards=%d fingerprint diverges:\n got %+v\nwant %+v",
						name, shards, got, want)
				}
			}
		}
	}
}

// FuzzStress lets the fuzzer mutate the raw reference stream. Every
// byte pair decodes to one reference; all four protocols must run the
// stream without checker, watchdog, deadlock or invariant errors, and
// the RunParallel replay must stay fingerprint-identical to the
// sequential merge on every input.
func FuzzStress(f *testing.F) {
	f.Add([]byte{0x80, 0x01, 0x01, 0x01, 0x82, 0x41, 0x03, 0x01})
	for seed := uint64(1); seed <= 4; seed++ {
		recs := check.ConflictStream(seed, 16, 4, 64, 60)
		data := make([]byte, 0, 2*len(recs))
		for _, r := range recs {
			b0 := byte(r.Tile) & 0x3f
			if r.Write {
				b0 |= 0x80
			}
			data = append(data, b0, byte(r.Addr)&0x3f|byte(r.Gap)<<6)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1024 {
			data = data[:1024] // bound per-input cost
		}
		recs := check.DecodeStream(data, 16, 48)
		if len(recs) == 0 {
			return
		}
		for _, p := range stressProtocols {
			if _, err := check.RunRecord(p, recs, 16, 4, 7, false); err != nil {
				t.Errorf("%s: %v", p, err)
			}
			want, err := check.RunRecordSharded(p, recs, 16, 4, 4, 7, false)
			if err != nil {
				t.Errorf("%s merge: %v", p, err)
				continue
			}
			got, err := check.RunRecordSharded(p, recs, 16, 4, 4, 7, true)
			if err != nil {
				t.Errorf("%s parallel: %v", p, err)
				continue
			}
			if got != want {
				t.Errorf("%s parallel fingerprint diverges:\n got %+v\nwant %+v", p, got, want)
			}
		}
	})
}
