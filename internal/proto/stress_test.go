// Racy-workload stress fuzzing of the four coherence engines: high-
// conflict streams run under the shadow-memory checker with the
// stalled-transaction watchdog armed (external test package so it can
// use the internal/check harness without an import cycle).
package proto_test

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/check"
)

var stressProtocols = []string{"directory", "dico", "providers", "arin"}

// stressSeeds returns how many seeds to sweep: 12 by default, more
// when STRESS_SEEDS is set (long local bug hunts).
func stressSeeds() int {
	if s := os.Getenv("STRESS_SEEDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 12
}

// TestStress sweeps seeded high-conflict streams over all four
// protocols concurrently, with the checker attached and the watchdog
// armed. Stream shape varies with the seed so the sweep covers
// single-block hammering through eviction-heavy working sets.
func TestStress(t *testing.T) {
	seeds := stressSeeds()
	for seed := 1; seed <= seeds; seed++ {
		blocks := []int{1, 2, 4, 8, 16, 48}[seed%6]
		writePct := []int{40, 60, 75}[seed%3]
		recs := check.ConflictStream(uint64(seed), 16, blocks, 700, writePct)
		for _, p := range stressProtocols {
			name := fmt.Sprintf("s%d-b%d-w%d/%s", seed, blocks, writePct, p)
			if _, err := check.RunRecord(p, recs, 16, 4, uint64(seed), false); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}
	}
}

// FuzzStress lets the fuzzer mutate the raw reference stream. Every
// byte pair decodes to one reference; all four protocols must run the
// stream without checker, watchdog, deadlock or invariant errors.
func FuzzStress(f *testing.F) {
	f.Add([]byte{0x80, 0x01, 0x01, 0x01, 0x82, 0x41, 0x03, 0x01})
	for seed := uint64(1); seed <= 4; seed++ {
		recs := check.ConflictStream(seed, 16, 4, 64, 60)
		data := make([]byte, 0, 2*len(recs))
		for _, r := range recs {
			b0 := byte(r.Tile) & 0x3f
			if r.Write {
				b0 |= 0x80
			}
			data = append(data, b0, byte(r.Addr)&0x3f|byte(r.Gap)<<6)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1024 {
			data = data[:1024] // bound per-input cost
		}
		recs := check.DecodeStream(data, 16, 48)
		if len(recs) == 0 {
			return
		}
		for _, p := range stressProtocols {
			if _, err := check.RunRecord(p, recs, 16, 4, 7, false); err != nil {
				t.Errorf("%s: %v", p, err)
			}
		}
	})
}
