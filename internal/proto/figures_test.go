package proto

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/topo"
)

// pickBlock returns a block address homed at the given tile.
func pickBlock(c *testChip, home topo.Tile) cache.Addr {
	base := cache.Addr(0x40000)
	for a := base; ; a++ {
		if c.ctx.HomeOf(a) == home {
			return a
		}
	}
}

// profileDelta runs fn and returns the change in the miss profile.
func profileDelta(c *testChip, fn func()) MissProfile {
	before := c.eng.MissProfile()
	fn()
	after := c.eng.MissProfile()
	var d MissProfile
	for i := range d.Count {
		d.Count[i] = after.Count[i] - before.Count[i]
		d.Links[i] = after.Links[i] - before.Links[i]
	}
	d.Hits = after.Hits - before.Hits
	return d
}

// TestFigure2Directory reproduces Figure 2(a): a read to a block whose
// owner is an L1 in another area suffers the directory's indirection
// (3 message legs: requestor -> home -> owner -> requestor).
func TestFigure2Directory(t *testing.T) {
	c := newTestChip(t, func(ctx *Context) Engine { return NewDirectory(ctx) })
	g := c.ctx.Net.Grid()
	home := g.At(4, 4)
	addr := pickBlock(c, home)
	owner := g.At(1, 1)          // area 0
	reader := g.At(6, 6)         // area 3
	c.access(owner, addr, false) // owner becomes exclusive
	d := profileDelta(c, func() { c.access(reader, addr, false) })
	if d.Count[MissUnpredOwner] != 1 {
		t.Fatalf("expected an owner-forwarded miss, got %+v", d.Count)
	}
	// Links: reader->home + home->owner + owner->reader.
	want := g.Hops(reader, home) + g.Hops(home, owner) + g.Hops(owner, reader)
	if got := int(d.Links[MissUnpredOwner]); got != want {
		t.Errorf("indirection traversed %d links, want %d", got, want)
	}
}

// TestFigure2DiCo reproduces Figure 2(b): with a supplier prediction,
// DiCo reaches the owner directly (2 legs).
func TestFigure2DiCo(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1Sets, cfg.L1Ways = 2, 2 // force evictions so the L1C$ learns
	c := newTestChipSized(t, func(ctx *Context) Engine { return NewDiCo(ctx) }, 64, 4, cfg)
	g := c.ctx.Net.Grid()
	home := g.At(4, 4)
	addr := pickBlock(c, home)
	owner := g.At(1, 1)
	reader := g.At(6, 6)
	c.access(owner, addr, false) // owner in L1 (exclusive)
	c.access(reader, addr, false)
	// Evict the reader's copy so it re-misses; the supplier hint moves
	// into its L1C$ on eviction.
	for i := 0; i < 8; i++ {
		c.access(reader, addr+cache.Addr(64*(i+1)), false)
	}
	if _, ok := c.eng.(*DiCo).tiles[reader].l1c.Lookup(addr); !ok {
		t.Skip("reader's L1C$ entry was displaced; prediction untestable here")
	}
	d := profileDelta(c, func() { c.access(reader, addr, false) })
	if d.Count[MissPredOwner] != 1 {
		t.Fatalf("expected a predicted owner hit, got %+v", d.Count)
	}
	want := 2 * g.Hops(reader, owner)
	if got := int(d.Links[MissPredOwner]); got != want {
		t.Errorf("predicted miss traversed %d links, want %d (2 hops)", got, want)
	}
}

// TestFigure2Providers reproduces Figure 2(c): a read to a
// deduplicated block finds the provider inside the requestor's area —
// the shortened miss.
func TestFigure2Providers(t *testing.T) {
	c := newTestChip(t, func(ctx *Context) Engine { return NewProviders(ctx) })
	g := c.ctx.Net.Grid()
	home := g.At(0, 0)
	addr := pickBlock(c, home)
	owner := g.At(1, 1)  // area 0
	sharer := g.At(6, 6) // area 3: becomes the area's provider
	reader := g.At(7, 7) // area 3: served inside the area
	c.access(owner, addr, false)
	d := profileDelta(c, func() { c.access(sharer, addr, false) })
	if d.Count[MissUnpredOwner]+d.Count[MissPredOwner] != 1 {
		t.Fatalf("first remote read should be owner-served, got %+v", d.Count)
	}
	// The sharer is now area 3's provider (Table I: no provider in the
	// requestor's area -> requestor becomes provider).
	line := c.eng.(*Providers).tiles[sharer].l1.Peek(addr)
	if line == nil || line.State != pvProvider {
		t.Fatalf("sharer did not become provider (state %v)", line)
	}
	d = profileDelta(c, func() { c.access(reader, addr, false) })
	if d.Count[MissUnpredProvider] != 1 {
		t.Fatalf("expected a provider-served miss, got %+v", d.Count)
	}
	// The provider leg stays inside the 4x4 area: home leg + forward
	// legs; the data leg is in-area (<= 6 links each way).
	if got := d.Links[MissUnpredProvider]; got > uint64(g.Hops(reader, home)+g.Hops(home, owner)+g.Hops(owner, sharer)+g.Hops(sharer, reader)) {
		t.Errorf("provider miss took %d links, more than the worst-case route", got)
	}
}

// TestFigure2ProvidersPredicted: once the reader has been served by
// the provider, a re-miss predicts it directly — two hops inside the
// area (the paper's 5.4-links shortened miss).
func TestFigure2ProvidersPredicted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1Sets, cfg.L1Ways = 2, 2
	c := newTestChipSized(t, func(ctx *Context) Engine { return NewProviders(ctx) }, 64, 4, cfg)
	g := c.ctx.Net.Grid()
	home := g.At(0, 0)
	addr := pickBlock(c, home)
	owner := g.At(1, 1)
	provider := g.At(6, 6)
	reader := g.At(7, 7)
	c.access(owner, addr, false)
	c.access(provider, addr, false)
	c.access(reader, addr, false)
	for i := 0; i < 8; i++ { // evict the reader's copy; hint -> L1C$
		c.access(reader, addr+cache.Addr(64*(i+1)), false)
	}
	if _, ok := c.eng.(*Providers).tiles[reader].l1c.Lookup(addr); !ok {
		t.Skip("reader's L1C$ entry was displaced; prediction untestable here")
	}
	d := profileDelta(c, func() { c.access(reader, addr, false) })
	if d.Count[MissPredProvider] != 1 {
		t.Fatalf("expected a predicted provider hit, got %+v", d.Count)
	}
	want := 2 * g.Hops(reader, provider) // in-area round trip
	if got := int(d.Links[MissPredProvider]); got != want {
		t.Errorf("shortened miss traversed %d links, want %d", got, want)
	}
	if got := int(d.Links[MissPredProvider]); got > 12 {
		t.Errorf("shortened miss left the area: %d links", got)
	}
}

// TestFigure4WriteInvalidation reproduces Figure 4: on a write, the
// owner invalidates its local sharers and the providers; the providers
// invalidate their areas' sharers; all acks converge on the requestor.
func TestFigure4WriteInvalidation(t *testing.T) {
	c := newTestChip(t, func(ctx *Context) Engine { return NewProviders(ctx) })
	g := c.ctx.Net.Grid()
	home := g.At(0, 0)
	addr := pickBlock(c, home)
	owner := g.At(1, 1)    // area 0 owner
	localShr := g.At(2, 2) // area 0 sharer
	provider := g.At(6, 2) // area 1 provider
	areaShr := g.At(7, 3)  // area 1 sharer under the provider
	writer := g.At(2, 6)   // area 2 writer
	c.access(owner, addr, false)
	c.access(localShr, addr, false)
	c.access(provider, addr, false)
	c.access(areaShr, addr, false)
	eng := c.eng.(*Providers)
	if l := eng.tiles[provider].l1.Peek(addr); l == nil || l.State != pvProvider {
		t.Fatalf("provider setup failed: %v", l)
	}
	c.access(writer, addr, true)
	// Everybody but the writer must be gone; the writer owns it.
	for _, tile := range []topo.Tile{owner, localShr, provider, areaShr} {
		if l := eng.tiles[tile].l1.Peek(addr); l != nil {
			t.Errorf("tile %d still holds the block after the write (state %d)", tile, l.State)
		}
	}
	if l := eng.tiles[writer].l1.Peek(addr); l == nil || l.State != pvOwnerModified {
		t.Errorf("writer does not own the block modified: %v", l)
	}
}

// TestArinDissolution checks Section III-B: the first remote-area read
// dissolves ownership — the former owner and the requestor become
// providers and the block lands in the home L2 in inter-area form.
func TestArinDissolution(t *testing.T) {
	c := newTestChip(t, func(ctx *Context) Engine { return NewArin(ctx) })
	g := c.ctx.Net.Grid()
	home := g.At(4, 0)
	addr := pickBlock(c, home)
	owner := g.At(1, 1)  // area 0
	remote := g.At(6, 6) // area 3
	c.access(owner, addr, false)
	eng := c.eng.(*Arin)
	if l := eng.tiles[owner].l1.Peek(addr); l == nil || !arIsOwner(l.State) {
		t.Fatal("setup: no L1 owner")
	}
	c.access(remote, addr, false)
	if l := eng.tiles[owner].l1.Peek(addr); l == nil || l.State != arProvider {
		t.Errorf("former owner state = %v, want provider", l)
	}
	if l := eng.tiles[remote].l1.Peek(addr); l == nil || l.State != arProvider {
		t.Errorf("remote reader state = %v, want provider", l)
	}
	l2 := eng.tiles[home].l2.Peek(addr)
	if l2 == nil || l2.State != l2ArinInter {
		t.Fatalf("home entry = %v, want inter-area form", l2)
	}
	ownerArea := c.ctx.Areas.Of(owner)
	if l2.ProPos[ownerArea] != int8(c.ctx.Areas.IndexInArea(owner)) {
		t.Errorf("home ProPos[%d] = %d, want the former owner", ownerArea, l2.ProPos[ownerArea])
	}
}

// TestArinBroadcastWrite checks Section IV-B1: a write to an
// inter-area block invalidates every copy via the three-phase
// broadcast and re-establishes intra-area ownership at the writer.
func TestArinBroadcastWrite(t *testing.T) {
	c := newTestChip(t, func(ctx *Context) Engine { return NewArin(ctx) })
	g := c.ctx.Net.Grid()
	home := g.At(4, 0)
	addr := pickBlock(c, home)
	readers := []topo.Tile{g.At(1, 1), g.At(6, 1), g.At(1, 6), g.At(6, 6)}
	for _, r := range readers {
		c.access(r, addr, false)
	}
	eng := c.eng.(*Arin)
	if l2 := eng.tiles[home].l2.Peek(addr); l2 == nil || l2.State != l2ArinInter {
		t.Fatal("setup: block not inter-area")
	}
	bcastBefore := c.ctx.Net.Stats().Broadcasts
	writer := g.At(3, 3)
	c.access(writer, addr, true)
	if got := c.ctx.Net.Stats().Broadcasts - bcastBefore; got < 2 {
		t.Errorf("write used %d broadcasts, want >= 2 (invalidate + unblock)", got)
	}
	for _, r := range readers {
		if l := eng.tiles[r].l1.Peek(addr); l != nil {
			t.Errorf("reader %d still holds a copy after the broadcast write", r)
		}
	}
	if l := eng.tiles[writer].l1.Peek(addr); l == nil || l.State != arOwnerModified {
		t.Errorf("writer state = %v, want owner-modified", l)
	}
	if eng.tiles[home].l2.Peek(addr) != nil {
		t.Error("home still holds the (stale) inter-area copy")
	}
}

// TestDiCoOwnerWriteHit checks Direct Coherence's hallmark: the owner
// invalidates its sharers itself, with no home involvement on the
// request path.
func TestDiCoOwnerWriteHit(t *testing.T) {
	c := newTestChip(t, func(ctx *Context) Engine { return NewDiCo(ctx) })
	g := c.ctx.Net.Grid()
	addr := pickBlock(c, g.At(0, 0))
	owner := g.At(1, 1)
	sharers := []topo.Tile{g.At(2, 1), g.At(5, 5)}
	c.access(owner, addr, false)
	for _, s := range sharers {
		c.access(s, addr, false)
	}
	d := profileDelta(c, func() { c.access(owner, addr, true) })
	// The owner's write resolves locally (counted as a 0-link
	// pred-owner event) and kills both sharers.
	if d.Count[MissPredOwner] != 1 {
		t.Fatalf("owner write hit not recorded: %+v", d.Count)
	}
	eng := c.eng.(*DiCo)
	for _, s := range sharers {
		if l := eng.tiles[s].l1.Peek(addr); l != nil {
			t.Errorf("sharer %d survived the owner's write", s)
		}
	}
}

// TestProvidersReplacementTableII checks Table II: evicting a provider
// with sharers in its area passes the providership to a sharer, which
// notifies the owner with Change_Provider.
func TestProvidersReplacementTableII(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1Sets, cfg.L1Ways = 1, 2 // tiny L1: evictions on demand
	c := newTestChipSized(t, func(ctx *Context) Engine { return NewProviders(ctx) }, 64, 4, cfg)
	g := c.ctx.Net.Grid()
	home := g.At(0, 0)
	addr := pickBlock(c, home)
	owner := g.At(1, 1)    // area 0
	provider := g.At(6, 6) // area 3
	sharer := g.At(7, 7)   // area 3
	c.access(owner, addr, false)
	c.access(provider, addr, false) // becomes provider
	c.access(sharer, addr, false)   // sharer under the provider
	// Evict the provider's line by touching two conflicting blocks.
	c.access(provider, addr+64, false)
	c.access(provider, addr+128, false)
	c.drain()
	eng := c.eng.(*Providers)
	l := eng.tiles[sharer].l1.Peek(addr)
	if l == nil || l.State != pvProvider {
		t.Fatalf("sharer did not inherit providership: %v", l)
	}
	// The owner's ProPo for area 3 must point at the new provider.
	ol := eng.tiles[owner].l1.Peek(addr)
	if ol == nil || !pvIsOwner(ol.State) {
		t.Skip("owner line was evicted by the same pressure; pointer untestable")
	}
	area := c.ctx.Areas.Of(sharer)
	if ol.ProPos[area] != int8(c.ctx.Areas.IndexInArea(sharer)) {
		t.Errorf("owner ProPos[%d] = %d, want the new provider", area, ol.ProPos[area])
	}
}
