// Package proto implements the four cache coherence protocols the
// paper evaluates: the optimized flat directory (with an NCID-style
// directory cache), the original Direct Coherence protocol (DiCo), and
// the paper's two contributions, DiCo-Providers and DiCo-Arin.
//
// All four are message-passing engines over the mesh: every tile has
// an L1 controller and an L2 bank controller, messages are closures
// scheduled through mesh.Network with real per-hop latency and
// contention, and every structure access increments the power event
// counters of internal/power.
//
// Transaction races are handled with the same discipline real
// implementations use, reduced to its essentials: MSHR-pending blocks
// queue incoming requests at the requestor, ordering points queue
// conflicting requests per block, and over-forwarded requests fall
// back to the home and wait there (the paper's deadlock-avoidance
// mechanism). This preserves message counts, hop patterns and
// serialization without the full transient-state race matrix.
package proto

import (
	"fmt"
	"math/bits"

	"repro/internal/cache"
	"repro/internal/memctrl"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/topo"
)

// MissClass categorizes how an L1 miss was resolved, for the Figure 9b
// breakdown.
type MissClass int

// The six Figure 9b categories.
const (
	MissPredOwner      MissClass = iota // predicted; reached the owner directly
	MissPredProvider                    // predicted; reached a provider in the area
	MissPredFail                        // predicted wrong; resolved via the home
	MissUnpredOwner                     // unpredicted; home forwarded to an L1 owner
	MissUnpredProvider                  // unpredicted; a provider ended up supplying
	MissUnpredHome                      // unpredicted; home L2 or memory supplied
	NumMissClasses
)

// MissClassNames gives the Figure 9b legend strings.
var MissClassNames = [NumMissClasses]string{
	"pred-owner", "pred-provider", "pred-fail",
	"unpred-owner", "unpred-provider", "unpred-home",
}

// Engine is the interface the cores drive. Access runs the full cache
// hierarchy + coherence for one memory reference and calls onDone when
// the reference retires. At most one reference per tile may be
// outstanding (the cores are in-order and blocking).
type Engine interface {
	Name() string
	Access(tile topo.Tile, addr cache.Addr, write bool, onDone func())
	// Stats returns the engine's event counters (power events plus
	// protocol counters).
	Stats() *stats.Set
	// MissProfile returns per-class miss counts and link traversals.
	MissProfile() MissProfile
	// CheckInvariants panics with a description if the global
	// coherence state is inconsistent; used by the test suite.
	CheckInvariants()
	// ForEachCopy visits every valid cached copy of addr (L1s, plus
	// the home L2 bank) without touching access counters. Runtime
	// checkers use it to verify the SWMR invariant mid-simulation.
	ForEachCopy(addr cache.Addr, fn func(CopyInfo))
	// ForEachPending visits every outstanding MSHR entry on the chip.
	ForEachPending(fn func(tile topo.Tile, e *cache.MSHREntry))
}

// CopyInfo describes one cached copy of a block for ForEachCopy.
type CopyInfo struct {
	Tile      topo.Tile
	L2        bool // copy lives in the home L2 bank, not an L1
	Owner     bool // copy holds ownership in this protocol's sense
	Exclusive bool // copy is writable (M/E-class state)
	// Pending marks a copy whose tile has an in-flight MSHR entry for
	// the block (e.g. an ownership upgrade whose acks are still
	// outstanding): its state is transient, not settled.
	Pending bool
	Dirty   bool
	State   cache.State
}

// Observer receives retirement and completion events from an engine.
// The shadow-memory checker in internal/check implements it; a nil
// observer costs one pointer test per retirement and nothing else.
type Observer interface {
	// Retired is called exactly once per reference, at the simulation
	// time the reference semantically reads or writes the block: at
	// lookup time for hits, at fill/upgrade completion for misses.
	// invalidated reports that an invalidation hit the block while the
	// miss was in flight; for reads the filled line is being discarded
	// (the racing write serialized after this read).
	Retired(tile topo.Tile, addr cache.Addr, write, hit, invalidated bool)
}

// MissProfile aggregates the Figure 9b data.
type MissProfile struct {
	Count [NumMissClasses]uint64
	Links [NumMissClasses]uint64
	Hits  uint64 // L1 hits, for rate computations
}

// TotalMisses sums the class counts.
func (m MissProfile) TotalMisses() uint64 {
	var t uint64
	for _, c := range m.Count {
		t += c
	}
	return t
}

// MeanLinks returns the average links traversed by misses of class c.
func (m MissProfile) MeanLinks(c MissClass) float64 {
	if m.Count[c] == 0 {
		return 0
	}
	return float64(m.Links[c]) / float64(m.Count[c])
}

// Config collects the structural parameters shared by all protocols.
type Config struct {
	L1Sets, L1Ways   int
	L2Sets, L2Ways   int
	CCSets, CCWays   int // L1C$, L2C$ and directory cache geometry
	L1HitLatency     sim.Time
	L2TagLatency     sim.Time
	L2DataLatency    sim.Time
	BroadcastUnicast bool // emulate missing hardware broadcast (ablation)
	NoPrediction     bool // disable the L1C$ supplier prediction (ablation)
}

// DefaultConfig is Table III: 128 KB 4-way L1, 1 MB 8-way L2 bank,
// 2048-entry coherence caches, 1+2 cycle L1 and 2+3 cycle L2.
func DefaultConfig() Config {
	return Config{
		L1Sets: 512, L1Ways: 4,
		L2Sets: 2048, L2Ways: 8,
		CCSets: 512, CCWays: 4,
		L1HitLatency:  3,
		L2TagLatency:  2,
		L2DataLatency: 3,
	}
}

// PowerHandles holds pre-resolved counter handles for the power-event
// namespace of internal/power — the engines' hottest increment sites.
// bindPower resolves each handle exactly once per Context, so an event
// on the protocol fast path is a direct pointer bump instead of a map
// lookup in stats.Set. The counter names (and hence the export
// namespace seen by the power model and the obs manifest) are
// unchanged: handle X still feeds the counter power.EvX addresses.
type PowerHandles struct {
	L1TagRead, L1TagWrite   *stats.Counter
	L1DataRead, L1DataWrite *stats.Counter
	L2TagRead, L2TagWrite   *stats.Counter
	L2DataRead, L2DataWrite *stats.Counter
	DirRead, DirWrite       *stats.Counter
	L1CAccess, L1CUpdate    *stats.Counter
	L2CAccess, L2CUpdate    *stats.Counter
}

// Context wires one protocol engine to its chip.
type Context struct {
	Kernel *sim.Kernel
	Net    *mesh.Network
	Areas  *topo.Areas
	Mem    *memctrl.Controllers
	Cfg    Config

	Counters stats.Set
	Profile  MissProfile

	// pw is the pre-resolved power-event counter set; every engine
	// constructor calls bindPower before first use.
	pw PowerHandles

	// Observer, when non-nil, receives every reference retirement
	// (see Observer). It must not schedule events or mutate protocol
	// state, so an armed observer cannot perturb simulated timing.
	Observer Observer

	// Spans, when non-nil, is the causal transaction tracer: every L1
	// miss opens a span whose ID rides the kernel's causal tag through
	// the whole transaction (see internal/telemetry). The tracer never
	// schedules events, so arming it cannot perturb simulated timing.
	Spans *telemetry.Tracer

	// Census, when non-nil, is the cross-shard touch census: every
	// engine registers its synchronous remote-tile access sites at
	// construction (CensusSite) and counts them on the hot path. Pure
	// observation — it never schedules events or mutates protocol
	// state, so an armed census cannot perturb simulated timing.
	Census *telemetry.Census

	// Per-VM attribution state (EnablePerVM), all nil when off. The
	// hot-path power sites charge ctx.pw unconditionally; chargeVM
	// points pw at the requesting VM's bank, so the ~200 existing
	// charge sites attribute per VM with no per-site change. The union
	// of the banks plus the globals is exactly the off-mode counter
	// set: FoldPerVM merges the banks back before results are built.
	vmOf      []int          // tile -> VM
	vmBanks   []*stats.Set   // one power-counter bank per VM
	vmPW      []PowerHandles // pre-resolved handles into each bank
	vmCur     int            // VM currently charged
	vmFlits   []uint64       // per-VM flit x link crossings (unicast sends)
	vmRouters []uint64       // per-VM router traversals (unicast sends)

	// TraceEnabled arms the debug event log for block TraceAddr.
	// An explicit flag, not the TraceAddr zero value: block 0 is a
	// valid address and must be traceable.
	TraceEnabled bool
	TraceAddr    cache.Addr
	TraceOut     func(string)

	// Lane routing (SetLanes / ArmLanes / FoldLanes). When armed, At
	// resolves the executing tile to a per-lane Context view whose
	// Kernel is the tile's lane and whose Counters/Profile are private
	// banks, so every handler's downstream increments and schedules are
	// lane-local with no per-site change. Disarmed (serial and merge
	// executors), At returns the root context and behavior is
	// bit-for-bit the pre-lane engine.
	laneOf    []int
	lanes     []*sim.Kernel
	laneCtx   []*Context // non-nil = armed; shared by root and views
	laneViews []*Context // cached views, rebuilt only on SetLanes

	// freeMemOp pools the deferred DRAM-access nodes (per context, so
	// per lane when armed: each list is single-threaded).
	freeMemOp *memOp
}

// SetTrace arms tracing for one block address.
func (c *Context) SetTrace(a cache.Addr, out func(string)) {
	c.TraceEnabled = true
	c.TraceAddr = a
	c.TraceOut = out
}

// tracing reports whether Trace would log for a. Hot paths guard
// their Trace calls with it: the variadic args of an unguarded call
// are boxed into an escaping []any by the caller even when tracing is
// disabled, which made Trace the dominant allocation site.
func (c *Context) tracing(a cache.Addr) bool {
	return c.TraceEnabled && c.TraceOut != nil && a == c.TraceAddr
}

// Trace logs a protocol event for the traced address.
func (c *Context) Trace(a cache.Addr, format string, args ...any) {
	if !c.tracing(a) {
		return
	}
	c.TraceOut(fmt.Sprintf("t=%-8d %s", c.Kernel.Now(), fmt.Sprintf(format, args...)))
}

// spanBegin opens a tracing span for a miss issued at tile and makes
// it the kernel's current causal tag.
func (c *Context) spanBegin(tile topo.Tile, addr cache.Addr, write bool) {
	if c.Spans != nil {
		c.Spans.BeginMiss(tile, uint64(addr), write)
	}
}

// spanEnd closes the tile's open span with its resolved miss class.
func (c *Context) spanEnd(tile topo.Tile, class MissClass, dropped bool) {
	if c.Spans != nil {
		c.Spans.EndMiss(tile, MissClassNames[class], dropped)
	}
}

// spanRetry annotates the current span with a NACK-and-retry round.
func (c *Context) spanRetry(tile topo.Tile) {
	if c.Spans != nil {
		c.Spans.Retry(tile)
	}
}

// spanEvent appends a named protocol annotation to the current span.
func (c *Context) spanEvent(name string, tile topo.Tile) {
	if c.Spans != nil {
		c.Spans.Annotate(name, tile)
	}
}

// observeRetired forwards one retirement to the observer, if any.
func (c *Context) observeRetired(tile topo.Tile, addr cache.Addr, write, hit, dropped bool) {
	if c.Observer != nil {
		c.Observer.Retired(tile, addr, write, hit, dropped)
	}
}

// NumTiles returns the tile count of the chip.
func (c *Context) NumTiles() int { return c.Net.Grid().Tiles() }

// BankShift returns the number of low address bits used to select the
// home bank; per-bank structures skip them when indexing sets.
func (c *Context) BankShift() uint {
	s := uint(0)
	for 1<<s < c.NumTiles() {
		s++
	}
	return s
}

// HomeOf returns the home L2 bank of a block (address-interleaved
// across all banks, as in the paper).
func (c *Context) HomeOf(a cache.Addr) topo.Tile {
	return topo.Tile(uint64(a) % uint64(c.NumTiles()))
}

// bindPower resolves the power-event counter handles. Registering
// every name up front (in the power package's declaration order) also
// fixes the counter namespace: all four protocols export the same
// counter set in the same order, which keeps manifests comparable
// across protocols.
func (c *Context) bindPower() {
	if c.pw.L1TagRead != nil {
		return
	}
	// Always register the 14 names on the global set first (fixes the
	// export namespace even when every charge lands in a per-VM bank),
	// then, with per-VM attribution armed, start charging VM 0's bank
	// so no pre-first-chargeVM activity bypasses the split.
	c.pw = bindBank(&c.Counters)
	if c.vmPW != nil {
		c.pw = c.vmPW[c.vmCur]
	}
}

// bindBank resolves a PowerHandles set into an arbitrary counter set
// (bindPower's body, reused for the per-VM banks so every bank
// registers the same 14 names in the same order as the globals).
func bindBank(s *stats.Set) PowerHandles {
	return PowerHandles{
		L1TagRead: s.Handle(power.EvL1TagRead), L1TagWrite: s.Handle(power.EvL1TagWrite),
		L1DataRead: s.Handle(power.EvL1DataRead), L1DataWrite: s.Handle(power.EvL1DataWrite),
		L2TagRead: s.Handle(power.EvL2TagRead), L2TagWrite: s.Handle(power.EvL2TagWrite),
		L2DataRead: s.Handle(power.EvL2DataRead), L2DataWrite: s.Handle(power.EvL2DataWrite),
		DirRead: s.Handle(power.EvDirRead), DirWrite: s.Handle(power.EvDirWrite),
		L1CAccess: s.Handle(power.EvL1CAccess), L1CUpdate: s.Handle(power.EvL1CUpdate),
		L2CAccess: s.Handle(power.EvL2CAccess), L2CUpdate: s.Handle(power.EvL2CUpdate),
	}
}

// EnablePerVM arms per-VM attribution: one counter bank per VM, with
// the hot-path handle set (ctx.pw) re-pointed at the requesting VM's
// bank on every handler entry (chargeVM). Must be called before the
// engine is constructed, so bindPower still resolves the global
// handles first. Cold by-name charges (Ev/EvN) stay global — the
// documented undercount of the per-VM split — and activity before the
// first chargeVM of a run lands on VM 0.
func (c *Context) EnablePerVM(vmOf []int, numVMs int) {
	c.vmOf = vmOf
	c.vmBanks = make([]*stats.Set, numVMs)
	c.vmPW = make([]PowerHandles, numVMs)
	for v := range c.vmBanks {
		c.vmBanks[v] = &stats.Set{}
		c.vmPW[v] = bindBank(c.vmBanks[v])
	}
	c.vmFlits = make([]uint64, numVMs)
	c.vmRouters = make([]uint64, numVMs)
	c.vmCur = 0
}

// chargeVM attributes subsequent power events and sends to the VM
// owning tile t (the requestor of the transaction being handled).
// One pointer test when per-VM attribution is off.
func (c *Context) chargeVM(t topo.Tile) {
	if c.vmPW == nil {
		return
	}
	if vm := c.vmOf[t]; vm != c.vmCur {
		c.vmCur = vm
		c.pw = c.vmPW[vm]
	}
}

// vmSend attributes one unicast's network activity to the charged VM,
// mirroring the mesh's own accounting (hops x flits link crossings,
// hops+1 router traversals).
func (c *Context) vmSend(d mesh.Delivery, flits int) {
	if c.vmFlits == nil {
		return
	}
	c.vmFlits[c.vmCur] += uint64(d.Hops * flits)
	c.vmRouters[c.vmCur] += uint64(d.Routers)
}

// PerVMBanks returns the per-VM counter banks (nil when off).
func (c *Context) PerVMBanks() []*stats.Set { return c.vmBanks }

// PerVMNet returns the charged VM's unicast network activity.
func (c *Context) PerVMNet(vm int) (flits, routers uint64) {
	return c.vmFlits[vm], c.vmRouters[vm]
}

// ResetPerVM discards per-VM attribution collected so far (the
// warmup/measure boundary).
func (c *Context) ResetPerVM() {
	for v, b := range c.vmBanks {
		b.Reset()
		c.vmFlits[v] = 0
		c.vmRouters[v] = 0
	}
}

// FoldPerVM merges every VM bank back into the global counters. The
// run loop calls it exactly once, when the measured phase ends:
// afterwards the global set holds exactly the values an off-mode run
// produces, and the banks still hold the per-VM split for the result.
func (c *Context) FoldPerVM() {
	for _, b := range c.vmBanks {
		c.Counters.Merge(b)
	}
}

// CensusSite registers a touch site with the armed census, or returns
// nil (a nil TouchSite's Touch is one pointer test).
func (c *Context) CensusSite(engine, handler, structure string) *telemetry.TouchSite {
	if c.Census == nil {
		return nil
	}
	return c.Census.Site(engine, handler, structure)
}

// SetLanes registers the sharded lane kernels and the tile->lane map.
// The system calls it once at construction whenever the run is
// sharded; it only takes effect for a phase when ArmLanes is called.
func (c *Context) SetLanes(laneOf []int, lanes []*sim.Kernel) {
	c.laneOf = laneOf
	c.lanes = lanes
	c.laneViews = nil
	c.laneCtx = nil
}

// ArmLanes switches At to per-lane context views for a RunParallel
// phase. Views share the chip (Net, Areas, Mem, Cfg, Census) but own
// their Kernel, Counters, Profile and power handles; tracing, spans,
// the observer and per-VM attribution stay root-only, which is safe
// because the parallel executor is only eligible when they are off.
func (c *Context) ArmLanes() {
	if c.lanes == nil || c.laneCtx != nil {
		return
	}
	if c.laneViews == nil {
		c.laneViews = make([]*Context, len(c.lanes))
		for i, k := range c.lanes {
			v := &Context{
				Kernel: k,
				Net:    c.Net,
				Areas:  c.Areas,
				Mem:    c.Mem,
				Cfg:    c.Cfg,
				Census: c.Census,
				laneOf: c.laneOf,
				lanes:  c.lanes,
			}
			v.pw = bindBank(&v.Counters)
			c.laneViews[i] = v
		}
	}
	c.laneCtx = c.laneViews
	for _, v := range c.laneViews {
		v.laneCtx = c.laneViews
	}
}

// FoldLanes merges every lane view's counters and miss profile back
// into the root context and disarms the views. The parallel run loop
// calls it at each phase boundary, so results, snapshots and
// crosscheck fingerprints always read the folded root set.
func (c *Context) FoldLanes() {
	if c.laneCtx == nil {
		return
	}
	for _, v := range c.laneViews {
		v.laneCtx = nil
		c.Counters.Merge(&v.Counters)
		v.Counters.Reset()
		for i := range v.Profile.Count {
			c.Profile.Count[i] += v.Profile.Count[i]
			c.Profile.Links[i] += v.Profile.Links[i]
		}
		c.Profile.Hits += v.Profile.Hits
		v.Profile = MissProfile{}
	}
	c.laneCtx = nil
}

// At resolves the context view for a handler executing at tile t:
// the tile's lane view when lanes are armed, the root context
// otherwise. Every engine handler binds its working context through
// At at entry — that single line is what makes all its downstream
// counter bumps, sends and schedules lane-local under RunParallel.
func (c *Context) At(t topo.Tile) *Context {
	if c.laneCtx == nil {
		return c
	}
	return c.laneCtx[c.laneOf[t]]
}

// Lane returns the executor lane that runs tile t's handlers (0 when
// the run is not sharded). The engines' message pools index by lane,
// not tile: a pool is only ever touched by its own lane, and within a
// lane takes and puts balance regardless of which tiles exchange the
// nodes — per-tile pools would leak nodes toward sink tiles (homes)
// and allocate forever at source tiles.
func (c *Context) Lane(t topo.Tile) int {
	if c.laneOf == nil {
		return 0
	}
	return c.laneOf[t]
}

// memOp is one pooled deferred DRAM access (see MemFetch/MemFlush).
type memOp struct {
	next *memOp
	c    *Context
	fn   func(any)
	arg  any
	at   sim.Time
	tag  uint64
}

// MemFetch models a DRAM read at the executing memory-controller
// tile: fn(arg) runs on that tile's lane after the sampled read
// latency. Inside a RunParallel window the latency draw itself is
// deferred to the window barrier — the controllers' random stream and
// read counter are chip-global, so sampling in merged event order is
// what keeps them identical to the serial executor — and the response
// is injected with its barrier-reserved sequence number.
func (c *Context) MemFetch(fn func(any), arg any) {
	k := c.Kernel
	if !k.Deferring() {
		k.AfterArg(c.Mem.ReadLatency(), fn, arg)
		return
	}
	op := c.freeMemOp
	if op == nil {
		op = &memOp{}
	} else {
		c.freeMemOp = op.next
	}
	op.c, op.fn, op.arg, op.at, op.tag = c, fn, arg, k.Now(), k.Tag()
	k.Defer(1, resolveMemFetch, op)
}

func resolveMemFetch(a any, seqBase uint64) {
	op := a.(*memOp)
	c := op.c
	lat := c.Mem.ReadLatency()
	c.Kernel.InjectResolved(op.at+lat, seqBase, op.tag, op.fn, op.arg)
	op.fn, op.arg = nil, nil
	op.next, c.freeMemOp = c.freeMemOp, op
}

// MemFlush models a DRAM writeback at the executing controller tile:
// the write latency is drawn and discarded (no event depends on it),
// but the draw still advances the chip-global random stream and write
// counter, so inside a window it is deferred to the barrier to keep
// the stream in merged order.
func (c *Context) MemFlush() {
	k := c.Kernel
	if !k.Deferring() {
		c.Mem.WriteLatency()
		return
	}
	k.Defer(0, resolveMemFlush, c)
}

func resolveMemFlush(a any, _ uint64) {
	a.(*Context).Mem.WriteLatency()
}

// Ev increments a power event counter by name (cold paths; hot sites
// use the pre-resolved PowerHandles).
func (c *Context) Ev(name string) { c.Counters.Inc(name) }

// EvN adds n to a power event counter.
func (c *Context) EvN(name string, n uint64) { c.Counters.Add(name, n) }

// SendCtl sends a 1-flit control message and runs fn on delivery,
// returning the delivery metadata.
func (c *Context) SendCtl(src, dst topo.Tile, fn func()) mesh.Delivery {
	d := c.Net.Send(src, dst, c.Net.Config().ControlFlits, fn)
	c.vmSend(d, c.Net.Config().ControlFlits)
	return d
}

// SendData sends a 5-flit data message and runs fn on delivery.
func (c *Context) SendData(src, dst topo.Tile, fn func()) mesh.Delivery {
	d := c.Net.Send(src, dst, c.Net.Config().DataFlits, fn)
	c.vmSend(d, c.Net.Config().DataFlits)
	return d
}

// SendCtlArg sends a 1-flit control message through the kernel's
// non-capturing fast path: fn(arg) runs on delivery. The engines use
// it with a long-lived handler adapter for their hottest sender — the
// per-miss request to the home — so no closure is built per message.
func (c *Context) SendCtlArg(src, dst topo.Tile, fn func(any), arg any) mesh.Delivery {
	d := c.Net.SendArg(src, dst, c.Net.Config().ControlFlits, fn, arg)
	c.vmSend(d, c.Net.Config().ControlFlits)
	return d
}

// SendDataArg sends a 5-flit data message through the non-capturing
// fast path: fn(arg) runs on delivery. With a pooled argument node the
// send allocates nothing.
func (c *Context) SendDataArg(src, dst topo.Tile, fn func(any), arg any) mesh.Delivery {
	d := c.Net.SendArg(src, dst, c.Net.Config().DataFlits, fn, arg)
	c.vmSend(d, c.Net.Config().DataFlits)
	return d
}

// tileState is the per-tile storage all protocols share (each uses the
// subset it needs).
type tileState struct {
	l1   *cache.Cache
	l2   *cache.Cache
	dir  *cache.DirCache     // directory cache (flat directory only)
	l1c  *cache.PointerCache // supplier predictions
	l2c  *cache.PointerCache // precise owner pointers
	mshr *cache.MSHR

	// tx holds all transient per-block state of this tile — the
	// stalled L1/home waiter queues, the home-busy and blocked flags
	// and the recall mark — in pooled records (see txtable.go). The
	// accessors below are the only way in.
	tx txTable

	// stamps is the per-block ownership-update stamp store (the
	// stale-update guard). Stamps persist for the whole run, so they
	// live in a flat open-addressed table instead of pinning txRecords.
	stamps stampTable
}

func newTileState(cfg Config, bankShift uint) *tileState {
	l2 := cache.New("l2", cfg.L2Sets, cfg.L2Ways)
	l2.SetIndexShift(bankShift)
	l2c := cache.NewPointerCache("l2c", cfg.CCSets, cfg.CCWays)
	l2c.SetIndexShift(bankShift)
	return &tileState{
		l1:  cache.New("l1", cfg.L1Sets, cfg.L1Ways),
		l2:  l2,
		l1c: cache.NewPointerCache("l1c", cfg.CCSets, cfg.CCWays),
		l2c: l2c,
		// Unlimited capacity is safe because the blocking in-order core
		// model keeps at most a handful of misses in flight per tile;
		// MSHR lookups are linear scans, so a future core model with
		// high miss-level parallelism should set a real capacity (or the
		// MSHR should grow an index) before raising this.
		mshr:   cache.NewMSHR(0),
		tx:     newTxTable(),
		stamps: newStampTable(),
	}
}

// stallL1 queues fn to re-run when the L1's outstanding transaction on
// a completes.
func (t *tileState) stallL1(a cache.Addr, fn func()) {
	t.stallL1Arg(a, runClosure, fn)
}

// stallL1Arg is stallL1 in the kernel's non-capturing form: fn(arg)
// runs at wake. Hot callers pass a pooled argument node and a
// long-lived handler so the stall allocates nothing.
func (t *tileState) stallL1Arg(a cache.Addr, fn func(any), arg any) {
	r := t.tx.ensure(a)
	w := t.tx.getWaiter(fn, arg)
	if r.l1Tail == nil {
		r.l1Head = w
	} else {
		r.l1Tail.next = w
	}
	r.l1Tail = w
}

// wakeL1 reschedules everything stalled on a at this L1, in stall
// (FIFO) order.
func (t *tileState) wakeL1(k *sim.Kernel, a cache.Addr) {
	r := t.tx.get(a)
	if r == nil || r.l1Head == nil {
		return
	}
	w := r.l1Head
	r.l1Head, r.l1Tail = nil, nil
	for w != nil {
		next := w.next
		k.AfterArg(1, w.fn, w.arg)
		t.tx.putWaiter(w)
		w = next
	}
	t.tx.maybeRelease(r)
}

// stallHome queues fn at the home bank until the block's home state
// changes.
func (t *tileState) stallHome(a cache.Addr, fn func()) {
	t.stallHomeArg(a, runClosure, fn)
}

// stallHomeArg is stallHome in the non-capturing form.
func (t *tileState) stallHomeArg(a cache.Addr, fn func(any), arg any) {
	r := t.tx.ensure(a)
	w := t.tx.getWaiter(fn, arg)
	if r.homeTail == nil {
		r.homeHead = w
	} else {
		r.homeTail.next = w
	}
	r.homeTail = w
}

// wakeHome reschedules requests stalled at this home bank on a, in
// stall (FIFO) order.
func (t *tileState) wakeHome(k *sim.Kernel, a cache.Addr) {
	r := t.tx.get(a)
	if r == nil || r.homeHead == nil {
		return
	}
	w := r.homeHead
	r.homeHead, r.homeTail = nil, nil
	for w != nil {
		next := w.next
		k.AfterArg(1, w.fn, w.arg)
		t.tx.putWaiter(w)
		w = next
	}
	t.tx.maybeRelease(r)
}

// homeBusy reports whether a home-serialized operation (chip-wide
// invalidation, broadcast, recall) is in progress on a at this bank.
func (t *tileState) homeBusy(a cache.Addr) bool {
	r := t.tx.get(a)
	return r != nil && r.flags&txHomeBusy != 0
}

func (t *tileState) setHomeBusy(a cache.Addr) { t.tx.ensure(a).flags |= txHomeBusy }

func (t *tileState) clearHomeBusy(a cache.Addr) {
	if r := t.tx.get(a); r != nil {
		r.flags &^= txHomeBusy
		t.tx.maybeRelease(r)
	}
}

// blocked reports whether a is frozen at this L1 by DiCo-Arin's
// three-phase broadcast.
func (t *tileState) blocked(a cache.Addr) bool {
	r := t.tx.get(a)
	return r != nil && r.flags&txBlocked != 0
}

func (t *tileState) setBlocked(a cache.Addr) { t.tx.ensure(a).flags |= txBlocked }

func (t *tileState) clearBlocked(a cache.Addr) {
	if r := t.tx.get(a); r != nil {
		r.flags &^= txBlocked
		t.tx.maybeRelease(r)
	}
}

// recallMarked reports whether an ownership recall is in flight for a
// at this home bank.
func (t *tileState) recallMarked(a cache.Addr) bool {
	r := t.tx.get(a)
	return r != nil && r.flags&txRecall != 0
}

func (t *tileState) markRecall(a cache.Addr) { t.tx.ensure(a).flags |= txRecall }

func (t *tileState) clearRecall(a cache.Addr) {
	if r := t.tx.get(a); r != nil {
		r.flags &^= txRecall
		t.tx.maybeRelease(r)
	}
}

// stampIfNewer records an ownership-update stamp for a and reports
// whether it is current: it returns false — leaving the stored stamp
// alone — when a strictly newer update was already applied, the guard
// the homes use to drop stale in-flight ownership updates.
func (t *tileState) stampIfNewer(a cache.Addr, s sim.Time) bool {
	if old, ok := t.stamps.get(a); ok && old > s {
		return false
	}
	t.stamps.set(a, s)
	return true
}

// setStamp unconditionally records an ownership-update stamp for a.
func (t *tileState) setStamp(a cache.Addr, s sim.Time) {
	t.stamps.set(a, s)
}

// pendingL1Len / pendingHomeLen report queue depths for debug dumps.
func (t *tileState) pendingL1Len(a cache.Addr) int {
	r := t.tx.get(a)
	if r == nil {
		return 0
	}
	n := 0
	for w := r.l1Head; w != nil; w = w.next {
		n++
	}
	return n
}

func (t *tileState) pendingHomeLen(a cache.Addr) int {
	r := t.tx.get(a)
	if r == nil {
		return 0
	}
	n := 0
	for w := r.homeHead; w != nil; w = w.next {
		n++
	}
	return n
}

// maxForwards bounds request forwarding before the request backs off
// and retries from the home — the paper's deadlock-avoidance
// mechanism.
const maxForwards = 4

// retryBackoff is the delay before a request that forwarded too many
// times retries from scratch at the home. A plain stall would risk a
// lost wakeup (the state may have settled just before the stall);
// NACK-and-retry guarantees progress.
const retryBackoff sim.Time = 48

// bit returns a bit mask for tile t within a full-map vector.
func bit(t topo.Tile) uint64 { return 1 << uint(t) }

// areaBit returns the bit for t within its area's local vector.
func areaBit(areas *topo.Areas, t topo.Tile) uint64 {
	return 1 << uint(areas.IndexInArea(t))
}

// forEachBit calls fn for every set bit index of v, in ascending
// order (the order matters for deterministic replay).
func forEachBit(v uint64, fn func(i int)) {
	for v != 0 {
		i := bits.TrailingZeros64(v)
		fn(i)
		v &^= 1 << uint(i)
	}
}

// popcount returns the number of set bits.
func popcount(v uint64) int { return bits.OnesCount64(v) }

// forEachPending visits every outstanding MSHR entry across tiles;
// shared by the four engines' ForEachPending.
func forEachPending(tiles []*tileState, fn func(tile topo.Tile, e *cache.MSHREntry)) {
	for i, t := range tiles {
		tile := topo.Tile(i)
		t.mshr.ForEach(func(e *cache.MSHREntry) { fn(tile, e) })
	}
}

// forEachCopy visits every valid copy of addr using Peek (no access
// accounting), classifying each L1 line through the engine-specific
// classify callback; shared by the four engines' ForEachCopy.
func forEachCopy(tiles []*tileState, home topo.Tile, addr cache.Addr,
	classify func(l *cache.Line) (owner, exclusive bool), fn func(CopyInfo)) {
	for i, t := range tiles {
		if l := t.l1.Peek(addr); l != nil {
			owner, excl := classify(l)
			_, pending := t.mshr.Lookup(addr)
			fn(CopyInfo{Tile: topo.Tile(i), Owner: owner, Exclusive: excl, Pending: pending, Dirty: l.Dirty, State: l.State})
		}
	}
	if l := tiles[home].l2.Peek(addr); l != nil {
		fn(CopyInfo{Tile: home, L2: true, Dirty: l.Dirty, State: l.State})
	}
}
