package proto

import (
	"fmt"
	"math/bits"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/topo"
)

// L1 states of the flat directory protocol (MESI).
const (
	dirShared cache.State = 1 + iota
	dirExclusive
	dirModified
)

// l2Present marks a valid L2 data line (all protocols).
const l2Present cache.State = 1

// Directory is the paper's baseline: a highly-optimized flat full-map
// directory. Directory information lives in the extra tags of the L2
// (the NCID approach): it can outlive the L2 data block, and only the
// eviction of a directory entry forces chip-wide invalidation.
type Directory struct {
	ctx   *Context
	tiles []*tileState

	// The timestamp of the newest ownership decision applied to a
	// home's directory entry lives in the home tile's transaction
	// table (tileState.setStamp/stampIfNewer). Ownership updates
	// travel the mesh from different source tiles and can arrive out of
	// order; an update whose decision predates the applied one must be
	// dropped or it resurrects a stale owner pointer and every request
	// forwards/bounces forever (found by the stress fuzzer, seed 139).

	// Long-lived adapters for the kernel/mesh argument fast path:
	// protocol hops travel as (fn, *dirMsg) pairs instead of
	// per-message closures. Each adapter unpacks its pooled node,
	// recycles it, and calls the value-typed handler.
	atHomeFn      func(any)
	atOwnerFn     func(any)
	atSharerFn    func(any)
	sharerRetryFn func(any)
	deliverFn     func(any)
	invalFn       func(any)
	ackFn         func(any)
	handoverFn    func(any)
	downgradeFn   func(any)
	evictWbFn     func(any)
	memReqFn      func(any)
	memRespFn     func(any)
	memFillFn     func(any)
	flushFn       func(any)

	// free holds one message pool per tile, indexed by the executing
	// tile: senders take nodes from their own tile's list and delivery
	// handlers recycle into theirs, so no list is ever touched by two
	// lanes (an engine-global pool would race under RunParallel).
	free []*dirMsg

	cen dirCensus
}

// dirCensus holds the engine's registered touch sites: every place a
// directory handler synchronously pokes another tile's MSHR — the
// cross-tile shortcuts that must become scheduled messages before the
// engines can leave the hub lane (ROADMAP item 1). All sites are nil
// when the census is disarmed.
type dirCensus struct {
	fwdOwner, fwdSharer, sharerAcks, fetchMem *telemetry.TouchSite
	ownerBounce, ownerClass, sharerRetry      *telemetry.TouchSite
	deliver, memResp                          *telemetry.TouchSite
}

// NewDirectory builds the directory engine on ctx.
func NewDirectory(ctx *Context) *Directory {
	ctx.bindPower()
	d := &Directory{
		ctx:   ctx,
		tiles: make([]*tileState, ctx.NumTiles()),
		free:  make([]*dirMsg, ctx.NumTiles()),
	}
	d.bindHandlers()
	d.cen = dirCensus{
		fwdOwner:    ctx.CensusSite("directory", "atHome.fwd-owner", "mshr"),
		fwdSharer:   ctx.CensusSite("directory", "homeRead.fwd-sharer", "mshr"),
		sharerAcks:  ctx.CensusSite("directory", "homeWrite.sharer-acks", "mshr"),
		fetchMem:    ctx.CensusSite("directory", "fetchFromMemory", "mshr"),
		ownerBounce: ctx.CensusSite("directory", "atOwner.bounce", "mshr"),
		ownerClass:  ctx.CensusSite("directory", "atOwner.set-class", "mshr"),
		sharerRetry: ctx.CensusSite("directory", "atSharer.retry", "mshr"),
		deliver:     ctx.CensusSite("directory", "deliverData", "mshr"),
		memResp:     ctx.CensusSite("directory", "memResp", "mshr"),
	}
	for i := range d.tiles {
		t := newTileState(ctx.Cfg, ctx.BankShift())
		// Directory information lives with every L2 entry (a full-map
		// vector per line, Table V) plus the NCID directory cache for
		// blocks that are in L1s but not in the L2. The combined
		// tracking structure therefore has L2Entries + CCEntries
		// entries per bank — modelled here as one array with an extra
		// way per L2 set.
		extra := ctx.Cfg.CCWays * ctx.Cfg.CCSets / ctx.Cfg.L2Sets
		if extra < 1 {
			extra = 1
		}
		t.dir = cache.NewDirCache("dir", ctx.Cfg.L2Sets, ctx.Cfg.L2Ways+extra)
		t.dir.SetIndexShift(ctx.BankShift())
		d.tiles[i] = t
	}
	return d
}

// Name implements Engine.
func (d *Directory) Name() string { return "directory" }

// Stats implements Engine.
func (d *Directory) Stats() *stats.Set { return &d.ctx.Counters }

// MissProfile implements Engine.
func (d *Directory) MissProfile() MissProfile { return d.ctx.Profile }

type dirReq struct {
	addr      cache.Addr
	requestor topo.Tile
	write     bool
	forwards  int

	// Ride-along MSHR bookkeeping: instead of the home/owner/sharer
	// synchronously poking the requestor's MSHR as the transaction
	// hops the chip, each leg accumulates its contribution here and
	// the delivery handler applies it on the requestor's own lane.
	links    int16 // mesh links traversed by the request legs
	acks     int16 // sharer acks the write must collect
	clsPlus1 int8  // resolved MissClass + 1 (0 = not resolved yet)
}

// retryReq rebuilds a request for a NACK-and-retry round: the forward
// budget resets, the ride-along bookkeeping accumulated so far stays
// (those hops really happened and must reach the requestor's MSHR).
func retryReq(r dirReq) dirReq {
	r.forwards = 0
	return r
}

// dirMsg is the pooled argument node for the non-capturing message
// path. A *dirMsg boxes into any without allocating, so the hot
// request/forward/deliver/update hops cost no heap traffic; handlers
// unpack the fields they need, recycle the node, then act.
type dirMsg struct {
	next  *dirMsg
	r     dirReq
	tile  topo.Tile   // hop-specific second tile (owner/sharer/requestor)
	state cache.State // deliverData fill state
	dirty bool
	stamp sim.Time // ownership-update stamp
}

// msg takes a node from the executing lane's pool; at must be the
// tile whose lane is running the caller.
func (d *Directory) msg(at topo.Tile, r dirReq) *dirMsg {
	lane := d.ctx.Lane(at)
	m := d.free[lane]
	if m != nil {
		d.free[lane] = m.next
	} else {
		m = &dirMsg{}
	}
	m.r = r
	return m
}

// putMsg recycles a node into the executing lane's pool.
func (d *Directory) putMsg(at topo.Tile, m *dirMsg) {
	lane := d.ctx.Lane(at)
	m.next = d.free[lane]
	d.free[lane] = m
}

// bindHandlers builds the long-lived adapter funcs once; every
// per-message send reuses them with a pooled *dirMsg argument.
func (d *Directory) bindHandlers() {
	d.atHomeFn = func(a any) {
		m := a.(*dirMsg)
		r := m.r
		d.putMsg(d.ctx.HomeOf(r.addr), m)
		d.atHome(r)
	}
	d.atOwnerFn = func(a any) {
		m := a.(*dirMsg)
		r, owner := m.r, m.tile
		d.putMsg(owner, m)
		d.atOwner(r, owner)
	}
	d.atSharerFn = func(a any) {
		m := a.(*dirMsg)
		r, sharer := m.r, m.tile
		d.putMsg(sharer, m)
		d.atSharerSupply(r, sharer)
	}
	// sharerRetryFn runs at the home after a forwarded read found the
	// sharer's copy silently evicted: drop the stale sharer bit and
	// restart the request.
	d.sharerRetryFn = func(a any) {
		m := a.(*dirMsg)
		r, sharer, stamp := m.r, m.tile, m.stamp
		home := d.ctx.HomeOf(r.addr)
		d.putMsg(home, m)
		ctx := d.ctx.At(home)
		ctx.chargeVM(r.requestor)
		d.homeDirUpdate(ctx, home, r.addr, stamp, func(dl *cache.DirEntry) {
			dl.Sharers &^= bit(sharer)
		})
		d.atHome(r)
	}
	d.deliverFn = func(a any) {
		m := a.(*dirMsg)
		r, state, dirty := m.r, m.state, m.dirty
		d.putMsg(r.requestor, m)
		ctx := d.ctx.At(r.requestor)
		ctx.chargeVM(r.requestor)
		d.cen.deliver.Touch(int(r.requestor), int(r.requestor))
		d.fillL1(ctx, r.requestor, r.addr, state, dirty)
		if e, ok := d.tiles[r.requestor].mshr.Lookup(r.addr); ok {
			e.DataReceived = true
			e.Links += int(r.links)
			e.SharerAcks += int(r.acks)
			if r.clsPlus1 != 0 {
				e.Tag = int(r.clsPlus1 - 1)
			}
		}
		d.maybeComplete(ctx, r.requestor, r.addr)
	}
	d.invalFn = func(a any) {
		m := a.(*dirMsg)
		sharer, addr, requestor := m.tile, m.r.addr, m.r.requestor
		d.putMsg(sharer, m)
		d.ctx.At(sharer).chargeVM(requestor)
		d.invalidateAtL1(sharer, addr, requestor)
	}
	d.ackFn = func(a any) {
		m := a.(*dirMsg)
		requestor, addr := m.tile, m.r.addr
		d.putMsg(requestor, m)
		ctx := d.ctx.At(requestor)
		ctx.chargeVM(requestor)
		d.ackAtRequestor(ctx, requestor, addr)
	}
	// handoverFn applies the write-handover directory update at the
	// home: the forwarded write made m.tile the new exclusive owner.
	d.handoverFn = func(a any) {
		m := a.(*dirMsg)
		addr, stamp, newOwner := m.r.addr, m.stamp, m.tile
		home := d.ctx.HomeOf(addr)
		d.putMsg(home, m)
		ctx := d.ctx.At(home)
		ctx.chargeVM(newOwner)
		th := d.tiles[home]
		if !th.stampIfNewer(addr, stamp) {
			if ctx.tracing(addr) {
				ctx.Trace(addr, "stale dir update dropped (stamp %d)", stamp)
			}
			th.wakeHome(ctx.Kernel, addr)
			return
		}
		if dl := th.dir.Peek(addr); dl != nil {
			dl.Owner = int16(newOwner)
			dl.Sharers = bit(newOwner)
			ctx.pw.DirWrite.Inc()
			if ctx.tracing(addr) {
				ctx.Trace(addr, "homeDirUpdate -> owner=%d sharers=%#x (stamp %d)", dl.Owner, dl.Sharers, stamp)
			}
		}
		th.wakeHome(ctx.Kernel, addr)
	}
	// downgradeFn applies the read-downgrade update: the old owner
	// (m.tile) became a sharer alongside the requestor, and its data
	// writeback lands in the home L2 (or memory if superseded).
	d.downgradeFn = func(a any) {
		m := a.(*dirMsg)
		addr, stamp, owner, requestor, dirty := m.r.addr, m.stamp, m.tile, m.r.requestor, m.dirty
		home := d.ctx.HomeOf(addr)
		d.putMsg(home, m)
		ctx := d.ctx.At(home)
		ctx.chargeVM(requestor)
		th := d.tiles[home]
		if !th.stampIfNewer(addr, stamp) {
			if ctx.tracing(addr) {
				ctx.Trace(addr, "stale dir update dropped (stamp %d)", stamp)
			}
			th.wakeHome(ctx.Kernel, addr)
			if dirty {
				mc := ctx.Mem.For(addr)
				ctx.SendDataArg(home, mc, d.flushFn, mc)
			}
			return
		}
		if dl := th.dir.Peek(addr); dl != nil {
			dl.Owner = -1
			dl.Sharers |= bit(owner) | bit(requestor)
			ctx.pw.DirWrite.Inc()
			if ctx.tracing(addr) {
				ctx.Trace(addr, "homeDirUpdate -> owner=%d sharers=%#x (stamp %d)", dl.Owner, dl.Sharers, stamp)
			}
		}
		th.wakeHome(ctx.Kernel, addr)
		d.insertL2Data(ctx, home, addr, dirty)
	}
	// evictWbFn applies an owned-eviction update: m.tile gave up the
	// block entirely.
	d.evictWbFn = func(a any) {
		m := a.(*dirMsg)
		addr, stamp, tile, dirty := m.r.addr, m.stamp, m.tile, m.dirty
		home := d.ctx.HomeOf(addr)
		d.putMsg(home, m)
		ctx := d.ctx.At(home)
		ctx.chargeVM(tile)
		th := d.tiles[home]
		if !th.stampIfNewer(addr, stamp) {
			if ctx.tracing(addr) {
				ctx.Trace(addr, "stale dir update dropped (stamp %d)", stamp)
			}
			th.wakeHome(ctx.Kernel, addr)
			if dirty {
				mc := ctx.Mem.For(addr)
				ctx.SendDataArg(home, mc, d.flushFn, mc)
			}
			return
		}
		if dl := th.dir.Peek(addr); dl != nil {
			dl.Owner = -1
			dl.Sharers &^= bit(tile)
			ctx.pw.DirWrite.Inc()
			if ctx.tracing(addr) {
				ctx.Trace(addr, "homeDirUpdate -> owner=%d sharers=%#x (stamp %d)", dl.Owner, dl.Sharers, stamp)
			}
		}
		th.wakeHome(ctx.Kernel, addr)
		d.insertL2Data(ctx, home, addr, dirty)
	}
	// Memory fetch pipeline: request at the controller, latency wait,
	// data hop back through the home, fill + deliver.
	d.memReqFn = func(a any) {
		m := a.(*dirMsg)
		ctx := d.ctx.At(d.ctx.Mem.For(m.r.addr))
		ctx.MemFetch(d.memRespFn, m)
	}
	d.memRespFn = func(a any) {
		m := a.(*dirMsg)
		// Memory data flows through the home: the directory keeps a
		// copy of read data in the shared L2 (deduplicated data is
		// stored once for all VMs), then forwards it on.
		mc := d.ctx.Mem.For(m.r.addr)
		ctx := d.ctx.At(mc)
		ctx.chargeVM(m.r.requestor)
		home := ctx.HomeOf(m.r.addr)
		d.cen.memResp.Touch(int(mc), int(mc))
		d2 := ctx.SendDataArg(mc, home, d.memFillFn, m)
		m.r.links += int16(d2.Hops)
	}
	d.memFillFn = func(a any) {
		m := a.(*dirMsg)
		r := m.r
		home := d.ctx.HomeOf(r.addr)
		d.putMsg(home, m)
		ctx := d.ctx.At(home)
		ctx.chargeVM(r.requestor)
		state, dirty := dirExclusive, false
		if r.write {
			state, dirty = dirModified, true
		}
		if !r.write {
			d.insertL2Data(ctx, home, r.addr, false)
		}
		d.deliverData(ctx, r, home, state, dirty)
	}
	// flushFn runs at the memory controller tile boxed in the argument.
	d.flushFn = func(a any) { d.ctx.At(a.(topo.Tile)).MemFlush() }
}

// Access implements Engine.
func (d *Directory) Access(tile topo.Tile, addr cache.Addr, write bool, onDone func()) {
	ctx := d.ctx.At(tile)
	ctx.chargeVM(tile)
	t := d.tiles[tile]
	if _, pending := t.mshr.Lookup(addr); pending {
		t.stallL1(addr, func() { d.Access(tile, addr, write, onDone) })
		return
	}
	ctx.pw.L1TagRead.Inc()
	if line := t.l1.Lookup(addr); line != nil {
		if !write {
			ctx.pw.L1DataRead.Inc()
			ctx.Profile.Hits++
			ctx.observeRetired(tile, addr, false, true, false)
			ctx.Kernel.After(ctx.Cfg.L1HitLatency, onDone)
			return
		}
		if line.State == dirModified || line.State == dirExclusive {
			line.State = dirModified
			line.Dirty = true
			ctx.pw.L1DataWrite.Inc()
			ctx.Profile.Hits++
			ctx.observeRetired(tile, addr, true, true, false)
			ctx.Kernel.After(ctx.Cfg.L1HitLatency, onDone)
			return
		}
		// Shared copy under a write: ownership upgrade, handled as a
		// regular write miss (responses always carry data; see
		// DESIGN.md, Known simplifications).
	}
	e := t.mshr.Allocate(addr, write, uint64(ctx.Kernel.Now()))
	e.OnComplete = onDone
	e.Tag = int(MissUnpredHome)
	ctx.spanBegin(tile, addr, write)
	home := ctx.HomeOf(addr)
	del := ctx.SendCtlArg(tile, home, d.atHomeFn, d.msg(tile, dirReq{addr: addr, requestor: tile, write: write}))
	e.Links += del.Hops
}

// atHome processes a request at the block's home bank.
func (d *Directory) atHome(r dirReq) {
	home := d.ctx.HomeOf(r.addr)
	ctx := d.ctx.At(home)
	ctx.chargeVM(r.requestor)
	th := d.tiles[home]
	if th.homeBusy(r.addr) {
		th.stallHomeArg(r.addr, d.atHomeFn, d.msg(home, r))
		return
	}
	ctx.pw.L2TagRead.Inc()
	ctx.pw.DirRead.Inc()
	// One probe serves both the lookup and, on a miss, the victim
	// choice for allocDirEntry — same accounting as a Lookup.
	dline, dirVictimAddr, dirHit, dirValid := th.dir.Probe(r.addr)
	th.dir.Accesses++
	if dirHit {
		th.dir.Touch(dline)
	} else {
		th.dir.Misses++
	}
	if dirHit {
		if ctx.tracing(r.addr) {
			ctx.Trace(r.addr, "atHome req=%d write=%v fwd=%d owner=%d sharers=%#x", r.requestor, r.write, r.forwards, dline.Owner, dline.Sharers)
		}
	} else {
		if ctx.tracing(r.addr) {
			ctx.Trace(r.addr, "atHome req=%d write=%v fwd=%d untracked", r.requestor, r.write, r.forwards)
		}
	}
	if !dirHit {
		// Untracked: the block is not cached on chip. Allocate a
		// directory entry (possibly evicting one) and fetch memory.
		// The closure captures a copy of r declared inside this cold
		// branch: capturing the parameter itself would force r to the
		// heap on every atHome call, including the hot tracked paths.
		req := r
		d.allocDirEntry(ctx, home, r.addr, dline, dirVictimAddr, dirValid, func(nl *cache.DirEntry) {
			nl.Owner = int16(req.requestor)
			nl.Sharers = bit(req.requestor)
			d.stampNow(ctx, home, req.addr)
			ctx.pw.DirWrite.Inc()
			d.fetchFromMemory(ctx, req, home)
		})
		return
	}
	if dline.Owner >= 0 {
		owner := topo.Tile(dline.Owner)
		if owner == r.requestor {
			// Our own writeback is still in flight; retry shortly.
			ctx.spanRetry(r.requestor)
			ctx.Kernel.AfterArg(retryBackoff, d.atHomeFn, d.msg(home, retryReq(r)))
			return
		}
		if r.forwards >= maxForwards {
			// Forwarding keeps bouncing (transfer in flight): back off
			// and retry from the home.
			ctx.spanRetry(r.requestor)
			ctx.Kernel.AfterArg(retryBackoff, d.atHomeFn, d.msg(home, retryReq(r)))
			return
		}
		r.forwards++
		ctx.spanEvent("dir-forward-owner", home)
		d.cen.fwdOwner.Touch(int(home), int(home))
		m := d.msg(home, r)
		m.tile = owner
		del := ctx.SendCtlArg(home, owner, d.atOwnerFn, m)
		m.r.links += int16(del.Hops)
		return
	}
	if r.write {
		d.homeWrite(ctx, r, dline)
		return
	}
	d.homeRead(ctx, r, dline)
}

// homeRead serves a read at the home when no exclusive L1 owner exists.
func (d *Directory) homeRead(ctx *Context, r dirReq, dline *cache.DirEntry) {
	home := ctx.HomeOf(r.addr)
	th := d.tiles[home]
	if th.l2.Lookup(r.addr) != nil {
		ctx.pw.L2DataRead.Inc()
		dline.Sharers |= bit(r.requestor)
		ctx.pw.DirWrite.Inc()
		d.deliverData(ctx, r, home, dirShared, false)
		return
	}
	if others := dline.Sharers &^ bit(r.requestor); others != 0 {
		// NCID: data survives only in L1s; forward to a sharer.
		var sharer topo.Tile = -1
		forEachBit(others, func(i int) {
			if sharer < 0 {
				sharer = topo.Tile(i)
			}
		})
		dline.Sharers |= bit(r.requestor)
		ctx.pw.DirWrite.Inc()
		if r.forwards >= maxForwards {
			ctx.spanRetry(r.requestor)
			ctx.Kernel.AfterArg(retryBackoff, d.atHomeFn, d.msg(home, retryReq(r)))
			return
		}
		r.forwards++
		ctx.spanEvent("dir-forward-sharer", home)
		d.cen.fwdSharer.Touch(int(home), int(home))
		m := d.msg(home, r)
		m.tile = sharer
		del := ctx.SendCtlArg(home, sharer, d.atSharerFn, m)
		m.r.links += int16(del.Hops)
		return
	}
	// Stale empty entry: treat as a fresh exclusive fetch.
	dline.Owner = int16(r.requestor)
	dline.Sharers = bit(r.requestor)
	d.stampNow(ctx, home, r.addr)
	ctx.pw.DirWrite.Inc()
	d.fetchFromMemory(ctx, r, home)
}

// homeWrite serves a write at the home when no exclusive L1 owner
// exists: invalidate the sharers, supply data, hand over ownership.
// The expected ack count rides to the requestor with the data message
// instead of being written into its MSHR from here, so the entry's
// SharerAcks may go transiently negative when acks overtake the data —
// which is why it is a counter compared against zero.
func (d *Directory) homeWrite(ctx *Context, r dirReq, dline *cache.DirEntry) {
	home := ctx.HomeOf(r.addr)
	th := d.tiles[home]
	sharers := dline.Sharers &^ bit(r.requestor)
	d.cen.sharerAcks.Touch(int(home), int(home))
	r.acks += int16(popcount(sharers))
	for v := sharers; v != 0; v &= v - 1 {
		sharer := topo.Tile(bits.TrailingZeros64(v))
		m := d.msg(home, dirReq{addr: r.addr, requestor: r.requestor})
		m.tile = sharer
		ctx.SendCtlArg(home, sharer, d.invalFn, m)
	}
	dline.Owner = int16(r.requestor)
	dline.Sharers = bit(r.requestor)
	d.stampNow(ctx, home, r.addr)
	ctx.pw.DirWrite.Inc()
	if l2line := th.l2.Lookup(r.addr); l2line != nil {
		ctx.pw.L2DataRead.Inc()
		// The L2 copy is stale once the new owner writes.
		th.l2.InvalidateLine(l2line)
		ctx.pw.L2TagWrite.Inc()
		d.deliverData(ctx, r, home, dirModified, true)
		return
	}
	d.fetchFromMemory(ctx, r, home)
}

// atOwner handles a forwarded request at the (supposed) exclusive L1
// owner.
func (d *Directory) atOwner(r dirReq, owner topo.Tile) {
	ctx := d.ctx.At(owner)
	ctx.chargeVM(r.requestor)
	to := d.tiles[owner]
	if _, pending := to.mshr.Lookup(r.addr); pending {
		// Capture a copy: r is mutated below, and capturing the
		// parameter itself would force it to the heap on every call.
		req := r
		to.stallL1(r.addr, func() { d.atOwner(req, owner) })
		return
	}
	ctx.pw.L1TagRead.Inc()
	line := to.l1.Lookup(r.addr)
	if line == nil || (line.State != dirModified && line.State != dirExclusive) {
		// Ownership moved (eviction/writeback in flight); bounce back.
		if ctx.tracing(r.addr) {
			ctx.Trace(r.addr, "atOwner %d bounce (req=%d, line gone/demoted)", owner, r.requestor)
		}
		home := ctx.HomeOf(r.addr)
		d.cen.ownerBounce.Touch(int(owner), int(owner))
		m := d.msg(owner, r)
		del := ctx.SendCtlArg(owner, home, d.atHomeFn, m)
		m.r.links += int16(del.Hops)
		return
	}
	home := ctx.HomeOf(r.addr)
	d.cen.ownerClass.Touch(int(owner), int(owner))
	r.clsPlus1 = int8(MissUnpredOwner) + 1
	dirty := line.Dirty
	stamp := ctx.Kernel.Now()
	if r.write {
		// Hand the block over; tell the home about the new owner.
		if ctx.tracing(r.addr) {
			ctx.Trace(r.addr, "atOwner %d hands over to %d", owner, r.requestor)
		}
		to.l1.Invalidate(r.addr)
		ctx.pw.L1TagWrite.Inc()
		ctx.pw.L1DataRead.Inc()
		d.deliverData(ctx, r, owner, dirModified, true)
		m := d.msg(owner, r)
		m.tile = r.requestor
		m.stamp = stamp
		ctx.SendCtlArg(owner, home, d.handoverFn, m)
		return
	}
	// Read: downgrade to shared, supply the requestor, write the block
	// back so the L2 holds it for future readers.
	if ctx.tracing(r.addr) {
		ctx.Trace(r.addr, "atOwner %d downgrades, supplies read to %d", owner, r.requestor)
	}
	line.State = dirShared
	line.Dirty = false
	ctx.pw.L1TagWrite.Inc()
	ctx.pw.L1DataRead.Inc()
	d.deliverData(ctx, r, owner, dirShared, false)
	m := d.msg(owner, r)
	m.tile = owner
	m.stamp = stamp
	m.dirty = dirty
	ctx.SendDataArg(owner, home, d.downgradeFn, m)
}

// atSharerSupply handles a read forwarded to a clean sharer.
func (d *Directory) atSharerSupply(r dirReq, sharer topo.Tile) {
	ctx := d.ctx.At(sharer)
	ctx.chargeVM(r.requestor)
	ts := d.tiles[sharer]
	ctx.pw.L1TagRead.Inc()
	if line := ts.l1.Lookup(r.addr); line != nil && line.State == dirShared {
		ctx.pw.L1DataRead.Inc()
		d.deliverData(ctx, r, sharer, dirShared, false)
		return
	}
	// Silent eviction raced us; drop the stale bit and retry at home.
	home := ctx.HomeOf(r.addr)
	d.cen.sharerRetry.Touch(int(sharer), int(sharer))
	m := d.msg(sharer, r)
	m.tile = sharer
	m.stamp = ctx.Kernel.Now()
	del := ctx.SendCtlArg(sharer, home, d.sharerRetryFn, m)
	m.r.links += int16(del.Hops)
}

// homeDirUpdate applies fn to the home's directory entry for addr (if
// still present) and wakes stalled requests. stamp is the time the
// reported transition happened at its source; the update is dropped if
// the home has already applied a newer decision — mesh messages from
// different tiles are unordered, and applying a stale ownership update
// over a fresh one leaves a permanently wrong owner pointer. Returns
// whether the update was applied.
func (d *Directory) homeDirUpdate(ctx *Context, home topo.Tile, addr cache.Addr, stamp sim.Time, fn func(*cache.DirEntry)) bool {
	th := d.tiles[home]
	if !th.stampIfNewer(addr, stamp) {
		if ctx.tracing(addr) {
			ctx.Trace(addr, "stale dir update dropped (stamp %d)", stamp)
		}
		th.wakeHome(ctx.Kernel, addr)
		return false
	}
	if dl := th.dir.Peek(addr); dl != nil {
		fn(dl)
		ctx.pw.DirWrite.Inc()
		if ctx.tracing(addr) {
			ctx.Trace(addr, "homeDirUpdate -> owner=%d sharers=%#x (stamp %d)", dl.Owner, dl.Sharers, stamp)
		}
	}
	th.wakeHome(ctx.Kernel, addr)
	return true
}

// stampNow records a home-side synchronous ownership decision so any
// older in-flight update cannot clobber it later.
func (d *Directory) stampNow(ctx *Context, home topo.Tile, addr cache.Addr) {
	d.tiles[home].setStamp(addr, ctx.Kernel.Now())
}

// invalidateAtL1 drops the block at a sharer and acknowledges the
// requestor.
func (d *Directory) invalidateAtL1(tile topo.Tile, addr cache.Addr, requestor topo.Tile) {
	ctx := d.ctx.At(tile)
	t := d.tiles[tile]
	if ctx.tracing(addr) {
		ctx.Trace(addr, "invalidate at %d (ack to %d)", tile, requestor)
	}
	ctx.pw.L1TagRead.Inc()
	if _, ok := t.l1.Invalidate(addr); ok {
		ctx.pw.L1TagWrite.Inc()
	}
	if e, ok := t.mshr.Lookup(addr); ok {
		e.InvalidatedWhilePending = true
	}
	m := d.msg(tile, dirReq{addr: addr})
	m.tile = requestor
	ctx.SendCtlArg(tile, requestor, d.ackFn, m)
}

func (d *Directory) ackAtRequestor(ctx *Context, requestor topo.Tile, addr cache.Addr) {
	t := d.tiles[requestor]
	e, ok := t.mshr.Lookup(addr)
	if !ok {
		return // transaction already completed (stale ack)
	}
	e.SharerAcks--
	d.maybeComplete(ctx, requestor, addr)
}

// fetchFromMemory asks the memory controller for the block; the data
// goes straight to the requestor.
func (d *Directory) fetchFromMemory(ctx *Context, r dirReq, home topo.Tile) {
	mc := ctx.Mem.For(r.addr)
	d.cen.fetchMem.Touch(int(home), int(home))
	m := d.msg(home, r)
	del := ctx.SendCtlArg(home, mc, d.memReqFn, m)
	m.r.links += int16(del.Hops)
}

// deliverData sends the block to the requestor and completes the miss
// on arrival. The request's ride-along bookkeeping travels with it and
// is applied at the requestor by deliverFn.
func (d *Directory) deliverData(ctx *Context, r dirReq, from topo.Tile, state cache.State, dirty bool) {
	m := d.msg(from, r)
	m.state = state
	m.dirty = dirty
	del := ctx.SendDataArg(from, r.requestor, d.deliverFn, m)
	m.r.links += int16(del.Hops)
}

// fillL1 installs the block, running the eviction protocol for the
// displaced victim if needed.
func (d *Directory) fillL1(ctx *Context, tile topo.Tile, addr cache.Addr, state cache.State, dirty bool) {
	t := d.tiles[tile]
	if ctx.tracing(addr) {
		ctx.Trace(addr, "fill at %d state=%d dirty=%v", tile, state, dirty)
	}
	ctx.pw.L1TagWrite.Inc()
	ctx.pw.L1DataWrite.Inc()
	victim, hit, valid := t.l1.Probe(addr)
	if hit {
		victim.State = state
		victim.Dirty = victim.Dirty || dirty
		t.l1.Touch(victim)
		return
	}
	if valid {
		d.evictL1(ctx, tile, *victim)
		t.l1.InvalidateLine(victim)
	}
	t.l1.Fill(victim, addr, state)
	victim.Dirty = dirty
}

// evictL1 runs the replacement protocol for a victim line: shared
// copies leave silently, owned copies write back to the home.
func (d *Directory) evictL1(ctx *Context, tile topo.Tile, victim cache.Line) {
	if victim.State == dirShared {
		if ctx.tracing(victim.Addr) {
			ctx.Trace(victim.Addr, "silent evict at %d", tile)
		}
		return // silent eviction
	}
	if ctx.tracing(victim.Addr) {
		ctx.Trace(victim.Addr, "owned evict at %d state=%d dirty=%v", tile, victim.State, victim.Dirty)
	}
	home := ctx.HomeOf(victim.Addr)
	dirty := victim.Dirty
	stamp := ctx.Kernel.Now()
	ctx.pw.L1DataRead.Inc()
	m := d.msg(tile, dirReq{addr: victim.Addr})
	m.tile = tile
	m.stamp = stamp
	m.dirty = dirty
	ctx.SendDataArg(tile, home, d.evictWbFn, m)
}

// insertL2Data fills the home's L2 bank, evicting (and writing back)
// an L2 victim if needed. Directory info for the L2 victim survives in
// the directory cache (NCID), so no chip-wide invalidation happens
// here.
func (d *Directory) insertL2Data(ctx *Context, home topo.Tile, addr cache.Addr, dirty bool) {
	th := d.tiles[home]
	ctx.pw.L2TagWrite.Inc()
	ctx.pw.L2DataWrite.Inc()
	victim, hit, valid := th.l2.Probe(addr)
	if hit {
		victim.Dirty = victim.Dirty || dirty
		th.l2.Touch(victim)
		return
	}
	if valid && victim.Dirty {
		mc := ctx.Mem.For(victim.Addr)
		ctx.SendDataArg(home, mc, d.flushFn, mc)
	}
	th.l2.Fill(victim, addr, l2Present)
	victim.Dirty = dirty
}

// allocDirEntry installs a directory-cache entry for addr into the
// victim way the caller's Probe already found (valid means it still
// holds a tracked block), evicting that entry first if necessary.
// Evicting a directory entry invalidates every cached copy of its
// block chip-wide (NCID rule).
func (d *Directory) allocDirEntry(ctx *Context, home topo.Tile, addr cache.Addr, victim *cache.DirEntry, victimAddr cache.Addr, valid bool, then func(*cache.DirEntry)) {
	th := d.tiles[home]
	if !valid {
		th.dir.Fill(victim, addr)
		victim.Owner = -1
		victim.Sharers = 0
		then(victim)
		return
	}
	// Capture the victim's holders, then reserve the line for the new
	// block synchronously so a concurrent allocation cannot pick the
	// same victim. Requests for either address stall on homeBusy until
	// the victim's copies are gone.
	holders := victim.Sharers
	if victim.Owner >= 0 {
		holders |= bit(topo.Tile(victim.Owner))
	}
	if ctx.tracing(victimAddr) {
		ctx.Trace(victimAddr, "dir entry evicted at %d (holders %#x), chip-wide invalidation", home, holders)
	}
	if ctx.tracing(addr) {
		ctx.Trace(addr, "dir entry allocated at %d (evicting %#x)", home, victimAddr)
	}
	// The eviction is a fresh ownership decision for the victim block:
	// stamp it so old-epoch updates in flight cannot touch a future
	// entry re-allocated for the same address.
	d.stampNow(ctx, home, victimAddr)
	th.dir.Fill(victim, addr)
	victim.Owner = -1
	victim.Sharers = 0
	ctx.pw.DirWrite.Inc()
	th.setHomeBusy(victimAddr)
	th.setHomeBusy(addr)
	pending := popcount(holders)
	finish := func() {
		// Drop the victim's L2 data (write back if dirty).
		if l2line := th.l2.Peek(victimAddr); l2line != nil {
			if l2line.Dirty {
				mc := ctx.Mem.For(victimAddr)
				ctx.SendDataArg(home, mc, d.flushFn, mc)
			}
			th.l2.InvalidateLine(l2line)
			ctx.pw.L2TagWrite.Inc()
		}
		th.clearHomeBusy(victimAddr)
		th.clearHomeBusy(addr)
		th.wakeHome(ctx.Kernel, victimAddr)
		th.wakeHome(ctx.Kernel, addr)
		then(victim)
	}
	if pending == 0 {
		finish()
		return
	}
	forEachBit(holders, func(i int) {
		holder := topo.Tile(i)
		ctx.SendCtl(home, holder, func() {
			// Runs at the holder: rebind to its lane view before
			// touching its L1 or charging counters.
			hctx := d.ctx.At(holder)
			t := d.tiles[holder]
			hctx.pw.L1TagRead.Inc()
			if old, ok := t.l1.Invalidate(victimAddr); ok {
				hctx.pw.L1TagWrite.Inc()
				if old.Dirty {
					// Dirty data rides back with the ack and is
					// flushed to memory from the home.
					hctx.SendData(holder, home, func() {
						mc := ctx.Mem.For(victimAddr)
						ctx.SendDataArg(home, mc, d.flushFn, mc)
						pending--
						if pending == 0 {
							finish()
						}
					})
					return
				}
			}
			if e, ok := t.mshr.Lookup(victimAddr); ok {
				e.InvalidatedWhilePending = true
			}
			hctx.SendCtl(holder, home, func() {
				pending--
				if pending == 0 {
					finish()
				}
			})
		})
	})
}

// maybeComplete retires the miss if all its conditions are met.
func (d *Directory) maybeComplete(ctx *Context, tile topo.Tile, addr cache.Addr) {
	t := d.tiles[tile]
	e, ok := t.mshr.Lookup(addr)
	if !ok || !e.Done() {
		return
	}
	dropped := e.InvalidatedWhilePending && !e.Write
	if ctx.tracing(addr) {
		ctx.Trace(addr, "complete at %d write=%v dropped=%v", tile, e.Write, dropped)
	}
	if dropped {
		// The fill raced an invalidation. Dropping the line is the
		// safe resolution, but it must go through the regular
		// replacement protocol so any ownership or providership the
		// fill carried is handed back properly.
		if line := t.l1.Peek(addr); line != nil {
			snapshot := t.l1.InvalidateLine(line)
			d.evictL1(ctx, tile, snapshot)
		}
	}
	cls := MissClass(e.Tag)
	ctx.Profile.Count[cls]++
	ctx.Profile.Links[cls] += uint64(e.Links)
	ctx.spanEnd(tile, cls, dropped)
	done := e.OnComplete
	t.mshr.Release(addr)
	ctx.observeRetired(tile, addr, e.Write, false, e.InvalidatedWhilePending)
	t.wakeL1(ctx.Kernel, addr)
	if done != nil {
		done()
	}
}

// ForEachCopy implements Engine.
func (d *Directory) ForEachCopy(addr cache.Addr, fn func(CopyInfo)) {
	forEachCopy(d.tiles, d.ctx.HomeOf(addr), addr, func(l *cache.Line) (bool, bool) {
		excl := l.State == dirModified || l.State == dirExclusive
		return excl, excl
	}, fn)
}

// ForEachPending implements Engine.
func (d *Directory) ForEachPending(fn func(topo.Tile, *cache.MSHREntry)) {
	forEachPending(d.tiles, fn)
}

// CheckInvariants implements Engine. Call only at quiescence (no
// pending events): it verifies single-writer/multi-reader and the NCID
// containment invariant (every cached block has a home directory
// entry whose sharer set covers the holders).
func (d *Directory) CheckInvariants() {
	type holderInfo struct {
		holders uint64
		owners  []topo.Tile
	}
	blocks := make(map[cache.Addr]*holderInfo)
	for i, t := range d.tiles {
		tile := topo.Tile(i)
		t.l1.ForEachValid(func(l *cache.Line) {
			hi := blocks[l.Addr]
			if hi == nil {
				hi = &holderInfo{}
				blocks[l.Addr] = hi
			}
			hi.holders |= bit(tile)
			if l.State == dirModified || l.State == dirExclusive {
				hi.owners = append(hi.owners, tile)
			}
		})
	}
	for addr, hi := range blocks {
		if len(hi.owners) > 1 {
			panic(fmt.Sprintf("directory: block %#x has %d exclusive owners", addr, len(hi.owners)))
		}
		if len(hi.owners) == 1 && popcount(hi.holders) > 1 {
			panic(fmt.Sprintf("directory: block %#x exclusive at %d but %d holders",
				addr, hi.owners[0], popcount(hi.holders)))
		}
		home := d.ctx.HomeOf(addr)
		dl := d.tiles[home].dir.Peek(addr)
		if dl == nil {
			panic(fmt.Sprintf("directory: cached block %#x has no directory entry", addr))
		}
		if dl.Sharers&hi.holders != hi.holders {
			panic(fmt.Sprintf("directory: block %#x holders %#x not covered by sharers %#x",
				addr, hi.holders, dl.Sharers))
		}
		if len(hi.owners) == 1 && topo.Tile(dl.Owner) != hi.owners[0] {
			panic(fmt.Sprintf("directory: block %#x owner pointer %d, actual %d",
				addr, dl.Owner, hi.owners[0]))
		}
	}
}
