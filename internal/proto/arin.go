package proto

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/cache"
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/topo"
)

// L1 states of DiCo-Arin.
const (
	arShared cache.State = 1 + iota
	arProvider
	arOwnerShared
	arOwnerExclusive
	arOwnerModified
)

// Home L2 line forms for DiCo-Arin: a block is either owned by the L2
// (sharers of a single area tracked precisely) or shared between areas
// (one provider pointer per area, no sharer information — broadcast
// invalidation covers the copies).
const (
	l2ArinOwned cache.State = 1 + iota
	l2ArinInter
)

func arIsOwner(s cache.State) bool {
	return s == arOwnerShared || s == arOwnerExclusive || s == arOwnerModified
}

// Arin implements DiCo-Arin (Sections III-B and IV-B): DiCo behaviour
// while a block's copies stay inside one area; the first remote-area
// read dissolves ownership, parks the block in the home L2, and turns
// every copy holder into a provider. Writes to inter-area blocks use
// the paper's three-phase broadcast invalidation (block, ack,
// unblock).
type Arin struct {
	ctx   *Context
	tiles []*tileState
	cen   arCensus

	// Long-lived adapters for the kernel/mesh argument fast path:
	// protocol hops travel as (fn, *arMsg) pairs instead of
	// per-message closures (see dirMsg for the pattern).
	atHomeFn  func(any)
	atL1Fn    func(any)
	invalShFn func(any)
	shAckFn   func(any)
	deliverFn func(any)
	coFn      func(any)
	coAckFn   func(any)
	memReqFn  func(any)
	memRespFn func(any)
	memFillFn func(any)

	freeMsg *arMsg
}

// arCensus holds the engine's registered touch sites: every place a
// DiCo-Arin handler synchronously pokes another tile's MSHR (miss
// classification, link accounting, ack arming) or scans remote L1s.
type arCensus struct {
	l1Class, l1FwdHome            *telemetry.TouchSite
	dissolveClass                 *telemetry.TouchSite
	ownerWClass, ownerWAcks       *telemetry.TouchSite
	homeFwd, homeMemFetch         *telemetry.TouchSite
	homeInterClass                *telemetry.TouchSite
	homeOwnedClass, homeOwnedAcks *telemetry.TouchSite
	bcastClass, bcastAcks         *telemetry.TouchSite
	deliver, memResp              *telemetry.TouchSite
	recallScan                    *telemetry.TouchSite
}

// arMsg is the pooled argument node for DiCo-Arin's non-capturing
// message path (see dirMsg).
type arMsg struct {
	next     *arMsg
	r        arReq
	tile     topo.Tile
	state    cache.State
	dirty    bool
	supplier int16
	stamp    sim.Time
}

func (p *Arin) msg(r arReq) *arMsg {
	m := p.freeMsg
	if m != nil {
		p.freeMsg = m.next
	} else {
		m = &arMsg{}
	}
	m.r = r
	return m
}

func (p *Arin) putMsg(m *arMsg) {
	m.next = p.freeMsg
	p.freeMsg = m
}

// bindHandlers builds the long-lived adapter funcs once.
func (p *Arin) bindHandlers() {
	p.atHomeFn = func(a any) {
		m := a.(*arMsg)
		r := m.r
		p.putMsg(m)
		p.atHome(r)
	}
	p.atL1Fn = func(a any) {
		m := a.(*arMsg)
		r, tile := m.r, m.tile
		p.putMsg(m)
		p.atL1(r, tile)
	}
	p.invalShFn = func(a any) {
		m := a.(*arMsg)
		tile, addr, requestor := m.tile, m.r.addr, m.r.requestor
		p.putMsg(m)
		p.ctx.chargeVM(requestor)
		p.invalidateSharer(tile, addr, requestor)
	}
	p.shAckFn = func(a any) {
		m := a.(*arMsg)
		requestor, addr := m.tile, m.r.addr
		p.putMsg(m)
		p.ctx.chargeVM(requestor)
		if e, ok := p.tiles[requestor].mshr.Lookup(addr); ok {
			e.SharerAcks--
			p.maybeComplete(requestor, addr)
		}
	}
	p.deliverFn = func(a any) {
		m := a.(*arMsg)
		r, state, dirty, supplier := m.r, m.state, m.dirty, m.supplier
		p.putMsg(m)
		p.ctx.chargeVM(r.requestor)
		p.fillL1(r.requestor, r.addr, state, dirty, supplier)
		if e, ok := p.tiles[r.requestor].mshr.Lookup(r.addr); ok {
			e.DataReceived = true
		}
		p.maybeComplete(r.requestor, r.addr)
	}
	// coFn lands a Change_Owner at the home; the node travels on to
	// carry the gating ack back to the new owner.
	p.coFn = func(a any) {
		m := a.(*arMsg)
		addr, newOwner, stamp := m.r.addr, m.tile, m.stamp
		p.ctx.chargeVM(newOwner)
		home := p.ctx.HomeOf(addr)
		p.homeOwnerUpdate(home, addr, newOwner, stamp)
		p.ctx.SendCtlArg(home, newOwner, p.coAckFn, m)
	}
	p.coAckFn = func(a any) {
		m := a.(*arMsg)
		requestor, addr := m.tile, m.r.addr
		p.putMsg(m)
		p.ctx.chargeVM(requestor)
		if e, ok := p.tiles[requestor].mshr.Lookup(addr); ok {
			e.HomeAck = false
			p.maybeComplete(requestor, addr)
		}
	}
	// Memory fetch pipeline.
	p.memReqFn = func(a any) {
		m := a.(*arMsg)
		lat := p.ctx.Mem.ReadLatency()
		p.ctx.Kernel.AfterArg(lat, p.memRespFn, m)
	}
	p.memRespFn = func(a any) {
		m := a.(*arMsg)
		p.ctx.chargeVM(m.r.requestor)
		home := p.ctx.HomeOf(m.r.addr)
		mc := p.ctx.Mem.For(m.r.addr)
		d2 := p.ctx.SendDataArg(mc, home, p.memFillFn, m)
		p.cen.memResp.Touch(int(mc), int(m.r.requestor))
		p.addLinks(m.r.requestor, m.r.addr, d2.Hops)
	}
	p.memFillFn = func(a any) {
		m := a.(*arMsg)
		r := m.r
		p.putMsg(m)
		p.ctx.chargeVM(r.requestor)
		home := p.ctx.HomeOf(r.addr)
		state, dirty := arOwnerExclusive, false
		if r.write {
			state, dirty = arOwnerModified, true
		}
		p.deliver(r, home, state, dirty, -1)
	}
}

// NewArin builds the DiCo-Arin engine on ctx.
func NewArin(ctx *Context) *Arin {
	ctx.bindPower()
	if ctx.Areas.Count > cache.MaxSimAreas {
		panic(fmt.Sprintf("arin: %d areas exceed the simulator's limit of %d",
			ctx.Areas.Count, cache.MaxSimAreas))
	}
	n := ctx.NumTiles()
	p := &Arin{
		ctx:   ctx,
		tiles: make([]*tileState, n),
	}
	p.bindHandlers()
	p.cen = arCensus{
		l1Class:        ctx.CensusSite("arin", "atL1.set-class", "mshr"),
		l1FwdHome:      ctx.CensusSite("arin", "atL1.fwd-home", "mshr"),
		dissolveClass:  ctx.CensusSite("arin", "dissolveOwnership.set-class", "mshr"),
		ownerWClass:    ctx.CensusSite("arin", "ownerWriteSupply.set-class", "mshr"),
		ownerWAcks:     ctx.CensusSite("arin", "ownerWriteSupply.acks", "mshr"),
		homeFwd:        ctx.CensusSite("arin", "atHome.fwd-owner", "mshr"),
		homeMemFetch:   ctx.CensusSite("arin", "atHome.mem-fetch", "mshr"),
		homeInterClass: ctx.CensusSite("arin", "homeInter.set-class", "mshr"),
		homeOwnedClass: ctx.CensusSite("arin", "homeOwned.set-class", "mshr"),
		homeOwnedAcks:  ctx.CensusSite("arin", "homeOwned.acks", "mshr"),
		bcastClass:     ctx.CensusSite("arin", "broadcastInv.set-class", "mshr"),
		bcastAcks:      ctx.CensusSite("arin", "broadcastInv.acks", "mshr"),
		deliver:        ctx.CensusSite("arin", "deliver", "mshr"),
		memResp:        ctx.CensusSite("arin", "memResp", "mshr"),
		recallScan:     ctx.CensusSite("arin", "recallOwnership.owner-scan", "l1"),
	}
	for i := range p.tiles {
		p.tiles[i] = newTileState(ctx.Cfg, ctx.BankShift())
	}
	return p
}

// Name implements Engine.
func (p *Arin) Name() string { return "arin" }

// Stats implements Engine.
func (p *Arin) Stats() *stats.Set { return &p.ctx.Counters }

// MissProfile implements Engine.
func (p *Arin) MissProfile() MissProfile { return p.ctx.Profile }

func (p *Arin) areaOf(t topo.Tile) int   { return p.ctx.Areas.Of(t) }
func (p *Arin) areaIdx(t topo.Tile) int8 { return int8(p.ctx.Areas.IndexInArea(t)) }
func (p *Arin) tileAt(area int, idx int8) topo.Tile {
	return p.ctx.Areas.TilesIn(area)[idx]
}

type arReq struct {
	addr      cache.Addr
	requestor topo.Tile
	write     bool
	predicted bool
	forwards  int
	forwarder topo.Tile // -1 unless an L1 forwarded this request
}

// Access implements Engine.
func (p *Arin) Access(tile topo.Tile, addr cache.Addr, write bool, onDone func()) {
	ctx := p.ctx
	ctx.chargeVM(tile)
	t := p.tiles[tile]
	if _, pending := t.mshr.Lookup(addr); pending {
		t.stallL1(addr, func() { p.Access(tile, addr, write, onDone) })
		return
	}
	if t.blocked(addr) {
		// Three-phase broadcast in progress: wait for the unblock.
		t.stallL1(addr, func() { p.Access(tile, addr, write, onDone) })
		return
	}
	ctx.pw.L1TagRead.Inc()
	if line := t.l1.Lookup(addr); line != nil {
		if !write {
			ctx.pw.L1DataRead.Inc()
			ctx.Profile.Hits++
			ctx.observeRetired(tile, addr, false, true, false)
			ctx.Kernel.After(ctx.Cfg.L1HitLatency, onDone)
			return
		}
		switch line.State {
		case arOwnerModified, arOwnerExclusive:
			line.State = arOwnerModified
			line.Dirty = true
			ctx.pw.L1DataWrite.Inc()
			ctx.Profile.Hits++
			ctx.observeRetired(tile, addr, true, true, false)
			ctx.Kernel.After(ctx.Cfg.L1HitLatency, onDone)
			return
		case arOwnerShared:
			p.ownerWriteHit(tile, addr, line, onDone)
			return
		}
		// Shared or provider copy under a write: full miss path (the
		// home decides between owner transfer and broadcast).
	}
	e := t.mshr.Allocate(addr, write, uint64(ctx.Kernel.Now()))
	e.OnComplete = onDone
	ctx.spanBegin(tile, addr, write)
	r := arReq{addr: addr, requestor: tile, write: write, forwarder: -1}
	ctx.pw.L1CAccess.Inc()
	if ptr, ok := t.l1c.Lookup(addr); ok && topo.Tile(ptr) != tile && !ctx.Cfg.NoPrediction {
		r.predicted = true
		e.Tag = int(MissPredFail)
		ctx.spanEvent("predict-supplier", tile)
		pred := topo.Tile(ptr)
		m := p.msg(r)
		m.tile = pred
		del := ctx.SendCtlArg(tile, pred, p.atL1Fn, m)
		e.Links += del.Hops
		return
	}
	e.Tag = int(MissUnpredHome)
	home := ctx.HomeOf(addr)
	del := ctx.SendCtlArg(tile, home, p.atHomeFn, p.msg(r))
	e.Links += del.Hops
}

// ownerWriteHit: an intra-area owner invalidates its sharers locally,
// exactly like DiCo.
func (p *Arin) ownerWriteHit(tile topo.Tile, addr cache.Addr, line *cache.Line, onDone func()) {
	ctx := p.ctx
	t := p.tiles[tile]
	area := p.areaOf(tile)
	sharers := line.Sharers &^ areaBit(ctx.Areas, tile)
	if sharers == 0 {
		line.State = arOwnerModified
		line.Dirty = true
		ctx.pw.L1DataWrite.Inc()
		ctx.Profile.Hits++
		ctx.observeRetired(tile, addr, true, true, false)
		ctx.Kernel.After(ctx.Cfg.L1HitLatency, onDone)
		return
	}
	e := t.mshr.Allocate(addr, true, uint64(ctx.Kernel.Now()))
	e.OnComplete = onDone
	e.Tag = int(MissPredOwner)
	ctx.spanBegin(tile, addr, true)
	ctx.spanEvent("owner-write-inv", tile)
	e.DataReceived = true
	e.SharerAcks = popcount(sharers)
	for v := sharers; v != 0; v &= v - 1 {
		sharer := p.tileAt(area, int8(bits.TrailingZeros64(v)))
		m := p.msg(arReq{addr: addr, requestor: tile})
		m.tile = sharer
		ctx.SendCtlArg(tile, sharer, p.invalShFn, m)
	}
	line.State = arOwnerModified
	line.Dirty = true
	line.Sharers = 0
	ctx.pw.L1DataWrite.Inc()
	ctx.pw.L1TagWrite.Inc()
}

func (p *Arin) invalidateSharer(tile topo.Tile, addr cache.Addr, requestor topo.Tile) {
	ctx := p.ctx
	t := p.tiles[tile]
	ctx.pw.L1TagRead.Inc()
	if _, ok := t.l1.Invalidate(addr); ok {
		ctx.pw.L1TagWrite.Inc()
	}
	if e, ok := t.mshr.Lookup(addr); ok {
		e.InvalidatedWhilePending = true
	}
	t.l1c.Update(addr, int16(requestor))
	ctx.pw.L1CUpdate.Inc()
	m := p.msg(arReq{addr: addr})
	m.tile = requestor
	ctx.SendCtlArg(tile, requestor, p.shAckFn, m)
}

// atL1 handles a request at an L1 cache.
func (p *Arin) atL1(r arReq, tile topo.Tile) {
	ctx := p.ctx
	ctx.chargeVM(r.requestor)
	t := p.tiles[tile]
	if _, pending := t.mshr.Lookup(r.addr); pending {
		// Pooled-arg stalls: a closure here would capture r and force
		// it to the heap on every atL1 call, not just the stalled ones.
		m := p.msg(r)
		m.tile = tile
		t.stallL1Arg(r.addr, p.atL1Fn, m)
		return
	}
	if t.blocked(r.addr) {
		m := p.msg(r)
		m.tile = tile
		t.stallL1Arg(r.addr, p.atL1Fn, m)
		return
	}
	ctx.pw.L1TagRead.Inc()
	line := t.l1.Lookup(r.addr)
	switch {
	case line != nil && arIsOwner(line.State):
		if r.write {
			p.ownerWriteSupply(r, tile, line)
			return
		}
		if p.areaOf(r.requestor) == p.areaOf(tile) {
			// Local read: plain DiCo behaviour.
			p.cen.l1Class.Touch(int(tile), int(r.requestor))
			p.classifyMiss(r, byOwner)
			line.Sharers |= areaBit(ctx.Areas, r.requestor)
			if line.State != arOwnerShared {
				line.State = arOwnerShared
			}
			ctx.pw.L1TagWrite.Inc()
			ctx.pw.L1DataRead.Inc()
			p.deliver(r, tile, arShared, false, int16(tile))
			return
		}
		p.dissolveOwnership(r, tile, line)
	case line != nil && line.State == arProvider && !r.write &&
		p.areaOf(r.requestor) == p.areaOf(tile):
		if ctx.tracing(r.addr) {
			ctx.Trace(r.addr, "provider %d supplies %d", tile, r.requestor)
		}
		// A provider supplies inside its area; the new copy is a
		// provider too (Section IV-B's optimization).
		p.cen.l1Class.Touch(int(tile), int(r.requestor))
		p.classifyMiss(r, byProvider)
		ctx.pw.L1DataRead.Inc()
		p.deliver(r, tile, arProvider, false, int16(tile))
	default:
		// Forward to the home, recording the forwarder so the home
		// can refresh a stale provider pointer (Section IV-B).
		r.forwards++
		r.forwarder = tile
		home := ctx.HomeOf(r.addr)
		del := ctx.SendCtlArg(tile, home, p.atHomeFn, p.msg(r))
		p.cen.l1FwdHome.Touch(int(tile), int(r.requestor))
		p.addLinks(r.requestor, r.addr, del.Hops)
	}
}

// dissolveOwnership is the heart of DiCo-Arin (Section III-B): a read
// from a remote area reaches the L1 owner; the ownership disappears,
// the former owner becomes a provider, the home L2 receives the data
// (and becomes a provider), and the requestor becomes a provider.
func (p *Arin) dissolveOwnership(r arReq, owner topo.Tile, line *cache.Line) {
	ctx := p.ctx
	if ctx.tracing(r.addr) {
		ctx.Trace(r.addr, "dissolve at owner %d for %d", owner, r.requestor)
	}
	p.cen.dissolveClass.Touch(int(owner), int(r.requestor))
	p.classifyMiss(r, byOwner)
	ownerArea := p.areaOf(owner)
	dirty := line.Dirty
	line.State = arProvider
	line.Dirty = false
	line.Sharers = 0 // former sharers survive silently; broadcast covers them
	line.Owner = -1
	ctx.pw.L1TagWrite.Inc()
	ctx.pw.L1DataRead.Inc()
	p.deliver(r, owner, arProvider, false, int16(owner))
	home := ctx.HomeOf(r.addr)
	reqArea := p.areaOf(r.requestor)
	ctx.SendData(owner, home, func() {
		p.tiles[home].setStamp(r.addr, ctx.Kernel.Now())
		var propos [cache.MaxSimAreas]int8
		for a := range propos {
			propos[a] = -1
		}
		propos[ownerArea] = p.areaIdx(owner)
		propos[reqArea] = p.areaIdx(r.requestor)
		p.insertL2Inter(home, r.addr, dirty, propos, func() {
			if p.tiles[home].l2c.Invalidate(r.addr) {
				ctx.pw.L2CUpdate.Inc()
			}
			p.tiles[home].clearRecall(r.addr)
			p.tiles[home].wakeHome(ctx.Kernel, r.addr)
		})
	})
}

// ownerWriteSupply: intra-area ownership transfer, as in DiCo.
func (p *Arin) ownerWriteSupply(r arReq, owner topo.Tile, line *cache.Line) {
	ctx := p.ctx
	p.cen.ownerWClass.Touch(int(owner), int(r.requestor))
	p.classifyMiss(r, byOwner)
	area := p.areaOf(owner)
	sharers := line.Sharers &^ areaBit(ctx.Areas, owner)
	if p.areaOf(r.requestor) == area {
		sharers &^= areaBit(ctx.Areas, r.requestor)
	}
	p.cen.ownerWAcks.Touch(int(owner), int(r.requestor))
	if e, ok := p.tiles[r.requestor].mshr.Lookup(r.addr); ok {
		e.SharerAcks += popcount(sharers)
		e.HomeAck = true
	}
	for v := sharers; v != 0; v &= v - 1 {
		sharer := p.tileAt(area, int8(bits.TrailingZeros64(v)))
		m := p.msg(arReq{addr: r.addr, requestor: r.requestor})
		m.tile = sharer
		ctx.SendCtlArg(owner, sharer, p.invalShFn, m)
	}
	ctx.pw.L1DataRead.Inc()
	ctx.pw.L1TagWrite.Inc()
	p.tiles[owner].l1.Invalidate(r.addr)
	p.tiles[owner].l1c.Update(r.addr, int16(r.requestor))
	ctx.pw.L1CUpdate.Inc()
	p.deliver(r, owner, arOwnerModified, true, -1)
	home := ctx.HomeOf(r.addr)
	m := p.msg(arReq{addr: r.addr})
	m.tile = r.requestor
	m.stamp = ctx.Kernel.Now()
	ctx.SendCtlArg(owner, home, p.coFn, m) // Change_Owner
}

// atHome dispatches at the home bank.
func (p *Arin) atHome(r arReq) {
	ctx := p.ctx
	ctx.chargeVM(r.requestor)
	home := ctx.HomeOf(r.addr)
	th := p.tiles[home]
	if th.homeBusy(r.addr) || th.recallMarked(r.addr) {
		th.stallHomeArg(r.addr, p.atHomeFn, p.msg(r))
		return
	}
	ctx.pw.L2TagRead.Inc()
	ctx.pw.L2CAccess.Inc()
	if ptr, ok := th.l2c.Lookup(r.addr); ok && th.l2.Peek(r.addr) == nil {
		ownerTile := topo.Tile(ptr)
		if ownerTile == r.requestor || r.forwards >= maxForwards {
			ctx.spanRetry(r.requestor)
			ctx.Kernel.AfterArg(retryBackoff, p.atHomeFn,
				p.msg(arReq{r.addr, r.requestor, r.write, r.predicted, 0, -1}))
			return
		}
		r.forwards++
		ctx.spanEvent("home-forward-owner", home)
		m := p.msg(r)
		m.tile = ownerTile
		del := ctx.SendCtlArg(home, ownerTile, p.atL1Fn, m)
		p.cen.homeFwd.Touch(int(home), int(r.requestor))
		p.addLinks(r.requestor, r.addr, del.Hops)
		return
	}
	l2line := th.l2.Lookup(r.addr)
	if l2line != nil {
		// A stale Change_Owner may have re-installed an L2C$ pointer
		// after the block returned home; the L2 line wins.
		if th.l2c.Invalidate(r.addr) {
			ctx.pw.L2CUpdate.Inc()
		}
	}
	if l2line == nil {
		// Not on chip: the pooled node rides the whole request ->
		// latency -> data pipeline (memReqFn/memRespFn/memFillFn).
		p.updateL2C(home, r.addr, r.requestor)
		mc := ctx.Mem.For(r.addr)
		del := ctx.SendCtlArg(home, mc, p.memReqFn, p.msg(r))
		p.cen.homeMemFetch.Touch(int(home), int(r.requestor))
		p.addLinks(r.requestor, r.addr, del.Hops)
		return
	}
	if l2line.State == l2ArinInter {
		p.homeInter(r, home, l2line)
		return
	}
	p.homeOwned(r, home, l2line)
}

// homeInter serves a request for a block shared between areas: the
// block is always present in the home L2 (the design decision that
// removes DiCo-Providers' 5-hop path).
func (p *Arin) homeInter(r arReq, home topo.Tile, l2line *cache.Line) {
	ctx := p.ctx
	if ctx.tracing(r.addr) {
		ctx.Trace(r.addr, "home-inter %d serves %d write=%v fwd=%d", home, r.requestor, r.write, r.forwarder)
	}
	th := p.tiles[home]
	reqArea := p.areaOf(r.requestor)
	if r.write {
		p.broadcastInvalidation(r, home, l2line)
		return
	}
	// Stale-provider fixup: the forwarder is no longer a provider.
	if r.forwarder >= 0 {
		fwdArea := p.areaOf(r.forwarder)
		if l2line.ProPos[fwdArea] == p.areaIdx(r.forwarder) {
			if fwdArea == reqArea {
				l2line.ProPos[fwdArea] = p.areaIdx(r.requestor)
			} else {
				l2line.ProPos[fwdArea] = -1
			}
			ctx.pw.L2TagWrite.Inc()
		}
	}
	p.cen.homeInterClass.Touch(int(home), int(r.requestor))
	p.classifyMiss(r, byHome)
	ctx.pw.L2DataRead.Inc()
	// The reply carries the identity of the area's provider so the
	// requestor's L1C$ points at it for the next miss.
	hint := int16(-1)
	if l2line.ProPos[reqArea] >= 0 {
		provTile := p.tileAt(reqArea, l2line.ProPos[reqArea])
		if provTile != r.requestor {
			hint = int16(provTile)
		}
	} else {
		l2line.ProPos[reqArea] = p.areaIdx(r.requestor)
		ctx.pw.L2TagWrite.Inc()
	}
	th.l2.Touch(l2line)
	p.deliver(r, home, arProvider, false, hint)
}

// homeOwned serves a request when the home L2 owns the block with
// (at most) one area's sharers tracked precisely.
func (p *Arin) homeOwned(r arReq, home topo.Tile, l2line *cache.Line) {
	ctx := p.ctx
	if ctx.tracing(r.addr) {
		ctx.Trace(r.addr, "home-owned %d serves %d write=%v areatag=%d sharers=%#x", home, r.requestor, r.write, l2line.AreaTag, l2line.Sharers)
	}
	th := p.tiles[home]
	reqArea := p.areaOf(r.requestor)
	if r.write {
		// L2-owner write: invalidate the tracked sharers, transfer
		// ownership to the writer.
		p.cen.homeOwnedClass.Touch(int(home), int(r.requestor))
		p.classifyMiss(r, byHome)
		var sharers uint64
		area := int(l2line.AreaTag)
		if area >= 0 {
			sharers = l2line.Sharers
			if area == reqArea {
				sharers &^= areaBit(ctx.Areas, r.requestor)
			}
		}
		p.cen.homeOwnedAcks.Touch(int(home), int(r.requestor))
		if e, ok := p.tiles[r.requestor].mshr.Lookup(r.addr); ok {
			e.SharerAcks += popcount(sharers)
		}
		for v := sharers; v != 0; v &= v - 1 {
			sharer := p.tileAt(area, int8(bits.TrailingZeros64(v)))
			m := p.msg(arReq{addr: r.addr, requestor: r.requestor})
			m.tile = sharer
			ctx.SendCtlArg(home, sharer, p.invalShFn, m)
		}
		ctx.pw.L2DataRead.Inc()
		th.l2.Invalidate(r.addr)
		ctx.pw.L2TagWrite.Inc()
		p.updateL2C(home, r.addr, r.requestor)
		p.deliver(r, home, arOwnerModified, true, -1)
		return
	}
	// Read with the L2 as owner.
	if int(l2line.AreaTag) == reqArea || l2line.AreaTag < 0 {
		p.cen.homeOwnedClass.Touch(int(home), int(r.requestor))
		p.classifyMiss(r, byHome)
		if l2line.AreaTag < 0 {
			l2line.AreaTag = int8(reqArea)
		}
		l2line.Sharers |= areaBit(ctx.Areas, r.requestor)
		ctx.pw.L2DataRead.Inc()
		ctx.pw.L2TagWrite.Inc()
		p.deliver(r, home, arShared, false, -1)
		return
	}
	// A second area starts reading: the block becomes shared between
	// areas. The previously tracked sharers silently become
	// broadcast-covered copies.
	p.cen.homeOwnedClass.Touch(int(home), int(r.requestor))
	p.classifyMiss(r, byHome)
	l2line.State = l2ArinInter
	for a := range l2line.ProPos {
		l2line.ProPos[a] = -1
	}
	l2line.ProPos[reqArea] = p.areaIdx(r.requestor)
	l2line.Sharers = 0
	l2line.AreaTag = -1
	ctx.pw.L2DataRead.Inc()
	ctx.pw.L2TagWrite.Inc()
	p.deliver(r, home, arProvider, false, -1)
}

// broadcastInvalidation is the three-phase mechanism of Section IV-B1
// for a write to an inter-area block: (1) the home broadcasts the
// invalidation and every L1 blocks the address, (2) every L1 acks the
// requestor, (3) the requestor broadcasts the unblock.
func (p *Arin) broadcastInvalidation(r arReq, home topo.Tile, l2line *cache.Line) {
	ctx := p.ctx
	if ctx.tracing(r.addr) {
		ctx.Trace(r.addr, "broadcast inv from home %d for writer %d", home, r.requestor)
	}
	th := p.tiles[home]
	p.cen.bcastClass.Touch(int(home), int(r.requestor))
	p.classifyMiss(r, byHome)
	th.setHomeBusy(r.addr)
	dirty := l2line.Dirty
	th.l2.Invalidate(r.addr)
	ctx.pw.L2TagWrite.Inc()
	ctx.pw.L2DataRead.Inc()
	p.updateL2C(home, r.addr, r.requestor)

	expected := ctx.NumTiles() - 1 // broadcast destinations
	if r.requestor != home {
		expected-- // the requestor does not ack itself
	}
	p.cen.bcastAcks.Touch(int(home), int(r.requestor))
	if e, ok := p.tiles[r.requestor].mshr.Lookup(r.addr); ok {
		e.SharerAcks += expected
		e.HomeAck = true // released when the unblock phase finishes
	}
	deliverInv := func(dst topo.Tile) {
		t := p.tiles[dst]
		ctx.chargeVM(r.requestor)
		ctx.pw.L1TagRead.Inc()
		if _, ok := t.l1.Invalidate(r.addr); ok {
			ctx.pw.L1TagWrite.Inc()
		}
		if e, ok := t.mshr.Lookup(r.addr); ok && dst != r.requestor {
			e.InvalidatedWhilePending = true
		}
		t.l1c.Update(r.addr, int16(r.requestor))
		ctx.pw.L1CUpdate.Inc()
		if dst == r.requestor {
			return
		}
		t.setBlocked(r.addr)
		ctx.SendCtl(dst, r.requestor, func() {
			if e, ok := p.tiles[r.requestor].mshr.Lookup(r.addr); ok {
				e.SharerAcks--
				if e.SharerAcks == 0 && e.DataReceived {
					p.unblockAfterWrite(r, home)
				}
			}
		})
	}
	// The mesh broadcast excludes the source tile: invalidate the home
	// tile's own L1 copy inline (it is not among the counted acks).
	ctx.pw.L1TagRead.Inc()
	if _, ok := th.l1.Invalidate(r.addr); ok {
		ctx.pw.L1TagWrite.Inc()
	}
	if e, ok := th.mshr.Lookup(r.addr); ok && home != r.requestor {
		e.InvalidatedWhilePending = true
	}
	ctx.spanEvent("bcast-inv", home)
	if ctx.Cfg.BroadcastUnicast {
		ctx.Net.UnicastBroadcast(home, ctx.Net.Config().ControlFlits, deliverInv)
	} else {
		ctx.Net.Broadcast(home, ctx.Net.Config().ControlFlits, deliverInv)
	}
	p.deliverWithHook(r, home, arOwnerModified, dirty || true, -1, func() {
		if e, ok := p.tiles[r.requestor].mshr.Lookup(r.addr); ok {
			if e.SharerAcks == 0 && e.DataReceived {
				p.unblockAfterWrite(r, home)
			}
		}
	})
}

// unblockAfterWrite is phase three: the requestor broadcasts the
// unblock, every L1 resumes, and the home releases the block.
func (p *Arin) unblockAfterWrite(r arReq, home topo.Tile) {
	ctx := p.ctx
	e, ok := p.tiles[r.requestor].mshr.Lookup(r.addr)
	if !ok || !e.HomeAck {
		return // already unblocked
	}
	deliverUnblock := func(dst topo.Tile) {
		t := p.tiles[dst]
		if t.blocked(r.addr) {
			t.clearBlocked(r.addr)
			t.wakeL1(ctx.Kernel, r.addr)
		}
		if dst == home {
			th := p.tiles[home]
			th.clearHomeBusy(r.addr)
			th.wakeHome(ctx.Kernel, r.addr)
		}
	}
	ctx.spanEvent("bcast-unblock", r.requestor)
	if ctx.Cfg.BroadcastUnicast {
		ctx.Net.UnicastBroadcast(r.requestor, ctx.Net.Config().ControlFlits, deliverUnblock)
	} else {
		ctx.Net.Broadcast(r.requestor, ctx.Net.Config().ControlFlits, deliverUnblock)
	}
	if r.requestor == home {
		th := p.tiles[home]
		th.clearHomeBusy(r.addr)
		th.wakeHome(ctx.Kernel, r.addr)
	}
	e.HomeAck = false
	p.maybeComplete(r.requestor, r.addr)
}

// evictL2Inter invalidates every copy of an inter-area victim block
// via broadcast, acks collected at the home (Section IV-B1's
// replacement variant), then calls then.
func (p *Arin) evictL2Inter(home topo.Tile, victim cache.Line, then func()) {
	ctx := p.ctx
	if ctx.tracing(victim.Addr) {
		ctx.Trace(victim.Addr, "L2 inter eviction at %d", home)
	}
	th := p.tiles[home]
	victimAddr := victim.Addr
	th.setHomeBusy(victimAddr)
	pending := ctx.NumTiles() - 1
	finishAcks := func() {
		// Phase three: home broadcasts the unblock.
		deliverUnblock := func(dst topo.Tile) {
			t := p.tiles[dst]
			if t.blocked(victimAddr) {
				t.clearBlocked(victimAddr)
				t.wakeL1(ctx.Kernel, victimAddr)
			}
		}
		if ctx.Cfg.BroadcastUnicast {
			ctx.Net.UnicastBroadcast(home, ctx.Net.Config().ControlFlits, deliverUnblock)
		} else {
			ctx.Net.Broadcast(home, ctx.Net.Config().ControlFlits, deliverUnblock)
		}
		if victim.Dirty {
			mc := ctx.Mem.For(victimAddr)
			ctx.SendData(home, mc, func() { ctx.Mem.WriteLatency() })
		}
		th.clearHomeBusy(victimAddr)
		th.wakeHome(ctx.Kernel, victimAddr)
		then()
	}
	deliverInv := func(dst topo.Tile) {
		t := p.tiles[dst]
		ctx.pw.L1TagRead.Inc()
		if _, ok := t.l1.Invalidate(victimAddr); ok {
			ctx.pw.L1TagWrite.Inc()
		}
		if e, ok := t.mshr.Lookup(victimAddr); ok {
			e.InvalidatedWhilePending = true
		}
		t.setBlocked(victimAddr)
		ctx.SendCtl(dst, home, func() {
			pending--
			if pending == 0 {
				finishAcks()
			}
		})
	}
	// Invalidate the home tile's own L1 copy inline (the broadcast
	// excludes the source tile, and its ack is not counted).
	ctx.pw.L1TagRead.Inc()
	if _, ok := th.l1.Invalidate(victimAddr); ok {
		ctx.pw.L1TagWrite.Inc()
	}
	if e, ok := th.mshr.Lookup(victimAddr); ok {
		e.InvalidatedWhilePending = true
	}
	if ctx.Cfg.BroadcastUnicast {
		ctx.Net.UnicastBroadcast(home, ctx.Net.Config().ControlFlits, deliverInv)
	} else {
		ctx.Net.Broadcast(home, ctx.Net.Config().ControlFlits, deliverInv)
	}
}

// deliver sends the block to the requestor and completes on arrival.
func (p *Arin) deliver(r arReq, from topo.Tile, state cache.State, dirty bool, supplier int16) {
	m := p.msg(r)
	m.state, m.dirty, m.supplier = state, dirty, supplier
	del := p.ctx.SendDataArg(from, r.requestor, p.deliverFn, m)
	p.cen.deliver.Touch(int(from), int(r.requestor))
	p.addLinks(r.requestor, r.addr, del.Hops)
}

func (p *Arin) deliverWithHook(r arReq, from topo.Tile, state cache.State, dirty bool,
	supplier int16, afterFill func()) {
	del := p.ctx.SendData(from, r.requestor, func() {
		p.ctx.chargeVM(r.requestor)
		p.fillL1(r.requestor, r.addr, state, dirty, supplier)
		if e, ok := p.tiles[r.requestor].mshr.Lookup(r.addr); ok {
			e.DataReceived = true
		}
		if afterFill != nil {
			afterFill()
		}
		p.maybeComplete(r.requestor, r.addr)
	})
	p.cen.deliver.Touch(int(from), int(r.requestor))
	p.addLinks(r.requestor, r.addr, del.Hops)
}

// fillL1 installs the block; the supplier hint (provider or owner)
// goes into the line for L1C$ retention on eviction.
func (p *Arin) fillL1(tile topo.Tile, addr cache.Addr, state cache.State, dirty bool, supplier int16) {
	ctx := p.ctx
	if ctx.tracing(addr) {
		ctx.Trace(addr, "fill at %d state=%d", tile, state)
	}
	t := p.tiles[tile]
	ctx.pw.L1TagWrite.Inc()
	ctx.pw.L1DataWrite.Inc()
	if line := t.l1.Peek(addr); line != nil {
		line.State = state
		line.Dirty = line.Dirty || dirty
		line.Sharers = 0
		if supplier >= 0 {
			line.Owner = supplier
		} else {
			line.Owner = -1
		}
		t.l1.Touch(line)
		return
	}
	victim, valid := t.l1.Victim(addr)
	if valid {
		p.evictL1(tile, *victim)
		t.l1.Invalidate(victim.Addr)
	}
	nl := victim
	t.l1.Fill(nl, addr, state)
	nl.Dirty = dirty
	if supplier >= 0 {
		nl.Owner = supplier
	}
	t.l1c.Invalidate(addr)
}

// evictL1: shared and provider copies leave silently (the provider
// pointer at the home is refreshed lazily by the forwarder fixup);
// owners transfer to a local sharer or write back to the home.
func (p *Arin) evictL1(tile topo.Tile, victim cache.Line) {
	ctx := p.ctx
	if ctx.tracing(victim.Addr) {
		ctx.Trace(victim.Addr, "L1 evict at %d state=%d", tile, victim.State)
	}
	t := p.tiles[tile]
	switch victim.State {
	case arShared, arProvider:
		if victim.Owner >= 0 {
			t.l1c.Update(victim.Addr, victim.Owner)
			ctx.pw.L1CUpdate.Inc()
		}
	default: // owner states
		area := p.areaOf(tile)
		sharers := victim.Sharers &^ areaBit(ctx.Areas, tile)
		if sharers != 0 {
			p.transferOwnership(tile, victim.Addr, area, sharers, sharers, victim.Dirty, tile)
		} else {
			p.writebackToHome(tile, victim.Addr, victim.Dirty, area, 0)
		}
	}
}

// transferOwnership passes ownership to a sharer in the owner's area.
func (p *Arin) transferOwnership(from topo.Tile, addr cache.Addr, area int,
	tryList, vector uint64, dirty bool, evictor topo.Tile) {
	ctx := p.ctx
	idx := int8(-1)
	forEachBit(tryList, func(i int) {
		if idx < 0 {
			idx = int8(i)
		}
	})
	if idx < 0 {
		p.writebackToHome(evictor, addr, dirty, area, vector)
		return
	}
	target := p.tileAt(area, idx)
	rest := tryList &^ (uint64(1) << uint(idx))
	ctx.SendCtl(from, target, func() {
		t := p.tiles[target]
		if _, pending := t.mshr.Lookup(addr); pending {
			// Skip (never stall behind) a candidate with a miss in
			// flight; it stays in the vector so the next owner's code
			// covers its fill.
			p.transferOwnership(target, addr, area, rest, vector, dirty, evictor)
			return
		}
		ctx.pw.L1TagRead.Inc()
		line := t.l1.Peek(addr)
		if line == nil || line.State != arShared {
			p.transferOwnership(target, addr, area, rest, vector&^(uint64(1)<<uint(idx)), dirty, evictor)
			return
		}
		line.State = arOwnerShared
		line.Dirty = dirty
		line.Sharers = vector &^ (uint64(1) << uint(idx))
		line.Owner = -1
		ctx.pw.L1TagWrite.Inc()
		home := ctx.HomeOf(addr)
		stamp := ctx.Kernel.Now()
		ctx.SendCtl(target, home, func() {
			p.homeOwnerUpdate(home, addr, target, stamp)
			ctx.SendCtl(home, target, func() {}) // ack
		})
		forEachBit(vector&^(uint64(1)<<uint(idx)), func(i int) {
			sharer := p.tileAt(area, int8(i))
			ctx.SendCtl(target, sharer, func() {
				st := p.tiles[sharer]
				if l := st.l1.Peek(addr); l != nil && l.State == arShared {
					l.Owner = int16(target)
				} else {
					st.l1c.Update(addr, int16(target))
					ctx.pw.L1CUpdate.Inc()
				}
			})
		})
	})
}

// writebackToHome returns ownership to the home, which becomes an
// owner-form L2 entry tracking any leftover sharers of the owner's
// area (a conservative superset is safe).
func (p *Arin) writebackToHome(tile topo.Tile, addr cache.Addr, dirty bool, area int, leftover uint64) {
	ctx := p.ctx
	home := ctx.HomeOf(addr)
	areaTag := int8(-1)
	if leftover != 0 {
		areaTag = int8(area)
	}
	ctx.pw.L1DataRead.Inc()
	ctx.SendData(tile, home, func() {
		p.tiles[home].setStamp(addr, ctx.Kernel.Now())
		p.insertL2Owned(home, addr, dirty, areaTag, leftover, func() {
			if p.tiles[home].l2c.Invalidate(addr) {
				ctx.pw.L2CUpdate.Inc()
			}
			p.tiles[home].clearRecall(addr)
			p.tiles[home].wakeHome(ctx.Kernel, addr)
		})
	})
}

func (p *Arin) homeOwnerUpdate(home topo.Tile, addr cache.Addr, owner topo.Tile, stamp sim.Time) {
	if p.ctx.tracing(addr) {
		p.ctx.Trace(addr, "home owner update -> %d (stamp %d)", owner, stamp)
	}
	th := p.tiles[home]
	if !th.stampIfNewer(addr, stamp) {
		return
	}
	p.updateL2C(home, addr, owner)
	th.clearRecall(addr)
	th.wakeHome(p.ctx.Kernel, addr)
}

func (p *Arin) updateL2C(home topo.Tile, addr cache.Addr, owner topo.Tile) {
	ctx := p.ctx
	th := p.tiles[home]
	evicted, displaced := th.l2c.Update(addr, int16(owner))
	ctx.pw.L2CUpdate.Inc()
	if displaced {
		p.recallOwnership(home, evicted)
	}
}

// recallOwnership returns an L1 owner's block to the home when its
// L2C$ entry is displaced. The former owner stays on as a sharer of
// an owner-form home entry.
func (p *Arin) recallOwnership(home topo.Tile, addr cache.Addr) {
	ctx := p.ctx
	if ctx.tracing(addr) {
		ctx.Trace(addr, "recall issued from home %d", home)
	}
	p.tiles[home].markRecall(addr)
	owner := topo.Tile(-1)
	for i := range p.tiles {
		p.cen.recallScan.Touch(int(home), i)
		if l := p.tiles[i].l1.Peek(addr); l != nil && arIsOwner(l.State) {
			owner = topo.Tile(i)
			break
		}
	}
	if owner < 0 {
		// Ownership is in flight (e.g. a memory-fetch grant not yet
		// filled): poll until the owner materializes or a home update
		// clears the marker.
		ctx.Kernel.After(4*retryBackoff, func() {
			if p.tiles[home].recallMarked(addr) {
				p.recallOwnership(home, addr)
			}
		})
		return
	}
	ctx.SendCtl(home, owner, func() { p.relinquish(home, owner, addr) })
}

func (p *Arin) relinquish(home, owner topo.Tile, addr cache.Addr) {
	ctx := p.ctx
	if ctx.tracing(addr) {
		ctx.Trace(addr, "relinquish at %d", owner)
	}
	t := p.tiles[owner]
	if _, pending := t.mshr.Lookup(addr); pending {
		t.stallL1(addr, func() { p.relinquish(home, owner, addr) })
		return
	}
	ctx.pw.L1TagRead.Inc()
	line := t.l1.Peek(addr)
	if line == nil || !arIsOwner(line.State) {
		if ctx.tracing(addr) {
			ctx.Trace(addr, "relinquish at %d found no owner line", owner)
		}
		return
	}
	area := p.areaOf(owner)
	dirty := line.Dirty
	sharers := (line.Sharers | areaBit(ctx.Areas, owner))
	line.State = arShared
	line.Dirty = false
	line.Sharers = 0
	line.Owner = -1
	ctx.pw.L1TagWrite.Inc()
	ctx.pw.L1DataRead.Inc()
	ctx.SendData(owner, home, func() {
		p.tiles[home].setStamp(addr, ctx.Kernel.Now())
		p.insertL2Owned(home, addr, dirty, int8(area), sharers, func() {
			if p.tiles[home].l2c.Invalidate(addr) {
				ctx.pw.L2CUpdate.Inc()
			}
			p.tiles[home].clearRecall(addr)
			p.tiles[home].wakeHome(ctx.Kernel, addr)
		})
	})
}

// insertL2Owned installs an owner-form entry at the home.
func (p *Arin) insertL2Owned(home topo.Tile, addr cache.Addr, dirty bool,
	areaTag int8, sharers uint64, then func()) {
	p.insertL2(home, addr, dirty, l2ArinOwned, areaTag, sharers, nil, then)
}

// insertL2Inter installs an inter-area entry at the home.
func (p *Arin) insertL2Inter(home topo.Tile, addr cache.Addr, dirty bool,
	propos [cache.MaxSimAreas]int8, then func()) {
	p.insertL2(home, addr, dirty, l2ArinInter, -1, 0, &propos, then)
}

func (p *Arin) insertL2(home topo.Tile, addr cache.Addr, dirty bool, state cache.State,
	areaTag int8, sharers uint64, propos *[cache.MaxSimAreas]int8, then func()) {
	ctx := p.ctx
	if ctx.tracing(addr) {
		ctx.Trace(addr, "insert L2 at %d form=%d areatag=%d sharers=%#x", home, state, areaTag, sharers)
	}
	th := p.tiles[home]
	apply := func(line *cache.Line) {
		line.Dirty = line.Dirty || dirty
		line.AreaTag = areaTag
		if state == l2ArinInter {
			if propos != nil {
				copy(line.ProPos[:], propos[:])
			}
			line.Sharers = 0
		} else {
			line.Sharers = sharers
			for a := range line.ProPos {
				line.ProPos[a] = -1
			}
		}
		if then != nil {
			then()
		}
	}
	if line := th.l2.Peek(addr); line != nil {
		ctx.pw.L2TagWrite.Inc()
		ctx.pw.L2DataWrite.Inc()
		line.State = state
		th.l2.Touch(line)
		apply(line)
		return
	}
	victim, valid := th.l2.Victim(addr)
	if valid {
		// Remove the victim from the array immediately (so no
		// concurrent insertion picks the same way), invalidate its
		// copies, then retry the insertion.
		snapshot := *victim
		th.l2.Invalidate(snapshot.Addr)
		ctx.pw.L2TagWrite.Inc()
		retry := func() { p.insertL2(home, addr, dirty, state, areaTag, sharers, propos, then) }
		if snapshot.State == l2ArinInter {
			p.evictL2Inter(home, snapshot, retry)
		} else {
			p.evictL2OwnedVictim(home, snapshot, retry)
		}
		return
	}
	ctx.pw.L2TagWrite.Inc()
	ctx.pw.L2DataWrite.Inc()
	th.l2.Fill(victim, addr, state)
	apply(victim)
}

// evictL2OwnedVictim invalidates an owner-form victim's tracked
// sharers (a single area: cheap unicasts), then proceeds.
func (p *Arin) evictL2OwnedVictim(home topo.Tile, victim cache.Line, then func()) {
	ctx := p.ctx
	if ctx.tracing(victim.Addr) {
		ctx.Trace(victim.Addr, "L2 owned eviction at %d sharers=%#x", home, victim.Sharers)
	}
	th := p.tiles[home]
	victimAddr := victim.Addr
	sharers := victim.Sharers
	area := int(victim.AreaTag)
	th.setHomeBusy(victimAddr)
	pending := 0
	if area >= 0 {
		pending = popcount(sharers)
	}
	finish := func() {
		if victim.Dirty {
			mc := ctx.Mem.For(victimAddr)
			ctx.SendData(home, mc, func() { ctx.Mem.WriteLatency() })
		}
		th.clearHomeBusy(victimAddr)
		th.wakeHome(ctx.Kernel, victimAddr)
		then()
	}
	if pending == 0 {
		finish()
		return
	}
	forEachBit(sharers, func(i int) {
		sharer := p.tileAt(area, int8(i))
		ctx.SendCtl(home, sharer, func() {
			t := p.tiles[sharer]
			ctx.pw.L1TagRead.Inc()
			if _, ok := t.l1.Invalidate(victimAddr); ok {
				ctx.pw.L1TagWrite.Inc()
			}
			if e, ok := t.mshr.Lookup(victimAddr); ok {
				e.InvalidatedWhilePending = true
			}
			ctx.SendCtl(sharer, home, func() {
				pending--
				if pending == 0 {
					finish()
				}
			})
		})
	})
}

func (p *Arin) classifyMiss(r arReq, kind supplierKind) {
	classify(p.setClass, r.requestor, r.addr, r.predicted, r.forwards, kind)
}

func (p *Arin) addLinks(requestor topo.Tile, addr cache.Addr, hops int) {
	if e, ok := p.tiles[requestor].mshr.Lookup(addr); ok {
		e.Links += hops
	}
}

func (p *Arin) setClass(requestor topo.Tile, addr cache.Addr, c MissClass) {
	if e, ok := p.tiles[requestor].mshr.Lookup(addr); ok {
		e.Tag = int(c)
	}
}

func (p *Arin) maybeComplete(tile topo.Tile, addr cache.Addr) {
	ctx := p.ctx
	t := p.tiles[tile]
	e, ok := t.mshr.Lookup(addr)
	if !ok || !e.Done() {
		return
	}
	dropped := e.InvalidatedWhilePending && !e.Write
	if dropped {
		// The fill raced an invalidation. Dropping the line is the
		// safe resolution, but it must go through the regular
		// replacement protocol so any ownership or providership the
		// fill carried is handed back properly.
		if line := t.l1.Peek(addr); line != nil {
			snapshot := *line
			t.l1.Invalidate(addr)
			p.evictL1(tile, snapshot)
		}
	}
	cls := MissClass(e.Tag)
	ctx.Profile.Count[cls]++
	ctx.Profile.Links[cls] += uint64(e.Links)
	ctx.spanEnd(tile, cls, dropped)
	done := e.OnComplete
	t.mshr.Release(addr)
	ctx.observeRetired(tile, addr, e.Write, false, e.InvalidatedWhilePending)
	t.wakeL1(ctx.Kernel, addr)
	if done != nil {
		done()
	}
}

// ForEachCopy implements Engine.
func (p *Arin) ForEachCopy(addr cache.Addr, fn func(CopyInfo)) {
	forEachCopy(p.tiles, p.ctx.HomeOf(addr), addr, func(l *cache.Line) (bool, bool) {
		return arIsOwner(l.State), l.State == arOwnerModified || l.State == arOwnerExclusive
	}, fn)
}

// ForEachPending implements Engine.
func (p *Arin) ForEachPending(fn func(topo.Tile, *cache.MSHREntry)) {
	forEachPending(p.tiles, fn)
}

// CheckInvariants implements Engine; call at quiescence. Checks the
// DiCo-Arin invariants: at most one owner chip-wide; an owned block's
// copies stay in the owner's area and are covered by its sharing code;
// inter-area blocks are present in the home L2; provider copies exist
// only for blocks whose home entry is inter-area (or mid-transition).
func (p *Arin) CheckInvariants() {
	ctx := p.ctx
	type info struct {
		owner   topo.Tile
		holders map[topo.Tile]cache.State
	}
	blocks := make(map[cache.Addr]*info)
	for i, t := range p.tiles {
		tile := topo.Tile(i)
		t.l1.ForEachValid(func(l *cache.Line) {
			bi := blocks[l.Addr]
			if bi == nil {
				bi = &info{owner: -1, holders: map[topo.Tile]cache.State{}}
				blocks[l.Addr] = bi
			}
			bi.holders[tile] = l.State
			if arIsOwner(l.State) {
				if bi.owner >= 0 {
					panic(fmt.Sprintf("arin: block %#x has two owners (%d, %d)", l.Addr, bi.owner, tile))
				}
				bi.owner = tile
			}
		})
	}
	addrs := make([]cache.Addr, 0, len(blocks))
	for a := range blocks {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		bi := blocks[addr]
		home := ctx.HomeOf(addr)
		th := p.tiles[home]
		l2line := th.l2.Peek(addr)
		if bi.owner >= 0 {
			ol := p.tiles[bi.owner].l1.Peek(addr)
			if ol.State == arOwnerExclusive || ol.State == arOwnerModified {
				if len(bi.holders) > 1 {
					panic(fmt.Sprintf("arin: block %#x exclusive at %d with %d holders",
						addr, bi.owner, len(bi.holders)))
				}
			}
			// Shared copies tracked by the owner must be in its area.
			area := p.areaOf(bi.owner)
			for t, s := range bi.holders {
				if s == arShared && p.areaOf(t) == area {
					if ol.Sharers&areaBit(ctx.Areas, t) == 0 {
						panic(fmt.Sprintf("arin: block %#x sharer %d not in owner %d's code",
							addr, t, bi.owner))
					}
				}
			}
			if ptr, ok := th.l2c.Lookup(addr); ok && topo.Tile(ptr) != bi.owner {
				panic(fmt.Sprintf("arin: block %#x L2C$ %d != owner %d", addr, ptr, bi.owner))
			}
			continue
		}
		// No L1 owner: a home L2 copy must exist for any holders.
		if l2line == nil {
			panic(fmt.Sprintf("arin: block %#x cached (%v) with no owner and no L2 copy",
				addr, bi.holders))
		}
		hasProvider := false
		for _, s := range bi.holders {
			if s == arProvider {
				hasProvider = true
			}
		}
		if hasProvider && l2line.State != l2ArinInter {
			panic(fmt.Sprintf("arin: block %#x has providers but home entry is owner-form", addr))
		}
	}
}

var _ = mesh.Stats{} // mesh types used in broadcast paths above
