package proto

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/cache"
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/topo"
)

// L1 states of DiCo-Arin.
const (
	arShared cache.State = 1 + iota
	arProvider
	arOwnerShared
	arOwnerExclusive
	arOwnerModified
)

// Home L2 line forms for DiCo-Arin: a block is either owned by the L2
// (sharers of a single area tracked precisely) or shared between areas
// (one provider pointer per area, no sharer information — broadcast
// invalidation covers the copies).
const (
	l2ArinOwned cache.State = 1 + iota
	l2ArinInter
)

func arIsOwner(s cache.State) bool {
	return s == arOwnerShared || s == arOwnerExclusive || s == arOwnerModified
}

// Arin implements DiCo-Arin (Sections III-B and IV-B): DiCo behaviour
// while a block's copies stay inside one area; the first remote-area
// read dissolves ownership, parks the block in the home L2, and turns
// every copy holder into a provider. Writes to inter-area blocks use
// the paper's three-phase broadcast invalidation (block, ack,
// unblock).
type Arin struct {
	ctx   *Context
	tiles []*tileState
	cen   arCensus

	// Long-lived adapters for the kernel/mesh argument fast path:
	// protocol hops travel as (fn, *arMsg) pairs instead of
	// per-message closures (see dirMsg for the pattern).
	atHomeFn  func(any)
	atL1Fn    func(any)
	invalShFn func(any)
	shAckFn   func(any)
	deliverFn func(any)
	coFn      func(any)
	coAckFn   func(any)
	memReqFn  func(any)
	memRespFn func(any)
	memFillFn func(any)
	flushFn   func(any)

	// free holds one message pool per tile, indexed by the executing
	// tile (see Directory.free).
	free []*arMsg
}

// arCensus holds the engine's registered touch sites. After
// messageization every site records on the executing tile's diagonal
// (src == dst): the former cross-tile requestor-MSHR pokes now ride
// the messages, and the recall path reads the displaced pointer
// instead of scanning every tile's L1.
type arCensus struct {
	l1Class, l1FwdHome            *telemetry.TouchSite
	dissolveClass                 *telemetry.TouchSite
	ownerWClass, ownerWAcks       *telemetry.TouchSite
	homeFwd, homeMemFetch         *telemetry.TouchSite
	homeInterClass                *telemetry.TouchSite
	homeOwnedClass, homeOwnedAcks *telemetry.TouchSite
	bcastClass, bcastAcks         *telemetry.TouchSite
	deliver, memResp              *telemetry.TouchSite
	recallScan                    *telemetry.TouchSite
}

// arMsg is the pooled argument node for DiCo-Arin's non-capturing
// message path (see dirMsg).
type arMsg struct {
	next     *arMsg
	r        arReq
	tile     topo.Tile
	state    cache.State
	dirty    bool
	supplier int16
	stamp    sim.Time
	bcast    bool // delivery completes a three-phase broadcast write
}

// msg takes a node from the executing lane's pool; at must be the
// tile whose lane is running the caller.
func (p *Arin) msg(at topo.Tile, r arReq) *arMsg {
	lane := p.ctx.Lane(at)
	m := p.free[lane]
	if m != nil {
		p.free[lane] = m.next
	} else {
		m = &arMsg{}
	}
	m.r = r
	return m
}

// putMsg recycles a node into the executing lane's pool.
func (p *Arin) putMsg(at topo.Tile, m *arMsg) {
	lane := p.ctx.Lane(at)
	m.next = p.free[lane]
	p.free[lane] = m
}

// bindHandlers builds the long-lived adapter funcs once.
func (p *Arin) bindHandlers() {
	p.atHomeFn = func(a any) {
		m := a.(*arMsg)
		r := m.r
		p.putMsg(p.ctx.HomeOf(r.addr), m)
		p.atHome(r)
	}
	p.atL1Fn = func(a any) {
		m := a.(*arMsg)
		r, tile := m.r, m.tile
		p.putMsg(tile, m)
		p.atL1(r, tile)
	}
	p.invalShFn = func(a any) {
		m := a.(*arMsg)
		tile, addr, requestor := m.tile, m.r.addr, m.r.requestor
		p.putMsg(tile, m)
		ctx := p.ctx.At(tile)
		ctx.chargeVM(requestor)
		p.invalidateSharer(ctx, tile, addr, requestor)
	}
	p.shAckFn = func(a any) {
		m := a.(*arMsg)
		requestor, addr := m.tile, m.r.addr
		p.putMsg(requestor, m)
		ctx := p.ctx.At(requestor)
		ctx.chargeVM(requestor)
		if e, ok := p.tiles[requestor].mshr.Lookup(addr); ok {
			e.SharerAcks--
			p.maybeComplete(ctx, requestor, addr)
		}
	}
	p.deliverFn = func(a any) {
		m := a.(*arMsg)
		r, state, dirty, supplier, bcast := m.r, m.state, m.dirty, m.supplier, m.bcast
		p.putMsg(r.requestor, m)
		ctx := p.ctx.At(r.requestor)
		ctx.chargeVM(r.requestor)
		p.cen.deliver.Touch(int(r.requestor), int(r.requestor))
		p.fillL1(ctx, r.requestor, r.addr, state, dirty, supplier)
		if e, ok := p.tiles[r.requestor].mshr.Lookup(r.addr); ok {
			e.DataReceived = true
			e.Links += int(r.links)
			e.SharerAcks += int(r.acks)
			e.HomeAck += int(r.homeAck)
			if r.clsPlus1 != 0 {
				e.Tag = int(r.clsPlus1 - 1)
			}
			if bcast && e.SharerAcks == 0 {
				// Every broadcast ack beat the data here: run phase
				// three (the unblock) now.
				p.unblockAfterWrite(ctx, r)
			}
		}
		p.maybeComplete(ctx, r.requestor, r.addr)
	}
	// coFn lands a Change_Owner at the home; the node travels on to
	// carry the gating ack back to the new owner.
	p.coFn = func(a any) {
		m := a.(*arMsg)
		addr, newOwner, stamp := m.r.addr, m.tile, m.stamp
		home := p.ctx.HomeOf(addr)
		ctx := p.ctx.At(home)
		ctx.chargeVM(newOwner)
		p.homeOwnerUpdate(ctx, home, addr, newOwner, stamp)
		ctx.SendCtlArg(home, newOwner, p.coAckFn, m)
	}
	p.coAckFn = func(a any) {
		m := a.(*arMsg)
		requestor, addr := m.tile, m.r.addr
		p.putMsg(requestor, m)
		ctx := p.ctx.At(requestor)
		ctx.chargeVM(requestor)
		if e, ok := p.tiles[requestor].mshr.Lookup(addr); ok {
			e.HomeAck--
			p.maybeComplete(ctx, requestor, addr)
		}
	}
	// Memory fetch pipeline.
	p.memReqFn = func(a any) {
		m := a.(*arMsg)
		ctx := p.ctx.At(p.ctx.Mem.For(m.r.addr))
		ctx.MemFetch(p.memRespFn, m)
	}
	p.memRespFn = func(a any) {
		m := a.(*arMsg)
		mc := p.ctx.Mem.For(m.r.addr)
		ctx := p.ctx.At(mc)
		ctx.chargeVM(m.r.requestor)
		home := ctx.HomeOf(m.r.addr)
		p.cen.memResp.Touch(int(mc), int(mc))
		d2 := ctx.SendDataArg(mc, home, p.memFillFn, m)
		m.r.links += int16(d2.Hops)
	}
	p.memFillFn = func(a any) {
		m := a.(*arMsg)
		r := m.r
		home := p.ctx.HomeOf(r.addr)
		p.putMsg(home, m)
		ctx := p.ctx.At(home)
		ctx.chargeVM(r.requestor)
		state, dirty := arOwnerExclusive, false
		if r.write {
			state, dirty = arOwnerModified, true
		}
		p.deliver(ctx, r, home, state, dirty, -1)
	}
	// flushFn runs at the memory controller tile boxed in the argument.
	p.flushFn = func(a any) { p.ctx.At(a.(topo.Tile)).MemFlush() }
}

// NewArin builds the DiCo-Arin engine on ctx.
func NewArin(ctx *Context) *Arin {
	ctx.bindPower()
	if ctx.Areas.Count > cache.MaxSimAreas {
		panic(fmt.Sprintf("arin: %d areas exceed the simulator's limit of %d",
			ctx.Areas.Count, cache.MaxSimAreas))
	}
	n := ctx.NumTiles()
	p := &Arin{
		ctx:   ctx,
		tiles: make([]*tileState, n),
		free:  make([]*arMsg, n),
	}
	p.bindHandlers()
	p.cen = arCensus{
		l1Class:        ctx.CensusSite("arin", "atL1.set-class", "mshr"),
		l1FwdHome:      ctx.CensusSite("arin", "atL1.fwd-home", "mshr"),
		dissolveClass:  ctx.CensusSite("arin", "dissolveOwnership.set-class", "mshr"),
		ownerWClass:    ctx.CensusSite("arin", "ownerWriteSupply.set-class", "mshr"),
		ownerWAcks:     ctx.CensusSite("arin", "ownerWriteSupply.acks", "mshr"),
		homeFwd:        ctx.CensusSite("arin", "atHome.fwd-owner", "mshr"),
		homeMemFetch:   ctx.CensusSite("arin", "atHome.mem-fetch", "mshr"),
		homeInterClass: ctx.CensusSite("arin", "homeInter.set-class", "mshr"),
		homeOwnedClass: ctx.CensusSite("arin", "homeOwned.set-class", "mshr"),
		homeOwnedAcks:  ctx.CensusSite("arin", "homeOwned.acks", "mshr"),
		bcastClass:     ctx.CensusSite("arin", "broadcastInv.set-class", "mshr"),
		bcastAcks:      ctx.CensusSite("arin", "broadcastInv.acks", "mshr"),
		deliver:        ctx.CensusSite("arin", "deliver", "mshr"),
		memResp:        ctx.CensusSite("arin", "memResp", "mshr"),
		recallScan:     ctx.CensusSite("arin", "recallOwnership.owner-scan", "l1"),
	}
	for i := range p.tiles {
		p.tiles[i] = newTileState(ctx.Cfg, ctx.BankShift())
	}
	return p
}

// Name implements Engine.
func (p *Arin) Name() string { return "arin" }

// Stats implements Engine.
func (p *Arin) Stats() *stats.Set { return &p.ctx.Counters }

// MissProfile implements Engine.
func (p *Arin) MissProfile() MissProfile { return p.ctx.Profile }

func (p *Arin) areaOf(t topo.Tile) int   { return p.ctx.Areas.Of(t) }
func (p *Arin) areaIdx(t topo.Tile) int8 { return int8(p.ctx.Areas.IndexInArea(t)) }
func (p *Arin) tileAt(area int, idx int8) topo.Tile {
	return p.ctx.Areas.TilesIn(area)[idx]
}

type arReq struct {
	addr      cache.Addr
	requestor topo.Tile
	write     bool
	predicted bool
	forwards  int
	forwarder topo.Tile // -1 unless an L1 forwarded this request
	// Ride-the-message fields (see dirReq): requestor-MSHR updates
	// accumulated along the miss and applied at delivery.
	links    int16 // mesh links traversed by the request legs
	acks     int16 // sharer/broadcast acks the write must collect
	homeAck  int8  // pending Change_Owner / unblock gates
	clsPlus1 int8  // resolved MissClass + 1 (0 = not resolved yet)
}

// Access implements Engine.
func (p *Arin) Access(tile topo.Tile, addr cache.Addr, write bool, onDone func()) {
	ctx := p.ctx.At(tile)
	ctx.chargeVM(tile)
	t := p.tiles[tile]
	if _, pending := t.mshr.Lookup(addr); pending {
		t.stallL1(addr, func() { p.Access(tile, addr, write, onDone) })
		return
	}
	if t.blocked(addr) {
		// Three-phase broadcast in progress: wait for the unblock.
		t.stallL1(addr, func() { p.Access(tile, addr, write, onDone) })
		return
	}
	ctx.pw.L1TagRead.Inc()
	if line := t.l1.Lookup(addr); line != nil {
		if !write {
			ctx.pw.L1DataRead.Inc()
			ctx.Profile.Hits++
			ctx.observeRetired(tile, addr, false, true, false)
			ctx.Kernel.After(ctx.Cfg.L1HitLatency, onDone)
			return
		}
		switch line.State {
		case arOwnerModified, arOwnerExclusive:
			line.State = arOwnerModified
			line.Dirty = true
			ctx.pw.L1DataWrite.Inc()
			ctx.Profile.Hits++
			ctx.observeRetired(tile, addr, true, true, false)
			ctx.Kernel.After(ctx.Cfg.L1HitLatency, onDone)
			return
		case arOwnerShared:
			p.ownerWriteHit(tile, addr, line, onDone)
			return
		}
		// Shared or provider copy under a write: full miss path (the
		// home decides between owner transfer and broadcast).
	}
	e := t.mshr.Allocate(addr, write, uint64(ctx.Kernel.Now()))
	e.OnComplete = onDone
	ctx.spanBegin(tile, addr, write)
	r := arReq{addr: addr, requestor: tile, write: write, forwarder: -1}
	ctx.pw.L1CAccess.Inc()
	if ptr, ok := t.l1c.Lookup(addr); ok && topo.Tile(ptr) != tile && !ctx.Cfg.NoPrediction {
		r.predicted = true
		e.Tag = int(MissPredFail)
		ctx.spanEvent("predict-supplier", tile)
		pred := topo.Tile(ptr)
		m := p.msg(tile, r)
		m.tile = pred
		del := ctx.SendCtlArg(tile, pred, p.atL1Fn, m)
		e.Links += del.Hops
		return
	}
	e.Tag = int(MissUnpredHome)
	home := ctx.HomeOf(addr)
	del := ctx.SendCtlArg(tile, home, p.atHomeFn, p.msg(tile, r))
	e.Links += del.Hops
}

// ownerWriteHit: an intra-area owner invalidates its sharers locally,
// exactly like DiCo.
func (p *Arin) ownerWriteHit(tile topo.Tile, addr cache.Addr, line *cache.Line, onDone func()) {
	ctx := p.ctx.At(tile)
	t := p.tiles[tile]
	area := p.areaOf(tile)
	sharers := line.Sharers &^ areaBit(ctx.Areas, tile)
	if sharers == 0 {
		line.State = arOwnerModified
		line.Dirty = true
		ctx.pw.L1DataWrite.Inc()
		ctx.Profile.Hits++
		ctx.observeRetired(tile, addr, true, true, false)
		ctx.Kernel.After(ctx.Cfg.L1HitLatency, onDone)
		return
	}
	e := t.mshr.Allocate(addr, true, uint64(ctx.Kernel.Now()))
	e.OnComplete = onDone
	e.Tag = int(MissPredOwner)
	ctx.spanBegin(tile, addr, true)
	ctx.spanEvent("owner-write-inv", tile)
	e.DataReceived = true
	e.SharerAcks = popcount(sharers)
	for v := sharers; v != 0; v &= v - 1 {
		sharer := p.tileAt(area, int8(bits.TrailingZeros64(v)))
		m := p.msg(tile, arReq{addr: addr, requestor: tile})
		m.tile = sharer
		ctx.SendCtlArg(tile, sharer, p.invalShFn, m)
	}
	line.State = arOwnerModified
	line.Dirty = true
	line.Sharers = 0
	ctx.pw.L1DataWrite.Inc()
	ctx.pw.L1TagWrite.Inc()
}

func (p *Arin) invalidateSharer(ctx *Context, tile topo.Tile, addr cache.Addr, requestor topo.Tile) {
	t := p.tiles[tile]
	ctx.pw.L1TagRead.Inc()
	if _, ok := t.l1.Invalidate(addr); ok {
		ctx.pw.L1TagWrite.Inc()
	}
	if e, ok := t.mshr.Lookup(addr); ok {
		e.InvalidatedWhilePending = true
	}
	t.l1c.Update(addr, int16(requestor))
	ctx.pw.L1CUpdate.Inc()
	m := p.msg(tile, arReq{addr: addr})
	m.tile = requestor
	ctx.SendCtlArg(tile, requestor, p.shAckFn, m)
}

// atL1 handles a request at an L1 cache.
func (p *Arin) atL1(r arReq, tile topo.Tile) {
	ctx := p.ctx.At(tile)
	ctx.chargeVM(r.requestor)
	t := p.tiles[tile]
	if _, pending := t.mshr.Lookup(r.addr); pending {
		// Pooled-arg stalls: a closure here would capture r and force
		// it to the heap on every atL1 call, not just the stalled ones.
		m := p.msg(tile, r)
		m.tile = tile
		t.stallL1Arg(r.addr, p.atL1Fn, m)
		return
	}
	if t.blocked(r.addr) {
		m := p.msg(tile, r)
		m.tile = tile
		t.stallL1Arg(r.addr, p.atL1Fn, m)
		return
	}
	ctx.pw.L1TagRead.Inc()
	line := t.l1.Lookup(r.addr)
	switch {
	case line != nil && arIsOwner(line.State):
		if r.write {
			p.ownerWriteSupply(ctx, r, tile, line)
			return
		}
		if p.areaOf(r.requestor) == p.areaOf(tile) {
			// Local read: plain DiCo behaviour.
			p.cen.l1Class.Touch(int(tile), int(tile))
			p.classifyMiss(&r, byOwner)
			line.Sharers |= areaBit(ctx.Areas, r.requestor)
			if line.State != arOwnerShared {
				line.State = arOwnerShared
			}
			ctx.pw.L1TagWrite.Inc()
			ctx.pw.L1DataRead.Inc()
			p.deliver(ctx, r, tile, arShared, false, int16(tile))
			return
		}
		p.dissolveOwnership(ctx, r, tile, line)
	case line != nil && line.State == arProvider && !r.write &&
		p.areaOf(r.requestor) == p.areaOf(tile):
		if ctx.tracing(r.addr) {
			ctx.Trace(r.addr, "provider %d supplies %d", tile, r.requestor)
		}
		// A provider supplies inside its area; the new copy is a
		// provider too (Section IV-B's optimization).
		p.cen.l1Class.Touch(int(tile), int(tile))
		p.classifyMiss(&r, byProvider)
		ctx.pw.L1DataRead.Inc()
		p.deliver(ctx, r, tile, arProvider, false, int16(tile))
	default:
		// Forward to the home, recording the forwarder so the home
		// can refresh a stale provider pointer (Section IV-B).
		r.forwards++
		r.forwarder = tile
		home := ctx.HomeOf(r.addr)
		m := p.msg(tile, r)
		del := ctx.SendCtlArg(tile, home, p.atHomeFn, m)
		p.cen.l1FwdHome.Touch(int(tile), int(tile))
		m.r.links += int16(del.Hops)
	}
}

// dissolveOwnership is the heart of DiCo-Arin (Section III-B): a read
// from a remote area reaches the L1 owner; the ownership disappears,
// the former owner becomes a provider, the home L2 receives the data
// (and becomes a provider), and the requestor becomes a provider.
func (p *Arin) dissolveOwnership(ctx *Context, r arReq, owner topo.Tile, line *cache.Line) {
	if ctx.tracing(r.addr) {
		ctx.Trace(r.addr, "dissolve at owner %d for %d", owner, r.requestor)
	}
	p.cen.dissolveClass.Touch(int(owner), int(owner))
	p.classifyMiss(&r, byOwner)
	ownerArea := p.areaOf(owner)
	dirty := line.Dirty
	line.State = arProvider
	line.Dirty = false
	line.Sharers = 0 // former sharers survive silently; broadcast covers them
	line.Owner = -1
	ctx.pw.L1TagWrite.Inc()
	ctx.pw.L1DataRead.Inc()
	p.deliver(ctx, r, owner, arProvider, false, int16(owner))
	home := ctx.HomeOf(r.addr)
	reqArea := p.areaOf(r.requestor)
	ctx.SendData(owner, home, func() {
		hctx := p.ctx.At(home)
		p.tiles[home].setStamp(r.addr, hctx.Kernel.Now())
		var propos [cache.MaxSimAreas]int8
		for a := range propos {
			propos[a] = -1
		}
		propos[ownerArea] = p.areaIdx(owner)
		propos[reqArea] = p.areaIdx(r.requestor)
		p.insertL2Inter(hctx, home, r.addr, dirty, propos, func() {
			if p.tiles[home].l2c.Invalidate(r.addr) {
				hctx.pw.L2CUpdate.Inc()
			}
			p.tiles[home].clearRecall(r.addr)
			p.tiles[home].wakeHome(hctx.Kernel, r.addr)
		})
	})
}

// ownerWriteSupply: intra-area ownership transfer, as in DiCo.
func (p *Arin) ownerWriteSupply(ctx *Context, r arReq, owner topo.Tile, line *cache.Line) {
	p.cen.ownerWClass.Touch(int(owner), int(owner))
	p.classifyMiss(&r, byOwner)
	area := p.areaOf(owner)
	sharers := line.Sharers &^ areaBit(ctx.Areas, owner)
	if p.areaOf(r.requestor) == area {
		sharers &^= areaBit(ctx.Areas, r.requestor)
	}
	// The ack expectations ride to the requestor with the data; an ack
	// arriving first drives its MSHR counter transiently negative,
	// which Done() tolerates.
	p.cen.ownerWAcks.Touch(int(owner), int(owner))
	r.acks += int16(popcount(sharers))
	r.homeAck++
	for v := sharers; v != 0; v &= v - 1 {
		sharer := p.tileAt(area, int8(bits.TrailingZeros64(v)))
		m := p.msg(owner, arReq{addr: r.addr, requestor: r.requestor})
		m.tile = sharer
		ctx.SendCtlArg(owner, sharer, p.invalShFn, m)
	}
	ctx.pw.L1DataRead.Inc()
	ctx.pw.L1TagWrite.Inc()
	p.tiles[owner].l1.Invalidate(r.addr)
	p.tiles[owner].l1c.Update(r.addr, int16(r.requestor))
	ctx.pw.L1CUpdate.Inc()
	p.deliver(ctx, r, owner, arOwnerModified, true, -1)
	home := ctx.HomeOf(r.addr)
	m := p.msg(owner, arReq{addr: r.addr})
	m.tile = r.requestor
	m.stamp = ctx.Kernel.Now()
	ctx.SendCtlArg(owner, home, p.coFn, m) // Change_Owner
}

// atHome dispatches at the home bank.
func (p *Arin) atHome(r arReq) {
	home := p.ctx.HomeOf(r.addr)
	ctx := p.ctx.At(home)
	ctx.chargeVM(r.requestor)
	th := p.tiles[home]
	if th.homeBusy(r.addr) || th.recallMarked(r.addr) {
		th.stallHomeArg(r.addr, p.atHomeFn, p.msg(home, r))
		return
	}
	ctx.pw.L2TagRead.Inc()
	ctx.pw.L2CAccess.Inc()
	if ptr, ok := th.l2c.Lookup(r.addr); ok && th.l2.Peek(r.addr) == nil {
		ownerTile := topo.Tile(ptr)
		if ownerTile == r.requestor || r.forwards >= maxForwards {
			ctx.spanRetry(r.requestor)
			// The retry keeps the accumulated rides: those hops and ack
			// expectations really happened.
			nr := r
			nr.forwards = 0
			nr.forwarder = -1
			ctx.Kernel.AfterArg(retryBackoff, p.atHomeFn, p.msg(home, nr))
			return
		}
		r.forwards++
		ctx.spanEvent("home-forward-owner", home)
		m := p.msg(home, r)
		m.tile = ownerTile
		del := ctx.SendCtlArg(home, ownerTile, p.atL1Fn, m)
		p.cen.homeFwd.Touch(int(home), int(home))
		m.r.links += int16(del.Hops)
		return
	}
	l2line := th.l2.Lookup(r.addr)
	if l2line != nil {
		// A stale Change_Owner may have re-installed an L2C$ pointer
		// after the block returned home; the L2 line wins.
		if th.l2c.Invalidate(r.addr) {
			ctx.pw.L2CUpdate.Inc()
		}
	}
	if l2line == nil {
		// Not on chip: the pooled node rides the whole request ->
		// latency -> data pipeline (memReqFn/memRespFn/memFillFn).
		p.updateL2C(ctx, home, r.addr, r.requestor)
		mc := ctx.Mem.For(r.addr)
		m := p.msg(home, r)
		del := ctx.SendCtlArg(home, mc, p.memReqFn, m)
		p.cen.homeMemFetch.Touch(int(home), int(home))
		m.r.links += int16(del.Hops)
		return
	}
	if l2line.State == l2ArinInter {
		p.homeInter(ctx, r, home, l2line)
		return
	}
	p.homeOwned(ctx, r, home, l2line)
}

// homeInter serves a request for a block shared between areas: the
// block is always present in the home L2 (the design decision that
// removes DiCo-Providers' 5-hop path).
func (p *Arin) homeInter(ctx *Context, r arReq, home topo.Tile, l2line *cache.Line) {
	if ctx.tracing(r.addr) {
		ctx.Trace(r.addr, "home-inter %d serves %d write=%v fwd=%d", home, r.requestor, r.write, r.forwarder)
	}
	th := p.tiles[home]
	reqArea := p.areaOf(r.requestor)
	if r.write {
		p.broadcastInvalidation(ctx, r, home, l2line)
		return
	}
	// Stale-provider fixup: the forwarder is no longer a provider.
	if r.forwarder >= 0 {
		fwdArea := p.areaOf(r.forwarder)
		if l2line.ProPos[fwdArea] == p.areaIdx(r.forwarder) {
			if fwdArea == reqArea {
				l2line.ProPos[fwdArea] = p.areaIdx(r.requestor)
			} else {
				l2line.ProPos[fwdArea] = -1
			}
			ctx.pw.L2TagWrite.Inc()
		}
	}
	p.cen.homeInterClass.Touch(int(home), int(home))
	p.classifyMiss(&r, byHome)
	ctx.pw.L2DataRead.Inc()
	// The reply carries the identity of the area's provider so the
	// requestor's L1C$ points at it for the next miss.
	hint := int16(-1)
	if l2line.ProPos[reqArea] >= 0 {
		provTile := p.tileAt(reqArea, l2line.ProPos[reqArea])
		if provTile != r.requestor {
			hint = int16(provTile)
		}
	} else {
		l2line.ProPos[reqArea] = p.areaIdx(r.requestor)
		ctx.pw.L2TagWrite.Inc()
	}
	th.l2.Touch(l2line)
	p.deliver(ctx, r, home, arProvider, false, hint)
}

// homeOwned serves a request when the home L2 owns the block with
// (at most) one area's sharers tracked precisely.
func (p *Arin) homeOwned(ctx *Context, r arReq, home topo.Tile, l2line *cache.Line) {
	if ctx.tracing(r.addr) {
		ctx.Trace(r.addr, "home-owned %d serves %d write=%v areatag=%d sharers=%#x", home, r.requestor, r.write, l2line.AreaTag, l2line.Sharers)
	}
	th := p.tiles[home]
	reqArea := p.areaOf(r.requestor)
	if r.write {
		// L2-owner write: invalidate the tracked sharers, transfer
		// ownership to the writer. The ack expectations ride on the
		// data message.
		p.cen.homeOwnedClass.Touch(int(home), int(home))
		p.classifyMiss(&r, byHome)
		var sharers uint64
		area := int(l2line.AreaTag)
		if area >= 0 {
			sharers = l2line.Sharers
			if area == reqArea {
				sharers &^= areaBit(ctx.Areas, r.requestor)
			}
		}
		p.cen.homeOwnedAcks.Touch(int(home), int(home))
		r.acks += int16(popcount(sharers))
		for v := sharers; v != 0; v &= v - 1 {
			sharer := p.tileAt(area, int8(bits.TrailingZeros64(v)))
			m := p.msg(home, arReq{addr: r.addr, requestor: r.requestor})
			m.tile = sharer
			ctx.SendCtlArg(home, sharer, p.invalShFn, m)
		}
		ctx.pw.L2DataRead.Inc()
		th.l2.Invalidate(r.addr)
		ctx.pw.L2TagWrite.Inc()
		p.updateL2C(ctx, home, r.addr, r.requestor)
		p.deliver(ctx, r, home, arOwnerModified, true, -1)
		return
	}
	// Read with the L2 as owner.
	if int(l2line.AreaTag) == reqArea || l2line.AreaTag < 0 {
		p.cen.homeOwnedClass.Touch(int(home), int(home))
		p.classifyMiss(&r, byHome)
		if l2line.AreaTag < 0 {
			l2line.AreaTag = int8(reqArea)
		}
		l2line.Sharers |= areaBit(ctx.Areas, r.requestor)
		ctx.pw.L2DataRead.Inc()
		ctx.pw.L2TagWrite.Inc()
		p.deliver(ctx, r, home, arShared, false, -1)
		return
	}
	// A second area starts reading: the block becomes shared between
	// areas. The previously tracked sharers silently become
	// broadcast-covered copies.
	p.cen.homeOwnedClass.Touch(int(home), int(home))
	p.classifyMiss(&r, byHome)
	l2line.State = l2ArinInter
	for a := range l2line.ProPos {
		l2line.ProPos[a] = -1
	}
	l2line.ProPos[reqArea] = p.areaIdx(r.requestor)
	l2line.Sharers = 0
	l2line.AreaTag = -1
	ctx.pw.L2DataRead.Inc()
	ctx.pw.L2TagWrite.Inc()
	p.deliver(ctx, r, home, arProvider, false, -1)
}

// broadcastInvalidation is the three-phase mechanism of Section IV-B1
// for a write to an inter-area block: (1) the home broadcasts the
// invalidation and every L1 blocks the address, (2) every L1 acks the
// requestor, (3) the requestor broadcasts the unblock.
func (p *Arin) broadcastInvalidation(ctx *Context, r arReq, home topo.Tile, l2line *cache.Line) {
	if ctx.tracing(r.addr) {
		ctx.Trace(r.addr, "broadcast inv from home %d for writer %d", home, r.requestor)
	}
	th := p.tiles[home]
	p.cen.bcastClass.Touch(int(home), int(home))
	p.classifyMiss(&r, byHome)
	th.setHomeBusy(r.addr)
	th.l2.Invalidate(r.addr)
	ctx.pw.L2TagWrite.Inc()
	ctx.pw.L2DataRead.Inc()
	p.updateL2C(ctx, home, r.addr, r.requestor)

	expected := ctx.NumTiles() - 1 // broadcast destinations
	if r.requestor != home {
		expected-- // the requestor does not ack itself
	}
	// The ack expectations and the unblock gate ride to the requestor
	// with the data; early acks drive the counter transiently negative.
	p.cen.bcastAcks.Touch(int(home), int(home))
	r.acks += int16(expected)
	r.homeAck++ // released when the unblock phase finishes
	deliverInv := func(dst topo.Tile) {
		dctx := p.ctx.At(dst)
		t := p.tiles[dst]
		dctx.chargeVM(r.requestor)
		dctx.pw.L1TagRead.Inc()
		if _, ok := t.l1.Invalidate(r.addr); ok {
			dctx.pw.L1TagWrite.Inc()
		}
		if e, ok := t.mshr.Lookup(r.addr); ok && dst != r.requestor {
			e.InvalidatedWhilePending = true
		}
		t.l1c.Update(r.addr, int16(r.requestor))
		dctx.pw.L1CUpdate.Inc()
		if dst == r.requestor {
			return
		}
		t.setBlocked(r.addr)
		dctx.SendCtl(dst, r.requestor, func() {
			rctx := p.ctx.At(r.requestor)
			if e, ok := p.tiles[r.requestor].mshr.Lookup(r.addr); ok {
				e.SharerAcks--
				if e.SharerAcks == 0 && e.DataReceived {
					p.unblockAfterWrite(rctx, r)
				}
			}
		})
	}
	// The mesh broadcast excludes the source tile: invalidate the home
	// tile's own L1 copy inline (it is not among the counted acks).
	ctx.pw.L1TagRead.Inc()
	if _, ok := th.l1.Invalidate(r.addr); ok {
		ctx.pw.L1TagWrite.Inc()
	}
	if e, ok := th.mshr.Lookup(r.addr); ok && home != r.requestor {
		e.InvalidatedWhilePending = true
	}
	ctx.spanEvent("bcast-inv", home)
	if ctx.Cfg.BroadcastUnicast {
		ctx.Net.UnicastBroadcast(home, ctx.Net.Config().ControlFlits, deliverInv)
	} else {
		ctx.Net.Broadcast(home, ctx.Net.Config().ControlFlits, deliverInv)
	}
	p.deliverBcast(ctx, r, home)
}

// unblockAfterWrite is phase three: the requestor broadcasts the
// unblock, every L1 resumes, and the home releases the block. It runs
// on the requestor's lane (from the delivery or the last ack).
func (p *Arin) unblockAfterWrite(ctx *Context, r arReq) {
	home := ctx.HomeOf(r.addr)
	e, ok := p.tiles[r.requestor].mshr.Lookup(r.addr)
	if !ok || e.HomeAck <= 0 {
		return // already unblocked
	}
	deliverUnblock := func(dst topo.Tile) {
		dctx := p.ctx.At(dst)
		t := p.tiles[dst]
		if t.blocked(r.addr) {
			t.clearBlocked(r.addr)
			t.wakeL1(dctx.Kernel, r.addr)
		}
		if dst == home {
			th := p.tiles[home]
			th.clearHomeBusy(r.addr)
			th.wakeHome(dctx.Kernel, r.addr)
		}
	}
	ctx.spanEvent("bcast-unblock", r.requestor)
	if ctx.Cfg.BroadcastUnicast {
		ctx.Net.UnicastBroadcast(r.requestor, ctx.Net.Config().ControlFlits, deliverUnblock)
	} else {
		ctx.Net.Broadcast(r.requestor, ctx.Net.Config().ControlFlits, deliverUnblock)
	}
	if r.requestor == home {
		th := p.tiles[home]
		th.clearHomeBusy(r.addr)
		th.wakeHome(ctx.Kernel, r.addr)
	}
	e.HomeAck--
	p.maybeComplete(ctx, r.requestor, r.addr)
}

// evictL2Inter invalidates every copy of an inter-area victim block
// via broadcast, acks collected at the home (Section IV-B1's
// replacement variant), then calls then.
func (p *Arin) evictL2Inter(ctx *Context, home topo.Tile, victim cache.Line, then func()) {
	if ctx.tracing(victim.Addr) {
		ctx.Trace(victim.Addr, "L2 inter eviction at %d", home)
	}
	th := p.tiles[home]
	victimAddr := victim.Addr
	th.setHomeBusy(victimAddr)
	// pending lives at the home; the ack sends below run on the home's
	// lane, so every mutation is single-lane.
	pending := ctx.NumTiles() - 1
	finishAcks := func() {
		hctx := p.ctx.At(home)
		// Phase three: home broadcasts the unblock.
		deliverUnblock := func(dst topo.Tile) {
			dctx := p.ctx.At(dst)
			t := p.tiles[dst]
			if t.blocked(victimAddr) {
				t.clearBlocked(victimAddr)
				t.wakeL1(dctx.Kernel, victimAddr)
			}
		}
		if hctx.Cfg.BroadcastUnicast {
			hctx.Net.UnicastBroadcast(home, hctx.Net.Config().ControlFlits, deliverUnblock)
		} else {
			hctx.Net.Broadcast(home, hctx.Net.Config().ControlFlits, deliverUnblock)
		}
		if victim.Dirty {
			mc := hctx.Mem.For(victimAddr)
			hctx.SendDataArg(home, mc, p.flushFn, mc)
		}
		th.clearHomeBusy(victimAddr)
		th.wakeHome(hctx.Kernel, victimAddr)
		then()
	}
	deliverInv := func(dst topo.Tile) {
		dctx := p.ctx.At(dst)
		t := p.tiles[dst]
		dctx.pw.L1TagRead.Inc()
		if _, ok := t.l1.Invalidate(victimAddr); ok {
			dctx.pw.L1TagWrite.Inc()
		}
		if e, ok := t.mshr.Lookup(victimAddr); ok {
			e.InvalidatedWhilePending = true
		}
		t.setBlocked(victimAddr)
		dctx.SendCtl(dst, home, func() {
			pending--
			if pending == 0 {
				finishAcks()
			}
		})
	}
	// Invalidate the home tile's own L1 copy inline (the broadcast
	// excludes the source tile, and its ack is not counted).
	ctx.pw.L1TagRead.Inc()
	if _, ok := th.l1.Invalidate(victimAddr); ok {
		ctx.pw.L1TagWrite.Inc()
	}
	if e, ok := th.mshr.Lookup(victimAddr); ok {
		e.InvalidatedWhilePending = true
	}
	if ctx.Cfg.BroadcastUnicast {
		ctx.Net.UnicastBroadcast(home, ctx.Net.Config().ControlFlits, deliverInv)
	} else {
		ctx.Net.Broadcast(home, ctx.Net.Config().ControlFlits, deliverInv)
	}
}

// deliver sends the block to the requestor and completes on arrival;
// the census touch happens on the requestor's lane in deliverFn.
func (p *Arin) deliver(ctx *Context, r arReq, from topo.Tile, state cache.State, dirty bool, supplier int16) {
	m := p.msg(from, r)
	m.state, m.dirty, m.supplier, m.bcast = state, dirty, supplier, false
	del := ctx.SendDataArg(from, r.requestor, p.deliverFn, m)
	m.r.links += int16(del.Hops)
}

// deliverBcast is deliver for a three-phase broadcast write: the
// delivery additionally checks whether every ack already arrived and,
// if so, runs the unblock phase.
func (p *Arin) deliverBcast(ctx *Context, r arReq, from topo.Tile) {
	m := p.msg(from, r)
	m.state, m.dirty, m.supplier, m.bcast = arOwnerModified, true, -1, true
	del := ctx.SendDataArg(from, r.requestor, p.deliverFn, m)
	m.r.links += int16(del.Hops)
}

// fillL1 installs the block; the supplier hint (provider or owner)
// goes into the line for L1C$ retention on eviction.
func (p *Arin) fillL1(ctx *Context, tile topo.Tile, addr cache.Addr, state cache.State, dirty bool, supplier int16) {
	if ctx.tracing(addr) {
		ctx.Trace(addr, "fill at %d state=%d", tile, state)
	}
	t := p.tiles[tile]
	ctx.pw.L1TagWrite.Inc()
	ctx.pw.L1DataWrite.Inc()
	if line := t.l1.Peek(addr); line != nil {
		line.State = state
		line.Dirty = line.Dirty || dirty
		line.Sharers = 0
		if supplier >= 0 {
			line.Owner = supplier
		} else {
			line.Owner = -1
		}
		t.l1.Touch(line)
		return
	}
	victim, valid := t.l1.Victim(addr)
	if valid {
		p.evictL1(ctx, tile, *victim)
		t.l1.Invalidate(victim.Addr)
	}
	nl := victim
	t.l1.Fill(nl, addr, state)
	nl.Dirty = dirty
	if supplier >= 0 {
		nl.Owner = supplier
	}
	t.l1c.Invalidate(addr)
}

// evictL1: shared and provider copies leave silently (the provider
// pointer at the home is refreshed lazily by the forwarder fixup);
// owners transfer to a local sharer or write back to the home.
func (p *Arin) evictL1(ctx *Context, tile topo.Tile, victim cache.Line) {
	if ctx.tracing(victim.Addr) {
		ctx.Trace(victim.Addr, "L1 evict at %d state=%d", tile, victim.State)
	}
	t := p.tiles[tile]
	switch victim.State {
	case arShared, arProvider:
		if victim.Owner >= 0 {
			t.l1c.Update(victim.Addr, victim.Owner)
			ctx.pw.L1CUpdate.Inc()
		}
	default: // owner states
		area := p.areaOf(tile)
		sharers := victim.Sharers &^ areaBit(ctx.Areas, tile)
		if sharers != 0 {
			p.transferOwnership(ctx, tile, victim.Addr, area, sharers, sharers, victim.Dirty)
		} else {
			p.writebackToHome(ctx, tile, victim.Addr, victim.Dirty, area, 0)
		}
	}
}

// transferOwnership passes ownership to a sharer in the owner's area.
// The data rides the offer chain, so when every candidate declines it
// writes back from wherever the chain ends — each send's source is the
// tile whose lane is executing.
func (p *Arin) transferOwnership(ctx *Context, from topo.Tile, addr cache.Addr, area int,
	tryList, vector uint64, dirty bool) {
	idx := int8(-1)
	forEachBit(tryList, func(i int) {
		if idx < 0 {
			idx = int8(i)
		}
	})
	if idx < 0 {
		p.writebackToHome(ctx, from, addr, dirty, area, vector)
		return
	}
	target := p.tileAt(area, idx)
	rest := tryList &^ (uint64(1) << uint(idx))
	ctx.SendCtl(from, target, func() {
		tctx := p.ctx.At(target)
		t := p.tiles[target]
		if _, pending := t.mshr.Lookup(addr); pending {
			// Skip (never stall behind) a candidate with a miss in
			// flight; it stays in the vector so the next owner's code
			// covers its fill.
			p.transferOwnership(tctx, target, addr, area, rest, vector, dirty)
			return
		}
		tctx.pw.L1TagRead.Inc()
		line := t.l1.Peek(addr)
		if line == nil || line.State != arShared {
			p.transferOwnership(tctx, target, addr, area, rest, vector&^(uint64(1)<<uint(idx)), dirty)
			return
		}
		line.State = arOwnerShared
		line.Dirty = dirty
		line.Sharers = vector &^ (uint64(1) << uint(idx))
		line.Owner = -1
		tctx.pw.L1TagWrite.Inc()
		home := tctx.HomeOf(addr)
		stamp := tctx.Kernel.Now()
		tctx.SendCtl(target, home, func() {
			hctx := p.ctx.At(home)
			p.homeOwnerUpdate(hctx, home, addr, target, stamp)
			hctx.SendCtl(home, target, func() {}) // ack
		})
		forEachBit(vector&^(uint64(1)<<uint(idx)), func(i int) {
			sharer := p.tileAt(area, int8(i))
			tctx.SendCtl(target, sharer, func() {
				sctx := p.ctx.At(sharer)
				st := p.tiles[sharer]
				if l := st.l1.Peek(addr); l != nil && l.State == arShared {
					l.Owner = int16(target)
				} else {
					st.l1c.Update(addr, int16(target))
					sctx.pw.L1CUpdate.Inc()
				}
			})
		})
	})
}

// writebackToHome returns ownership to the home, which becomes an
// owner-form L2 entry tracking any leftover sharers of the owner's
// area (a conservative superset is safe).
func (p *Arin) writebackToHome(ctx *Context, tile topo.Tile, addr cache.Addr, dirty bool, area int, leftover uint64) {
	home := ctx.HomeOf(addr)
	areaTag := int8(-1)
	if leftover != 0 {
		areaTag = int8(area)
	}
	ctx.pw.L1DataRead.Inc()
	ctx.SendData(tile, home, func() {
		hctx := p.ctx.At(home)
		p.tiles[home].setStamp(addr, hctx.Kernel.Now())
		p.insertL2Owned(hctx, home, addr, dirty, areaTag, leftover, func() {
			if p.tiles[home].l2c.Invalidate(addr) {
				hctx.pw.L2CUpdate.Inc()
			}
			p.tiles[home].clearRecall(addr)
			p.tiles[home].wakeHome(hctx.Kernel, addr)
		})
	})
}

func (p *Arin) homeOwnerUpdate(ctx *Context, home topo.Tile, addr cache.Addr, owner topo.Tile, stamp sim.Time) {
	if ctx.tracing(addr) {
		ctx.Trace(addr, "home owner update -> %d (stamp %d)", owner, stamp)
	}
	th := p.tiles[home]
	if !th.stampIfNewer(addr, stamp) {
		return
	}
	p.updateL2C(ctx, home, addr, owner)
	th.clearRecall(addr)
	th.wakeHome(ctx.Kernel, addr)
}

func (p *Arin) updateL2C(ctx *Context, home topo.Tile, addr cache.Addr, owner topo.Tile) {
	th := p.tiles[home]
	evicted, evictedPtr, displaced := th.l2c.Update(addr, int16(owner))
	ctx.pw.L2CUpdate.Inc()
	if displaced {
		p.recallOwnership(ctx, home, evicted, topo.Tile(evictedPtr))
	}
}

// recallOwnership returns an L1 owner's block to the home when its
// L2C$ entry is displaced. The former owner stays on as a sharer of
// an owner-form home entry. The evicted pointer names the owner
// directly, so the recall is a single message — no chip-wide L1 scan.
// The pointer may be stale (ownership in motion); relinquish's guards
// handle that: a pending miss stalls the recall behind it, a
// non-owner drops it and the in-flight Change_Owner clears the marker
// when it lands.
func (p *Arin) recallOwnership(ctx *Context, home topo.Tile, addr cache.Addr, owner topo.Tile) {
	if ctx.tracing(addr) {
		ctx.Trace(addr, "recall issued from home %d", home)
	}
	p.tiles[home].markRecall(addr)
	p.cen.recallScan.Touch(int(home), int(home))
	ctx.SendCtl(home, owner, func() { p.relinquish(home, owner, addr) })
}

func (p *Arin) relinquish(home, owner topo.Tile, addr cache.Addr) {
	ctx := p.ctx.At(owner)
	if ctx.tracing(addr) {
		ctx.Trace(addr, "relinquish at %d", owner)
	}
	t := p.tiles[owner]
	if _, pending := t.mshr.Lookup(addr); pending {
		t.stallL1(addr, func() { p.relinquish(home, owner, addr) })
		return
	}
	ctx.pw.L1TagRead.Inc()
	line := t.l1.Peek(addr)
	if line == nil || !arIsOwner(line.State) {
		// Stale recall: ownership moved on. The Change_Owner that moved
		// it clears the recall marker at the home.
		if ctx.tracing(addr) {
			ctx.Trace(addr, "relinquish at %d found no owner line", owner)
		}
		return
	}
	area := p.areaOf(owner)
	dirty := line.Dirty
	sharers := (line.Sharers | areaBit(ctx.Areas, owner))
	line.State = arShared
	line.Dirty = false
	line.Sharers = 0
	line.Owner = -1
	ctx.pw.L1TagWrite.Inc()
	ctx.pw.L1DataRead.Inc()
	ctx.SendData(owner, home, func() {
		hctx := p.ctx.At(home)
		p.tiles[home].setStamp(addr, hctx.Kernel.Now())
		p.insertL2Owned(hctx, home, addr, dirty, int8(area), sharers, func() {
			if p.tiles[home].l2c.Invalidate(addr) {
				hctx.pw.L2CUpdate.Inc()
			}
			p.tiles[home].clearRecall(addr)
			p.tiles[home].wakeHome(hctx.Kernel, addr)
		})
	})
}

// insertL2Owned installs an owner-form entry at the home.
func (p *Arin) insertL2Owned(ctx *Context, home topo.Tile, addr cache.Addr, dirty bool,
	areaTag int8, sharers uint64, then func()) {
	p.insertL2(ctx, home, addr, dirty, l2ArinOwned, areaTag, sharers, nil, then)
}

// insertL2Inter installs an inter-area entry at the home.
func (p *Arin) insertL2Inter(ctx *Context, home topo.Tile, addr cache.Addr, dirty bool,
	propos [cache.MaxSimAreas]int8, then func()) {
	p.insertL2(ctx, home, addr, dirty, l2ArinInter, -1, 0, &propos, then)
}

func (p *Arin) insertL2(ctx *Context, home topo.Tile, addr cache.Addr, dirty bool, state cache.State,
	areaTag int8, sharers uint64, propos *[cache.MaxSimAreas]int8, then func()) {
	if ctx.tracing(addr) {
		ctx.Trace(addr, "insert L2 at %d form=%d areatag=%d sharers=%#x", home, state, areaTag, sharers)
	}
	th := p.tiles[home]
	apply := func(line *cache.Line) {
		line.Dirty = line.Dirty || dirty
		line.AreaTag = areaTag
		if state == l2ArinInter {
			if propos != nil {
				copy(line.ProPos[:], propos[:])
			}
			line.Sharers = 0
		} else {
			line.Sharers = sharers
			for a := range line.ProPos {
				line.ProPos[a] = -1
			}
		}
		if then != nil {
			then()
		}
	}
	if line := th.l2.Peek(addr); line != nil {
		ctx.pw.L2TagWrite.Inc()
		ctx.pw.L2DataWrite.Inc()
		line.State = state
		th.l2.Touch(line)
		apply(line)
		return
	}
	victim, valid := th.l2.Victim(addr)
	if valid {
		// Remove the victim from the array immediately (so no
		// concurrent insertion picks the same way), invalidate its
		// copies, then retry the insertion.
		snapshot := *victim
		th.l2.Invalidate(snapshot.Addr)
		ctx.pw.L2TagWrite.Inc()
		retry := func() { p.insertL2(ctx, home, addr, dirty, state, areaTag, sharers, propos, then) }
		if snapshot.State == l2ArinInter {
			p.evictL2Inter(ctx, home, snapshot, retry)
		} else {
			p.evictL2OwnedVictim(ctx, home, snapshot, retry)
		}
		return
	}
	ctx.pw.L2TagWrite.Inc()
	ctx.pw.L2DataWrite.Inc()
	th.l2.Fill(victim, addr, state)
	apply(victim)
}

// evictL2OwnedVictim invalidates an owner-form victim's tracked
// sharers (a single area: cheap unicasts), then proceeds. The pending
// counter is touched only on the home tile's lane: every ack closure
// executes there.
func (p *Arin) evictL2OwnedVictim(ctx *Context, home topo.Tile, victim cache.Line, then func()) {
	if ctx.tracing(victim.Addr) {
		ctx.Trace(victim.Addr, "L2 owned eviction at %d sharers=%#x", home, victim.Sharers)
	}
	th := p.tiles[home]
	victimAddr := victim.Addr
	sharers := victim.Sharers
	area := int(victim.AreaTag)
	th.setHomeBusy(victimAddr)
	pending := 0
	if area >= 0 {
		pending = popcount(sharers)
	}
	finish := func() {
		hctx := p.ctx.At(home)
		if victim.Dirty {
			mc := hctx.Mem.For(victimAddr)
			hctx.SendDataArg(home, mc, p.flushFn, mc)
		}
		th.clearHomeBusy(victimAddr)
		th.wakeHome(hctx.Kernel, victimAddr)
		then()
	}
	if pending == 0 {
		finish()
		return
	}
	forEachBit(sharers, func(i int) {
		sharer := p.tileAt(area, int8(i))
		ctx.SendCtl(home, sharer, func() {
			sctx := p.ctx.At(sharer)
			t := p.tiles[sharer]
			sctx.pw.L1TagRead.Inc()
			if _, ok := t.l1.Invalidate(victimAddr); ok {
				sctx.pw.L1TagWrite.Inc()
			}
			if e, ok := t.mshr.Lookup(victimAddr); ok {
				e.InvalidatedWhilePending = true
			}
			sctx.SendCtl(sharer, home, func() {
				pending--
				if pending == 0 {
					finish()
				}
			})
		})
	})
}

// classifyMiss resolves the miss class and stores it on the request so
// it rides to the requestor with the data message.
func (p *Arin) classifyMiss(r *arReq, kind supplierKind) {
	r.clsPlus1 = int8(classify(r.predicted, r.forwards, kind)) + 1
}

func (p *Arin) maybeComplete(ctx *Context, tile topo.Tile, addr cache.Addr) {
	t := p.tiles[tile]
	e, ok := t.mshr.Lookup(addr)
	if !ok || !e.Done() {
		return
	}
	dropped := e.InvalidatedWhilePending && !e.Write
	if dropped {
		// The fill raced an invalidation. Dropping the line is the
		// safe resolution, but it must go through the regular
		// replacement protocol so any ownership or providership the
		// fill carried is handed back properly.
		if line := t.l1.Peek(addr); line != nil {
			snapshot := *line
			t.l1.Invalidate(addr)
			p.evictL1(ctx, tile, snapshot)
		}
	}
	cls := MissClass(e.Tag)
	ctx.Profile.Count[cls]++
	ctx.Profile.Links[cls] += uint64(e.Links)
	ctx.spanEnd(tile, cls, dropped)
	done := e.OnComplete
	t.mshr.Release(addr)
	ctx.observeRetired(tile, addr, e.Write, false, e.InvalidatedWhilePending)
	t.wakeL1(ctx.Kernel, addr)
	if done != nil {
		done()
	}
}

// ForEachCopy implements Engine.
func (p *Arin) ForEachCopy(addr cache.Addr, fn func(CopyInfo)) {
	forEachCopy(p.tiles, p.ctx.HomeOf(addr), addr, func(l *cache.Line) (bool, bool) {
		return arIsOwner(l.State), l.State == arOwnerModified || l.State == arOwnerExclusive
	}, fn)
}

// ForEachPending implements Engine.
func (p *Arin) ForEachPending(fn func(topo.Tile, *cache.MSHREntry)) {
	forEachPending(p.tiles, fn)
}

// CheckInvariants implements Engine; call at quiescence. Checks the
// DiCo-Arin invariants: at most one owner chip-wide; an owned block's
// copies stay in the owner's area and are covered by its sharing code;
// inter-area blocks are present in the home L2; provider copies exist
// only for blocks whose home entry is inter-area (or mid-transition).
func (p *Arin) CheckInvariants() {
	ctx := p.ctx
	type info struct {
		owner   topo.Tile
		holders map[topo.Tile]cache.State
	}
	blocks := make(map[cache.Addr]*info)
	for i, t := range p.tiles {
		tile := topo.Tile(i)
		t.l1.ForEachValid(func(l *cache.Line) {
			bi := blocks[l.Addr]
			if bi == nil {
				bi = &info{owner: -1, holders: map[topo.Tile]cache.State{}}
				blocks[l.Addr] = bi
			}
			bi.holders[tile] = l.State
			if arIsOwner(l.State) {
				if bi.owner >= 0 {
					panic(fmt.Sprintf("arin: block %#x has two owners (%d, %d)", l.Addr, bi.owner, tile))
				}
				bi.owner = tile
			}
		})
	}
	addrs := make([]cache.Addr, 0, len(blocks))
	for a := range blocks {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		bi := blocks[addr]
		home := ctx.HomeOf(addr)
		th := p.tiles[home]
		l2line := th.l2.Peek(addr)
		if bi.owner >= 0 {
			ol := p.tiles[bi.owner].l1.Peek(addr)
			if ol.State == arOwnerExclusive || ol.State == arOwnerModified {
				if len(bi.holders) > 1 {
					panic(fmt.Sprintf("arin: block %#x exclusive at %d with %d holders",
						addr, bi.owner, len(bi.holders)))
				}
			}
			// Shared copies tracked by the owner must be in its area.
			area := p.areaOf(bi.owner)
			for t, s := range bi.holders {
				if s == arShared && p.areaOf(t) == area {
					if ol.Sharers&areaBit(ctx.Areas, t) == 0 {
						panic(fmt.Sprintf("arin: block %#x sharer %d not in owner %d's code",
							addr, t, bi.owner))
					}
				}
			}
			if ptr, ok := th.l2c.Lookup(addr); ok && topo.Tile(ptr) != bi.owner {
				panic(fmt.Sprintf("arin: block %#x L2C$ %d != owner %d", addr, ptr, bi.owner))
			}
			continue
		}
		// No L1 owner: a home L2 copy must exist for any holders.
		if l2line == nil {
			panic(fmt.Sprintf("arin: block %#x cached (%v) with no owner and no L2 copy",
				addr, bi.holders))
		}
		hasProvider := false
		for _, s := range bi.holders {
			if s == arProvider {
				hasProvider = true
			}
		}
		if hasProvider && l2line.State != l2ArinInter {
			panic(fmt.Sprintf("arin: block %#x has providers but home entry is owner-form", addr))
		}
	}
}

var _ = mesh.Stats{} // mesh types used in broadcast paths above
