// Minimized regression streams for protocol bugs found by the stress
// fuzzer (see stress_test.go). Each stream was shrunk from its failing
// seed with greedy record removal until minimal.
package proto_test

import (
	"testing"

	"repro/internal/check"
	"repro/internal/trace"
)

// seed139Stream reproduces an out-of-order ownership-update livelock
// in the directory protocol (stress seed 139, 16 tiles, 2 blocks):
// an owner handoff notification (old owner -> home, "owner=W") and the
// new owner's later read-downgrade notification (W -> home, "owner=-1")
// travel from different tiles and can arrive reversed. Before the
// ownerStamp guard the stale handoff clobbered the fresh downgrade,
// leaving the home forwarding every request to a tile that only holds
// a shared copy - an unbounded forward/bounce/retry loop.
var seed139Stream = []trace.Record{
	{Tile: 3, Addr: 0x1, Write: true, Gap: 2},
	{Tile: 0, Addr: 0x0, Write: true, Gap: 2},
	{Tile: 7, Addr: 0x1, Write: false, Gap: 2},
	{Tile: 12, Addr: 0x1, Write: true, Gap: 0},
	{Tile: 12, Addr: 0x0, Write: true, Gap: 1},
	{Tile: 2, Addr: 0x0, Write: true, Gap: 3},
	{Tile: 1, Addr: 0x1, Write: true, Gap: 0},
	{Tile: 7, Addr: 0x1, Write: true, Gap: 1},
	{Tile: 2, Addr: 0x1, Write: true, Gap: 2},
	{Tile: 14, Addr: 0x0, Write: true, Gap: 2},
	{Tile: 11, Addr: 0x0, Write: false, Gap: 2},
	{Tile: 4, Addr: 0x1, Write: true, Gap: 0},
	{Tile: 15, Addr: 0x0, Write: false, Gap: 0},
	{Tile: 7, Addr: 0x0, Write: true, Gap: 2},
	{Tile: 8, Addr: 0x0, Write: false, Gap: 0},
	{Tile: 3, Addr: 0x0, Write: true, Gap: 1},
	{Tile: 1, Addr: 0x1, Write: true, Gap: 2},
	{Tile: 7, Addr: 0x1, Write: true, Gap: 3},
	{Tile: 9, Addr: 0x1, Write: true, Gap: 3},
	{Tile: 0, Addr: 0x0, Write: false, Gap: 1},
	{Tile: 11, Addr: 0x1, Write: true, Gap: 0},
	{Tile: 5, Addr: 0x1, Write: false, Gap: 1},
	{Tile: 5, Addr: 0x1, Write: true, Gap: 2},
	{Tile: 12, Addr: 0x1, Write: false, Gap: 2},
	{Tile: 1, Addr: 0x1, Write: true, Gap: 0},
	{Tile: 8, Addr: 0x0, Write: false, Gap: 1},
	{Tile: 1, Addr: 0x0, Write: true, Gap: 0},
	{Tile: 15, Addr: 0x1, Write: false, Gap: 1},
	{Tile: 11, Addr: 0x0, Write: false, Gap: 2},
	{Tile: 12, Addr: 0x0, Write: false, Gap: 0},
	{Tile: 14, Addr: 0x1, Write: true, Gap: 2},
	{Tile: 15, Addr: 0x0, Write: true, Gap: 2},
	{Tile: 2, Addr: 0x0, Write: true, Gap: 2},
	{Tile: 3, Addr: 0x1, Write: true, Gap: 1},
	{Tile: 6, Addr: 0x1, Write: true, Gap: 1},
	{Tile: 0, Addr: 0x1, Write: true, Gap: 0},
	{Tile: 0, Addr: 0x0, Write: false, Gap: 2},
	{Tile: 13, Addr: 0x0, Write: true, Gap: 1},
	{Tile: 0, Addr: 0x0, Write: false, Gap: 1},
	{Tile: 1, Addr: 0x0, Write: false, Gap: 0},
	{Tile: 2, Addr: 0x1, Write: true, Gap: 0},
	{Tile: 13, Addr: 0x1, Write: false, Gap: 0},
	{Tile: 4, Addr: 0x1, Write: false, Gap: 2},
	{Tile: 6, Addr: 0x0, Write: true, Gap: 0},
	{Tile: 14, Addr: 0x0, Write: false, Gap: 0},
	{Tile: 14, Addr: 0x1, Write: true, Gap: 3},
	{Tile: 1, Addr: 0x1, Write: true, Gap: 0},
	{Tile: 0, Addr: 0x0, Write: false, Gap: 2},
	{Tile: 5, Addr: 0x0, Write: true, Gap: 0},
	{Tile: 3, Addr: 0x1, Write: false, Gap: 1},
	{Tile: 7, Addr: 0x1, Write: true, Gap: 2},
	{Tile: 4, Addr: 0x0, Write: true, Gap: 3},
	{Tile: 4, Addr: 0x1, Write: true, Gap: 1},
	{Tile: 3, Addr: 0x1, Write: true, Gap: 1},
	{Tile: 4, Addr: 0x1, Write: true, Gap: 1},
	{Tile: 11, Addr: 0x0, Write: true, Gap: 2},
	{Tile: 6, Addr: 0x0, Write: false, Gap: 1},
	{Tile: 1, Addr: 0x1, Write: true, Gap: 3},
	{Tile: 10, Addr: 0x0, Write: false, Gap: 1},
	{Tile: 1, Addr: 0x0, Write: true, Gap: 2},
	{Tile: 8, Addr: 0x0, Write: true, Gap: 0},
	{Tile: 4, Addr: 0x0, Write: false, Gap: 0},
	{Tile: 6, Addr: 0x1, Write: true, Gap: 1},
	{Tile: 1, Addr: 0x1, Write: false, Gap: 3},
	{Tile: 8, Addr: 0x0, Write: true, Gap: 2},
	{Tile: 2, Addr: 0x0, Write: true, Gap: 3},
	{Tile: 2, Addr: 0x0, Write: true, Gap: 3},
	{Tile: 7, Addr: 0x0, Write: true, Gap: 2},
	{Tile: 7, Addr: 0x1, Write: true, Gap: 2},
	{Tile: 10, Addr: 0x1, Write: false, Gap: 0},
	{Tile: 9, Addr: 0x1, Write: true, Gap: 1},
	{Tile: 9, Addr: 0x0, Write: false, Gap: 0},
	{Tile: 15, Addr: 0x1, Write: true, Gap: 3},
	{Tile: 10, Addr: 0x0, Write: true, Gap: 0},
	{Tile: 14, Addr: 0x0, Write: true, Gap: 3},
	{Tile: 15, Addr: 0x0, Write: false, Gap: 2},
	{Tile: 10, Addr: 0x1, Write: true, Gap: 0},
	{Tile: 1, Addr: 0x0, Write: true, Gap: 1},
	{Tile: 3, Addr: 0x1, Write: true, Gap: 2},
	{Tile: 14, Addr: 0x1, Write: true, Gap: 2},
	{Tile: 10, Addr: 0x0, Write: false, Gap: 3},
	{Tile: 1, Addr: 0x0, Write: true, Gap: 1},
	{Tile: 3, Addr: 0x1, Write: false, Gap: 1},
	{Tile: 10, Addr: 0x1, Write: true, Gap: 1},
	{Tile: 10, Addr: 0x0, Write: true, Gap: 2},
	{Tile: 9, Addr: 0x1, Write: true, Gap: 2},
	{Tile: 6, Addr: 0x0, Write: false, Gap: 2},
	{Tile: 8, Addr: 0x1, Write: true, Gap: 3},
	{Tile: 3, Addr: 0x0, Write: true, Gap: 3},
	{Tile: 8, Addr: 0x1, Write: true, Gap: 3},
	{Tile: 6, Addr: 0x1, Write: false, Gap: 1},
	{Tile: 6, Addr: 0x0, Write: true, Gap: 3},
	{Tile: 14, Addr: 0x0, Write: false, Gap: 3},
	{Tile: 3, Addr: 0x1, Write: true, Gap: 3},
	{Tile: 10, Addr: 0x1, Write: true, Gap: 2},
	{Tile: 8, Addr: 0x1, Write: true, Gap: 3},
	{Tile: 3, Addr: 0x0, Write: false, Gap: 0},
	{Tile: 8, Addr: 0x1, Write: true, Gap: 3},
	{Tile: 8, Addr: 0x0, Write: true, Gap: 3},
	{Tile: 12, Addr: 0x0, Write: true, Gap: 0},
	{Tile: 8, Addr: 0x1, Write: true, Gap: 1},
	{Tile: 8, Addr: 0x1, Write: false, Gap: 0},
	{Tile: 8, Addr: 0x0, Write: false, Gap: 0},
}

// TestRegressionSeed139 runs the minimized livelock stream under the
// checker with the watchdog armed: it must now retire every reference.
func TestRegressionSeed139(t *testing.T) {
	if _, err := check.RunRecord("directory", seed139Stream, 16, 4, 139, false); err != nil {
		t.Fatalf("directory: %v", err)
	}
}
