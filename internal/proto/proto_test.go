package proto

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/memctrl"
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/topo"
)

// testChip wires a small chip for protocol unit tests.
type testChip struct {
	kernel *sim.Kernel
	ctx    *Context
	eng    Engine
	t      *testing.T
}

// engineMaker builds an engine on a context; the protocol test
// functions are written once and run against all four engines where
// the behaviour is common.
type engineMaker func(*Context) Engine

func newTestChip(t *testing.T, mk engineMaker) *testChip {
	return newTestChipSized(t, mk, 64, 4, DefaultConfig())
}

func newTestChipSized(t *testing.T, mk engineMaker, tiles, areas int, cfg Config) *testChip {
	t.Helper()
	kernel := sim.NewKernel(7)
	grid := topo.SquareGrid(tiles)
	net := mesh.New(kernel, grid, mesh.DefaultConfig())
	ar := topo.MustAreas(grid, areas)
	mem := memctrl.Default(grid, kernel.Rand().Fork())
	ctx := &Context{Kernel: kernel, Net: net, Areas: ar, Mem: mem, Cfg: cfg}
	return &testChip{kernel: kernel, ctx: ctx, eng: mk(ctx), t: t}
}

// access runs one reference to completion and returns its latency.
func (c *testChip) access(tile topo.Tile, addr cache.Addr, write bool) sim.Time {
	c.t.Helper()
	start := c.kernel.Now()
	done := false
	c.eng.Access(tile, addr, write, func() { done = true })
	c.kernel.RunUntil(func() bool { return done })
	if !done {
		c.t.Fatalf("access (tile %d, addr %#x, write %v) never completed", tile, addr, write)
	}
	end := c.kernel.Now()
	c.drain()
	return end - start
}

// drain runs all residual events (writebacks, dir updates) so
// invariants can be checked at quiescence.
func (c *testChip) drain() {
	c.t.Helper()
	c.kernel.Run(0)
	c.eng.CheckInvariants()
}

// parallelAccess issues one access per (tile, addr) pair concurrently
// and runs to global completion.
func (c *testChip) parallelAccess(reqs []struct {
	tile  topo.Tile
	addr  cache.Addr
	write bool
}) {
	c.t.Helper()
	remaining := len(reqs)
	for _, r := range reqs {
		c.eng.Access(r.tile, r.addr, r.write, func() { remaining-- })
	}
	c.kernel.RunUntil(func() bool { return remaining == 0 })
	if remaining != 0 {
		c.t.Fatalf("%d parallel accesses never completed", remaining)
	}
	c.drain()
}

// allEngines lists the four protocol constructors for table-driven
// cross-protocol tests.
var allEngines = []struct {
	name string
	mk   engineMaker
}{
	{"directory", func(ctx *Context) Engine { return NewDirectory(ctx) }},
	{"dico", func(ctx *Context) Engine { return NewDiCo(ctx) }},
	{"providers", func(ctx *Context) Engine { return NewProviders(ctx) }},
	{"arin", func(ctx *Context) Engine { return NewArin(ctx) }},
}

// TestCommonReadAfterWrite checks on every protocol that a reader on a
// far tile observes a block after a writer elsewhere modified it, with
// no invariant violations at quiescence.
func TestCommonReadAfterWrite(t *testing.T) {
	for _, e := range allEngines {
		t.Run(e.name, func(t *testing.T) {
			c := newTestChip(t, e.mk)
			const addr cache.Addr = 0x1234
			c.access(5, addr, true)
			c.access(60, addr, false)
			c.access(5, addr, false) // writer reads its own block back
		})
	}
}

// TestCommonHitLatency checks that an L1 hit costs exactly the Table
// III latency on every protocol.
func TestCommonHitLatency(t *testing.T) {
	for _, e := range allEngines {
		t.Run(e.name, func(t *testing.T) {
			c := newTestChip(t, e.mk)
			const addr cache.Addr = 0x40
			c.access(3, addr, false) // warm
			lat := c.access(3, addr, false)
			if lat != c.ctx.Cfg.L1HitLatency {
				t.Errorf("hit latency = %d, want %d", lat, c.ctx.Cfg.L1HitLatency)
			}
			p := c.eng.MissProfile()
			if p.Hits == 0 {
				t.Error("hit not recorded in profile")
			}
		})
	}
}

// TestCommonMemoryLatency checks a cold miss pays the DRAM latency.
func TestCommonMemoryLatency(t *testing.T) {
	for _, e := range allEngines {
		t.Run(e.name, func(t *testing.T) {
			c := newTestChip(t, e.mk)
			lat := c.access(10, 0x999, false)
			if lat < 300 {
				t.Errorf("cold miss latency = %d, want >= 300 (DRAM)", lat)
			}
		})
	}
}

// TestCommonWriteInvalidatesSharers: after many tiles read a block and
// one writes it, re-reads by the old sharers must miss (they were
// invalidated) — observable via the profile's miss count.
func TestCommonWriteInvalidatesSharers(t *testing.T) {
	for _, e := range allEngines {
		t.Run(e.name, func(t *testing.T) {
			c := newTestChip(t, e.mk)
			const addr cache.Addr = 0x2000
			readers := []topo.Tile{1, 2, 3, 17, 33, 49}
			for _, r := range readers {
				c.access(r, addr, false)
			}
			missesBefore := c.eng.MissProfile().TotalMisses()
			c.access(9, addr, true)
			// Every old sharer must re-miss.
			for _, r := range readers {
				c.access(r, addr, false)
			}
			missesAfter := c.eng.MissProfile().TotalMisses()
			newMisses := missesAfter - missesBefore
			if newMisses < uint64(len(readers)) {
				t.Errorf("only %d new misses after invalidating write; want >= %d",
					newMisses, len(readers))
			}
		})
	}
}

// TestCommonWriteSerializesOwnership: concurrent writers to one block
// from many tiles must end with a single owner and no stale copies.
func TestCommonWriteSerializesOwnership(t *testing.T) {
	for _, e := range allEngines {
		t.Run(e.name, func(t *testing.T) {
			c := newTestChip(t, e.mk)
			const addr cache.Addr = 0x3000
			var reqs []struct {
				tile  topo.Tile
				addr  cache.Addr
				write bool
			}
			for _, tile := range []topo.Tile{0, 7, 21, 35, 42, 63} {
				reqs = append(reqs, struct {
					tile  topo.Tile
					addr  cache.Addr
					write bool
				}{tile, addr, true})
			}
			c.parallelAccess(reqs)
		})
	}
}

// TestCommonMixedConcurrent stresses racy interleavings of reads and
// writes across several blocks (invariants checked at quiescence).
func TestCommonMixedConcurrent(t *testing.T) {
	for _, e := range allEngines {
		t.Run(e.name, func(t *testing.T) {
			c := newTestChip(t, e.mk)
			rng := sim.NewRand(99)
			var reqs []struct {
				tile  topo.Tile
				addr  cache.Addr
				write bool
			}
			for i := 0; i < 64; i++ {
				reqs = append(reqs, struct {
					tile  topo.Tile
					addr  cache.Addr
					write bool
				}{topo.Tile(i), cache.Addr(0x4000 + uint64(rng.Intn(8))), rng.Intn(4) == 0})
			}
			c.parallelAccess(reqs)
		})
	}
}

// TestCommonRandomSoak drives a random reference stream sequentially
// per tile and checks invariants after each batch.
func TestCommonRandomSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for _, e := range allEngines {
		t.Run(e.name, func(t *testing.T) {
			c := newTestChip(t, e.mk)
			rng := sim.NewRand(123)
			for batch := 0; batch < 20; batch++ {
				var reqs []struct {
					tile  topo.Tile
					addr  cache.Addr
					write bool
				}
				for i := 0; i < 96; i++ {
					reqs = append(reqs, struct {
						tile  topo.Tile
						addr  cache.Addr
						write bool
					}{topo.Tile(rng.Intn(64)), cache.Addr(rng.Intn(64)*64 + rng.Intn(16)), rng.Intn(3) == 0})
				}
				c.parallelAccess(reqs)
			}
		})
	}
}

// TestCommonCapacityEvictions forces L1 evictions with a tiny cache
// and checks the replacement protocols keep the system coherent.
func TestCommonCapacityEvictions(t *testing.T) {
	for _, e := range allEngines {
		t.Run(e.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.L1Sets, cfg.L1Ways = 2, 2 // 4-line L1
			c := newTestChipSized(t, e.mk, 64, 4, cfg)
			// Walk far more blocks than fit, with writes mixed in, on
			// two tiles that share some blocks.
			for i := 0; i < 24; i++ {
				addr := cache.Addr(0x100 + uint64(i))
				c.access(1, addr, i%3 == 0)
				if i%2 == 0 {
					c.access(2, addr, false)
				}
			}
		})
	}
}

// TestCommonL2CapacityEvictions forces L2/directory-entry evictions.
func TestCommonL2CapacityEvictions(t *testing.T) {
	for _, e := range allEngines {
		t.Run(e.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.L2Sets, cfg.L2Ways = 2, 2
			cfg.CCSets, cfg.CCWays = 2, 2
			c := newTestChipSized(t, e.mk, 64, 4, cfg)
			// Blocks all homed at tile 0 to pressure one bank: stride
			// by the tile count.
			for i := 0; i < 24; i++ {
				addr := cache.Addr(uint64(i) * 64)
				c.access(1, addr, i%4 == 0)
				c.access(33, addr, false)
			}
		})
	}
}
