package proto

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/memctrl"
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/topo"
)

// pingPong returns a closed-over round trip that alternates an
// exclusive write to one block between two distant tiles: every
// iteration is a full coherence miss (invalidate the old owner, move
// the data) with no DRAM involvement after the first touch. All
// closures are built once so the loop itself measures only the
// protocol hot path.
func pingPong(eng Engine, kernel *sim.Kernel, fail func(string)) func() {
	const addr cache.Addr = 0x5100
	tiles := [2]topo.Tile{4, 59}
	turn := 0
	completed := false
	done := func() { completed = true }
	cond := func() bool { return completed }
	return func() {
		completed = false
		eng.Access(tiles[turn&1], addr, true, done)
		turn++
		kernel.RunUntil(cond)
		if !completed {
			fail("miss round trip never completed")
		}
	}
}

// TestMissPathNoAllocs gates the steady-state miss path of every
// protocol engine: once the transaction tables, MSHRs, message pools
// and the kernel's node arena have warmed up, a full
// miss-invalidate-transfer round trip must not allocate.
func TestMissPathNoAllocs(t *testing.T) {
	for _, e := range allEngines {
		t.Run(e.name, func(t *testing.T) {
			c := newTestChip(t, e.mk)
			trip := pingPong(c.eng, c.kernel, func(m string) { t.Fatal(m) })
			for i := 0; i < 64; i++ {
				trip()
			}
			if avg := testing.AllocsPerRun(200, trip); avg != 0 {
				t.Errorf("miss round trip allocates %.2f/op, want 0", avg)
			}
			c.drain()
		})
	}
}

// BenchmarkMissPath times one coherence miss round trip per iteration
// on each protocol (see pingPong). Run with -benchmem to watch the
// allocation gate, or with the bench tool's -cpuprofile for a
// flame-level view of the protocol hot path.
func BenchmarkMissPath(b *testing.B) {
	for _, e := range allEngines {
		b.Run(e.name, func(b *testing.B) {
			kernel := sim.NewKernel(7)
			grid := topo.SquareGrid(64)
			net := mesh.New(kernel, grid, mesh.DefaultConfig())
			ar := topo.MustAreas(grid, 4)
			mem := memctrl.Default(grid, kernel.Rand().Fork())
			ctx := &Context{Kernel: kernel, Net: net, Areas: ar, Mem: mem, Cfg: DefaultConfig()}
			eng := e.mk(ctx)
			trip := pingPong(eng, kernel, func(m string) { b.Fatal(m) })
			trip() // cold DRAM fill out of the timed region
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				trip()
			}
		})
	}
}
