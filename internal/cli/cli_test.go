package cli

import (
	"flag"
	"testing"

	"repro/internal/core"
)

func parse(t *testing.T, f *Flags, fs *flag.FlagSet, args ...string) {
	t.Helper()
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	f.Finish()
}

func TestSimFlagsBindAndResolve(t *testing.T) {
	cfg := core.DefaultConfig()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := New(fs, &cfg).Sim().Obs().Shards().Workers()
	parse(t, f, fs,
		"-tiles", "16", "-areas", "4", "-refs", "123", "-warmup", "456",
		"-seed", "9", "-alt", "-nodedup", "-unicast-broadcast",
		"-check", "-profile", "-trace-out", "t.json", "-trace-cap", "7",
		"-sample", "1000", "-sample-cap", "8", "-shards", "3", "-workers", "2")
	if cfg.Tiles != 16 || cfg.Areas != 4 || cfg.RefsPerCore != 123 || cfg.WarmupRefs != 456 || cfg.Seed != 9 {
		t.Errorf("sim fields not bound: %+v", cfg)
	}
	if !cfg.AltPlacement || cfg.Dedup || !cfg.Proto.BroadcastUnicast {
		t.Errorf("placement/dedup/broadcast flags not resolved: %+v", cfg)
	}
	if !cfg.Check || !cfg.Profile || !cfg.Trace || cfg.TraceCap != 7 {
		t.Errorf("observer flags not resolved: %+v", cfg)
	}
	if cfg.SampleEvery != 1000 || cfg.SampleCap != 8 {
		t.Errorf("sampling flags not resolved: %+v", cfg)
	}
	if cfg.Shards != 3 {
		t.Errorf("Shards = %d, want 3", cfg.Shards)
	}
	if f.WorkersN != 2 {
		t.Errorf("WorkersN = %d, want 2", f.WorkersN)
	}
	if f.TraceOut != "t.json" {
		t.Errorf("TraceOut = %q", f.TraceOut)
	}
}

func TestDefaultsComeFromConfig(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.WarmupRefs = 40000
	cfg.Shards = 2
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := New(fs, &cfg).Sim().Obs().Shards()
	parse(t, f, fs)
	if cfg.WarmupRefs != 40000 || cfg.Shards != 2 {
		t.Errorf("pre-seeded defaults lost: %+v", cfg)
	}
	if !cfg.Dedup {
		t.Error("default dedup lost without -nodedup")
	}
	if cfg.Trace || cfg.SampleEvery != 0 {
		t.Errorf("observers armed by default: %+v", cfg)
	}
}

func TestFinishTouchesOnlyBoundGroups(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Dedup = false
	cfg.SampleEvery = 77
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := New(fs, &cfg).Shards()
	parse(t, f, fs, "-shards", "4")
	if cfg.Dedup || cfg.SampleEvery != 77 {
		t.Errorf("unbound groups clobbered: %+v", cfg)
	}
	if cfg.Shards != 4 {
		t.Errorf("Shards = %d, want 4", cfg.Shards)
	}
}

func TestChanged(t *testing.T) {
	cfg := core.DefaultConfig()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := New(fs, &cfg).Sim()
	parse(t, f, fs, "-refs", "25000") // explicit, equal to default
	if !Changed(fs, "refs") {
		t.Error("explicit -refs not detected")
	}
	if Changed(fs, "warmup") {
		t.Error("unset -warmup reported as changed")
	}
}
