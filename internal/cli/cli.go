// Package cli centralizes the command-line surface shared by the
// cmd/* tools. Every tool that drives simulations binds the same flag
// names, defaults and help texts onto its flag set from here, so
// `-seed`, `-check` or `-shards` mean exactly the same thing in
// cmpsim, experiments and bench, and a new simulation knob becomes a
// flag in every tool by touching one file.
package cli

import (
	"flag"

	"repro/internal/core"
	"repro/internal/sim"
)

// Flags binds groups of shared flags onto one flag.FlagSet, writing
// into one core.Config. Call the group methods (Sim, Obs, Shards,
// Workers) before fs.Parse and Finish after it; the config then holds
// the fully resolved values.
type Flags struct {
	fs  *flag.FlagSet
	cfg *core.Config

	// WorkersN is the parsed -workers value (registered by Workers).
	WorkersN int
	// TraceOut is the parsed -trace-out path (registered by Obs);
	// non-empty arms Config.Trace.
	TraceOut string

	nodedup  bool
	sample   int64
	simBound bool
	obsBound bool
}

// New prepares a binder for fs that writes into cfg. The config's
// current field values become the flag defaults, so tools seed their
// own defaults by setting cfg before binding.
func New(fs *flag.FlagSet, cfg *core.Config) *Flags {
	return &Flags{fs: fs, cfg: cfg}
}

// Sim registers the simulation-shaping flags: what chip to build and
// how much work to run through it.
func (f *Flags) Sim() *Flags {
	cfg, fs := f.cfg, f.fs
	f.simBound = true
	fs.IntVar(&cfg.Tiles, "tiles", cfg.Tiles, "number of tiles")
	fs.IntVar(&cfg.Areas, "areas", cfg.Areas, "number of static areas")
	fs.IntVar(&cfg.RefsPerCore, "refs", cfg.RefsPerCore, "measured references per core")
	fs.IntVar(&cfg.WarmupRefs, "warmup", cfg.WarmupRefs, "warmup references per core (discarded)")
	fs.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "simulation seed")
	fs.BoolVar(&cfg.AltPlacement, "alt", cfg.AltPlacement, "use the Figure 6 alternative VM placement")
	fs.BoolVar(&f.nodedup, "nodedup", !cfg.Dedup, "disable memory deduplication")
	fs.BoolVar(&cfg.Proto.BroadcastUnicast, "unicast-broadcast", cfg.Proto.BroadcastUnicast,
		"emulate a chip without hardware broadcast")
	return f
}

// Obs registers the observation flags: checkers, profilers, tracing
// and time-series sampling. All are bit-identical observers — they
// never change simulation results.
func (f *Flags) Obs() *Flags {
	cfg, fs := f.cfg, f.fs
	f.obsBound = true
	fs.BoolVar(&cfg.Check, "check", cfg.Check,
		"attach the shadow-memory coherence checker and stalled-transaction watchdog (fails the run on any violation)")
	fs.BoolVar(&cfg.Profile, "profile", cfg.Profile,
		"collect kernel dispatch/queue-depth statistics, miss-latency histograms and phase timers")
	fs.StringVar(&f.TraceOut, "trace-out", "",
		"trace every coherence transaction and write Chrome/Perfetto trace-event JSON to this file (open in ui.perfetto.dev)")
	fs.IntVar(&cfg.TraceCap, "trace-cap", cfg.TraceCap,
		"max spans retained per run, drop-oldest (0 = default)")
	fs.Int64Var(&f.sample, "sample", int64(cfg.SampleEvery),
		"record a time-series sample of all counters every N cycles (0 = off)")
	fs.IntVar(&cfg.SampleCap, "sample-cap", cfg.SampleCap,
		"max time-series samples retained per run, drop-oldest (0 = default)")
	fs.BoolVar(&cfg.Census, "census", cfg.Census,
		"count every synchronous remote-tile touch per (engine, handler, structure) and report the ranked cross-shard inventory")
	fs.BoolVar(&cfg.PerVM, "pervm", cfg.PerVM,
		"attribute power counters, network energy and miss latency to the requesting VM (per-VM banks folded into the globals at measure end)")
	return f
}

// Shards registers the -shards flag: the conservative-PDES executor
// selector (DESIGN.md §13). Separate from Sim because sharding never
// changes results, only how the run executes — tools like bench bind
// it without the rest of the simulation surface.
func (f *Flags) Shards() *Flags {
	f.fs.IntVar(&f.cfg.Shards, "shards", f.cfg.Shards,
		"partition the mesh into N contiguous tile shards, each on its own kernel lane (0 = single kernel; results are bit-identical)")
	f.fs.BoolVar(&f.cfg.Parallel, "parallel", f.cfg.Parallel,
		"run the sharded lanes concurrently in conservative lookahead windows (requires -shards N; results stay bit-identical; falls back to the sequential merge when hub-resident observability is armed)")
	return f
}

// Workers registers the -workers flag bounding concurrent
// simulations; read the value from WorkersN after parse.
func (f *Flags) Workers() *Flags {
	f.fs.IntVar(&f.WorkersN, "workers", 0, "parallel simulations (0 = all CPUs, 1 = serial)")
	return f
}

// Finish resolves the inverted and derived flags after fs.Parse:
// -nodedup into Config.Dedup, -sample into Config.SampleEvery, and a
// non-empty -trace-out arms Config.Trace. Only groups that were bound
// are resolved, so unbound config fields stay untouched.
func (f *Flags) Finish() {
	if f.simBound {
		f.cfg.Dedup = !f.nodedup
	}
	if f.obsBound {
		f.cfg.SampleEvery = sim.Time(f.sample)
		if f.TraceOut != "" {
			f.cfg.Trace = true
		}
	}
}

// Changed reports whether the named flag was set explicitly on the
// command line — for tools whose convenience flags (e.g. -quick) must
// yield to an explicit value.
func Changed(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(fl *flag.Flag) {
		if fl.Name == name {
			set = true
		}
	})
	return set
}
