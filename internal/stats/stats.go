// Package stats provides the counters, distributions and table
// formatting used to collect and report simulation results.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a named monotonically increasing tally.
type Counter struct {
	Name  string
	Value uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.Value += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Value++ }

// Set is a collection of counters addressed by name. The zero value is
// ready to use.
type Set struct {
	byName map[string]*Counter
	order  []string
}

// Get returns the counter with the given name, creating it on first use.
func (s *Set) Get(name string) *Counter {
	if s.byName == nil {
		s.byName = make(map[string]*Counter)
	}
	if c, ok := s.byName[name]; ok {
		return c
	}
	c := &Counter{Name: name}
	s.byName[name] = c
	s.order = append(s.order, name)
	return c
}

// Handle returns a stable pointer to the named counter, creating it on
// first use. It is the fast-path companion to Add/Inc: resolve the
// handle once (at engine or subsystem construction) and bump the
// counter through the pointer afterwards, turning every hot-path
// increment from a map lookup into a direct memory write. The handle
// stays valid across Reset (which zeroes values but keeps counters
// registered).
func (s *Set) Handle(name string) *Counter { return s.Get(name) }

// Value returns the current value of name (0 if never touched).
func (s *Set) Value(name string) uint64 {
	if c, ok := s.byName[name]; ok {
		return c.Value
	}
	return 0
}

// Add adds n to the named counter.
func (s *Set) Add(name string, n uint64) { s.Get(name).Add(n) }

// Inc increments the named counter.
func (s *Set) Inc(name string) { s.Get(name).Inc() }

// Names returns the counter names in creation order.
func (s *Set) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Reset zeroes all counters but keeps them registered.
func (s *Set) Reset() {
	for _, c := range s.byName {
		c.Value = 0
	}
}

// Merge adds every counter of other into s.
func (s *Set) Merge(other *Set) {
	for _, name := range other.order {
		s.Add(name, other.byName[name].Value)
	}
}

// String renders the set as "name=value" lines in creation order.
func (s *Set) String() string {
	var b strings.Builder
	for _, name := range s.order {
		fmt.Fprintf(&b, "%s=%d\n", name, s.byName[name].Value)
	}
	return b.String()
}

// Distribution accumulates scalar samples and reports summary moments.
type Distribution struct {
	Name    string
	N       uint64
	Sum     float64
	SumSq   float64
	Min     float64
	Max     float64
	samples []float64 // retained only when KeepSamples is set
	Keep    bool
}

// NewDistribution returns an empty distribution. If keep is true,
// individual samples are retained so percentiles can be computed.
func NewDistribution(name string, keep bool) *Distribution {
	return &Distribution{Name: name, Min: math.Inf(1), Max: math.Inf(-1), Keep: keep}
}

// Observe records one sample.
func (d *Distribution) Observe(v float64) {
	d.N++
	d.Sum += v
	d.SumSq += v * v
	if v < d.Min {
		d.Min = v
	}
	if v > d.Max {
		d.Max = v
	}
	if d.Keep {
		d.samples = append(d.samples, v)
	}
}

// Mean returns the sample mean (0 when empty).
func (d *Distribution) Mean() float64 {
	if d.N == 0 {
		return 0
	}
	return d.Sum / float64(d.N)
}

// StdDev returns the population standard deviation (0 when empty).
func (d *Distribution) StdDev() float64 {
	if d.N == 0 {
		return 0
	}
	m := d.Mean()
	v := d.SumSq/float64(d.N) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Percentile returns the p-th percentile (0 <= p <= 100) from retained
// samples. It panics if the distribution was created without keep.
func (d *Distribution) Percentile(p float64) float64 {
	if !d.Keep {
		panic("stats: Percentile on distribution without retained samples")
	}
	if len(d.samples) == 0 {
		return 0
	}
	sorted := make([]float64, len(d.samples))
	copy(sorted, d.samples)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Table renders aligned text tables for experiment output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are kept as-is.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row built from format/value pairs: each cell is
// fmt.Sprintf(formats[i], values[i]).
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with padded columns.
func (t *Table) String() string {
	width := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		width[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(width) {
				fmt.Fprintf(&b, "%-*s", width[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
