package stats

// CounterState is one captured counter, in creation order.
type CounterState struct {
	Name  string
	Value uint64
}

// State returns the counters in creation order. Order matters:
// registration order determines report layout and telemetry column
// alignment, so restore replays it.
func (s *Set) State() []CounterState {
	out := make([]CounterState, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, CounterState{Name: name, Value: s.byName[name].Value})
	}
	return out
}

// RestoreState replays a captured counter list into the set. Counters
// are created (in the captured order) if absent, so restoring into a
// freshly built set reproduces both values and registration order;
// handles already resolved against the set stay valid.
func (s *Set) RestoreState(st []CounterState) {
	for _, c := range st {
		s.Get(c.Name).Value = c.Value
	}
}
