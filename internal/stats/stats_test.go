package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	var s Set
	s.Inc("a")
	s.Add("b", 5)
	s.Inc("a")
	if got := s.Value("a"); got != 2 {
		t.Errorf("a = %d, want 2", got)
	}
	if got := s.Value("b"); got != 5 {
		t.Errorf("b = %d, want 5", got)
	}
	if got := s.Value("missing"); got != 0 {
		t.Errorf("missing = %d, want 0", got)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v, want [a b]", names)
	}
}

// TestSetHandle checks the pre-resolved fast path: the handle is
// stable across later Get/Add calls and across Reset, and bumping it
// is observable through the named API.
func TestSetHandle(t *testing.T) {
	var s Set
	h := s.Handle("l1.tag.read")
	h.Inc()
	h.Add(4)
	if got := s.Value("l1.tag.read"); got != 5 {
		t.Errorf("value through handle = %d, want 5", got)
	}
	if s.Handle("l1.tag.read") != h || s.Get("l1.tag.read") != h {
		t.Error("handle is not stable across lookups")
	}
	s.Reset()
	if h.Value != 0 {
		t.Error("Reset did not zero the handle's counter")
	}
	h.Inc()
	if got := s.Value("l1.tag.read"); got != 1 {
		t.Error("handle dead after Reset")
	}
	if names := s.Names(); len(names) != 1 || names[0] != "l1.tag.read" {
		t.Errorf("Names = %v", names)
	}
}

func TestSetReset(t *testing.T) {
	var s Set
	s.Add("x", 10)
	s.Reset()
	if s.Value("x") != 0 {
		t.Error("Reset did not zero counter")
	}
	if len(s.Names()) != 1 {
		t.Error("Reset dropped registration")
	}
}

func TestSetMerge(t *testing.T) {
	var a, b Set
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 3)
	a.Merge(&b)
	if a.Value("x") != 3 || a.Value("y") != 3 {
		t.Errorf("merge: x=%d y=%d, want 3 3", a.Value("x"), a.Value("y"))
	}
}

func TestSetString(t *testing.T) {
	var s Set
	s.Add("hits", 7)
	if got := s.String(); !strings.Contains(got, "hits=7") {
		t.Errorf("String = %q", got)
	}
}

func TestDistributionMoments(t *testing.T) {
	d := NewDistribution("lat", false)
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		d.Observe(v)
	}
	if d.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", d.Mean())
	}
	if math.Abs(d.StdDev()-2) > 1e-9 {
		t.Errorf("StdDev = %v, want 2", d.StdDev())
	}
	if d.Min != 2 || d.Max != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", d.Min, d.Max)
	}
}

func TestDistributionEmpty(t *testing.T) {
	d := NewDistribution("e", false)
	if d.Mean() != 0 || d.StdDev() != 0 {
		t.Error("empty distribution has nonzero moments")
	}
}

func TestDistributionPercentile(t *testing.T) {
	d := NewDistribution("p", true)
	for i := 1; i <= 100; i++ {
		d.Observe(float64(i))
	}
	if got := d.Percentile(0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := d.Percentile(100); got != 100 {
		t.Errorf("p100 = %v, want 100", got)
	}
	if got := d.Percentile(50); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("p50 = %v, want 50.5", got)
	}
}

func TestDistributionPercentilePanicsWithoutKeep(t *testing.T) {
	d := NewDistribution("x", false)
	d.Observe(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Percentile without keep did not panic")
		}
	}()
	d.Percentile(50)
}

func TestDistributionPropertyMeanBounded(t *testing.T) {
	if err := quick.Check(func(vals []float64) bool {
		d := NewDistribution("q", false)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Scale into a safe range to avoid float overflow in SumSq.
			v = math.Mod(v, 1e6)
			d.Observe(v)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if d.N == 0 {
			return true
		}
		m := d.Mean()
		return m >= lo-1e-9 && m <= hi+1e-9 && d.StdDev() >= 0
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("demo", "proto", "value")
	tab.AddRow("directory", "12.56%")
	tab.AddRowf("dico", 13.21)
	out := tab.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "directory") || !strings.Contains(out, "13.21") {
		t.Errorf("table body missing rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
}
