// Package check provides runtime correctness tooling for the four
// coherence engines: a shadow-memory SWMR/data-value checker that
// verifies every retired reference against a per-block version
// counter, a stalled-transaction watchdog wiring, and a high-conflict
// stress/differential harness for hunting transient-race bugs.
package check

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/topo"
)

// maxRecorded bounds the violation log; further violations only count.
const maxRecorded = 16

// Block is the shadow image of one block: how many stores retired to
// it and which tile retired the last one.
type Block struct {
	Ver        uint64
	LastWriter topo.Tile
}

// blockShadow tracks one block. ver counts retired stores. seen[t]
// (valid when bit t of seenMask is set) is the store version tile t's
// cached copy corresponds to; a later hit by t must still see the
// latest version or t missed an invalidation.
type blockShadow struct {
	ver        uint64
	lastWriter topo.Tile
	seenMask   uint64
	seen       [64]uint64
}

// Shadow is a proto.Observer implementing the shadow-memory checker.
// It never schedules events, never mutates engine state, and reads
// cache contents only through side-effect-free Peek scans, so an
// attached Shadow cannot perturb the simulation it is checking.
//
// What it verifies, and the deliberate relaxations:
//
//   - Store retire: no other tile may hold a valid L1 copy (SWMR), and
//     the writer's own copy, if present, must be in an owner state. A
//     home L2 copy is allowed: the directory protocol legally keeps a
//     stale L2 line below an E-state owner and never supplies it while
//     the owner pointer is set.
//   - Load hit: the tile's copy must correspond to the latest store
//     version — a stale hit means an invalidation was lost.
//   - Load miss retire: record that the tile now holds the latest
//     version (suppliers register the reader as a sharer before
//     sending data, so a fill that races a later store is always
//     invalidated in flight and arrives here with invalidated=true,
//     exempt because the read serialized before that store), and check
//     owner uniqueness (at most one owner-state copy; an M/E copy must
//     be the sole L1 holder).
//   - References that an in-flight invalidation hit skip the copy
//     scans: the line is already gone or about to be dropped.
type Shadow struct {
	eng proto.Engine
	k   *sim.Kernel

	blocks     map[cache.Addr]*blockShadow
	recorded   []string
	violations uint64
}

// NewShadow builds a checker for eng. Install it with ctx.Observer =
// shadow before driving any accesses.
func NewShadow(eng proto.Engine, k *sim.Kernel) *Shadow {
	return &Shadow{eng: eng, k: k, blocks: make(map[cache.Addr]*blockShadow)}
}

func (s *Shadow) block(a cache.Addr) *blockShadow {
	b := s.blocks[a]
	if b == nil {
		b = &blockShadow{lastWriter: -1}
		s.blocks[a] = b
	}
	return b
}

func (s *Shadow) violatef(addr cache.Addr, format string, args ...any) {
	s.violations++
	if len(s.recorded) < maxRecorded {
		msg := fmt.Sprintf("t=%d %s block %#x: %s",
			s.k.Now(), s.eng.Name(), addr, fmt.Sprintf(format, args...))
		s.recorded = append(s.recorded, msg+"\n"+proto.FormatBlockState(s.eng, addr))
	}
}

// Retired implements proto.Observer.
func (s *Shadow) Retired(tile topo.Tile, addr cache.Addr, write, hit, invalidated bool) {
	b := s.block(addr)
	if write {
		b.ver++
		b.lastWriter = tile
		b.seenMask = 1 << uint(tile)
		b.seen[tile] = b.ver
		if invalidated {
			// A chip-wide invalidation (directory-entry eviction or a
			// broadcast) raced the upgrade; every copy including the
			// writer's may already be gone. Serialization still holds.
			return
		}
		writerCopy := false
		s.eng.ForEachCopy(addr, func(ci proto.CopyInfo) {
			if ci.L2 {
				return // stale home L2 copies are legal (NCID/E-state)
			}
			if ci.Tile == tile {
				writerCopy = true
				if !ci.Owner {
					s.violatef(addr, "store v%d retired at tile %d but its copy is not owner-state (%d)",
						b.ver, tile, ci.State)
				}
				return
			}
			s.violatef(addr, "SWMR: store v%d retired at tile %d but tile %d still holds a copy (state %d)",
				b.ver, tile, ci.Tile, ci.State)
		})
		if !writerCopy {
			s.violatef(addr, "store v%d retired at tile %d with no cached copy", b.ver, tile)
		}
		return
	}
	if hit {
		if b.seenMask&(1<<uint(tile)) != 0 {
			if got := b.seen[tile]; got != b.ver {
				s.violatef(addr, "stale hit: tile %d read v%d but latest store is v%d (by tile %d)",
					tile, got, b.ver, b.lastWriter)
			}
		} else {
			// Copy acquired outside a tracked fill (e.g. before the
			// checker attached); trust it from here on.
			b.seenMask |= 1 << uint(tile)
			b.seen[tile] = b.ver
		}
		return
	}
	if invalidated {
		// Fill raced a store and is dropped: the read serialized before
		// that store, so no version assertion; the copy is gone.
		b.seenMask &^= 1 << uint(tile)
		return
	}
	// Fresh fill: the supplier held (and the home serialized) the
	// latest version. Verify owner uniqueness across all settled
	// copies: a Pending copy is mid-upgrade (its store has not retired
	// yet — it still awaits acks, so it serializes after this read)
	// and its M state is transient, not a violation.
	owners, holders := 0, 0
	exclusiveAt := topo.Tile(-1)
	s.eng.ForEachCopy(addr, func(ci proto.CopyInfo) {
		if ci.L2 {
			return
		}
		holders++
		if ci.Pending {
			return
		}
		if ci.Owner {
			owners++
		}
		if ci.Exclusive {
			exclusiveAt = ci.Tile
		}
	})
	if owners > 1 {
		s.violatef(addr, "load fill at tile %d sees %d owner-state copies", tile, owners)
	}
	if exclusiveAt >= 0 && holders > 1 {
		s.violatef(addr, "load fill at tile %d coexists with an M/E copy at tile %d (%d holders)",
			tile, exclusiveAt, holders)
	}
	b.seenMask |= 1 << uint(tile)
	b.seen[tile] = b.ver
}

// Violations returns how many checks failed.
func (s *Shadow) Violations() uint64 { return s.violations }

// Err returns nil if every check passed, else an error carrying the
// first recorded violations.
func (s *Shadow) Err() error {
	if s.violations == 0 {
		return nil
	}
	msg := s.recorded[0]
	if s.violations > 1 {
		msg = fmt.Sprintf("%s\n... and %d more violations", msg, s.violations-1)
	}
	return fmt.Errorf("check: %d coherence violations:\n%s", s.violations, msg)
}

// Image returns the final shadow memory image: per-block retired
// store count and last writer. Blocks never written are omitted.
func (s *Shadow) Image() map[cache.Addr]Block {
	img := make(map[cache.Addr]Block, len(s.blocks))
	for a, b := range s.blocks {
		if b.ver > 0 {
			img[a] = Block{Ver: b.ver, LastWriter: b.lastWriter}
		}
	}
	return img
}
