package check

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/topo"
	"repro/internal/trace"
)

var protocols = []string{"directory", "dico", "providers", "arin"}

// corpus returns the seeded high-conflict streams: many tiles, few
// blocks, write-heavy. Parameters vary so the corpus covers different
// contention shapes (single-block hammering through mild spread).
func corpus() map[string][]trace.Record {
	streams := make(map[string][]trace.Record)
	shapes := []struct {
		blocks, refs, writePct int
	}{
		{1, 400, 60},   // one block, all tiles
		{2, 500, 75},   // write-dominated pair
		{4, 600, 50},   //
		{6, 600, 60},   //
		{8, 800, 40},   // read-heavier, more blocks
		{16, 800, 60},  // one block per tile, cross-home traffic
		{40, 1000, 50}, // overflows the tiny L1: evictions + writebacks
		{64, 1200, 60}, // heavy replacement: recalls, straggler paths
	}
	seed := uint64(1)
	for _, sh := range shapes {
		for i := 0; i < 2; i++ {
			name := fmt.Sprintf("b%dw%d-s%d", sh.blocks, sh.writePct, seed)
			streams[name] = ConflictStream(seed, 16, sh.blocks, sh.refs, sh.writePct)
			seed++
		}
	}
	return streams
}

// refImage computes the shadow image a serial execution must produce,
// straight from the stream.
func refImage(recs []trace.Record) map[cache.Addr]Block {
	img := make(map[cache.Addr]Block)
	for _, r := range recs {
		if r.Write {
			b := img[r.Addr]
			b.Ver++
			b.LastWriter = r.Tile
			img[r.Addr] = b
		}
	}
	return img
}

// verOnly projects an image to per-block store counts (concurrent
// runs serialize writes in protocol-dependent order, so LastWriter
// may legitimately differ between protocols; Ver may not).
func verOnly(img map[cache.Addr]Block) map[cache.Addr]uint64 {
	out := make(map[cache.Addr]uint64, len(img))
	for a, b := range img {
		out[a] = b.Ver
	}
	return out
}

// TestStressConcurrent runs the seeded corpus on all four protocols
// with the shadow checker and watchdog armed, and differentially
// compares per-block retired-store counts across protocols.
func TestStressConcurrent(t *testing.T) {
	for name, recs := range corpus() {
		var base map[cache.Addr]uint64
		var baseProto string
		for _, p := range protocols {
			img, err := RunRecord(p, recs, 16, 4, 7, false)
			if err != nil {
				t.Errorf("%s/%s: %v", name, p, err)
				continue
			}
			vo := verOnly(img)
			if base == nil {
				base, baseProto = vo, p
			} else if !reflect.DeepEqual(base, vo) {
				t.Errorf("%s: store counts diverge between %s and %s:\n%v\nvs\n%v",
					name, baseProto, p, base, vo)
			}
		}
	}
}

// TestStressSerial runs a subset of the corpus one reference at a
// time: with a fixed serialization all four protocols must produce
// the exact reference image (count and last writer per block).
func TestStressSerial(t *testing.T) {
	for name, recs := range corpus() {
		if len(recs) > 500 {
			continue // serial mode is slower; the short streams suffice
		}
		want := refImage(recs)
		for _, p := range protocols {
			img, err := RunRecord(p, recs, 16, 4, 7, true)
			if err != nil {
				t.Errorf("%s/%s serial: %v", name, p, err)
				continue
			}
			if !reflect.DeepEqual(want, img) {
				t.Errorf("%s/%s serial: image mismatch:\nwant %v\ngot  %v", name, p, want, img)
			}
		}
	}
}

// TestDecodeStream checks the fuzz decoder maps arbitrary bytes to
// in-range records.
func TestDecodeStream(t *testing.T) {
	data := []byte{0x8f, 0xff, 0x00, 0x00, 0x3f, 0x7a, 0x90, 0x41}
	recs := DecodeStream(data, 16, 8)
	if len(recs) != 4 {
		t.Fatalf("want 4 records, got %d", len(recs))
	}
	for i, r := range recs {
		if r.Tile < 0 || int(r.Tile) >= 16 {
			t.Errorf("record %d: tile %d out of range", i, r.Tile)
		}
		if uint64(r.Addr) >= 8 {
			t.Errorf("record %d: addr %#x out of range", i, r.Addr)
		}
		if r.Gap < 0 || r.Gap > 3 {
			t.Errorf("record %d: gap %d out of range", i, r.Gap)
		}
	}
	if !recs[0].Write || recs[1].Write {
		t.Errorf("write bits wrong: %+v", recs[:2])
	}
}

// TestShadowStaleHitFires feeds the checker a hand-built violating
// history to prove it actually fires: the block is at store version 2
// but tile 1's copy corresponds to version 1 and "hits" anyway.
func TestShadowStaleHitFires(t *testing.T) {
	c, err := NewChip(ChipConfig{Protocol: "directory", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sh := c.Shadow
	b := sh.block(0x10)
	b.ver = 2
	b.lastWriter = 2
	b.seenMask = 1 << 1
	b.seen[1] = 1                           // tile 1 last saw v1
	sh.Retired(1, 0x10, false, true, false) // stale hit
	if sh.Violations() != 1 {
		t.Fatalf("want 1 violation, got %d", sh.Violations())
	}
	if err := sh.Err(); err == nil {
		t.Fatal("Err() should be non-nil")
	}
	img := sh.Image()
	if img[0x10].Ver != 2 || img[0x10].LastWriter != 2 {
		t.Fatalf("image wrong: %+v", img[0x10])
	}
	_ = topo.Tile(0)
}
