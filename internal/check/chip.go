package check

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/memctrl"
	"repro/internal/mesh"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// ChipConfig selects one checked mini-chip.
type ChipConfig struct {
	Protocol   string
	Tiles      int
	Areas      int
	Seed       uint64
	Proto      proto.Config
	StallBound sim.Time // watchdog: max age of an in-flight miss (0 = 200k)
}

// TinyConfig returns a deliberately small cache geometry so short
// stress streams already exercise evictions, recalls and
// directory-entry replacement.
func TinyConfig() proto.Config {
	cfg := proto.DefaultConfig()
	cfg.L1Sets, cfg.L1Ways = 8, 2
	cfg.L2Sets, cfg.L2Ways = 32, 4
	cfg.CCSets, cfg.CCWays = 16, 2
	return cfg
}

// Chip is a fully built engine with the shadow checker attached and a
// stalled-transaction watchdog ready to arm.
type Chip struct {
	Kernel *sim.Kernel
	Ctx    *proto.Context
	Engine proto.Engine
	Shadow *Shadow
	Dog    *sim.Watchdog
}

func newEngine(name string, ctx *proto.Context) (proto.Engine, error) {
	switch name {
	case "directory":
		return proto.NewDirectory(ctx), nil
	case "dico":
		return proto.NewDiCo(ctx), nil
	case "providers":
		return proto.NewProviders(ctx), nil
	case "arin":
		return proto.NewArin(ctx), nil
	}
	return nil, fmt.Errorf("check: unknown protocol %q", name)
}

// NewChip builds a checked chip from cc.
func NewChip(cc ChipConfig) (*Chip, error) {
	if cc.Tiles == 0 {
		cc.Tiles = 16
	}
	if cc.Areas == 0 {
		cc.Areas = 4
	}
	if cc.StallBound == 0 {
		cc.StallBound = 200_000
	}
	if cc.Proto == (proto.Config{}) {
		cc.Proto = TinyConfig()
	}
	kernel := sim.NewKernel(cc.Seed)
	grid := topo.SquareGrid(cc.Tiles)
	areas, err := topo.NewAreas(grid, cc.Areas)
	if err != nil {
		return nil, err
	}
	net := mesh.New(kernel, grid, mesh.DefaultConfig())
	mem := memctrl.Default(grid, kernel.Rand().Fork())
	ctx := &proto.Context{Kernel: kernel, Net: net, Areas: areas, Mem: mem, Cfg: cc.Proto}
	eng, err := newEngine(cc.Protocol, ctx)
	if err != nil {
		return nil, err
	}
	sh := NewShadow(eng, kernel)
	ctx.Observer = sh
	probe := proto.StallProbe(eng, kernel, cc.StallBound)
	dog := sim.NewWatchdog(kernel, cc.StallBound/4, probe)
	return &Chip{Kernel: kernel, Ctx: ctx, Engine: eng, Shadow: sh, Dog: dog}, nil
}

// finish drains residual traffic, runs the quiescent invariant
// checker, and folds watchdog + shadow verdicts into one error. The
// drain is time-bounded: residual writebacks/recalls that fail to
// settle are a liveness bug, not a reason to spin forever.
func (c *Chip) finish() (err error) {
	c.Dog.Disarm()
	c.Kernel.Run(c.Kernel.Now() + 2_000_000)
	defer func() {
		if err == nil {
			if r := recover(); r != nil {
				err = fmt.Errorf("check: invariant failure: %v", r)
			}
		}
	}()
	if werr := c.Dog.Err(); werr != nil {
		return werr
	}
	if c.Kernel.Pending() > 0 {
		return fmt.Errorf("check: %s residual traffic never settled (livelock), %d events pending at t=%d\n%s",
			c.Engine.Name(), c.Kernel.Pending(), c.Kernel.Now(), proto.FormatStalls(c.Engine))
	}
	if serr := c.Shadow.Err(); serr != nil {
		return serr
	}
	c.Engine.CheckInvariants()
	return nil
}

// RunConcurrent drives the stream with every tile issuing its own
// references in order (gaps honored), all tiles concurrently — the
// racy mode. The watchdog is armed throughout. It returns the first
// watchdog, shadow-checker, deadlock or invariant error.
func (c *Chip) RunConcurrent(recs []trace.Record) error {
	p := trace.NewPlayer(&trace.Trace{Records: recs})
	var tiles []topo.Tile
	seen := make(map[topo.Tile]bool)
	for _, r := range recs {
		if !seen[r.Tile] {
			seen[r.Tile] = true
			tiles = append(tiles, r.Tile)
		}
	}
	done := 0
	var step func(tile topo.Tile)
	step = func(tile topo.Tile) {
		r, ok := p.Next(tile)
		if !ok {
			done++
			return
		}
		issue := func() {
			c.Engine.Access(r.Tile, r.Addr, r.Write, func() { step(tile) })
		}
		if r.Gap > 0 {
			c.Kernel.After(r.Gap, issue)
		} else {
			issue()
		}
	}
	for _, t := range tiles {
		tile := t
		c.Kernel.After(sim.Time(int(t)%7), func() { step(tile) })
	}
	c.Dog.Arm()
	for done < len(tiles) && c.Dog.Err() == nil {
		c.Kernel.RunUntil(func() bool { return done == len(tiles) || c.Dog.Err() != nil })
		if done < len(tiles) && c.Dog.Err() == nil && c.Kernel.Pending() == 0 {
			return fmt.Errorf("check: %s deadlocked at t=%d with %d/%d tiles done\n%s",
				c.Engine.Name(), c.Kernel.Now(), done, len(tiles), proto.FormatStalls(c.Engine))
		}
	}
	return c.finish()
}

// RunSerial drives the stream one reference at a time, each retiring
// before the next issues — a deterministic serialization shared by
// every protocol, so final shadow images must match exactly across
// protocols.
func (c *Chip) RunSerial(recs []trace.Record) error {
	c.Dog.Arm()
	for i, r := range recs {
		retired := false
		c.Engine.Access(r.Tile, r.Addr, r.Write, func() { retired = true })
		c.Kernel.RunUntil(func() bool { return retired || c.Dog.Err() != nil })
		if c.Dog.Err() != nil {
			break
		}
		if !retired {
			return fmt.Errorf("check: %s deadlocked on record %d (tile %d %v %#x)\n%s",
				c.Engine.Name(), i, r.Tile, r.Write, r.Addr, proto.FormatStalls(c.Engine))
		}
	}
	return c.finish()
}

// RunRecord runs one protocol over one stream in the given mode and
// returns the final shadow image (differential-testing helper).
func RunRecord(protocol string, recs []trace.Record, tiles, areas int, seed uint64, serial bool) (map[cache.Addr]Block, error) {
	c, err := NewChip(ChipConfig{Protocol: protocol, Tiles: tiles, Areas: areas, Seed: seed})
	if err != nil {
		return nil, err
	}
	if serial {
		err = c.RunSerial(recs)
	} else {
		err = c.RunConcurrent(recs)
	}
	return c.Shadow.Image(), err
}
