package check

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/topo"
)

// BlockState is the serializable shadow image of one block.
type BlockState struct {
	Addr       cache.Addr
	Ver        uint64
	LastWriter int
	SeenMask   uint64
	Seen       [64]uint64
}

// ShadowState is the serializable state of the shadow checker, sorted
// by block address for deterministic bytes.
type ShadowState struct {
	Blocks     []BlockState
	Recorded   []string
	Violations uint64
}

// State returns a deep copy of the checker's shadow memory.
func (s *Shadow) State() *ShadowState {
	st := &ShadowState{
		Recorded:   append([]string(nil), s.recorded...),
		Violations: s.violations,
	}
	for a, b := range s.blocks {
		st.Blocks = append(st.Blocks, BlockState{
			Addr: a, Ver: b.ver, LastWriter: int(b.lastWriter),
			SeenMask: b.seenMask, Seen: b.seen,
		})
	}
	sort.Slice(st.Blocks, func(i, j int) bool { return st.Blocks[i].Addr < st.Blocks[j].Addr })
	return st
}

// RestoreState replaces the checker's shadow memory with a captured
// state. The checker must not have observed any accesses yet (restore
// targets a freshly built system).
func (s *Shadow) RestoreState(st *ShadowState) error {
	if len(s.blocks) != 0 || s.violations != 0 {
		return fmt.Errorf("check: cannot restore into a shadow with %d blocks already observed", len(s.blocks))
	}
	for _, b := range st.Blocks {
		s.blocks[b.Addr] = &blockShadow{
			ver: b.Ver, lastWriter: topo.Tile(b.LastWriter),
			seenMask: b.SeenMask, seen: b.Seen,
		}
	}
	s.recorded = append([]string(nil), st.Recorded...)
	s.violations = st.Violations
	return nil
}
