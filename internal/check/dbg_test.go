package check

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/cache"
)

// TestDebugSeed reproduces one stress seed (scratch debugging aid,
// driven by DBG_SEED / DBG_PROTO env vars; skipped otherwise).
func TestDebugSeed(t *testing.T) {
	s := os.Getenv("DBG_SEED")
	if s == "" {
		t.Skip("set DBG_SEED to run")
	}
	seed, _ := strconv.Atoi(s)
	p := os.Getenv("DBG_PROTO")
	if p == "" {
		p = "directory"
	}
	blocks := []int{1, 2, 4, 8, 16, 48}[seed%6]
	writePct := []int{40, 60, 75}[seed%3]
	recs := ConflictStream(uint64(seed), 16, blocks, 700, writePct)
	c, err := NewChip(ChipConfig{Protocol: p, Tiles: 16, Areas: 4, Seed: uint64(seed)})
	if err != nil {
		t.Fatal(err)
	}
	if a := os.Getenv("DBG_TRACE"); a != "" {
		addr, _ := strconv.ParseUint(a, 0, 64)
		c.Ctx.SetTrace(cache.Addr(addr), func(s string) { fmt.Println(s) })
	}
	if err := c.RunConcurrent(recs); err != nil {
		t.Fatalf("seed %d blocks %d write%%%d %s:\n%v", seed, blocks, writePct, p, err)
	}
}
