package check

import (
	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// ConflictStream generates a small-address-space, high-conflict,
// high-write-share reference stream: many tiles hammering few blocks,
// the access pattern most likely to expose transient-race bugs.
func ConflictStream(seed uint64, tiles, blocks, refs, writePct int) []trace.Record {
	r := sim.NewRand(seed)
	recs := make([]trace.Record, 0, refs)
	for i := 0; i < refs; i++ {
		recs = append(recs, trace.Record{
			Tile:  topo.Tile(r.Intn(tiles)),
			Addr:  cache.Addr(r.Intn(blocks)),
			Write: r.Intn(100) < writePct,
			Gap:   sim.Time(r.Intn(4)),
		})
	}
	return recs
}

// DecodeStream maps raw fuzzer bytes onto a reference stream: two
// bytes per record (tile + write bit, block + gap), so every input is
// valid and small mutations move single references.
func DecodeStream(data []byte, tiles, blocks int) []trace.Record {
	recs := make([]trace.Record, 0, len(data)/2)
	for i := 0; i+1 < len(data); i += 2 {
		b0, b1 := data[i], data[i+1]
		recs = append(recs, trace.Record{
			Tile:  topo.Tile(int(b0&0x3f) % tiles),
			Addr:  cache.Addr(int(b1&0x3f) % blocks),
			Write: b0&0x80 != 0,
			Gap:   sim.Time(b1 >> 6),
		})
	}
	return recs
}
