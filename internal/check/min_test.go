package check

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/cache"
	"repro/internal/trace"
)

// TestMinimize shrinks a failing stress stream to a minimal reproducer
// and prints it as a trace.Record literal, ready to paste into a
// regression test. Scratch tool for bug hunts: run with
// MINIMIZE=<seed> (and optionally DBG_PROTO=<protocol>) against the
// unfixed protocol; skipped otherwise. Stream shape per seed matches
// TestStress in internal/proto.
func TestMinimize(t *testing.T) {
	s := os.Getenv("MINIMIZE")
	if s == "" {
		t.Skip("set MINIMIZE=<seed> to run")
	}
	seed, _ := strconv.Atoi(s)
	p := os.Getenv("DBG_PROTO")
	if p == "" {
		p = "directory"
	}
	fails := func(recs []trace.Record) bool {
		_, err := RunRecord(p, recs, 16, 4, uint64(seed), false)
		return err != nil
	}
	blocks := []int{1, 2, 4, 8, 16, 48}[seed%6]
	writePct := []int{40, 60, 75}[seed%3]
	recs := ConflictStream(uint64(seed), 16, blocks, 700, writePct)
	if !fails(recs) {
		t.Fatalf("seed %d does not fail on %s; nothing to minimize", seed, p)
	}
	// Per-block projection first: a single-block failure is the
	// simplest possible shape (trace.FilterAddr semantics).
	for b := 0; b < blocks; b++ {
		tr := (&trace.Trace{Records: recs}).FilterAddr(cache.Addr(b))
		if fails(tr.Records) {
			recs = tr.Records
			t.Logf("block %#x only: %d records, still fails", b, len(recs))
			break
		}
	}
	// Shortest failing prefix (binary search on the boundary).
	lo, hi := 1, len(recs)
	for lo < hi {
		mid := (lo + hi) / 2
		if fails(recs[:mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	recs = recs[:lo]
	t.Logf("prefix: %d records", len(recs))
	// Greedy single-record removal until a fixed point.
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(recs); i++ {
			cand := append(append([]trace.Record{}, recs[:i]...), recs[i+1:]...)
			if fails(cand) {
				recs = cand
				changed = true
				i--
			}
		}
	}
	t.Logf("minimal: %d records", len(recs))
	for _, r := range recs {
		fmt.Printf("{Tile: %d, Addr: %#x, Write: %v, Gap: %d},\n", r.Tile, r.Addr, r.Write, r.Gap)
	}
}
