package check

import (
	"fmt"

	"repro/internal/memctrl"
	"repro/internal/mesh"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Fingerprint is the deterministic signature of one unchecked replay:
// the clock at the last reference retirement and the mesh activity
// counters. Two replays of the same stream on any executor must
// produce the same fingerprint — the differential gate the parallel
// stress legs use where the shadow checker (hub-resident) cannot
// follow. The retirement clock is used rather than the drain clock
// because RunParallel rests at its last window's end, which trails
// the final event by up to lookahead-1 cycles by construction.
type Fingerprint struct {
	LastRetire sim.Time
	Net        mesh.Stats
}

// replayWindow bounds one executor chunk between progress checks; a
// chunk with pending events but no retirements is a stall (the
// watchdog cannot arm on the parallel executor, so progress is
// checked at window granularity instead).
const replayWindow = 2_000_000

// RunRecordSharded replays one stream on a sharded mini-chip with no
// shadow checker attached, using either the sequential merge or the
// concurrent RunParallel window executor, and returns the replay
// fingerprint. Engine invariants are still checked at quiescence, and
// livelock/deadlock still fail the run — this is the stress surface
// for the messageized engine handlers, whose cross-tile work must be
// shard-affine for the parallel executor to resolve at all.
func RunRecordSharded(protocol string, recs []trace.Record, tiles, areas, shards int, seed uint64, parallel bool) (fp Fingerprint, err error) {
	grid := topo.SquareGrid(tiles)
	areasv, err := topo.NewAreas(grid, areas)
	if err != nil {
		return fp, err
	}
	netCfg := mesh.DefaultConfig()
	sk := sim.NewSharded(seed, shards, netCfg.HopLatency())
	hub := sk.Hub()
	net := mesh.New(hub, grid, netCfg)
	shardOf := topo.Partition(grid, shards)
	lanes := make([]*sim.Kernel, shards)
	for i := range lanes {
		lanes[i] = sk.Shard(i)
	}
	net.SetSharding(lanes, shardOf)
	mem := memctrl.Default(grid, hub.Rand().Fork())
	ctx := &proto.Context{Kernel: hub, Net: net, Areas: areasv, Mem: mem, Cfg: TinyConfig()}
	ctx.SetLanes(shardOf, lanes)
	eng, err := newEngine(protocol, ctx)
	if err != nil {
		return fp, err
	}

	// Per-tile streams with single-writer cursors: each tile's step
	// chain lives entirely on its own lane, so the replay driver itself
	// is shard-affine.
	perTile := make([][]trace.Record, grid.Tiles())
	for _, r := range recs {
		perTile[r.Tile] = append(perTile[r.Tile], r)
	}
	cursor := make([]int, grid.Tiles())
	retired := make([]int, grid.Tiles())
	lastRetire := make([]sim.Time, grid.Tiles())
	var step func(tile topo.Tile)
	step = func(tile topo.Tile) {
		rs := perTile[tile]
		i := cursor[tile]
		if i >= len(rs) {
			return
		}
		cursor[tile]++
		r := rs[i]
		k := lanes[shardOf[tile]]
		issue := func() {
			eng.Access(r.Tile, r.Addr, r.Write, func() {
				retired[tile]++
				lastRetire[tile] = k.Now()
				step(tile)
			})
		}
		if r.Gap > 0 {
			k.After(r.Gap, issue)
		} else {
			issue()
		}
	}
	for t := 0; t < grid.Tiles(); t++ {
		if len(perTile[t]) == 0 {
			continue
		}
		tile := topo.Tile(t)
		lanes[shardOf[t]].After(sim.Time(t%7), func() { step(tile) })
	}

	sum := func() int {
		n := 0
		for _, r := range retired {
			n += r
		}
		return n
	}
	if parallel {
		ctx.ArmLanes()
		defer ctx.FoldLanes()
	}
	for sk.Pending() > 0 {
		before := sum()
		if parallel {
			sk.RunParallel(sk.Now() + replayWindow)
		} else {
			sk.Run(sk.Now() + replayWindow)
		}
		if sk.Pending() > 0 && sum() == before {
			return fp, fmt.Errorf("check: %s stalled at t=%d with %d/%d refs retired, %d events pending\n%s",
				eng.Name(), sk.Now(), sum(), len(recs), sk.Pending(), proto.FormatStalls(eng))
		}
	}
	if done := sum(); done != len(recs) {
		return fp, fmt.Errorf("check: %s retired %d of %d refs with no events pending (deadlock)\n%s",
			eng.Name(), done, len(recs), proto.FormatStalls(eng))
	}
	defer func() {
		if err == nil {
			if r := recover(); r != nil {
				err = fmt.Errorf("check: invariant failure: %v", r)
			}
		}
	}()
	eng.CheckInvariants()
	last := sim.Time(0)
	for _, t := range lastRetire {
		if t > last {
			last = t
		}
	}
	return Fingerprint{LastRetire: last, Net: net.Stats()}, nil
}
