// Package storage computes the bit-exact sizes of every coherence
// structure of the four protocols, reproducing Table V (per-tile memory
// overhead) and Table VII (overhead sweep over cores and areas) of the
// paper analytically. The tag-array bit counts it produces also drive
// the leakage model of internal/power (Table VI).
package storage

import (
	"fmt"
	"math/bits"
)

// Protocol selects one of the four evaluated coherence protocols.
type Protocol int

// The four protocols of the paper.
const (
	Directory Protocol = iota
	DiCo
	DiCoProviders
	DiCoArin
)

// String returns the paper's protocol name.
func (p Protocol) String() string {
	switch p {
	case Directory:
		return "Directory"
	case DiCo:
		return "DiCo"
	case DiCoProviders:
		return "DiCo-Providers"
	case DiCoArin:
		return "DiCo-Arin"
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// All lists the protocols in the paper's presentation order.
var All = []Protocol{Directory, DiCo, DiCoProviders, DiCoArin}

// Config holds the per-tile geometry of Section V-B. The tag widths are
// fixed by the 40-bit physical address and the cache geometries of
// Table III and are held constant across core counts, as the paper
// does for Table VII.
type Config struct {
	Tiles int // ntc
	Areas int // na

	L1Entries  int // 128 KB, 4-way, 64 B blocks -> 2048
	L2Entries  int // 1 MB bank, 8-way, 64 B blocks -> 16384
	CCEntries  int // L1C$ / L2C$ entries
	DirEntries int // NCID directory-cache entries (directory protocol)

	BlockBits  int // 64 bytes
	L1TagBits  int
	L2TagBits  int
	DirTagBits int
	L1CTagBits int
	L2CTagBits int
}

// DefaultConfig returns the paper's Table III / Section V-B geometry
// for a chip with tiles tiles divided into areas areas.
func DefaultConfig(tiles, areas int) Config {
	return Config{
		Tiles:      tiles,
		Areas:      areas,
		L1Entries:  2048,
		L2Entries:  16384,
		CCEntries:  2048,
		DirEntries: 2048,
		BlockBits:  64 * 8,
		L1TagBits:  25,
		L2TagBits:  17,
		DirTagBits: 17,
		L1CTagBits: 23,
		L2CTagBits: 17,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Tiles <= 0 {
		return fmt.Errorf("storage: non-positive tile count %d", c.Tiles)
	}
	if c.Areas <= 0 || c.Tiles%c.Areas != 0 {
		return fmt.Errorf("storage: %d areas do not divide %d tiles", c.Areas, c.Tiles)
	}
	return nil
}

// TilesPerArea returns nta.
func (c Config) TilesPerArea() int { return c.Tiles / c.Areas }

// GenPoBits returns the size of a general pointer: log2(ntc).
func (c Config) GenPoBits() int { return ceilLog2(c.Tiles) }

// ProPoBits returns the size of a pointer-to-provider: log2(nta).
func (c Config) ProPoBits() int { return ceilLog2(c.TilesPerArea()) }

func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Structure is one storage array of a tile.
type Structure struct {
	Name      string
	EntryBits int
	Entries   int
}

// Bits returns the structure's total size in bits.
func (s Structure) Bits() int { return s.EntryBits * s.Entries }

// KB returns the structure's total size in kilobytes.
func (s Structure) KB() float64 { return float64(s.Bits()) / 8 / 1024 }

// DataStructures returns the data-holding arrays of a tile (tag +
// block for L1 and L2), which are identical across protocols. Table V
// reports these as 134.25 KB (L1) and 1058 KB (L2).
func DataStructures(c Config) []Structure {
	return []Structure{
		{Name: "L1 cache", EntryBits: c.L1TagBits + c.BlockBits, Entries: c.L1Entries},
		{Name: "L2 cache", EntryBits: c.L2TagBits + c.BlockBits, Entries: c.L2Entries},
	}
}

// CoherenceStructures returns the per-tile coherence arrays of
// protocol p, exactly as Table V itemizes them:
//
//   - Directory: full-map vector per L2 entry + NCID directory cache
//     (DirTag + full-map + GenPo).
//   - DiCo: full-map vector per L1 and L2 entry + L1C$ + L2C$.
//   - DiCo-Providers: per L1 entry an area sharer vector (nta bits),
//     one ProPo+valid per remote area; per L2 entry one ProPo+valid per
//     area; + L1C$ + L2C$.
//   - DiCo-Arin: per L1 entry an area sharer vector; per L2 entry
//     max(nta + log2(na), na x ProPo) bits (the sharer vector and the
//     provider pointers are never needed at the same time); + L1C$ +
//     L2C$.
func CoherenceStructures(p Protocol, c Config) []Structure {
	nta := c.TilesPerArea()
	genPo := c.GenPoBits()
	proPo := c.ProPoBits()
	l1c := Structure{Name: "L1C$", EntryBits: c.L1CTagBits + genPo + 1, Entries: c.CCEntries}
	l2c := Structure{Name: "L2C$", EntryBits: c.L2CTagBits + genPo + 1, Entries: c.CCEntries}
	switch p {
	case Directory:
		return []Structure{
			{Name: "L2 dir. inf.", EntryBits: c.Tiles, Entries: c.L2Entries},
			{Name: "Dir. cache", EntryBits: c.DirTagBits + c.Tiles + genPo, Entries: c.DirEntries},
		}
	case DiCo:
		return []Structure{
			{Name: "L1 dir. inf.", EntryBits: c.Tiles, Entries: c.L1Entries},
			{Name: "L2 dir. inf.", EntryBits: c.Tiles, Entries: c.L2Entries},
			l1c,
			l2c,
		}
	case DiCoProviders:
		return []Structure{
			{Name: "L1 dir. inf.", EntryBits: nta + (c.Areas-1)*(proPo+1), Entries: c.L1Entries},
			{Name: "L2 dir. inf.", EntryBits: c.Areas * (proPo + 1), Entries: c.L2Entries},
			l1c,
			l2c,
		}
	case DiCoArin:
		ownerForm := nta + ceilLog2(c.Areas)
		interForm := c.Areas * proPo
		entry := ownerForm
		if interForm > entry {
			entry = interForm
		}
		return []Structure{
			{Name: "L1 dir. inf.", EntryBits: nta, Entries: c.L1Entries},
			{Name: "L2 dir. inf.", EntryBits: entry, Entries: c.L2Entries},
			l1c,
			l2c,
		}
	}
	panic("storage: unknown protocol")
}

// CoherenceBits returns the total coherence storage of a tile in bits.
func CoherenceBits(p Protocol, c Config) int {
	total := 0
	for _, s := range CoherenceStructures(p, c) {
		total += s.Bits()
	}
	return total
}

// DataBits returns the total data storage (tags + blocks) in bits.
func DataBits(c Config) int {
	total := 0
	for _, s := range DataStructures(c) {
		total += s.Bits()
	}
	return total
}

// Overhead returns the coherence storage overhead relative to the data
// storage — the percentage columns of Tables V and VII (as a fraction,
// e.g. 0.1256 for the directory at 64 tiles).
func Overhead(p Protocol, c Config) float64 {
	return float64(CoherenceBits(p, c)) / float64(DataBits(c))
}

// TagArrayBits returns the bits held in the tile's tag arrays: address
// tags plus all coherence information. This is what Table VI's "Tag
// Leakage Power" column covers.
func TagArrayBits(p Protocol, c Config) int {
	tags := c.L1TagBits*c.L1Entries + c.L2TagBits*c.L2Entries
	return tags + CoherenceBits(p, c)
}

// DataArrayBits returns the bits of the block data arrays alone.
func DataArrayBits(c Config) int {
	return c.BlockBits * (c.L1Entries + c.L2Entries)
}

// OverheadSweep computes Table VII: for each core count, the overhead
// of every protocol at each area count (powers of two from 2 to the
// core count). Returned as overhead[protocol][areaIndex], with the
// area counts in the second return value.
func OverheadSweep(tiles int) (map[Protocol][]float64, []int) {
	var areaCounts []int
	for a := 2; a <= tiles; a *= 2 {
		areaCounts = append(areaCounts, a)
	}
	out := make(map[Protocol][]float64, len(All))
	for _, p := range All {
		row := make([]float64, len(areaCounts))
		for i, a := range areaCounts {
			row[i] = Overhead(p, DefaultConfig(tiles, a))
		}
		out[p] = row
	}
	return out, areaCounts
}
