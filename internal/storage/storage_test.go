package storage

import (
	"math"
	"testing"
)

func cfg64x4() Config { return DefaultConfig(64, 4) }

func TestPointerSizes(t *testing.T) {
	c := cfg64x4()
	if c.GenPoBits() != 6 {
		t.Errorf("GenPo = %d bits, want 6", c.GenPoBits())
	}
	if c.ProPoBits() != 4 {
		t.Errorf("ProPo = %d bits, want 4", c.ProPoBits())
	}
	if c.TilesPerArea() != 16 {
		t.Errorf("nta = %d, want 16", c.TilesPerArea())
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 64: 6, 1024: 10}
	for n, want := range cases {
		if got := ceilLog2(n); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestTableVDataSizes checks the Data rows of Table V.
func TestTableVDataSizes(t *testing.T) {
	ds := DataStructures(cfg64x4())
	if kb := ds[0].KB(); kb != 134.25 {
		t.Errorf("L1 cache = %v KB, want 134.25", kb)
	}
	if kb := ds[1].KB(); kb != 1058 {
		t.Errorf("L2 cache = %v KB, want 1058", kb)
	}
}

// TestTableVStructureSizes checks every coherence row of Table V.
func TestTableVStructureSizes(t *testing.T) {
	c := cfg64x4()
	want := map[Protocol]map[string]float64{
		Directory: {
			"L2 dir. inf.": 128,
			"Dir. cache":   21.75,
		},
		DiCo: {
			"L1 dir. inf.": 16,
			"L2 dir. inf.": 128,
			"L1C$":         7.5,
			"L2C$":         6,
		},
		DiCoProviders: {
			"L1 dir. inf.": 7.75, // 2 bytes + 3 ProPos + 3 valid bits
			"L2 dir. inf.": 40,   // 4 ProPos + 4 valid bits
			"L1C$":         7.5,
			"L2C$":         6,
		},
		DiCoArin: {
			"L1 dir. inf.": 4,  // nta = 16 bits
			"L2 dir. inf.": 36, // max(16+2, 4x4) = 18 bits
			"L1C$":         7.5,
			"L2C$":         6,
		},
	}
	for p, rows := range want {
		got := CoherenceStructures(p, c)
		byName := make(map[string]float64)
		for _, s := range got {
			byName[s.Name] = s.KB()
		}
		for name, kb := range rows {
			if math.Abs(byName[name]-kb) > 1e-9 {
				t.Errorf("%v %s = %v KB, want %v", p, name, byName[name], kb)
			}
		}
		if len(got) != len(rows) {
			t.Errorf("%v has %d structures, want %d", p, len(got), len(rows))
		}
	}
}

// TestTableVOverheads checks the Overhead column of Table V.
func TestTableVOverheads(t *testing.T) {
	c := cfg64x4()
	want := map[Protocol]float64{
		Directory:     0.1256,
		DiCo:          0.1321,
		DiCoProviders: 0.0514,
		DiCoArin:      0.0449,
	}
	for p, w := range want {
		got := Overhead(p, c)
		if math.Abs(got-w) > 0.0005 {
			t.Errorf("%v overhead = %.4f, want %.4f", p, got, w)
		}
	}
}

// TestTableVIIAgainstPaper checks the full sweep against the published
// Table VII within a tolerance that accounts for the paper's rounding
// and its (undocumented) valid-bit conventions at extreme area counts.
func TestTableVIIAgainstPaper(t *testing.T) {
	type row struct {
		p     Protocol
		cores int
		// overhead percent per area count 2,4,8,...,cores
		want []float64
		tol  float64
	}
	rows := []row{
		{Directory, 64, []float64{12.6, 12.6, 12.6, 12.6, 12.6, 12.6}, 0.2},
		{DiCo, 64, []float64{13.2, 13.2, 13.2, 13.2, 13.2, 13.2}, 0.2},
		{DiCoProviders, 64, []float64{4, 5.1, 7.2, 10, 12.6, 12}, 1.3},
		{DiCoArin, 64, []float64{7.3, 4.5, 5.3, 6.6, 6.5, 2.3}, 0.8},
		{Directory, 128, []float64{24.7, 24.7, 24.7, 24.7, 24.7, 24.7, 24.7}, 0.2},
		{DiCo, 128, []float64{25.3, 25.3, 25.3, 25.3, 25.3, 25.3, 25.3}, 0.2},
		{DiCoProviders, 128, []float64{5, 6.2, 8.8, 13, 18.7, 24, 22.7}, 2.8},
		{DiCoArin, 128, []float64{13.4, 7.5, 6.8, 9.3, 12, 11.9, 2.5}, 1.5},
		{Directory, 256, []float64{48.9, 48.9, 48.9, 48.9, 48.9, 48.9, 48.9, 48.9}, 0.2},
		{DiCoProviders, 256, []float64{6.7, 7.6, 10.6, 16.2, 24.8, 36.2, 47, 44.3}, 5.5},
		{DiCoArin, 256, []float64{25.5, 13.5, 8.5, 12.2, 17.4, 22.7, 22.7, 2.6}, 3},
		{Directory, 512, []float64{97.5, 97.5, 97.5, 97.5, 97.5, 97.5, 97.5, 97.5, 97.5}, 0.5},
		{DiCoArin, 512, []float64{49.8, 25.7, 13.7, 15.2, 23, 33.6, 44.3, 44.3, 2.8}, 6},
		{Directory, 1024, []float64{195, 195, 195, 195, 195, 195, 195, 195, 195}, 1.5},
		{DiCoProviders, 1024, []float64{15.5, 13.1, 15.7, 23.3, 37.5, 60.8, 95.8, 141.7, 184.9}, 12},
	}
	for _, r := range rows {
		sweep, areas := OverheadSweep(r.cores)
		got := sweep[r.p]
		// The paper's table truncates the 1024-core row after 512
		// areas; compare only the published columns.
		if len(got) < len(r.want) {
			t.Fatalf("%v@%d: %d area columns, want at least %d", r.p, r.cores, len(got), len(r.want))
		}
		for i := range r.want {
			gp := got[i] * 100
			if math.Abs(gp-r.want[i]) > r.tol {
				t.Errorf("%v@%d cores, %d areas: %.1f%%, paper %.1f%% (tol %.1f)",
					r.p, r.cores, areas[i], gp, r.want[i], r.tol)
			}
		}
	}
}

// TestExactPaperColumns4Areas pins the 4-area column (the evaluated
// configuration) to the paper exactly (within rounding).
func TestExactPaperColumns4Areas(t *testing.T) {
	cases := []struct {
		cores int
		p     Protocol
		want  float64
	}{
		{64, DiCoProviders, 5.1}, {64, DiCoArin, 4.5},
		{128, DiCoProviders, 6.2}, {128, DiCoArin, 7.5},
		{256, DiCoProviders, 7.6}, {256, DiCoArin, 13.5},
		{512, DiCoProviders, 9.7}, {512, DiCoArin, 25.7},
		{1024, DiCoProviders, 13.1}, {1024, DiCoArin, 50},
	}
	for _, cse := range cases {
		got := Overhead(cse.p, DefaultConfig(cse.cores, 4)) * 100
		if math.Abs(got-cse.want) > 0.35 {
			t.Errorf("%v@%d/4 = %.2f%%, paper %.1f%%", cse.p, cse.cores, got, cse.want)
		}
	}
}

// TestScalingClaims verifies the qualitative claims of Section V-B.
func TestScalingClaims(t *testing.T) {
	c := cfg64x4()
	// "59-64% reduction in directory information in cache" vs directory.
	dir := float64(CoherenceBits(Directory, c))
	prov := 1 - float64(CoherenceBits(DiCoProviders, c))/dir
	arin := 1 - float64(CoherenceBits(DiCoArin, c))/dir
	if prov < 0.55 || prov > 0.63 {
		t.Errorf("Providers reduction = %.2f, want ~0.59", prov)
	}
	if arin < 0.60 || arin > 0.68 {
		t.Errorf("Arin reduction = %.2f, want ~0.64", arin)
	}
	// DiCo needs even more coherence info than the directory.
	if CoherenceBits(DiCo, c) <= CoherenceBits(Directory, c) {
		t.Error("DiCo should need more coherence storage than the directory")
	}
	// Directory/DiCo overheads are independent of the area count.
	for _, a := range []int{2, 8, 32} {
		if Overhead(Directory, DefaultConfig(64, a)) != Overhead(Directory, c) {
			t.Error("directory overhead depends on areas")
		}
	}
	// Providers overhead grows with area count (more ProPos); Arin has
	// a minimum at intermediate area counts.
	p4 := Overhead(DiCoProviders, DefaultConfig(64, 4))
	p16 := Overhead(DiCoProviders, DefaultConfig(64, 16))
	if p16 <= p4 {
		t.Error("Providers overhead should grow with areas")
	}
}

func TestValidate(t *testing.T) {
	if err := cfg64x4().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := DefaultConfig(64, 3)
	if err := bad.Validate(); err == nil {
		t.Error("3 areas on 64 tiles accepted")
	}
	bad2 := DefaultConfig(0, 1)
	if err := bad2.Validate(); err == nil {
		t.Error("0 tiles accepted")
	}
}

func TestProtocolString(t *testing.T) {
	names := map[Protocol]string{
		Directory: "Directory", DiCo: "DiCo",
		DiCoProviders: "DiCo-Providers", DiCoArin: "DiCo-Arin",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(p), p.String(), want)
		}
	}
}

func BenchmarkTable7Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cores := range []int{64, 128, 256, 512, 1024} {
			OverheadSweep(cores)
		}
	}
}
