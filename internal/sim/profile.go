package sim

import "math/bits"

// Hist is a power-of-two bucketed histogram of uint64 samples.
// Bucket i counts samples v with bits.Len64(v) == i, i.e. bucket 0
// holds v == 0 and bucket i >= 1 holds v in [2^(i-1), 2^i). The
// bucketing is exact, cheap (one CLZ per sample) and needs no
// configuration, which is what a kernel hot path can afford.
type Hist struct {
	Count   uint64
	Sum     uint64
	Max     uint64
	Buckets [65]uint64
}

// Observe records one sample.
func (h *Hist) Observe(v uint64) {
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	h.Buckets[bits.Len64(v)]++
}

// Mean returns the sample mean (0 when empty).
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Percentile returns an upper bound for the p-quantile (p in (0,1]):
// the inclusive upper edge of the first bucket whose cumulative count
// reaches ceil(p*Count), clamped to the observed Max. The answer
// depends only on the bucket counts, so it is deterministic and
// identical across executors for identical sample streams.
func (h *Hist) Percentile(p float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(p * float64(h.Count))
	if float64(rank) < p*float64(h.Count) {
		rank++ // ceil
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.Count {
		rank = h.Count
	}
	var cum uint64
	for i, n := range h.Buckets {
		cum += n
		if cum >= rank {
			if i == 0 {
				return 0
			}
			ub := uint64(1)<<uint(i) - 1
			if ub > h.Max {
				ub = h.Max
			}
			return ub
		}
	}
	return h.Max
}

// Merge adds other's samples into h.
func (h *Hist) Merge(other *Hist) {
	h.Count += other.Count
	h.Sum += other.Sum
	if other.Max > h.Max {
		h.Max = other.Max
	}
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
}

// Profile collects kernel-level dispatch statistics. It is pure
// observation: attaching one never schedules events, reorders the
// queue or touches the clock, so a profiled run's event stream is
// bit-identical to an unprofiled one.
type Profile struct {
	// DispatchedClosure counts events dispatched through the closure
	// form (At/After); DispatchedArg counts the non-capturing arg
	// fast path (AtArg/AfterArg).
	DispatchedClosure uint64
	DispatchedArg     uint64
	// Scheduled counts events pushed into the queue.
	Scheduled uint64
	// QueueDepth samples the pending-event count at every dispatch.
	QueueDepth Hist
}

// Dispatched returns the total events dispatched while profiling.
func (p *Profile) Dispatched() uint64 { return p.DispatchedClosure + p.DispatchedArg }

// SetProfile attaches (or, with nil, detaches) a dispatch profiler.
// The kernel records into p from the next event on; p's existing
// tallies are kept, so a profile can span multiple kernels or phases.
func (k *Kernel) SetProfile(p *Profile) { k.prof = p }

// Profile returns the attached profiler (nil when off).
func (k *Kernel) Profile() *Profile { return k.prof }
