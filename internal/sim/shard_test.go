package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// ---- synthetic workloads ------------------------------------------------
//
// Both workloads model "tiles" running chains of events with per-tile
// accumulators folded at every dispatch, so any deviation in dispatch
// order — global, per-cycle, or within a slot — changes the recorded
// traces. Tile state is owned by the tile's lane, so the workloads are
// valid on a serial kernel, the sequential merge, and (workload B) the
// parallel window executor alike.

// mix is a small deterministic hash for branching decisions.
func mix(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b + 0x632be59bd9b4e019
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x
}

type traceEnt struct {
	At   Time
	Step int
	Acc  uint64
}

// workloadA exercises the sequential merge against a serial kernel with
// the full schedule vocabulary: same-cycle storms, delay-0 cross-tile
// schedules, and far-future delays that land in the overflow heap.
// kernelFor maps a tile to the kernel its events run on (the single
// kernel serially, the tile's lane when sharded); global records the
// exact whole-run dispatch order.
type workloadA struct {
	tiles     int
	steps     int
	seed      uint64
	kernelFor func(tile int) *Kernel
	acc       []uint64
	trace     [][]traceEnt
	global    []int // tile ids in dispatch order
}

func (w *workloadA) run(tile, step int) {
	k := w.kernelFor(tile)
	w.acc[tile] = w.acc[tile]*31 + uint64(tile*1000+step) + uint64(k.Now())
	w.trace[tile] = append(w.trace[tile], traceEnt{At: k.Now(), Step: step, Acc: w.acc[tile]})
	w.global = append(w.global, tile)
	if step >= w.steps {
		return
	}
	h := mix(uint64(tile)+w.seed<<32, uint64(step))
	// Continue this tile's chain.
	w.kernelFor(tile).After(Time(h%7), func() { w.run(tile, step+1) })
	// Sometimes poke another tile, including at delay 0 (same cycle),
	// and sometimes far enough out to land in the overflow heap. Pokes
	// are leaves (step jumps to the end) so the event count stays linear
	// while every poke still records a trace entry at its landing cycle.
	switch h % 5 {
	case 0:
		other := int(h>>8) % w.tiles
		w.kernelFor(other).After(Time(h>>16%3), func() { w.run(other, w.steps) })
	case 1:
		other := (tile + 1) % w.tiles
		w.kernelFor(other).After(0, func() { w.run(other, w.steps) })
	case 2:
		w.kernelFor(tile).After(wheelSize+Time(h>>16%500), func() { w.run(tile, w.steps) })
	}
}

func runWorkloadA(tiles, steps, shards int, seed uint64) *workloadA {
	w := &workloadA{tiles: tiles, steps: steps, seed: seed,
		acc: make([]uint64, tiles), trace: make([][]traceEnt, tiles)}
	if shards == 0 {
		k := NewKernel(42)
		w.kernelFor = func(int) *Kernel { return k }
		for i := 0; i < tiles; i++ {
			tile := i
			k.At(Time(i%3), func() { w.run(tile, 0) })
		}
		k.Run(0)
		return w
	}
	sk := NewSharded(42, shards, 5)
	w.kernelFor = func(tile int) *Kernel { return sk.Shard(tile % shards) }
	for i := 0; i < tiles; i++ {
		tile := i
		w.kernelFor(tile).At(Time(i%3), func() { w.run(tile, 0) })
	}
	sk.Run(0)
	return w
}

// TestShardedSequentialMatchesSerial is the tentpole's anchor: the
// sequential merge must dispatch the exact whole-run event order of a
// serial kernel, for any shard count, including same-cycle cross-shard
// events and overflow-heap traffic.
func TestShardedSequentialMatchesSerial(t *testing.T) {
	serial := runWorkloadA(8, 120, 0, 1)
	for shards := 1; shards <= 5; shards++ {
		got := runWorkloadA(8, 120, shards, 1)
		if !reflect.DeepEqual(got.global, serial.global) {
			t.Fatalf("shards=%d: global dispatch order diverged (serial %d events, sharded %d)",
				shards, len(serial.global), len(got.global))
		}
		if !reflect.DeepEqual(got.trace, serial.trace) {
			t.Fatalf("shards=%d: per-tile traces diverged", shards)
		}
	}
}

// workloadB is shard-affine: a tile's events run on its lane and touch
// only that lane's tiles; cross-lane interaction flows through Send
// with delay >= lookahead. Message payloads fold the sender's
// accumulator into the receiver's, so stamp-order mistakes at a window
// barrier (which would reorder same-cycle arrivals against local
// events) change the traces.
type workloadB struct {
	tiles     int
	steps     int
	seed      uint64
	lookahead Time
	sk        *ShardedKernel
	laneOf    func(tile int) int
	acc       []uint64
	trace     [][]traceEnt
}

type bMsg struct {
	w    *workloadB
	tile int
	step int
	fold uint64
}

func runB(a any) {
	m := a.(*bMsg)
	w := m.w
	k := w.sk.Shard(w.laneOf(m.tile))
	w.acc[m.tile] = w.acc[m.tile]*31 + uint64(m.tile*1000+m.step) + uint64(k.Now()) + m.fold
	w.trace[m.tile] = append(w.trace[m.tile], traceEnt{At: k.Now(), Step: m.step, Acc: w.acc[m.tile]})
	if m.step >= w.steps {
		return
	}
	h := mix(uint64(m.tile)+w.seed<<32, uint64(m.step))
	k.AfterArg(Time(h%7), runB, &bMsg{w: w, tile: m.tile, step: m.step + 1})
	// Side events are leaves (step = steps) so the event count stays
	// linear while every message still lands, records, and folds.
	switch h % 4 {
	case 0:
		// Cross-tile message at exactly the lookahead horizon, carrying
		// this tile's accumulator.
		other := int(h>>8) % w.tiles
		k.Send(w.laneOf(other), w.lookahead+Time(h>>16%4), runB,
			&bMsg{w: w, tile: other, step: w.steps, fold: w.acc[m.tile]})
	case 1:
		// Far-future self event: provisional stamps in the overflow heap.
		k.AfterArg(wheelSize+Time(h>>16%300), runB, &bMsg{w: w, tile: m.tile, step: w.steps})
	}
}

func newWorkloadB(tiles, steps, shards int, lookahead Time, seed uint64) *workloadB {
	w := &workloadB{tiles: tiles, steps: steps, seed: seed, lookahead: lookahead,
		sk:  NewSharded(7 + seed, shards, lookahead),
		acc: make([]uint64, tiles), trace: make([][]traceEnt, tiles)}
	w.laneOf = func(tile int) int { return tile % shards }
	for i := 0; i < tiles; i++ {
		w.sk.Shard(w.laneOf(i)).AtArg(Time(i%3), runB, &bMsg{w: w, tile: i, step: 0})
	}
	return w
}

// TestShardedParallelMatchesSequential drives the parallel window
// executor over the shard-affine workload and requires the per-tile
// traces to be identical to the sequential merge's, across shard counts
// and lookaheads (including lookahead = 1, one-cycle windows).
func TestShardedParallelMatchesSequential(t *testing.T) {
	const tiles, steps = 8, 100
	for _, la := range []Time{1, 5, 12} {
		for shards := 1; shards <= 4; shards++ {
			ref := newWorkloadB(tiles, steps, shards, la, 1)
			ref.sk.Run(0)
			got := newWorkloadB(tiles, steps, shards, la, 1)
			got.sk.RunParallel(0)
			if !reflect.DeepEqual(got.trace, ref.trace) {
				t.Fatalf("lookahead=%d shards=%d: parallel traces diverged from sequential", la, shards)
			}
			if got.sk.EventsRun() != ref.sk.EventsRun() {
				t.Fatalf("lookahead=%d shards=%d: events %d != %d",
					la, shards, got.sk.EventsRun(), ref.sk.EventsRun())
			}
		}
	}
}

// TestShardedParallelThenSequential proves the barrier assigns the
// exact stamps the sequential merge would have: a run split into a
// parallel prefix and a sequential suffix must equal an all-sequential
// run, which can only hold if every pending event crosses the seam with
// its exact serial-order stamp.
func TestShardedParallelThenSequential(t *testing.T) {
	const tiles, steps = 8, 100
	for _, seam := range []Time{1, 17, 400, 2000} {
		ref := newWorkloadB(tiles, steps, 3, 5, 2)
		ref.sk.Run(0)
		got := newWorkloadB(tiles, steps, 3, 5, 2)
		got.sk.RunParallel(seam)
		got.sk.Run(0)
		if !reflect.DeepEqual(got.trace, ref.trace) {
			t.Fatalf("seam=%d: parallel-then-sequential traces diverged", seam)
		}
	}
}

// TestShardedSameCycleCrossShardArrival pins the merge rule for the
// trickiest case: a cross-shard arrival and a locally scheduled event
// on the same lane in the same cycle must dispatch in global schedule
// order, whichever lane scheduled first.
func TestShardedSameCycleCrossShardArrival(t *testing.T) {
	sk := NewSharded(1, 2, Time(4))
	var order []string
	// Lane 1 schedules a local event for cycle 4 first...
	sk.Shard(1).At(4, func() { order = append(order, "local") })
	// ...then lane 0 sends a message also arriving at cycle 4: later in
	// global schedule order, so it must dispatch second.
	sk.Shard(0).Send(1, 4, func(any) { order = append(order, "arrival") }, nil)
	sk.Run(0)
	if want := []string{"local", "arrival"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("same-cycle order = %v, want %v", order, want)
	}

	// The mirror image: the cross-shard send happens first, so the
	// arrival dispatches first.
	sk2 := NewSharded(1, 2, Time(4))
	order = nil
	sk2.Shard(0).Send(1, 4, func(any) { order = append(order, "arrival") }, nil)
	sk2.Shard(1).At(4, func() { order = append(order, "local") })
	sk2.Run(0)
	if want := []string{"arrival", "local"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("same-cycle mirror order = %v, want %v", order, want)
	}
}

// TestShardedIdleLanes checks lanes with zero pending events at the
// horizon: they must neither stall the merge nor desynchronize clocks.
func TestShardedIdleLanes(t *testing.T) {
	sk := NewSharded(3, 4, 2)
	var fired []Time
	sk.Shard(2).At(10, func() { fired = append(fired, sk.Shard(2).Now()) })
	sk.Shard(2).After(wheelSize+50, func() { fired = append(fired, sk.Shard(2).Now()) })
	if n := sk.Run(0); n != 2 {
		t.Fatalf("ran %d events, want 2", n)
	}
	if want := []Time{10, wheelSize + 50}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := 0; i < sk.NumShards(); i++ {
		if got := sk.Shard(i).Now(); got != wheelSize+50 {
			t.Fatalf("lane %d clock %d, want %d (idle lanes must advance)", i, got, wheelSize+50)
		}
	}
	// Parallel flavor: idle lanes join every window barrier.
	sk2 := NewSharded(3, 4, 2)
	n := 0
	sk2.Shard(1).At(9, func() { n++ })
	sk2.Shard(1).After(200, func() { n++ })
	sk2.RunParallel(0)
	if n != 2 {
		t.Fatalf("parallel ran %d events, want 2", n)
	}
}

// TestShardedSendBelowLookaheadPanics: the conservative horizon is an
// invariant, not advice.
func TestShardedSendBelowLookaheadPanics(t *testing.T) {
	sk := NewSharded(1, 2, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-shard Send below lookahead did not panic")
		}
	}()
	sk.Shard(0).Send(1, 4, func(any) {}, nil)
}

// TestShardedRunLimit mirrors the serial Run(limit) contract, including
// the overflow migration on the final clock jump (the PR 5 bug class).
func TestShardedRunLimit(t *testing.T) {
	sk := NewSharded(9, 2, 3)
	var got []int
	sk.Shard(0).At(1500, func() { got = append(got, 0) })
	sk.Shard(1).At(10, func() { got = append(got, 1) })
	sk.Run(1000)
	if want := []int{1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after Run(1000): %v, want %v", got, want)
	}
	if sk.Now() != 1000 {
		t.Fatalf("Now() = %d, want 1000", sk.Now())
	}
	// An event scheduled after the jump must not overtake the pending
	// overflow event.
	sk.Shard(0).At(1800, func() { got = append(got, 2) })
	sk.Run(0)
	if want := []int{1, 0, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("final order %v, want %v", got, want)
	}
}

// TestShardedStateRoundTrip checks the merged snapshot surface: a
// sharded group's state restores into another group (and a serial
// kernel's state restores into a group), continuing bit-identically.
func TestShardedStateRoundTrip(t *testing.T) {
	sk := NewSharded(11, 3, 5)
	ran := 0
	for i := 0; i < 3; i++ {
		sk.Shard(i).After(Time(5*i+3), func() { ran++ })
	}
	sk.Run(0)
	st, err := sk.State()
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != 3 || st.Now != 13 {
		t.Fatalf("state = %+v, want Events=3 Now=13", st)
	}

	sk2 := NewSharded(11, 3, 5)
	if err := sk2.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	st2, err := sk2.State()
	if err != nil {
		t.Fatal(err)
	}
	if st2 != st {
		t.Fatalf("restored state %+v != captured %+v", st2, st)
	}
	if sk2.Now() != st.Now || sk2.Shard(2).Now() != st.Now {
		t.Fatal("restore did not align lane clocks")
	}

	// Serial -> sharded: the merged surface is the same type, so a
	// serial warmup snapshot restores into a sharded measure phase.
	k := NewKernel(11)
	k.After(9, func() {})
	k.Run(0)
	kst, err := k.State()
	if err != nil {
		t.Fatal(err)
	}
	sk3 := NewSharded(11, 2, 5)
	if err := sk3.RestoreState(kst); err != nil {
		t.Fatal(err)
	}
	if sk3.Now() != 9 || sk3.EventsRun() != 1 {
		t.Fatalf("serial->sharded restore: Now=%d Events=%d", sk3.Now(), sk3.EventsRun())
	}

	// Not quiescent: capture must fail, exactly like the serial kernel.
	sk3.Shard(1).After(4, func() {})
	if _, err := sk3.State(); err == nil {
		t.Fatal("State() on a non-quiescent sharded kernel did not fail")
	}
}

// TestShardedStress sweeps seeds and shard counts, cross-checking the
// parallel executor against the sequential merge on bigger workloads —
// the seeded stress sweep the race stage runs under -race.
func TestShardedStress(t *testing.T) {
	tiles, steps := 12, 150
	if testing.Short() {
		tiles, steps = 6, 60
	}
	for seed := 0; seed < 3; seed++ {
		serial := runWorkloadA(tiles, steps, 0, uint64(seed))
		for shards := 1; shards <= 4; shards++ {
			got := runWorkloadA(tiles, steps, shards, uint64(seed))
			if !reflect.DeepEqual(got.global, serial.global) {
				t.Fatalf("seed=%d shards=%d: sequential merge diverged", seed, shards)
			}
		}
		ref := newWorkloadB(tiles, steps, 4, 5, uint64(seed))
		ref.sk.Run(0)
		par := newWorkloadB(tiles, steps, 4, 5, uint64(seed))
		par.sk.RunParallel(0)
		if !reflect.DeepEqual(par.trace, ref.trace) {
			t.Fatalf("seed=%d: parallel diverged", seed)
		}
	}
}

// BenchmarkShardedParallel measures the parallel window executor on a
// shard-affine workload, against the same workload under the sequential
// merge — the kernel-level scaling harness EXPERIMENTS.md quotes.
func BenchmarkShardedParallel(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("seq/shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := newWorkloadB(shards*4, 400, shards, 5, 3)
				w.sk.Run(0)
			}
		})
		b.Run(fmt.Sprintf("par/shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := newWorkloadB(shards*4, 400, shards, 5, 3)
				w.sk.RunParallel(0)
			}
		})
	}
}
