// Conservative parallel discrete-event simulation over a group of
// kernels ("lanes"), one per mesh shard.
//
// A ShardedKernel coordinates N ordinary Kernels so that one simulation
// can be partitioned across them while dispatching events in EXACTLY
// the order a single serial kernel would. Two executors share the same
// state and invariants:
//
//   - The sequential merge (Step/Run/RunUntil) picks, at every step,
//     the globally earliest (time, seq) event across all lanes,
//     advances every other lane's clock to that timestamp, and
//     dispatches it. Because every schedule call is stamped with a
//     global sequence number (Kernel.scheduleSharded) and the serial
//     kernel's dispatch order is precisely (time, schedule order), the
//     merge is provably bit-identical to a serial run — it is the
//     correctness anchor the crosscheck fingerprint gate verifies, and
//     the executor the full system runs on today (engine events still
//     take synchronous cross-tile shortcuts, so they all live on the
//     hub lane; see DESIGN.md §13).
//
//   - The parallel window executor (RunParallel) runs lanes
//     concurrently in conservative lookahead windows: all lanes execute
//     [H, H+lookahead) independently, where H is the global minimum
//     next-event time and lookahead is the minimum cross-shard latency
//     (one mesh hop). Cross-shard messages go through Send into
//     per-window outboxes and are exchanged at the barrier. Stamps
//     issued inside a window are provisional; the barrier replays the
//     window's dispatch logs in merged (time, seq) order and assigns
//     the exact sequence numbers the sequential merge would have,
//     patching pending events in place. It requires shard-affine
//     events (a lane's handlers touch only that lane's state), which
//     the full system does not yet satisfy — it is exercised and
//     race-proven at the kernel level.
package sim

import (
	"fmt"
	"sync"
	"time"
)

// provBit marks a provisional sequence stamp issued inside a parallel
// window: bit 63 set, lane index in bits 48..62, a per-lane counter
// below. Provisional stamps are unique within a window and numerically
// larger than every final stamp, so a final-vs-provisional comparison
// already orders correctly (the provisional event was scheduled later).
const provBit = uint64(1) << 63

// schedKind distinguishes window-logged schedule calls.
type schedKind uint8

const (
	schedLocal   schedKind = iota // same-lane event (wheel or overflow; relabeled by scan)
	schedChannel                  // cross-shard outbox; idx = outbox position
	schedDefer                    // barrier-deferred operation; idx = defer-log position
)

// schedEnt records one schedule call made during a parallel window.
type schedEnt struct {
	prov uint64
	idx  int32
	kind schedKind
}

// dispatchEnt records one dispatch during a parallel window: the event's
// timestamp, its stamp at dispatch time (final if it was pending before
// the window, provisional if scheduled inside it), and the length of
// the schedule log when the handler started — entries from there to the
// next dispatch's mark are the calls this handler made, in order.
type dispatchEnt struct {
	at         Time
	seq        uint64
	schedStart int32
}

// outMsg is one cross-shard message awaiting exchange at the barrier.
type outMsg struct {
	at  Time
	to  int32
	val evPayload
}

// deferEnt is one barrier-deferred operation (see Kernel.Defer): its
// resolver, argument, and how many sequence stamps it reserves.
type deferEnt struct {
	fn   func(arg any, seqBase uint64)
	arg  any
	nseq int32
}

// windowLog is one lane's record of a parallel window.
type windowLog struct {
	sched    []schedEnt
	dispatch []dispatchEnt
	out      []outMsg
	defers   []deferEnt
	nprov    uint64 // provisional stamps issued this window
}

// deferRes is one resolved defer op awaiting execution: which lane
// logged it, its position in that lane's defer log, and the first of
// its reserved final stamps. Collected in merged replay order, executed
// in that order after relabeling.
type deferRes struct {
	lane    int32
	idx     int32
	seqBase uint64
}

// ShardedKernel coordinates a group of kernels as one logical
// discrete-event scheduler. Create one with NewSharded. Lane 0 is the
// hub: it carries the run's primary random stream (so construction-time
// Fork order matches a serial run) and hosts chip-global machinery.
type ShardedKernel struct {
	kernels   []*Kernel
	lookahead Time

	now    Time
	seq    uint64 // next global schedule stamp
	tag    uint64 // shared causal tag cell (see Kernel.Tag)
	active int32  // lane currently dispatching (sequential merge), -1 idle

	wlogs    []windowLog // per-lane window logs, reused across windows
	deferRes []deferRes  // barrier scratch: resolved defers in merged order

	// laneProf, when non-nil, records RunParallel's per-window lane
	// profile (see laneprof.go). Never touched by the sequential merge.
	laneProf *LaneProfile
}

// NewSharded builds a group of shards kernels. The hub (lane 0) is
// seeded with seed exactly as NewKernel(seed) would be, so code that
// forks construction-time random streams off the hub sees the same
// sequence as a serial run. Other lanes get derived seeds; their
// streams are untouched by the simulator and exist only so a lane is a
// complete Kernel. lookahead is the conservative horizon: the minimum
// latency of any cross-shard event, in cycles (one mesh hop for the
// CMP mesh). It must be >= 1.
func NewSharded(seed uint64, shards int, lookahead Time) *ShardedKernel {
	if shards < 1 {
		panic(fmt.Sprintf("sim: NewSharded with %d shards", shards))
	}
	if lookahead < 1 {
		panic(fmt.Sprintf("sim: NewSharded with lookahead %d (must be >= 1)", lookahead))
	}
	sk := &ShardedKernel{
		kernels:   make([]*Kernel, shards),
		lookahead: lookahead,
		active:    -1,
		wlogs:     make([]windowLog, shards),
	}
	for i := range sk.kernels {
		s := seed
		if i > 0 {
			// splitmix-style derivation: distinct, deterministic, and never
			// colliding with the hub seed in practice. These streams are
			// never drawn from; any value would do.
			s = (seed + uint64(i)*0x9e3779b97f4a7c15) ^ 0xd1b54a32d192ed03
		}
		k := NewKernel(s)
		k.shard = sk
		k.shardIdx = int32(i)
		sk.kernels[i] = k
	}
	return sk
}

// stamp returns the next schedule stamp for a schedule call on lane k:
// the global counter normally, a provisional per-lane stamp while a
// parallel window is executing (the barrier assigns finals).
func (sk *ShardedKernel) stamp(k *Kernel) uint64 {
	if k.wlog != nil {
		k.wlog.nprov++
		return provBit | uint64(k.shardIdx)<<48 | k.wlog.nprov
	}
	s := sk.seq
	sk.seq++
	return s
}

// NumShards returns the number of lanes.
func (sk *ShardedKernel) NumShards() int { return len(sk.kernels) }

// Shard returns lane i's kernel. Events scheduled on it are stamped
// into the group's global order.
func (sk *ShardedKernel) Shard(i int) *Kernel { return sk.kernels[i] }

// Hub returns lane 0, the kernel carrying chip-global machinery and the
// run's primary random stream.
func (sk *ShardedKernel) Hub() *Kernel { return sk.kernels[0] }

// Lookahead returns the conservative horizon in cycles.
func (sk *ShardedKernel) Lookahead() Time { return sk.lookahead }

// Now returns the global simulation time: the timestamp of the last
// dispatched event (every lane's clock is kept at this value between
// dispatches, so lane Now() reads agree).
func (sk *ShardedKernel) Now() Time { return sk.now }

// Pending returns the number of events waiting across all lanes.
func (sk *ShardedKernel) Pending() int {
	n := 0
	for _, k := range sk.kernels {
		n += k.pendingLocal()
	}
	return n
}

// EventsRun returns the total events executed across all lanes.
func (sk *ShardedKernel) EventsRun() uint64 {
	var n uint64
	for _, k := range sk.kernels {
		n += k.events
	}
	return n
}

// ActiveShard returns the lane whose event is currently dispatching
// under the sequential merge, or -1 between dispatches. Shard-affinity
// asserts (e.g. a tile driver checking it woke on its own lane) read
// it.
func (sk *ShardedKernel) ActiveShard() int { return int(sk.active) }

// SetProfile attaches (or detaches) one dispatch profiler to every
// lane. Counts aggregate across lanes into the single Profile; under
// the sequential merge the totals and the queue-depth histogram are
// bit-identical to a serial run's (Kernel.Step observes the chip-wide
// depth when sharded). Do not profile RunParallel — concurrent lanes
// would race on the shared counters.
func (sk *ShardedKernel) SetProfile(p *Profile) {
	for _, k := range sk.kernels {
		k.prof = p
	}
}

// peekMin returns the lane holding the globally earliest (time, seq)
// event and its key.
func (sk *ShardedKernel) peekMin() (int, evKey, bool) {
	best := -1
	var bestKey evKey
	for i, k := range sk.kernels {
		key, ok := k.peekKey()
		if !ok {
			continue
		}
		if best < 0 || key.before(bestKey) {
			best, bestKey = i, key
		}
	}
	return best, bestKey, best >= 0
}

// stepLane advances every other lane's clock to the chosen event's
// timestamp, then dispatches it. Advancing first means any Now() read
// or schedule call the handler makes against another lane sees the
// dispatch time, exactly as in a serial run.
func (sk *ShardedKernel) stepLane(lane int, at Time) {
	for i, k := range sk.kernels {
		if i != lane {
			k.advanceTo(at)
		}
	}
	sk.active = int32(lane)
	sk.kernels[lane].Step()
	sk.active = -1
	sk.now = at
}

// Step executes the globally earliest pending event under the
// sequential merge, advancing all lanes' clocks to its timestamp. It
// reports whether an event was executed.
func (sk *ShardedKernel) Step() bool {
	lane, key, ok := sk.peekMin()
	if !ok {
		return false
	}
	sk.stepLane(lane, key.at)
	return true
}

// Run executes events under the sequential merge until the queues drain
// or the clock passes limit (limit 0 means no limit). It returns the
// number of events executed.
func (sk *ShardedKernel) Run(limit Time) uint64 {
	start := sk.EventsRun()
	for {
		lane, key, ok := sk.peekMin()
		if !ok {
			break
		}
		if limit != 0 && key.at > limit {
			for _, k := range sk.kernels {
				k.advanceTo(limit)
			}
			sk.now = limit
			break
		}
		sk.stepLane(lane, key.at)
	}
	return sk.EventsRun() - start
}

// RunUntil executes events under the sequential merge while cond
// returns false and events remain. It returns the number executed.
func (sk *ShardedKernel) RunUntil(cond func() bool) uint64 {
	start := sk.EventsRun()
	for sk.Pending() > 0 && !cond() {
		sk.Step()
	}
	return sk.EventsRun() - start
}

// State captures the group's merged kernel state for a snapshot. All
// lanes must be quiescent. The merged view is what a serial run of the
// same events would have recorded: the global clock, the global stamp
// counter, the shared tag, the summed dispatch count, and the hub's
// random stream (non-hub streams are never drawn). A snapshot captured
// from a sharded run therefore restores into a serial kernel and vice
// versa.
func (sk *ShardedKernel) State() (KernelState, error) {
	if n := sk.Pending(); n > 0 {
		return KernelState{}, fmt.Errorf("sim: sharded kernel not quiescent: %d events pending", n)
	}
	return KernelState{
		Now:    sk.now,
		Seq:    sk.seq,
		Tag:    sk.tag,
		Events: sk.EventsRun(),
		Rand:   sk.Hub().rng.State(),
	}, nil
}

// RestoreState overwrites the group's clocks, counters and the hub
// random stream with a captured state. All lanes must be empty. The
// dispatch total lands on the hub so EventsRun sums correctly.
func (sk *ShardedKernel) RestoreState(st KernelState) error {
	if n := sk.Pending(); n > 0 {
		return fmt.Errorf("sim: cannot restore into a sharded kernel with %d pending events", n)
	}
	for _, k := range sk.kernels {
		k.now = st.Now
		k.events = 0
	}
	hub := sk.Hub()
	hub.events = st.Events
	hub.rng.SetState(st.Rand)
	sk.now = st.Now
	sk.seq = st.Seq
	sk.tag = st.Tag
	return nil
}

// Send schedules fn(arg) delay cycles from now on lane to, from a
// handler running on lane k. Same-lane sends are plain AfterArg calls.
// Cross-lane sends must respect the conservative horizon (delay >=
// lookahead) — under the sequential merge that is merely asserted, but
// the parallel executor depends on it: the message is captured in the
// sending lane's outbox and exchanged at the window barrier, and the
// horizon guarantees it lands strictly after the window that sent it.
func (k *Kernel) Send(to int, delay Time, fn func(any), arg any) {
	sk := k.shard
	if sk == nil || int32(to) == k.shardIdx {
		k.AfterArg(delay, fn, arg)
		return
	}
	if delay < sk.lookahead {
		panic(fmt.Sprintf("sim: cross-shard send %d->%d with delay %d below lookahead %d",
			k.shardIdx, to, delay, sk.lookahead))
	}
	at := k.now + delay
	val := evPayload{tag: k.curTag(), argFn: fn, arg: arg}
	if k.wlog != nil {
		val.seq = sk.stamp(k)
		k.wlog.out = append(k.wlog.out, outMsg{at: at, to: int32(to), val: val})
		k.wlog.sched = append(k.wlog.sched,
			schedEnt{prov: val.seq, kind: schedChannel, idx: int32(len(k.wlog.out) - 1)})
		return
	}
	// Sequential merge: the target lane's clock equals this lane's, so a
	// direct stamped schedule is exact.
	sk.kernels[to].schedule(at, val)
}

// RunParallel executes events with lanes running concurrently in
// conservative lookahead windows, until the queues drain or the clock
// passes limit (limit 0 means no limit). After every barrier the
// group's pending events carry exactly the sequence stamps the
// sequential merge would have assigned, so the two executors are
// interchangeable at window boundaries.
//
// It requires shard-affine events: a handler running on lane i may
// touch only lane-i state and communicate with other lanes via Send.
// The full coherence system does not yet satisfy that (engine handlers
// take synchronous cross-tile shortcuts), so core runs use the
// sequential merge; RunParallel is exercised by kernel-level workloads
// and the race detector. Profiling must be detached.
func (sk *ShardedKernel) RunParallel(limit Time) uint64 {
	start := sk.EventsRun()
	var wg sync.WaitGroup
	lp := sk.laneProf
	var evBase []uint64
	var laneDone []time.Time
	if lp != nil {
		evBase = make([]uint64, len(sk.kernels))
		laneDone = make([]time.Time, len(sk.kernels))
	}
	for {
		// H: the global safe horizon's base — no lane can produce work for
		// another below H+lookahead, so [H, H+lookahead) is safe to run
		// without hearing from anyone.
		h := Time(0)
		any := false
		for _, k := range sk.kernels {
			if t, ok := k.nextTime(); ok && (!any || t < h) {
				h, any = t, true
			}
		}
		if !any {
			break
		}
		if limit != 0 && h > limit {
			for _, k := range sk.kernels {
				k.advanceTo(limit)
			}
			sk.now = limit
			break
		}
		winEnd := h + sk.lookahead - 1
		if limit != 0 && winEnd > limit {
			winEnd = limit
		}
		for i, k := range sk.kernels {
			wl := &sk.wlogs[i]
			wl.sched = wl.sched[:0]
			wl.dispatch = wl.dispatch[:0]
			wl.out = wl.out[:0]
			wl.defers = wl.defers[:0]
			wl.nprov = 0
			k.wlog = wl
			if lp != nil {
				evBase[i] = k.events
			}
			wg.Add(1)
			go func(i int, k *Kernel) {
				defer wg.Done()
				k.runWindow(winEnd)
				if lp != nil {
					// Each lane writes only its own slot: no race.
					laneDone[i] = time.Now()
				}
			}(i, k)
		}
		wg.Wait()
		for _, k := range sk.kernels {
			k.wlog = nil
		}
		sk.barrier(winEnd)
		if lp != nil {
			barrierDone := time.Now()
			lp.TotalWindows++
			if lp.TotalWindows <= lp.Cap {
				for i, k := range sk.kernels {
					lp.Windows = append(lp.Windows, LaneWindow{
						Lane:   i,
						Start:  h,
						End:    winEnd,
						Events: k.events - evBase[i],
						Out:    len(sk.wlogs[i].out),
						WaitNS: barrierDone.Sub(laneDone[i]).Nanoseconds(),
					})
				}
			}
		}
		sk.now = winEnd
	}
	return sk.EventsRun() - start
}

// barrier reconciles a finished parallel window: it replays the lanes'
// dispatch logs in merged (time, seq) order, assigns every schedule
// call the exact global stamp the sequential merge would have issued,
// patches still-pending events in place, and exchanges the cross-shard
// outboxes.
func (sk *ShardedKernel) barrier(winEnd Time) {
	n := len(sk.kernels)
	heads := make([]int, n)
	sk.deferRes = sk.deferRes[:0]
	// provToFinal resolves a provisional stamp once its schedule call has
	// been replayed. A dispatch whose stamp is still unresolvable cannot
	// be the global minimum: its scheduling parent precedes it in merged
	// order and has not been consumed yet.
	provToFinal := make(map[uint64]uint64)
	for {
		best := -1
		var bestKey evKey
		for i := range sk.kernels {
			wl := &sk.wlogs[i]
			if heads[i] >= len(wl.dispatch) {
				continue
			}
			d := wl.dispatch[heads[i]]
			seq := d.seq
			if seq >= provBit {
				f, ok := provToFinal[seq]
				if !ok {
					continue
				}
				seq = f
			}
			key := evKey{at: d.at, seq: seq}
			if best < 0 || key.before(bestKey) {
				best, bestKey = i, key
			}
		}
		if best < 0 {
			break
		}
		wl := &sk.wlogs[best]
		d := wl.dispatch[heads[best]]
		end := int32(len(wl.sched))
		if heads[best]+1 < len(wl.dispatch) {
			end = wl.dispatch[heads[best]+1].schedStart
		}
		for j := d.schedStart; j < end; j++ {
			se := wl.sched[j]
			if se.kind == schedDefer {
				// A deferred operation reserves its stamps here, at its exact
				// position in merged schedule order, and executes after the
				// relabel pass below (it may splice against final stamps and
				// needs every lane's clock at the window end).
				de := &wl.defers[se.idx]
				sk.deferRes = append(sk.deferRes,
					deferRes{lane: int32(best), idx: se.idx, seqBase: sk.seq})
				sk.seq += uint64(de.nseq)
				continue
			}
			f := sk.seq
			sk.seq++
			provToFinal[se.prov] = f
			if se.kind == schedChannel {
				wl.out[se.idx].val.seq = f
			}
		}
		heads[best]++
	}
	for i := range sk.kernels {
		if heads[i] < len(sk.wlogs[i].dispatch) {
			panic("sim: parallel barrier could not resolve dispatch order (non-shard-affine events?)")
		}
	}
	// Relabel pending provisional stamps by scanning the lane's arena
	// and overflow heap (a mid-window clock advance may have migrated a
	// provisional entry into the wheel, so both structures are scanned;
	// freed arena nodes carry a zeroed payload and are skipped). The
	// relabeling is order-preserving — per-lane provisional order equals
	// final-assignment order, and every new final exceeds every
	// pre-window stamp — so slot FIFO lists stay sorted by stamp and the
	// heap invariant survives a pure relabel.
	for i, k := range sk.kernels {
		if sk.wlogs[i].nprov == 0 {
			k.advanceTo(winEnd)
			continue
		}
		for j := range k.nodes {
			if s := k.nodes[j].val.seq; s >= provBit {
				f, ok := provToFinal[s]
				if !ok {
					panic("sim: unresolved provisional stamp in wheel")
				}
				k.nodes[j].val.seq = f
			}
		}
		for j := range k.ofVals {
			if s := k.ofVals[j].seq; s >= provBit {
				f, ok := provToFinal[s]
				if !ok {
					panic("sim: unresolved provisional stamp in overflow heap")
				}
				k.ofVals[j].seq = f
				k.ofKeys[j].seq = f
			}
		}
		k.advanceTo(winEnd)
	}
	// Execute deferred operations in merged serial order. They run after
	// the relabel pass — every lane's clock sits at the window end and
	// all pending stamps are final, so a resolver's InjectResolved
	// splices correctly — and on this single goroutine, so mutating
	// shared state (link reservations, the memory random stream) is
	// race-free and ordered exactly as the sequential merge would have
	// ordered it. Order against the outbox exchange below is immaterial:
	// both splice explicit final stamps.
	for i := range sk.deferRes {
		r := &sk.deferRes[i]
		de := &sk.wlogs[r.lane].defers[r.idx]
		de.fn(de.arg, r.seqBase)
		de.fn, de.arg = nil, nil // do not retain across windows
	}
	// Exchange outboxes. Conservative lookahead puts every arrival
	// strictly past winEnd, and insertArrival splices by stamp, so
	// arrival order across lanes is immaterial.
	for i := range sk.kernels {
		for _, m := range sk.wlogs[i].out {
			if m.val.seq >= provBit {
				panic("sim: unresolved provisional stamp in outbox")
			}
			sk.kernels[m.to].insertArrival(m.at, m.val)
		}
	}
}
