// Package sim provides the discrete-event simulation kernel used by the
// CMP simulator: a virtual clock, a deterministic event queue, and a
// reproducible pseudo-random source.
//
// Events scheduled for the same cycle execute in scheduling order, which
// makes whole-system runs bit-for-bit reproducible for a given seed.
//
// The event queue is a monomorphic 4-ary min-heap of value entries
// ordered by (time, sequence). Entries live inline in the heap slice,
// so the slice's spare capacity acts as the free list: once the queue
// has reached its steady-state depth, scheduling and dispatch perform
// no heap allocation at all. The 4-ary layout halves the tree depth of
// a binary heap and keeps each node's children in one cache line,
// which matters because the scheduler is the simulator's hottest loop.
package sim

import "fmt"

// Time is the simulation clock, in processor cycles.
type Time uint64

// Event is a unit of scheduled work.
type Event func()

// entry is one pending event. Exactly one of run or argFn is set:
// run for the closure form (At/After), argFn+arg for the
// non-capturing fast path (AtArg/AfterArg). tag is the causal context
// (see Kernel.Tag) captured at scheduling time.
type entry struct {
	at    Time
	seq   uint64
	tag   uint64
	run   Event
	argFn func(any)
	arg   any
}

// before reports whether e fires before o: earlier time first,
// scheduling order (seq) breaking ties so same-cycle events are FIFO.
func (e *entry) before(o *entry) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// heapArity is the branching factor of the event queue. Quaternary
// rather than binary: sift-down does ~half the levels, and the four
// children of node i (4i+1..4i+4) sit adjacent in memory.
const heapArity = 4

// Kernel is a discrete-event scheduler. The zero value is not usable;
// create one with NewKernel.
type Kernel struct {
	now    Time
	seq    uint64
	tag    uint64  // current causal tag (see Tag)
	queue  []entry // 4-ary min-heap by (at, seq)
	rng    *Rand
	events uint64   // total events executed
	prof   *Profile // optional dispatch profiler (nil = off)
}

// NewKernel returns a kernel whose random source is seeded with seed.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{rng: NewRand(seed)}
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *Rand { return k.rng }

// EventsRun returns the number of events executed so far.
func (k *Kernel) EventsRun() uint64 { return k.events }

// Tag returns the current causal tag: an opaque value that every
// scheduled event inherits at scheduling time and that is restored
// when the event dispatches. Because all cross-component interaction
// in the simulator flows through scheduled events (mesh deliveries,
// stall wakeups, retries), a tag set at the root of a transaction
// follows its entire causal tree with no per-site plumbing. The
// telemetry layer uses it to carry coherence-span IDs through the
// mesh; tag 0 means "untagged". Tagging is always on and costs one
// 8-byte copy per schedule and dispatch — it never changes event
// order, so runs are bit-identical whether or not anyone reads tags.
func (k *Kernel) Tag() uint64 { return k.tag }

// SetTag sets the current causal tag. Events scheduled from now on
// (until the next dispatch overwrites it) carry this tag.
func (k *Kernel) SetTag(t uint64) { k.tag = t }

// Pending returns the number of events waiting in the queue.
func (k *Kernel) Pending() int { return len(k.queue) }

// push appends e and sifts it up to its heap position. The sift moves
// a hole instead of swapping, so each level copies one entry, not
// three.
func (k *Kernel) push(e entry) {
	if k.prof != nil {
		k.prof.Scheduled++
	}
	h := append(k.queue, entry{})
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !e.before(&h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	k.queue = h
}

// pop removes and returns the minimum entry, sifting the former tail
// entry down into place. The vacated tail slot is zeroed so the heap's
// spare capacity does not retain closures or boxed arguments.
func (k *Kernel) pop() entry {
	h := k.queue
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = entry{}
	h = h[:n]
	k.queue = h
	if n == 0 {
		return top
	}
	i := 0
	for {
		c := i*heapArity + 1
		if c >= n {
			break
		}
		end := c + heapArity
		if end > n {
			end = n
		}
		min := c
		for j := c + 1; j < end; j++ {
			if h[j].before(&h[min]) {
				min = j
			}
		}
		if !h[min].before(&last) {
			break
		}
		h[i] = h[min]
		i = min
	}
	h[i] = last
	return top
}

// checkTime panics on scheduling in the past: it would silently
// corrupt causality.
func (k *Kernel) checkTime(t Time) {
	if t < k.now {
		panic(fmt.Sprintf("sim: event scheduled at %d, before now=%d", t, k.now))
	}
}

// At schedules ev to run at absolute time t. Scheduling in the past
// (t < Now) panics.
func (k *Kernel) At(t Time, ev Event) {
	k.checkTime(t)
	k.seq++
	k.push(entry{at: t, seq: k.seq, tag: k.tag, run: ev})
}

// After schedules ev to run delay cycles from now.
func (k *Kernel) After(delay Time, ev Event) {
	k.At(k.now+delay, ev)
}

// AtArg schedules fn(arg) to run at absolute time t. It is the
// allocation-free alternative to At for hot senders: fn can be a
// long-lived non-capturing function, so no closure is created per
// event, and small integer args (e.g. tile ids) box without
// allocating. Ordering relative to At events follows scheduling order,
// exactly as if the call were At(t, func() { fn(arg) }).
func (k *Kernel) AtArg(t Time, fn func(any), arg any) {
	k.checkTime(t)
	k.seq++
	k.push(entry{at: t, seq: k.seq, tag: k.tag, argFn: fn, arg: arg})
}

// AfterArg schedules fn(arg) to run delay cycles from now.
func (k *Kernel) AfterArg(delay Time, fn func(any), arg any) {
	k.AtArg(k.now+delay, fn, arg)
}

// Step executes the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (k *Kernel) Step() bool {
	if len(k.queue) == 0 {
		return false
	}
	if k.prof != nil {
		k.prof.QueueDepth.Observe(uint64(len(k.queue)))
	}
	e := k.pop()
	k.now = e.at
	k.tag = e.tag
	k.events++
	if e.run != nil {
		if k.prof != nil {
			k.prof.DispatchedClosure++
		}
		e.run()
	} else {
		if k.prof != nil {
			k.prof.DispatchedArg++
		}
		e.argFn(e.arg)
	}
	return true
}

// Run executes events until the queue drains or the clock passes limit
// (limit 0 means no limit). It returns the number of events executed.
func (k *Kernel) Run(limit Time) uint64 {
	start := k.events
	for len(k.queue) > 0 {
		if limit != 0 && k.queue[0].at > limit {
			k.now = limit
			break
		}
		k.Step()
	}
	return k.events - start
}

// RunUntil executes events while cond returns true and events remain.
// It returns the number of events executed.
func (k *Kernel) RunUntil(cond func() bool) uint64 {
	start := k.events
	for len(k.queue) > 0 && !cond() {
		k.Step()
	}
	return k.events - start
}
