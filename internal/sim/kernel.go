// Package sim provides the discrete-event simulation kernel used by the
// CMP simulator: a virtual clock, a deterministic event queue, and a
// reproducible pseudo-random source.
//
// Events scheduled for the same cycle execute in scheduling order, which
// makes whole-system runs bit-for-bit reproducible for a given seed.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is the simulation clock, in processor cycles.
type Time uint64

// Event is a unit of scheduled work.
type Event func()

type entry struct {
	at  Time
	seq uint64
	run Event
	idx int
}

type eventHeap []*entry

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*entry)
	e.idx = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event scheduler. The zero value is not usable;
// create one with NewKernel.
type Kernel struct {
	now    Time
	seq    uint64
	queue  eventHeap
	rng    *Rand
	events uint64 // total events executed
}

// NewKernel returns a kernel whose random source is seeded with seed.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{rng: NewRand(seed)}
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *Rand { return k.rng }

// EventsRun returns the number of events executed so far.
func (k *Kernel) EventsRun() uint64 { return k.events }

// Pending returns the number of events waiting in the queue.
func (k *Kernel) Pending() int { return len(k.queue) }

// At schedules ev to run at absolute time t. Scheduling in the past
// (t < Now) panics: it would silently corrupt causality.
func (k *Kernel) At(t Time, ev Event) {
	if t < k.now {
		panic(fmt.Sprintf("sim: event scheduled at %d, before now=%d", t, k.now))
	}
	k.seq++
	heap.Push(&k.queue, &entry{at: t, seq: k.seq, run: ev})
}

// After schedules ev to run delay cycles from now.
func (k *Kernel) After(delay Time, ev Event) {
	k.At(k.now+delay, ev)
}

// Step executes the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (k *Kernel) Step() bool {
	if len(k.queue) == 0 {
		return false
	}
	e := heap.Pop(&k.queue).(*entry)
	k.now = e.at
	k.events++
	e.run()
	return true
}

// Run executes events until the queue drains or the clock passes limit
// (limit 0 means no limit). It returns the number of events executed.
func (k *Kernel) Run(limit Time) uint64 {
	start := k.events
	for len(k.queue) > 0 {
		if limit != 0 && k.queue[0].at > limit {
			k.now = limit
			break
		}
		k.Step()
	}
	return k.events - start
}

// RunUntil executes events while cond returns true and events remain.
// It returns the number of events executed.
func (k *Kernel) RunUntil(cond func() bool) uint64 {
	start := k.events
	for len(k.queue) > 0 && !cond() {
		k.Step()
	}
	return k.events - start
}
