// Package sim provides the discrete-event simulation kernel used by the
// CMP simulator: a virtual clock, a deterministic event queue, and a
// reproducible pseudo-random source.
//
// Events scheduled for the same cycle execute in scheduling order, which
// makes whole-system runs bit-for-bit reproducible for a given seed.
//
// The event queue is a timing wheel backed by a small overflow heap.
// Nearly every delay in the simulator is short and bounded — mesh hops,
// cache pipelines, DRAM round-trips (~316 cycles), retry backoffs — so
// events land in a fixed ring of wheelSize one-cycle slots, each an
// intrusive FIFO list over a pooled node arena. Scheduling is O(1):
// index the slot, append to its list, set an occupancy bit. Dispatch
// scans the occupancy bitmap from the current cycle (64 slots per
// word). FIFO order within a slot preserves the (time, sequence) total
// order because a slot holds at most one distinct timestamp at a time.
// The rare long-delay events (telemetry sampling, the watchdog) go to a
// 4-ary min-heap and migrate into the wheel as the clock approaches
// them — migrated events always precede, in scheduling order, any event
// later pushed directly for the same cycle, so ordering is preserved
// exactly. The node arena free list makes steady-state scheduling and
// dispatch allocation-free.
package sim

import (
	"fmt"
	"math/bits"
)

// Time is the simulation clock, in processor cycles.
type Time uint64

// Event is a unit of scheduled work.
type Event func()

// wheelSize is the horizon of the timing wheel in cycles (power of
// two). Events scheduled less than wheelSize cycles ahead go to the
// wheel; anything further goes to the overflow heap. 1024 covers every
// hot-path delay in the simulator (DRAM is ~316 cycles) with room to
// spare.
const (
	wheelSize = 1024
	wheelMask = wheelSize - 1
	occWords  = wheelSize / 64
)

// evKey is the ordering half of an overflow-heap entry: earlier time
// first, scheduling order (seq) breaking ties so same-cycle events are
// FIFO.
type evKey struct {
	at  Time
	seq uint64
}

// evPayload is the dispatch half of a pending event. argFn nil means
// the closure form (At/After) and arg holds the Event; otherwise
// argFn+arg is the non-capturing fast path (AtArg/AfterArg). tag is
// the causal context (see Kernel.Tag) captured at scheduling time.
// seq is the global scheduling-order stamp a sharded run assigns (zero
// and unused when the kernel runs standalone): the ShardedKernel merge
// dispatches same-cycle events across shards by ascending seq, which
// reproduces the standalone kernel's FIFO-within-slot total order.
type evPayload struct {
	tag   uint64
	seq   uint64
	argFn func(any)
	arg   any
}

// before reports whether k fires before o.
func (k evKey) before(o evKey) bool {
	if k.at != o.at {
		return k.at < o.at
	}
	return k.seq < o.seq
}

// evNode is one pending event in the wheel's node arena, linked into a
// per-slot FIFO list (or the free list) by arena index.
type evNode struct {
	next int32 // arena index of next node in slot/free list, -1 = none
	val  evPayload
}

// wheelSlot is one cycle's FIFO list. A slot holds events for at most
// one distinct timestamp at a time (all pending wheel events lie within
// [now, now+wheelSize), so two timestamps in the same slot would be a
// full wheel-turn apart). at records which one.
type wheelSlot struct {
	at   Time
	head int32
	tail int32
}

// heapArity is the branching factor of the overflow heap. Quaternary
// rather than binary: sift-down does ~half the levels, and the four
// children of node i (4i+1..4i+4) sit adjacent in memory.
const heapArity = 4

// Kernel is a discrete-event scheduler. The zero value is not usable;
// create one with NewKernel.
type Kernel struct {
	now Time
	seq uint64
	tag uint64 // current causal tag (see Tag)

	// shard is non-nil when this kernel is one lane of a ShardedKernel:
	// the causal tag then lives in the shared cell (one logical tag per
	// chip, whichever lane an event runs on) and every schedule is
	// stamped with a global sequence number. shardIdx is this kernel's
	// lane. wlog is non-nil only while a parallel window is executing on
	// this lane: schedule and dispatch append to it so the barrier can
	// reconstruct the exact sequential order (see shard.go).
	shard    *ShardedKernel
	shardIdx int32
	wlog     *windowLog

	slots   []wheelSlot      // wheelSize one-cycle FIFO slots
	occ     [occWords]uint64 // occupancy bitmap over slots
	nodes   []evNode         // arena backing the slot lists
	free    int32            // head of the node free list, -1 = none
	inWheel int              // events currently in the wheel

	ofKeys []evKey     // overflow: 4-ary min-heap by (at, seq)
	ofVals []evPayload // overflow payloads, parallel to ofKeys

	rng    *Rand
	events uint64   // total events executed
	prof   *Profile // optional dispatch profiler (nil = off)
}

// NewKernel returns a kernel whose random source is seeded with seed.
func NewKernel(seed uint64) *Kernel {
	k := &Kernel{rng: NewRand(seed), free: -1}
	k.slots = make([]wheelSlot, wheelSize)
	for i := range k.slots {
		k.slots[i].head, k.slots[i].tail = -1, -1
	}
	return k
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *Rand { return k.rng }

// EventsRun returns the number of events executed so far. On a lane
// of a sharded group (outside parallel windows) it reports the
// group-wide total: observers hanging off a lane — the sampler, the
// watchdog — mean "the simulation", not one lane, and the group-wide
// count is what matches a serial run bit for bit.
func (k *Kernel) EventsRun() uint64 {
	if k.shard != nil && k.wlog == nil {
		return k.shard.EventsRun()
	}
	return k.events
}

// Tag returns the current causal tag: an opaque value that every
// scheduled event inherits at scheduling time and that is restored
// when the event dispatches. Because all cross-component interaction
// in the simulator flows through scheduled events (mesh deliveries,
// stall wakeups, retries), a tag set at the root of a transaction
// follows its entire causal tree with no per-site plumbing. The
// telemetry layer uses it to carry coherence-span IDs through the
// mesh; tag 0 means "untagged". Tagging is always on and costs one
// 8-byte copy per schedule and dispatch — it never changes event
// order, so runs are bit-identical whether or not anyone reads tags.
func (k *Kernel) Tag() uint64 { return k.curTag() }

// SetTag sets the current causal tag. Events scheduled from now on
// (until the next dispatch overwrites it) carry this tag.
func (k *Kernel) SetTag(t uint64) {
	if k.shard != nil && k.wlog == nil {
		k.shard.tag = t
		return
	}
	k.tag = t
}

// Pending returns the number of events waiting in the queue — the
// whole group's queues on a sharded lane (outside parallel windows),
// for the same reason as EventsRun.
func (k *Kernel) Pending() int {
	if k.shard != nil && k.wlog == nil {
		return k.shard.Pending()
	}
	return k.pendingLocal()
}

// pendingLocal counts only this lane's queued events.
func (k *Kernel) pendingLocal() int { return k.inWheel + len(k.ofKeys) }

// newNode pops a node from the free list or grows the arena.
func (k *Kernel) newNode() int32 {
	if n := k.free; n >= 0 {
		k.free = k.nodes[n].next
		return n
	}
	k.nodes = append(k.nodes, evNode{})
	return int32(len(k.nodes) - 1)
}

// wheelAppend links a payload at the tail of the slot for time at,
// which must lie within [now, now+wheelSize).
func (k *Kernel) wheelAppend(at Time, val evPayload) {
	n := k.newNode()
	nd := &k.nodes[n]
	nd.next = -1
	nd.val = val
	s := &k.slots[int(at)&wheelMask]
	if s.head < 0 {
		s.at = at
		s.head, s.tail = n, n
		k.occ[(int(at)&wheelMask)>>6] |= 1 << (uint(at) & 63)
	} else {
		if s.at != at {
			k.slotAliasPanic(s.at, at)
		}
		k.nodes[s.tail].next = n
		s.tail = n
	}
	k.inWheel++
}

// slotAliasPanic reports two distinct timestamps landing in one wheel
// slot: the [now, now+wheelSize) invariant broke somewhere, and FIFO
// dispatch would silently misorder them. Kept out of wheelAppend so the
// Sprintf machinery does not bloat the hot path's frame.
//
//go:noinline
func (k *Kernel) slotAliasPanic(have, appending Time) {
	panic(fmt.Sprintf("sim: wheel slot aliasing: slot holds t=%d, appending t=%d (now=%d)", have, appending, k.now))
}

// schedule routes an event to the wheel or the overflow heap.
func (k *Kernel) schedule(at Time, val evPayload) {
	if k.prof != nil {
		k.prof.Scheduled++
	}
	if k.shard != nil {
		k.scheduleSharded(at, val)
		return
	}
	if at < k.now+wheelSize {
		k.wheelAppend(at, val)
		return
	}
	k.seq++
	k.ofPush(evKey{at: at, seq: k.seq}, val)
}

// scheduleSharded is schedule for a kernel lane of a ShardedKernel:
// the payload is stamped with the global scheduling sequence (the
// overflow heap key reuses the stamp, so heap order equals global
// order), and during a parallel window the stamp is provisional and
// the call is recorded in the window log for barrier renumbering.
func (k *Kernel) scheduleSharded(at Time, val evPayload) {
	val.seq = k.shard.stamp(k)
	if k.wlog != nil {
		k.wlog.sched = append(k.wlog.sched, schedEnt{prov: val.seq, kind: schedLocal})
	}
	if at < k.now+wheelSize {
		k.wheelAppend(at, val)
		return
	}
	k.ofPush(evKey{at: at, seq: val.seq}, val)
}

// curTag returns the tag scheduled events capture: the shard group's
// shared cell in a sequential sharded run (one logical tag per chip,
// whichever lane an event runs on), the kernel's own cell otherwise —
// including during parallel windows, when lanes run concurrently and
// the shared cell would be a data race. Causal chains stay lane-local
// in parallel mode by construction, so the per-lane cell is exact.
func (k *Kernel) curTag() uint64 {
	if k.shard != nil && k.wlog == nil {
		return k.shard.tag
	}
	return k.tag
}

// migrate drains overflow events that have come within the wheel
// horizon [_, limit+wheelSize) into their slots. Popped in (at, seq)
// order, they append in FIFO scheduling order; any event pushed
// directly to the same slot afterwards was necessarily scheduled later,
// so the global dispatch order is unchanged.
func (k *Kernel) migrate(limit Time) {
	for len(k.ofKeys) > 0 && k.ofKeys[0].at < limit+wheelSize {
		key, val := k.ofPop()
		k.wheelAppend(key.at, val)
	}
}

// nextSlot returns the slot index holding the earliest pending wheel
// event: the occupancy bitmap is scanned circularly starting at the
// current cycle's slot. All wheel events lie in [now, now+wheelSize),
// so circular distance from now's slot equals firing order.
func (k *Kernel) nextSlot() int {
	start := int(k.now) & wheelMask
	w, bit := start>>6, uint(start)&63
	if word := k.occ[w] >> bit; word != 0 {
		return start + bits.TrailingZeros64(word)
	}
	for i := 1; i <= occWords; i++ {
		idx := (w + i) & (occWords - 1)
		if word := k.occ[idx]; word != 0 {
			return idx<<6 + bits.TrailingZeros64(word)
		}
	}
	panic("sim: nextSlot on empty wheel")
}

// ofPush appends an entry to the overflow heap and sifts it up. The
// sift moves a hole instead of swapping, so each level copies one
// entry, not three; only the keys are read for comparisons.
func (k *Kernel) ofPush(key evKey, val evPayload) {
	hk := append(k.ofKeys, evKey{})
	hv := append(k.ofVals, evPayload{})
	i := len(hk) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !key.before(hk[p]) {
			break
		}
		hk[i], hv[i] = hk[p], hv[p]
		i = p
	}
	hk[i], hv[i] = key, val
	k.ofKeys, k.ofVals = hk, hv
}

// ofPop removes and returns the minimum overflow entry, sifting the
// former tail entry down into place. The vacated tail slot is zeroed so
// the heap's spare capacity does not retain closures or boxed
// arguments.
func (k *Kernel) ofPop() (evKey, evPayload) {
	hk, hv := k.ofKeys, k.ofVals
	topKey := hk[0]
	topVal := hv[0]
	n := len(hk) - 1
	lastKey, lastVal := hk[n], hv[n]
	hv[n] = evPayload{}
	hk, hv = hk[:n], hv[:n]
	k.ofKeys, k.ofVals = hk, hv
	if n == 0 {
		return topKey, topVal
	}
	i := 0
	for {
		c := i*heapArity + 1
		if c >= n {
			break
		}
		end := c + heapArity
		if end > n {
			end = n
		}
		min := c
		for j := c + 1; j < end; j++ {
			if hk[j].before(hk[min]) {
				min = j
			}
		}
		if !hk[min].before(lastKey) {
			break
		}
		hk[i], hv[i] = hk[min], hv[min]
		i = min
	}
	hk[i], hv[i] = lastKey, lastVal
	return topKey, topVal
}

// checkTime panics on scheduling in the past: it would silently
// corrupt causality.
func (k *Kernel) checkTime(t Time) {
	if t < k.now {
		panic(fmt.Sprintf("sim: event scheduled at %d, before now=%d", t, k.now))
	}
}

// At schedules ev to run at absolute time t. Scheduling in the past
// (t < Now) panics. The closure rides in the arg slot (a func value
// boxes into an interface without allocating); argFn nil marks the
// form for dispatch.
func (k *Kernel) At(t Time, ev Event) {
	k.checkTime(t)
	k.schedule(t, evPayload{tag: k.curTag(), arg: ev})
}

// After schedules ev to run delay cycles from now.
func (k *Kernel) After(delay Time, ev Event) {
	k.At(k.now+delay, ev)
}

// AtArg schedules fn(arg) to run at absolute time t. It is the
// allocation-free alternative to At for hot senders: fn can be a
// long-lived non-capturing function, so no closure is created per
// event, and small integer args (e.g. tile ids) box without
// allocating. Ordering relative to At events follows scheduling order,
// exactly as if the call were At(t, func() { fn(arg) }).
func (k *Kernel) AtArg(t Time, fn func(any), arg any) {
	k.checkTime(t)
	k.schedule(t, evPayload{tag: k.curTag(), argFn: fn, arg: arg})
}

// AfterArg schedules fn(arg) to run delay cycles from now.
func (k *Kernel) AfterArg(delay Time, fn func(any), arg any) {
	k.AtArg(k.now+delay, fn, arg)
}

// nextTime returns the timestamp of the earliest pending event.
func (k *Kernel) nextTime() (Time, bool) {
	if k.inWheel > 0 {
		return k.slots[k.nextSlot()].at, true
	}
	if len(k.ofKeys) > 0 {
		return k.ofKeys[0].at, true
	}
	return 0, false
}

// peekKey returns the (time, seq) key of the earliest pending event
// without dispatching it; ok is false when the kernel is idle. The
// wheel head is the global minimum whenever the wheel is non-empty:
// every overflow event lies at least a full wheel horizon past some
// earlier clock value, and migration runs on every clock advance, so
// ofKeys[0].at >= now+wheelSize > any wheel timestamp. The ShardedKernel
// merge compares lanes' peekKeys to pick the serial-order next event.
func (k *Kernel) peekKey() (evKey, bool) {
	if k.inWheel > 0 {
		s := &k.slots[k.nextSlot()]
		return evKey{at: s.at, seq: k.nodes[s.head].val.seq}, true
	}
	if len(k.ofKeys) > 0 {
		return k.ofKeys[0], true
	}
	return evKey{}, false
}

// advanceTo jumps the clock forward to t without dispatching anything.
// The ShardedKernel merge advances every lane to each dispatched
// timestamp so Now() reads agree chip-wide no matter which lane a
// handler runs on. Moving the wheel horizon forward pulls newly
// in-range overflow events into their slots, exactly as Run(limit)
// does on a jump — skipping that was the PR 5 out-of-order bug.
func (k *Kernel) advanceTo(t Time) {
	if t <= k.now {
		return
	}
	k.now = t
	if len(k.ofKeys) > 0 && k.ofKeys[0].at < t+wheelSize {
		k.migrate(t)
	}
}

// Deferring reports whether a parallel window is currently executing
// on this lane. Handlers that would touch state owned by another lane
// (mesh link reservations, the memory controller's random stream) test
// it and route the touch through Defer instead, so the mutation happens
// at the barrier in exact merged serial order.
func (k *Kernel) Deferring() bool { return k.wlog != nil }

// Defer logs a barrier-deferred operation from inside a parallel
// window. The operation reserves nseq sequence stamps at its position
// in the lane's schedule order; at the barrier, after dispatch replay
// has assigned final stamps, fn(arg, seqBase) runs on the coordinating
// goroutine with seqBase the first of its nseq final stamps — exactly
// the stamps a serial run would have assigned at this call site. The
// resolver may mutate shared state and inject events with
// InjectResolved; it must schedule nothing through the normal API.
// Panics outside a parallel window: sequential executors run the
// operation inline instead (test Deferring first).
func (k *Kernel) Defer(nseq int, fn func(arg any, seqBase uint64), arg any) {
	wl := k.wlog
	if wl == nil {
		panic("sim: Defer outside a parallel window")
	}
	wl.defers = append(wl.defers, deferEnt{fn: fn, arg: arg, nseq: int32(nseq)})
	wl.sched = append(wl.sched,
		schedEnt{kind: schedDefer, idx: int32(len(wl.defers) - 1)})
}

// InjectResolved splices fn(arg) into this lane's queue at absolute
// time at, carrying an explicit final sequence stamp and causal tag.
// Only barrier-deferred resolvers call it: the stamp was reserved by
// Defer, so the payload lands in exact serial order without consuming a
// new stamp. at must lie strictly past the lane's clock (the
// conservative horizon guarantees this for any cross-tile latency).
func (k *Kernel) InjectResolved(at Time, seq, tag uint64, fn func(any), arg any) {
	if at <= k.now {
		panic(fmt.Sprintf("sim: InjectResolved at %d, not past now=%d", at, k.now))
	}
	k.insertArrival(at, evPayload{tag: tag, seq: seq, argFn: fn, arg: arg})
}

// insertArrival splices an already-stamped payload (a cross-shard
// channel message) into the queue in (at, seq) position rather than at
// the slot tail: the message was scheduled mid-window on another lane,
// so events this lane scheduled later in its window may carry larger
// stamps yet already sit in the slot. Conservative lookahead guarantees
// at > now (arrivals land strictly past the window that sent them).
func (k *Kernel) insertArrival(at Time, val evPayload) {
	if at >= k.now+wheelSize {
		k.ofPush(evKey{at: at, seq: val.seq}, val)
		return
	}
	s := &k.slots[int(at)&wheelMask]
	if s.head < 0 {
		k.wheelAppend(at, val)
		return
	}
	if s.at != at {
		k.slotAliasPanic(s.at, at)
	}
	n := k.newNode()
	nd := &k.nodes[n]
	nd.val = val
	if k.nodes[s.head].val.seq > val.seq {
		nd.next = s.head
		s.head = n
		k.inWheel++
		return
	}
	p := s.head
	for {
		next := k.nodes[p].next
		if next < 0 || k.nodes[next].val.seq > val.seq {
			break
		}
		p = next
	}
	nd.next = k.nodes[p].next
	k.nodes[p].next = n
	if nd.next < 0 {
		s.tail = n
	}
	k.inWheel++
}

// Step executes the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (k *Kernel) Step() bool {
	if k.inWheel == 0 {
		if len(k.ofKeys) == 0 {
			return false
		}
		// The wheel drained with only far-future events left: jump the
		// clock to the earliest one so the wheel horizon reaches it,
		// then pull everything now in range. The jump is sound — the
		// next dispatch is at that timestamp anyway.
		k.now = k.ofKeys[0].at
		k.migrate(k.now)
	}
	if k.prof != nil {
		depth := k.inWheel + len(k.ofKeys)
		if k.shard != nil {
			// The merge dispatches the same event the serial kernel would,
			// so the chip-wide pending count matches the serial queue depth
			// exactly; a per-lane count would not.
			depth = k.shard.Pending()
		}
		k.prof.QueueDepth.Observe(uint64(depth))
	}
	si := k.nextSlot()
	s := &k.slots[si]
	at := s.at
	n := s.head
	nd := &k.nodes[n]
	s.head = nd.next
	if s.head < 0 {
		s.tail = -1
		k.occ[si>>6] &^= 1 << (uint(si) & 63)
	}
	k.inWheel--
	e := nd.val
	nd.val = evPayload{} // do not retain closures/args in the arena
	nd.next = k.free
	k.free = n
	k.now = at
	if k.shard != nil && k.wlog == nil {
		k.shard.tag = e.tag
	} else {
		k.tag = e.tag
		if k.wlog != nil {
			k.wlog.dispatch = append(k.wlog.dispatch,
				dispatchEnt{at: at, seq: e.seq, schedStart: int32(len(k.wlog.sched))})
		}
	}
	k.events++
	// Advancing the clock moved the wheel horizon forward: pull any
	// overflow events now in range before dispatching, so events the
	// handler schedules (which come later in scheduling order) land
	// behind them in their slots.
	if len(k.ofKeys) > 0 && k.ofKeys[0].at < at+wheelSize {
		k.migrate(at)
	}
	if e.argFn == nil {
		if k.prof != nil {
			k.prof.DispatchedClosure++
		}
		e.arg.(Event)()
	} else {
		if k.prof != nil {
			k.prof.DispatchedArg++
		}
		e.argFn(e.arg)
	}
	return true
}

// Run executes events until the queue drains or the clock passes limit
// (limit 0 means no limit). It returns the number of events executed.
func (k *Kernel) Run(limit Time) uint64 {
	start := k.events
	if limit == 0 {
		for k.Step() {
		}
		return k.events - start
	}
	for {
		t, ok := k.nextTime()
		if !ok {
			break
		}
		if t > limit {
			// Jumping the clock moves the wheel horizon forward, so any
			// overflow events that came within range must migrate into
			// their slots now. Otherwise an event scheduled after Run
			// returns could land in the wheel ahead of an earlier
			// unmigrated overflow event and dispatch out of order.
			k.now = limit
			k.migrate(limit)
			break
		}
		k.Step()
	}
	return k.events - start
}

// runWindow executes all events with timestamps <= limit and leaves the
// clock at limit. It is Run(limit) without the limit-0 drain sentinel
// (a parallel window can legitimately end at cycle 0) and with the
// final clock always aligned to the window end, even when the queue
// drains early — so every lane of a parallel window rejoins the barrier
// at the same time.
func (k *Kernel) runWindow(limit Time) {
	for {
		t, ok := k.nextTime()
		if !ok || t > limit {
			k.advanceTo(limit)
			return
		}
		k.Step()
	}
}

// RunUntil executes events while cond returns true and events remain.
// It returns the number of events executed.
func (k *Kernel) RunUntil(cond func() bool) uint64 {
	start := k.events
	for k.pendingLocal() > 0 && !cond() {
		k.Step()
	}
	return k.events - start
}
