package sim

import "testing"

// TestHistBuckets checks the power-of-two bucketing contract: bucket 0
// holds zero, bucket i holds [2^(i-1), 2^i).
func TestHistBuckets(t *testing.T) {
	var h Hist
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 1023, 1024} {
		h.Observe(v)
	}
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 2, 4: 1, 10: 1, 11: 1}
	for i, n := range want {
		if h.Buckets[i] != n {
			t.Errorf("bucket %d = %d, want %d", i, h.Buckets[i], n)
		}
	}
	if h.Count != 9 || h.Max != 1024 {
		t.Errorf("count/max = %d/%d, want 9/1024", h.Count, h.Max)
	}
	if got := h.Mean(); got != float64(0+1+2+3+4+7+8+1023+1024)/9 {
		t.Errorf("mean = %v", got)
	}
	var m Hist
	m.Merge(&h)
	m.Merge(&h)
	if m.Count != 18 || m.Buckets[3] != 4 || m.Max != 1024 {
		t.Errorf("merge wrong: %+v", m)
	}
}

// TestProfileObservesDispatch checks the profiler counts both dispatch
// forms and samples queue depth without disturbing execution order.
func TestProfileObservesDispatch(t *testing.T) {
	run := func(p *Profile) []int {
		k := NewKernel(7)
		if p != nil {
			k.SetProfile(p)
		}
		var order []int
		k.After(2, func() { order = append(order, 1) })
		k.AfterArg(1, func(a any) { order = append(order, a.(int)) }, 2)
		k.After(1, func() { order = append(order, 3) })
		k.Run(0)
		return order
	}
	var prof Profile
	plain := run(nil)
	profiled := run(&prof)
	if len(plain) != 3 || len(profiled) != 3 {
		t.Fatalf("wrong event counts: %v vs %v", plain, profiled)
	}
	for i := range plain {
		if plain[i] != profiled[i] {
			t.Fatalf("profiling changed dispatch order: %v vs %v", plain, profiled)
		}
	}
	if prof.DispatchedClosure != 2 || prof.DispatchedArg != 1 || prof.Scheduled != 3 {
		t.Errorf("profile counts wrong: %+v", prof)
	}
	if prof.QueueDepth.Count != 3 {
		t.Errorf("queue depth sampled %d times, want 3", prof.QueueDepth.Count)
	}
	if prof.Dispatched() != 3 {
		t.Errorf("Dispatched() = %d, want 3", prof.Dispatched())
	}
}
