package sim

// DefaultLaneWindowCap bounds how many parallel windows a LaneProfile
// retains (earliest kept; TotalWindows keeps counting past the cap).
const DefaultLaneWindowCap = 4096

// LaneWindow is one lane's record of one conservative lookahead
// window executed by RunParallel.
type LaneWindow struct {
	Lane  int
	Start Time // window base H (cycles)
	End   Time // inclusive window end (cycles)
	// Events is how many events the lane dispatched inside the window;
	// zero means the lane sat out the window (a lookahead stall: it had
	// no work below the horizon and only waited at the barrier).
	Events uint64
	// Out is the lane's outbox depth at the barrier: cross-shard
	// messages produced this window and exchanged after it.
	Out int
	// WaitNS is the host wall-clock time from the lane finishing its
	// window to the barrier completing — the lane's idle share of the
	// window (straggler lanes have small waits, fast lanes large ones).
	// Wall-clock data is nondeterministic by nature, so it lives only
	// here and in exports, never in simulation results.
	WaitNS int64
}

// LaneProfile collects RunParallel's per-window, per-lane execution
// profile. Attach one with ShardedKernel.SetLaneProfile before calling
// RunParallel. Pure observation: recording reads lane state only at
// window barriers, so the event stream and every simulation result are
// identical with a profile attached or not.
type LaneProfile struct {
	Lanes        int
	Lookahead    Time
	TotalWindows int
	// Windows holds one row per (window, lane), window-major, for the
	// first Cap windows.
	Windows []LaneWindow
	// Cap bounds retained windows (0 = DefaultLaneWindowCap, set when
	// the profile is attached).
	Cap int
}

// Stalls returns how many retained (window, lane) rows dispatched no
// events — the lookahead-stall count of the retained prefix.
func (lp *LaneProfile) Stalls() int {
	n := 0
	for i := range lp.Windows {
		if lp.Windows[i].Events == 0 {
			n++
		}
	}
	return n
}

// SetLaneProfile attaches (or, with nil, detaches) a per-window lane
// profiler to the group. Unlike SetProfile, a LaneProfile is safe —
// and only meaningful — under RunParallel: all recording happens
// between windows on the coordinating goroutine, plus one wall-clock
// read per lane at window end.
func (sk *ShardedKernel) SetLaneProfile(lp *LaneProfile) {
	sk.laneProf = lp
	if lp != nil {
		lp.Lanes = len(sk.kernels)
		lp.Lookahead = sk.lookahead
		if lp.Cap == 0 {
			lp.Cap = DefaultLaneWindowCap
		}
	}
}
