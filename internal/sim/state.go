package sim

import "fmt"

// This file provides the snapshot surface of the kernel and its random
// source: pure-data state types that internal/snapshot captures at the
// warmup/measure boundary and restores into a freshly built kernel.
// The kernel queue must be quiescent (fully drained) at capture time:
// pending events hold closures, which cannot be serialized, so a
// non-empty queue is a capture error rather than a silent data loss.

// RandState is the serializable state of a Rand stream.
type RandState struct {
	S0, S1 uint64
}

// State returns the generator's current state.
func (r *Rand) State() RandState { return RandState{S0: r.s0, S1: r.s1} }

// SetState overwrites the generator's state.
func (r *Rand) SetState(st RandState) { r.s0, r.s1 = st.S0, st.S1 }

// KernelState is the serializable state of a quiescent kernel: the
// clock, the scheduling sequence and causal tag, the dispatch total and
// the random stream. The timing wheel and overflow heap are empty by
// the quiescence precondition, so they have no state to carry.
type KernelState struct {
	Now    Time
	Seq    uint64
	Tag    uint64
	Events uint64
	Rand   RandState
}

// State captures the kernel's state. It fails if events are pending:
// event payloads are closures and cannot be serialized.
func (k *Kernel) State() (KernelState, error) {
	if n := k.Pending(); n > 0 {
		return KernelState{}, fmt.Errorf("sim: kernel not quiescent: %d events pending", n)
	}
	return KernelState{
		Now:    k.now,
		Seq:    k.seq,
		Tag:    k.tag,
		Events: k.events,
		Rand:   k.rng.State(),
	}, nil
}

// RestoreState overwrites the kernel's clock, counters and random
// stream with a captured state. The kernel must be empty (no pending
// events): restoring over live events would corrupt their ordering.
func (k *Kernel) RestoreState(st KernelState) error {
	if n := k.Pending(); n > 0 {
		return fmt.Errorf("sim: cannot restore into a kernel with %d pending events", n)
	}
	k.now = st.Now
	k.seq = st.Seq
	k.tag = st.Tag
	k.events = st.Events
	k.rng.SetState(st.Rand)
	return nil
}
