package sim

import (
	"reflect"
	"testing"
)

// TestShardedLaneProfileObservation pins the lane profiler's
// observation-only claim: RunParallel with a LaneProfile attached
// dispatches the identical event stream as without one, while the
// profile itself satisfies its structural invariants (window-major
// rows, lanes in range, retained events summing to the run's total
// when under the cap, stalls = zero-event rows).
func TestShardedLaneProfileObservation(t *testing.T) {
	const tiles, steps, shards = 8, 100, 4
	const lookahead = Time(5)

	ref := newWorkloadB(tiles, steps, shards, lookahead, 1)
	ref.sk.RunParallel(0)

	got := newWorkloadB(tiles, steps, shards, lookahead, 1)
	lp := &LaneProfile{}
	got.sk.SetLaneProfile(lp)
	got.sk.RunParallel(0)

	if !reflect.DeepEqual(got.trace, ref.trace) {
		t.Fatal("lane profile perturbed the parallel event stream")
	}
	if got.sk.EventsRun() != ref.sk.EventsRun() {
		t.Fatalf("events %d != %d with profile attached", got.sk.EventsRun(), ref.sk.EventsRun())
	}

	if lp.Lanes != shards || lp.Lookahead != lookahead {
		t.Fatalf("profile header lanes/lookahead = %d/%d, want %d/%d",
			lp.Lanes, lp.Lookahead, shards, lookahead)
	}
	if lp.TotalWindows == 0 || len(lp.Windows) == 0 {
		t.Fatalf("profile empty: %d windows, %d rows", lp.TotalWindows, len(lp.Windows))
	}
	if lp.TotalWindows <= lp.Cap && len(lp.Windows) != lp.TotalWindows*shards {
		t.Errorf("window-major shape: %d rows, want %d windows x %d lanes",
			len(lp.Windows), lp.TotalWindows, shards)
	}
	var dispatched uint64
	stalls := 0
	for i := range lp.Windows {
		lw := &lp.Windows[i]
		if lw.Lane < 0 || lw.Lane >= shards {
			t.Fatalf("row %d: lane %d out of range", i, lw.Lane)
		}
		if lw.End < lw.Start {
			t.Fatalf("row %d: window [%d, %d] inverted", i, lw.Start, lw.End)
		}
		if lw.Out < 0 || lw.WaitNS < 0 {
			t.Fatalf("row %d: negative outbox (%d) or wait (%d)", i, lw.Out, lw.WaitNS)
		}
		dispatched += lw.Events
		if lw.Events == 0 {
			stalls++
		}
	}
	if lp.TotalWindows <= lp.Cap && dispatched != got.sk.EventsRun() {
		t.Errorf("retained windows dispatch %d events, run dispatched %d", dispatched, got.sk.EventsRun())
	}
	if lp.Stalls() != stalls {
		t.Errorf("Stalls() = %d, counted %d zero-event rows", lp.Stalls(), stalls)
	}
}

// TestShardedLaneProfileCap pins the retention bound: TotalWindows
// keeps counting past Cap while Windows retains only the earliest
// Cap windows' rows.
func TestShardedLaneProfileCap(t *testing.T) {
	const tiles, steps, shards = 8, 200, 4
	w := newWorkloadB(tiles, steps, shards, 2, 3)
	lp := &LaneProfile{Cap: 5}
	w.sk.SetLaneProfile(lp)
	w.sk.RunParallel(0)
	if lp.Cap != 5 {
		t.Fatalf("Cap rewritten to %d", lp.Cap)
	}
	if lp.TotalWindows <= lp.Cap {
		t.Skipf("run finished in %d windows, cap %d never hit", lp.TotalWindows, lp.Cap)
	}
	if len(lp.Windows) != lp.Cap*shards {
		t.Errorf("retained %d rows, want cap %d x %d lanes", len(lp.Windows), lp.Cap, shards)
	}
	for i := range lp.Windows {
		if want := lp.Windows[i%shards].Start; i >= shards && lp.Windows[i].Start < lp.Windows[i-shards].Start {
			t.Fatalf("row %d: retained windows not the earliest prefix (start %d < %d, first %d)",
				i, lp.Windows[i].Start, lp.Windows[i-shards].Start, want)
		}
	}
}
