package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelOrdering(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.At(10, func() { got = append(got, 1) })
	k.At(5, func() { got = append(got, 0) })
	k.At(10, func() { got = append(got, 2) }) // same time: FIFO by schedule order
	k.Run(0)
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 10 {
		t.Errorf("Now = %d, want 10", k.Now())
	}
}

func TestKernelSameCycleFIFO(t *testing.T) {
	k := NewKernel(1)
	const n = 100
	var got []int
	for i := 0; i < n; i++ {
		i := i
		k.At(42, func() { got = append(got, i) })
	}
	k.Run(0)
	for i := 0; i < n; i++ {
		if got[i] != i {
			t.Fatalf("same-cycle events out of FIFO order at %d: %v", i, got[i])
		}
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel(1)
	count := 0
	var ev Event
	ev = func() {
		count++
		if count < 10 {
			k.After(3, ev)
		}
	}
	k.After(0, ev)
	k.Run(0)
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
	if k.Now() != 27 {
		t.Errorf("Now = %d, want 27", k.Now())
	}
}

func TestKernelRunLimit(t *testing.T) {
	k := NewKernel(1)
	ran := 0
	for i := Time(1); i <= 100; i++ {
		k.At(i*10, func() { ran++ })
	}
	n := k.Run(500)
	if n != 50 || ran != 50 {
		t.Errorf("ran %d events (cb %d), want 50", n, ran)
	}
	if k.Now() != 500 {
		t.Errorf("Now = %d, want 500", k.Now())
	}
	if k.Pending() != 50 {
		t.Errorf("Pending = %d, want 50", k.Pending())
	}
	k.Run(0)
	if ran != 100 {
		t.Errorf("after full drain ran = %d, want 100", ran)
	}
}

// TestKernelRunLimitThenSchedule covers a regression where Run(limit)
// jumped the clock without migrating overflow events the jump brought
// inside the wheel horizon: an event scheduled after Run returned could
// then land in the wheel ahead of an earlier unmigrated overflow event
// and dispatch out of order (with the clock running backwards).
func TestKernelRunLimitThenSchedule(t *testing.T) {
	k := NewKernel(1)
	var got []Time
	record := func() { got = append(got, k.Now()) }
	k.At(1500, record) // beyond the wheel horizon: goes to overflow
	k.At(10, record)
	k.Run(1000) // jumps the clock to 1000; 1500 is now within the horizon
	if k.Now() != 1000 {
		t.Fatalf("Now = %d, want 1000", k.Now())
	}
	k.At(1800, record) // scheduled after the jump, must fire after 1500
	k.Run(0)
	want := []Time{10, 1500, 1800}
	if len(got) != len(want) {
		t.Fatalf("dispatched %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatched %v, want %v", got, want)
		}
	}
	if k.Now() != 1800 {
		t.Errorf("Now = %d, want 1800", k.Now())
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel(1)
	hits := 0
	for i := Time(1); i <= 20; i++ {
		k.At(i, func() { hits++ })
	}
	k.RunUntil(func() bool { return hits >= 7 })
	if hits != 7 {
		t.Errorf("hits = %d, want 7", hits)
	}
}

func TestKernelAtArgOrdering(t *testing.T) {
	k := NewKernel(1)
	var got []int
	record := func(a any) { got = append(got, a.(int)) }
	// At and AtArg events interleave in scheduling order at the same
	// cycle, and AtArg respects timestamps like At.
	k.AtArg(10, record, 1)
	k.At(10, func() { got = append(got, 2) })
	k.AtArg(10, record, 3)
	k.AtArg(5, record, 0)
	k.AfterArg(20, record, 4)
	k.Run(0)
	want := []int{0, 1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 20 {
		t.Errorf("Now = %d, want 20", k.Now())
	}
}

func TestKernelAtArgPastPanics(t *testing.T) {
	k := NewKernel(1)
	k.At(100, func() {})
	k.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("AtArg in the past did not panic")
		}
	}()
	k.AtArg(50, func(any) {}, nil)
}

func TestKernelDeepQueueOrdering(t *testing.T) {
	// Exercise multi-level sift-up and sift-down of the 4-ary heap
	// with a deterministic pseudo-random schedule, and verify events
	// pop in (time, seq) order.
	k := NewKernel(1)
	r := NewRand(99)
	const n = 5000
	type stamp struct {
		at  Time
		seq int
	}
	var got []stamp
	for i := 0; i < n; i++ {
		i := i
		at := Time(r.Intn(500))
		k.At(at, func() { got = append(got, stamp{at, i}) })
	}
	k.Run(0)
	if len(got) != n {
		t.Fatalf("ran %d events, want %d", len(got), n)
	}
	for i := 1; i < n; i++ {
		a, b := got[i-1], got[i]
		if b.at < a.at || (b.at == a.at && b.seq < a.seq) {
			t.Fatalf("event %d (t=%d seq=%d) ran before %d (t=%d seq=%d)",
				i, b.at, b.seq, i-1, a.at, a.seq)
		}
	}
}

// TestKernelOverflowOrdering drives a schedule that spans several wheel
// horizons, so events start in the overflow heap and migrate into the
// wheel as the clock approaches them; the (time, seq) dispatch order
// must be indistinguishable from a plain priority queue.
func TestKernelOverflowOrdering(t *testing.T) {
	k := NewKernel(1)
	r := NewRand(321)
	const n = 5000
	type stamp struct {
		at  Time
		seq int
	}
	var got []stamp
	for i := 0; i < n; i++ {
		i := i
		at := Time(r.Intn(5000)) // ~80% beyond the wheel horizon
		k.At(at, func() { got = append(got, stamp{at, i}) })
	}
	k.Run(0)
	if len(got) != n {
		t.Fatalf("ran %d events, want %d", len(got), n)
	}
	for i := 1; i < n; i++ {
		a, b := got[i-1], got[i]
		if b.at < a.at || (b.at == a.at && b.seq < a.seq) {
			t.Fatalf("event %d (t=%d seq=%d) ran before %d (t=%d seq=%d)",
				i, b.at, b.seq, i-1, a.at, a.seq)
		}
	}
}

// TestKernelOverflowMigrationFIFO pins the migration ordering contract:
// events that waited in the overflow heap run before events scheduled
// later, directly into the wheel, for the same cycle.
func TestKernelOverflowMigrationFIFO(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.At(5000, func() { got = append(got, 0) }) // far future: overflow
	k.At(1, func() {
		k.At(5000, func() { got = append(got, 1) }) // still overflow
	})
	k.At(4500, func() {
		// now = 4500: cycle 5000 is inside the wheel horizon, so this
		// schedules directly into the slot the overflow events migrated
		// to — and must run after them.
		k.At(5000, func() { got = append(got, 2) })
	})
	k.Run(0)
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// TestKernelAtArgNoAllocs gates the scheduler's steady state: once the
// node arena has grown to the working depth, AtArg + Step must not
// allocate.
func TestKernelAtArgNoAllocs(t *testing.T) {
	k := NewKernel(1)
	fn := func(any) {}
	var arg any = new(int)
	cycle := func() {
		k.AtArg(k.Now()+3, fn, arg)
		if !k.Step() {
			t.Fatal("Step found no event")
		}
	}
	for i := 0; i < 100; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(1000, cycle); avg != 0 {
		t.Errorf("AtArg+Step steady state allocates %.2f/op, want 0", avg)
	}
}

func TestKernelPastPanics(t *testing.T) {
	k := NewKernel(1)
	k.At(100, func() {})
	k.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.At(50, func() {})
}

func TestKernelEmptyStep(t *testing.T) {
	k := NewKernel(1)
	if k.Step() {
		t.Error("Step on empty queue reported work")
	}
	if k.EventsRun() != 0 {
		t.Error("EventsRun nonzero on fresh kernel")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide %d/1000 times", same)
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	if err := quick.Check(func(x uint16) bool {
		n := int(x%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	sum := 0.0
	const n = 10000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	mean := sum / n
	if mean < 0.45 || mean > 0.55 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRandForkIndependence(t *testing.T) {
	r := NewRand(5)
	f1 := r.Fork()
	f2 := r.Fork()
	same := 0
	for i := 0; i < 1000; i++ {
		if f1.Uint64() == f2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("forked streams collide %d/1000 times", same)
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func BenchmarkKernelScheduleRun(b *testing.B) {
	k := NewKernel(1)
	nop := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(Time(i%64), nop)
		if k.Pending() > 1024 {
			k.Run(k.Now() + 32)
		}
	}
	k.Run(0)
}

// TestKernelTagPropagation requires the causal tag to be captured at
// scheduling time and restored at dispatch, so a tag set at the root
// of a transaction follows its entire causal tree of events.
func TestKernelTagPropagation(t *testing.T) {
	k := NewKernel(1)
	var got []uint64
	record := func() { got = append(got, k.Tag()) }

	k.SetTag(7)
	k.After(5, func() {
		record() // sees 7
		// Nested scheduling inherits the restored tag.
		k.After(5, record) // sees 7
		k.SetTag(9)
		k.After(1, record) // sees 9
	})
	k.SetTag(3)
	k.AfterArg(2, func(any) { record() }, nil) // sees 3
	k.SetTag(0)
	k.After(1, record) // sees 0 (untagged)

	k.Run(0)
	want := []uint64{0, 3, 7, 9, 7}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d saw tag %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
}

// TestKernelTagInterleaving requires tags from two interleaved causal
// trees to stay separate: the dispatcher restores each event's own
// captured tag, so concurrent transactions cannot bleed into each
// other.
func TestKernelTagInterleaving(t *testing.T) {
	k := NewKernel(1)
	seen := map[uint64]int{}
	var grow func(tag uint64, depth int)
	grow = func(tag uint64, depth int) {
		if k.Tag() != tag {
			t.Errorf("depth %d: tag = %d, want %d", depth, k.Tag(), tag)
		}
		seen[tag]++
		if depth < 4 {
			// Both trees schedule into the same future cycles.
			k.After(Time(1+tag%3), func() { grow(tag, depth+1) })
		}
	}
	for tag := uint64(1); tag <= 5; tag++ {
		tag := tag
		k.SetTag(tag)
		k.After(1, func() { grow(tag, 1) })
	}
	k.SetTag(0)
	k.Run(0)
	for tag := uint64(1); tag <= 5; tag++ {
		if seen[tag] != 4 {
			t.Errorf("tree %d dispatched %d events, want 4", tag, seen[tag])
		}
	}
}
