package sim

import "testing"

// The kernel benchmarks model the scheduler load the coherence
// simulation generates: a working set of a few thousand pending events
// with short, irregular delays, pushed and popped continuously. Run
// with -benchmem; the steady-state paths must report 0 allocs/op.

// BenchmarkSchedule measures steady-state push+pop throughput: the
// queue is held at a constant depth and every iteration schedules one
// event and executes one.
func BenchmarkSchedule(b *testing.B) {
	k := NewKernel(1)
	nop := func() {}
	const depth = 4096
	for i := 0; i < depth; i++ {
		k.After(Time(i%97), nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(Time(i%97), nop)
		k.Step()
	}
}

// BenchmarkStep measures pure pop/dispatch throughput over a deep
// queue, refilled in untimed sections.
func BenchmarkStep(b *testing.B) {
	k := NewKernel(1)
	nop := func() {}
	const chunk = 8192
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		b.StopTimer()
		n := chunk
		if b.N-done < n {
			n = b.N - done
		}
		for i := 0; i < n; i++ {
			k.After(Time(i%211), nop)
		}
		b.StartTimer()
		for i := 0; i < n; i++ {
			k.Step()
		}
		done += n
	}
}

// BenchmarkScheduleArg measures the AtArg fast path: a long-lived
// non-capturing function plus a small integer argument, the form the
// mesh broadcast and unicast senders use. Small ints box without
// allocating, so this path is fully allocation-free even at the call
// site.
func BenchmarkScheduleArg(b *testing.B) {
	k := NewKernel(1)
	sink := 0
	fn := func(a any) { sink += a.(int) }
	const depth = 4096
	for i := 0; i < depth; i++ {
		k.AfterArg(Time(i%97), fn, i%64)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.AfterArg(Time(i%97), fn, i%64)
		k.Step()
	}
}

// BenchmarkMixedAtAfter mixes absolute and relative scheduling with a
// spread of delays, the pattern the mesh and protocol engines produce
// (short hop latencies plus occasional long retry backoffs).
func BenchmarkMixedAtAfter(b *testing.B) {
	k := NewKernel(1)
	nop := func() {}
	const depth = 2048
	for i := 0; i < depth; i++ {
		k.After(Time(i%61), nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch i & 3 {
		case 0:
			k.After(5, nop)
		case 1:
			k.At(k.Now()+Time(i%131), nop)
		case 2:
			k.After(48, nop) // retry backoff
		default:
			k.After(0, nop) // same-cycle event
		}
		k.Step()
	}
}
