package sim

import "errors"

// Watchdog periodically runs a probe over the simulation state to
// detect stalled transactions before they turn into a silent hang.
// The probe returns "" while everything is healthy; a non-empty
// return (typically a dump of the stuck block's per-tile state) is
// recorded as the watchdog error and disarms the watchdog.
//
// The watchdog is event-driven: while armed it re-schedules itself
// every interval, but only as long as other events are pending, so a
// drained kernel still terminates with the watchdog armed.
type Watchdog struct {
	k        *Kernel
	interval Time
	probe    func() string
	armed    bool
	ticking  bool
	err      error
}

// NewWatchdog builds a watchdog on k that calls probe every interval
// cycles while armed. It starts disarmed.
func NewWatchdog(k *Kernel, interval Time, probe func() string) *Watchdog {
	if interval <= 0 {
		interval = 10_000
	}
	return &Watchdog{k: k, interval: interval, probe: probe}
}

// Arm starts (or resumes) periodic probing.
func (w *Watchdog) Arm() {
	w.armed = true
	if !w.ticking {
		w.ticking = true
		w.k.After(w.interval, w.tick)
	}
}

// Disarm stops probing; any recorded error is kept.
func (w *Watchdog) Disarm() { w.armed = false }

// Err returns the first probe failure, or nil.
func (w *Watchdog) Err() error { return w.err }

func (w *Watchdog) tick() {
	w.ticking = false
	if !w.armed {
		return
	}
	if w.err == nil {
		if msg := w.probe(); msg != "" {
			w.err = errors.New(msg)
			w.armed = false
			return
		}
	}
	// Reschedule only while other work is pending, so Run(0) drains.
	if w.k.Pending() > 0 {
		w.ticking = true
		w.k.After(w.interval, w.tick)
	}
}
