package sim

// Rand is a small, fast, deterministic pseudo-random generator
// (xorshift128+). The simulator cannot use math/rand's global source
// because reproducibility across protocols under comparison requires an
// explicitly seeded, independently owned stream.
type Rand struct {
	s0, s1 uint64
}

// NewRand returns a generator seeded from seed via splitmix64, so that
// nearby seeds produce unrelated streams.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0 = next()
	r.s1 = next()
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1
	}
	return r
}

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Fork returns an independent generator derived from this one's state;
// useful to give each tile its own stream while keeping a single seed.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Uint64())
}
