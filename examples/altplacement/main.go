// Altplacement: reproduce the paper's "-alt" experiment (Figure 6):
// what happens when the VMs do not match the static areas. The paper
// finds no significant performance change — owners stay within the VM
// and providers start serving VM-private data too.
//
//	go run ./examples/altplacement [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
)

func main() {
	wl := "apache4x16p"
	if len(os.Args) > 1 {
		wl = os.Args[1]
	}
	fmt.Printf("workload %s: matched vs alternative (Figure 6) VM placement\n\n", wl)
	for _, p := range []string{"providers", "arin"} {
		var matched, alt *core.Result
		for _, useAlt := range []bool{false, true} {
			cfg := core.DefaultConfig()
			cfg.Protocol = p
			cfg.Workload = wl
			cfg.WarmupRefs = 20000
			cfg.RefsPerCore = 8000
			cfg.AltPlacement = useAlt
			res, err := core.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			if useAlt {
				alt = res
			} else {
				matched = res
			}
		}
		fmt.Printf("%-10s perf alt/matched = %.3f | power alt/matched = %.3f\n",
			p,
			alt.Performance()/matched.Performance(),
			alt.PowerPerCycle()/matched.PowerPerCycle())
	}
	fmt.Println("\n(values near 1.0 reproduce the paper's finding that the static areas")
	fmt.Println("keep working even when the VMs straddle them)")
}
