// Consolidation: compare the four coherence protocols on a
// consolidated server (4 VMs, memory deduplication on), reproducing
// the flavour of the paper's Figures 7 and 9a on one workload.
//
//	go run ./examples/consolidation [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/proto"
)

func main() {
	wl := "apache4x16p"
	if len(os.Args) > 1 {
		wl = os.Args[1]
	}
	fmt.Printf("workload %s, 64 tiles, 4 areas, 4 VMs, dedup on\n\n", wl)
	var base *core.Result
	for _, p := range core.ProtocolNames {
		cfg := core.DefaultConfig()
		cfg.Protocol = p
		cfg.Workload = wl
		cfg.WarmupRefs = 20000
		cfg.RefsPerCore = 8000
		res, err := core.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if base == nil {
			base = res
		}
		pr := res.Profile
		provHits := pr.Count[proto.MissPredProvider] + pr.Count[proto.MissUnpredProvider]
		fmt.Printf("%-10s perf %.3f | dyn power %.3f | provider-served misses %5.1f%% | mean links/miss %.1f\n",
			p,
			res.Performance()/base.Performance(),
			res.PowerPerCycle()/base.PowerPerCycle(),
			100*float64(provHits)/float64(pr.TotalMisses()),
			meanLinks(pr))
	}
	fmt.Println("\n(performance and power normalized to the flat directory)")
}

func meanLinks(pr proto.MissProfile) float64 {
	var links, cnt uint64
	for c := 0; c < int(proto.NumMissClasses); c++ {
		links += pr.Links[c]
		cnt += pr.Count[c]
	}
	if cnt == 0 {
		return 0
	}
	return float64(links) / float64(cnt)
}
