// Scaling: explore the storage-overhead trade-off of Table VII — how
// the coherence storage of each protocol scales with core count and
// area count, and where each protocol's sweet spot lies.
//
//	go run ./examples/scaling
package main

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/storage"
)

func main() {
	fmt.Println("Coherence storage overhead (share of data storage) and tag leakage per tile")
	fmt.Println()
	leak := power.DefaultLeakage()
	for _, cores := range []int{64, 256, 1024} {
		fmt.Printf("--- %d cores ---\n", cores)
		sweep, areas := storage.OverheadSweep(cores)
		fmt.Printf("%-16s", "areas:")
		for _, a := range areas {
			fmt.Printf("%9d", a)
		}
		fmt.Println()
		for _, p := range storage.All {
			fmt.Printf("%-16s", p.String())
			for _, v := range sweep[p] {
				fmt.Printf("%8.1f%%", v*100)
			}
			fmt.Println()
		}
		// The protocol with the least tag leakage at 4 areas.
		best, bestMW := storage.Directory, 1e18
		for _, p := range storage.All {
			if cores%4 != 0 {
				continue
			}
			_, tag := leak.TileLeakage(p, storage.DefaultConfig(cores, 4))
			if tag < bestMW {
				bestMW, best = tag, p
			}
		}
		fmt.Printf("lowest tag leakage at 4 areas: %s (%.1f mW/tile)\n\n", best, bestMW)
	}
	fmt.Println("Reading Table VII's trade-off: smaller areas put providers closer to")
	fmt.Println("requestors but make finding one less likely; DiCo-Providers' overhead")
	fmt.Println("grows with the area count (one ProPo per area) while DiCo-Arin's dips")
	fmt.Println("at intermediate area counts.")
}
