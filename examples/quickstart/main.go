// Quickstart: simulate one consolidated workload under one coherence
// protocol and print the headline numbers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	cfg := core.DefaultConfig()  // 64 tiles, 4 areas, 4 VMs, dedup on
	cfg.Protocol = "providers"   // DiCo-Providers
	cfg.Workload = "apache4x16p" // 4 Apache VMs of 16 cores each
	cfg.WarmupRefs = 10000       // discarded warmup
	cfg.RefsPerCore = 5000       // measured references per core

	res, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	miss := res.Profile.TotalMisses()
	fmt.Printf("simulated %d references in %d cycles (%.3f refs/cycle)\n",
		res.Refs, res.Cycles, res.Performance())
	fmt.Printf("L1 miss rate:  %.2f%%\n", 100*float64(miss)/float64(miss+res.Profile.Hits))
	fmt.Printf("dedup savings: %.1f%% of memory\n", 100*res.DedupSavings)
	fmt.Printf("dynamic power: %.4g pJ/cycle (%.0f%% network)\n",
		res.PowerPerCycle(), 100*res.NetworkPowerPerCycle()/res.PowerPerCycle())
}
