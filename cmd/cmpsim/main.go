// Command cmpsim runs one simulation of the 64-tile consolidated CMP
// and reports performance, power and miss statistics. With -protocols
// it runs several protocols on the same workload concurrently (one
// worker per CPU) and reports each in turn plus a comparison summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/proto"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.WarmupRefs = 40000
	shared := cli.New(flag.CommandLine, &cfg).Sim().Obs().Shards().Workers()
	flag.StringVar(&cfg.Protocol, "protocol", cfg.Protocol, "coherence protocol: directory | dico | providers | arin")
	protocols := flag.String("protocols", "", "comma-separated protocols to run concurrently and compare (overrides -protocol; 'all' = every protocol)")
	flag.StringVar(&cfg.Workload, "workload", cfg.Workload, "Table IV workload (e.g. apache4x16p, jbb4x16p, mixed-sci)")
	jsonOut := flag.String("json", "", "write an obs manifest (schema v3) with every run's full configuration and counters to this file")
	httpAddr := flag.String("http", "", "serve live telemetry (Prometheus /metrics, mesh heatmap, pprof, expvar) on this address; a bare :port binds localhost only")
	flag.Parse()
	shared.Finish()
	workers := &shared.WorkersN
	traceOut := &shared.TraceOut

	var live *telemetry.Live
	if *httpAddr != "" {
		// The endpoint refreshes from the epoch sampler; arm a default
		// sampling interval if the user didn't pick one.
		if cfg.SampleEvery == 0 {
			cfg.SampleEvery = 5000
		}
		live = telemetry.NewLive()
		addr, err := telemetry.Serve(*httpAddr, live)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cmpsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "telemetry endpoint: http://%s/ (heatmap, /metrics, /debug/pprof, /debug/vars)\n", addr)
	}

	// Validate up front so a typoed flag fails with the valid choices
	// before any simulation starts.
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "cmpsim:", err)
		os.Exit(2)
	}

	cfgs := []core.Config{cfg}
	if *protocols != "" {
		names := strings.Split(*protocols, ",")
		if *protocols == "all" {
			names = core.ProtocolNames
		}
		cfgs = make([]core.Config, len(names))
		for i, p := range names {
			cfgs[i] = cfg
			cfgs[i].Protocol = strings.TrimSpace(p)
			if err := cfgs[i].Validate(); err != nil {
				fmt.Fprintln(os.Stderr, "cmpsim:", err)
				os.Exit(2)
			}
		}
	}
	results, systems, err := exp.RunSystems(cfgs, *workers, func(i int, s *core.System) {
		fmt.Fprintf(os.Stderr, "running %s / %s...\n", cfgs[i].Workload, cfgs[i].Protocol)
		if live != nil && s.Sampler != nil {
			live.Attach(s.Sampler, cfgs[i].Protocol, cfgs[i].Workload, s.Net.Grid())
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmpsim:", err)
		os.Exit(1)
	}
	for i, res := range results {
		report(cfgs[i], res)
		if len(results) > 1 || i < len(results)-1 {
			fmt.Println()
		}
	}
	writeManifest(*jsonOut, results...)
	reportSpans(cfgs, systems, *traceOut)
	if len(results) > 1 {
		base := results[0]
		fmt.Printf("comparison (vs %s):\n", cfgs[0].Protocol)
		fmt.Printf("  %-12s %10s %10s %12s %12s\n", "protocol", "cycles", "perf", "power/cycle", "flit-links")
		for i, res := range results {
			fmt.Printf("  %-12s %10d %9.3fx %11.4g %12d\n",
				cfgs[i].Protocol, res.Cycles,
				res.Performance()/base.Performance(),
				res.PowerPerCycle(), res.Net.FlitLinkCrossing)
		}
	}
}

// reportSpans prints the hop-count analysis of every traced run and
// exports the Perfetto trace file.
func reportSpans(cfgs []core.Config, systems []*core.System, traceOut string) {
	var tracers []*telemetry.Tracer
	var reports []*telemetry.HopReport
	for i, s := range systems {
		if s.Tracer == nil {
			continue
		}
		tracers = append(tracers, s.Tracer)
		reports = append(reports, telemetry.Analyze(s.Tracer, cfgs[i].Net.DataFlits))
	}
	if len(tracers) == 0 {
		return
	}
	for _, r := range reports {
		fmt.Println()
		fmt.Print(r.String())
	}
	if len(reports) > 1 {
		fmt.Println()
		fmt.Print(telemetry.CompareTable(reports...).String())
	}
	if traceOut == "" {
		return
	}
	f, err := os.Create(traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cmpsim:", err)
		os.Exit(1)
	}
	if err := telemetry.WritePerfetto(f, tracers...); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "cmpsim:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "cmpsim:", err)
		os.Exit(1)
	}
	spans := 0
	for _, t := range tracers {
		spans += len(t.Spans())
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d spans, %d protocols) — open in ui.perfetto.dev\n",
		traceOut, spans, len(tracers))
}

// writeManifest exports the finished runs as an obs manifest.
func writeManifest(path string, results ...*core.Result) {
	if path == "" {
		return
	}
	m := obs.New("cmpsim")
	for _, res := range results {
		m.Add(res)
	}
	if err := m.WriteFile(path); err != nil {
		fmt.Fprintln(os.Stderr, "cmpsim:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d runs, schema v%d)\n", path, len(m.Runs), obs.SchemaVersion)
}

// report prints the full statistics block for one finished run.
func report(cfg core.Config, res *core.Result) {
	pr := res.Profile
	misses := pr.TotalMisses()
	fmt.Printf("protocol         %s\n", cfg.Protocol)
	fmt.Printf("workload         %s (alt=%v dedup=%v)\n", cfg.Workload, cfg.AltPlacement, cfg.Dedup)
	fmt.Printf("cycles           %d\n", res.Cycles)
	fmt.Printf("references       %d (%.2f per cycle)\n", res.Refs, res.Performance())
	fmt.Printf("L1 miss rate     %.4f\n", float64(misses)/float64(misses+pr.Hits))
	fmt.Printf("memory fetches   %d (%.1f%% of misses)\n", res.MemReads, res.L2MissRatio()*100)
	fmt.Printf("dedup savings    %.1f%%\n", res.DedupSavings*100)
	if cfg.Check {
		fmt.Printf("coherence check  passed (shadow memory + watchdog)\n")
	}
	fmt.Printf("dynamic power    %.4g pJ/cycle (cache %.4g, network %.4g)\n",
		res.PowerPerCycle(), res.CachePowerPerCycle(), res.NetworkPowerPerCycle())
	fmt.Printf("network          %d msgs, %d flit-links, %d router traversals\n",
		res.Net.Messages, res.Net.FlitLinkCrossing, res.Net.RouterTraversals)
	fmt.Println("miss breakdown:")
	for c := 0; c < int(proto.NumMissClasses); c++ {
		if pr.Count[c] == 0 {
			continue
		}
		fmt.Printf("  %-16s %8d (%.1f%%)  %.1f links avg\n",
			proto.MissClassNames[c], pr.Count[c],
			float64(pr.Count[c])/float64(misses)*100,
			pr.MeanLinks(proto.MissClass(c)))
	}
	if p := res.Prof; p != nil {
		fmt.Println("profile:")
		fmt.Printf("  kernel events    %d dispatched (%d closure, %d arg), %d scheduled\n",
			p.Kernel.Dispatched(), p.Kernel.DispatchedClosure, p.Kernel.DispatchedArg, p.Kernel.Scheduled)
		fmt.Printf("  queue depth      mean %.1f, max %d\n", p.Kernel.QueueDepth.Mean(), p.Kernel.QueueDepth.Max)
		fmt.Printf("  miss latency     mean %.1f cycles, max %d (%d misses timed)\n",
			p.MissLatency.Mean(), p.MissLatency.Max, p.MissLatency.Count)
		for _, ph := range p.Phases {
			wallMS := float64(ph.WallNS) / 1e6
			fmt.Printf("  phase %-10s %8d refs, %10d cycles, %10d events, %8.1f ms wall (%.0f refs/s)\n",
				ph.Name, ph.Refs, ph.Cycles, ph.Events, wallMS, float64(ph.Refs)/(wallMS/1000))
		}
	}
	fmt.Println("power events:")
	for _, name := range []string{
		power.EvL1TagRead, power.EvL1DataRead, power.EvL1DataWrite,
		power.EvL2TagRead, power.EvL2DataRead, power.EvL2DataWrite,
		power.EvDirRead, power.EvL1CAccess, power.EvL2CAccess,
	} {
		if v := res.Counters.Value(name); v > 0 {
			fmt.Printf("  %-16s %d\n", name, v)
		}
	}
	if len(res.Census) > 0 {
		fmt.Println()
		fmt.Print(telemetry.CensusTable(
			fmt.Sprintf("touch census: synchronous remote-tile accesses (%s, ranked by messageization cost)", cfg.Protocol),
			res.Census))
	}
	if len(res.PerVM) > 0 {
		fmt.Println()
		t := stats.NewTable(fmt.Sprintf("per-VM attribution (%s)", cfg.Protocol),
			"vm", "tiles", "refs", "cache pJ", "net pJ", "miss p50", "p99", "p999")
		for i := range res.PerVM {
			v := &res.PerVM[i]
			t.AddRow(fmt.Sprint(v.VM), fmt.Sprint(v.Tiles), fmt.Sprint(v.Refs),
				fmt.Sprintf("%.4g", v.Breakdown.CacheTotal()),
				fmt.Sprintf("%.4g", v.Breakdown.Link+v.Breakdown.Routing),
				fmt.Sprint(v.P50), fmt.Sprint(v.P99), fmt.Sprint(v.P999))
		}
		fmt.Print(t)
	}
}
