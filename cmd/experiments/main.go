// Command experiments regenerates the paper's evaluation figures by
// running the full protocol x workload simulation matrix, and prints
// the analytic tables. Use -fig to select one artifact, -quick for a
// fast pass, and -alt for the Figure 6 alternative placement.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

func main() {
	opt := exp.DefaultOptions()
	shared := cli.New(flag.CommandLine, &opt.Base).Sim().Obs().Shards().Workers()
	fig := flag.String("fig", "all", "artifact: 5, 6, 7t (tables), 7, 8a, 8b, 9a, 9b, hops or all")
	quick := flag.Bool("quick", false, "fast pass (fewer references per core; explicit -refs/-warmup win)")
	workloads := flag.String("workloads", "", "comma-separated workload subset (default: all)")
	out := flag.String("out", "", "write the sweep as an obs manifest (schema v3) to <dir>/matrix.json; cmd/tables -from regenerates every figure from it without re-simulating")
	cacheDir := flag.String("cache", "", "content-addressed run cache directory: completed runs are stored and repeated sweeps resolve unchanged cells from disk (invalidated by any config or git-revision change)")
	resume := flag.Bool("resume", false, "shorthand for -cache .expcache: make the sweep incremental and resumable")
	httpAddr := flag.String("http", "", "serve live telemetry for the sweep (Prometheus /metrics, mesh heatmap, pprof, expvar) on this address; a bare :port binds localhost only")
	flag.Parse()
	shared.Finish()

	// Analytic artifacts need no simulation.
	switch *fig {
	case "5":
		fmt.Print(exp.Table5())
		return
	case "6":
		fmt.Print(exp.Table6())
		return
	case "7t":
		for _, t := range exp.Table7() {
			fmt.Print(t)
			fmt.Println()
		}
		return
	}

	// -quick lowers the budget but yields to explicit -refs/-warmup.
	if *quick {
		if !cli.Changed(flag.CommandLine, "refs") {
			opt.Base.RefsPerCore = 8000
		}
		if !cli.Changed(flag.CommandLine, "warmup") {
			opt.Base.WarmupRefs = 20000
		}
	}
	if *workloads != "" {
		opt.Workloads = strings.Split(*workloads, ",")
	}
	opt.Workers = shared.WorkersN
	if *resume && *cacheDir == "" {
		*cacheDir = ".expcache"
	}
	if *cacheDir != "" {
		cache, err := obs.OpenRunCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		opt.Cache = cache
	}
	if *httpAddr != "" {
		// The endpoint refreshes from the epoch sampler; arm a default
		// sampling interval if the user didn't pick one. Cached cells
		// build no system and stay invisible to the endpoint.
		if opt.Base.SampleEvery == 0 {
			opt.Base.SampleEvery = 5000
		}
		live := telemetry.NewLive()
		addr, err := telemetry.Serve(*httpAddr, live)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "telemetry endpoint: http://%s/ (heatmap, /metrics, /debug/pprof, /debug/vars)\n", addr)
		opt.OnSystem = func(s *core.System) {
			if s.Sampler != nil {
				// Concurrent cells share one workload/protocol keyspace:
				// key by both so parallel runs don't overwrite each other.
				live.Attach(s.Sampler, s.Cfg.Workload+"/"+s.Cfg.Protocol, s.Cfg.Workload, s.Net.Grid())
			}
		}
	}
	m, err := exp.Run(opt, func(wl, p string) {
		fmt.Fprintf(os.Stderr, "running %s / %s...\n", wl, p)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses (%s)\n", m.Cache.Hits, m.Cache.Misses, *cacheDir)
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		path := filepath.Join(*out, "matrix.json")
		if err := obs.FromMatrix("experiments", m).WriteFile(path); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d runs, schema v%d)\n", path, len(m.Workloads)*4, obs.SchemaVersion)
	}

	show := func(name string, render func() fmt.Stringer) {
		if *fig == "all" || *fig == name {
			fmt.Print(render())
			fmt.Println()
		}
	}
	show("7", func() fmt.Stringer { return m.Figure7() })
	show("8a", func() fmt.Stringer { return m.Figure8a() })
	show("8b", func() fmt.Stringer { return m.Figure8b() })
	show("9a", func() fmt.Stringer { return m.Figure9a() })
	show("9b", func() fmt.Stringer { return m.Figure9b() })
	show("hops", func() fmt.Stringer { return m.LinkAnalysis() })
	if *fig == "all" || *fig == "hops" {
		for _, cfg := range []struct{ tiles, areas int }{{64, 4}, {256, 64}} {
			ind, dir, short := exp.TheoreticalDistances(cfg.tiles, cfg.areas)
			fmt.Printf("theoretical links (%d tiles, %d areas): indirect %.1f, direct %.1f, shortened %.1f\n",
				cfg.tiles, cfg.areas, ind, dir, short)
		}
	}
	if *fig == "all" {
		fmt.Print(exp.Table5())
		fmt.Println()
		fmt.Print(exp.Table6())
		fmt.Println()
		for _, t := range exp.Table7() {
			fmt.Print(t)
			fmt.Println()
		}
	}
}
