// Command experiments regenerates the paper's evaluation figures by
// running the full protocol x workload simulation matrix, and prints
// the analytic tables. Use -fig to select one artifact, -quick for a
// fast pass, and -alt for the Figure 6 alternative placement.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	fig := flag.String("fig", "all", "artifact: 5, 6, 7t (tables), 7, 8a, 8b, 9a, 9b, hops or all")
	quick := flag.Bool("quick", false, "fast pass (fewer references per core)")
	alt := flag.Bool("alt", false, "use the Figure 6 alternative VM placement")
	nodedup := flag.Bool("nodedup", false, "disable memory deduplication")
	workloads := flag.String("workloads", "", "comma-separated workload subset (default: all)")
	refs := flag.Int("refs", 0, "override measured references per core")
	workers := flag.Int("workers", 0, "parallel simulations (0 = all CPUs, 1 = serial)")
	out := flag.String("out", "", "write the sweep as an obs manifest (schema v2) to <dir>/matrix.json; cmd/tables -from regenerates every figure from it without re-simulating")
	sample := flag.Int64("sample", 0, "record a time-series sample of every run's counters every N cycles (0 = off; exported with -out, plotted with tables -series)")
	sampleCap := flag.Int("sample-cap", 0, "max time-series samples retained per run, drop-oldest (0 = default)")
	cacheDir := flag.String("cache", "", "content-addressed run cache directory: completed runs are stored and repeated sweeps resolve unchanged cells from disk (invalidated by any config or git-revision change)")
	resume := flag.Bool("resume", false, "shorthand for -cache .expcache: make the sweep incremental and resumable")
	flag.Parse()

	// Analytic artifacts need no simulation.
	switch *fig {
	case "5":
		fmt.Print(exp.Table5())
		return
	case "6":
		fmt.Print(exp.Table6())
		return
	case "7t":
		for _, t := range exp.Table7() {
			fmt.Print(t)
			fmt.Println()
		}
		return
	}

	opt := exp.DefaultOptions()
	opt.Base.AltPlacement = *alt
	opt.Base.Dedup = !*nodedup
	if *quick {
		opt.Base.RefsPerCore = 8000
		opt.Base.WarmupRefs = 20000
	}
	if *refs > 0 {
		opt.Base.RefsPerCore = *refs
	}
	if *workloads != "" {
		opt.Workloads = strings.Split(*workloads, ",")
	}
	opt.Base.SampleEvery = sim.Time(*sample)
	opt.Base.SampleCap = *sampleCap
	opt.Workers = *workers
	if *resume && *cacheDir == "" {
		*cacheDir = ".expcache"
	}
	if *cacheDir != "" {
		cache, err := obs.OpenRunCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		opt.Cache = cache
	}
	m, err := exp.Run(opt, func(wl, p string) {
		fmt.Fprintf(os.Stderr, "running %s / %s...\n", wl, p)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses (%s)\n", m.Cache.Hits, m.Cache.Misses, *cacheDir)
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		path := filepath.Join(*out, "matrix.json")
		if err := obs.FromMatrix("experiments", m).WriteFile(path); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d runs, schema v%d)\n", path, len(m.Workloads)*4, obs.SchemaVersion)
	}

	show := func(name string, render func() fmt.Stringer) {
		if *fig == "all" || *fig == name {
			fmt.Print(render())
			fmt.Println()
		}
	}
	show("7", func() fmt.Stringer { return m.Figure7() })
	show("8a", func() fmt.Stringer { return m.Figure8a() })
	show("8b", func() fmt.Stringer { return m.Figure8b() })
	show("9a", func() fmt.Stringer { return m.Figure9a() })
	show("9b", func() fmt.Stringer { return m.Figure9b() })
	show("hops", func() fmt.Stringer { return m.LinkAnalysis() })
	if *fig == "all" || *fig == "hops" {
		for _, cfg := range []struct{ tiles, areas int }{{64, 4}, {256, 64}} {
			ind, dir, short := exp.TheoreticalDistances(cfg.tiles, cfg.areas)
			fmt.Printf("theoretical links (%d tiles, %d areas): indirect %.1f, direct %.1f, shortened %.1f\n",
				cfg.tiles, cfg.areas, ind, dir, short)
		}
	}
	if *fig == "all" {
		fmt.Print(exp.Table5())
		fmt.Println()
		fmt.Print(exp.Table6())
		fmt.Println()
		for _, t := range exp.Table7() {
			fmt.Print(t)
			fmt.Println()
		}
	}
}
