// Command tables prints the analytic tables of the paper — Table V
// (per-tile coherence storage), Table VI (leakage power) and Table VII
// (storage overhead versus cores and areas) — and, given a saved obs
// manifest (-from), regenerates the simulation figures from it with
// zero re-simulation: the decoder restores bit-identical counters, so
// the rendered figures match a live run byte for byte. With -series it
// plots the warmup-vs-steady-state curves of a manifest's epoch time
// series (schema v2), and with -validate-trace it checks an exported
// Perfetto trace file against the CI invariants.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

func main() {
	table := flag.String("table", "all", "analytic table to print: 5, 6, 7 or all")
	from := flag.String("from", "", "obs manifest (file, or directory containing matrix.json) to regenerate figures from")
	fig := flag.String("fig", "all", "with -from: figure to regenerate: 7, 8a, 8b, 9a, 9b, hops, census, pervm or all (census/pervm read per-run schema v3 fields and accept partial-matrix manifests)")
	validate := flag.String("validate", "", "decode the given manifest, verify every run record round-trips (schema, counters, breakdown), and exit")
	series := flag.String("series", "", "obs manifest to plot epoch time-series curves from (runs recorded with cmpsim -sample)")
	validateTrace := flag.String("validate-trace", "", "validate the given Perfetto trace-event JSON (well-formed, monotonic timestamps, balanced async pairs, all spans closed) and exit")
	flag.Parse()

	if *validateTrace != "" {
		f, err := os.Open(*validateTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		sum, err := telemetry.ValidatePerfetto(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		protos := make([]string, 0, len(sum.ByPID))
		for _, name := range sum.ByPID {
			protos = append(protos, name)
		}
		fmt.Printf("%s: ok (%d events, %d spans, %d hops, protocols: %s)\n",
			*validateTrace, sum.Events, sum.Spans, sum.Hops, strings.Join(protos, ", "))
		return
	}

	if *series != "" {
		m, err := readManifest(*series)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		if !plotSeries(m) {
			fmt.Fprintln(os.Stderr, "tables: no run in the manifest carries a time series (record one with cmpsim -sample N -json)")
			os.Exit(1)
		}
		return
	}

	if *validate != "" {
		m, err := readManifest(*validate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		if err := m.Verify(); err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: ok (%d runs, schema v%d, written by %s@%s)\n",
			*validate, len(m.Runs), m.Schema, m.Tool, m.Revision)
		return
	}

	if *from != "" {
		m, err := readManifest(*from)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		// The per-run schema v3 views need no full matrix: a cmpsim
		// single-run manifest renders too.
		if *fig == "census" {
			if !showCensus(m) {
				fmt.Fprintln(os.Stderr, "tables: no run in the manifest carries a touch census (record one with cmpsim -census -json)")
				os.Exit(1)
			}
			return
		}
		if *fig == "pervm" {
			if !showPerVM(m) {
				fmt.Fprintln(os.Stderr, "tables: no run in the manifest carries per-VM attribution (record one with cmpsim -pervm -json)")
				os.Exit(1)
			}
			return
		}
		mx, err := m.Matrix()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		show := func(name string, render func() fmt.Stringer) {
			if *fig == "all" || *fig == name {
				fmt.Print(render())
				fmt.Println()
			}
		}
		show("7", func() fmt.Stringer { return mx.Figure7() })
		show("8a", func() fmt.Stringer { return mx.Figure8a() })
		show("8b", func() fmt.Stringer { return mx.Figure8b() })
		show("9a", func() fmt.Stringer { return mx.Figure9a() })
		show("9b", func() fmt.Stringer { return mx.Figure9b() })
		show("hops", func() fmt.Stringer { return mx.LinkAnalysis() })
		if *fig != "all" {
			return
		}
	}

	switch *table {
	case "5":
		fmt.Print(exp.Table5())
	case "6":
		fmt.Print(exp.Table6())
	case "7":
		for _, t := range exp.Table7() {
			fmt.Print(t)
			fmt.Println()
		}
	case "all":
		fmt.Print(exp.Table5())
		fmt.Println()
		fmt.Print(exp.Table6())
		fmt.Println()
		for _, t := range exp.Table7() {
			fmt.Print(t)
			fmt.Println()
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q (want 5, 6, 7 or all)\n", *table)
		os.Exit(2)
	}
}

// showCensus renders every run's ranked touch census. Returns false
// if no run carries one.
func showCensus(m *obs.Manifest) bool {
	shown := false
	for i := range m.Runs {
		r := &m.Runs[i]
		if len(r.Census) == 0 {
			continue
		}
		shown = true
		fmt.Print(telemetry.CensusTable(
			fmt.Sprintf("touch census: %s / %s (ranked by messageization cost)", r.Workload, r.Protocol),
			r.Census))
		fmt.Println()
	}
	return shown
}

// showPerVM renders every run's per-VM attribution: energy split and
// miss-latency percentiles per consolidated VM. Returns false if no
// run carries one.
func showPerVM(m *obs.Manifest) bool {
	shown := false
	for i := range m.Runs {
		r := &m.Runs[i]
		if len(r.PerVM) == 0 {
			continue
		}
		shown = true
		t := stats.NewTable(fmt.Sprintf("per-VM attribution: %s / %s", r.Workload, r.Protocol),
			"vm", "tiles", "refs", "cache pJ", "net pJ", "miss p50", "p99", "p999")
		for j := range r.PerVM {
			v := &r.PerVM[j]
			cache := 0.0
			for _, ce := range v.Breakdown.Cache {
				cache += ce.PJ
			}
			t.AddRow(fmt.Sprint(v.VM), fmt.Sprint(v.Tiles), fmt.Sprint(v.Refs),
				fmt.Sprintf("%.4g", cache),
				fmt.Sprintf("%.4g", v.Breakdown.Link+v.Breakdown.Routing),
				fmt.Sprint(v.P50), fmt.Sprint(v.P99), fmt.Sprint(v.P999))
		}
		fmt.Print(t)
		fmt.Println()
	}
	return shown
}

// sparkRunes is the 8-level vertical bar used by the ASCII curves.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values as one row of block characters scaled to
// the series maximum, with a '|' at the warmup→measure boundary.
func sparkline(values []float64, boundary int) string {
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for i, v := range values {
		if i == boundary {
			b.WriteByte('|')
		}
		lvl := 0
		if max > 0 {
			lvl = int(v / max * float64(len(sparkRunes)-1))
		}
		if lvl < 0 {
			lvl = 0
		}
		b.WriteRune(sparkRunes[lvl])
	}
	return b.String()
}

// downsample buckets values into at most width means, carrying the
// boundary index along, so long runs still fit a terminal row.
func downsample(values []float64, boundary, width int) ([]float64, int) {
	if len(values) <= width {
		return values, boundary
	}
	out := make([]float64, width)
	outBoundary := boundary * width / len(values)
	for i := range out {
		lo, hi := i*len(values)/width, (i+1)*len(values)/width
		sum := 0.0
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out, outBoundary
}

// delta returns b-a for a cumulative signal, falling back to b when
// the counter restarted (phase boundary) and b dropped below a.
func delta(b, a float64) float64 {
	if b >= a {
		return b - a
	}
	return b
}

// phaseMeans averages per-epoch values on each side of the boundary.
func phaseMeans(values []float64, boundary int) (warm, steady float64) {
	for i, v := range values {
		if i < boundary {
			warm += v
		} else {
			steady += v
		}
	}
	if boundary > 0 {
		warm /= float64(boundary)
	}
	if n := len(values) - boundary; n > 0 {
		steady /= float64(n)
	}
	return warm, steady
}

// plotSeries renders every sampled run's warmup-vs-steady-state
// curves: per-epoch retirement rate, total dynamic energy and queue
// depths. Returns false if no run carried a series.
func plotSeries(m *obs.Manifest) bool {
	const width = 64
	plotted := false
	for i := range m.Runs {
		r := &m.Runs[i]
		s := r.Series
		if s == nil || len(s.Samples) < 2 {
			continue
		}
		plotted = true
		// Per-epoch deltas of the cumulative signals; the boundary is
		// the first measure-phase sample.
		boundary := len(s.Samples)
		refs := make([]float64, 0, len(s.Samples)-1)
		energy := make([]float64, 0, len(s.Samples)-1)
		queue := make([]float64, 0, len(s.Samples)-1)
		for j := 1; j < len(s.Samples); j++ {
			a, b := &s.Samples[j-1], &s.Samples[j]
			if b.Phase == "measure" && a.Phase != "measure" && boundary == len(s.Samples) {
				boundary = j - 1
			}
			// Counters restart at the warmup→measure boundary, so a
			// cumulative signal can step below its predecessor there;
			// the epoch's own total is then the new cumulative value.
			refs = append(refs, delta(float64(b.Refs), float64(a.Refs)))
			et := func(s *telemetry.Sample) float64 {
				return s.EnergyCachePJ + s.EnergyLinkPJ + s.EnergyRoutingPJ
			}
			energy = append(energy, delta(et(b), et(a)))
			queue = append(queue, float64(b.QueueDepth))
		}
		fmt.Printf("%s / %s — %d epochs of %d cycles (%d dropped), warmup | measure:\n",
			r.Workload, r.Protocol, len(s.Samples), s.Interval, s.Dropped)
		for _, c := range []struct {
			name   string
			values []float64
		}{
			{"refs/epoch", refs},
			{"energy pJ/epoch", energy},
			{"kernel queue", queue},
		} {
			warm, steady := phaseMeans(c.values, boundary)
			vals, bnd := downsample(c.values, boundary, width)
			fmt.Printf("  %-16s %s  warmup %.4g → steady %.4g\n", c.name, sparkline(vals, bnd), warm, steady)
		}
		fmt.Println()
	}
	return plotted
}

// readManifest loads a manifest from a file, or from matrix.json
// inside a directory (the layout cmd/experiments -out writes).
func readManifest(path string) (*obs.Manifest, error) {
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		path = filepath.Join(path, "matrix.json")
	}
	return obs.ReadFile(path)
}
