// Command tables prints the analytic tables of the paper — Table V
// (per-tile coherence storage), Table VI (leakage power) and Table VII
// (storage overhead versus cores and areas) — and, given a saved obs
// manifest (-from), regenerates the simulation figures from it with
// zero re-simulation: the decoder restores bit-identical counters, so
// the rendered figures match a live run byte for byte.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/exp"
	"repro/internal/obs"
)

func main() {
	table := flag.String("table", "all", "analytic table to print: 5, 6, 7 or all")
	from := flag.String("from", "", "obs manifest (file, or directory containing matrix.json) to regenerate figures from")
	fig := flag.String("fig", "all", "with -from: figure to regenerate: 7, 8a, 8b, 9a, 9b, hops or all")
	validate := flag.String("validate", "", "decode the given manifest, verify every run record round-trips (schema, counters, breakdown), and exit")
	flag.Parse()

	if *validate != "" {
		m, err := readManifest(*validate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		if err := m.Verify(); err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: ok (%d runs, schema v%d, written by %s@%s)\n",
			*validate, len(m.Runs), m.Schema, m.Tool, m.Revision)
		return
	}

	if *from != "" {
		m, err := readManifest(*from)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		mx, err := m.Matrix()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		show := func(name string, render func() fmt.Stringer) {
			if *fig == "all" || *fig == name {
				fmt.Print(render())
				fmt.Println()
			}
		}
		show("7", func() fmt.Stringer { return mx.Figure7() })
		show("8a", func() fmt.Stringer { return mx.Figure8a() })
		show("8b", func() fmt.Stringer { return mx.Figure8b() })
		show("9a", func() fmt.Stringer { return mx.Figure9a() })
		show("9b", func() fmt.Stringer { return mx.Figure9b() })
		show("hops", func() fmt.Stringer { return mx.LinkAnalysis() })
		if *fig != "all" {
			return
		}
	}

	switch *table {
	case "5":
		fmt.Print(exp.Table5())
	case "6":
		fmt.Print(exp.Table6())
	case "7":
		for _, t := range exp.Table7() {
			fmt.Print(t)
			fmt.Println()
		}
	case "all":
		fmt.Print(exp.Table5())
		fmt.Println()
		fmt.Print(exp.Table6())
		fmt.Println()
		for _, t := range exp.Table7() {
			fmt.Print(t)
			fmt.Println()
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q (want 5, 6, 7 or all)\n", *table)
		os.Exit(2)
	}
}

// readManifest loads a manifest from a file, or from matrix.json
// inside a directory (the layout cmd/experiments -out writes).
func readManifest(path string) (*obs.Manifest, error) {
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		path = filepath.Join(path, "matrix.json")
	}
	return obs.ReadFile(path)
}
