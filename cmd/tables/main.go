// Command tables prints the analytic tables of the paper: Table V
// (per-tile coherence storage), Table VI (leakage power) and Table VII
// (storage overhead versus cores and areas).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
)

func main() {
	table := flag.String("table", "all", "which table to print: 5, 6, 7 or all")
	flag.Parse()
	switch *table {
	case "5":
		fmt.Print(exp.Table5())
	case "6":
		fmt.Print(exp.Table6())
	case "7":
		for _, t := range exp.Table7() {
			fmt.Print(t)
			fmt.Println()
		}
	case "all":
		fmt.Print(exp.Table5())
		fmt.Println()
		fmt.Print(exp.Table6())
		fmt.Println()
		for _, t := range exp.Table7() {
			fmt.Print(t)
			fmt.Println()
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q (want 5, 6, 7 or all)\n", *table)
		os.Exit(2)
	}
}
