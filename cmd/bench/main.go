// Command bench is the repeatable performance harness: it measures the
// event-kernel scheduling hot path and end-to-end simulation
// throughput for all four protocols on the paper's default workload,
// and writes the numbers as JSON so the project's performance
// trajectory is recorded run over run (BENCH_<pr>.json at the repo
// root). -smoke shrinks the reference budget for CI. -compare diffs
// the fresh numbers against a previous BENCH file and fails on a
// throughput regression beyond the tolerance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// KernelBench reports the scheduler microbenchmark: steady-state
// push+pop throughput at a realistic queue depth (the pattern the
// coherence simulation generates).
type KernelBench struct {
	Events       uint64  `json:"events"`
	QueueDepth   int     `json:"queue_depth"`
	NSPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// LaneUtil summarizes one lane's share of a RunParallel run from the
// attached sim.LaneProfile: how much of the window work it dispatched
// and how often it sat a window out. Events/Share/StallWindows are
// deterministic; AvgWaitNS is host wall clock (barrier idle time) and
// varies run to run.
type LaneUtil struct {
	Lane         int     `json:"lane"`
	Events       uint64  `json:"events"`
	Share        float64 `json:"share"`
	StallWindows int     `json:"stall_windows"`
	AvgWaitNS    float64 `json:"avg_wait_ns"`
}

// ProtoBench reports one protocol's end-to-end throughput.
type ProtoBench struct {
	Cycles     uint64  `json:"cycles"`
	Refs       uint64  `json:"refs"`
	Events     uint64  `json:"kernel_events"`
	WallMS     float64 `json:"wall_ms"`
	RefsPerSec float64 `json:"refs_per_sec"`
	// Lanes is present only on parallel-executor runs: per-lane
	// utilization of the best rep (windows retained up to the profile
	// cap).
	Lanes []LaneUtil `json:"lanes,omitempty"`
}

// EndToEnd reports the 4-protocol default-workload sweep.
type EndToEnd struct {
	Workload    string                `json:"workload"`
	RefsPerCore int                   `json:"refs_per_core"`
	WarmupRefs  int                   `json:"warmup_refs"`
	Tiles       int                   `json:"tiles"`
	Shards      int                   `json:"shards"`       // conservative-PDES shard count (0 = single kernel)
	Parallel    bool                  `json:"parallel"`     // -parallel requested (concurrent lookahead windows)
	Executor    string                `json:"executor"`     // executor the runs actually used: serial | merge | parallel
	Reps        int                   `json:"reps"`         // timed repetitions per protocol; best wall clock reported
	Instrument  bool                  `json:"instrumented"` // census + per-VM attribution + sampling armed (-obs)
	Protocols   map[string]ProtoBench `json:"protocols"`
	RefsPerSec  float64               `json:"total_refs_per_sec"`
}

// Bench is the schema of a BENCH_*.json file.
type Bench struct {
	Schema   int         `json:"schema"`
	Tool     string      `json:"tool"`
	Revision string      `json:"revision"`
	Mode     string      `json:"mode"`
	Kernel   KernelBench `json:"kernel"`
	EndToEnd EndToEnd    `json:"end_to_end"`
}

func main() {
	benchCfg := core.DefaultConfig()
	shared := cli.New(flag.CommandLine, &benchCfg).Shards()
	smoke := flag.Bool("smoke", false, "reduced budget for CI (fast, noisier numbers)")
	reps := flag.Int("reps", 0, "timed repetitions per protocol, best kept (0 = 3 full / 1 smoke)")
	out := flag.String("out", "BENCH_10.json", "output file")
	compare := flag.String("compare", "", "previous BENCH_*.json to diff against; exits 1 on a throughput regression beyond -tolerance")
	tolerance := flag.Float64("tolerance", 0.15, "with -compare: maximum fractional throughput regression per benchmark")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the end-to-end sweep to this file (analyze with `go tool pprof`)")
	memprofile := flag.String("memprofile", "", "write an allocation profile (after the sweep) to this file")
	obsOn := flag.Bool("obs", false, "arm the full observability surface during the end-to-end sweep (touch census, per-VM attribution, epoch sampling) — compare against an unarmed baseline to measure observability overhead")
	lanetrace := flag.String("lanetrace", "", "run a kernel-level RunParallel workload, write its per-lane Perfetto trace to this file, and exit (uses -shards, default 4)")
	httpAddr := flag.String("http", "", "with -lanetrace: serve the per-lane profile on this address (/ heatmap, /metrics) and block for inspection")
	flag.Parse()
	shared.Finish()

	if *lanetrace != "" {
		if err := laneTrace(*lanetrace, benchCfg.Shards, *httpAddr); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	}

	mode, refs, warmup, kernelEvents := "full", 6000, 12000, uint64(8_000_000)
	if *smoke {
		mode, refs, warmup, kernelEvents = "smoke", 1000, 2000, 1_000_000
	}
	if *reps <= 0 {
		*reps = 3
		if *smoke {
			*reps = 1
		}
	}

	b := Bench{Schema: 1, Tool: "bench", Revision: obs.Revision(), Mode: mode}
	b.Kernel = kernelBench(kernelEvents)
	fmt.Fprintf(os.Stderr, "kernel: %.1f ns/event (%.2fM events/s)\n",
		b.Kernel.NSPerEvent, b.Kernel.EventsPerSec/1e6)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer f.Close()
	}
	e2e, err := endToEnd(refs, warmup, *reps, benchCfg.Shards, benchCfg.Parallel, *obsOn)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, merr := os.Create(*memprofile)
		if merr != nil {
			fmt.Fprintln(os.Stderr, "bench:", merr)
			os.Exit(1)
		}
		runtime.GC()
		if merr := pprof.Lookup("allocs").WriteTo(f, 0); merr != nil {
			fmt.Fprintln(os.Stderr, "bench:", merr)
			os.Exit(1)
		}
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	b.EndToEnd = e2e
	fmt.Fprintf(os.Stderr, "end-to-end: %.0f refs/s over %d protocols\n",
		e2e.RefsPerSec, len(e2e.Protocols))

	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)

	if *compare != "" {
		if err := compareBench(*compare, &b, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}
}

// laneTrace drives the parallel window executor on a synthetic
// shard-affine workload — each lane runs a self-rescheduling event
// chain that periodically Sends to its neighbor lane — with a
// sim.LaneProfile attached, then exports the per-window lane tracks as
// a Perfetto trace and re-validates the written file. The engines
// still take synchronous cross-tile shortcuts, so this is the
// kernel-level stand-in for a full-system RunParallel run (the touch
// census ranks the work left to close that gap).
func laneTrace(path string, shards int, httpAddr string) error {
	if shards < 2 {
		shards = 4
	}
	const (
		lookahead = 3
		limit     = 20_000
	)
	sk := sim.NewSharded(1, shards, lookahead)
	lp := &sim.LaneProfile{}
	sk.SetLaneProfile(lp)
	counts := make([]uint64, shards) // each lane writes only its own slot
	var hop func(any)
	hop = func(a any) {
		lane := a.(int)
		counts[lane]++
		k := sk.Shard(lane)
		if counts[lane]%3 == 0 {
			next := (lane + 1) % shards
			k.Send(next, lookahead+sim.Time(counts[lane]%5), hop, next)
			return
		}
		k.AfterArg(1+sim.Time(counts[lane]%4), hop, lane)
	}
	for i := 0; i < shards; i++ {
		sk.Shard(i).AfterArg(sim.Time(i%7), hop, i)
	}
	events := sk.RunParallel(limit)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WritePerfettoLanes(f, lp); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	rf, err := os.Open(path)
	if err != nil {
		return err
	}
	defer rf.Close()
	sum, err := telemetry.ValidatePerfetto(rf)
	if err != nil {
		return fmt.Errorf("%s failed validation: %w", path, err)
	}
	fmt.Fprintf(os.Stderr,
		"lanetrace: %d lanes, %d windows (%d retained rows, %d stalls), %d events -> %s (%d trace events)\n",
		lp.Lanes, lp.TotalWindows, len(lp.Windows), lp.Stalls(), events, path, sum.Events)
	if httpAddr != "" {
		live := telemetry.NewLive()
		addr, err := telemetry.Serve(httpAddr, live)
		if err != nil {
			return err
		}
		live.UpdateLanes("lanetrace", lp)
		fmt.Fprintf(os.Stderr, "lane profile live at http://%s/ and /metrics — ctrl-C to exit\n", addr)
		select {}
	}
	return nil
}

// compareBench prints per-benchmark deltas of fresh against the saved
// baseline and returns an error if any throughput regressed by more
// than tolerance. Wall-clock numbers depend on the reference budget,
// so baselines recorded in a different mode only warn.
func compareBench(path string, fresh *Bench, tolerance float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Bench
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: not a bench file: %w", path, err)
	}
	fmt.Printf("vs %s (%s@%s):\n", path, base.Mode, base.Revision)
	comparable := true
	var skipReasons []string
	disarm := func(reason string) {
		comparable = false
		skipReasons = append(skipReasons, reason)
		fmt.Printf("  %s — deltas reported, regression gate skipped\n", reason)
	}
	if base.Mode != fresh.Mode {
		disarm(fmt.Sprintf("baseline mode %q != current mode %q", base.Mode, fresh.Mode))
	}
	if base.EndToEnd.Shards != fresh.EndToEnd.Shards {
		// Shard counts change wall clock, not results; numbers from
		// different executors are apples to oranges.
		disarm(fmt.Sprintf("baseline shards %d != current shards %d", base.EndToEnd.Shards, fresh.EndToEnd.Shards))
	}
	if be, fe := execMode(&base.EndToEnd), execMode(&fresh.EndToEnd); be != fe {
		// Same shard count but a different executor (serial/merge vs
		// parallel windows) also changes only wall clock. The skip is
		// annotated here and in the summary line, never silent: the CI
		// gate keeps protecting serial throughput by comparing a serial
		// baseline against a serial run, while parallel numbers are
		// recorded alongside without tripping or hiding the gate.
		disarm(fmt.Sprintf("baseline executor %q != current executor %q", be, fe))
	}
	if base.EndToEnd.Instrument != fresh.EndToEnd.Instrument {
		// The gate stays armed on purpose: comparing an instrumented run
		// against an unarmed baseline of the same mode IS the
		// observability-overhead gate.
		fmt.Printf("  instrumented: baseline %v, current %v — delta is the observability overhead\n",
			base.EndToEnd.Instrument, fresh.EndToEnd.Instrument)
	}
	type row struct {
		name      string
		base, cur float64 // higher is better (throughput)
	}
	rows := []row{{"kernel events/s", base.Kernel.EventsPerSec, fresh.Kernel.EventsPerSec}}
	for _, p := range core.ProtocolNames {
		bp, ok := base.EndToEnd.Protocols[p]
		cp, ok2 := fresh.EndToEnd.Protocols[p]
		if !ok || !ok2 {
			fmt.Printf("  %-18s missing from %s\n", p, map[bool]string{true: "baseline", false: "current run"}[!ok])
			continue
		}
		rows = append(rows, row{p + " refs/s", bp.RefsPerSec, cp.RefsPerSec})
	}
	rows = append(rows, row{"total refs/s", base.EndToEnd.RefsPerSec, fresh.EndToEnd.RefsPerSec})
	var regressed []string
	deltas := map[string]float64{}
	for _, r := range rows {
		delta := r.cur/r.base - 1
		deltas[r.name] = delta
		mark := ""
		if delta < -tolerance {
			mark = "  << regression"
			regressed = append(regressed, fmt.Sprintf("%s %.1f%%", r.name, -delta*100))
		}
		fmt.Printf("  %-18s %12.0f -> %12.0f  %+6.1f%%%s\n", r.name, r.base, r.cur, delta*100, mark)
	}
	// One machine-readable summary line per comparison, shard metadata
	// included, so cross-shard comparisons are recorded rather than
	// lost when the regression gate is disarmed.
	summary := struct {
		Tool             string             `json:"tool"`
		Baseline         string             `json:"baseline"`
		BaselineMode     string             `json:"baseline_mode"`
		Mode             string             `json:"mode"`
		BaselineShards   int                `json:"baseline_shards"`
		Shards           int                `json:"shards"`
		BaselineExecutor string             `json:"baseline_executor"`
		Executor         string             `json:"executor"`
		BaselineObs      bool               `json:"baseline_instrumented"`
		Obs              bool               `json:"instrumented"`
		GateArmed        bool               `json:"gate_armed"`
		GateSkipReasons  []string           `json:"gate_skip_reasons,omitempty"`
		Tolerance        float64            `json:"tolerance"`
		Deltas           map[string]float64 `json:"deltas"`
		Regressed        []string           `json:"regressed,omitempty"`
	}{
		Tool: "bench-compare", Baseline: path,
		BaselineMode: base.Mode, Mode: fresh.Mode,
		BaselineShards: base.EndToEnd.Shards, Shards: fresh.EndToEnd.Shards,
		BaselineExecutor: execMode(&base.EndToEnd), Executor: execMode(&fresh.EndToEnd),
		BaselineObs: base.EndToEnd.Instrument, Obs: fresh.EndToEnd.Instrument,
		GateArmed: comparable, GateSkipReasons: skipReasons, Tolerance: tolerance,
		Deltas: deltas, Regressed: regressed,
	}
	if line, err := json.Marshal(&summary); err == nil {
		fmt.Printf("compare-summary: %s\n", line)
	}
	if len(regressed) > 0 && comparable {
		return fmt.Errorf("throughput regressed beyond %.0f%%: %s", tolerance*100, strings.Join(regressed, ", "))
	}
	return nil
}

// execMode returns the executor a recorded sweep used, defaulting
// legacy files (no executor field) from their shard count: sharded
// runs used the sequential merge, unsharded the single kernel.
func execMode(e *EndToEnd) string {
	if e.Executor != "" {
		return e.Executor
	}
	if e.Shards > 0 {
		return "merge"
	}
	return "serial"
}

// kernelBench measures steady-state schedule+dispatch at a 4096-deep
// queue, the same load shape as internal/sim's BenchmarkSchedule.
func kernelBench(events uint64) KernelBench {
	k := sim.NewKernel(1)
	nop := func() {}
	const depth = 4096
	for i := 0; i < depth; i++ {
		k.After(sim.Time(i%97), nop)
	}
	start := time.Now()
	for i := uint64(0); i < events; i++ {
		k.After(sim.Time(i%97), nop)
		k.Step()
	}
	elapsed := time.Since(start)
	ns := float64(elapsed.Nanoseconds()) / float64(events)
	return KernelBench{
		Events:       events,
		QueueDepth:   depth,
		NSPerEvent:   ns,
		EventsPerSec: 1e9 / ns,
	}
}

// endToEnd times each protocol on the default workload serially (so
// the per-protocol wall clocks do not contend with each other). Each
// protocol runs reps times behind a GC barrier and reports its best
// wall clock: a single timed run absorbs whatever garbage the previous
// protocol left plus its own cold page faults, which showed up as
// 10-20% run-to-run swings that have nothing to do with the simulator.
func endToEnd(refs, warmup, reps, shards int, parallel, instrument bool) (EndToEnd, error) {
	base := core.DefaultConfig()
	base.RefsPerCore = refs
	base.WarmupRefs = warmup
	base.Shards = shards
	base.Parallel = parallel
	if instrument {
		// The full PR-9 observability surface, so -compare against an
		// unarmed baseline of the same mode gates its overhead. Arming it
		// forces the sequential merge (per-VM banks and sampling are
		// hub-resident), which the recorded Executor field makes visible.
		base.Census = true
		base.PerVM = true
		base.SampleEvery = 2000
	}
	e := EndToEnd{
		Workload:    base.Workload,
		RefsPerCore: refs,
		WarmupRefs:  warmup,
		Tiles:       base.Tiles,
		Shards:      shards,
		Parallel:    parallel,
		Reps:        reps,
		Instrument:  instrument,
		Protocols:   map[string]ProtoBench{},
	}
	var totalRefs uint64
	var totalWall time.Duration
	for _, p := range core.ProtocolNames {
		cfg := base
		cfg.Protocol = p
		fmt.Fprintf(os.Stderr, "running %s / %s (%d reps)...\n", cfg.Workload, p, reps)
		var bestRes *core.Result
		var bestWall time.Duration
		for rep := 0; rep < reps; rep++ {
			runtime.GC()
			start := time.Now()
			res, err := core.Run(cfg)
			if err != nil {
				return e, err
			}
			wall := time.Since(start)
			if bestRes == nil || wall < bestWall {
				bestRes, bestWall = res, wall
			}
		}
		totalRefs += bestRes.Refs
		totalWall += bestWall
		e.Executor = bestRes.Executor
		e.Protocols[p] = ProtoBench{
			Cycles:     uint64(bestRes.Cycles),
			Refs:       bestRes.Refs,
			Events:     bestRes.Events,
			WallMS:     float64(bestWall.Nanoseconds()) / 1e6,
			RefsPerSec: float64(bestRes.Refs) / bestWall.Seconds(),
			Lanes:      laneUtil(bestRes.LaneProf),
		}
	}
	e.RefsPerSec = float64(totalRefs) / totalWall.Seconds()
	return e, nil
}

// laneUtil folds a RunParallel lane profile into per-lane utilization
// rows (nil profile — sequential run — yields nil).
func laneUtil(lp *sim.LaneProfile) []LaneUtil {
	if lp == nil || lp.Lanes == 0 {
		return nil
	}
	rows := make([]LaneUtil, lp.Lanes)
	waits := make([]float64, lp.Lanes)
	windows := make([]int, lp.Lanes)
	total := uint64(0)
	for _, w := range lp.Windows {
		r := &rows[w.Lane]
		r.Events += w.Events
		if w.Events == 0 {
			r.StallWindows++
		}
		waits[w.Lane] += float64(w.WaitNS)
		windows[w.Lane]++
		total += w.Events
	}
	for i := range rows {
		rows[i].Lane = i
		if total > 0 {
			rows[i].Share = float64(rows[i].Events) / float64(total)
		}
		if windows[i] > 0 {
			rows[i].AvgWaitNS = waits[i] / float64(windows[i])
		}
	}
	return rows
}
