// Package repro's root benchmarks regenerate every table and figure of
// the paper (see DESIGN.md's experiment index). The analytic tables
// run at full fidelity; the simulation figures run a reduced reference
// budget per core so the whole suite stays laptop-scale — use
// cmd/experiments for full-budget runs.
package repro

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/power"
	"repro/internal/proto"
	"repro/internal/storage"
)

// BenchmarkTable5StorageOverhead regenerates Table V.
func BenchmarkTable5StorageOverhead(b *testing.B) {
	cfg := storage.DefaultConfig(64, 4)
	for i := 0; i < b.N; i++ {
		for _, p := range storage.All {
			_ = storage.Overhead(p, cfg)
		}
	}
	for _, p := range storage.All {
		b.ReportMetric(storage.Overhead(p, cfg)*100, p.String()+"_overhead_%")
	}
}

// BenchmarkTable6Leakage regenerates Table VI.
func BenchmarkTable6Leakage(b *testing.B) {
	m := power.DefaultLeakage()
	cfg := storage.DefaultConfig(64, 4)
	for i := 0; i < b.N; i++ {
		for _, p := range storage.All {
			m.TileLeakage(p, cfg)
		}
	}
	for _, p := range storage.All {
		total, _ := m.TileLeakage(p, cfg)
		b.ReportMetric(total, p.String()+"_mW")
	}
}

// BenchmarkTable7Sweep regenerates Table VII across all core counts.
func BenchmarkTable7Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cores := range []int{64, 128, 256, 512, 1024} {
			storage.OverheadSweep(cores)
		}
	}
}

// benchMatrix runs the reduced simulation matrix once and caches it
// for the figure benchmarks.
var (
	benchOnce   sync.Once
	benchResult *exp.Matrix
	benchErr    error
)

func matrix(b *testing.B) *exp.Matrix {
	b.Helper()
	benchOnce.Do(func() {
		opt := exp.DefaultOptions()
		opt.Workloads = []string{"apache4x16p", "tomcatv4x16p"}
		opt.Base.RefsPerCore = 4000
		opt.Base.WarmupRefs = 12000
		opt.Workers = 0 // fan the 2x4 matrix out across all CPUs
		benchResult, benchErr = exp.Run(opt, nil)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchResult
}

// BenchmarkFigure7DynamicPower regenerates Figure 7 (total dynamic
// power by protocol, normalized to the directory's cache power).
func BenchmarkFigure7DynamicPower(b *testing.B) {
	m := matrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Figure7()
	}
	den := m.Results["apache4x16p"]["directory"].CachePowerPerCycle()
	for _, p := range core.ProtocolNames {
		r := m.Results["apache4x16p"][p]
		b.ReportMetric(r.PowerPerCycle()/den, "apache_"+p+"_power")
	}
}

// BenchmarkFigure8aCacheBreakdown regenerates Figure 8a.
func BenchmarkFigure8aCacheBreakdown(b *testing.B) {
	m := matrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Figure8a()
	}
}

// BenchmarkFigure8bNetworkBreakdown regenerates Figure 8b.
func BenchmarkFigure8bNetworkBreakdown(b *testing.B) {
	m := matrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Figure8b()
	}
	den := m.Results["apache4x16p"]["directory"].NetworkPowerPerCycle()
	for _, p := range core.ProtocolNames {
		r := m.Results["apache4x16p"][p]
		b.ReportMetric(r.NetworkPowerPerCycle()/den, "apache_"+p+"_net")
	}
}

// BenchmarkFigure9aPerformance regenerates Figure 9a.
func BenchmarkFigure9aPerformance(b *testing.B) {
	m := matrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Figure9a()
	}
	base := m.Results["apache4x16p"]["directory"].Performance()
	for _, p := range core.ProtocolNames {
		b.ReportMetric(m.Results["apache4x16p"][p].Performance()/base, "apache_"+p+"_perf")
	}
}

// BenchmarkFigure9bPrediction regenerates Figure 9b.
func BenchmarkFigure9bPrediction(b *testing.B) {
	m := matrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Figure9b()
	}
	r := m.Results["apache4x16p"]["providers"]
	total := float64(r.Profile.TotalMisses())
	prov := float64(r.Profile.Count[proto.MissPredProvider] + r.Profile.Count[proto.MissUnpredProvider])
	b.ReportMetric(prov/total*100, "apache_providers_served_%")
}

// BenchmarkShortenedMissLinks regenerates the Section V-D link
// analysis: mean links per miss class plus the theoretical values.
func BenchmarkShortenedMissLinks(b *testing.B) {
	m := matrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.LinkAnalysis()
	}
	r := m.Results["apache4x16p"]["providers"]
	b.ReportMetric(r.Profile.MeanLinks(proto.MissPredProvider), "pred_provider_links")
	_, direct, shortened := exp.TheoreticalDistances(64, 4)
	b.ReportMetric(direct, "theory_direct_links")
	b.ReportMetric(shortened, "theory_shortened_links")
}

// runOne is a helper for the ablation benchmarks.
func runOne(b *testing.B, mutate func(*core.Config)) *core.Result {
	b.Helper()
	cfg := core.DefaultConfig()
	cfg.Workload = "apache4x16p"
	cfg.RefsPerCore = 3000
	cfg.WarmupRefs = 8000
	mutate(&cfg)
	res, err := core.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationBroadcastTree compares DiCo-Arin with hardware
// (tree) broadcast against 63 unicasts.
func BenchmarkAblationBroadcastTree(b *testing.B) {
	var tree, uni *core.Result
	for i := 0; i < b.N; i++ {
		tree = runOne(b, func(c *core.Config) { c.Protocol = "arin" })
		uni = runOne(b, func(c *core.Config) {
			c.Protocol = "arin"
			c.Proto.BroadcastUnicast = true
		})
	}
	b.ReportMetric(float64(uni.Net.FlitLinkCrossing)/float64(tree.Net.FlitLinkCrossing), "unicast_vs_tree_links")
}

// BenchmarkAblationDedup compares DiCo-Providers with deduplication on
// and off (the paper cites [6]: dedup improves performance by reducing
// cache pressure).
func BenchmarkAblationDedup(b *testing.B) {
	var on, off *core.Result
	for i := 0; i < b.N; i++ {
		on = runOne(b, func(c *core.Config) { c.Protocol = "providers" })
		off = runOne(b, func(c *core.Config) {
			c.Protocol = "providers"
			c.Dedup = false
		})
	}
	b.ReportMetric(on.Performance()/off.Performance(), "dedup_speedup")
}

// BenchmarkAblationContention compares runs with and without the
// link-contention model.
func BenchmarkAblationContention(b *testing.B) {
	var with, without *core.Result
	for i := 0; i < b.N; i++ {
		with = runOne(b, func(c *core.Config) { c.Protocol = "directory" })
		without = runOne(b, func(c *core.Config) {
			c.Protocol = "directory"
			c.Net.Contention = false
		})
	}
	b.ReportMetric(float64(with.Cycles)/float64(without.Cycles), "contention_slowdown")
}

// BenchmarkAblationAreaCount sweeps the static area count for
// DiCo-Providers (Section V-B's closing trade-off).
func BenchmarkAblationAreaCount(b *testing.B) {
	for _, areas := range []int{2, 4, 8} {
		areas := areas
		var res *core.Result
		for i := 0; i < b.N; i++ {
			res = runOne(b, func(c *core.Config) {
				c.Protocol = "providers"
				c.Areas = areas
			})
		}
		prov := res.Profile.Count[proto.MissPredProvider] + res.Profile.Count[proto.MissUnpredProvider]
		b.ReportMetric(float64(prov)/float64(res.Profile.TotalMisses())*100,
			"areas"+string(rune('0'+areas))+"_provider_served_%")
	}
}

// BenchmarkAltPlacement compares the matched and Figure 6 alternative
// placements for DiCo-Providers (Section V-C/V-D's "-alt" runs).
func BenchmarkAltPlacement(b *testing.B) {
	var matched, alt *core.Result
	for i := 0; i < b.N; i++ {
		matched = runOne(b, func(c *core.Config) { c.Protocol = "providers" })
		alt = runOne(b, func(c *core.Config) {
			c.Protocol = "providers"
			c.AltPlacement = true
		})
	}
	b.ReportMetric(alt.Performance()/matched.Performance(), "alt_vs_matched_perf")
}

// BenchmarkAblationNoPrediction disables the L1C$ supplier prediction
// in DiCo (the mechanism Direct Coherence hinges on) and reports the
// network cost of losing it.
func BenchmarkAblationNoPrediction(b *testing.B) {
	var pred, nopred *core.Result
	for i := 0; i < b.N; i++ {
		pred = runOne(b, func(c *core.Config) { c.Protocol = "dico" })
		nopred = runOne(b, func(c *core.Config) {
			c.Protocol = "dico"
			c.Proto.NoPrediction = true
		})
	}
	b.ReportMetric(float64(nopred.Net.FlitLinkCrossing)/float64(pred.Net.FlitLinkCrossing), "nopred_vs_pred_links")
	b.ReportMetric(pred.Performance()/nopred.Performance(), "pred_speedup")
}
